// E9 (paper §4): fault triggers.
//
// "Additional fault triggers such as access of certain data values,
// execution of branch instructions or subprogram calls ... or at specific
// times determined by a real-time clock." Measures the run-until-trigger
// cost of every trigger kind on the same workload, plus the monitoring
// overhead triggers impose on plain execution.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "isa/assembler.hpp"

namespace goofi::bench {
namespace {

const isa::AssembledProgram& Workload() {
  static const isa::AssembledProgram program = [] {
    const auto spec = env::GetWorkload("bubblesort").ValueOrDie();
    return isa::Assemble(spec.source).ValueOrDie();
  }();
  return program;
}

scan::Trigger MakeTrigger(scan::TriggerKind kind) {
  scan::Trigger trigger;
  trigger.kind = kind;
  switch (kind) {
    case scan::TriggerKind::kPcBreakpoint:
      trigger.address = Workload().symbols.at("sumloop");
      break;
    case scan::TriggerKind::kInstrCount:
      trigger.count = 500;
      break;
    case scan::TriggerKind::kCycleCount:
      trigger.count = 800;
      break;
    case scan::TriggerKind::kDataAccess:
      trigger.address = Workload().symbols.at("result");
      break;
    case scan::TriggerKind::kDataValue:
      trigger.value = 802;  // the largest array element, loaded during sort
      break;
    case scan::TriggerKind::kBranch:
    case scan::TriggerKind::kCall:
      break;
  }
  return trigger;
}

void BM_RunUntilTrigger(benchmark::State& state, scan::TriggerKind kind) {
  testcard::SimTestCard card;
  (void)card.Init();
  uint64_t instr = 0;
  uint64_t fired = 0;
  for (auto _ : state) {
    // Reload each run: the sort mutates its data segment in place.
    (void)card.LoadWorkload(Workload());
    (void)card.ResetTarget();
    card.ClearTriggers();
    (void)card.AddTrigger(MakeTrigger(kind));
    const auto result = card.Run(100000);
    instr += card.cpu().instructions_retired();
    fired += result.fired_trigger >= 0 ? 1 : 0;
  }
  state.counters["instr_to_trigger"] = benchmark::Counter(
      static_cast<double>(instr), benchmark::Counter::kAvgIterations);
  state.counters["fired_fraction"] = benchmark::Counter(
      static_cast<double>(fired) / static_cast<double>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_RunUntilTrigger, pc_breakpoint,
                  scan::TriggerKind::kPcBreakpoint);
BENCHMARK_CAPTURE(BM_RunUntilTrigger, instr_count,
                  scan::TriggerKind::kInstrCount);
BENCHMARK_CAPTURE(BM_RunUntilTrigger, cycle_count_rtc,
                  scan::TriggerKind::kCycleCount);
BENCHMARK_CAPTURE(BM_RunUntilTrigger, data_access,
                  scan::TriggerKind::kDataAccess);
BENCHMARK_CAPTURE(BM_RunUntilTrigger, data_value, scan::TriggerKind::kDataValue);
BENCHMARK_CAPTURE(BM_RunUntilTrigger, branch, scan::TriggerKind::kBranch);

// Monitoring overhead: full workload run with 0 vs 8 armed (never-firing)
// triggers.
void BM_RunWithArmedTriggers(benchmark::State& state) {
  testcard::SimTestCard card;
  (void)card.Init();
  (void)card.LoadWorkload(Workload());
  const int num_triggers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    (void)card.LoadWorkload(Workload());
    (void)card.ResetTarget();
    card.ClearTriggers();
    for (int i = 0; i < num_triggers; ++i) {
      scan::Trigger trigger;
      trigger.kind = scan::TriggerKind::kPcBreakpoint;
      trigger.address = 0xFFFFFFF0;  // never matches
      (void)card.AddTrigger(trigger);
    }
    benchmark::DoNotOptimize(card.Run(1'000'000));
  }
  state.counters["workload_instr"] =
      static_cast<double>(card.cpu().instructions_retired());
}
BENCHMARK(BM_RunWithArmedTriggers)->Arg(0)->Arg(2)->Arg(8);

}  // namespace
}  // namespace goofi::bench

BENCHMARK_MAIN();
