// E7 (paper §4): pre-injection analysis efficiency gain.
//
// "Injecting a fault into a location that does not hold live data serves no
// purpose, since the fault will be overwritten." This experiment runs the
// same register-file SCIFI campaign with and without the liveness filter and
// reports (a) the fraction of candidate draws the filter rejected, and
// (b) the yield of effective errors per experiment — the efficiency the
// extension buys.

#include <cstdio>

#include "bench_common.hpp"

using namespace goofi;
using namespace goofi::bench;

int main() {
  std::printf("E7: pre-injection (liveness) analysis, SCIFI on the register "
              "file\n\n");

  const char* workloads[] = {"bubblesort", "matmul", "fibonacci", "checksum"};
  std::printf("%-12s | %-34s | %-34s | %s\n", "", "without pre-injection",
              "with pre-injection", "");
  std::printf("%-12s | %9s %9s %12s | %9s %9s %12s | %s\n", "workload", "effective",
              "overwrit.", "coverage", "effective", "overwrit.", "coverage",
              "draws skipped");

  for (const char* workload : workloads) {
    Session session;

    core::CampaignData baseline =
        BaseCampaign(std::string("e7_base_") + workload, workload);
    baseline.num_experiments = 250;
    const auto base_report = RunAndAnalyze(session, baseline);

    auto analyzer =
        core::LivenessAnalyzer::Build(workload, cpu::CpuConfig()).ValueOrDie();
    session.target.SetLivenessFilter(analyzer->MakeFilter());
    core::CampaignData filtered =
        BaseCampaign(std::string("e7_live_") + workload, workload);
    filtered.num_experiments = 250;
    const auto live_report = RunAndAnalyze(session, filtered);
    session.target.SetLivenessFilter(nullptr);

    auto effective = [](const core::AnalysisReport& report) {
      return report.Count(core::Outcome::kDetected) +
             report.Count(core::Outcome::kEscaped);
    };
    std::printf("%-12s | %9d %9d %12.3f | %9d %9d %12.3f | %d\n", workload,
                effective(base_report),
                base_report.Count(core::Outcome::kOverwritten),
                base_report.ErrorCoverage(), effective(live_report),
                live_report.Count(core::Outcome::kOverwritten),
                live_report.ErrorCoverage(),
                session.target.stats().injections_skipped_dead);
  }

  std::printf(
      "\nExpected shape: with the liveness filter the overwritten fraction\n"
      "collapses and the effective-error yield per experiment rises — the\n"
      "campaign spends its experiments on faults that matter. Coverage\n"
      "estimates shift because the sampled fault population changes (the\n"
      "filter is an efficiency device, not an unbiased-coverage one).\n");
  return 0;
}
