// E4 (paper §3.3): normal vs detail logging mode.
//
// "In normal mode, the system state is logged only when the termination
// condition is fulfilled. In detail mode the system state is logged as
// frequently as the target system allows, typically after the execution of
// each machine instruction, which increases the time-overhead."
//
// Measures wall time and database rows per experiment in both modes and
// prints the overhead ratio.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace goofi::bench {
namespace {

void RunMode(benchmark::State& state, core::LogMode mode) {
  Session session;
  core::CampaignData campaign = BaseCampaign("e4", "fibonacci");
  campaign.num_experiments = 1;
  campaign.log_mode = mode;
  campaign.inject_max_instr = 60;
  int counter = 0;
  size_t rows_before = 0;
  uint64_t campaigns = 0;
  for (auto _ : state) {
    campaign.name = "e4_" + std::to_string(counter++);
    if (!session.store.PutCampaign(campaign).ok()) std::abort();
    if (!session.target.RunCampaign(campaign.name).ok()) std::abort();
    ++campaigns;
  }
  const db::Table* log = session.db.GetTable("LoggedSystemState");
  state.counters["db_rows_per_experiment"] = benchmark::Counter(
      static_cast<double>(log->size() - rows_before) /
      (2.0 * static_cast<double>(campaigns)));  // ref + 1 experiment
}

void BM_NormalMode(benchmark::State& state) {
  RunMode(state, core::LogMode::kNormal);
}
BENCHMARK(BM_NormalMode)->Unit(benchmark::kMillisecond);

void BM_DetailMode(benchmark::State& state) {
  RunMode(state, core::LogMode::kDetail);
}
BENCHMARK(BM_DetailMode)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goofi::bench

BENCHMARK_MAIN();
