// E14 — raw simulator throughput: MIPS of the reference Step() interpreter
// vs the predecoded superblock fast path (cpu/decode_cache + Cpu::RunFastEx),
// per batch workload and as a geometric mean.
//
// Per-experiment campaign cost is dominated by instruction simulation (the
// golden run, the fault-free prefix of every cold experiment, the post-
// injection run to termination). The fast path keeps the decode cache warm
// across Cpu::Reset, so everything after the first experiment of a campaign
// re-executes predecoded instructions; "fast (warm)" is the steady-state
// campaign number, the cold column is the first-touch cost including all
// predecode misses.
//
// `--json <path>` writes per-workload speedups, the geomean and the decode
// cache hit rate for scripts/bench.sh and the tier-1 perf gate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "env/workloads.hpp"
#include "isa/assembler.hpp"

namespace goofi::bench {
namespace {

/// Batch (halt-terminating) workloads; control loops need an environment.
constexpr const char* kWorkloads[] = {"bubblesort", "matmul",    "fibonacci",
                                      "checksum",   "strsearch", "queue"};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Row {
  std::string workload;
  uint64_t instret = 0;   ///< retired instructions per run
  double ref_mips = 0;    ///< reference Step() loop
  double cold_mips = 0;   ///< RunFast, first touch (predecode misses)
  double fast_mips = 0;   ///< RunFast, decode cache warm
  double hit_rate = 0;    ///< decode-cache hits / accesses over the sweep
  double speedup() const { return ref_mips > 0 ? fast_mips / ref_mips : 0; }
};

Row Measure(const std::string& name) {
  const auto spec = env::GetWorkload(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "workload %s: %s\n", name.c_str(),
                 spec.status().ToString().c_str());
    std::abort();
  }
  const auto program = isa::Assemble(spec.value().source);
  if (!program.ok()) {
    std::fprintf(stderr, "assemble %s: %s\n", name.c_str(),
                 program.status().ToString().c_str());
    std::abort();
  }
  uint32_t text_bytes = 0;
  const auto etext = program.value().symbols.find("_etext");
  if (etext != program.value().symbols.end()) {
    text_bytes = etext->second - program.value().base_address;
  }

  Row row;
  row.workload = name;

  cpu::Cpu ref;
  cpu::Cpu fast;
  for (cpu::Cpu* c : {&ref, &fast}) {
    if (!c->LoadProgram(program.value().base_address, program.value().words,
                        text_bytes)
             .ok()) {
      std::abort();
    }
  }

  // Workloads mutate their data segment in place (bubblesort re-run on its
  // own sorted output takes an early exit), so every rep rewrites the data
  // words before Reset. Raw memory writes suffice: Reset flushes both
  // caches, and data addresses lie outside the decode-cache window.
  const uint32_t data_start_word =
      (program.value().base_address + text_bytes) / 4;
  auto restore_data = [&](cpu::Cpu& cpu) {
    for (uint32_t i = data_start_word * 4 - program.value().base_address;
         i / 4 < program.value().words.size(); i += 4) {
      if (!cpu.memory()
               .HostWrite(program.value().base_address + i,
                          program.value().words[i / 4])
               .ok()) {
        std::abort();
      }
    }
  };

  // One probe run for the per-run instruction count (and correctness).
  ref.Reset(program.value().entry);
  if (ref.Run(0) != cpu::StepOutcome::kHalted) {
    std::fprintf(stderr, "%s did not halt\n", name.c_str());
    std::abort();
  }
  row.instret = ref.instructions_retired();

  // Size the sweep so each timed section simulates ~20M instructions.
  const int reps =
      static_cast<int>(std::max<uint64_t>(20000000 / row.instret, 3));

  auto time_runs = [&](cpu::Cpu& cpu, bool use_fast, int n) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      restore_data(cpu);
      cpu.Reset(program.value().entry);
      const cpu::StepOutcome outcome = use_fast ? cpu.RunFast(0) : cpu.Run(0);
      if (outcome != cpu::StepOutcome::kHalted) std::abort();
      if (cpu.instructions_retired() != row.instret) std::abort();
    }
    const double seconds = SecondsSince(start);
    return static_cast<double>(row.instret) * n / seconds / 1e6;
  };

  // Cold: first-ever RunFast on this CPU — every predecode is a miss.
  restore_data(fast);
  const auto cold_start = std::chrono::steady_clock::now();
  fast.Reset(program.value().entry);
  if (fast.RunFast(0) != cpu::StepOutcome::kHalted) std::abort();
  row.cold_mips =
      static_cast<double>(row.instret) / SecondsSince(cold_start) / 1e6;

  row.ref_mips = time_runs(ref, /*use_fast=*/false, reps);
  fast.decode_cache().ResetStats();
  row.fast_mips = time_runs(fast, /*use_fast=*/true, reps);
  const auto stats = fast.decode_cache().stats();
  const uint64_t accesses = stats.hits + stats.misses;
  row.hit_rate =
      accesses > 0 ? static_cast<double>(stats.hits) / accesses : 0.0;
  return row;
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) {
  using namespace goofi::bench;

  std::printf("E14: simulator instruction throughput, reference vs predecoded\n");
  std::printf("%-12s %10s %10s %10s %10s %9s %9s\n", "workload", "instret",
              "ref MIPS", "cold MIPS", "warm MIPS", "speedup", "hit rate");

  JsonReport report;
  std::vector<Row> rows;
  double log_sum = 0;
  for (const char* name : kWorkloads) {
    Row row = Measure(name);
    std::printf("%-12s %10llu %10.2f %10.2f %10.2f %8.2fx %8.1f%%\n",
                row.workload.c_str(),
                static_cast<unsigned long long>(row.instret), row.ref_mips,
                row.cold_mips, row.fast_mips, row.speedup(),
                row.hit_rate * 100.0);
    report.Add("speedup_" + row.workload, row.speedup());
    log_sum += std::log(row.speedup());
    rows.push_back(std::move(row));
  }
  const double geomean = std::exp(log_sum / static_cast<double>(rows.size()));
  std::printf("geomean speedup: %.2fx\n", geomean);
  report.Add("speedup_geomean", geomean);
  report.Add("ref_mips_" + rows.front().workload, rows.front().ref_mips);
  report.Add("warm_mips_" + rows.front().workload, rows.front().fast_mips);

  if (const char* path = JsonOutputPath(argc, argv)) report.Write(path);
  return 0;
}
