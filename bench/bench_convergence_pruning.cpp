// E15 — golden-trace convergence pruning: pruned vs unpruned wall-clock for
// SCIFI campaigns on the pendulum_pd control workload, swept over fault
// location class x injection-time distribution x trace interval, single
// worker (so the numbers isolate pruning, not parallelism).
//
// The mechanism pays off when experiments inject early and the fault is
// masked soon after: the post-injection suffix is then almost the whole run,
// and a converged experiment skips all of it (the database rows are
// synthesized from the recorded golden outcome). Pipeline-latch faults are
// the sweet spot — the latches are rewritten every instruction, so most
// flips are architecturally masked within a boundary or two. Register-file
// faults give the mixed-population contrast: live registers stay divergent
// (latent/effective faults never converge), dead ones converge at the next
// boundary.
//
// `--json <path>` additionally writes the headline metrics as a flat JSON
// object (see scripts/bench.sh).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace goofi::bench {
namespace {

constexpr int kExperiments = 40;
// ~14 retired instructions per control iteration: 4000 iterations give a
// ~56k-instruction golden run, so a pruned-away suffix is worth tens of
// thousands of simulated instructions.
constexpr int kIterations = 4000;

core::CampaignData Campaign(const std::string& name,
                            const core::FaultLocationSelector& location,
                            uint64_t inject_min, uint64_t inject_max) {
  core::CampaignData campaign = BaseCampaign(name, "pendulum_pd");
  campaign.num_experiments = kExperiments;
  campaign.max_iterations = kIterations;
  campaign.locations = {location};
  campaign.inject_min_instr = inject_min;
  campaign.inject_max_instr = inject_max;
  campaign.timeout_cycles = 100000000;
  return campaign;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Retired instructions of the fault-free run — the golden-run length the
/// injection windows are placed against.
uint64_t ProbeGoldenLength() {
  Session session;
  core::CampaignData campaign =
      Campaign("cv_probe", {"internal_regfile", ""}, 1, 1000);
  if (!session.store.PutCampaign(campaign).ok()) std::abort();
  session.target.SetCheckpointInterval(0);
  if (!session.target.PrepareCampaign(campaign).ok()) std::abort();
  auto rows = session.target.ExecuteExperiment(-1);
  if (!rows.ok()) {
    std::fprintf(stderr, "reference run: %s\n",
                 rows.status().ToString().c_str());
    std::abort();
  }
  return rows.value().front().state.instret;
}

/// One timed single-worker campaign. `interval` 0 = unpruned cold baseline.
/// With an interval, warm-start is always forced (run-pruned semantics) and
/// `pruned` toggles convergence pruning on top — the warm-only rows isolate
/// how much of the speedup is fast-forward rather than pruning.
double RunOnce(const core::CampaignData& campaign, uint64_t interval,
               bool pruned, core::ConvergenceStats* prune) {
  db::Database db;
  core::CampaignStore store(&db);
  testcard::SimTestCard card;
  if (!store
           .PutTargetSystem(core::ThorRdTarget::DescribeTarget(
               card, core::ThorRdTarget::kTargetName))
           .ok()) {
    std::abort();
  }
  if (!store.PutCampaign(campaign).ok()) std::abort();
  core::ParallelCampaignRunner runner(&store, core::MakeSimThorFactory(&store),
                                      /*workers=*/1);
  runner.SetCheckpointInterval(interval);
  runner.SetForceWarmStart(interval > 0);
  runner.SetConvergencePruning(pruned);
  const auto start = std::chrono::steady_clock::now();
  if (auto st = runner.Run(campaign.name); !st.ok()) {
    std::fprintf(stderr, "run %s: %s\n", campaign.name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  const double elapsed = SecondsSince(start);
  if (prune != nullptr) *prune = runner.prune_stats();
  return elapsed;
}

void Main(int argc, char** argv) {
  JsonReport json;
  const uint64_t golden = ProbeGoldenLength();
  std::printf(
      "Convergence pruning (E15): %d SCIFI experiments, pendulum_pd control "
      "workload, golden run = %llu instructions, 1 worker\n\n",
      kExperiments, static_cast<unsigned long long>(golden));
  json.Add("golden_instret", golden);
  json.Add("experiments", kExperiments);

  struct Location {
    const char* name;
    core::FaultLocationSelector selector;
  };
  const std::vector<Location> locations = {
      {"pipeline", {"boundary", "pipeline"}},
      {"regfile", {"internal_regfile", ""}},
  };
  struct Distribution {
    const char* name;
    uint64_t inject_min;
    uint64_t inject_max;
  };
  // Early = first quartile of the golden run (longest prunable suffix, the
  // headline configuration); late = last quartile (bounds the benefit: even
  // a converged experiment has little left to skip).
  const std::vector<Distribution> distributions = {
      {"early", 1, golden / 4},
      {"late", golden * 3 / 4, golden - 1},
  };
  const std::vector<uint64_t> intervals = {64, 4096};

  std::printf("%-9s %-7s %-9s %-6s %10s %16s %9s %7s %6s\n", "location",
              "inject", "interval", "mode", "time [s]", "experiments/sec",
              "speedup", "pruned", "memo");
  for (const Location& location : locations) {
    for (const Distribution& dist : distributions) {
      const std::string base =
          std::string("cv_") + location.name + "_" + dist.name;
      core::CampaignData campaign = Campaign(
          base + "_cold", location.selector, dist.inject_min, dist.inject_max);
      const double cold_s = RunOnce(campaign, 0, false, nullptr);
      std::printf("%-9s %-7s %-9s %-6s %10.3f %16.1f %9s %7s %6s\n",
                  location.name, dist.name, "off", "-", cold_s,
                  kExperiments / cold_s, "1.00x", "-", "-");
      json.Add("cold_eps_" + std::string(location.name) + "_" + dist.name,
               kExperiments / cold_s);
      for (uint64_t interval : intervals) {
        const std::string suffix = std::string("_") + location.name + "_" +
                                   dist.name + "_i" + std::to_string(interval);
        // Warm-only control: same interval, pruning off. Everything beyond
        // this speedup is attributable to convergence pruning alone.
        campaign.name = base + "_w" + std::to_string(interval);
        const double warm_s = RunOnce(campaign, interval, false, nullptr);
        std::printf("%-9s %-7s %-9llu %-6s %10.3f %16.1f %8.2fx %7s %6s\n",
                    location.name, dist.name,
                    static_cast<unsigned long long>(interval), "warm", warm_s,
                    kExperiments / warm_s, cold_s / warm_s, "-", "-");
        json.Add("warm_eps" + suffix, kExperiments / warm_s);

        campaign.name = base + "_i" + std::to_string(interval);
        core::ConvergenceStats prune;
        const double elapsed = RunOnce(campaign, interval, true, &prune);
        const double speedup = cold_s / elapsed;
        std::printf("%-9s %-7s %-9llu %-6s %10.3f %16.1f %8.2fx %7lld %6lld\n",
                    location.name, dist.name,
                    static_cast<unsigned long long>(interval), "prune", elapsed,
                    kExperiments / elapsed, speedup,
                    static_cast<long long>(prune.pruned_total()),
                    static_cast<long long>(prune.pruned_memo));
        json.Add("pruned_eps" + suffix, kExperiments / elapsed);
        json.Add("speedup" + suffix, speedup);
        json.Add("speedup_vs_warm" + suffix, warm_s / elapsed);
        json.Add("pruned" + suffix,
                 static_cast<uint64_t>(prune.pruned_total()));
        json.Add("collision_rejects" + suffix,
                 static_cast<uint64_t>(prune.collision_rejects));
      }
    }
  }
  std::printf(
      "\nHeadline: speedup_pipeline_early_i64 is the acceptance metric "
      "(target >= 2x).\n");

  if (const char* path = JsonOutputPath(argc, argv)) json.Write(path);
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) {
  goofi::bench::Main(argc, argv);
  return 0;
}
