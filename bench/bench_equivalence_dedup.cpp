// E17 — fault-list equivalence classing: deduplicated vs plain / warm /
// pruned wall-clock, swept over fault location class x sampling density,
// single worker (so the numbers isolate classing, not parallelism).
//
// The mechanism pays off when many experiments sample the same location
// inside the same access window: only one representative per class executes,
// the rest are synthesized at commit time. Sampling density is the lever —
// the denser a campaign samples a narrow injection window over few
// locations, the more experiments collide in (location, bit, window). A
// single register-file cell at high density is the sweet spot; the broad
// regfile sweep at low density bounds the benefit (few collisions, classing
// ~free). Runtime-SWIFI memory faults give the second location class, where
// windows come from the data-access + instruction-fetch timelines.
//
// `--json <path>` additionally writes the headline metrics as a flat JSON
// object (see scripts/bench.sh). Acceptance: dedup_speedup_vs_pruned >= 1.5x
// on at least one (location class x density) cell.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/preinjection.hpp"

namespace goofi::bench {
namespace {

// ~14 retired instructions per control iteration: 4000 iterations give a
// ~56k-instruction golden run, so every non-executed member saves tens of
// thousands of simulated instructions.
constexpr int kIterations = 4000;

struct Cell {
  const char* location;     ///< location class label
  const char* density;      ///< sampling density label
  const char* workload;
  core::Technique technique;
  core::FaultLocationSelector selector;
  int experiments;
  uint64_t inject_min;
  uint64_t inject_max;
};

core::CampaignData Campaign(const std::string& name, const Cell& cell) {
  core::CampaignData campaign;
  campaign.name = name;
  campaign.technique = cell.technique;
  campaign.target_name = cell.technique == core::Technique::kScifi
                             ? core::ThorRdTarget::kTargetName
                             : core::SwifiSimTarget::kTargetName;
  campaign.workload = cell.workload;
  campaign.num_experiments = cell.experiments;
  campaign.locations = {cell.selector};
  campaign.inject_min_instr = cell.inject_min;
  campaign.inject_max_instr = cell.inject_max;
  campaign.max_iterations = kIterations;
  campaign.timeout_cycles = 100000000;
  return campaign;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

enum class Mode { kPlain, kWarm, kPruned, kDedup };

/// One timed single-worker campaign run in the given mode. Dedup stacks on
/// top of run-pruned (forced warm-start + convergence pruning), exactly like
/// the run-dedup shell command.
double RunOnce(const core::CampaignData& campaign, Mode mode,
               const std::shared_ptr<const core::LivenessAnalyzer>& timeline,
               core::EquivalenceStats* dedup) {
  db::Database db;
  core::CampaignStore store(&db);
  if (campaign.target_name == core::ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    if (!store
             .PutTargetSystem(core::ThorRdTarget::DescribeTarget(
                 card, core::ThorRdTarget::kTargetName))
             .ok()) {
      std::abort();
    }
  } else if (!store.PutTargetSystem(core::SwifiSimTarget::Describe()).ok()) {
    std::abort();
  }
  if (!store.PutCampaign(campaign).ok()) std::abort();
  const auto factory = campaign.target_name == core::ThorRdTarget::kTargetName
                           ? core::MakeSimThorFactory(&store)
                           : core::MakeSwifiSimFactory(&store);
  core::ParallelCampaignRunner runner(&store, factory, /*workers=*/1);
  if (mode != Mode::kPlain) runner.SetForceWarmStart(true);
  if (mode == Mode::kPruned || mode == Mode::kDedup) {
    runner.SetConvergencePruning(true);
  }
  if (mode == Mode::kDedup) {
    runner.SetEquivalenceClassing(true);
    runner.SetEquivalenceTimeline(timeline);
  }
  const auto start = std::chrono::steady_clock::now();
  if (auto st = runner.Run(campaign.name); !st.ok()) {
    std::fprintf(stderr, "run %s: %s\n", campaign.name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  const double elapsed = SecondsSince(start);
  if (dedup != nullptr) *dedup = runner.dedup_stats();
  return elapsed;
}

void Main(int argc, char** argv) {
  JsonReport json;
  std::printf(
      "Equivalence classing (E17): dedup vs plain/warm/pruned, 1 worker, "
      "pendulum_pd (SCIFI regfile) and fibonacci (runtime-SWIFI memory)\n\n");

  // Location class x sampling density. Dense cells concentrate many
  // experiments on few (location, bit, window) combinations; sparse cells
  // spread the same window over the full location population.
  // The dense regfile cell samples a register pendulum_pd never reads or
  // writes: such flips never converge with golden (the register stays
  // flipped through every boundary hash), so pruning executes the full
  // golden-length run per experiment — while all injection times share one
  // access window and the 160 experiments collapse to at most 32 classes
  // (one per bit). The dense memory cell samples fibonacci's tiny data
  // section, whose words are written once early and then idle.
  const std::vector<Cell> cells = {
      {"regfile", "dense", "pendulum_pd", core::Technique::kScifi,
       {"internal_regfile", "regfile.r13"}, 640, 1, 400},
      {"regfile", "sparse", "pendulum_pd", core::Technique::kScifi,
       {"internal_regfile", ""}, 40, 1, 4000},
      {"memory", "dense", "fibonacci", core::Technique::kSwifiRuntime,
       {"memory.data", ""}, 640, 1, 140},
      {"memory", "sparse", "fibonacci", core::Technique::kSwifiRuntime,
       {"memory.text", ""}, 40, 1, 140},
  };

  core::LivenessCache timelines;
  std::printf("%-8s %-7s %-7s %10s %16s %9s %8s %7s\n", "location", "density",
              "mode", "time [s]", "experiments/sec", "speedup", "classes",
              "synth");
  for (const Cell& cell : cells) {
    const std::string base =
        std::string("eq_") + cell.location + "_" + cell.density;
    auto timeline = timelines.Get(cell.workload, cpu::CpuConfig(), 100000000,
                                  kIterations);
    if (!timeline.ok()) {
      std::fprintf(stderr, "timeline %s: %s\n", cell.workload,
                   timeline.status().ToString().c_str());
      std::abort();
    }
    const std::string suffix =
        std::string("_") + cell.location + "_" + cell.density;

    core::CampaignData campaign = Campaign(base + "_plain", cell);
    const double plain_s = RunOnce(campaign, Mode::kPlain, nullptr, nullptr);
    std::printf("%-8s %-7s %-7s %10.3f %16.1f %9s %8s %7s\n", cell.location,
                cell.density, "plain", plain_s, cell.experiments / plain_s,
                "1.00x", "-", "-");
    json.Add("plain_eps" + suffix, cell.experiments / plain_s);

    campaign.name = base + "_warm";
    const double warm_s = RunOnce(campaign, Mode::kWarm, nullptr, nullptr);
    std::printf("%-8s %-7s %-7s %10.3f %16.1f %8.2fx %8s %7s\n", cell.location,
                cell.density, "warm", warm_s, cell.experiments / warm_s,
                plain_s / warm_s, "-", "-");
    json.Add("warm_eps" + suffix, cell.experiments / warm_s);

    campaign.name = base + "_pruned";
    const double pruned_s = RunOnce(campaign, Mode::kPruned, nullptr, nullptr);
    std::printf("%-8s %-7s %-7s %10.3f %16.1f %8.2fx %8s %7s\n", cell.location,
                cell.density, "pruned", pruned_s, cell.experiments / pruned_s,
                plain_s / pruned_s, "-", "-");
    json.Add("pruned_eps" + suffix, cell.experiments / pruned_s);

    campaign.name = base + "_dedup";
    core::EquivalenceStats dedup;
    const double dedup_s =
        RunOnce(campaign, Mode::kDedup, timeline.value(), &dedup);
    std::printf("%-8s %-7s %-7s %10.3f %16.1f %8.2fx %8lld %7lld\n",
                cell.location, cell.density, "dedup", dedup_s,
                cell.experiments / dedup_s, plain_s / dedup_s,
                static_cast<long long>(dedup.classes_formed),
                static_cast<long long>(dedup.experiments_synthesized));
    json.Add("dedup_eps" + suffix, cell.experiments / dedup_s);
    json.Add("dedup_speedup" + suffix, plain_s / dedup_s);
    json.Add("dedup_speedup_vs_pruned" + suffix, pruned_s / dedup_s);
    json.Add("classes" + suffix, static_cast<uint64_t>(dedup.classes_formed));
    json.Add("synthesized" + suffix,
             static_cast<uint64_t>(dedup.experiments_synthesized));
  }
  std::printf(
      "\nHeadline: dedup_speedup_vs_pruned_regfile_dense is the acceptance "
      "metric (target >= 1.5x on at least one cell).\n");

  if (const char* path = JsonOutputPath(argc, argv)) json.Write(path);
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) {
  goofi::bench::Main(argc, argv);
  return 0;
}
