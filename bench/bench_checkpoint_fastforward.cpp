// E13 — checkpoint fast-forward: experiments/sec for cold campaigns vs
// warm-started ones (golden-run checkpoint cache, core/checkpoint), swept
// over checkpoint interval x injection-time distribution x worker count,
// plus the cache's memory footprint per interval.
//
// The mechanism pays off when experiments inject late: a cold experiment
// re-simulates the whole fault-free prefix from reset, a warm one restores
// the nearest snapshot below its injection time and re-simulates only the
// remainder (at most one interval). Early injections bound the benefit; the
// early distribution rows quantify that.
//
// `--json <path>` additionally writes the headline metrics as a flat JSON
// object (see scripts/bench.sh).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace goofi::bench {
namespace {

constexpr int kExperiments = 40;
// ~14 retired instructions per control iteration: 4000 iterations give a
// ~56k-instruction golden run, long enough that simulation time dominates
// the per-experiment fixed costs (scan reads, state logging).
constexpr int kIterations = 4000;

core::CampaignData Campaign(const std::string& name, uint64_t inject_min,
                            uint64_t inject_max) {
  core::CampaignData campaign = BaseCampaign(name, "pendulum_pd");
  campaign.num_experiments = kExperiments;
  campaign.max_iterations = kIterations;
  campaign.inject_min_instr = inject_min;
  campaign.inject_max_instr = inject_max;
  campaign.timeout_cycles = 100000000;
  return campaign;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Retired instructions of the fault-free run — the golden-run length the
/// injection windows are placed against.
uint64_t ProbeGoldenLength() {
  Session session;
  core::CampaignData campaign = Campaign("cp_probe", 1, 1000);
  if (!session.store.PutCampaign(campaign).ok()) std::abort();
  session.target.SetCheckpointInterval(0);
  if (!session.target.PrepareCampaign(campaign).ok()) std::abort();
  auto rows = session.target.ExecuteExperiment(-1);
  if (!rows.ok()) {
    std::fprintf(stderr, "reference run: %s\n",
                 rows.status().ToString().c_str());
    std::abort();
  }
  return rows.value().front().state.instret;
}

/// One timed campaign through the parallel runner. `interval` 0 = cold.
double RunOnce(const core::CampaignData& campaign, uint64_t interval,
               int workers, int* warm_starts) {
  db::Database db;
  core::CampaignStore store(&db);
  testcard::SimTestCard card;
  if (!store
           .PutTargetSystem(core::ThorRdTarget::DescribeTarget(
               card, core::ThorRdTarget::kTargetName))
           .ok()) {
    std::abort();
  }
  if (!store.PutCampaign(campaign).ok()) std::abort();
  core::ParallelCampaignRunner runner(&store, core::MakeSimThorFactory(&store),
                                      workers);
  runner.SetCheckpointInterval(interval);
  runner.SetForceWarmStart(interval > 0);
  const auto start = std::chrono::steady_clock::now();
  if (auto st = runner.Run(campaign.name); !st.ok()) {
    std::fprintf(stderr, "run %s: %s\n", campaign.name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  const double elapsed = SecondsSince(start);
  if (warm_starts != nullptr) *warm_starts = runner.warm_starts();
  return elapsed;
}

void Main(int argc, char** argv) {
  JsonReport json;
  const uint64_t golden = ProbeGoldenLength();
  std::printf(
      "Checkpoint fast-forward (E13): %d SCIFI experiments, pendulum_pd "
      "control workload, golden run = %llu instructions\n\n",
      kExperiments, static_cast<unsigned long long>(golden));
  json.Add("golden_instret", golden);
  json.Add("experiments", kExperiments);

  struct Distribution {
    const char* name;
    uint64_t inject_min;
    uint64_t inject_max;
  };
  // Late = last quartile of the golden run (the fast-forward sweet spot);
  // early = first quartile (bounds the worst case).
  const std::vector<Distribution> distributions = {
      {"late", golden * 3 / 4, golden - 1},
      {"early", 1, golden / 4},
  };
  const std::vector<uint64_t> intervals = {1024, 4096, 16384};
  const std::vector<int> worker_counts = {1, 2};

  std::printf("%-8s %-9s %8s %10s %16s %9s %6s\n", "inject", "interval",
              "workers", "time [s]", "experiments/sec", "speedup", "warm");
  for (const Distribution& dist : distributions) {
    core::CampaignData campaign =
        Campaign(std::string("cp_ff_") + dist.name, dist.inject_min,
                 dist.inject_max);
    // Cold baselines, one per worker count, so each warm row compares
    // against the identical engine configuration.
    std::vector<double> cold_s(worker_counts.size());
    for (size_t w = 0; w < worker_counts.size(); ++w) {
      campaign.name = std::string("cp_ff_") + dist.name + "_cold_w" +
                      std::to_string(worker_counts[w]);
      cold_s[w] = RunOnce(campaign, 0, worker_counts[w], nullptr);
      std::printf("%-8s %-9s %8d %10.3f %16.1f %9s %6s\n", dist.name, "cold",
                  worker_counts[w], cold_s[w], kExperiments / cold_s[w],
                  "1.00x", "-");
      json.Add(std::string("cold_eps_") + dist.name + "_w" +
                   std::to_string(worker_counts[w]),
               kExperiments / cold_s[w]);
    }
    for (uint64_t interval : intervals) {
      for (size_t w = 0; w < worker_counts.size(); ++w) {
        campaign.name = std::string("cp_ff_") + dist.name + "_i" +
                        std::to_string(interval) + "_w" +
                        std::to_string(worker_counts[w]);
        int warm_starts = 0;
        const double elapsed =
            RunOnce(campaign, interval, worker_counts[w], &warm_starts);
        const double speedup = cold_s[w] / elapsed;
        std::printf("%-8s %-9llu %8d %10.3f %16.1f %8.2fx %6d\n", dist.name,
                    static_cast<unsigned long long>(interval),
                    worker_counts[w], elapsed, kExperiments / elapsed, speedup,
                    warm_starts);
        const std::string suffix = std::string("_") + dist.name + "_i" +
                                   std::to_string(interval) + "_w" +
                                   std::to_string(worker_counts[w]);
        json.Add("warm_eps" + suffix, kExperiments / elapsed);
        json.Add("speedup" + suffix, speedup);
      }
    }
  }

  // Memory footprint: page-delta snapshots keep each checkpoint far below
  // the 1 MiB a full memory image would cost.
  std::printf("\n%-9s %12s %16s %18s\n", "interval", "checkpoints",
              "cache bytes", "bytes/checkpoint");
  Session session;
  core::CampaignData campaign = Campaign("cp_ff_mem", 1, golden - 1);
  if (!session.store.PutCampaign(campaign).ok()) std::abort();
  session.target.SetCheckpointInterval(0);
  if (!session.target.PrepareCampaign(campaign).ok()) std::abort();
  for (uint64_t interval : intervals) {
    core::CheckpointCache cache(interval);
    if (auto st = session.target.BuildCheckpoints(interval, &cache);
        !st.ok()) {
      std::fprintf(stderr, "BuildCheckpoints(%llu): %s\n",
                   static_cast<unsigned long long>(interval),
                   st.ToString().c_str());
      std::abort();
    }
    const size_t bytes = cache.MemoryBytes();
    std::printf("%-9llu %12zu %16zu %18zu\n",
                static_cast<unsigned long long>(interval), cache.size(), bytes,
                cache.size() == 0 ? size_t{0} : bytes / cache.size());
    const std::string suffix = "_i" + std::to_string(interval);
    json.Add("checkpoints" + suffix, static_cast<uint64_t>(cache.size()));
    json.Add("cache_bytes" + suffix, static_cast<uint64_t>(bytes));
  }

  if (const char* path = JsonOutputPath(argc, argv)) json.Write(path);
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) {
  goofi::bench::Main(argc, argv);
  return 0;
}
