// E8 (paper §4): fault models — transient vs intermittent vs permanent.
//
// "Support for additional fault models such as intermittent and permanent
// faults" is a listed extension; this experiment compares all three on the
// same fault population (register file + core, bubblesort) and on the
// pendulum control application.
//
// Expected shape: effectiveness (and detections) grow monotonically from
// transient through intermittent bursts to permanently re-imposed stuck-ats.

#include <cstdio>

#include "bench_common.hpp"

using namespace goofi;
using namespace goofi::bench;

int main() {
  std::printf("E8: fault-model comparison (SCIFI, 200 experiments per row)\n\n");
  PrintOutcomeHeader();

  const struct {
    core::FaultModelKind kind;
    const char* label;
  } models[] = {
      {core::FaultModelKind::kTransientBitFlip, "transient"},
      {core::FaultModelKind::kIntermittentBitFlip, "intermittent(4x50)"},
      {core::FaultModelKind::kPermanentStuckAt, "permanent"},
  };

  for (const char* workload : {"bubblesort", "pendulum_pd"}) {
    Session session;
    for (const auto& model : models) {
      core::CampaignData campaign = BaseCampaign(
          std::string("e8_") + workload + "_" + model.label, workload);
      campaign.fault_model = model.kind;
      campaign.burst_length = 4;
      campaign.burst_spacing = 50;
      campaign.locations = {{"internal_regfile", ""}, {"internal_core", ""}};
      if (std::string(workload) == "pendulum_pd") {
        campaign.max_iterations = 150;
        campaign.timeout_cycles = 500000;
        campaign.inject_max_instr = 2000;
      }
      const auto report = RunAndAnalyze(session, campaign);
      PrintOutcomeRow(std::string(workload) + "/" + model.label, report);
    }
  }

  std::printf(
      "\nExpected shape: transient < intermittent < permanent in effective\n"
      "errors; permanent faults on the control workload produce the most\n"
      "escaped failures because the corruption is re-imposed every burst\n"
      "period and cannot be flushed by the controller's loop.\n");
  return 0;
}
