// E6 (paper §2/§3.1): scan-chain access cost.
//
// SCIFI pays for state access in TCK cycles proportional to chain length.
// Measures read/modify/write cost per chain (the five Thor-RD-style chains
// differ by an order of magnitude in length) and reports TCKs per access —
// the quantity that dominates real SCIFI campaign duration.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace goofi::bench {
namespace {

void BM_ChainReadRestore(benchmark::State& state, const char* chain) {
  testcard::SimTestCard card;
  (void)card.Init();
  const uint64_t tck_before = card.tck_count();
  uint64_t reads = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(card.ReadScanChain(chain, true));
    ++reads;
  }
  state.counters["chain_bits"] = static_cast<double>(
      card.chains().Find(chain)->length_bits());
  state.counters["tck_per_read"] = benchmark::Counter(
      static_cast<double>(card.tck_count() - tck_before) /
      static_cast<double>(reads));
}

void BM_ChainWrite(benchmark::State& state, const char* chain) {
  testcard::SimTestCard card;
  (void)card.Init();
  util::BitVec image(card.chains().Find(chain)->length_bits());
  const uint64_t tck_before = card.tck_count();
  uint64_t writes = 0;
  for (auto _ : state) {
    if (!card.WriteScanChain(chain, image).ok()) std::abort();
    ++writes;
  }
  state.counters["tck_per_write"] = benchmark::Counter(
      static_cast<double>(card.tck_count() - tck_before) /
      static_cast<double>(writes));
}

BENCHMARK_CAPTURE(BM_ChainReadRestore, boundary, "boundary");
BENCHMARK_CAPTURE(BM_ChainReadRestore, internal_core, "internal_core");
BENCHMARK_CAPTURE(BM_ChainReadRestore, internal_regfile, "internal_regfile");
BENCHMARK_CAPTURE(BM_ChainReadRestore, internal_icache, "internal_icache");
BENCHMARK_CAPTURE(BM_ChainReadRestore, internal_dcache, "internal_dcache");
BENCHMARK_CAPTURE(BM_ChainWrite, internal_regfile, "internal_regfile");
BENCHMARK_CAPTURE(BM_ChainWrite, internal_dcache, "internal_dcache");

// Direct (non-scan) state access as the comparison point: what a simulator
// backend could do without the test logic. The gap is the cost of being
// faithful to the SCIFI hardware path.
void BM_DirectStateAccess(benchmark::State& state) {
  cpu::Cpu cpu;
  auto registry = cpu.BuildStateRegistry();
  scan::ScanChainSet chains = scan::ScanChainSet::BuildDefault(registry);
  const scan::ScanChain* chain = chains.Find("internal_regfile");
  for (auto _ : state) {
    util::BitVec image = chain->Capture();
    image.Flip(42);
    chain->Update(image);
    benchmark::DoNotOptimize(image);
  }
}
BENCHMARK(BM_DirectStateAccess);

// TAP instruction-register traffic alone (fixed, chain-independent cost).
void BM_TapInstructionLoad(benchmark::State& state) {
  testcard::SimTestCard card;
  (void)card.Init();
  for (auto _ : state) {
    // IDCODE read: IR load + 32-bit DR scan.
    benchmark::DoNotOptimize(card.ReadScanChain("boundary", false));
  }
}
BENCHMARK(BM_TapInstructionLoad);

}  // namespace
}  // namespace goofi::bench

BENCHMARK_MAIN();
