// E10 (paper ref [12], GOOFI's first published deployment): critical
// failures of a control application with and without executable assertions
// and best-effort recovery.
//
// Three PD-pendulum controller variants face the same SCIFI register-file
// fault population; the headline number is the count of *critical failures*
// — experiments in which the pendulum fell.

#include <cstdio>

#include "bench_common.hpp"

using namespace goofi;
using namespace goofi::bench;

int main() {
  const int n = 600;
  std::printf("E10: executable assertions + best-effort recovery (ref [12])\n");
  std::printf("SCIFI, register file, %d experiments per controller\n\n", n);

  std::printf("%-22s %9s %9s %9s %10s %18s\n", "controller", "detected",
              "escaped", "latent", "overwrit.", "critical (fell)");

  Session session;
  for (const char* workload :
       {"pendulum_pd", "pendulum_pd_assert", "pendulum_pd_trap"}) {
    core::CampaignData campaign =
        BaseCampaign(std::string("e10_") + workload, workload);
    campaign.num_experiments = n;
    campaign.max_iterations = 250;
    campaign.timeout_cycles = 600000;
    campaign.inject_min_instr = 50;
    campaign.inject_max_instr = 3000;
    const auto report = RunAndAnalyze(session, campaign);

    // Critical failures: count env_failed over the campaign's experiments.
    int critical = 0;
    auto rows = session.store.ExperimentsOf(campaign.name).ValueOrDie();
    for (const auto& row : rows) {
      if (!row.parent_experiment.empty()) continue;
      if (row.experiment_name == core::CampaignStore::ReferenceName(campaign.name)) {
        continue;
      }
      if (row.state.env_failed) ++critical;
    }
    std::printf("%-22s %9d %9d %9d %10d %18d\n", workload,
                report.Count(core::Outcome::kDetected),
                report.Count(core::Outcome::kEscaped),
                report.Count(core::Outcome::kLatent),
                report.Count(core::Outcome::kOverwritten), critical);
  }

  std::printf(
      "\nExpected shape (ref [12]): recovery assertions reduce critical\n"
      "failures to (near) zero versus the unprotected controller; fail-stop\n"
      "assertions instead convert failures into software_assertion\n"
      "detections, raising the detected column.\n");
  return 0;
}
