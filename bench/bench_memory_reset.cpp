// E19 — zero-copy experiment reset: throughput of the per-experiment memory
// reset cycle under COW paging vs the flat-model reference (what the
// pre-paging Memory did: memset the full array, re-download word by word,
// copy the whole image into the baseline), plus the knock-on effects the
// paging exists for — experiments/sec of a setup-dominated campaign and
// per-worker resident memory with the golden image interned once.
//
// Two reset flavors are timed:
//
//   power-cycle — Reset() + full image re-download (the cold-experiment
//                 prologue; COW adopts golden pages by memcmp + repoint);
//   restore     — RestoreDelta back to the baseline (the warm-start path;
//                 COW repoints dirty pages, flat copies the whole baseline).
//
// `--json <path>` additionally writes the headline metrics as a flat JSON
// object (see scripts/bench.sh).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "cpu/memory.hpp"

namespace goofi::bench {
namespace {

constexpr uint32_t kMemoryBytes = 1u << 20;  // the simulated target's 1 MiB
constexpr size_t kImageWords = 16 * 1024;    // 64 KiB workload image
constexpr int kDirtyPages = 16;              // per-experiment working set
constexpr int kResetIterations = 2000;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<uint32_t> WorkloadImage() {
  std::vector<uint32_t> image(kImageWords);
  std::mt19937 rng(0x600F1);
  for (uint32_t& word : image) word = rng();
  return image;
}

/// Word indices one experiment dirties (spread across the address space).
std::vector<uint32_t> DirtySet() {
  std::vector<uint32_t> words;
  std::mt19937 rng(1234);
  for (int i = 0; i < kDirtyPages; ++i) {
    const uint32_t page = rng() % (kMemoryBytes / 4 / cpu::Memory::kPageWords);
    words.push_back(page * cpu::Memory::kPageWords +
                    rng() % cpu::Memory::kPageWords);
  }
  return words;
}

/// The COW power-cycle loop: dirty the working set, Reset (table repoint),
/// re-download the image (golden adoption), ready for the next experiment.
double CowPowerCycle(const std::vector<uint32_t>& image,
                     const std::vector<uint32_t>& dirty) {
  cpu::Memory memory(kMemoryBytes);
  if (!memory.HostWriteRange(0, image.data(), image.size()).ok()) std::abort();
  memory.MarkCleanBaseline();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kResetIterations; ++i) {
    for (uint32_t w : dirty) (void)memory.Write(w * 4, i + w);
    memory.Reset();
    if (!memory.HostWriteRange(0, image.data(), image.size()).ok()) {
      std::abort();
    }
  }
  const double elapsed = SecondsSince(start);
  if (memory.counters().golden_adoptions == 0) std::abort();  // sanity
  return kResetIterations / elapsed;
}

/// The COW warm-restore loop: dirty the working set, RestoreDelta back to
/// the baseline (repoint only).
double CowRestore(const std::vector<uint32_t>& image,
                  const std::vector<uint32_t>& dirty) {
  cpu::Memory memory(kMemoryBytes);
  if (!memory.HostWriteRange(0, image.data(), image.size()).ok()) std::abort();
  memory.MarkCleanBaseline();
  const cpu::Memory::Delta baseline;  // empty delta == pristine baseline
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kResetIterations; ++i) {
    for (uint32_t w : dirty) (void)memory.Write(w * 4, i + w);
    memory.RestoreDelta(baseline);
  }
  return kResetIterations / SecondsSince(start);
}

/// The flat reference: full-size memset, word-loop re-download, whole-image
/// baseline copy — the historical Memory's power cycle.
double FlatPowerCycle(const std::vector<uint32_t>& image,
                      const std::vector<uint32_t>& dirty) {
  std::vector<uint32_t> words(kMemoryBytes / 4, 0);
  // Sized up front: copy-assigning into an empty vector trips GCC 12's
  // -Wstringop-overflow false positive on the reallocating memmove, and the
  // historical engine kept a persistent baseline buffer anyway.
  std::vector<uint32_t> baseline(kMemoryBytes / 4, 0);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kResetIterations; ++i) {
    for (uint32_t w : dirty) words[w] = i + w;
    std::fill(words.begin(), words.end(), 0u);
    for (size_t w = 0; w < image.size(); ++w) words[w] = image[w];
    baseline = words;
  }
  const double elapsed = SecondsSince(start);
  if (baseline.empty()) std::abort();  // keep the copy observable
  return kResetIterations / elapsed;
}

/// The flat warm restore: copy the whole baseline back.
double FlatRestore(const std::vector<uint32_t>& image,
                   const std::vector<uint32_t>& dirty) {
  std::vector<uint32_t> words(kMemoryBytes / 4, 0);
  std::copy(image.begin(), image.end(), words.begin());
  const std::vector<uint32_t> baseline = words;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kResetIterations; ++i) {
    for (uint32_t w : dirty) words[w] = i + w;
    std::memcpy(words.data(), baseline.data(),
                baseline.size() * sizeof(uint32_t));
  }
  return kResetIterations / SecondsSince(start);
}

/// A setup-dominated campaign (short injection window, small workload): the
/// per-experiment reset cycle is a large share of the runtime, so E19's
/// repoint-based reset shows up directly in experiments/sec. Also reports
/// the runner's memory aggregation — the golden image must be resident once
/// regardless of worker count.
void CampaignSection(JsonReport* json) {
  core::CampaignData campaign = BaseCampaign("mem_reset_epc", "bubblesort");
  campaign.num_experiments = 120;
  campaign.inject_max_instr = 200;
  campaign.timeout_cycles = 100000;

  std::printf("\n%-8s %10s %16s %14s %15s %14s\n", "workers", "time [s]",
              "experiments/sec", "resident/tgt", "golden bytes", "golden imgs");
  for (int workers : {1, 2, 4, 8}) {
    db::Database db;
    core::CampaignStore store(&db);
    testcard::SimTestCard card;
    if (!store
             .PutTargetSystem(core::ThorRdTarget::DescribeTarget(
                 card, core::ThorRdTarget::kTargetName))
             .ok()) {
      std::abort();
    }
    campaign.name = "mem_reset_epc_w" + std::to_string(workers);
    if (!store.PutCampaign(campaign).ok()) std::abort();
    core::ParallelCampaignRunner runner(&store,
                                        core::MakeSimThorFactory(&store),
                                        workers);
    const auto start = std::chrono::steady_clock::now();
    if (auto st = runner.Run(campaign.name); !st.ok()) {
      std::fprintf(stderr, "run: %s\n", st.ToString().c_str());
      std::abort();
    }
    const double elapsed = SecondsSince(start);
    const cpu::MemoryUsageAggregator::Totals& memory = runner.memory_usage();
    const uint64_t resident_per_target =
        memory.targets == 0
            ? 0
            : memory.resident_bytes / static_cast<uint64_t>(memory.targets);
    std::printf("%-8d %10.3f %16.1f %14llu %15llu %14d\n", workers, elapsed,
                campaign.num_experiments / elapsed,
                static_cast<unsigned long long>(resident_per_target),
                static_cast<unsigned long long>(memory.golden_image_bytes),
                memory.golden_images);
    const std::string suffix = "_w" + std::to_string(workers);
    json->Add("campaign_eps" + suffix, campaign.num_experiments / elapsed);
    json->Add("resident_bytes_per_target" + suffix, resident_per_target);
    json->Add("golden_image_bytes" + suffix, memory.golden_image_bytes);
    json->Add("golden_images" + suffix, memory.golden_images);
  }
}

void Main(int argc, char** argv) {
  JsonReport json;
  const std::vector<uint32_t> image = WorkloadImage();
  const std::vector<uint32_t> dirty = DirtySet();
  std::printf(
      "Zero-copy experiment reset (E19): %u KiB memory, %zu KiB image, "
      "%d dirty pages per experiment, %d reset cycles\n\n",
      kMemoryBytes / 1024, kImageWords * 4 / 1024, kDirtyPages,
      kResetIterations);
  json.Add("memory_bytes", static_cast<uint64_t>(kMemoryBytes));
  json.Add("dirty_pages", kDirtyPages);

  const double flat_power = FlatPowerCycle(image, dirty);
  const double cow_power = CowPowerCycle(image, dirty);
  const double flat_restore = FlatRestore(image, dirty);
  const double cow_restore = CowRestore(image, dirty);

  std::printf("%-14s %16s %16s %9s\n", "reset flavor", "flat resets/s",
              "cow resets/s", "speedup");
  std::printf("%-14s %16.1f %16.1f %8.2fx\n", "power-cycle", flat_power,
              cow_power, cow_power / flat_power);
  std::printf("%-14s %16.1f %16.1f %8.2fx\n", "restore", flat_restore,
              cow_restore, cow_restore / flat_restore);
  json.Add("flat_power_cycle_rps", flat_power);
  json.Add("cow_power_cycle_rps", cow_power);
  json.Add("power_cycle_speedup", cow_power / flat_power);
  json.Add("flat_restore_rps", flat_restore);
  json.Add("cow_restore_rps", cow_restore);
  json.Add("restore_speedup", cow_restore / flat_restore);

  CampaignSection(&json);

  if (const char* path = JsonOutputPath(argc, argv)) json.Write(path);
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) {
  goofi::bench::Main(argc, argv);
  return 0;
}
