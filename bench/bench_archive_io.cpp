// E18 — campaign archive I/O: binary columnar snapshot vs legacy text
// save/load, and per-batch WAL group commit vs full-file rewrite as the
// durability mechanism behind the parallel runner's ordered commits.
//
// The workload is a populated campaign database (32 campaigns x 600 logged
// experiments, realistic experimentData/stateVector text), then a commit
// phase of 50 further 64-row batches — the shape PutExperiments produces.
// Three comparisons:
//
//   snapshot save   : Database::Save (binary columnar)  vs SaveLegacyText
//   snapshot load   : Database::Load of each format
//   incremental commit: WAL append+flush per batch      vs full Save per batch
//
// plus the recovery cost (snapshot load + WAL replay) and a differential
// self-check: the recovered database must dump byte-identical to the
// database that never left memory.
//
// `--json <path>` writes the headline metrics as a flat JSON object (see
// scripts/bench.sh). Acceptance: wal_commit_speedup >= 5x.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "db/archive.hpp"
#include "util/strings.hpp"

namespace goofi::bench {
namespace {

constexpr int kCampaigns = 32;
constexpr int kRowsPerCampaign = 600;
constexpr int kCommitBatches = 50;
constexpr int kBatchRows = 64;  ///< the runner's commit-batch size

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string Dump(const db::Database& db) {
  const std::string path = "/tmp/bench_archive_dump.tmp";
  if (!db.SaveLegacyText(path).ok()) std::abort();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  return buf.str();
}

core::CampaignStore::ExperimentRow MakeRow(const std::string& campaign,
                                           int index) {
  core::CampaignStore::ExperimentRow row;
  row.experiment_name = campaign + "/e" + util::Format("%04d", index);
  row.campaign_name = campaign;
  row.experiment_data = util::Format(
      "cycle=%d;location=internal_regfile.r%d;bit=%d;model=transient_bitflip",
      1000 + index * 37, index % 32, index % 24);
  core::LoggedState state;
  state.halted = index % 5 != 0;
  state.detected = index % 3 == 0;
  if (state.detected) state.edm = "hw_exception";
  state.cycles = 50000 + static_cast<uint64_t>(index) * 13;
  state.instret = 12000 + static_cast<uint64_t>(index) * 7;
  state.iterations = index % 100;
  for (int i = 0; i < 8; ++i) {
    state.outputs.push_back(static_cast<uint32_t>(index * 2654435761u + i));
  }
  row.state = state;
  return row;
}

/// Fills `store` with the base dataset: one target, kCampaigns campaigns,
/// kRowsPerCampaign logged experiments each.
void Populate(core::CampaignStore* store) {
  core::TargetSystemData target;
  target.name = "bench-archive-target";
  target.description = "synthetic target for archive I/O measurements";
  for (int chain = 0; chain < 8; ++chain) {
    for (int cell = 0; cell < 16; ++cell) {
      target.chain_data += util::Format("chain%d cell%02d 32 0\n", chain, cell);
    }
  }
  if (!store->PutTargetSystem(target).ok()) std::abort();
  for (int c = 0; c < kCampaigns; ++c) {
    core::CampaignData campaign = BaseCampaign(util::Format("arch%02d", c),
                                               "bubblesort");
    campaign.target_name = target.name;
    campaign.num_experiments = kRowsPerCampaign;
    if (!store->PutCampaign(campaign).ok()) std::abort();
    std::vector<core::CampaignStore::ExperimentRow> rows;
    rows.reserve(kRowsPerCampaign);
    for (int i = 0; i < kRowsPerCampaign; ++i) {
      rows.push_back(MakeRow(campaign.name, i));
    }
    if (!store->PutExperiments(rows).ok()) std::abort();
  }
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<uint64_t>(in.tellg()) : 0;
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) {
  using namespace goofi;
  using namespace goofi::bench;
  using Clock = std::chrono::steady_clock;

  const std::string bin_path = "/tmp/bench_archive_snapshot.bin";
  const std::string text_path = "/tmp/bench_archive_snapshot.txt";
  const std::string arch_path = "/tmp/bench_archive_wal.db";
  const std::string rewrite_path = "/tmp/bench_archive_rewrite.db";

  db::Database base;
  core::CampaignStore base_store(&base);
  Populate(&base_store);
  const int base_rows = kCampaigns * kRowsPerCampaign;
  std::printf("E18 — campaign archive I/O (%d campaigns, %d logged rows)\n\n",
              kCampaigns, base_rows);

  // --- snapshot save/load: binary columnar vs legacy text -------------------
  auto start = Clock::now();
  if (!base.SaveLegacyText(text_path).ok()) std::abort();
  const double save_text_ms = SecondsSince(start) * 1e3;
  start = Clock::now();
  if (!base.Save(bin_path).ok()) std::abort();
  const double save_bin_ms = SecondsSince(start) * 1e3;
  const uint64_t text_bytes = FileBytes(text_path);
  const uint64_t bin_bytes = FileBytes(bin_path);

  db::Database from_text;
  start = Clock::now();
  if (!from_text.Load(text_path).ok()) std::abort();
  const double load_text_ms = SecondsSince(start) * 1e3;
  db::Database from_bin;
  start = Clock::now();
  if (!from_bin.Load(bin_path).ok()) std::abort();
  const double load_bin_ms = SecondsSince(start) * 1e3;
  if (Dump(from_text) != Dump(base) || Dump(from_bin) != Dump(base)) {
    std::fprintf(stderr, "FAIL: loaded snapshot differs from saved database\n");
    return 1;
  }

  std::printf("%-34s %10s %10s %9s\n", "snapshot", "text", "binary", "ratio");
  std::printf("%-34s %8.1fms %8.1fms %8.2fx\n", "save", save_text_ms,
              save_bin_ms, save_text_ms / save_bin_ms);
  std::printf("%-34s %8.1fms %8.1fms %8.2fx\n", "load", load_text_ms,
              load_bin_ms, load_text_ms / load_bin_ms);
  std::printf("%-34s %8.1fKB %8.1fKB %8.2fx\n\n", "file size",
              text_bytes / 1024.0, bin_bytes / 1024.0,
              static_cast<double>(text_bytes) / static_cast<double>(bin_bytes));

  // --- incremental commit: WAL group commit vs full-file rewrite ------------
  // Both sides start from the same populated database and append
  // kCommitBatches batches of kBatchRows rows, making each batch durable
  // before the next — the WAL side with one group-committed append, the
  // baseline by rewriting the whole snapshot.
  std::remove(arch_path.c_str());
  std::remove((arch_path + ".wal").c_str());
  double wal_ms = 0;
  std::string wal_dump;
  {
    db::Database db;
    core::CampaignStore store(&db);
    Populate(&store);
    db::ArchiveOptions options;
    options.auto_checkpoint = false;  // measure pure append+flush commits
    auto archive = db::Archive::Open(&db, arch_path, options);
    if (!archive.ok()) std::abort();
    store.AttachArchive(archive.value().get());
    start = Clock::now();
    for (int b = 0; b < kCommitBatches; ++b) {
      std::vector<core::CampaignStore::ExperimentRow> rows;
      rows.reserve(kBatchRows);
      for (int i = 0; i < kBatchRows; ++i) {
        rows.push_back(MakeRow("arch00", kRowsPerCampaign + b * kBatchRows + i));
      }
      if (!store.PutExperiments(rows).ok()) std::abort();
    }
    wal_ms = SecondsSince(start) * 1e3;
    wal_dump = Dump(db);
    store.AttachArchive(nullptr);
    if (!archive.value()->Close().ok()) std::abort();
  }
  double rewrite_ms = 0;
  {
    db::Database db;
    core::CampaignStore store(&db);
    Populate(&store);
    start = Clock::now();
    for (int b = 0; b < kCommitBatches; ++b) {
      std::vector<core::CampaignStore::ExperimentRow> rows;
      rows.reserve(kBatchRows);
      for (int i = 0; i < kBatchRows; ++i) {
        rows.push_back(MakeRow("arch00", kRowsPerCampaign + b * kBatchRows + i));
      }
      if (!store.PutExperiments(rows).ok()) std::abort();
      if (!db.Save(rewrite_path).ok()) std::abort();
    }
    rewrite_ms = SecondsSince(start) * 1e3;
    if (Dump(db) != wal_dump) {
      std::fprintf(stderr, "FAIL: WAL and rewrite paths diverged\n");
      return 1;
    }
  }
  const double wal_per_batch = wal_ms / kCommitBatches;
  const double rewrite_per_batch = rewrite_ms / kCommitBatches;
  const double commit_speedup = rewrite_per_batch / wal_per_batch;
  std::printf("%-34s %10s %10s\n", "incremental commit",
              "per batch", "total");
  std::printf("%-34s %8.3fms %8.1fms\n", "WAL group commit", wal_per_batch,
              wal_ms);
  std::printf("%-34s %8.3fms %8.1fms\n", "full snapshot rewrite",
              rewrite_per_batch, rewrite_ms);
  std::printf("%-34s %8.2fx\n\n", "commit speedup", commit_speedup);

  // --- recovery: snapshot load + WAL replay ---------------------------------
  double recovery_ms = 0;
  uint64_t replayed = 0;
  {
    db::Database db;
    start = Clock::now();
    auto archive = db::Archive::Open(&db, arch_path);
    recovery_ms = SecondsSince(start) * 1e3;
    if (!archive.ok()) std::abort();
    replayed = archive.value()->stats().wal_records_replayed;
    if (Dump(db) != wal_dump) {
      std::fprintf(stderr,
                   "FAIL: recovered database differs from in-memory run\n");
      return 1;
    }
    if (!archive.value()->Close().ok()) std::abort();
  }
  std::printf("recovery (snapshot + %llu WAL records)   %8.1fms\n",
              static_cast<unsigned long long>(replayed), recovery_ms);
  std::printf("self-check: recovered database is byte-identical\n");

  if (const char* json = JsonOutputPath(argc, argv)) {
    JsonReport report;
    report.Add("rows", base_rows);
    report.Add("save_text_ms", save_text_ms);
    report.Add("save_binary_ms", save_bin_ms);
    report.Add("save_speedup", save_text_ms / save_bin_ms);
    report.Add("load_text_ms", load_text_ms);
    report.Add("load_binary_ms", load_bin_ms);
    report.Add("load_speedup", load_text_ms / load_bin_ms);
    report.Add("file_text_bytes", text_bytes);
    report.Add("file_binary_bytes", bin_bytes);
    report.Add("wal_commit_ms_per_batch", wal_per_batch);
    report.Add("rewrite_commit_ms_per_batch", rewrite_per_batch);
    report.Add("wal_commit_speedup", commit_speedup);
    report.Add("recovery_ms", recovery_ms);
    report.Add("wal_records_replayed", replayed);
    report.Write(json);
  }

  std::remove(bin_path.c_str());
  std::remove(text_path.c_str());
  std::remove(arch_path.c_str());
  std::remove((arch_path + ".wal").c_str());
  std::remove(rewrite_path.c_str());
  return 0;
}
