// Shared helpers for the GOOFI benchmark/experiment harness.
//
// Each bench binary regenerates one experiment from DESIGN.md (E1..E10):
// either a google-benchmark timing run or a printed results table in the
// shape the paper's §3.4 analysis produces.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::bench {

/// `--json <path>` support: benches that emit machine-readable metrics
/// collect them here and dump one flat JSON object next to the printed
/// table, so scripts (scripts/bench.sh, scripts/tier1.sh) can track
/// performance without parsing the human-readable output.
class JsonReport {
 public:
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    entries_.emplace_back(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    entries_.emplace_back(key, std::to_string(value));
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + entries_[i].first + "\": " + entries_[i].second;
    }
    out += "}\n";
    return out;
  }

  /// Writes the report; aborts on I/O errors (benches must fail loudly).
  void Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::abort();
    }
    const std::string text = ToString();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Returns the path following a `--json` flag, or nullptr when absent.
inline const char* JsonOutputPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return nullptr;
}

/// A ready-to-run GOOFI session: database + store + simulated target.
struct Session {
  db::Database db;
  core::CampaignStore store;
  testcard::SimTestCard card;
  core::ThorRdTarget target;

  explicit Session(const cpu::CpuConfig& config = cpu::CpuConfig())
      : store(&db), card(config), target(&store, &card) {
    (void)store.PutTargetSystem(core::ThorRdTarget::DescribeTarget(
        card, core::ThorRdTarget::kTargetName));
  }
};

/// A baseline campaign; benches override fields as needed.
inline core::CampaignData BaseCampaign(const std::string& name,
                                       const std::string& workload) {
  core::CampaignData campaign;
  campaign.name = name;
  campaign.target_name = core::ThorRdTarget::kTargetName;
  campaign.technique = core::Technique::kScifi;
  campaign.fault_model = core::FaultModelKind::kTransientBitFlip;
  campaign.num_experiments = 200;
  campaign.workload = workload;
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1000;
  campaign.timeout_cycles = 150000;
  return campaign;
}

/// Runs a campaign and prints its §3.4 outcome row. Aborts on error (benches
/// must fail loudly).
inline core::AnalysisReport RunAndAnalyze(Session& session,
                                          const core::CampaignData& campaign) {
  if (auto st = session.store.PutCampaign(campaign); !st.ok()) {
    std::fprintf(stderr, "PutCampaign(%s): %s\n", campaign.name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  if (auto st = session.target.RunCampaign(campaign.name); !st.ok()) {
    std::fprintf(stderr, "RunCampaign(%s): %s\n", campaign.name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  auto report = core::AnalyzeCampaign(session.store, campaign.name);
  if (!report.ok()) {
    std::fprintf(stderr, "AnalyzeCampaign(%s): %s\n", campaign.name.c_str(),
                 report.status().ToString().c_str());
    std::abort();
  }
  return std::move(report).value();
}

/// One row of an outcome-distribution table.
inline void PrintOutcomeRow(const std::string& label,
                            const core::AnalysisReport& report) {
  const int detected = report.Count(core::Outcome::kDetected);
  const int escaped = report.Count(core::Outcome::kEscaped);
  const int latent = report.Count(core::Outcome::kLatent);
  const int overwritten = report.Count(core::Outcome::kOverwritten);
  std::printf("%-28s %5d %9d %8d %7d %12d %9.3f\n", label.c_str(), report.total,
              detected, escaped, latent, overwritten, report.ErrorCoverage());
}

inline void PrintOutcomeHeader() {
  std::printf("%-28s %5s %9s %8s %7s %12s %9s\n", "configuration", "n",
              "detected", "escaped", "latent", "overwritten", "coverage");
}

}  // namespace goofi::bench
