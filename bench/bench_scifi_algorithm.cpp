// E1 (paper Fig. 2): cost of the SCIFI campaign loop.
//
// Times the phases of one SCIFI experiment — target init + workload
// download, run-to-breakpoint, the scan read/modify/write injection, and
// run-to-termination — plus the whole experiment, reporting experiments/sec
// and the simulated link time per experiment (dominated by scan traffic,
// exactly as on the real Thor RD test card).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "isa/assembler.hpp"

namespace goofi::bench {
namespace {

const isa::AssembledProgram& Workload() {
  static const isa::AssembledProgram program = [] {
    const auto spec = env::GetWorkload("bubblesort").ValueOrDie();
    return isa::Assemble(spec.source).ValueOrDie();
  }();
  return program;
}

void BM_InitAndDownload(benchmark::State& state) {
  testcard::SimTestCard card;
  for (auto _ : state) {
    benchmark::DoNotOptimize(card.Init());
    benchmark::DoNotOptimize(card.LoadWorkload(Workload()));
    benchmark::DoNotOptimize(card.ResetTarget());
  }
}
BENCHMARK(BM_InitAndDownload);

void BM_RunToBreakpoint(benchmark::State& state) {
  testcard::SimTestCard card;
  (void)card.Init();
  const uint64_t breakpoint_instr = static_cast<uint64_t>(state.range(0));
  uint64_t cycles = 0;
  for (auto _ : state) {
    // Fig. 2 downloads the workload every experiment; this also restores the
    // data segment the previous run mutated.
    (void)card.LoadWorkload(Workload());
    (void)card.ResetTarget();
    card.ClearTriggers();
    scan::Trigger trigger;
    trigger.kind = scan::TriggerKind::kInstrCount;
    trigger.count = breakpoint_instr;
    (void)card.AddTrigger(trigger);
    benchmark::DoNotOptimize(card.Run(1'000'000));
    cycles += card.cpu().cycles();
  }
  state.counters["target_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RunToBreakpoint)->Arg(100)->Arg(1000)->Arg(4000);

void BM_ScanReadModifyWrite(benchmark::State& state) {
  testcard::SimTestCard card;
  (void)card.Init();
  const double link_before = card.link_time_us();
  uint64_t passes = 0;
  for (auto _ : state) {
    auto image = card.ReadScanChain("internal_regfile", false).ValueOrDie();
    image.Flip(42);
    benchmark::DoNotOptimize(card.WriteScanChain("internal_regfile", image));
    ++passes;
  }
  state.counters["link_us_per_injection"] = benchmark::Counter(
      (card.link_time_us() - link_before) / static_cast<double>(passes));
}
BENCHMARK(BM_ScanReadModifyWrite);

// The full SCIFI experiment sequence of Fig. 2, one experiment per iteration.
void BM_FullScifiExperiment(benchmark::State& state) {
  Session session;
  core::CampaignData campaign = BaseCampaign("e1", "bubblesort");
  campaign.num_experiments = 1;
  int counter = 0;
  const double link_before = session.card.link_time_us();
  uint64_t experiments = 0;
  for (auto _ : state) {
    campaign.name = "e1_" + std::to_string(counter++);
    campaign.seed = static_cast<uint64_t>(counter);
    if (!session.store.PutCampaign(campaign).ok()) std::abort();
    if (!session.target.FaultInjectorScifi(campaign.name).ok()) std::abort();
    // Each campaign = reference run + 1 experiment.
    experiments += 2;
  }
  state.counters["experiments_per_sec"] = benchmark::Counter(
      static_cast<double>(experiments), benchmark::Counter::kIsRate);
  state.counters["sim_link_us_per_experiment"] = benchmark::Counter(
      (session.card.link_time_us() - link_before) / static_cast<double>(experiments));
}
BENCHMARK(BM_FullScifiExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goofi::bench

BENCHMARK_MAIN();
