// E11 (ablation): contribution of each error-detection mechanism.
//
// The §3.4 analysis classifies detections "into errors detected by each of
// the various mechanisms"; this ablation quantifies each mechanism's
// contribution to coverage by disabling them one at a time and re-running
// the same campaign (same seed, same fault list). The coverage drop when a
// mechanism is removed is its unique contribution — errors another
// mechanism would not also have caught.

#include <cstdio>

#include "bench_common.hpp"

using namespace goofi;
using namespace goofi::bench;

namespace {

core::AnalysisReport RunWithConfig(const cpu::CpuConfig& config,
                                   const std::string& name) {
  Session session(config);
  core::CampaignData campaign = BaseCampaign(name, "matmul");
  campaign.num_experiments = 300;
  campaign.locations = {{"internal_regfile", ""},
                        {"internal_core", ""},
                        {"internal_icache", ""},
                        {"internal_dcache", ""}};
  return RunAndAnalyze(session, campaign);
}

}  // namespace

int main() {
  std::printf("E11: EDM ablation (SCIFI over all chains, matmul, 300 "
              "experiments per row; identical fault lists)\n\n");

  const auto baseline = RunWithConfig(cpu::CpuConfig(), "e11_all");
  std::printf("%-26s %9s %9s %10s %16s\n", "configuration", "detected",
              "escaped", "coverage", "coverage delta");
  std::printf("%-26s %9d %9d %10.3f %16s\n", "all EDMs on",
              baseline.Count(core::Outcome::kDetected),
              baseline.Count(core::Outcome::kEscaped), baseline.ErrorCoverage(),
              "-");

  struct Ablation {
    const char* label;
    void (*disable)(cpu::EdmConfig*);
  };
  const Ablation ablations[] = {
      {"- cache parity", [](cpu::EdmConfig* edms) { edms->cache_parity = false; }},
      {"- illegal opcode",
       [](cpu::EdmConfig* edms) { edms->illegal_opcode = false; }},
      {"- control flow", [](cpu::EdmConfig* edms) { edms->control_flow = false; }},
      {"- memory checks",
       [](cpu::EdmConfig* edms) {
         edms->misaligned_access = false;
         edms->out_of_range_access = false;
         edms->memory_protection = false;
       }},
      {"- arithmetic overflow",
       [](cpu::EdmConfig* edms) { edms->arithmetic_overflow = false; }},
  };

  int row = 0;
  for (const Ablation& ablation : ablations) {
    cpu::CpuConfig config;
    ablation.disable(&config.edms);
    const auto report =
        RunWithConfig(config, "e11_" + std::to_string(row++));
    std::printf("%-26s %9d %9d %10.3f %+16.3f\n", ablation.label,
                report.Count(core::Outcome::kDetected),
                report.Count(core::Outcome::kEscaped), report.ErrorCoverage(),
                report.ErrorCoverage() - baseline.ErrorCoverage());
  }

  // Everything off: the floor.
  cpu::CpuConfig off;
  off.edms = cpu::EdmConfig{false, false, false, false, false,
                            false, false, false, false, false};
  const auto floor = RunWithConfig(off, "e11_none");
  std::printf("%-26s %9d %9d %10.3f %+16.3f\n", "all EDMs off",
              floor.Count(core::Outcome::kDetected),
              floor.Count(core::Outcome::kEscaped), floor.ErrorCoverage(),
              floor.ErrorCoverage() - baseline.ErrorCoverage());

  std::printf(
      "\nExpected shape: cache parity carries the largest unique\n"
      "contribution for cache-chain faults (nothing else observes cache\n"
      "bits); removing memory/illegal-opcode checks shifts detections to\n"
      "escapes for core faults; with everything off coverage collapses to\n"
      "the software-assertion floor (here: zero for this workload).\n");
  return 0;
}
