// E2 (paper §1/§3): pre-runtime SWIFI outcome profile.
//
// Regenerates the outcome distribution of pre-runtime SWIFI campaigns on the
// matmul workload: text vs data segment, and 1..4 simultaneous bit flips per
// experiment ("single or multiple transient bit-flip faults", §1).
//
// Expected shape: text faults are predominantly *detected* (illegal opcode,
// control-flow, protection EDMs); data faults mostly *escape* as wrong
// results or are *overwritten*; effectiveness grows with fault multiplicity.

#include <cstdio>

#include "bench_common.hpp"

using namespace goofi;
using namespace goofi::bench;

int main() {
  std::printf("E2: pre-runtime SWIFI into program/data memory (matmul, 200 "
              "experiments per row)\n\n");
  PrintOutcomeHeader();

  Session session;
  for (const char* segment : {"memory.text", "memory.data"}) {
    for (int faults = 1; faults <= 4; ++faults) {
      core::CampaignData campaign = BaseCampaign(
          std::string("e2_") + segment + "_" + std::to_string(faults), "matmul");
      campaign.technique = core::Technique::kSwifiPreRuntime;
      campaign.locations = {{segment, ""}};
      campaign.faults_per_experiment = faults;
      campaign.inject_min_instr = 0;
      campaign.inject_max_instr = 0;
      const auto report = RunAndAnalyze(session, campaign);
      PrintOutcomeRow(std::string(segment) + " x" + std::to_string(faults),
                      report);
    }
  }

  std::printf(
      "\nExpected shape: text rows dominated by detections (sparse opcodes,\n"
      "control-flow and protection checks); data rows split between escaped\n"
      "value failures and overwritten faults; higher multiplicity raises\n"
      "effectiveness in both segments.\n");
  return 0;
}
