// E20 — static fault-space pruning: run-static (equivalence classes from the
// CFG/dataflow analysis alone, no fault-free pre-run) vs a cold run and vs
// PR 7's timeline-driven run-dedup, single worker.
//
// Two cells on the sparse_table workload, each picking the location class one
// mechanism is strongest on:
//
//   dense regfile — every flip lands in a register the program provably never
//     touches (regfile.r12). Convergence pruning never fires (the flip stays
//     in every boundary hash), so cold executes the full run per experiment;
//     both dedup and static collapse the campaign to at most one class per
//     chain bit. Static matches dedup here while skipping the golden pre-run.
//
//   sparse memory — flips spread over the data section, ~80% landing in the
//     52-word never-read table tail. Dedup's windows are per (address, bit):
//     two tail flips in different words never share a class, so almost
//     nothing is synthesized. The static predicate merges the whole tail
//     into ONE class regardless of address, bit or time — this cell is where
//     static classing beats access-window classing structurally.
//
// `--json <path>` writes the headline metrics (scripts/bench.sh ->
// BENCH_PR10.json). Acceptance: static_prune_rate_regfile_dense >= 0.9 and
// static_speedup_vs_dedup_memory_sparse >= 1.5x.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/preinjection.hpp"
#include "core/static_analysis.hpp"

namespace goofi::bench {
namespace {

struct Cell {
  const char* location;  ///< location class label
  const char* density;   ///< sampling density label
  core::Technique technique;
  core::FaultLocationSelector selector;
  int experiments;
};

core::CampaignData Campaign(const std::string& name, const Cell& cell) {
  core::CampaignData campaign;
  campaign.name = name;
  campaign.technique = cell.technique;
  campaign.target_name = cell.technique == core::Technique::kScifi
                             ? core::ThorRdTarget::kTargetName
                             : core::SwifiSimTarget::kTargetName;
  campaign.workload = "sparse_table";
  campaign.num_experiments = cell.experiments;
  campaign.locations = {cell.selector};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 80;
  campaign.timeout_cycles = 100000000;
  return campaign;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

enum class Mode { kPlain, kDedup, kStatic };

double RunOnce(const core::CampaignData& campaign, Mode mode,
               const std::shared_ptr<const core::LivenessAnalyzer>& timeline,
               const std::shared_ptr<const core::StaticAnalysis>& analysis,
               core::EquivalenceStats* dedup) {
  db::Database db;
  core::CampaignStore store(&db);
  if (campaign.target_name == core::ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    if (!store
             .PutTargetSystem(core::ThorRdTarget::DescribeTarget(
                 card, core::ThorRdTarget::kTargetName))
             .ok()) {
      std::abort();
    }
  } else if (!store.PutTargetSystem(core::SwifiSimTarget::Describe()).ok()) {
    std::abort();
  }
  if (!store.PutCampaign(campaign).ok()) std::abort();
  const auto factory = campaign.target_name == core::ThorRdTarget::kTargetName
                           ? core::MakeSimThorFactory(&store)
                           : core::MakeSwifiSimFactory(&store);
  core::ParallelCampaignRunner runner(&store, factory, /*workers=*/1);
  if (mode != Mode::kPlain) {
    runner.SetForceWarmStart(true);
    runner.SetConvergencePruning(true);
    runner.SetEquivalenceClassing(true);
  }
  if (mode == Mode::kDedup) runner.SetEquivalenceTimeline(timeline);
  if (mode == Mode::kStatic) runner.SetStaticAnalysis(analysis);
  const auto start = std::chrono::steady_clock::now();
  if (auto st = runner.Run(campaign.name); !st.ok()) {
    std::fprintf(stderr, "run %s: %s\n", campaign.name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  const double elapsed = SecondsSince(start);
  if (dedup != nullptr) *dedup = runner.dedup_stats();
  return elapsed;
}

void Main(int argc, char** argv) {
  JsonReport json;
  std::printf(
      "Static fault-space pruning (E20): run-static vs cold vs run-dedup, "
      "1 worker, sparse_table\n\n");

  // Preparation costs, reported side by side: dedup needs a full fault-free
  // execution (the access timeline); static needs one CFG + dataflow pass.
  auto build_start = std::chrono::steady_clock::now();
  auto timeline_built = core::LivenessAnalyzer::Build(
      "sparse_table", cpu::CpuConfig(), 100000000, 200);
  if (!timeline_built.ok()) std::abort();
  const double timeline_s = SecondsSince(build_start);
  const std::shared_ptr<const core::LivenessAnalyzer> timeline(
      std::move(timeline_built).value());

  build_start = std::chrono::steady_clock::now();
  auto analysis_built = core::StaticAnalysis::Build("sparse_table");
  if (!analysis_built.ok()) std::abort();
  const double static_s = SecondsSince(build_start);
  const std::shared_ptr<const core::StaticAnalysis> analysis(
      std::move(analysis_built).value());
  std::printf("preparation: timeline (golden pre-run) %.6fs, static analysis "
              "%.6fs\n\n", timeline_s, static_s);
  json.Add("timeline_build_s", timeline_s);
  json.Add("static_build_s", static_s);

  const std::vector<Cell> cells = {
      {"regfile", "dense", core::Technique::kScifi,
       {"internal_regfile", "regfile.r12"}, 320},
      {"memory", "sparse", core::Technique::kSwifiRuntime,
       {"memory.data", ""}, 320},
  };

  std::printf("%-8s %-7s %-7s %10s %16s %9s %8s %7s\n", "location", "density",
              "mode", "time [s]", "experiments/sec", "speedup", "classes",
              "synth");
  for (const Cell& cell : cells) {
    const std::string base =
        std::string("sp_") + cell.location + "_" + cell.density;
    const std::string suffix =
        std::string("_") + cell.location + "_" + cell.density;

    core::CampaignData campaign = Campaign(base + "_plain", cell);
    const double plain_s =
        RunOnce(campaign, Mode::kPlain, nullptr, nullptr, nullptr);
    std::printf("%-8s %-7s %-7s %10.3f %16.1f %9s %8s %7s\n", cell.location,
                cell.density, "plain", plain_s, cell.experiments / plain_s,
                "1.00x", "-", "-");
    json.Add("plain_eps" + suffix, cell.experiments / plain_s);

    campaign.name = base + "_dedup";
    core::EquivalenceStats dedup;
    const double dedup_s =
        RunOnce(campaign, Mode::kDedup, timeline, nullptr, &dedup);
    std::printf("%-8s %-7s %-7s %10.3f %16.1f %8.2fx %8lld %7lld\n",
                cell.location, cell.density, "dedup", dedup_s,
                cell.experiments / dedup_s, plain_s / dedup_s,
                static_cast<long long>(dedup.classes_formed),
                static_cast<long long>(dedup.experiments_synthesized));
    json.Add("dedup_eps" + suffix, cell.experiments / dedup_s);

    campaign.name = base + "_static";
    core::EquivalenceStats spruned;
    const double sprune_s =
        RunOnce(campaign, Mode::kStatic, nullptr, analysis, &spruned);
    std::printf("%-8s %-7s %-7s %10.3f %16.1f %8.2fx %8lld %7lld\n",
                cell.location, cell.density, "static", sprune_s,
                cell.experiments / sprune_s, plain_s / sprune_s,
                static_cast<long long>(spruned.classes_formed),
                static_cast<long long>(spruned.static_synthesized));
    const double prune_rate =
        static_cast<double>(spruned.static_synthesized) / cell.experiments;
    json.Add("static_eps" + suffix, cell.experiments / sprune_s);
    json.Add("static_speedup_vs_plain" + suffix, plain_s / sprune_s);
    json.Add("static_speedup_vs_dedup" + suffix, dedup_s / sprune_s);
    json.Add("static_prune_rate" + suffix, prune_rate);
    json.Add("static_classes" + suffix,
             static_cast<uint64_t>(spruned.classes_formed));
    json.Add("static_synthesized" + suffix,
             static_cast<uint64_t>(spruned.static_synthesized));
  }
  std::printf(
      "\nHeadline: static_prune_rate_regfile_dense (target >= 0.9) and "
      "static_speedup_vs_dedup_memory_sparse (target >= 1.5x).\n");

  if (const char* path = JsonOutputPath(argc, argv)) json.Write(path);
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) {
  goofi::bench::Main(argc, argv);
  return 0;
}
