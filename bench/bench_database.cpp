// E16 — the indexed query engine vs full scans on the campaign database.
//
// Populates LoggedSystemState at a realistic campaign-archive size (100k
// experiment rows across 32 campaigns, Fig. 4 foreign keys intact) and times
// the analysis-layer access patterns both ways — through the planner with
// the CampaignStore's secondary indexes, and with ExecOptions.use_indexes
// off (the scan/nested-loop reference path). Every query pair is checked
// byte-identical before its timing is reported, and the table row counts
// are checked unchanged after the sweep.
//
// Also measured: prepared-statement execution (bind `?` params, cached plan)
// vs re-parsing the SQL text per call, and insert throughput with the three
// LoggedSystemState indexes maintained incrementally vs an unindexed table.
//
// `--json <path>` additionally writes the headline metrics as a flat JSON
// object (see scripts/bench.sh).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/campaign_store.hpp"
#include "db/prepared.hpp"
#include "db/sql_executor.hpp"

namespace goofi::bench {
namespace {

using db::Database;
using db::ExecOptions;
using db::QueryResult;
using db::Value;

constexpr int kRows = 100000;
constexpr int kCampaigns = 32;

std::string ExperimentName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "e%06d", i);
  return buf;
}

/// `prefix + std::to_string(n)` without the rvalue operator+ that trips
/// GCC 12's -Wrestrict false positive (PR105329).
std::string Tagged(const char* prefix, uint64_t n) {
  std::string out = prefix;
  out += std::to_string(n);
  return out;
}

/// 100k logged-state rows spread over 32 campaigns on one target. Rows are
/// chained (each names its predecessor as parentExperiment) except every
/// 100th, which is a top-level experiment with a NULL parent.
Database MakeCampaignArchive() {
  Database database;
  core::CampaignStore store(&database);
  core::TargetSystemData target;
  target.name = "t";
  if (!store.PutTargetSystem(target).ok()) std::abort();
  for (int c = 0; c < kCampaigns; ++c) {
    core::CampaignData campaign;
    campaign.name = Tagged("c", static_cast<uint64_t>(c));
    campaign.target_name = "t";
    campaign.workload = "w";
    if (!store.PutCampaign(campaign).ok()) std::abort();
  }
  db::Table* table = database.GetTable("LoggedSystemState");
  for (int i = 0; i < kRows; ++i) {
    const std::string campaign =
        Tagged("c", static_cast<uint64_t>(i % kCampaigns));
    const Value parent = (i % 100 == 0 || i == 0)
                             ? Value::Null()
                             : Value::Text(ExperimentName(i - 1));
    const auto st = table->Insert(
        {Value::Text(ExperimentName(i)), parent, Value::Text(campaign),
         Value::Text(i % 3 == 0 ? "faults=a" : "faults=b"),
         Value::Text(Tagged("state:", i * 2654435761u))});
    if (!st.ok()) {
      std::fprintf(stderr, "populate: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  return database;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Stable digest of a result: column list + every cell's serialized text.
std::string Fingerprint(const QueryResult& result) {
  std::string out;
  for (const auto& col : result.columns) out += col + "|";
  out += "\n";
  for (const auto& row : result.rows) {
    for (const auto& value : row) out += value.Serialize() + "|";
    out += "\n";
  }
  return out;
}

struct Timing {
  double scan_ms = 0;
  double indexed_ms = 0;
  double Speedup() const { return indexed_ms > 0 ? scan_ms / indexed_ms : 0; }
};

/// Times one query both ways and insists the results are byte-identical.
Timing TimeBothWays(Database& database, const std::string& sql, int scan_iters,
                    int indexed_iters) {
  ExecOptions scan_options;
  scan_options.use_indexes = false;
  auto reference = db::ExecuteSql(database, sql, scan_options);
  auto indexed = db::ExecuteSql(database, sql);
  if (!reference.ok() || !indexed.ok()) {
    std::fprintf(stderr, "query failed: %s\n", sql.c_str());
    std::abort();
  }
  if (Fingerprint(reference.value()) != Fingerprint(indexed.value())) {
    std::fprintf(stderr, "indexed result differs from scan: %s\n", sql.c_str());
    std::abort();
  }
  Timing timing;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < scan_iters; ++i) {
    auto result = db::ExecuteSql(database, sql, scan_options);
    if (!result.ok()) std::abort();
  }
  timing.scan_ms = SecondsSince(start) * 1000.0 / scan_iters;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < indexed_iters; ++i) {
    auto result = db::ExecuteSql(database, sql);
    if (!result.ok()) std::abort();
  }
  timing.indexed_ms = SecondsSince(start) * 1000.0 / indexed_iters;
  return timing;
}

/// Prepared statement with a bound parameter vs re-parsing the text per call.
void BenchPrepared(Database& database, JsonReport* report) {
  // A point lookup: execution is a primary-key probe, so per-call parse and
  // plan cost — what prepared statements amortize — dominates the total.
  constexpr int kIters = 20000;
  db::StatementCache cache;
  const std::string bound =
      "SELECT experimentData FROM LoggedSystemState WHERE experimentName = ?";
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    auto result = cache.Execute(
        database, bound, {Value::Text(ExperimentName(i % kRows))});
    if (!result.ok()) std::abort();
  }
  const double bound_us = SecondsSince(start) * 1e6 / kIters;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    auto result = db::ExecuteSql(
        database, "SELECT experimentData FROM LoggedSystemState "
                  "WHERE experimentName = '" + ExperimentName(i % kRows) + "'");
    if (!result.ok()) std::abort();
  }
  const double reparse_us = SecondsSince(start) * 1e6 / kIters;
  std::printf("%-34s %10.1f us/query\n", "prepared (bound params)", bound_us);
  std::printf("%-34s %10.1f us/query  (x%.2f)\n", "re-parsed per call",
              reparse_us, reparse_us / bound_us);
  report->Add("prepared_bound_us", bound_us);
  report->Add("prepared_reparse_us", reparse_us);
  report->Add("prepared_speedup", reparse_us / bound_us);
}

/// Insert throughput with the CampaignStore's three LoggedSystemState
/// indexes maintained incrementally, vs the same rows into a copy of the
/// schema with no secondary indexes.
void BenchInsertMaintenance(JsonReport* report) {
  constexpr int kInsertRows = 20000;
  auto run = [&](bool indexed) {
    Database database;
    core::CampaignStore store(&database);
    core::TargetSystemData target;
    target.name = "t";
    if (!store.PutTargetSystem(target).ok()) std::abort();
    core::CampaignData campaign;
    campaign.name = "c";
    campaign.target_name = "t";
    campaign.workload = "w";
    if (!store.PutCampaign(campaign).ok()) std::abort();
    db::Table* table = database.GetTable("LoggedSystemState");
    if (!indexed) {
      while (!table->indexes().empty()) {
        if (!table->DropIndex(table->indexes().front()->name).ok())
          std::abort();
      }
    }
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kInsertRows; ++i) {
      const auto st = table->Insert({Value::Text(ExperimentName(i)),
                                     Value::Null(), Value::Text("c"),
                                     Value::Text("faults=x"),
                                     Value::Text("state")});
      if (!st.ok()) std::abort();
    }
    return kInsertRows / SecondsSince(start) / 1000.0;
  };
  const double plain = run(false);
  const double indexed = run(true);
  std::printf("%-34s %10.1f krows/s\n", "insert (no secondary indexes)", plain);
  std::printf("%-34s %10.1f krows/s  (%.0f%% of plain)\n",
              "insert (3 indexes maintained)", indexed, 100.0 * indexed / plain);
  report->Add("insert_krows_per_s_plain", plain);
  report->Add("insert_krows_per_s_indexed", indexed);
}

int Main(int argc, char** argv) {
  std::printf("E16: indexed query engine vs full scans, %d rows, %d campaigns\n\n",
              kRows, kCampaigns);
  Database database = MakeCampaignArchive();
  const size_t lss_before = database.GetTable("LoggedSystemState")->size();
  const size_t campaigns_before = database.GetTable("CampaignData")->size();

  struct Sweep {
    const char* label;
    const char* key;
    std::string sql;
    int scan_iters;
    int indexed_iters;
  };
  const Sweep sweeps[] = {
      {"equality (campaignName = 'c17')", "eq",
       "SELECT experimentName, experimentData FROM LoggedSystemState "
       "WHERE campaignName = 'c17'",
       5, 50},
      {"range (experimentName window)", "range",
       "SELECT COUNT(*) FROM LoggedSystemState "
       "WHERE experimentName >= 'e050000' AND experimentName < 'e050200'",
       5, 500},
      {"IS NULL (top-level experiments)", "isnull",
       "SELECT COUNT(*) FROM LoggedSystemState WHERE parentExperiment IS NULL",
       5, 200},
      {"analysis join (campaign x state)", "join",
       "SELECT CampaignData.campaignName, COUNT(*) "
       "FROM CampaignData JOIN LoggedSystemState "
       "ON CampaignData.campaignName = LoggedSystemState.campaignName "
       "WHERE CampaignData.targetName = 't' "
       "GROUP BY CampaignData.campaignName",
       2, 10},
  };

  JsonReport report;
  report.Add("rows", kRows);
  report.Add("campaigns", kCampaigns);
  std::printf("%-34s %12s %12s %9s\n", "query", "scan ms", "indexed ms",
              "speedup");
  for (const Sweep& sweep : sweeps) {
    const Timing timing =
        TimeBothWays(database, sweep.sql, sweep.scan_iters, sweep.indexed_iters);
    std::printf("%-34s %12.3f %12.3f %8.1fx\n", sweep.label, timing.scan_ms,
                timing.indexed_ms, timing.Speedup());
    report.Add(std::string(sweep.key) + "_scan_ms", timing.scan_ms);
    report.Add(std::string(sweep.key) + "_indexed_ms", timing.indexed_ms);
    report.Add(std::string(sweep.key) + "_speedup", timing.Speedup());
  }
  std::printf("\n");
  BenchPrepared(database, &report);
  std::printf("\n");
  BenchInsertMaintenance(&report);

  // The sweep is read-only: the archive must be exactly as populated.
  if (database.GetTable("LoggedSystemState")->size() != lss_before ||
      database.GetTable("CampaignData")->size() != campaigns_before) {
    std::fprintf(stderr, "query sweep mutated the campaign database\n");
    std::abort();
  }
  std::string index_error;
  if (!database.GetTable("LoggedSystemState")->ValidateIndexes(&index_error)) {
    std::fprintf(stderr, "index validation failed: %s\n", index_error.c_str());
    std::abort();
  }

  if (const char* path = JsonOutputPath(argc, argv)) report.Write(path);
  return 0;
}

}  // namespace
}  // namespace goofi::bench

int main(int argc, char** argv) { return goofi::bench::Main(argc, argv); }
