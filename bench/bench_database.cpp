// E5 (paper Fig. 4): the GOOFI database.
//
// Throughput of the operations the tool performs constantly: inserting
// LoggedSystemState rows (with the Fig. 4 foreign keys checked vs a plain
// unconstrained table), point lookups by primary key, and the aggregate
// analysis queries of §3.4.

#include <benchmark/benchmark.h>

#include "core/campaign_store.hpp"
#include "db/sql_executor.hpp"

namespace goofi::bench {
namespace {

using db::Database;
using db::Value;

core::LoggedState SampleState(int i) {
  core::LoggedState state;
  state.halted = true;
  state.cycles = 10000 + static_cast<uint64_t>(i);
  state.instret = 8000 + static_cast<uint64_t>(i);
  state.outputs = {static_cast<uint32_t>(i * 2654435761u)};
  state.scan_images["internal_core"] = std::string(230, i % 2 ? '1' : '0');
  return state;
}

/// Insert with full Fig. 4 FK checking through CampaignStore.
void BM_InsertLoggedStateWithFk(benchmark::State& state) {
  Database database;
  core::CampaignStore store(&database);
  core::TargetSystemData target;
  target.name = "t";
  (void)store.PutTargetSystem(target);
  core::CampaignData campaign;
  campaign.name = "c";
  campaign.target_name = "t";
  campaign.workload = "w";
  (void)store.PutCampaign(campaign);

  int i = 0;
  for (auto _ : state) {
    const auto st = store.PutExperiment("e" + std::to_string(i), "", "c",
                                        "faults=x", SampleState(i));
    if (!st.ok()) std::abort();
    ++i;
  }
  state.SetItemsProcessed(i);
}
BENCHMARK(BM_InsertLoggedStateWithFk);

/// The same row shape into an unconstrained table (FK-check cost baseline).
void BM_InsertLoggedStateNoFk(benchmark::State& state) {
  Database database;
  if (!db::ExecuteSql(database,
                      "CREATE TABLE plain (experimentName TEXT PRIMARY KEY, "
                      "parentExperiment TEXT, campaignName TEXT, "
                      "experimentData TEXT, stateVector TEXT)")
           .ok()) {
    std::abort();
  }
  db::Table* table = database.GetTable("plain");
  int i = 0;
  for (auto _ : state) {
    const auto st = table->Insert({Value::Text("e" + std::to_string(i)),
                                   Value::Null(), Value::Text("c"),
                                   Value::Text("faults=x"),
                                   Value::Text(SampleState(i).Serialize())});
    if (!st.ok()) std::abort();
    ++i;
  }
  state.SetItemsProcessed(i);
}
BENCHMARK(BM_InsertLoggedStateNoFk);

Database MakePopulatedDatabase(int rows) {
  Database database;
  core::CampaignStore store(&database);
  core::TargetSystemData target;
  target.name = "t";
  (void)store.PutTargetSystem(target);
  core::CampaignData campaign;
  campaign.name = "c";
  campaign.target_name = "t";
  campaign.workload = "w";
  (void)store.PutCampaign(campaign);
  for (int i = 0; i < rows; ++i) {
    (void)store.PutExperiment("e" + std::to_string(i), "", "c",
                              i % 3 == 0 ? "faults=a" : "faults=b",
                              SampleState(i));
  }
  return database;
}

void BM_PointLookupByPrimaryKey(benchmark::State& state) {
  Database database = MakePopulatedDatabase(static_cast<int>(state.range(0)));
  const db::Table* table = database.GetTable("LoggedSystemState");
  int i = 0;
  for (auto _ : state) {
    const auto slot = table->FindByPrimaryKey(
        {Value::Text("e" + std::to_string(i % state.range(0)))});
    benchmark::DoNotOptimize(slot);
    ++i;
  }
  state.SetItemsProcessed(i);
}
BENCHMARK(BM_PointLookupByPrimaryKey)->Arg(1000)->Arg(10000);

void BM_AnalysisAggregateQuery(benchmark::State& state) {
  Database database = MakePopulatedDatabase(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = db::ExecuteSql(
        database,
        "SELECT experimentData, COUNT(*), AVG(LENGTH(stateVector)) "
        "FROM LoggedSystemState GROUP BY experimentData");
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalysisAggregateQuery)->Arg(1000)->Arg(10000);

void BM_FilteredScanQuery(benchmark::State& state) {
  Database database = MakePopulatedDatabase(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = db::ExecuteSql(
        database,
        "SELECT experimentName FROM LoggedSystemState "
        "WHERE parentExperiment IS NULL AND experimentData = 'faults=a'");
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilteredScanQuery)->Arg(10000);

void BM_SaveLoadRoundTrip(benchmark::State& state) {
  Database database = MakePopulatedDatabase(2000);
  const std::string path = "/tmp/goofi_bench_db.tmp";
  for (auto _ : state) {
    if (!database.Save(path).ok()) std::abort();
    Database loaded;
    if (!loaded.Load(path).ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SaveLoadRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goofi::bench

BENCHMARK_MAIN();
