// E3 (paper §3.4): the dependability-measure taxonomy across workloads and
// fault-location classes.
//
// For every built-in batch workload and every fault-location class
// (register file, core registers, instruction cache, data cache), runs a
// SCIFI campaign and prints the Detected / Escaped / Latent / Overwritten
// distribution, plus the per-mechanism detection breakdown — the "typical
// results obtained" list of §3.4.

#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace goofi;
using namespace goofi::bench;

int main() {
  std::printf("E3: error classification by workload x fault location class\n");
  std::printf("(SCIFI, single transient bit flips, 150 experiments per row)\n\n");
  PrintOutcomeHeader();

  Session session;
  std::map<std::string, int> mechanism_totals;

  const char* workloads[] = {"bubblesort", "matmul", "checksum"};
  const char* locations[] = {"internal_regfile", "internal_core",
                             "internal_icache", "internal_dcache"};
  for (const char* workload : workloads) {
    for (const char* location : locations) {
      core::CampaignData campaign = BaseCampaign(
          std::string("e3_") + workload + "_" + location, workload);
      campaign.num_experiments = 150;
      campaign.locations = {{location, ""}};
      const auto report = RunAndAnalyze(session, campaign);
      PrintOutcomeRow(std::string(workload) + "/" + location, report);
      for (const auto& [mechanism, count] : report.detected_by_mechanism) {
        mechanism_totals[mechanism] += count;
      }
    }
  }

  std::printf("\ndetections by mechanism (all campaigns):\n");
  for (const auto& [mechanism, count] : mechanism_totals) {
    std::printf("  %-24s %5d\n", mechanism.c_str(), count);
  }
  std::printf(
      "\nExpected shape: core (pc/ir) faults detect most often; cache faults\n"
      "are caught by parity when the line is live, otherwise overwritten;\n"
      "register-file faults show the largest latent/overwritten fraction,\n"
      "matching the scan-chain study the paper builds on (ref [10]).\n");
  return 0;
}
