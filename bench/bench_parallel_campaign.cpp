// Parallel campaign engine throughput: experiments/sec for a serial
// FaultInjectionAlgorithms run vs ParallelCampaignRunner at 1, 2, 4 and
// hardware-concurrency workers, with a speedup table against the serial
// baseline.
//
// Note: speedup is bounded by the number of physical cores the host grants
// the process; on a single-core container every configuration degenerates to
// ~1x and the table measures engine overhead instead.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"

namespace goofi::bench {
namespace {

constexpr int kExperiments = 400;

core::CampaignData Campaign(const std::string& name) {
  core::CampaignData campaign = BaseCampaign(name, "bubblesort");
  campaign.num_experiments = kExperiments;
  return campaign;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

double RunSerial() {
  Session session;
  const core::CampaignData campaign = Campaign("bench_par_serial");
  if (auto st = session.store.PutCampaign(campaign); !st.ok()) std::abort();
  const auto start = std::chrono::steady_clock::now();
  if (auto st = session.target.RunCampaign(campaign.name); !st.ok()) {
    std::fprintf(stderr, "serial run: %s\n", st.ToString().c_str());
    std::abort();
  }
  return SecondsSince(start);
}

double RunParallel(int workers) {
  Session session;
  const core::CampaignData campaign =
      Campaign("bench_par_w" + std::to_string(workers));
  if (auto st = session.store.PutCampaign(campaign); !st.ok()) std::abort();
  core::ParallelCampaignRunner runner(
      &session.store, core::MakeSimThorFactory(&session.store), workers);
  const auto start = std::chrono::steady_clock::now();
  if (auto st = runner.Run(campaign.name); !st.ok()) {
    std::fprintf(stderr, "parallel run (%d workers): %s\n", workers,
                 st.ToString().c_str());
    std::abort();
  }
  return SecondsSince(start);
}

void Main() {
  std::printf("Parallel campaign engine: %d SCIFI experiments, bubblesort, "
              "internal_regfile (host reports %d hardware threads)\n\n",
              kExperiments, util::ThreadPool::DefaultWorkers());

  const double serial_s = RunSerial();
  std::printf("%-18s %10s %16s %9s\n", "configuration", "time [s]",
              "experiments/sec", "speedup");
  std::printf("%-18s %10.3f %16.1f %9s\n", "serial", serial_s,
              kExperiments / serial_s, "1.00x");

  std::vector<int> worker_counts = {1, 2, 4};
  const int hw = util::ThreadPool::DefaultWorkers();
  if (hw > 4) worker_counts.push_back(hw);
  for (int workers : worker_counts) {
    const double elapsed = RunParallel(workers);
    std::printf("%-10s workers %10.3f %16.1f %8.2fx\n",
                std::to_string(workers).c_str(), elapsed,
                kExperiments / elapsed, serial_s / elapsed);
  }
}

}  // namespace
}  // namespace goofi::bench

int main() {
  goofi::bench::Main();
  return 0;
}
