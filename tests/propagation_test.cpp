// Tests for the error-propagation analysis over detail traces (§3.3) and
// for the campaign-resume behaviour (Fig. 7 "restart").
#include <gtest/gtest.h>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "util/strings.hpp"
#include "testcard/testcard.hpp"

namespace goofi::core {
namespace {

class PropagationTest : public ::testing::Test {
 protected:
  PropagationTest() : store_(&db_), target_(&store_, &card_) {
    EXPECT_TRUE(store_
                    .PutTargetSystem(ThorRdTarget::DescribeTarget(
                        card_, ThorRdTarget::kTargetName))
                    .ok());
    CampaignData campaign;
    campaign.name = "prop";
    campaign.target_name = ThorRdTarget::kTargetName;
    campaign.workload = "fibonacci";
    campaign.locations = {{"internal_regfile", ""}};
    campaign.num_experiments = 12;
    campaign.inject_min_instr = 1;
    campaign.inject_max_instr = 80;
    campaign.timeout_cycles = 50000;
    EXPECT_TRUE(store_.PutCampaign(campaign).ok());
    EXPECT_TRUE(target_.FaultInjectorScifi("prop").ok());
    EXPECT_TRUE(target_.RerunDetailed(CampaignStore::ReferenceName("prop")).ok());
  }

  db::Database db_;
  CampaignStore store_;
  testcard::SimTestCard card_;
  ThorRdTarget target_;
};

TEST_F(PropagationTest, RequiresBothDetailTraces) {
  // Experiment trace missing.
  EXPECT_FALSE(AnalyzeErrorPropagation(store_, "prop/e0000").ok());
  ASSERT_TRUE(target_.RerunDetailed("prop/e0000").ok());
  EXPECT_TRUE(AnalyzeErrorPropagation(store_, "prop/e0000").ok());
}

TEST_F(PropagationTest, UnknownExperimentFails) {
  EXPECT_FALSE(AnalyzeErrorPropagation(store_, "prop/ghost").ok());
}

TEST_F(PropagationTest, EveryExperimentProducesConsistentReport) {
  for (int i = 0; i < 12; ++i) {
    const std::string name = util::Format("prop/e%04d", i);
    ASSERT_TRUE(target_.RerunDetailed(name).ok());
    const auto report = AnalyzeErrorPropagation(store_, name).ValueOrDie();
    EXPECT_GT(report.steps_compared, 0) << name;
    EXPECT_LE(report.diverged_steps, report.steps_compared) << name;
    if (report.first_divergence_step > 0) {
      EXPECT_LE(report.first_divergence_step, report.steps_compared) << name;
      EXPECT_GE(report.diverged_steps, 1) << name;
    } else {
      EXPECT_EQ(report.diverged_steps, 0) << name;
    }
    if (report.detection_step > 0 && report.first_divergence_step > 0) {
      EXPECT_GE(report.detection_latency_steps, 0) << name;
    }
    // The human-readable rendering never crashes and mentions the step count.
    EXPECT_NE(report.ToString().find("steps compared"), std::string::npos);
  }
}

TEST_F(PropagationTest, RegisterFaultDivergesVisiblyWhenEffective) {
  // Find an escaped experiment (wrong outputs): its trace must diverge.
  const auto reference = store_.GetExperiment("prop/ref").ValueOrDie();
  auto rows = store_.ExperimentsOf("prop").ValueOrDie();
  for (const auto& row : rows) {
    if (!row.parent_experiment.empty() ||
        row.experiment_name == reference.experiment_name) {
      continue;
    }
    const auto cls = Classify(reference.state, row.state);
    if (cls.outcome != Outcome::kEscaped) continue;
    ASSERT_TRUE(target_.RerunDetailed(row.experiment_name).ok());
    const auto report =
        AnalyzeErrorPropagation(store_, row.experiment_name).ValueOrDie();
    EXPECT_GT(report.first_divergence_step, 0) << row.experiment_name;
    return;
  }
  GTEST_SKIP() << "no escaped experiment in this campaign";
}

// --- campaign resume (Fig. 7: pause/restart) ---------------------------------

class ResumeTest : public ::testing::Test {
 protected:
  ResumeTest() : store_(&db_), target_(&store_, &card_) {
    EXPECT_TRUE(store_
                    .PutTargetSystem(ThorRdTarget::DescribeTarget(
                        card_, ThorRdTarget::kTargetName))
                    .ok());
    CampaignData campaign;
    campaign.name = "resume";
    campaign.target_name = ThorRdTarget::kTargetName;
    campaign.workload = "bubblesort";
    campaign.locations = {{"internal_regfile", ""}};
    campaign.num_experiments = 20;
    campaign.timeout_cycles = 100000;
    EXPECT_TRUE(store_.PutCampaign(campaign).ok());
  }

  db::Database db_;
  CampaignStore store_;
  testcard::SimTestCard card_;
  ThorRdTarget target_;
};

TEST_F(ResumeTest, RestartedCampaignSkipsLoggedExperiments) {
  CountingMonitor stopper(/*limit=*/8);
  target_.SetProgressMonitor(&stopper);
  ASSERT_TRUE(target_.FaultInjectorScifi("resume").ok());
  target_.SetProgressMonitor(nullptr);
  EXPECT_EQ(target_.stats().experiments_run, 8);

  // Restart: the first 8 (plus the reference) are kept, 12 more run.
  ASSERT_TRUE(target_.FaultInjectorScifi("resume").ok());
  EXPECT_EQ(target_.stats().experiments_resumed, 8);
  EXPECT_EQ(target_.stats().experiments_run, 12);

  const auto report = AnalyzeCampaign(store_, "resume").ValueOrDie();
  EXPECT_EQ(report.total, 20);
}

TEST_F(ResumeTest, ResumedExperimentsMatchUninterruptedRun) {
  // Run interrupted + resumed, then compare against a one-shot campaign with
  // the same seed: the logged fault lists must be identical.
  CountingMonitor stopper(5);
  target_.SetProgressMonitor(&stopper);
  ASSERT_TRUE(target_.FaultInjectorScifi("resume").ok());
  target_.SetProgressMonitor(nullptr);
  ASSERT_TRUE(target_.FaultInjectorScifi("resume").ok());

  CampaignData oneshot = store_.GetCampaign("resume").ValueOrDie();
  oneshot.name = "oneshot";
  ASSERT_TRUE(store_.PutCampaign(oneshot).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("oneshot").ok());

  for (int i = 0; i < 20; ++i) {
    const auto a =
        store_.GetExperiment(util::Format("resume/e%04d", i)).ValueOrDie();
    const auto b =
        store_.GetExperiment(util::Format("oneshot/e%04d", i)).ValueOrDie();
    EXPECT_EQ(a.experiment_data, b.experiment_data) << i;
    EXPECT_EQ(a.state.Serialize(), b.state.Serialize()) << i;
  }
}

TEST_F(ResumeTest, CompletedCampaignRerunIsANoOp) {
  ASSERT_TRUE(target_.FaultInjectorScifi("resume").ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("resume").ok());
  EXPECT_EQ(target_.stats().experiments_run, 0);
  EXPECT_EQ(target_.stats().experiments_resumed, 20);
}

}  // namespace
}  // namespace goofi::core
