// Tests for CampaignStore: the GOOFI database bindings of paper Fig. 4.
#include <gtest/gtest.h>

#include "core/campaign_store.hpp"

namespace goofi::core {
namespace {

class CampaignStoreTest : public ::testing::Test {
 protected:
  CampaignStoreTest() : store_(&db_) {}

  TargetSystemData Target(const std::string& name = "thor") {
    TargetSystemData target;
    target.name = name;
    target.description = "test target";
    target.chain_data = "internal_core core.pc 32 0\n";
    return target;
  }

  CampaignData Campaign(const std::string& name = "c1",
                        const std::string& target = "thor") {
    CampaignData campaign;
    campaign.name = name;
    campaign.target_name = target;
    campaign.workload = "bubblesort";
    campaign.locations = {{"internal_regfile", ""}};
    return campaign;
  }

  db::Database db_;
  CampaignStore store_;
};

TEST_F(CampaignStoreTest, CreatesAllThreeTables) {
  EXPECT_TRUE(db_.HasTable("TargetSystemData"));
  EXPECT_TRUE(db_.HasTable("CampaignData"));
  EXPECT_TRUE(db_.HasTable("LoggedSystemState"));
}

TEST_F(CampaignStoreTest, Fig4ForeignKeysDeclared) {
  const auto& campaign_fks = db_.GetTable("CampaignData")->schema().foreign_keys();
  ASSERT_EQ(campaign_fks.size(), 1u);
  EXPECT_EQ(campaign_fks[0].ref_table, "TargetSystemData");

  const auto& log_fks = db_.GetTable("LoggedSystemState")->schema().foreign_keys();
  ASSERT_EQ(log_fks.size(), 2u);
  EXPECT_EQ(log_fks[0].ref_table, "CampaignData");
  EXPECT_EQ(log_fks[1].ref_table, "LoggedSystemState") << "parentExperiment";
}

TEST_F(CampaignStoreTest, TargetSystemRoundTrip) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  const auto back = store_.GetTargetSystem("thor").ValueOrDie();
  EXPECT_EQ(back.description, "test target");
  EXPECT_EQ(back.chain_data, "internal_core core.pc 32 0\n");
  EXPECT_FALSE(store_.GetTargetSystem("nope").ok());
  EXPECT_EQ(store_.TargetSystemNames(), std::vector<std::string>{"thor"});
}

TEST_F(CampaignStoreTest, TargetSystemUpsertReplaces) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  TargetSystemData updated = Target();
  updated.description = "v2";
  ASSERT_TRUE(store_.PutTargetSystem(updated).ok());
  EXPECT_EQ(store_.GetTargetSystem("thor").ValueOrDie().description, "v2");
}

TEST_F(CampaignStoreTest, CampaignRequiresTargetSystem) {
  const auto st = store_.PutCampaign(Campaign());
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation)
      << "foreign key must reject orphan campaigns";
}

TEST_F(CampaignStoreTest, CampaignRoundTripAllFields) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  CampaignData campaign = Campaign();
  campaign.technique = Technique::kSwifiRuntime;
  campaign.fault_model = FaultModelKind::kIntermittentBitFlip;
  campaign.faults_per_experiment = 3;
  campaign.num_experiments = 77;
  campaign.inject_min_instr = 5;
  campaign.inject_max_instr = 5000;
  campaign.locations = {{"internal_core", "core.pc"}, {"memory.data", ""}};
  campaign.timeout_cycles = 123456;
  campaign.max_iterations = 42;
  campaign.seed = 0xABCDEF;
  campaign.log_mode = LogMode::kDetail;
  campaign.observe_chains = {"boundary"};
  campaign.burst_length = 9;
  campaign.burst_spacing = 333;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());

  const auto back = store_.GetCampaign("c1").ValueOrDie();
  EXPECT_EQ(back.target_name, "thor");
  EXPECT_EQ(back.technique, Technique::kSwifiRuntime);
  EXPECT_EQ(back.fault_model, FaultModelKind::kIntermittentBitFlip);
  EXPECT_EQ(back.faults_per_experiment, 3);
  EXPECT_EQ(back.num_experiments, 77);
  EXPECT_EQ(back.inject_min_instr, 5u);
  EXPECT_EQ(back.inject_max_instr, 5000u);
  ASSERT_EQ(back.locations.size(), 2u);
  EXPECT_EQ(back.locations[0].chain, "internal_core");
  EXPECT_EQ(back.locations[0].cell_prefix, "core.pc");
  EXPECT_EQ(back.timeout_cycles, 123456u);
  EXPECT_EQ(back.max_iterations, 42);
  EXPECT_EQ(back.seed, 0xABCDEFu);
  EXPECT_EQ(back.log_mode, LogMode::kDetail);
  EXPECT_EQ(back.observe_chains, std::vector<std::string>{"boundary"});
  EXPECT_EQ(back.burst_length, 9u);
  EXPECT_EQ(back.burst_spacing, 333u);
}

TEST_F(CampaignStoreTest, CampaignUpsertModifiesStoredData) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  ASSERT_TRUE(store_.PutCampaign(Campaign()).ok());
  CampaignData updated = Campaign();
  updated.num_experiments = 999;
  ASSERT_TRUE(store_.PutCampaign(updated).ok());
  EXPECT_EQ(store_.GetCampaign("c1").ValueOrDie().num_experiments, 999);
  EXPECT_EQ(store_.CampaignNames().size(), 1u);
}

TEST_F(CampaignStoreTest, ExperimentRequiresCampaign) {
  const auto st = store_.PutExperiment("e1", "", "missing", "", LoggedState{});
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
}

TEST_F(CampaignStoreTest, ExperimentParentMustExist) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  ASSERT_TRUE(store_.PutCampaign(Campaign()).ok());
  EXPECT_FALSE(store_.PutExperiment("e2", "ghost-parent", "c1", "", LoggedState{}).ok());
  ASSERT_TRUE(store_.PutExperiment("e1", "", "c1", "", LoggedState{}).ok());
  EXPECT_TRUE(store_.PutExperiment("e2", "e1", "c1", "", LoggedState{}).ok());
}

TEST_F(CampaignStoreTest, ExperimentRoundTripWithState) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  ASSERT_TRUE(store_.PutCampaign(Campaign()).ok());
  LoggedState state;
  state.detected = true;
  state.edm = "illegal_opcode";
  state.cycles = 555;
  state.outputs = {7};
  ASSERT_TRUE(store_.PutExperiment("e1", "", "c1", "faults=xyz", state).ok());

  const auto row = store_.GetExperiment("e1").ValueOrDie();
  EXPECT_EQ(row.campaign_name, "c1");
  EXPECT_EQ(row.parent_experiment, "");
  EXPECT_EQ(row.experiment_data, "faults=xyz");
  EXPECT_TRUE(row.state.detected);
  EXPECT_EQ(row.state.edm, "illegal_opcode");
  EXPECT_EQ(row.state.cycles, 555u);
}

TEST_F(CampaignStoreTest, ExperimentsOfFiltersByCampaign) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  ASSERT_TRUE(store_.PutCampaign(Campaign("a")).ok());
  ASSERT_TRUE(store_.PutCampaign(Campaign("b")).ok());
  ASSERT_TRUE(store_.PutExperiment("a/e0", "", "a", "", LoggedState{}).ok());
  ASSERT_TRUE(store_.PutExperiment("a/e1", "", "a", "", LoggedState{}).ok());
  ASSERT_TRUE(store_.PutExperiment("b/e0", "", "b", "", LoggedState{}).ok());
  EXPECT_EQ(store_.ExperimentsOf("a").ValueOrDie().size(), 2u);
  EXPECT_EQ(store_.ExperimentsOf("b").ValueOrDie().size(), 1u);
  EXPECT_TRUE(store_.ExperimentsOf("none").ValueOrDie().empty());
}

TEST_F(CampaignStoreTest, DuplicateExperimentNameRejected) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  ASSERT_TRUE(store_.PutCampaign(Campaign()).ok());
  ASSERT_TRUE(store_.PutExperiment("e1", "", "c1", "", LoggedState{}).ok());
  EXPECT_FALSE(store_.PutExperiment("e1", "", "c1", "", LoggedState{}).ok());
}

// --- merge (set-up phase, §3.2) ------------------------------------------------

TEST_F(CampaignStoreTest, MergeCombinesLocationsAndCounts) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  CampaignData a = Campaign("a");
  a.num_experiments = 100;
  a.locations = {{"internal_regfile", ""}};
  a.inject_min_instr = 10;
  a.inject_max_instr = 100;
  CampaignData b = Campaign("b");
  b.num_experiments = 50;
  b.locations = {{"internal_core", ""}, {"internal_regfile", ""}};
  b.inject_min_instr = 1;
  b.inject_max_instr = 500;
  ASSERT_TRUE(store_.PutCampaign(a).ok());
  ASSERT_TRUE(store_.PutCampaign(b).ok());

  ASSERT_TRUE(store_.MergeCampaigns({"a", "b"}, "merged").ok());
  const auto merged = store_.GetCampaign("merged").ValueOrDie();
  EXPECT_EQ(merged.num_experiments, 150);
  EXPECT_EQ(merged.locations.size(), 2u) << "duplicates removed";
  EXPECT_EQ(merged.inject_min_instr, 1u);
  EXPECT_EQ(merged.inject_max_instr, 500u);
}

TEST_F(CampaignStoreTest, MergeRejectsMismatchedWorkloads) {
  ASSERT_TRUE(store_.PutTargetSystem(Target()).ok());
  CampaignData a = Campaign("a");
  CampaignData b = Campaign("b");
  b.workload = "matmul";
  ASSERT_TRUE(store_.PutCampaign(a).ok());
  ASSERT_TRUE(store_.PutCampaign(b).ok());
  EXPECT_FALSE(store_.MergeCampaigns({"a", "b"}, "merged").ok());
}

TEST_F(CampaignStoreTest, MergeRejectsEmptyAndMissing) {
  EXPECT_FALSE(store_.MergeCampaigns({}, "m").ok());
  EXPECT_FALSE(store_.MergeCampaigns({"ghost"}, "m").ok());
}

TEST_F(CampaignStoreTest, ReferenceNameConvention) {
  EXPECT_EQ(CampaignStore::ReferenceName("camp"), "camp/ref");
}

}  // namespace
}  // namespace goofi::core
