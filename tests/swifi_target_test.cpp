// Tests for SwifiSimTarget — the Framework-derived second target system —
// and for the Framework template's fail-loudly placeholders (paper Fig. 3).
#include <gtest/gtest.h>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "util/strings.hpp"

namespace goofi::core {
namespace {

class SwifiTargetTest : public ::testing::Test {
 protected:
  SwifiTargetTest() : store_(&db_), target_(&store_) {
    EXPECT_TRUE(store_.PutTargetSystem(SwifiSimTarget::Describe()).ok());
  }

  CampaignData Campaign(const std::string& name) {
    CampaignData campaign;
    campaign.name = name;
    campaign.target_name = SwifiSimTarget::kTargetName;
    campaign.technique = Technique::kSwifiPreRuntime;
    campaign.workload = "matmul";
    campaign.locations = {{"memory.text", ""}};
    campaign.num_experiments = 25;
    campaign.inject_min_instr = 0;
    campaign.inject_max_instr = 0;
    campaign.timeout_cycles = 200000;
    return campaign;
  }

  db::Database db_;
  CampaignStore store_;
  SwifiSimTarget target_;
};

TEST_F(SwifiTargetTest, PreRuntimeSwifiCampaignRuns) {
  ASSERT_TRUE(store_.PutCampaign(Campaign("pre")).ok());
  ASSERT_TRUE(target_.FaultInjectorSwifiPreRuntime("pre").ok());
  const auto report = AnalyzeCampaign(store_, "pre").ValueOrDie();
  EXPECT_EQ(report.total, 25);
  EXPECT_GT(report.EffectivenessRatio(), 0.3)
      << "text faults on matmul must mostly matter";
}

TEST_F(SwifiTargetTest, ReferenceRunProducesCorrectResult) {
  ASSERT_TRUE(store_.PutCampaign(Campaign("ref")).ok());
  ASSERT_TRUE(target_.FaultInjectorSwifiPreRuntime("ref").ok());
  const auto reference = store_.GetExperiment("ref/ref").ValueOrDie();
  EXPECT_TRUE(reference.state.halted);
  ASSERT_EQ(reference.state.outputs.size(), 1u);
  EXPECT_EQ(reference.state.outputs[0], 621u);
  EXPECT_TRUE(reference.state.scan_images.contains("sim.regfile"))
      << "simulator observes architectural state directly";
}

TEST_F(SwifiTargetTest, RuntimeSwifiWorksThroughInstructionBreakpoint) {
  CampaignData campaign = Campaign("rt");
  campaign.technique = Technique::kSwifiRuntime;
  campaign.locations = {{"memory.data", ""}};
  campaign.inject_min_instr = 10;
  campaign.inject_max_instr = 500;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorSwifiRuntime("rt").ok());
  EXPECT_EQ(AnalyzeCampaign(store_, "rt").ValueOrDie().total, 25);
}

TEST_F(SwifiTargetTest, ScifiCampaignFailsWithFrameworkDiagnostic) {
  CampaignData campaign = Campaign("scifi");
  campaign.technique = Technique::kScifi;
  campaign.locations = {{"memory.text", ""}};
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  const util::Status st = target_.FaultInjectorScifi("scifi");
  ASSERT_FALSE(st.ok());
  // The failure names the missing building block (Fig. 3's "Write your code
  // here!" placeholder made type-safe).
  EXPECT_NE(st.message().find("InjectFault"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(SwifiTargetTest, ScanSelectorsRejected) {
  CampaignData campaign = Campaign("badsel");
  campaign.locations = {{"internal_regfile", ""}};
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  EXPECT_FALSE(target_.FaultInjectorSwifiPreRuntime("badsel").ok());
}

TEST_F(SwifiTargetTest, ControlWorkloadWithEnvironmentRuns) {
  CampaignData campaign = Campaign("ctrl");
  campaign.workload = "cruise_pi";
  campaign.technique = Technique::kSwifiRuntime;
  campaign.locations = {{"memory.data", ""}};
  campaign.max_iterations = 120;
  campaign.timeout_cycles = 500000;
  campaign.inject_min_instr = 10;
  campaign.inject_max_instr = 1500;
  campaign.num_experiments = 10;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorSwifiRuntime("ctrl").ok());
  const auto reference = store_.GetExperiment("ctrl/ref").ValueOrDie();
  EXPECT_EQ(reference.state.iterations, 120);
  EXPECT_FALSE(reference.state.env_failed);
}

TEST_F(SwifiTargetTest, DeterministicAcrossTargetInstances) {
  ASSERT_TRUE(store_.PutCampaign(Campaign("det1")).ok());
  ASSERT_TRUE(target_.FaultInjectorSwifiPreRuntime("det1").ok());

  SwifiSimTarget fresh(&store_);
  CampaignData campaign = Campaign("det2");
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(fresh.FaultInjectorSwifiPreRuntime("det2").ok());

  for (int i = 0; i < 25; ++i) {
    const auto a = store_.GetExperiment(util::Format("det1/e%04d", i)).ValueOrDie();
    const auto b = store_.GetExperiment(util::Format("det2/e%04d", i)).ValueOrDie();
    EXPECT_EQ(a.experiment_data, b.experiment_data);
    EXPECT_EQ(a.state.Serialize(), b.state.Serialize());
  }
}

// Cross-target comparison: the same SWIFI campaign on the scan-capable
// ThorRdTarget and on SwifiSimTarget must agree on workload-level outcomes
// (both run the same TRD32 core; only the access path differs).
TEST_F(SwifiTargetTest, AgreesWithThorTargetOnSwifiOutcomes) {
  ASSERT_TRUE(store_.PutCampaign(Campaign("simside")).ok());
  ASSERT_TRUE(target_.FaultInjectorSwifiPreRuntime("simside").ok());

  testcard::SimTestCard card;
  ThorRdTarget thor(&store_, &card);
  ASSERT_TRUE(store_
                  .PutTargetSystem(ThorRdTarget::DescribeTarget(
                      card, ThorRdTarget::kTargetName))
                  .ok());
  CampaignData campaign = Campaign("thorside");
  campaign.target_name = ThorRdTarget::kTargetName;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(thor.FaultInjectorSwifiPreRuntime("thorside").ok());

  int agree = 0;
  for (int i = 0; i < 25; ++i) {
    const auto a =
        store_.GetExperiment(util::Format("simside/e%04d", i)).ValueOrDie();
    const auto b =
        store_.GetExperiment(util::Format("thorside/e%04d", i)).ValueOrDie();
    // Same seed, same fault space -> identical fault lists.
    EXPECT_EQ(a.experiment_data, b.experiment_data) << i;
    if (a.state.detected == b.state.detected &&
        a.state.outputs == b.state.outputs) {
      ++agree;
    }
  }
  EXPECT_EQ(agree, 25) << "identical cores must behave identically";
}

TEST(FrameworkTest, AllPlaceholdersFailLoudly) {
  db::Database db;
  CampaignStore store(&db);
  // A FrameworkTarget with nothing overridden: every campaign technique
  // fails at its first building block, naming it.
  class Bare : public FrameworkTarget {
   public:
    using FrameworkTarget::FrameworkTarget;
  };
  Bare bare(&store);
  TargetSystemData target;
  target.name = "bare";
  ASSERT_TRUE(store.PutTargetSystem(target).ok());
  CampaignData campaign;
  campaign.name = "bare_c";
  campaign.target_name = "bare";
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}};
  ASSERT_TRUE(store.PutCampaign(campaign).ok());
  const util::Status st = bare.FaultInjectorScifi("bare_c");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("EnumerateFaultSpace"), std::string::npos)
      << "the first block the driver touches is the fault-space enumeration";
}

}  // namespace
}  // namespace goofi::core
