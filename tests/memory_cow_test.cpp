// Differential suite for the copy-on-write paged cpu::Memory.
//
// The headline property: COW paging is an invisible optimization. A flat
// word-vector reference model (the historical implementation: full-size
// baseline copy + per-page dirty bitmap) is driven through randomized
// store / bulk-write / reset / baseline / snapshot / restore / hash
// sequences in lockstep with the real Memory, comparing word-for-word
// contents, captured deltas, and canonical state hashes (hash + capture
// blob) at every step. On top sit targeted tests for the sharing machinery
// (golden-image interning, cross-Memory isolation, zero-copy adoption,
// scrub recycling, atomic bulk-write validation, delta heap accounting) and
// a runner-level check that campaign databases stay byte-identical across
// cold / warm / pruned / dedup runs at 1-8 workers.
#include "cpu/memory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "core/goofi.hpp"
#include "core/parallel_runner.hpp"
#include "cpu/state_hash.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::cpu {
namespace {

// --- the flat reference model ----------------------------------------------

/// The pre-COW Memory semantics, verbatim: flat word vector, full baseline
/// copy, per-page dirty bitmap (empty until MarkCleanBaseline), content
/// compares to keep deltas and hashes canonical.
class FlatMemory {
 public:
  static constexpr uint32_t kPageWords = Memory::kPageWords;

  explicit FlatMemory(uint32_t size_bytes) : words_((size_bytes + 3) / 4, 0) {}

  uint32_t size_bytes() const {
    return static_cast<uint32_t>(words_.size()) * 4;
  }

  MemAccess Read(uint32_t address) const {
    MemAccess out;
    if (address % 4 != 0) {
      out.violation = EdmType::kMisalignedAccess;
      return out;
    }
    if (address >= size_bytes()) {
      out.violation = EdmType::kOutOfRangeAccess;
      return out;
    }
    out.value = words_[address / 4];
    return out;
  }

  MemAccess Write(uint32_t address, uint32_t value) {
    MemAccess out;
    if (address % 4 != 0) {
      out.violation = EdmType::kMisalignedAccess;
      return out;
    }
    if (address >= size_bytes()) {
      out.violation = EdmType::kOutOfRangeAccess;
      return out;
    }
    if (IsProtected(address)) {
      out.violation = EdmType::kMemoryProtection;
      return out;
    }
    words_[address / 4] = value;
    MarkDirty(address / 4);
    return out;
  }

  bool HostWrite(uint32_t address, uint32_t value) {
    if (address % 4 != 0 || address >= size_bytes()) return false;
    words_[address / 4] = value;
    MarkDirty(address / 4);
    return true;
  }

  bool HostWriteRange(uint32_t address, const uint32_t* range_words,
                      size_t count) {
    if (address % 4 != 0) return false;
    if (static_cast<uint64_t>(address) + count * 4 >
        static_cast<uint64_t>(size_bytes())) {
      return false;
    }
    for (size_t i = 0; i < count; ++i) {
      words_[address / 4 + i] = range_words[i];
      MarkDirty(address / 4 + static_cast<uint32_t>(i));
    }
    return true;
  }

  bool HostRead(uint32_t address, uint32_t* value) const {
    if (address % 4 != 0 || address >= size_bytes()) return false;
    *value = words_[address / 4];
    return true;
  }

  void Protect(uint32_t start, uint32_t length) {
    protected_.push_back({start, start + length});
  }
  void ClearProtection() { protected_.clear(); }
  bool IsProtected(uint32_t address) const {
    for (const auto& range : protected_) {
      if (address >= range.first && address < range.second) return true;
    }
    return false;
  }

  void Reset() {
    std::fill(words_.begin(), words_.end(), 0u);
    protected_.clear();
    std::fill(dirty_.begin(), dirty_.end(), static_cast<uint8_t>(1));
  }

  void MarkCleanBaseline() {
    baseline_ = words_;
    dirty_.assign((words_.size() + kPageWords - 1) / kPageWords, 0);
  }

  Memory::Delta CaptureDelta() const {
    Memory::Delta delta;
    for (size_t page = 0; page < dirty_.size(); ++page) {
      if (!dirty_[page]) continue;
      const size_t begin = page * kPageWords;
      const size_t end = std::min(begin + kPageWords, words_.size());
      if (std::equal(words_.begin() + static_cast<ptrdiff_t>(begin),
                     words_.begin() + static_cast<ptrdiff_t>(end),
                     baseline_.begin() + static_cast<ptrdiff_t>(begin))) {
        continue;
      }
      Memory::Delta::Page out;
      out.index = static_cast<uint32_t>(page);
      out.words.assign(words_.begin() + static_cast<ptrdiff_t>(begin),
                       words_.begin() + static_cast<ptrdiff_t>(end));
      delta.pages.push_back(std::move(out));
    }
    for (const auto& range : protected_) {
      delta.protected_ranges.push_back({range.first, range.second});
    }
    return delta;
  }

  void RestoreDelta(const Memory::Delta& delta) {
    for (size_t page = 0; page < dirty_.size(); ++page) {
      if (!dirty_[page]) continue;
      const size_t begin = page * kPageWords;
      const size_t end = std::min(begin + kPageWords, words_.size());
      std::copy(baseline_.begin() + static_cast<ptrdiff_t>(begin),
                baseline_.begin() + static_cast<ptrdiff_t>(end),
                words_.begin() + static_cast<ptrdiff_t>(begin));
      dirty_[page] = 0;
    }
    for (const Memory::Delta::Page& page : delta.pages) {
      const size_t begin = static_cast<size_t>(page.index) * kPageWords;
      std::copy(page.words.begin(), page.words.end(),
                words_.begin() + static_cast<ptrdiff_t>(begin));
      dirty_[page.index] = 1;
    }
    protected_.clear();
    for (const Memory::Delta::Range& range : delta.protected_ranges) {
      protected_.push_back({range.start, range.end});
    }
  }

  void HashCanonicalState(StateHasher* hasher, bool scrub_clean_pages) {
    for (size_t page = 0; page < dirty_.size(); ++page) {
      if (!dirty_[page]) continue;
      const size_t begin = page * kPageWords;
      const size_t end = std::min(begin + kPageWords, words_.size());
      if (std::equal(words_.begin() + static_cast<ptrdiff_t>(begin),
                     words_.begin() + static_cast<ptrdiff_t>(end),
                     baseline_.begin() + static_cast<ptrdiff_t>(begin))) {
        if (scrub_clean_pages) dirty_[page] = 0;
        continue;
      }
      hasher->U32(static_cast<uint32_t>(page));
      hasher->Words(words_.data() + begin, end - begin);
    }
    hasher->U64(protected_.size());
    for (const auto& range : protected_) {
      hasher->U32(range.first);
      hasher->U32(range.second);
    }
  }

  const std::vector<uint32_t>& words() const { return words_; }
  const std::vector<uint32_t>& baseline() const { return baseline_; }
  bool has_baseline() const { return !baseline_.empty(); }

 private:
  void MarkDirty(uint32_t word_index) {
    if (!dirty_.empty()) dirty_[word_index / kPageWords] = 1;
  }

  std::vector<uint32_t> words_;
  std::vector<std::pair<uint32_t, uint32_t>> protected_;
  std::vector<uint32_t> baseline_;
  std::vector<uint8_t> dirty_;
};

// --- lockstep helpers -------------------------------------------------------

void ExpectSameContents(const Memory& cow, const FlatMemory& flat,
                        const std::string& context) {
  for (uint32_t address = 0; address < flat.size_bytes(); address += 4) {
    auto value = cow.HostRead(address);
    ASSERT_TRUE(value.ok()) << context;
    ASSERT_EQ(value.value(), flat.words()[address / 4])
        << context << " at address " << address;
  }
}

void ExpectSameDelta(const Memory::Delta& a, const Memory::Delta& b,
                     const std::string& context) {
  ASSERT_EQ(a.pages.size(), b.pages.size()) << context;
  for (size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].index, b.pages[i].index) << context;
    EXPECT_EQ(a.pages[i].words, b.pages[i].words) << context;
  }
  ASSERT_EQ(a.protected_ranges.size(), b.protected_ranges.size()) << context;
  for (size_t i = 0; i < a.protected_ranges.size(); ++i) {
    EXPECT_EQ(a.protected_ranges[i].start, b.protected_ranges[i].start)
        << context;
    EXPECT_EQ(a.protected_ranges[i].end, b.protected_ranges[i].end) << context;
  }
}

void ExpectSameHash(Memory& cow, FlatMemory& flat, bool scrub,
                    const std::string& context) {
  StateHasher cow_hash(/*capture=*/true);
  StateHasher flat_hash(/*capture=*/true);
  cow.HashCanonicalState(&cow_hash, scrub);
  flat.HashCanonicalState(&flat_hash, scrub);
  EXPECT_EQ(cow_hash.hash(), flat_hash.hash()) << context;
  EXPECT_EQ(cow_hash.blob(), flat_hash.blob()) << context;
}

// --- the differential fuzzer ------------------------------------------------

TEST(MemoryCowFuzz, RandomOpSequencesMatchFlatModel) {
  constexpr uint32_t kSizeBytes = 32 * 1024;  // 32 pages
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    std::mt19937 rng(seed);
    auto registry = std::make_shared<GoldenRegistry>();
    Memory cow(kSizeBytes, registry);
    FlatMemory flat(kSizeBytes);
    // Captured (cow, flat) delta pairs available for restore.
    std::vector<std::pair<Memory::Delta, Memory::Delta>> snapshots;

    auto random_address = [&]() {
      // Mostly valid aligned addresses, with misaligned and out-of-range
      // probes mixed in to exercise the checked paths.
      const uint32_t roll = rng() % 100;
      if (roll < 90) return (rng() % (kSizeBytes / 4)) * 4;
      if (roll < 95) return rng() % kSizeBytes;  // possibly misaligned
      return kSizeBytes + (rng() % 64) * 4;      // out of range
    };

    const std::string ctx_seed = "seed " + std::to_string(seed);
    for (int op = 0; op < 4000; ++op) {
      const std::string context =
          ctx_seed + " op " + std::to_string(op);
      switch (rng() % 12) {
        case 0:
        case 1:
        case 2: {  // CPU store
          const uint32_t address = random_address();
          const uint32_t value = rng();
          const MemAccess a = cow.Write(address, value);
          const MemAccess b = flat.Write(address, value);
          ASSERT_EQ(a.violation, b.violation) << context;
          break;
        }
        case 3:
        case 4: {  // host store
          const uint32_t address = random_address();
          const uint32_t value = rng() % 4 == 0 ? 0 : rng();
          const bool a = cow.HostWrite(address, value).ok();
          const bool b = flat.HostWrite(address, value);
          ASSERT_EQ(a, b) << context;
          break;
        }
        case 5: {  // bulk host store; sometimes baseline content (adoption)
          const uint32_t address = random_address();
          const size_t count = rng() % (3 * Memory::kPageWords);
          std::vector<uint32_t> data(count);
          if (flat.has_baseline() && rng() % 2 == 0 &&
              address + count * 4 <= kSizeBytes && address % 4 == 0) {
            for (size_t i = 0; i < count; ++i) {
              data[i] = flat.baseline()[address / 4 + i];
            }
          } else {
            for (uint32_t& word : data) word = rng();
          }
          const bool a = cow.HostWriteRange(address, data.data(), count).ok();
          const bool b = flat.HostWriteRange(address, data.data(), count);
          ASSERT_EQ(a, b) << context;
          break;
        }
        case 6: {  // reads
          const uint32_t address = random_address();
          const MemAccess a = cow.Read(address);
          const MemAccess b = flat.Read(address);
          ASSERT_EQ(a.violation, b.violation) << context;
          ASSERT_EQ(a.value, b.value) << context;
          break;
        }
        case 7: {  // protection
          if (rng() % 4 == 0) {
            cow.ClearProtection();
            flat.ClearProtection();
          } else {
            const uint32_t start = (rng() % (kSizeBytes / 4)) * 4;
            const uint32_t length = (rng() % 512) * 4;
            cow.Protect(start, length);
            flat.Protect(start, length);
          }
          break;
        }
        case 8: {  // power-cycle reset
          cow.Reset();
          flat.Reset();
          break;
        }
        case 9: {  // re-baseline (also resets which snapshots stay valid)
          cow.MarkCleanBaseline();
          flat.MarkCleanBaseline();
          snapshots.clear();
          break;
        }
        case 10: {  // snapshot / restore
          if (flat.has_baseline()) {
            if (!snapshots.empty() && rng() % 2 == 0) {
              const auto& pair = snapshots[rng() % snapshots.size()];
              cow.RestoreDelta(pair.first);
              flat.RestoreDelta(pair.second);
            } else {
              Memory::Delta a = cow.CaptureDelta();
              Memory::Delta b = flat.CaptureDelta();
              ExpectSameDelta(a, b, context);
              snapshots.emplace_back(std::move(a), std::move(b));
            }
          }
          break;
        }
        default: {  // canonical hash (+ occasional scrub)
          if (flat.has_baseline()) {
            ExpectSameHash(cow, flat, rng() % 2 == 0, context);
          }
          break;
        }
      }
      if (op % 500 == 499) ExpectSameContents(cow, flat, context);
    }
    ExpectSameContents(cow, flat, ctx_seed + " final");
    if (flat.has_baseline()) {
      ExpectSameHash(cow, flat, /*scrub=*/true, ctx_seed + " final");
      ExpectSameDelta(cow.CaptureDelta(), flat.CaptureDelta(),
                      ctx_seed + " final");
    }
  }
}

// --- sharing machinery ------------------------------------------------------

TEST(MemoryCowTest, RegistryInternsSharedGoldenImages) {
  auto registry = std::make_shared<GoldenRegistry>();
  Memory a(16 * 1024, registry);
  Memory b(16 * 1024, registry);
  for (uint32_t i = 0; i < 1024; ++i) {
    ASSERT_TRUE(a.HostWrite(i * 4, i * 2654435761u).ok());
    ASSERT_TRUE(b.HostWrite(i * 4, i * 2654435761u).ok());
  }
  a.MarkCleanBaseline();
  b.MarkCleanBaseline();
  // Identical contents resolve to one physical image.
  ASSERT_NE(a.golden(), nullptr);
  EXPECT_EQ(a.golden().get(), b.golden().get());
  EXPECT_EQ(registry->stats().images_interned, 1u);
  EXPECT_EQ(registry->stats().shared_hits, 1u);
  EXPECT_EQ(a.residency().golden_image_refs, 2);

  // Writes through one Memory must never leak into the other (the write
  // barrier materializes a private copy before the store lands).
  ASSERT_TRUE(a.HostWrite(0, 0xdeadbeef).ok());
  EXPECT_EQ(a.HostRead(0).value(), 0xdeadbeefu);
  EXPECT_EQ(b.HostRead(0).value(), 0u);
  a.Reset();
  EXPECT_EQ(b.HostRead(4).value(), 2654435761u);

  // Different contents stay distinct.
  Memory c(16 * 1024, registry);
  ASSERT_TRUE(c.HostWrite(0, 7).ok());
  c.MarkCleanBaseline();
  EXPECT_NE(c.golden().get(), b.golden().get());
  EXPECT_EQ(registry->stats().images_interned, 2u);
}

TEST(MemoryCowTest, RedownloadAdoptsGoldenPagesWithoutCopying) {
  Memory memory(16 * 1024);
  std::vector<uint32_t> image(2 * Memory::kPageWords);
  for (size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<uint32_t>(i) | 0x5a000000u;
  }
  // Download, declare baseline, power-cycle, re-download: the second
  // download must repoint at the golden image instead of materializing.
  ASSERT_TRUE(memory.HostWriteRange(0, image.data(), image.size()).ok());
  memory.MarkCleanBaseline();
  memory.Reset();
  EXPECT_EQ(memory.residency().zero_pages, memory.residency().total_pages);
  const uint64_t faults_before = memory.counters().cow_faults;
  ASSERT_TRUE(memory.HostWriteRange(0, image.data(), image.size()).ok());
  EXPECT_EQ(memory.counters().cow_faults, faults_before);
  EXPECT_EQ(memory.counters().golden_adoptions, 2u);
  EXPECT_EQ(memory.residency().private_pages, 0u);
  EXPECT_EQ(memory.HostRead(4).value(), image[1]);
}

TEST(MemoryCowTest, ScrubReleasesCleanPrivatePagesToGolden) {
  Memory memory(16 * 1024);
  ASSERT_TRUE(memory.HostWrite(0, 41).ok());
  memory.MarkCleanBaseline();
  // Dirty a page, then write the baseline value back: content is clean but
  // the page is privately owned until a scrubbing hash releases it.
  ASSERT_TRUE(memory.Write(0, 1234).ok());
  ASSERT_TRUE(memory.Write(0, 41).ok());
  EXPECT_EQ(memory.residency().private_pages, 1u);
  StateHasher hasher;
  memory.HashCanonicalState(&hasher, /*scrub_clean_pages=*/true);
  EXPECT_EQ(memory.residency().private_pages, 0u);
  EXPECT_GE(memory.counters().pages_recycled, 1u);
  EXPECT_EQ(memory.HostRead(0).value(), 41u);
}

TEST(MemoryCowTest, HostWriteRangeValidatesBeforeWriting) {
  Memory memory(4 * 1024);
  std::vector<uint32_t> data(16, 0x11111111u);
  // Misaligned: rejected outright.
  EXPECT_FALSE(memory.HostWriteRange(2, data.data(), data.size()).ok());
  // Tail out of range: nothing is written, not even the in-range prefix.
  EXPECT_FALSE(
      memory.HostWriteRange(4 * 1024 - 8, data.data(), data.size()).ok());
  for (uint32_t address = 0; address < 4 * 1024; address += 4) {
    EXPECT_EQ(memory.HostRead(address).value(), 0u);
  }
}

TEST(MemoryCowTest, DeltaMemoryBytesCountsHeapCapacity) {
  Memory memory(16 * 1024);
  memory.MarkCleanBaseline();
  ASSERT_TRUE(memory.Write(0, 1).ok());
  ASSERT_TRUE(memory.Write(4096, 2).ok());
  memory.Protect(0, 64);
  const Memory::Delta delta = memory.CaptureDelta();
  ASSERT_EQ(delta.pages.size(), 2u);
  // The accounting must cover the per-page word buffers (the dominant term)
  // plus the page and range vectors' actual capacities.
  size_t expected = delta.pages.capacity() * sizeof(Memory::Delta::Page) +
                    delta.protected_ranges.capacity() *
                        sizeof(Memory::Delta::Range);
  for (const auto& page : delta.pages) {
    expected += page.words.capacity() * sizeof(uint32_t);
  }
  EXPECT_EQ(delta.MemoryBytes(), expected);
  EXPECT_GE(delta.MemoryBytes(), 2 * Memory::kPageWords * sizeof(uint32_t));
}

// --- runner-level database identity ----------------------------------------

core::CampaignData SmallScifiCampaign() {
  core::CampaignData campaign;
  campaign.name = "cow_scifi";
  campaign.target_name = core::ThorRdTarget::kTargetName;
  campaign.technique = core::Technique::kScifi;
  campaign.fault_model = core::FaultModelKind::kTransientBitFlip;
  campaign.num_experiments = 8;
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1000;
  campaign.timeout_cycles = 100000;
  return campaign;
}

struct RunArtifacts {
  util::Status status;
  std::string db_bytes;
};

/// Runs the campaign in a fresh session and returns the saved database file.
template <typename Configure>
RunArtifacts RunWith(const core::CampaignData& campaign, Configure configure) {
  db::Database db;
  core::CampaignStore store(&db);
  testcard::SimTestCard card;
  EXPECT_TRUE(store
                  .PutTargetSystem(core::ThorRdTarget::DescribeTarget(
                      card, core::ThorRdTarget::kTargetName))
                  .ok());
  EXPECT_TRUE(store.PutCampaign(campaign).ok());
  RunArtifacts artifacts;
  artifacts.status = configure(store);
  const std::string path =
      testing::TempDir() + "goofi_memory_cow_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".db";
  EXPECT_TRUE(db.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  artifacts.db_bytes = buffer.str();
  std::remove(path.c_str());
  return artifacts;
}

TEST(MemoryCowRunnerTest, ColdWarmPrunedDedupDatabasesMatchSerial) {
  const core::CampaignData campaign = SmallScifiCampaign();

  const RunArtifacts serial = RunWith(campaign, [&](core::CampaignStore& s) {
    testcard::SimTestCard card;
    core::ThorRdTarget target(&s, &card);
    return target.RunCampaign(campaign.name);
  });
  ASSERT_TRUE(serial.status.ok()) << serial.status.ToString();
  ASSERT_FALSE(serial.db_bytes.empty());

  for (int workers : {1, 2, 4, 8}) {
    for (int mode = 0; mode < 4; ++mode) {
      const std::string context = "workers " + std::to_string(workers) +
                                  " mode " + std::to_string(mode);
      const RunArtifacts parallel =
          RunWith(campaign, [&](core::CampaignStore& s) {
            core::ParallelCampaignRunner runner(
                &s, core::MakeSimThorFactory(&s), workers);
            switch (mode) {
              case 0:  // cold: defaults, no checkpoint fast-forward
                break;
              case 1:  // warm
                runner.SetForceWarmStart(true);
                break;
              case 2:  // pruned
                runner.SetForceWarmStart(true);
                runner.SetConvergencePruning(true);
                break;
              default:  // dedup
                runner.SetForceWarmStart(true);
                runner.SetConvergencePruning(true);
                runner.SetEquivalenceClassing(true);
                runner.SetSpotCheckEvery(1);
                break;
            }
            return runner.Run(campaign.name);
          });
      ASSERT_TRUE(parallel.status.ok())
          << context << ": " << parallel.status.ToString();
      EXPECT_EQ(serial.db_bytes, parallel.db_bytes)
          << context << ": database must be byte-identical to serial";
    }
  }
}

}  // namespace
}  // namespace goofi::cpu
