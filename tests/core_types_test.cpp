// Tests for the GOOFI core data model: enums, selectors, fault instances and
// logged-state serialization.
#include <gtest/gtest.h>

#include "core/types.hpp"

namespace goofi::core {
namespace {

TEST(EnumsTest, TechniqueRoundTrip) {
  for (Technique t : {Technique::kScifi, Technique::kSwifiPreRuntime,
                      Technique::kSwifiRuntime}) {
    EXPECT_EQ(TechniqueFromName(TechniqueName(t)).ValueOrDie(), t);
  }
  EXPECT_FALSE(TechniqueFromName("bogus").ok());
}

TEST(EnumsTest, FaultModelRoundTrip) {
  for (FaultModelKind k :
       {FaultModelKind::kTransientBitFlip, FaultModelKind::kIntermittentBitFlip,
        FaultModelKind::kPermanentStuckAt}) {
    EXPECT_EQ(FaultModelFromName(FaultModelName(k)).ValueOrDie(), k);
  }
  EXPECT_FALSE(FaultModelFromName("bogus").ok());
}

TEST(EnumsTest, OutcomeNames) {
  EXPECT_STREQ(OutcomeName(Outcome::kDetected), "detected");
  EXPECT_STREQ(OutcomeName(Outcome::kEscaped), "escaped");
  EXPECT_STREQ(OutcomeName(Outcome::kLatent), "latent");
  EXPECT_STREQ(OutcomeName(Outcome::kOverwritten), "overwritten");
}

TEST(SelectorTest, ParseWithAndWithoutPrefix) {
  auto plain = FaultLocationSelector::Parse("internal_core").ValueOrDie();
  EXPECT_EQ(plain.chain, "internal_core");
  EXPECT_TRUE(plain.cell_prefix.empty());

  auto scoped = FaultLocationSelector::Parse("internal_regfile:regfile.r1")
                    .ValueOrDie();
  EXPECT_EQ(scoped.chain, "internal_regfile");
  EXPECT_EQ(scoped.cell_prefix, "regfile.r1");

  EXPECT_FALSE(FaultLocationSelector::Parse("").ok());
  EXPECT_FALSE(FaultLocationSelector::Parse(":prefix").ok());
}

TEST(SelectorTest, ToStringRoundTrip) {
  for (const char* text : {"internal_core", "memory.text",
                           "internal_icache:icache.line3"}) {
    const auto selector = FaultLocationSelector::Parse(text).ValueOrDie();
    EXPECT_EQ(selector.ToString(), text);
  }
}

TEST(FaultInstanceTest, ScanFaultSerializeRoundTrip) {
  FaultInstance fault;
  fault.kind = FaultModelKind::kIntermittentBitFlip;
  fault.chain = "internal_core";
  fault.chain_bit = 77;
  fault.cell_name = "core.pc";
  fault.inject_instr = 123456;
  const auto back = FaultInstance::Parse(fault.Serialize()).ValueOrDie();
  EXPECT_EQ(back.kind, fault.kind);
  EXPECT_EQ(back.chain, fault.chain);
  EXPECT_EQ(back.chain_bit, fault.chain_bit);
  EXPECT_EQ(back.cell_name, fault.cell_name);
  EXPECT_EQ(back.inject_instr, fault.inject_instr);
  EXPECT_TRUE(back.IsScanFault());
}

TEST(FaultInstanceTest, MemoryFaultSerializeRoundTrip) {
  FaultInstance fault;
  fault.kind = FaultModelKind::kPermanentStuckAt;
  fault.address = 0xF004;
  fault.bit = 31;
  fault.stuck_value = true;
  const auto back = FaultInstance::Parse(fault.Serialize()).ValueOrDie();
  EXPECT_FALSE(back.IsScanFault());
  EXPECT_EQ(back.address, 0xF004u);
  EXPECT_EQ(back.bit, 31u);
  EXPECT_TRUE(back.stuck_value);
}

TEST(FaultInstanceTest, ParseRejectsMalformed) {
  EXPECT_FALSE(FaultInstance::Parse("").ok());
  EXPECT_FALSE(FaultInstance::Parse("a,b,c").ok());
  EXPECT_FALSE(FaultInstance::Parse("bogus_kind,,0,,0,0,0,0").ok());
  EXPECT_FALSE(FaultInstance::Parse("transient_bitflip,,x,,0,0,0,0").ok());
}

TEST(FaultInstanceTest, DescribeMentionsLocationAndTime) {
  FaultInstance fault;
  fault.chain = "internal_regfile";
  fault.chain_bit = 42;
  fault.cell_name = "regfile.r1";
  fault.inject_instr = 99;
  const std::string text = fault.Describe();
  EXPECT_NE(text.find("internal_regfile"), std::string::npos);
  EXPECT_NE(text.find("regfile.r1"), std::string::npos);
  EXPECT_NE(text.find("99"), std::string::npos);
}

TEST(LoggedStateTest, SerializeRoundTripFull) {
  LoggedState state;
  state.halted = true;
  state.detected = true;
  state.edm = "cache_parity_data";
  state.edm_code = -3;
  state.timed_out = true;
  state.env_failed = true;
  state.cycles = 123456789012ULL;
  state.instret = 987654321ULL;
  state.iterations = 250;
  state.outputs = {0xDEADBEEF, 0, 0xFFFFFFFF};
  state.scan_images["internal_core"] = "0101101";
  state.scan_images["boundary"] = "111";

  const auto back = LoggedState::Deserialize(state.Serialize()).ValueOrDie();
  EXPECT_EQ(back.halted, state.halted);
  EXPECT_EQ(back.detected, state.detected);
  EXPECT_EQ(back.edm, state.edm);
  EXPECT_EQ(back.edm_code, state.edm_code);
  EXPECT_EQ(back.timed_out, state.timed_out);
  EXPECT_EQ(back.env_failed, state.env_failed);
  EXPECT_EQ(back.cycles, state.cycles);
  EXPECT_EQ(back.instret, state.instret);
  EXPECT_EQ(back.iterations, state.iterations);
  EXPECT_EQ(back.outputs, state.outputs);
  EXPECT_EQ(back.scan_images, state.scan_images);
}

TEST(LoggedStateTest, DefaultRoundTrip) {
  const LoggedState state;
  const auto back = LoggedState::Deserialize(state.Serialize()).ValueOrDie();
  EXPECT_FALSE(back.halted);
  EXPECT_FALSE(back.detected);
  EXPECT_TRUE(back.edm.empty());
  EXPECT_TRUE(back.outputs.empty());
  EXPECT_TRUE(back.scan_images.empty());
}

TEST(LoggedStateTest, DeserializeRejectsUnknownKey) {
  EXPECT_FALSE(LoggedState::Deserialize("wat=1;").ok());
  EXPECT_FALSE(LoggedState::Deserialize("halted").ok());
  EXPECT_FALSE(LoggedState::Deserialize("cycles=abc;").ok());
}

TEST(LoggedStateTest, EmptyStringIsDefaultState) {
  const auto state = LoggedState::Deserialize("").ValueOrDie();
  EXPECT_FALSE(state.detected);
}

// Parameterized property: Serialize/Deserialize is stable for varying
// output-vector sizes.
class LoggedStateOutputsSweep : public ::testing::TestWithParam<int> {};

TEST_P(LoggedStateOutputsSweep, OutputsRoundTrip) {
  LoggedState state;
  for (int i = 0; i < GetParam(); ++i) {
    state.outputs.push_back(static_cast<uint32_t>(i * 2654435761u));
  }
  const auto back = LoggedState::Deserialize(state.Serialize()).ValueOrDie();
  EXPECT_EQ(back.outputs, state.outputs);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LoggedStateOutputsSweep,
                         ::testing::Values(0, 1, 2, 9, 64));

}  // namespace
}  // namespace goofi::core
