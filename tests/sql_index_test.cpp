// Differential tests of the indexed query engine: every query must produce
// byte-identical results with indexes on (`ExecOptions::use_indexes = true`,
// the default) and off (forced full scans / nested loops). Randomized
// generation covers NULL three-valued logic, joins, GROUP BY and ORDER BY;
// incremental index maintenance is validated against a from-scratch rebuild
// after every mutation. Also covers prepared statements, the statement
// cache, CREATE/DROP INDEX SQL and `explain` plan text.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/prepared.hpp"
#include "db/sql_executor.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace goofi::db {
namespace {

/// Serializes a result set (schema + every value) for byte-identity checks.
std::string Fingerprint(const QueryResult& result) {
  std::string fp = util::Join(result.columns, ",") + "\n";
  for (const Row& row : result.rows) {
    for (const Value& v : row) {
      fp += v.Serialize();
      fp += "|";
    }
    fp += "\n";
  }
  fp += "affected=" + std::to_string(result.affected);
  return fp;
}

/// Runs `sql` with indexes on and off and expects byte-identical outcomes
/// (same error, or same fingerprint). Returns the indexed result.
util::Result<QueryResult> ExpectSame(Database& db, const std::string& sql) {
  ExecOptions scan;
  scan.use_indexes = false;
  auto indexed = ExecuteSql(db, sql);
  auto scanned = ExecuteSql(db, sql, scan);
  EXPECT_EQ(indexed.ok(), scanned.ok()) << sql;
  if (indexed.ok() && scanned.ok()) {
    EXPECT_EQ(Fingerprint(indexed.value()), Fingerprint(scanned.value())) << sql;
  } else if (!indexed.ok() && !scanned.ok()) {
    EXPECT_EQ(indexed.status().ToString(), scanned.status().ToString()) << sql;
  }
  return indexed;
}

void ExpectValidIndexes(const Database& db, const std::string& table) {
  std::string error;
  ASSERT_TRUE(db.GetTable(table)->ValidateIndexes(&error)) << error;
}

/// t(id INT PK, label TEXT ~10% NULL, score REAL ~10% NULL) with a sorted
/// index on label and a composite hash index on (label, score).
void Populate(Database* db, util::Rng* rng, int n) {
  ASSERT_TRUE(db->CreateTable(Schema("t",
                                     {{"id", ValueType::kInt, true},
                                      {"label", ValueType::kText, false},
                                      {"score", ValueType::kReal, false}},
                                     {"id"}))
                  .ok());
  ASSERT_TRUE(ExecuteSql(*db, "CREATE INDEX idx_label ON t (label)").ok());
  ASSERT_TRUE(
      ExecuteSql(*db, "CREATE INDEX idx_label_score ON t (label, score)").ok());
  std::set<int64_t> used;
  while (static_cast<int>(used.size()) < n) {
    const int64_t id = static_cast<int64_t>(rng->NextBelow(100000));
    if (!used.insert(id).second) continue;
    Row row = {Value::Int(id),
               rng->NextBool(0.1)
                   ? Value::Null()
                   : Value::Text("x" + std::to_string(rng->NextBelow(20))),
               rng->NextBool(0.1)
                   ? Value::Null()
                   : Value::Real(static_cast<double>(rng->NextBelow(1000)) / 4)};
    ASSERT_TRUE(db->Insert("t", std::move(row)).ok());
  }
}

/// A random type-safe predicate over t's columns. Comparisons keep each
/// column with literals of its own type, so indexed and scan paths cannot
/// diverge through evaluation errors (that divergence is documented in
/// DESIGN.md; it is not under test here).
std::string RandomPredicate(util::Rng* rng) {
  auto conjunct = [rng]() -> std::string {
    static const char* const kOps[] = {"=", "!=", "<", "<=", ">", ">="};
    switch (rng->NextBelow(6)) {
      case 0:
        return util::Format("id %s %d", kOps[rng->NextBelow(6)],
                            static_cast<int>(rng->NextBelow(100000)));
      case 1:
        return util::Format("label %s 'x%d'", kOps[rng->NextBelow(6)],
                            static_cast<int>(rng->NextBelow(20)));
      case 2:
        return util::Format("score %s %d.25", kOps[rng->NextBelow(6)],
                            static_cast<int>(rng->NextBelow(250)));
      case 3:
        return rng->NextBool() ? "label IS NULL" : "label IS NOT NULL";
      case 4:
        return rng->NextBool() ? "score IS NULL" : "score IS NOT NULL";
      default:
        // Range pair on one column: the sorted-index path with both bounds.
        return util::Format("label >= 'x%d' AND label < 'x%d'",
                            static_cast<int>(rng->NextBelow(20)),
                            static_cast<int>(rng->NextBelow(20)));
    }
  };
  std::string predicate = conjunct();
  const size_t extra = rng->NextBelow(3);
  for (size_t i = 0; i < extra; ++i) {
    predicate += rng->NextBool(0.8) ? " AND " : " OR ";
    predicate += conjunct();
  }
  return predicate;
}

std::string RandomQuery(util::Rng* rng) {
  std::string sql;
  if (rng->NextBool(0.3)) {
    sql = "SELECT label, COUNT(*), SUM(id), MIN(score) FROM t";
    if (rng->NextBool(0.8)) sql += " WHERE " + RandomPredicate(rng);
    sql += " GROUP BY label ORDER BY label";
  } else {
    sql = rng->NextBool() ? "SELECT * FROM t" : "SELECT id, score FROM t";
    if (rng->NextBool(0.8)) sql += " WHERE " + RandomPredicate(rng);
    if (rng->NextBool()) {
      sql += rng->NextBool() ? " ORDER BY id" : " ORDER BY score DESC, id";
    }
    if (rng->NextBool(0.3)) {
      sql += util::Format(" LIMIT %d", 1 + static_cast<int>(rng->NextBelow(40)));
    }
  }
  return sql;
}

TEST(SqlIndexTest, RandomQueriesMatchScanByteForByte) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    Database db;
    Populate(&db, &rng, 120 + static_cast<int>(rng.NextBelow(200)));
    for (int q = 0; q < 60; ++q) {
      ExpectSame(db, RandomQuery(&rng));
    }
  }
}

TEST(SqlIndexTest, QueriesMatchAcrossRandomMutations) {
  util::Rng rng(911);
  Database db;
  Populate(&db, &rng, 250);
  for (int round = 0; round < 25; ++round) {
    // One random mutation (executed once — mutations are not idempotent, so
    // only SELECTs go through the run-both-ways differential helper)...
    switch (rng.NextBelow(3)) {
      case 0:
        ASSERT_TRUE(ExecuteSql(db, util::Format("DELETE FROM t WHERE %s",
                                                RandomPredicate(&rng).c_str()))
                        .ok());
        break;
      case 1:
        ASSERT_TRUE(
            ExecuteSql(db, util::Format("UPDATE t SET label = 'x%d', "
                                        "score = %d.25 WHERE %s",
                                        static_cast<int>(rng.NextBelow(20)),
                                        static_cast<int>(rng.NextBelow(250)),
                                        RandomPredicate(&rng).c_str()))
                .ok());
        break;
      default:
        // May collide with an existing PK; the table must be unchanged then.
        ExecuteSql(db, util::Format("INSERT INTO t VALUES (%d, 'x%d', %d.25)",
                                    static_cast<int>(rng.NextBelow(100000)),
                                    static_cast<int>(rng.NextBelow(20)),
                                    static_cast<int>(rng.NextBelow(250))));
        break;
    }
    // ... then the incremental index state must equal a full rebuild and
    // queries must stay byte-identical.
    ExpectValidIndexes(db, "t");
    for (int q = 0; q < 10; ++q) {
      ExpectSame(db, RandomQuery(&rng));
    }
  }
}

TEST(SqlIndexTest, NullSemanticsAgreeBetweenPaths) {
  util::Rng rng(77);
  Database db;
  Populate(&db, &rng, 200);
  // Equality with NULL never matches (three-valued logic), even though the
  // index stores NULL keys; IS NULL is the only way to probe them.
  auto eq_null = ExpectSame(db, "SELECT COUNT(*) FROM t WHERE label = NULL");
  EXPECT_EQ(eq_null.ValueOrDie().rows[0][0].as_int(), 0);
  auto is_null =
      ExpectSame(db, "SELECT id FROM t WHERE label IS NULL ORDER BY id");
  EXPECT_GT(is_null.ValueOrDie().rows.size(), 0u);
  // Range probes exclude NULL keys: `label < 'z'` is NULL (not true) for
  // NULL labels, so IS NULL + range must partition the non-null rows.
  auto below = ExpectSame(db, "SELECT COUNT(*) FROM t WHERE label < 'z'");
  auto total = ExpectSame(db, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(is_null.ValueOrDie().rows.size() +
                static_cast<size_t>(below.ValueOrDie().rows[0][0].as_int()),
            static_cast<size_t>(total.ValueOrDie().rows[0][0].as_int()));
  // NULL bounds make ranges empty; GROUP BY groups NULLs together; ORDER BY
  // sorts NULL first — all byte-checked against the scan path.
  ExpectSame(db, "SELECT COUNT(*) FROM t WHERE label > NULL");
  ExpectSame(db, "SELECT label, COUNT(*) FROM t GROUP BY label ORDER BY label");
  ExpectSame(db, "SELECT label FROM t ORDER BY label, id");
}

TEST(SqlIndexTest, JoinMatchesNestedLoop) {
  util::Rng rng(31337);
  Database db;
  ASSERT_TRUE(db.CreateTable(Schema("campaign",
                                    {{"name", ValueType::kText, true},
                                     {"target", ValueType::kText, true}},
                                    {"name"}))
                  .ok());
  ASSERT_TRUE(db.CreateTable(Schema("state",
                                    {{"experiment", ValueType::kText, true},
                                     {"campaign", ValueType::kText, false},
                                     {"outcome", ValueType::kText, false}},
                                    {"experiment"}))
                  .ok());
  ASSERT_TRUE(ExecuteSql(db, "CREATE INDEX idx_state_campaign ON state (campaign)").ok());
  for (int c = 0; c < 12; ++c) {
    ASSERT_TRUE(ExecuteSql(db, util::Format(
        "INSERT INTO campaign VALUES ('c%d', 't%d')", c, c % 3)).ok());
  }
  static const char* const kOutcomes[] = {"ok", "wrong", "latent"};
  for (int e = 0; e < 400; ++e) {
    // ~5% of rows reference no campaign (NULL join key: never matches).
    if (rng.NextBool(0.05)) {
      ASSERT_TRUE(ExecuteSql(db, util::Format(
          "INSERT INTO state VALUES ('e%04d', NULL, '%s')", e,
          kOutcomes[rng.NextBelow(3)])).ok());
    } else {
      ASSERT_TRUE(ExecuteSql(db, util::Format(
          "INSERT INTO state VALUES ('e%04d', 'c%d', '%s')", e,
          static_cast<int>(rng.NextBelow(12)), kOutcomes[rng.NextBelow(3)])).ok());
    }
  }
  // Index-nested-loop join on the secondary index (state.campaign) ...
  ExpectSame(db,
             "SELECT campaign.name, COUNT(*) FROM campaign "
             "JOIN state ON state.campaign = campaign.name "
             "GROUP BY campaign.name ORDER BY campaign.name");
  // ... and on the right table's primary key, plus residual ON conjuncts.
  ExpectSame(db,
             "SELECT state.experiment, campaign.target FROM state "
             "JOIN campaign ON campaign.name = state.campaign "
             "WHERE state.outcome = 'wrong' ORDER BY state.experiment");
  ExpectSame(db,
             "SELECT state.experiment FROM state "
             "JOIN campaign ON campaign.name = state.campaign "
             "AND campaign.target = 't1' ORDER BY state.experiment");
}

TEST(SqlIndexTest, CreateAndDropIndexSql) {
  Database db;
  ASSERT_TRUE(db.CreateTable(Schema("t", {{"a", ValueType::kInt, true},
                                          {"b", ValueType::kText, false}},
                                    {"a"}))
                  .ok());
  ASSERT_TRUE(ExecuteSql(db, "INSERT INTO t VALUES (1, 'x')").ok());
  ASSERT_TRUE(ExecuteSql(db, "CREATE INDEX i1 ON t (b)").ok());
  ASSERT_TRUE(ExecuteSql(db, "CREATE INDEX i2 ON t (a, b)").ok());
  const Table* table = db.GetTable("t");
  ASSERT_NE(table->FindIndex("i1"), nullptr);
  EXPECT_EQ(table->FindIndex("i1")->kind, IndexKind::kSorted);
  EXPECT_EQ(table->FindIndex("i2")->kind, IndexKind::kHash);
  // Duplicate names, unknown columns and unknown tables are errors.
  EXPECT_FALSE(ExecuteSql(db, "CREATE INDEX i1 ON t (a)").ok());
  EXPECT_FALSE(ExecuteSql(db, "CREATE INDEX i3 ON t (nope)").ok());
  EXPECT_FALSE(ExecuteSql(db, "CREATE INDEX i3 ON missing (a)").ok());
  ASSERT_TRUE(ExecuteSql(db, "DROP INDEX i1 ON t").ok());
  EXPECT_EQ(table->FindIndex("i1"), nullptr);
  EXPECT_FALSE(ExecuteSql(db, "DROP INDEX i1 ON t").ok());
  ExpectValidIndexes(db, "t");
}

TEST(SqlIndexTest, PreparedStatementsBindParams) {
  util::Rng rng(55);
  Database db;
  Populate(&db, &rng, 150);
  auto prepared =
      PreparedStatement::Prepare("SELECT id FROM t WHERE label = ? ORDER BY id");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared.value()->params_expected(), 1u);
  // Wrong arity is rejected.
  EXPECT_FALSE(prepared.value()->Execute(db, {}).ok());
  // Bound execution matches the literal query, for several bindings.
  for (int k = 0; k < 20; ++k) {
    const std::string label = "x" + std::to_string(k);
    auto bound = prepared.value()->Execute(db, {Value::Text(label)});
    ASSERT_TRUE(bound.ok());
    auto literal = ExecuteSql(
        db, "SELECT id FROM t WHERE label = '" + label + "' ORDER BY id");
    ASSERT_TRUE(literal.ok());
    EXPECT_EQ(Fingerprint(bound.value()), Fingerprint(literal.value()));
  }
  // NULL param: `label = NULL` matches nothing.
  auto null_bound = prepared.value()->Execute(db, {Value::Null()});
  ASSERT_TRUE(null_bound.ok());
  EXPECT_TRUE(null_bound.value().rows.empty());
  // The plan was built once and reused across all executions above.
  EXPECT_EQ(prepared.value()->plans_built(), 1u);
}

TEST(SqlIndexTest, PreparedPlanInvalidatedBySchemaChanges) {
  util::Rng rng(66);
  Database db;
  Populate(&db, &rng, 100);
  auto prepared = PreparedStatement::Prepare(
      "SELECT COUNT(*) FROM t WHERE label = ?");
  ASSERT_TRUE(prepared.ok());
  const auto run = [&](Database& target) {
    auto r = prepared.value()->Execute(target, {Value::Text("x1")});
    ASSERT_TRUE(r.ok());
  };
  run(db);
  run(db);
  EXPECT_EQ(prepared.value()->plans_built(), 1u);
  // DDL bumps the schema version: the next execution replans (the old plan
  // held a pointer to the dropped index).
  ASSERT_TRUE(ExecuteSql(db, "DROP INDEX idx_label ON t").ok());
  run(db);
  EXPECT_EQ(prepared.value()->plans_built(), 2u);
  ASSERT_TRUE(ExecuteSql(db, "CREATE INDEX idx_label ON t (label)").ok());
  run(db);
  EXPECT_EQ(prepared.value()->plans_built(), 3u);
  // Load replaces all tables; the statement must replan, not reuse pointers
  // into the pre-load tables.
  const std::string path = testing::TempDir() + "sql_index_prepared.db";
  ASSERT_TRUE(db.Save(path).ok());
  ASSERT_TRUE(db.Load(path).ok());
  std::remove(path.c_str());
  run(db);
  EXPECT_EQ(prepared.value()->plans_built(), 4u);
  // A different Database object likewise forces a replan.
  Database other;
  util::Rng rng2(67);
  Populate(&other, &rng2, 10);
  run(other);
  EXPECT_EQ(prepared.value()->plans_built(), 5u);
}

TEST(SqlIndexTest, StatementCacheCountsHitsAndParsesOnce) {
  util::Rng rng(88);
  Database db;
  Populate(&db, &rng, 80);
  StatementCache cache;
  for (int i = 0; i < 5; ++i) {
    auto r = cache.Execute(db, "SELECT COUNT(*) FROM t WHERE id >= ?",
                           {Value::Int(i * 1000)});
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.size(), 1u);
  // Parse errors are not cached.
  EXPECT_FALSE(cache.Execute(db, "SELEKT broken").ok());
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SqlIndexTest, ExplainDescribesAccessPaths) {
  util::Rng rng(99);
  Database db;
  Populate(&db, &rng, 50);
  auto eq = ExplainSql(db, "SELECT * FROM t WHERE label = 'x1'");
  ASSERT_TRUE(eq.ok());
  EXPECT_NE(eq.value().find("index equality probe idx_label"), std::string::npos)
      << eq.value();
  auto pk = ExplainSql(db, "SELECT * FROM t WHERE id = 7");
  ASSERT_TRUE(pk.ok());
  EXPECT_NE(pk.value().find("primary-key probe"), std::string::npos);
  auto range = ExplainSql(db, "SELECT * FROM t WHERE label > 'x1' ORDER BY id");
  ASSERT_TRUE(range.ok());
  EXPECT_NE(range.value().find("index range probe idx_label"), std::string::npos);
  EXPECT_NE(range.value().find("ORDER BY: stable sort"), std::string::npos);
  auto scan = ExplainSql(db, "SELECT * FROM t WHERE score = 1.5");
  ASSERT_TRUE(scan.ok());
  EXPECT_NE(scan.value().find("full scan"), std::string::npos);
  auto ddl = ExplainSql(db, "DELETE FROM t WHERE id = 1");
  ASSERT_TRUE(ddl.ok());
  EXPECT_NE(ddl.value().find("no plan"), std::string::npos);
}

TEST(SqlIndexTest, IndexSurvivesUpdateOfKeyColumns) {
  Database db;
  ASSERT_TRUE(db.CreateTable(Schema("t", {{"a", ValueType::kInt, true},
                                          {"b", ValueType::kText, false}},
                                    {"a"}))
                  .ok());
  ASSERT_TRUE(ExecuteSql(db, "CREATE INDEX ib ON t (b)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ExecuteSql(db, util::Format(
        "INSERT INTO t VALUES (%d, 'k%d')", i, i % 5)).ok());
  }
  // Moving rows between index keys must relocate their postings.
  ASSERT_TRUE(ExecuteSql(db, "UPDATE t SET b = 'moved' WHERE b = 'k2'").ok());
  ExpectValidIndexes(db, "t");
  EXPECT_EQ(ExpectSame(db, "SELECT COUNT(*) FROM t WHERE b = 'moved'")
                .ValueOrDie().rows[0][0].as_int(), 10);
  EXPECT_EQ(ExpectSame(db, "SELECT COUNT(*) FROM t WHERE b = 'k2'")
                .ValueOrDie().rows[0][0].as_int(), 0);
  // Updating to NULL moves postings to the NULL key.
  ASSERT_TRUE(ExecuteSql(db, "UPDATE t SET b = NULL WHERE b = 'k3'").ok());
  ExpectValidIndexes(db, "t");
  EXPECT_EQ(ExpectSame(db, "SELECT COUNT(*) FROM t WHERE b IS NULL")
                .ValueOrDie().rows[0][0].as_int(), 10);
  ASSERT_TRUE(ExecuteSql(db, "DELETE FROM t WHERE b IS NULL").ok());
  ExpectValidIndexes(db, "t");
  EXPECT_EQ(ExpectSame(db, "SELECT COUNT(*) FROM t")
                .ValueOrDie().rows[0][0].as_int(), 40);
}

}  // namespace
}  // namespace goofi::db
