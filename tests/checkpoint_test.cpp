// Equivalence and semantics tests for the golden-run checkpoint engine.
//
// The headline property: a warm-started campaign — every experiment
// fast-forwarded from the nearest golden-run checkpoint before its injection
// time — leaves the database byte-identical to a cold run of the same
// campaign, with equal Stats, for every technique, fault model, workload
// class, checkpoint interval and worker count.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::core {
namespace {

CampaignData ThorScifiCampaign(const std::string& name) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = ThorRdTarget::kTargetName;
  campaign.technique = Technique::kScifi;
  campaign.num_experiments = 8;
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1000;
  campaign.timeout_cycles = 100000;
  return campaign;
}

CampaignData ThorControlCampaign(const std::string& name) {
  CampaignData campaign = ThorScifiCampaign(name);
  campaign.workload = "pendulum_pd";
  campaign.num_experiments = 6;
  campaign.inject_max_instr = 2000;
  campaign.max_iterations = 40;
  return campaign;
}

CampaignData SwifiRuntimeCampaign(const std::string& name) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = SwifiSimTarget::kTargetName;
  campaign.technique = Technique::kSwifiRuntime;
  campaign.num_experiments = 8;
  campaign.workload = "fibonacci";
  campaign.locations = {{"memory.text", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 500;
  campaign.timeout_cycles = 100000;
  return campaign;
}

CampaignData SwifiControlCampaign(const std::string& name) {
  CampaignData campaign = SwifiRuntimeCampaign(name);
  campaign.workload = "cruise_pi";
  campaign.locations = {{"memory.data", ""}};
  campaign.num_experiments = 6;
  campaign.inject_max_instr = 2000;
  campaign.max_iterations = 40;
  return campaign;
}

/// Everything a run leaves behind that equivalence is asserted over.
struct RunResult {
  util::Status status;
  std::vector<CampaignStore::ExperimentRow> rows;  ///< insertion order
  FaultInjectionAlgorithms::Stats stats;
  int warm_starts = 0;
  std::string db_bytes;  ///< the Save() file, CRC trailer and all
};

/// One self-contained session: fresh database + store + registered target.
struct Session {
  db::Database db;
  CampaignStore store;

  explicit Session(const CampaignData& campaign) : store(&db) {
    if (campaign.target_name == ThorRdTarget::kTargetName) {
      testcard::SimTestCard card;
      EXPECT_TRUE(store
                      .PutTargetSystem(ThorRdTarget::DescribeTarget(
                          card, ThorRdTarget::kTargetName))
                      .ok());
    } else {
      EXPECT_TRUE(store.PutTargetSystem(SwifiSimTarget::Describe()).ok());
    }
    EXPECT_TRUE(store.PutCampaign(campaign).ok());
  }

  RunResult Snapshot(util::Status status,
                     const FaultInjectionAlgorithms::Stats& stats,
                     int warm_starts, const std::string& campaign_name) {
    RunResult result;
    result.status = std::move(status);
    result.stats = stats;
    result.warm_starts = warm_starts;
    auto rows = store.ExperimentsOf(campaign_name);
    if (rows.ok()) result.rows = std::move(rows).value();
    const std::string path =
        testing::TempDir() + "goofi_checkpoint_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".db";
    EXPECT_TRUE(db.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    result.db_bytes = buf.str();
    std::remove(path.c_str());
    return result;
  }
};

/// Serial run with checkpointing configured explicitly. `interval` 0 is the
/// cold baseline; `force` engages warm-start regardless of the injection
/// window.
RunResult RunSerial(const CampaignData& campaign, uint64_t interval,
                    bool force) {
  Session session(campaign);
  auto drive = [&](FaultInjectionAlgorithms& target) {
    target.SetCheckpointInterval(interval);
    target.SetForceWarmStart(force);
    // Sequence the run before reading the counters (argument evaluation
    // order is unspecified).
    util::Status status = target.RunCampaign(campaign.name);
    return session.Snapshot(std::move(status), target.stats(),
                            target.warm_starts(), campaign.name);
  };
  if (campaign.target_name == ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    ThorRdTarget target(&session.store, &card);
    return drive(target);
  }
  SwifiSimTarget target(&session.store);
  return drive(target);
}

RunResult RunCold(const CampaignData& campaign) {
  return RunSerial(campaign, /*interval=*/0, /*force=*/false);
}

RunResult RunWarm(const CampaignData& campaign, uint64_t interval) {
  return RunSerial(campaign, interval, /*force=*/true);
}

RunResult RunParallelWarm(const CampaignData& campaign, int workers,
                          uint64_t interval) {
  Session session(campaign);
  const auto factory = campaign.target_name == ThorRdTarget::kTargetName
                           ? MakeSimThorFactory(&session.store)
                           : MakeSwifiSimFactory(&session.store);
  ParallelCampaignRunner runner(&session.store, factory, workers);
  runner.SetCheckpointInterval(interval);
  runner.SetForceWarmStart(true);
  util::Status status = runner.Run(campaign.name);
  return session.Snapshot(std::move(status), runner.stats(),
                          runner.warm_starts(), campaign.name);
}

void ExpectIdentical(const RunResult& cold, const RunResult& warm) {
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  ASSERT_EQ(cold.rows.size(), warm.rows.size());
  for (size_t i = 0; i < cold.rows.size(); ++i) {
    EXPECT_EQ(cold.rows[i].experiment_name, warm.rows[i].experiment_name)
        << "row " << i << " out of order";
    EXPECT_EQ(cold.rows[i].experiment_data, warm.rows[i].experiment_data)
        << "row " << i;
    EXPECT_EQ(cold.rows[i].state.Serialize(), warm.rows[i].state.Serialize())
        << "row " << i;
  }
  EXPECT_EQ(cold.stats, warm.stats) << "warm Stats must equal cold Stats";
  EXPECT_EQ(cold.db_bytes, warm.db_bytes)
      << "database files must be byte-identical";
}

TEST(CheckpointTest, ScifiBatchWorkloadWarmMatchesColdAtEveryInterval) {
  for (uint64_t seed : {0x600F1ull, 0xBADF00Dull}) {
    CampaignData campaign = ThorScifiCampaign("cp_scifi");
    campaign.seed = seed;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RunResult cold = RunCold(campaign);
    EXPECT_EQ(cold.warm_starts, 0);
    for (uint64_t interval : {1ull, 64ull, 4096ull}) {
      SCOPED_TRACE("interval=" + std::to_string(interval));
      const RunResult warm = RunWarm(campaign, interval);
      EXPECT_EQ(warm.warm_starts, campaign.num_experiments);
      ExpectIdentical(cold, warm);
    }
  }
}

TEST(CheckpointTest, ScifiControlWorkloadWarmMatchesCold) {
  // Environment-in-the-loop workload: checkpoints must carry the plant
  // state, the iteration count and the actuator CRC accumulator.
  const CampaignData campaign = ThorControlCampaign("cp_scifi_env");
  const RunResult cold = RunCold(campaign);
  for (uint64_t interval : {64ull, 4096ull}) {
    SCOPED_TRACE("interval=" + std::to_string(interval));
    const RunResult warm = RunWarm(campaign, interval);
    EXPECT_EQ(warm.warm_starts, campaign.num_experiments);
    ExpectIdentical(cold, warm);
  }
}

TEST(CheckpointTest, RuntimeSwifiWarmMatchesColdAtEveryInterval) {
  for (uint64_t seed : {0x600F1ull, 0x5EEDull}) {
    CampaignData campaign = SwifiRuntimeCampaign("cp_swifi");
    campaign.seed = seed;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RunResult cold = RunCold(campaign);
    for (uint64_t interval : {1ull, 64ull, 4096ull}) {
      SCOPED_TRACE("interval=" + std::to_string(interval));
      const RunResult warm = RunWarm(campaign, interval);
      EXPECT_EQ(warm.warm_starts, campaign.num_experiments);
      ExpectIdentical(cold, warm);
    }
  }
}

TEST(CheckpointTest, RuntimeSwifiControlWorkloadWarmMatchesCold) {
  const CampaignData campaign = SwifiControlCampaign("cp_swifi_env");
  const RunResult cold = RunCold(campaign);
  const RunResult warm = RunWarm(campaign, 64);
  EXPECT_EQ(warm.warm_starts, campaign.num_experiments);
  ExpectIdentical(cold, warm);
}

TEST(CheckpointTest, PermanentAndIntermittentModelsWarmMatchCold) {
  // Non-transient models re-activate faults after injection via the
  // reactivation trigger; the restored debug unit must replay that exactly.
  for (FaultModelKind model : {FaultModelKind::kPermanentStuckAt,
                               FaultModelKind::kIntermittentBitFlip}) {
    CampaignData campaign = ThorScifiCampaign("cp_model");
    campaign.fault_model = model;
    SCOPED_TRACE(FaultModelName(model));
    const RunResult cold = RunCold(campaign);
    ExpectIdentical(cold, RunWarm(campaign, 64));
  }
}

TEST(CheckpointTest, DetailModeWarmMatchesCold) {
  CampaignData campaign = ThorScifiCampaign("cp_detail");
  campaign.log_mode = LogMode::kDetail;
  campaign.num_experiments = 3;
  campaign.inject_max_instr = 200;
  const RunResult cold = RunCold(campaign);
  ASSERT_GT(cold.rows.size(), 4u) << "expected detail rows";
  ExpectIdentical(cold, RunWarm(campaign, 64));
}

TEST(CheckpointTest, ParallelWarmSharesCacheAndMatchesCold) {
  const CampaignData campaign = ThorScifiCampaign("cp_par");
  const RunResult cold = RunCold(campaign);
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult warm = RunParallelWarm(campaign, workers, 64);
    EXPECT_EQ(warm.warm_starts, campaign.num_experiments);
    ExpectIdentical(cold, warm);
  }
}

TEST(CheckpointTest, ParallelWarmSwifiMatchesCold) {
  const CampaignData campaign = SwifiRuntimeCampaign("cp_par_swifi");
  const RunResult cold = RunCold(campaign);
  const RunResult warm = RunParallelWarm(campaign, 4, 64);
  EXPECT_EQ(warm.warm_starts, campaign.num_experiments);
  ExpectIdentical(cold, warm);
}

TEST(CheckpointTest, WarmStartEngagesByDefaultForLateInjections) {
  // All faults inject at or after the first interval, so PrepareCampaign
  // auto-builds the cache without SetForceWarmStart.
  CampaignData campaign = ThorScifiCampaign("cp_auto");
  campaign.inject_min_instr = 600;
  const RunResult cold = RunCold(campaign);
  const RunResult warm =
      RunSerial(campaign, /*interval=*/64, /*force=*/false);
  EXPECT_EQ(warm.warm_starts, campaign.num_experiments);
  ExpectIdentical(cold, warm);
}

TEST(CheckpointTest, DefaultStaysColdForEarlyInjections) {
  // inject_min_instr < interval: building a cache could not serve every
  // experiment, so the default configuration stays entirely cold.
  const CampaignData campaign = ThorScifiCampaign("cp_early");
  const RunResult run = RunSerial(
      campaign, FaultInjectionAlgorithms::kDefaultCheckpointInterval,
      /*force=*/false);
  ASSERT_TRUE(run.status.ok());
  EXPECT_EQ(run.warm_starts, 0);
}

TEST(CheckpointTest, FindBeforeIsStrictlyBelow) {
  struct DummyPayload final : CheckpointPayload {
    size_t MemoryBytes() const override { return sizeof(DummyPayload); }
  };
  CheckpointCache cache(100);
  for (uint64_t instret : {0ull, 100ull, 200ull}) {
    Checkpoint cp;
    cp.instret = instret;
    cp.payload = std::make_shared<DummyPayload>();
    cache.Add(std::move(cp));
  }
  EXPECT_EQ(cache.FindBefore(0), nullptr);
  ASSERT_NE(cache.FindBefore(1), nullptr);
  EXPECT_EQ(cache.FindBefore(1)->instret, 0u);
  // A checkpoint AT the injection instruction must not be used: the debug
  // unit evaluates triggers after stepping, so restoring there would fire
  // the breakpoint one instruction late.
  ASSERT_NE(cache.FindBefore(100), nullptr);
  EXPECT_EQ(cache.FindBefore(100)->instret, 0u);
  EXPECT_EQ(cache.FindBefore(101)->instret, 100u);
  EXPECT_EQ(cache.FindBefore(5000)->instret, 200u);
}

TEST(CheckpointTest, CacheMemoryIsBoundedByPageDeltas) {
  // A full TRD32 memory image is 1 MiB; dirty-page deltas must keep each
  // snapshot far below that.
  db::Database db;
  CampaignStore store(&db);
  testcard::SimTestCard card;
  ASSERT_TRUE(store
                  .PutTargetSystem(ThorRdTarget::DescribeTarget(
                      card, ThorRdTarget::kTargetName))
                  .ok());
  CampaignData campaign = ThorScifiCampaign("cp_mem");
  campaign.inject_max_instr = 20000;
  ASSERT_TRUE(store.PutCampaign(campaign).ok());
  ThorRdTarget target(&store, &card);
  target.SetCheckpointInterval(0);  // build explicitly below
  ASSERT_TRUE(target.PrepareCampaign(campaign).ok());
  CheckpointCache cache(256);
  ASSERT_TRUE(target.BuildCheckpoints(256, &cache).ok());
  ASSERT_GT(cache.size(), 4u);
  EXPECT_EQ(cache.interval(), 256u);
  EXPECT_LT(cache.MemoryBytes(), cache.size() * 256 * 1024)
      << "snapshots must store page deltas, not full memory images";
}

}  // namespace
}  // namespace goofi::core
