// Tests for the SQL dialect: tokenizer, parser and executor.
#include <gtest/gtest.h>

#include "db/sql_executor.hpp"
#include "db/sql_parser.hpp"
#include "db/sql_tokenizer.hpp"

namespace goofi::db {
namespace {

// --- tokenizer -----------------------------------------------------------

TEST(SqlTokenizerTest, BasicKinds) {
  auto tokens = Tokenize("SELECT a, 42, 3.5, 'text', 0x10 <= >= != <>").ValueOrDie();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdent);
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_DOUBLE_EQ(tokens[5].real_value, 3.5);
  EXPECT_EQ(tokens[7].text, "text");
  EXPECT_EQ(tokens[9].int_value, 16);
}

TEST(SqlTokenizerTest, StringEscapes) {
  auto tokens = Tokenize("'it''s'").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(SqlTokenizerTest, LineComments) {
  auto tokens = Tokenize("SELECT -- comment here\n 1").ValueOrDie();
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(SqlTokenizerTest, NotEqualsNormalized) {
  auto tokens = Tokenize("a <> b").ValueOrDie();
  EXPECT_TRUE(tokens[1].IsSymbol("!="));
}

TEST(SqlTokenizerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(SqlTokenizerTest, RejectsStrayCharacter) {
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

// --- parser ------------------------------------------------------------------

TEST(SqlParserTest, ParsesFullSelect) {
  auto stmt = ParseSql(
                  "SELECT a, b AS bee, COUNT(*) FROM t JOIN u ON t.id = u.id "
                  "WHERE a > 1 AND b != 'x' GROUP BY a ORDER BY a DESC LIMIT 5;")
                  .ValueOrDie();
  const auto& select = std::get<SelectStmt>(stmt);
  EXPECT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[1].alias, "bee");
  EXPECT_EQ(select.joins.size(), 1u);
  ASSERT_TRUE(select.where != nullptr);
  EXPECT_EQ(select.group_by.size(), 1u);
  EXPECT_EQ(select.order_by.size(), 1u);
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_EQ(select.limit, 5);
}

TEST(SqlParserTest, ParsesInsertMultiRow) {
  auto stmt =
      ParseSql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").ValueOrDie();
  const auto& insert = std::get<InsertStmt>(stmt);
  EXPECT_EQ(insert.columns.size(), 2u);
  EXPECT_EQ(insert.rows.size(), 2u);
}

TEST(SqlParserTest, ParsesCreateTableWithConstraints) {
  auto stmt = ParseSql(
                  "CREATE TABLE c (id INTEGER NOT NULL PRIMARY KEY, p TEXT, "
                  "FOREIGN KEY (p) REFERENCES parent (name))")
                  .ValueOrDie();
  const auto& create = std::get<CreateTableStmt>(stmt);
  EXPECT_EQ(create.schema.table_name(), "c");
  EXPECT_EQ(create.schema.primary_key(), std::vector<std::string>{"id"});
  ASSERT_EQ(create.schema.foreign_keys().size(), 1u);
  EXPECT_EQ(create.schema.foreign_keys()[0].ref_table, "parent");
}

TEST(SqlParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseSql("SELECT 1 FROM t extra garbage here").ok());
}

TEST(SqlParserTest, RejectsUnknownFunction) {
  EXPECT_FALSE(ParseSql("SELECT NOPE(a) FROM t").ok());
}

TEST(SqlParserTest, OperatorPrecedence) {
  // 1 + 2 * 3 = 7, not 9.
  auto stmt = ParseSql("SELECT 1 + 2 * 3 FROM t").ValueOrDie();
  const auto& select = std::get<SelectStmt>(stmt);
  const Expr& e = *select.items[0].expr;
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.args[1]->op, "*");
}

// --- executor -------------------------------------------------------------------

class SqlExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE exp (name TEXT PRIMARY KEY, outcome TEXT, cycles INTEGER, "
         "score REAL)");
    Exec("INSERT INTO exp VALUES ('e1', 'detected', 100, 0.5)");
    Exec("INSERT INTO exp VALUES ('e2', 'escaped', 250, 1.5)");
    Exec("INSERT INTO exp VALUES ('e3', 'detected', 50, NULL)");
    Exec("INSERT INTO exp VALUES ('e4', 'overwritten', 70, 2.0)");
  }

  QueryResult Exec(const std::string& sql) {
    auto result = ExecuteSql(db_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(SqlExecTest, SelectStar) {
  const auto result = Exec("SELECT * FROM exp");
  EXPECT_EQ(result.columns.size(), 4u);
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST_F(SqlExecTest, WhereFilters) {
  const auto result = Exec("SELECT name FROM exp WHERE outcome = 'detected'");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_F(SqlExecTest, WhereWithAndOrNot) {
  EXPECT_EQ(Exec("SELECT name FROM exp WHERE outcome = 'detected' AND cycles > 60")
                .rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT name FROM exp WHERE cycles < 60 OR cycles > 200").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT name FROM exp WHERE NOT outcome = 'detected'").rows.size(),
            2u);
}

TEST_F(SqlExecTest, ArithmeticInProjection) {
  const auto result = Exec("SELECT cycles * 2 + 1 FROM exp WHERE name = 'e1'");
  EXPECT_EQ(result.rows[0][0].as_int(), 201);
}

TEST_F(SqlExecTest, IntegerDivisionAndModulo) {
  const auto result = Exec("SELECT 7 / 2, 7 % 2, 7.0 / 2 FROM exp LIMIT 1");
  EXPECT_EQ(result.rows[0][0].as_int(), 3);
  EXPECT_EQ(result.rows[0][1].as_int(), 1);
  EXPECT_DOUBLE_EQ(result.rows[0][2].as_real(), 3.5);
}

TEST_F(SqlExecTest, DivisionByZeroYieldsNull) {
  const auto result = Exec("SELECT 1 / 0 FROM exp LIMIT 1");
  EXPECT_TRUE(result.rows[0][0].is_null());
}

TEST_F(SqlExecTest, TextConcatenation) {
  const auto result = Exec("SELECT name + '!' FROM exp WHERE name = 'e1'");
  EXPECT_EQ(result.rows[0][0].as_text(), "e1!");
}

TEST_F(SqlExecTest, IsNullAndIsNotNull) {
  EXPECT_EQ(Exec("SELECT name FROM exp WHERE score IS NULL").rows.size(), 1u);
  EXPECT_EQ(Exec("SELECT name FROM exp WHERE score IS NOT NULL").rows.size(), 3u);
}

TEST_F(SqlExecTest, NullComparisonIsNeverTrue) {
  EXPECT_EQ(Exec("SELECT name FROM exp WHERE score > 0").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT name FROM exp WHERE score = NULL").rows.size(), 0u);
}

TEST_F(SqlExecTest, OrderByAscDesc) {
  const auto asc = Exec("SELECT name FROM exp ORDER BY cycles");
  EXPECT_EQ(asc.rows[0][0].as_text(), "e3");
  const auto desc = Exec("SELECT name FROM exp ORDER BY cycles DESC");
  EXPECT_EQ(desc.rows[0][0].as_text(), "e2");
}

TEST_F(SqlExecTest, OrderByMultipleKeysStable) {
  const auto result = Exec("SELECT name FROM exp ORDER BY outcome, cycles DESC");
  // detected(e1 100, e3 50) then escaped then overwritten.
  EXPECT_EQ(result.rows[0][0].as_text(), "e1");
  EXPECT_EQ(result.rows[1][0].as_text(), "e3");
}

TEST_F(SqlExecTest, Limit) {
  EXPECT_EQ(Exec("SELECT name FROM exp ORDER BY name LIMIT 2").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT name FROM exp LIMIT 0").rows.size(), 0u);
}

TEST_F(SqlExecTest, AggregatesWholeTable) {
  const auto result = Exec(
      "SELECT COUNT(*), COUNT(score), SUM(cycles), MIN(cycles), MAX(cycles), "
      "AVG(cycles) FROM exp");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 4);
  EXPECT_EQ(result.rows[0][1].as_int(), 3);  // COUNT skips NULL
  EXPECT_EQ(result.rows[0][2].as_int(), 470);
  EXPECT_EQ(result.rows[0][3].as_int(), 50);
  EXPECT_EQ(result.rows[0][4].as_int(), 250);
  EXPECT_DOUBLE_EQ(result.rows[0][5].as_real(), 117.5);
}

TEST_F(SqlExecTest, GroupByWithHavingStyleFilter) {
  const auto result = Exec(
      "SELECT outcome, COUNT(*) AS n FROM exp GROUP BY outcome ORDER BY outcome");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].as_text(), "detected");
  EXPECT_EQ(result.rows[0][1].as_int(), 2);
}

TEST_F(SqlExecTest, AggregateOverEmptyGroupIsNull) {
  const auto result = Exec("SELECT SUM(cycles) FROM exp WHERE cycles > 9999");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(result.rows[0][0].is_null());
}

TEST_F(SqlExecTest, ScalarFunctions) {
  const auto result =
      Exec("SELECT ABS(0 - cycles), LENGTH(name) FROM exp WHERE name = 'e1'");
  EXPECT_EQ(result.rows[0][0].as_int(), 100);
  EXPECT_EQ(result.rows[0][1].as_int(), 2);
}

TEST_F(SqlExecTest, JoinWithQualifiedColumns) {
  Exec("CREATE TABLE camp (cname TEXT PRIMARY KEY, wl TEXT)");
  Exec("INSERT INTO camp VALUES ('c1', 'sort')");
  Exec("CREATE TABLE run (rname TEXT PRIMARY KEY, cname TEXT)");
  Exec("INSERT INTO run VALUES ('e1', 'c1'), ('e2', 'c1')");
  const auto result = Exec(
      "SELECT run.rname, camp.wl FROM run JOIN camp ON run.cname = camp.cname "
      "ORDER BY run.rname");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][1].as_text(), "sort");
}

TEST_F(SqlExecTest, JoinWithAliases) {
  Exec("CREATE TABLE pair (a INTEGER, b INTEGER)");
  Exec("INSERT INTO pair VALUES (1, 2), (2, 3)");
  const auto result = Exec(
      "SELECT x.a, y.b FROM pair x JOIN pair y ON x.b = y.a");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 1);
  EXPECT_EQ(result.rows[0][1].as_int(), 3);
}

TEST_F(SqlExecTest, AmbiguousColumnRejected) {
  Exec("CREATE TABLE pair (a INTEGER, b INTEGER)");
  Exec("INSERT INTO pair VALUES (1, 2)");
  auto result = ExecuteSql(db_, "SELECT a FROM pair x JOIN pair y ON x.a = y.a");
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlExecTest, UpdateWithWhere) {
  const auto result =
      Exec("UPDATE exp SET outcome = 'latent', cycles = cycles + 1 "
           "WHERE name = 'e4'");
  EXPECT_EQ(result.affected, 1u);
  const auto check = Exec("SELECT outcome, cycles FROM exp WHERE name = 'e4'");
  EXPECT_EQ(check.rows[0][0].as_text(), "latent");
  EXPECT_EQ(check.rows[0][1].as_int(), 71);
}

TEST_F(SqlExecTest, DeleteWithWhere) {
  const auto result = Exec("DELETE FROM exp WHERE cycles < 80");
  EXPECT_EQ(result.affected, 2u);
  EXPECT_EQ(Exec("SELECT * FROM exp").rows.size(), 2u);
}

TEST_F(SqlExecTest, InsertColumnSubsetFillsNull) {
  Exec("CREATE TABLE partial (a INTEGER, b TEXT)");
  Exec("INSERT INTO partial (a) VALUES (5)");
  const auto result = Exec("SELECT b FROM partial");
  EXPECT_TRUE(result.rows[0][0].is_null());
}

TEST_F(SqlExecTest, InsertEnforcesConstraints) {
  auto dup = ExecuteSql(db_, "INSERT INTO exp VALUES ('e1', 'x', 0, 0)");
  EXPECT_FALSE(dup.ok());
}

TEST_F(SqlExecTest, UnknownTableAndColumnErrors) {
  EXPECT_FALSE(ExecuteSql(db_, "SELECT * FROM missing").ok());
  EXPECT_FALSE(ExecuteSql(db_, "SELECT missing_col FROM exp").ok());
  EXPECT_FALSE(ExecuteSql(db_, "UPDATE exp SET nope = 1").ok());
}

TEST_F(SqlExecTest, CreateAndDropTableViaSql) {
  Exec("CREATE TABLE tmp (x INTEGER)");
  EXPECT_TRUE(db_.HasTable("tmp"));
  Exec("DROP TABLE tmp");
  EXPECT_FALSE(db_.HasTable("tmp"));
}

TEST_F(SqlExecTest, QueryResultToStringContainsHeaderAndRows) {
  const auto result = Exec("SELECT name FROM exp ORDER BY name LIMIT 1");
  const std::string text = result.ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("e1"), std::string::npos);
}

TEST_F(SqlExecTest, ColumnIndexLookup) {
  const auto result = Exec("SELECT name, cycles FROM exp LIMIT 1");
  EXPECT_EQ(result.ColumnIndex("CYCLES"), 1u);
  EXPECT_FALSE(result.ColumnIndex("zzz").has_value());
}

// Parameterized sweep: COUNT(*) with WHERE cycles >= threshold must be
// monotonically non-increasing in the threshold.
class SqlThresholdSweep : public SqlExecTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(SqlThresholdSweep, CountMonotone) {
  const int threshold = GetParam();
  const auto at = Exec("SELECT COUNT(*) FROM exp WHERE cycles >= " +
                       std::to_string(threshold));
  const auto above = Exec("SELECT COUNT(*) FROM exp WHERE cycles >= " +
                          std::to_string(threshold + 10));
  EXPECT_GE(at.rows[0][0].as_int(), above.rows[0][0].as_int());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SqlThresholdSweep,
                         ::testing::Values(0, 50, 60, 70, 100, 240, 260));

}  // namespace
}  // namespace goofi::db
