// Tests for the environment simulators and the built-in workloads.
#include <gtest/gtest.h>

#include "cpu/cpu.hpp"
#include "env/environment.hpp"
#include "env/workloads.hpp"
#include "isa/assembler.hpp"

namespace goofi::env {
namespace {

// --- fixed point ------------------------------------------------------------

TEST(FixedPointTest, RoundTrip) {
  EXPECT_EQ(ToFixed(1.0), 256);
  EXPECT_EQ(ToFixed(-2.5), -640);
  EXPECT_DOUBLE_EQ(FromFixed(256), 1.0);
  EXPECT_DOUBLE_EQ(FromFixed(-128), -0.5);
  EXPECT_EQ(WordToFixed(0xFFFFFF00u), -256);
}

// --- plants -------------------------------------------------------------------

TEST(PendulumTest, FallsWithoutControl) {
  InvertedPendulum plant;
  std::vector<uint32_t> zero_torque = {0};
  for (int i = 0; i < 1000 && !plant.Failed(); ++i) {
    (void)plant.Exchange(zero_torque);
  }
  EXPECT_TRUE(plant.Failed()) << "unstable plant must fall open-loop";
}

TEST(PendulumTest, HostSidePdControlStabilizes) {
  InvertedPendulum plant;
  for (int i = 0; i < 2000; ++i) {
    const double u = -(4.0 * plant.theta() + 2.0 * plant.omega());
    (void)plant.Exchange({static_cast<uint32_t>(ToFixed(u))});
  }
  EXPECT_FALSE(plant.Failed());
  EXPECT_LT(std::abs(plant.theta()), 0.05);
}

TEST(PendulumTest, SenseDoesNotAdvance) {
  InvertedPendulum plant;
  const auto a = plant.Sense();
  const auto b = plant.Sense();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(static_cast<int32_t>(a[0]), ToFixed(0.10));
}

TEST(PendulumTest, ResetRestoresInitialState) {
  InvertedPendulum plant;
  (void)plant.Exchange({static_cast<uint32_t>(ToFixed(50.0))});
  plant.Reset();
  EXPECT_DOUBLE_EQ(plant.theta(), 0.10);
  EXPECT_DOUBLE_EQ(plant.omega(), 0.0);
}

TEST(PendulumTest, ActuatorSaturates) {
  InvertedPendulum plant;
  // An absurd command must behave like the +/-64 physical limit.
  (void)plant.Exchange({static_cast<uint32_t>(ToFixed(10000.0))});
  InvertedPendulum reference;
  (void)reference.Exchange({static_cast<uint32_t>(ToFixed(64.0))});
  EXPECT_DOUBLE_EQ(plant.theta(), reference.theta());
}

TEST(CruiseTest, PiControlConverges) {
  CruiseControl plant;
  double integral = 0;
  for (int i = 0; i < 400; ++i) {
    const double error = 20.0 - plant.speed();
    integral += error;
    const double u = std::clamp(2.0 * error + 0.0625 * integral, 0.0, 100.0);
    (void)plant.Exchange({static_cast<uint32_t>(ToFixed(u))});
  }
  EXPECT_FALSE(plant.Failed());
  EXPECT_NEAR(plant.speed(), 20.0, 2.0);
}

TEST(CruiseTest, StuckActuatorFailsAfterSettling) {
  CruiseControl plant;
  for (int i = 0; i < 400; ++i) {
    (void)plant.Exchange({0});  // no drive at all
  }
  EXPECT_TRUE(plant.Failed());
}

// --- workload registry --------------------------------------------------------

TEST(WorkloadTest, RegistryListsAllWorkloads) {
  const auto names = WorkloadNames();
  EXPECT_EQ(names.size(), 11u);
  for (const std::string& name : names) {
    EXPECT_TRUE(GetWorkload(name).ok()) << name;
  }
  EXPECT_FALSE(GetWorkload("nope").ok());
}

TEST(WorkloadTest, AllWorkloadsAssemble) {
  for (const std::string& name : WorkloadNames()) {
    const auto spec = GetWorkload(name).ValueOrDie();
    auto program = isa::Assemble(spec.source);
    EXPECT_TRUE(program.ok()) << name << ": " << program.status().ToString();
  }
}

TEST(WorkloadTest, SpecsAreInternallyConsistent) {
  for (const std::string& name : WorkloadNames()) {
    const auto spec = GetWorkload(name).ValueOrDie();
    const auto program = isa::Assemble(spec.source).ValueOrDie();
    EXPECT_TRUE(program.symbols.contains("_etext")) << name;
    if (spec.infinite_loop) {
      EXPECT_TRUE(program.symbols.contains(spec.iteration_symbol)) << name;
      EXPECT_TRUE(program.symbols.contains(spec.input_symbol)) << name;
      EXPECT_FALSE(spec.environment.empty()) << name;
      EXPECT_GT(spec.input_words, 0u) << name;
      EXPECT_GT(spec.output_words, 0u) << name;
    } else {
      EXPECT_TRUE(program.symbols.contains(spec.result_symbol)) << name;
      EXPECT_GT(spec.result_words, 0u) << name;
    }
  }
}

// --- batch workload semantics (run on a bare CPU) ------------------------------

class BatchWorkloadTest : public ::testing::Test {
 protected:
  /// Runs the named workload to completion; returns the result words.
  std::vector<uint32_t> RunBatch(const std::string& name) {
    const auto spec = GetWorkload(name).ValueOrDie();
    const auto program = isa::Assemble(spec.source).ValueOrDie();
    cpu_ = std::make_unique<cpu::Cpu>();
    const uint32_t etext = program.symbols.at("_etext");
    EXPECT_TRUE(cpu_->LoadProgram(program.base_address, program.words,
                                  etext - program.base_address)
                    .ok());
    cpu_->Reset(program.entry);
    EXPECT_EQ(cpu_->Run(2'000'000), cpu::StepOutcome::kHalted) << name;
    std::vector<uint32_t> results;
    const uint32_t result_addr = program.symbols.at(spec.result_symbol);
    for (uint32_t i = 0; i < spec.result_words; ++i) {
      results.push_back(cpu_->memory().HostRead(result_addr + i * 4).ValueOrDie());
    }
    program_ = program;
    return results;
  }

  std::unique_ptr<cpu::Cpu> cpu_;
  isa::AssembledProgram program_;
};

TEST_F(BatchWorkloadTest, BubbleSortSortsAndChecksums) {
  const auto results = RunBatch("bubblesort");
  EXPECT_EQ(results[0], 1881u);  // sum of the input block
  // The data block itself must be ascending.
  const uint32_t data = program_.symbols.at("data");
  uint32_t prev = 0;
  for (int i = 0; i < 16; ++i) {
    const uint32_t v =
        cpu_->memory().HostRead(data + static_cast<uint32_t>(i) * 4).ValueOrDie();
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(cpu_->memory().HostRead(data).ValueOrDie(), 1u);
  EXPECT_EQ(cpu_->memory().HostRead(data + 15 * 4).ValueOrDie(), 802u);
}

TEST_F(BatchWorkloadTest, MatMulComputesKnownProduct) {
  const auto results = RunBatch("matmul");
  // A = [1..9], B = [9..1]; C checksum computed independently:
  // C = A*B; sum(C) = 621.
  EXPECT_EQ(results[0], 621u);
  // Spot-check C[0][0] = 1*9 + 2*6 + 3*3 = 30.
  const uint32_t c = program_.symbols.at("mat_c");
  EXPECT_EQ(cpu_->memory().HostRead(c).ValueOrDie(), 30u);
}

TEST_F(BatchWorkloadTest, FibonacciComputesFib24) {
  const auto results = RunBatch("fibonacci");
  EXPECT_EQ(results[0], 46368u);  // fib(24)
}

TEST_F(BatchWorkloadTest, StrSearchFindsAllOccurrences) {
  const auto results = RunBatch("strsearch");
  // Needle {7,2,1,8} occurs at indices 8, 12 and (wrapping the tail window
  // excluded) — scan covers i in [0, HLEN-NLEN): matches at 8 and 12.
  // result = count*256 + first index.
  EXPECT_EQ(results[0] >> 8, 2u);
  EXPECT_EQ(results[0] & 0xFFu, 8u);
}

TEST_F(BatchWorkloadTest, QueueRoundTripsThroughTheStack) {
  const auto results = RunBatch("queue");
  // Deterministic fold; independently computed on the host.
  uint32_t acc = 0;
  std::vector<uint32_t> stack;
  for (uint32_t i = 1; i < 12; ++i) stack.push_back(i * i + 3);
  for (uint32_t i = 1; i < 12; ++i) {
    const uint32_t v = stack.back();
    stack.pop_back();
    acc = ((acc << 3) | (acc >> 29)) ^ v;
  }
  EXPECT_EQ(results[0], acc);
}

TEST_F(BatchWorkloadTest, ChecksumIsDeterministicAndNonTrivial) {
  const auto first = RunBatch("checksum");
  EXPECT_NE(first[0], 0u);
  const auto second = RunBatch("checksum");
  EXPECT_EQ(first, second);
}

// --- control workloads under their environments (closed loop) -----------------

class ControlWorkloadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ControlWorkloadTest, ClosedLoopIsStableFaultFree) {
  const auto spec = GetWorkload(GetParam()).ValueOrDie();
  const auto program = isa::Assemble(spec.source).ValueOrDie();
  cpu::Cpu cpu;
  const uint32_t etext = program.symbols.at("_etext");
  ASSERT_TRUE(
      cpu.LoadProgram(program.base_address, program.words, etext).ok());
  cpu.Reset(program.entry);

  std::unique_ptr<EnvironmentSimulator> plant;
  if (spec.environment == "inverted_pendulum") {
    plant = std::make_unique<InvertedPendulum>();
  } else {
    plant = std::make_unique<CruiseControl>();
  }
  const uint32_t input_addr = program.symbols.at(spec.input_symbol);
  const uint32_t output_addr = input_addr + spec.input_words * 4;
  const uint32_t loop_end = program.symbols.at(spec.iteration_symbol);

  const auto inputs0 = plant->Sense();
  for (size_t i = 0; i < inputs0.size(); ++i) {
    ASSERT_TRUE(
        cpu.HostWriteWord(input_addr + static_cast<uint32_t>(i) * 4, inputs0[i]).ok());
  }

  int iterations = 0;
  while (iterations < 400) {
    const uint32_t exec_pc = cpu.pc();
    const auto outcome = cpu.Step();
    ASSERT_EQ(outcome, cpu::StepOutcome::kOk)
        << GetParam() << " stopped: "
        << cpu::EdmTypeName(cpu.edm_event().type);
    if (exec_pc == loop_end) {
      std::vector<uint32_t> outputs;
      for (uint32_t i = 0; i < spec.output_words; ++i) {
        outputs.push_back(cpu.memory().HostRead(output_addr + i * 4).ValueOrDie());
      }
      const auto inputs = plant->Exchange(outputs);
      for (size_t i = 0; i < inputs.size(); ++i) {
        ASSERT_TRUE(cpu.HostWriteWord(input_addr + static_cast<uint32_t>(i) * 4,
                                      inputs[i])
                        .ok());
      }
      ++iterations;
    }
  }
  EXPECT_FALSE(plant->Failed()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllControllers, ControlWorkloadTest,
                         ::testing::Values("pendulum_pd", "pendulum_pd_assert",
                                           "pendulum_pd_trap", "cruise_pi"));

}  // namespace
}  // namespace goofi::env
