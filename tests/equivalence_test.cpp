// Property and semantics tests for fault-list equivalence classing (PR 7).
//
// The headline property mirrors convergence_test: a deduplicated campaign —
// one representative executed per equivalence class, the remaining members'
// rows synthesized — leaves the database byte-identical to a plain run of
// the same campaign, with equal Stats, for every technique, log mode and
// worker count. Classing may only ever change *how fast* a result is
// produced, never the result.
#include "core/equivalence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/goofi.hpp"
#include "core/preinjection.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::core {
namespace {

CampaignData ThorScifiCampaign(const std::string& name) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = ThorRdTarget::kTargetName;
  campaign.technique = Technique::kScifi;
  campaign.num_experiments = 8;
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1000;
  campaign.timeout_cycles = 100000;
  return campaign;
}

/// Single register-file cell, many experiments over a narrow window: the
/// (bit, access-window) birthday campaign that guarantees multi-member
/// classes actually form.
CampaignData ThorSingleCellCampaign(const std::string& name) {
  CampaignData campaign = ThorScifiCampaign(name);
  campaign.locations = {{"internal_regfile", "regfile.r2"}};
  campaign.num_experiments = 24;
  campaign.inject_max_instr = 400;
  return campaign;
}

CampaignData SwifiRuntimeCampaign(const std::string& name) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = SwifiSimTarget::kTargetName;
  campaign.technique = Technique::kSwifiRuntime;
  campaign.num_experiments = 8;
  campaign.workload = "fibonacci";
  campaign.locations = {{"memory.text", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 500;
  campaign.timeout_cycles = 100000;
  return campaign;
}

CampaignData SwifiPreRuntimeCampaign(const std::string& name) {
  CampaignData campaign = SwifiRuntimeCampaign(name);
  campaign.technique = Technique::kSwifiPreRuntime;
  campaign.workload = "cruise_pi";
  campaign.locations = {{"memory.data", ""}};
  campaign.num_experiments = 24;
  campaign.max_iterations = 40;
  return campaign;
}

std::shared_ptr<const LivenessAnalyzer> BuildTimeline(
    const CampaignData& campaign) {
  auto analyzer = LivenessAnalyzer::Build(
      campaign.workload, cpu::CpuConfig(),
      std::max<uint64_t>(200000, campaign.timeout_cycles),
      campaign.max_iterations);
  EXPECT_TRUE(analyzer.ok()) << analyzer.status().ToString();
  if (!analyzer.ok()) return nullptr;
  return std::shared_ptr<const LivenessAnalyzer>(std::move(analyzer).value());
}

/// Everything a run leaves behind that equivalence is asserted over.
struct RunResult {
  util::Status status;
  std::vector<CampaignStore::ExperimentRow> rows;  ///< insertion order
  FaultInjectionAlgorithms::Stats stats;
  EquivalenceStats dedup;
  std::string db_bytes;  ///< the Save() file, CRC trailer and all
};

/// One self-contained session: fresh database + store + registered target.
struct Session {
  db::Database db;
  CampaignStore store;

  explicit Session(const CampaignData& campaign) : store(&db) {
    if (campaign.target_name == ThorRdTarget::kTargetName) {
      testcard::SimTestCard card;
      EXPECT_TRUE(store
                      .PutTargetSystem(ThorRdTarget::DescribeTarget(
                          card, ThorRdTarget::kTargetName))
                      .ok());
    } else {
      EXPECT_TRUE(store.PutTargetSystem(SwifiSimTarget::Describe()).ok());
    }
    EXPECT_TRUE(store.PutCampaign(campaign).ok());
  }

  RunResult Snapshot(util::Status status,
                     const FaultInjectionAlgorithms::Stats& stats,
                     const EquivalenceStats& dedup,
                     const std::string& campaign_name) {
    RunResult result;
    result.status = std::move(status);
    result.stats = stats;
    result.dedup = dedup;
    auto rows = store.ExperimentsOf(campaign_name);
    if (rows.ok()) result.rows = std::move(rows).value();
    const std::string path =
        testing::TempDir() + "goofi_equivalence_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".db";
    EXPECT_TRUE(db.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    result.db_bytes = buf.str();
    std::remove(path.c_str());
    return result;
  }
};

/// Plain serial baseline (no checkpointing, no pruning, no classing).
RunResult RunCold(const CampaignData& campaign) {
  Session session(campaign);
  auto drive = [&](FaultInjectionAlgorithms& target) {
    util::Status status = target.RunCampaign(campaign.name);
    return session.Snapshot(std::move(status), target.stats(),
                            EquivalenceStats{}, campaign.name);
  };
  if (campaign.target_name == ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    ThorRdTarget target(&session.store, &card);
    return drive(target);
  }
  SwifiSimTarget target(&session.store);
  return drive(target);
}

/// The run-dedup stack: parallel runner with warm-start, pruning and
/// equivalence classing engaged, sharing a fault-free access timeline.
RunResult RunDeduped(const CampaignData& campaign, int workers,
                     int spot_check_every = 4) {
  Session session(campaign);
  const auto factory = campaign.target_name == ThorRdTarget::kTargetName
                           ? MakeSimThorFactory(&session.store)
                           : MakeSwifiSimFactory(&session.store);
  ParallelCampaignRunner runner(&session.store, factory, workers);
  runner.SetForceWarmStart(true);
  runner.SetConvergencePruning(true);
  runner.SetEquivalenceClassing(true);
  runner.SetSpotCheckEvery(spot_check_every);
  runner.SetEquivalenceTimeline(BuildTimeline(campaign));
  util::Status status = runner.Run(campaign.name);
  return session.Snapshot(std::move(status), runner.stats(),
                          runner.dedup_stats(), campaign.name);
}

void ExpectIdentical(const RunResult& cold, const RunResult& deduped) {
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ASSERT_TRUE(deduped.status.ok()) << deduped.status.ToString();
  ASSERT_EQ(cold.rows.size(), deduped.rows.size());
  for (size_t i = 0; i < cold.rows.size(); ++i) {
    EXPECT_EQ(cold.rows[i].experiment_name, deduped.rows[i].experiment_name)
        << "row " << i << " out of order";
    EXPECT_EQ(cold.rows[i].parent_experiment, deduped.rows[i].parent_experiment)
        << "row " << i;
    EXPECT_EQ(cold.rows[i].experiment_data, deduped.rows[i].experiment_data)
        << "row " << i;
    EXPECT_EQ(cold.rows[i].state.Serialize(), deduped.rows[i].state.Serialize())
        << "row " << i;
  }
  EXPECT_EQ(cold.stats, deduped.stats) << "deduped Stats must equal cold Stats";
  EXPECT_EQ(cold.db_bytes, deduped.db_bytes)
      << "database files must be byte-identical";
  EXPECT_EQ(deduped.dedup.spot_checks_run, deduped.dedup.spot_checks_passed);
}

FaultInstance TransientScanFault(const std::string& cell, uint32_t chain_bit,
                                 uint64_t instret) {
  FaultInstance fault;
  fault.chain = "internal_regfile";
  fault.chain_bit = chain_bit;
  fault.cell_name = cell;
  fault.inject_instr = instret;
  return fault;
}

FaultInstance TransientMemoryFault(uint32_t address, uint32_t bit,
                                   uint64_t instret) {
  FaultInstance fault;
  fault.address = address;
  fault.bit = bit;
  fault.inject_instr = instret;
  return fault;
}

// ---------------------------------------------------------------------------
// Classer semantics.
// ---------------------------------------------------------------------------

TEST(EquivalenceTest, PreRuntimeGroupsByAddressAndBitOnly) {
  EquivalenceClasser::Config config;
  config.technique = Technique::kSwifiPreRuntime;
  EquivalenceClasser classer(nullptr, config);
  // Identical (address, bit) at wildly different injection times: one class
  // (pre-runtime injection ignores the time entirely).
  classer.Add(0, {TransientMemoryFault(0x100, 3, 17)});
  classer.Add(1, {TransientMemoryFault(0x100, 3, 9999)});
  classer.Add(2, {TransientMemoryFault(0x100, 4, 17)});   // different bit
  classer.Add(3, {TransientMemoryFault(0x104, 3, 17)});   // different word
  ASSERT_EQ(classer.classes().size(), 3u);
  EXPECT_EQ(classer.class_of(0), classer.class_of(1));
  EXPECT_NE(classer.class_of(0), classer.class_of(2));
  EXPECT_NE(classer.class_of(0), classer.class_of(3));
  EXPECT_EQ(classer.multi_member_classes(), 1);
  EXPECT_FALSE(classer.classes()[classer.class_of(0)].suffix_filtered)
      << "pre-runtime member rows are verbatim copies, never suffixes";
}

TEST(EquivalenceTest, PastGoldenEndInjectionsShareOneClass) {
  EquivalenceClasser::Config config;
  config.technique = Technique::kSwifiRuntime;
  config.has_golden_end = true;
  config.golden_end_instret = 100;
  EquivalenceClasser classer(nullptr, config);
  // Both injections land past the fault-free run's end: never injected, pure
  // golden result, one class regardless of location.
  classer.Add(0, {TransientMemoryFault(0x100, 3, 101)});
  classer.Add(1, {TransientMemoryFault(0x2000, 30, 5000)});
  // Exactly at the end: the termination-vs-breakpoint order is a target
  // corner we refuse to reason about. Singleton.
  classer.Add(2, {TransientMemoryFault(0x100, 3, 100)});
  // Before the end with no timeline: no window reasoning. Singleton.
  classer.Add(3, {TransientMemoryFault(0x100, 3, 99)});
  ASSERT_EQ(classer.classes().size(), 3u);
  EXPECT_EQ(classer.class_of(0), classer.class_of(1));
  EXPECT_NE(classer.class_of(0), classer.class_of(2));
  EXPECT_NE(classer.class_of(2), classer.class_of(3));
}

TEST(EquivalenceTest, IneligibleModelsAndMultiFlipStaySingletons) {
  EquivalenceClasser::Config config;
  config.technique = Technique::kSwifiPreRuntime;
  config.fault_model = FaultModelKind::kIntermittentBitFlip;
  EquivalenceClasser intermittent(nullptr, config);
  intermittent.Add(0, {TransientMemoryFault(0x100, 3, 17)});
  intermittent.Add(1, {TransientMemoryFault(0x100, 3, 17)});
  EXPECT_EQ(intermittent.classes().size(), 2u);
  EXPECT_EQ(intermittent.multi_member_classes(), 0);

  config.fault_model = FaultModelKind::kPermanentStuckAt;
  EquivalenceClasser permanent(nullptr, config);
  permanent.Add(0, {TransientMemoryFault(0x100, 3, 17)});
  permanent.Add(1, {TransientMemoryFault(0x100, 3, 17)});
  EXPECT_EQ(permanent.classes().size(), 2u);

  config.fault_model = FaultModelKind::kTransientBitFlip;
  config.faults_per_experiment = 2;
  EquivalenceClasser multi(nullptr, config);
  multi.Add(0, {TransientMemoryFault(0x100, 3, 17)});
  multi.Add(1, {TransientMemoryFault(0x100, 3, 17)});
  EXPECT_EQ(multi.classes().size(), 2u);

  config.faults_per_experiment = 1;
  EquivalenceClasser lists(nullptr, config);
  lists.Add(0, {TransientMemoryFault(0x100, 3, 17),
                TransientMemoryFault(0x104, 3, 17)});
  lists.Add(1, {TransientMemoryFault(0x100, 3, 17),
                TransientMemoryFault(0x104, 3, 17)});
  EXPECT_EQ(lists.classes().size(), 2u)
      << "a two-fault list must never class even at faults_per_experiment=1";
}

TEST(EquivalenceTest, RepresentativeIsEarliestInjection) {
  EquivalenceClasser::Config config;
  config.technique = Technique::kSwifiRuntime;
  config.has_golden_end = true;
  config.golden_end_instret = 100;
  EquivalenceClasser classer(nullptr, config);
  classer.Add(7, {TransientMemoryFault(0, 0, 500)});
  classer.Add(8, {TransientMemoryFault(4, 1, 300)});
  classer.Add(9, {TransientMemoryFault(8, 2, 400)});
  ASSERT_EQ(classer.classes().size(), 1u);
  const EquivalenceClasser::Class& cls = classer.classes()[0];
  EXPECT_EQ(cls.members, (std::vector<int>{7, 8, 9}))
      << "members must stay in Add order (commit order)";
  EXPECT_EQ(cls.representative, 8)
      << "the earliest injection is the only member whose rows contain every "
         "other member's detail suffix";
}

TEST(EquivalenceTest, ScifiWindowsFollowTheAccessTimeline) {
  CampaignData campaign = ThorScifiCampaign("eq_windows");
  auto timeline = BuildTimeline(campaign);
  ASSERT_NE(timeline, nullptr);
  // Find a register with at least two distinct access windows inside the
  // injection range, then assert the classer groups exactly by window.
  int reg = -1;
  uint64_t t_same_a = 0, t_same_b = 0, t_other = 0;
  for (int candidate = 1; candidate < 32 && reg < 0; ++candidate) {
    t_same_a = t_same_b = t_other = 0;
    for (uint64_t t = 2; t <= 1000; ++t) {
      const size_t window = timeline->RegisterAccessWindow(candidate, t);
      const size_t previous = timeline->RegisterAccessWindow(candidate, t - 1);
      if (window == previous && t_same_b == 0) {
        t_same_a = t - 1;
        t_same_b = t;
      }
      if (t_same_b != 0 &&
          window != timeline->RegisterAccessWindow(candidate, t_same_b)) {
        t_other = t;
        reg = candidate;
        break;
      }
    }
  }
  ASSERT_GE(reg, 1) << "bubblesort must reuse some register within 1000 instr";
  ASSERT_GT(t_same_b, 0u);

  EquivalenceClasser::Config config;
  config.technique = Technique::kScifi;
  config.has_golden_end = true;
  config.golden_end_instret = timeline->trace_length();
  EquivalenceClasser classer(timeline.get(), config);
  const std::string cell = "regfile.r" + std::to_string(reg);
  classer.Add(0, {TransientScanFault(cell, 5, t_same_a)});
  classer.Add(1, {TransientScanFault(cell, 5, t_same_b)});
  classer.Add(2, {TransientScanFault(cell, 5, t_other)});
  classer.Add(3, {TransientScanFault(cell, 6, t_same_a)});  // other bit
  // Non-register cells have no exact access semantics: singleton.
  classer.Add(4, {TransientScanFault("pc", 1, t_same_a)});
  EXPECT_EQ(classer.class_of(0), classer.class_of(1))
      << "same cell, bit and access window must class together";
  EXPECT_NE(classer.class_of(0), classer.class_of(2))
      << "an access between the two injection times must split the class";
  EXPECT_NE(classer.class_of(0), classer.class_of(3));
  EXPECT_EQ(classer.classes()[classer.class_of(4)].members.size(), 1u);
}

TEST(EquivalenceTest, WindowAccessorsAreMonotonic) {
  auto timeline = BuildTimeline(ThorScifiCampaign("eq_monotonic"));
  ASSERT_NE(timeline, nullptr);
  for (int reg : {1, 2, 3, 15}) {
    size_t previous = timeline->RegisterAccessWindow(reg, 0);
    for (uint64_t t = 1; t <= 2000; ++t) {
      const size_t window = timeline->RegisterAccessWindow(reg, t);
      EXPECT_GE(window, previous) << "reg " << reg << " t " << t;
      previous = window;
    }
  }
}

TEST(EquivalenceTest, SynthesizedRowsAreTheRepresentativeSuffix) {
  CampaignData campaign = ThorScifiCampaign("eq_synth");
  std::vector<CampaignStore::ExperimentRow> rep;
  LoggedState main_state;
  main_state.halted = true;
  main_state.instret = 42;
  rep.push_back({"eq_synth/e000", "", "eq_synth", "rep-data", main_state});
  for (uint64_t instret : {10ull, 20ull, 30ull}) {
    LoggedState detail;
    detail.instret = instret;
    rep.push_back({"eq_synth/e000/d000000", "eq_synth/e000", "eq_synth",
                   "detail_step", detail});
  }
  const std::vector<FaultInstance> member = {TransientScanFault("regfile.r2", 5, 15)};
  const auto rows = SynthesizeMemberRows(rep, campaign, 3, member,
                                         /*suffix_filtered=*/true);
  // Injection at 15: detail rows at 20 and 30 survive (strictly past the
  // member's injection time), renumbered under the member's name.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].experiment_name, CampaignStore::ExperimentName("eq_synth", 3));
  EXPECT_EQ(rows[0].experiment_data,
            FaultInjectionAlgorithms::ExperimentData(campaign.technique, member));
  EXPECT_EQ(rows[0].state.Serialize(), main_state.Serialize());
  EXPECT_EQ(rows[1].experiment_name, rows[0].experiment_name + "/d000000");
  EXPECT_EQ(rows[1].parent_experiment, rows[0].experiment_name);
  EXPECT_EQ(rows[1].state.instret, 20u);
  EXPECT_EQ(rows[2].experiment_name, rows[0].experiment_name + "/d000001");
  EXPECT_EQ(rows[2].state.instret, 30u);

  // Injection exactly at a logged instret: that row belongs to the member's
  // fault-free prefix and must NOT be copied.
  const std::vector<FaultInstance> at_boundary = {
      TransientScanFault("regfile.r2", 5, 20)};
  EXPECT_EQ(SynthesizeMemberRows(rep, campaign, 4, at_boundary, true).size(), 2u);

  // Verbatim mode (pre-runtime): every detail row is copied.
  EXPECT_EQ(SynthesizeMemberRows(rep, campaign, 5, member, false).size(), 4u);
}

TEST(EquivalenceTest, LivenessCacheMemoizesPerWorkloadAndConfig) {
  LivenessCache cache;
  auto first = cache.Get("bubblesort", cpu::CpuConfig());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.Get("bubblesort", cpu::CpuConfig());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get())
      << "same workload + config must share one analyzer build";
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);

  auto other_workload = cache.Get("fibonacci", cpu::CpuConfig());
  ASSERT_TRUE(other_workload.ok());
  EXPECT_NE(other_workload.value().get(), first.value().get());

  cpu::CpuConfig other_config;
  other_config.icache_lines = 32;
  auto other = cache.Get("bubblesort", other_config);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.value().get(), first.value().get())
      << "a different CPU configuration is a different trace";
  EXPECT_EQ(cache.misses(), 3);
}

// ---------------------------------------------------------------------------
// Deduped == plain, end to end.
// ---------------------------------------------------------------------------

TEST(EquivalenceTest, ScifiSingleCellDedupMatchesColdAndSynthesizes) {
  const CampaignData campaign = ThorSingleCellCampaign("eq_scifi_cell");
  const RunResult cold = RunCold(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult deduped = RunDeduped(campaign, workers);
    EXPECT_GT(deduped.dedup.classes_formed, 0)
        << "24 flips into one register cell must collide in (bit, window)";
    EXPECT_GT(deduped.dedup.experiments_synthesized, 0);
    ExpectIdentical(cold, deduped);
  }
}

TEST(EquivalenceTest, ScifiBroadCampaignDedupMatchesCold) {
  const CampaignData campaign = ThorScifiCampaign("eq_scifi");
  ExpectIdentical(RunCold(campaign), RunDeduped(campaign, 2));
}

TEST(EquivalenceTest, ScifiDetailModeDedupMatchesCold) {
  // Detail mode is the hard case: synthesized members must reproduce the
  // representative's detail-row suffix exactly, renamed and renumbered.
  CampaignData campaign = ThorSingleCellCampaign("eq_detail");
  campaign.log_mode = LogMode::kDetail;
  campaign.num_experiments = 10;
  campaign.inject_max_instr = 200;
  const RunResult cold = RunCold(campaign);
  ASSERT_GT(cold.rows.size(), 10u) << "expected detail rows";
  for (int workers : {1, 2}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectIdentical(cold, RunDeduped(campaign, workers));
  }
}

TEST(EquivalenceTest, RuntimeSwifiDedupMatchesCold) {
  const CampaignData campaign = SwifiRuntimeCampaign("eq_swifi");
  const RunResult cold = RunCold(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectIdentical(cold, RunDeduped(campaign, workers));
  }
}

TEST(EquivalenceTest, RuntimeSwifiDataSectionDedupMatchesCold) {
  CampaignData campaign = SwifiRuntimeCampaign("eq_swifi_data");
  campaign.locations = {{"memory.data", ""}};
  campaign.num_experiments = 16;
  ExpectIdentical(RunCold(campaign), RunDeduped(campaign, 2));
}

TEST(EquivalenceTest, PreRuntimeSwifiDedupMatchesCold) {
  const CampaignData campaign = SwifiPreRuntimeCampaign("eq_swifi_pre");
  const RunResult cold = RunCold(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectIdentical(cold, RunDeduped(campaign, workers));
  }
}

TEST(EquivalenceTest, PastEndWindowCollapsesToOneClass) {
  // Injection window entirely past the golden end: every experiment is the
  // golden run, so exactly one executes and N-1 are synthesized.
  CampaignData campaign = SwifiRuntimeCampaign("eq_pastend");
  auto timeline = BuildTimeline(campaign);
  ASSERT_NE(timeline, nullptr);
  campaign.inject_min_instr = timeline->trace_length() + 100;
  campaign.inject_max_instr = timeline->trace_length() + 5000;
  const RunResult cold = RunCold(campaign);
  const RunResult deduped = RunDeduped(campaign, 2, /*spot_check_every=*/1);
  EXPECT_EQ(deduped.dedup.classes_formed, 1);
  EXPECT_EQ(deduped.dedup.experiments_synthesized, campaign.num_experiments - 1);
  EXPECT_GT(deduped.dedup.spot_checks_run, 0);
  ExpectIdentical(cold, deduped);
}

TEST(EquivalenceTest, InjectionAtGoldenEndStaysSingleton) {
  // The adversarial boundary: the breakpoint count equals the golden run's
  // final retirement count. Classify must refuse (conservative singleton)
  // and the results still match cold exactly.
  CampaignData campaign = SwifiRuntimeCampaign("eq_boundary");
  auto timeline = BuildTimeline(campaign);
  ASSERT_NE(timeline, nullptr);
  campaign.inject_min_instr = timeline->trace_length();
  campaign.inject_max_instr = timeline->trace_length();
  campaign.num_experiments = 4;
  const RunResult cold = RunCold(campaign);
  const RunResult deduped = RunDeduped(campaign, 2);
  EXPECT_EQ(deduped.dedup.experiments_synthesized, 0)
      << "t == golden end must never class";
  ExpectIdentical(cold, deduped);
}

TEST(EquivalenceTest, IntermittentAndPermanentNeverSynthesize) {
  for (FaultModelKind model : {FaultModelKind::kIntermittentBitFlip,
                               FaultModelKind::kPermanentStuckAt}) {
    CampaignData campaign = ThorSingleCellCampaign(
        model == FaultModelKind::kIntermittentBitFlip ? "eq_int" : "eq_perm");
    campaign.fault_model = model;
    campaign.num_experiments = 6;
    SCOPED_TRACE(FaultModelName(model));
    const RunResult cold = RunCold(campaign);
    const RunResult deduped = RunDeduped(campaign, 2);
    EXPECT_EQ(deduped.dedup.experiments_synthesized, 0);
    EXPECT_EQ(deduped.dedup.classes_formed, 0);
    ExpectIdentical(cold, deduped);
  }
}

TEST(EquivalenceTest, MultiFlipCampaignNeverSynthesizes) {
  CampaignData campaign = ThorSingleCellCampaign("eq_multi");
  campaign.faults_per_experiment = 2;
  campaign.num_experiments = 6;
  const RunResult cold = RunCold(campaign);
  const RunResult deduped = RunDeduped(campaign, 2);
  EXPECT_EQ(deduped.dedup.experiments_synthesized, 0);
  ExpectIdentical(cold, deduped);
}

TEST(EquivalenceTest, DedupWithoutTimelineStillMatchesCold) {
  // No access timeline: only past-end and pre-runtime classes can form; the
  // run must degrade gracefully, never fail.
  const CampaignData campaign = ThorSingleCellCampaign("eq_notimeline");
  Session session(campaign);
  ParallelCampaignRunner runner(&session.store,
                                MakeSimThorFactory(&session.store), 2);
  runner.SetForceWarmStart(true);
  runner.SetConvergencePruning(true);
  runner.SetEquivalenceClassing(true);
  util::Status status = runner.Run(campaign.name);
  const RunResult deduped = session.Snapshot(std::move(status), runner.stats(),
                                             runner.dedup_stats(), campaign.name);
  ExpectIdentical(RunCold(campaign), deduped);
}

// ---------------------------------------------------------------------------
// Fuzz tests (run under ASan by scripts/tier1.sh --gtest_filter=*Fuzz*).
// ---------------------------------------------------------------------------

struct Xorshift {
  uint64_t state;
  explicit Xorshift(uint64_t seed) : state(seed | 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

TEST(EquivalenceFuzzTest, RandomCampaignsSpotCheckEveryClassAndMatchCold) {
  // Randomized campaigns with spot_check_every=1: every multi-member class
  // re-executes one synthesized member and verifies blob equality, so any
  // window-semantics bug shows up as a hard Internal error (or a DB
  // mismatch) rather than silently wrong synthesized rows.
  const struct {
    const char* workload;
    Technique technique;
    const char* chain;
    const char* prefix;
  } kSpace[] = {
      {"bubblesort", Technique::kScifi, "internal_regfile", "regfile.r2"},
      {"pendulum_pd", Technique::kScifi, "internal_regfile", ""},
      {"fibonacci", Technique::kSwifiRuntime, "memory.text", ""},
      {"cruise_pi", Technique::kSwifiPreRuntime, "memory.data", ""},
  };
  Xorshift rng(0x600F1);
  for (int round = 0; round < 4; ++round) {
    const auto& pick = kSpace[round % 4];
    CampaignData campaign;
    campaign.name = "eq_fuzz_" + std::to_string(round);
    campaign.technique = pick.technique;
    campaign.target_name = pick.technique == Technique::kScifi
                               ? ThorRdTarget::kTargetName
                               : SwifiSimTarget::kTargetName;
    campaign.workload = pick.workload;
    campaign.locations = {{pick.chain, pick.prefix}};
    campaign.num_experiments = 6 + static_cast<int>(rng.Next() % 12);
    campaign.inject_min_instr = 1 + rng.Next() % 50;
    campaign.inject_max_instr =
        campaign.inject_min_instr + 50 + rng.Next() % 500;
    campaign.seed = rng.Next();
    campaign.timeout_cycles = 100000;
    campaign.max_iterations = 40;
    SCOPED_TRACE(campaign.name + " workload=" + campaign.workload);
    const RunResult cold = RunCold(campaign);
    const int workers = 1 + static_cast<int>(rng.Next() % 4);
    const RunResult deduped =
        RunDeduped(campaign, workers, /*spot_check_every=*/1);
    EXPECT_EQ(deduped.dedup.spot_checks_run, deduped.dedup.spot_checks_passed)
        << "every spot check must reproduce the synthesized blob exactly";
    ExpectIdentical(cold, deduped);
  }
}

}  // namespace
}  // namespace goofi::core
