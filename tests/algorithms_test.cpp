// End-to-end tests for the fault-injection algorithms (paper Fig. 2) driving
// the simulated Thor RD target.
#include <gtest/gtest.h>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::core {
namespace {

class AlgorithmsTest : public ::testing::Test {
 protected:
  AlgorithmsTest() : store_(&db_), target_(&store_, &card_) {
    EXPECT_TRUE(store_
                    .PutTargetSystem(ThorRdTarget::DescribeTarget(
                        card_, ThorRdTarget::kTargetName))
                    .ok());
  }

  CampaignData BaseCampaign(const std::string& name) {
    CampaignData campaign;
    campaign.name = name;
    campaign.target_name = ThorRdTarget::kTargetName;
    campaign.technique = Technique::kScifi;
    campaign.fault_model = FaultModelKind::kTransientBitFlip;
    campaign.num_experiments = 20;
    campaign.workload = "bubblesort";
    campaign.locations = {{"internal_regfile", ""}};
    campaign.inject_min_instr = 1;
    campaign.inject_max_instr = 1000;
    campaign.timeout_cycles = 100000;
    return campaign;
  }

  /// Non-detail experiment rows of a campaign, excluding the reference.
  std::vector<CampaignStore::ExperimentRow> MainRows(const std::string& name) {
    std::vector<CampaignStore::ExperimentRow> out;
    auto rows = store_.ExperimentsOf(name).ValueOrDie();
    for (auto& row : rows) {
      if (!row.parent_experiment.empty()) continue;
      if (row.experiment_name == CampaignStore::ReferenceName(name)) continue;
      out.push_back(std::move(row));
    }
    return out;
  }

  db::Database db_;
  CampaignStore store_;
  testcard::SimTestCard card_;
  ThorRdTarget target_;
};

TEST_F(AlgorithmsTest, ScifiCampaignLogsReferencePlusExperiments) {
  ASSERT_TRUE(store_.PutCampaign(BaseCampaign("c")).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("c").ok());
  EXPECT_TRUE(store_.GetExperiment("c/ref").ok());
  EXPECT_EQ(MainRows("c").size(), 20u);
  EXPECT_EQ(target_.stats().experiments_run, 20);
}

TEST_F(AlgorithmsTest, ReferenceRunIsFaultFreeAndHalts) {
  ASSERT_TRUE(store_.PutCampaign(BaseCampaign("c")).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("c").ok());
  const auto reference = store_.GetExperiment("c/ref").ValueOrDie();
  EXPECT_TRUE(reference.state.halted);
  EXPECT_FALSE(reference.state.detected);
  ASSERT_EQ(reference.state.outputs.size(), 1u);
  EXPECT_EQ(reference.state.outputs[0], 1881u) << "bubblesort checksum";
  EXPECT_NE(reference.experiment_data.find("faults="), std::string::npos);
}

TEST_F(AlgorithmsTest, CampaignIsDeterministicForFixedSeed) {
  CampaignData a = BaseCampaign("a");
  CampaignData b = BaseCampaign("b");
  b.name = "b";
  ASSERT_TRUE(store_.PutCampaign(a).ok());
  ASSERT_TRUE(store_.PutCampaign(b).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("a").ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("b").ok());
  const auto rows_a = MainRows("a");
  const auto rows_b = MainRows("b");
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].experiment_data, rows_b[i].experiment_data);
    EXPECT_EQ(rows_a[i].state.Serialize(), rows_b[i].state.Serialize());
  }
}

TEST_F(AlgorithmsTest, DifferentSeedsGiveDifferentFaultLists) {
  CampaignData a = BaseCampaign("a");
  CampaignData b = BaseCampaign("b");
  b.seed = a.seed + 1;
  ASSERT_TRUE(store_.PutCampaign(a).ok());
  ASSERT_TRUE(store_.PutCampaign(b).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("a").ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("b").ok());
  const auto rows_a = MainRows("a");
  const auto rows_b = MainRows("b");
  int differing = 0;
  for (size_t i = 0; i < rows_a.size(); ++i) {
    if (rows_a[i].experiment_data != rows_b[i].experiment_data) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST_F(AlgorithmsTest, ExperimentDataRecordsRequestedFaultCount) {
  CampaignData campaign = BaseCampaign("multi");
  campaign.faults_per_experiment = 3;
  campaign.num_experiments = 5;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("multi").ok());
  for (const auto& row : MainRows("multi")) {
    const std::string& data = row.experiment_data;
    const size_t faults = std::count(data.begin(), data.end(), '|') + 1;
    EXPECT_EQ(faults, 3u) << data;
  }
}

TEST_F(AlgorithmsTest, ProgressMonitorCanStopCampaign) {
  CampaignData campaign = BaseCampaign("stopped");
  campaign.num_experiments = 50;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  CountingMonitor monitor(/*limit=*/7);
  target_.SetProgressMonitor(&monitor);
  ASSERT_TRUE(target_.FaultInjectorScifi("stopped").ok());
  target_.SetProgressMonitor(nullptr);
  EXPECT_EQ(monitor.calls(), 7);
  EXPECT_EQ(MainRows("stopped").size(), 7u);
  EXPECT_EQ(monitor.last_total(), 50);
}

TEST_F(AlgorithmsTest, RunCampaignDispatchesOnStoredTechnique) {
  CampaignData campaign = BaseCampaign("swifi");
  campaign.technique = Technique::kSwifiPreRuntime;
  campaign.locations = {{"memory.text", ""}};
  campaign.num_experiments = 10;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.RunCampaign("swifi").ok());
  EXPECT_EQ(MainRows("swifi").size(), 10u);
}

TEST_F(AlgorithmsTest, SwifiPreRuntimeRejectsScanLocations) {
  CampaignData campaign = BaseCampaign("bad");
  campaign.technique = Technique::kSwifiPreRuntime;
  campaign.locations = {{"internal_regfile", ""}};
  campaign.num_experiments = 3;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  EXPECT_FALSE(target_.FaultInjectorSwifiPreRuntime("bad").ok());
}

TEST_F(AlgorithmsTest, SwifiRuntimeInjectsMemoryFaultsAtBreakpoint) {
  CampaignData campaign = BaseCampaign("rt");
  campaign.technique = Technique::kSwifiRuntime;
  campaign.locations = {{"memory.data", ""}};
  campaign.num_experiments = 25;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorSwifiRuntime("rt").ok());
  const auto report = AnalyzeCampaign(store_, "rt").ValueOrDie();
  EXPECT_EQ(report.total, 25);
  // Data faults on a sort workload: a decent share must be effective.
  EXPECT_GT(report.Count(Outcome::kEscaped) + report.Count(Outcome::kDetected) +
                report.Count(Outcome::kLatent),
            0);
}

TEST_F(AlgorithmsTest, UnknownCampaignFails) {
  EXPECT_FALSE(target_.FaultInjectorScifi("ghost").ok());
  EXPECT_FALSE(target_.RunCampaign("ghost").ok());
}

TEST_F(AlgorithmsTest, UnknownLocationSelectorFails) {
  CampaignData campaign = BaseCampaign("badloc");
  campaign.locations = {{"no_such_chain", ""}};
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  EXPECT_FALSE(target_.FaultInjectorScifi("badloc").ok());
}

TEST_F(AlgorithmsTest, UnknownWorkloadFails) {
  CampaignData campaign = BaseCampaign("badwl");
  campaign.workload = "no_such_workload";
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  EXPECT_FALSE(target_.FaultInjectorScifi("badwl").ok());
}

TEST_F(AlgorithmsTest, CellPrefixNarrowsFaultSpace) {
  CampaignData campaign = BaseCampaign("narrow");
  campaign.locations = {{"internal_regfile", "regfile.r3"}};
  campaign.num_experiments = 10;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("narrow").ok());
  for (const auto& row : MainRows("narrow")) {
    EXPECT_NE(row.experiment_data.find("regfile.r3"), std::string::npos)
        << row.experiment_data;
  }
}

TEST_F(AlgorithmsTest, LivenessFilterSkipsDeadDraws) {
  auto analyzer =
      LivenessAnalyzer::Build("bubblesort", cpu::CpuConfig()).ValueOrDie();
  CampaignData campaign = BaseCampaign("live");
  campaign.num_experiments = 30;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  target_.SetLivenessFilter(analyzer->MakeFilter());
  ASSERT_TRUE(target_.FaultInjectorScifi("live").ok());
  target_.SetLivenessFilter(nullptr);
  EXPECT_GT(target_.stats().injections_skipped_dead, 0);

  // With the filter, the overwritten fraction should be low.
  const auto report = AnalyzeCampaign(store_, "live").ValueOrDie();
  EXPECT_LT(report.Count(Outcome::kOverwritten), report.total / 2);
}

TEST_F(AlgorithmsTest, RejectingFilterFailsGracefully) {
  CampaignData campaign = BaseCampaign("allfiltered");
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  target_.SetLivenessFilter([](const FaultCandidate&, uint64_t) { return false; });
  EXPECT_FALSE(target_.FaultInjectorScifi("allfiltered").ok());
  target_.SetLivenessFilter(nullptr);
}

TEST_F(AlgorithmsTest, RerunDetailedLogsPerInstructionRows) {
  CampaignData campaign = BaseCampaign("det");
  campaign.num_experiments = 5;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("det").ok());
  ASSERT_TRUE(target_.RerunDetailed("det/e0000").ok());

  const auto rerun = store_.GetExperiment("det/e0000/detail").ValueOrDie();
  EXPECT_EQ(rerun.parent_experiment, "det/e0000");

  int detail_rows = 0;
  for (const auto& row : store_.ExperimentsOf("det").ValueOrDie()) {
    if (row.parent_experiment == "det/e0000/detail") {
      ++detail_rows;
      EXPECT_TRUE(row.state.scan_images.contains("internal_core"));
    }
  }
  EXPECT_GT(detail_rows, 0);
}

TEST_F(AlgorithmsTest, RerunDetailedReproducesOutcome) {
  CampaignData campaign = BaseCampaign("repro");
  campaign.num_experiments = 15;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("repro").ok());
  for (const auto& row : MainRows("repro")) {
    ASSERT_TRUE(target_.RerunDetailed(row.experiment_name).ok());
    const auto rerun =
        store_.GetExperiment(row.experiment_name + "/detail").ValueOrDie();
    EXPECT_EQ(rerun.state.detected, row.state.detected) << row.experiment_name;
    EXPECT_EQ(rerun.state.edm, row.state.edm) << row.experiment_name;
    EXPECT_EQ(rerun.state.outputs, row.state.outputs) << row.experiment_name;
  }
}

// --- fault models ---------------------------------------------------------------

TEST_F(AlgorithmsTest, IntermittentModelRunsToCompletion) {
  CampaignData campaign = BaseCampaign("interm");
  campaign.fault_model = FaultModelKind::kIntermittentBitFlip;
  campaign.burst_length = 4;
  campaign.burst_spacing = 30;
  campaign.num_experiments = 15;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("interm").ok());
  EXPECT_EQ(MainRows("interm").size(), 15u);
}

TEST_F(AlgorithmsTest, PermanentModelIsAtLeastAsEffectiveAsTransient) {
  CampaignData transient = BaseCampaign("trans");
  transient.num_experiments = 60;
  CampaignData permanent = BaseCampaign("perm");
  permanent.name = "perm";
  permanent.num_experiments = 60;
  permanent.fault_model = FaultModelKind::kPermanentStuckAt;
  permanent.burst_spacing = 25;
  ASSERT_TRUE(store_.PutCampaign(transient).ok());
  ASSERT_TRUE(store_.PutCampaign(permanent).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("trans").ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("perm").ok());
  const auto report_t = AnalyzeCampaign(store_, "trans").ValueOrDie();
  const auto report_p = AnalyzeCampaign(store_, "perm").ValueOrDie();
  // A stuck-at fault that is re-imposed cannot be less effective than a
  // single flip of the same population (statistically, with 60 samples the
  // ordering is stable for this workload).
  EXPECT_GE(report_p.EffectivenessRatio() + 0.15, report_t.EffectivenessRatio());
}

// --- control workload campaigns ---------------------------------------------------

TEST_F(AlgorithmsTest, ControlWorkloadCampaignServicesEnvironment) {
  CampaignData campaign = BaseCampaign("ctrl");
  campaign.workload = "pendulum_pd";
  campaign.num_experiments = 10;
  campaign.max_iterations = 100;
  campaign.inject_min_instr = 10;
  campaign.inject_max_instr = 1500;
  campaign.timeout_cycles = 400000;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("ctrl").ok());
  const auto reference = store_.GetExperiment("ctrl/ref").ValueOrDie();
  EXPECT_EQ(reference.state.iterations, 100);
  EXPECT_FALSE(reference.state.env_failed);
  EXPECT_FALSE(reference.state.halted) << "infinite-loop workload never halts";
  ASSERT_EQ(reference.state.outputs.size(), 1u) << "actuator-trace checksum";
  EXPECT_NE(reference.state.outputs[0], 0u);
}

}  // namespace
}  // namespace goofi::core
