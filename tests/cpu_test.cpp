// Tests for the TRD32 CPU simulator: execution semantics, error-detection
// mechanisms, caches and the state-element registry.
#include <gtest/gtest.h>

#include "cpu/cpu.hpp"
#include "isa/assembler.hpp"

namespace goofi::cpu {
namespace {

/// Assembles and loads a program, returning a ready-to-run CPU.
std::unique_ptr<Cpu> Boot(const std::string& source,
                          const CpuConfig& config = CpuConfig()) {
  auto program = isa::Assemble(source).ValueOrDie();
  auto cpu = std::make_unique<Cpu>(config);
  uint32_t text_bytes = 0;
  const auto etext = program.symbols.find("_etext");
  if (etext != program.symbols.end()) {
    text_bytes = etext->second - program.base_address;
  }
  EXPECT_TRUE(cpu->LoadProgram(program.base_address, program.words, text_bytes).ok());
  cpu->Reset(program.entry);
  return cpu;
}

TEST(CpuTest, ArithmeticBasics) {
  auto cpu = Boot(
      "addi r1, r0, 20\n"
      "addi r2, r0, 22\n"
      "add r3, r1, r2\n"
      "sub r4, r1, r2\n"
      "mul r5, r1, r2\n"
      "div r6, r2, r1\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(3), 42u);
  EXPECT_EQ(static_cast<int32_t>(cpu->reg(4)), -2);
  EXPECT_EQ(cpu->reg(5), 440u);
  EXPECT_EQ(cpu->reg(6), 1u);
}

TEST(CpuTest, LogicAndShifts) {
  auto cpu = Boot(
      "addi r1, r0, 0xF0\n"
      "addi r2, r0, 0x0F\n"
      "and r3, r1, r2\n"
      "or r4, r1, r2\n"
      "xor r5, r1, r1\n"
      "addi r6, r0, 4\n"
      "sll r7, r2, r6\n"
      "srl r8, r1, r6\n"
      "addi r9, r0, -16\n"
      "sra r10, r9, r6\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(3), 0u);
  EXPECT_EQ(cpu->reg(4), 0xFFu);
  EXPECT_EQ(cpu->reg(5), 0u);
  EXPECT_EQ(cpu->reg(7), 0xF0u);
  EXPECT_EQ(cpu->reg(8), 0x0Fu);
  EXPECT_EQ(static_cast<int32_t>(cpu->reg(10)), -1);
}

TEST(CpuTest, ComparisonsAndBranches) {
  auto cpu = Boot(
      "addi r1, r0, -1\n"
      "addi r2, r0, 1\n"
      "slt r3, r1, r2\n"   // signed: -1 < 1 -> 1
      "sltu r4, r1, r2\n"  // unsigned: 0xFFFFFFFF < 1 -> 0
      "blt r1, r2, taken\n"
      "addi r5, r0, 99\n"  // skipped
      "taken:\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(3), 1u);
  EXPECT_EQ(cpu->reg(4), 0u);
  EXPECT_EQ(cpu->reg(5), 0u);
}

TEST(CpuTest, R0IsHardwiredZero) {
  auto cpu = Boot(
      "addi r0, r0, 77\n"
      "add r1, r0, r0\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(0), 0u);
  EXPECT_EQ(cpu->reg(1), 0u);
}

TEST(CpuTest, LoadStoreRoundTrip) {
  auto cpu = Boot(
      "_start:\n"
      "  li r1, buffer\n"
      "  addi r2, r0, 1234\n"
      "  stw r2, [r1]\n"
      "  ldw r3, [r1]\n"
      "  halt\n"
      "_etext:\n"
      "buffer:\n"
      "  .word 0\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(3), 1234u);
}

TEST(CpuTest, CallReturnViaLinkRegister) {
  auto cpu = Boot(
      "_start:\n"
      "  call fn\n"
      "  addi r2, r0, 2\n"
      "  halt\n"
      "fn:\n"
      "  addi r1, r0, 1\n"
      "  ret\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(1), 1u);
  EXPECT_EQ(cpu->reg(2), 2u);
}

// --- EDMs --------------------------------------------------------------------

TEST(CpuTest, ArithmeticOverflowDetected) {
  auto cpu = Boot(
      "li r1, 0x7FFFFFFF\n"
      "addi r2, r0, 1\n"
      "add r3, r1, r2\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kArithmeticOverflow);
}

TEST(CpuTest, OverflowDisabledWrapsSilently) {
  CpuConfig config;
  config.edms.arithmetic_overflow = false;
  auto cpu = Boot(
      "li r1, 0x7FFFFFFF\n"
      "addi r2, r0, 1\n"
      "add r3, r1, r2\n"
      "halt\n",
      config);
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(3), 0x80000000u);
}

TEST(CpuTest, DivideByZeroDetected) {
  auto cpu = Boot(
      "addi r1, r0, 1\n"
      "div r2, r1, r0\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kArithmeticOverflow);
}

TEST(CpuTest, MisalignedLoadDetected) {
  auto cpu = Boot(
      "addi r1, r0, 2\n"
      "ldw r2, [r1]\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kMisalignedAccess);
}

TEST(CpuTest, OutOfRangeStoreDetected) {
  CpuConfig config;
  config.memory_bytes = 1 << 16;
  auto cpu = Boot(
      "li r1, 0x100000\n"
      "stw r1, [r1]\n"
      "halt\n",
      config);
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kOutOfRangeAccess);
}

TEST(CpuTest, StoreToTextSegmentDetected) {
  auto cpu = Boot(
      "_start:\n"
      "  addi r1, r0, 0\n"
      "  stw r1, [r1]\n"  // address 0 = first text word
      "  halt\n"
      "_etext:\n"
      ".word 0\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kMemoryProtection);
}

TEST(CpuTest, DataSegmentIsWritable) {
  auto cpu = Boot(
      "_start:\n"
      "  li r1, scratch\n"
      "  stw r1, [r1]\n"
      "  halt\n"
      "_etext:\n"
      "scratch:\n"
      "  .word 0\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
}

TEST(CpuTest, IllegalOpcodeDetected) {
  auto cpu = Boot("halt\n");
  // Corrupt the prefetched instruction to an undefined opcode via scan-style
  // poke into IR.
  auto registry = cpu->BuildStateRegistry();
  const int ir = registry.Find("core.ir");
  ASSERT_GE(ir, 0);
  registry.elements()[static_cast<size_t>(ir)].set(0x3Fu << 26);
  EXPECT_EQ(cpu->Step(), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kIllegalOpcode);
}

TEST(CpuTest, IllegalOpcodeDisabledExecutesAsNop) {
  CpuConfig config;
  config.edms.illegal_opcode = false;
  auto cpu = Boot(
      "addi r1, r0, 5\n"
      "halt\n",
      config);
  auto registry = cpu->BuildStateRegistry();
  registry.elements()[static_cast<size_t>(registry.Find("core.ir"))].set(0x3Fu << 26);
  EXPECT_EQ(cpu->Step(), StepOutcome::kOk);  // NOP'd
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(1), 0u) << "the corrupted addi never executed";
}

TEST(CpuTest, ControlFlowErrorOnWildJump) {
  auto cpu = Boot(
      "_start:\n"
      "  li r1, 0x8000\n"
      "  jr r1\n"
      "  halt\n"
      "_etext:\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kControlFlowError);
}

TEST(CpuTest, WatchdogFiresWithoutKick) {
  CpuConfig config;
  config.watchdog_limit = 100;
  auto cpu = Boot(
      "loop:\n"
      "  jmp loop\n",
      config);
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kWatchdogTimeout);
}

TEST(CpuTest, WatchdogKickedByTrapZero) {
  CpuConfig config;
  config.watchdog_limit = 50;
  auto cpu = Boot(
      "loop:\n"
      "  trap 0\n"
      "  jmp loop\n",
      config);
  EXPECT_EQ(cpu->Run(2000), StepOutcome::kOk) << "still running after budget";
  EXPECT_FALSE(cpu->detected());
}

TEST(CpuTest, TrapRaisesSoftwareAssertion) {
  auto cpu = Boot("trap 9\nhalt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kSoftwareAssertion);
  EXPECT_EQ(cpu->edm_event().code, 9);
}

TEST(CpuTest, StackOverflowDetected) {
  CpuConfig config;
  config.stack_limit = (1u << 20) - 64;
  auto cpu = Boot(
      "loop:\n"
      "  push r1\n"
      "  jmp loop\n",
      config);
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kStackOverflow);
}

TEST(CpuTest, FirstDetectionWins) {
  auto cpu = Boot("trap 1\ntrap 2\nhalt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().code, 1);
  // Stepping a detected CPU does not advance.
  const uint64_t instret = cpu->instructions_retired();
  EXPECT_EQ(cpu->Step(), StepOutcome::kDetected);
  EXPECT_EQ(cpu->instructions_retired(), instret);
}

// --- caches ---------------------------------------------------------------------

TEST(CpuTest, InstructionCacheHitsOnLoop) {
  auto cpu = Boot(
      "addi r1, r0, 100\n"
      "loop:\n"
      "  addi r1, r1, -1\n"
      "  bne r1, r0, loop\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_GT(cpu->icache().hits(), cpu->icache().misses());
}

TEST(CpuTest, DataCacheParityFaultDetectedOnNextRead) {
  auto cpu = Boot(
      "_start:\n"
      "  li r1, buffer\n"
      "  ldw r2, [r1]\n"   // fill dcache line
      "  ldw r3, [r1]\n"   // will hit the corrupted line
      "  halt\n"
      "_etext:\n"
      "buffer:\n"
      "  .word 0x1234\n");
  // Execute li (2 instructions) + first ldw.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(cpu->Step(), StepOutcome::kOk);
  }
  // Flip a data bit in every valid dcache line (scan-chain style).
  ParityCache& dcache = cpu->dcache();
  bool flipped = false;
  for (uint32_t line = 0; line < dcache.num_lines(); ++line) {
    if (dcache.line_valid(line)) {
      dcache.set_line_data(line, dcache.line_data(line) ^ 1u);
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
  EXPECT_EQ(cpu->edm_event().type, EdmType::kCacheParityData);
}

TEST(CpuTest, ParityFaultInParityBitAlsoDetected) {
  auto cpu = Boot(
      "_start:\n"
      "  li r1, buffer\n"
      "  ldw r2, [r1]\n"
      "  ldw r3, [r1]\n"
      "  halt\n"
      "_etext:\n"
      "buffer:\n"
      "  .word 7\n");
  for (int i = 0; i < 3; ++i) ASSERT_EQ(cpu->Step(), StepOutcome::kOk);
  ParityCache& dcache = cpu->dcache();
  for (uint32_t line = 0; line < dcache.num_lines(); ++line) {
    if (dcache.line_valid(line)) {
      dcache.set_line_parity(line, !dcache.line_parity(line));
    }
  }
  EXPECT_EQ(cpu->Run(0), StepOutcome::kDetected);
}

TEST(CpuTest, CacheParityDisabledConsumesCorruptData) {
  CpuConfig config;
  config.edms.cache_parity = false;
  auto cpu = Boot(
      "_start:\n"
      "  li r1, buffer\n"
      "  ldw r2, [r1]\n"
      "  ldw r3, [r1]\n"
      "  halt\n"
      "_etext:\n"
      "buffer:\n"
      "  .word 0x10\n",
      config);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(cpu->Step(), StepOutcome::kOk);
  ParityCache& dcache = cpu->dcache();
  for (uint32_t line = 0; line < dcache.num_lines(); ++line) {
    if (dcache.line_valid(line)) {
      dcache.set_line_data(line, dcache.line_data(line) ^ 2u);
    }
  }
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(3), 0x12u) << "corrupted value used silently";
}

TEST(CpuTest, WriteThroughKeepsMemoryAuthoritative) {
  auto cpu = Boot(
      "_start:\n"
      "  li r1, buffer\n"
      "  ldw r2, [r1]\n"
      "  addi r2, r2, 1\n"
      "  stw r2, [r1]\n"
      "  halt\n"
      "_etext:\n"
      "buffer:\n"
      "  .word 41\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  const auto program = isa::Assemble("").ValueOrDie();
  (void)program;
  // Find buffer address: it is the word after _etext.
  auto value = cpu->memory().HostRead(cpu->text_end());
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42u);
}

// --- prefetch / IR fault semantics -------------------------------------------

TEST(CpuTest, FlippingIrCorruptsNextInstruction) {
  auto cpu = Boot(
      "addi r1, r0, 1\n"
      "addi r2, r0, 2\n"
      "halt\n");
  ASSERT_EQ(cpu->Step(), StepOutcome::kOk);  // executed first addi
  // IR now holds "addi r2, r0, 2". Flip the destination-register field so it
  // becomes a different register (bit 22 flips rd 2 -> 3).
  auto registry = cpu->BuildStateRegistry();
  auto& ir = registry.elements()[static_cast<size_t>(registry.Find("core.ir"))];
  ir.set(ir.get() ^ (1ull << 22));
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(2), 0u);
  EXPECT_EQ(cpu->reg(3), 2u) << "corrupted rd field redirected the write";
}

// --- state registry -------------------------------------------------------------

TEST(CpuTest, StateRegistryExposesExpectedGroups) {
  Cpu cpu;
  auto registry = cpu.BuildStateRegistry();
  const auto groups = registry.Groups();
  EXPECT_NE(std::find(groups.begin(), groups.end(), "regfile"), groups.end());
  EXPECT_NE(std::find(groups.begin(), groups.end(), "core"), groups.end());
  EXPECT_NE(std::find(groups.begin(), groups.end(), "pipeline"), groups.end());
  EXPECT_NE(std::find(groups.begin(), groups.end(), "icache"), groups.end());
  EXPECT_NE(std::find(groups.begin(), groups.end(), "dcache"), groups.end());
  // Default config: 64 icache + 64 dcache lines, 4 elements each, plus the
  // core/pipeline/regfile elements.
  EXPECT_GT(registry.size(), 512u);
  EXPECT_GT(registry.TotalBits(), 4000u) << "Thor-class state element count";
}

TEST(CpuTest, StateRegistryReadWriteRoundTrip) {
  Cpu cpu;
  cpu.Reset(0);
  auto registry = cpu.BuildStateRegistry();
  const int r5 = registry.Find("regfile.r5");
  ASSERT_GE(r5, 0);
  registry.elements()[static_cast<size_t>(r5)].set(0xABCD);
  EXPECT_EQ(cpu.reg(5), 0xABCDu);
  EXPECT_EQ(registry.elements()[static_cast<size_t>(r5)].get(), 0xABCDu);
}

TEST(CpuTest, ReadOnlyElementsHaveNoSetter) {
  Cpu cpu;
  auto registry = cpu.BuildStateRegistry();
  for (const StateElement& element : registry.elements()) {
    if (element.read_only) {
      EXPECT_EQ(element.set, nullptr) << element.name;
    } else {
      EXPECT_NE(element.set, nullptr) << element.name;
    }
  }
  // r0 is read-only; cycles and instret are read-only.
  EXPECT_TRUE(registry.elements()[static_cast<size_t>(registry.Find("regfile.r0"))]
                  .read_only);
  EXPECT_TRUE(registry.elements()[static_cast<size_t>(registry.Find("core.cycles"))]
                  .read_only);
}

TEST(CpuTest, CycleAccountingChargesMissPenalty) {
  CpuConfig config;
  config.cache_miss_penalty = 10;
  auto cpu = Boot("nop\nhalt\n", config);
  ASSERT_EQ(cpu->Run(0), StepOutcome::kHalted);
  // Two instructions, each base 1 cycle, at least one icache miss.
  EXPECT_GE(cpu->cycles(), 2u + 10u);
}

TEST(CpuTest, ResetRestoresCleanState) {
  auto cpu = Boot(
      "addi r1, r0, 7\n"
      "halt\n");
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted);
  EXPECT_EQ(cpu->reg(1), 7u);
  cpu->Reset(0);
  EXPECT_EQ(cpu->reg(1), 0u);
  EXPECT_FALSE(cpu->halted());
  EXPECT_EQ(cpu->cycles(), 0u);
  EXPECT_EQ(cpu->Run(0), StepOutcome::kHalted) << "program still in memory";
  EXPECT_EQ(cpu->reg(1), 7u);
}

TEST(CpuTest, RunHonorsCycleBudget) {
  auto cpu = Boot(
      "loop:\n"
      "  jmp loop\n");
  EXPECT_EQ(cpu->Run(1000), StepOutcome::kOk);
  EXPECT_GE(cpu->cycles(), 1000u);
  EXPECT_FALSE(cpu->halted());
}

}  // namespace
}  // namespace goofi::cpu
