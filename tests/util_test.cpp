// Unit tests for goofi::util — status/result, RNG, bit vectors, strings,
// CRC32, logging.
#include <gtest/gtest.h>

#include <set>

#include "util/bitvec.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace goofi::util {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = NotFound("thing is missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "thing is missing");
  EXPECT_EQ(status.ToString(), "not_found: thing is missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kInternal); ++code) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(code)), "unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFound("x"), NotFound("x"));
  EXPECT_FALSE(NotFound("x") == NotFound("y"));
  EXPECT_FALSE(NotFound("x") == InvalidArgument("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(InvalidArgument("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-7), -7);
}

TEST(ResultTest, ValueOrDieThrowsOnError) {
  Result<int> result(Internal("boom"));
  EXPECT_THROW(result.ValueOrDie(), std::runtime_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (uint64_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

// --- BitVec -------------------------------------------------------------------

TEST(BitVecTest, StartsZeroed) {
  BitVec bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.PopCount(), 0u);
  for (size_t i = 0; i < bits.size(); ++i) EXPECT_FALSE(bits.Get(i));
}

TEST(BitVecTest, SetGetFlip) {
  BitVec bits(70);
  bits.Set(0, true);
  bits.Set(63, true);
  bits.Set(64, true);
  bits.Set(69, true);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(69));
  EXPECT_EQ(bits.PopCount(), 4u);
  bits.Flip(63);
  EXPECT_FALSE(bits.Get(63));
  bits.Flip(1);
  EXPECT_TRUE(bits.Get(1));
  EXPECT_EQ(bits.PopCount(), 4u);
}

TEST(BitVecTest, PushBackGrows) {
  BitVec bits;
  for (int i = 0; i < 100; ++i) bits.PushBack(i % 3 == 0);
  EXPECT_EQ(bits.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(bits.Get(static_cast<size_t>(i)), i % 3 == 0);
  }
}

TEST(BitVecTest, AppendExtractWordRoundTrip) {
  BitVec bits;
  bits.AppendWord(0xDEADBEEF, 32);
  bits.AppendWord(0x5, 3);
  bits.AppendWord(0x123456789ABCDEFULL, 64);
  EXPECT_EQ(bits.size(), 99u);
  EXPECT_EQ(bits.ExtractWord(0, 32), 0xDEADBEEFu);
  EXPECT_EQ(bits.ExtractWord(32, 3), 0x5u);
  EXPECT_EQ(bits.ExtractWord(35, 64), 0x123456789ABCDEFULL);
}

TEST(BitVecTest, DepositWordOverwrites) {
  BitVec bits(64);
  bits.DepositWord(10, 0xFFu, 8);
  EXPECT_EQ(bits.ExtractWord(10, 8), 0xFFu);
  EXPECT_EQ(bits.PopCount(), 8u);
  bits.DepositWord(10, 0xA5u, 8);
  EXPECT_EQ(bits.ExtractWord(10, 8), 0xA5u);
}

TEST(BitVecTest, DiffBitsFindsExactPositions) {
  BitVec a(200);
  BitVec b(200);
  b.Set(3, true);
  b.Set(64, true);
  b.Set(199, true);
  const auto diff = a.DiffBits(b);
  EXPECT_EQ(diff, (std::vector<size_t>{3, 64, 199}));
}

TEST(BitVecTest, XorWith) {
  BitVec a(10);
  BitVec b(10);
  a.Set(1, true);
  b.Set(1, true);
  b.Set(2, true);
  a.XorWith(b);
  EXPECT_FALSE(a.Get(1));
  EXPECT_TRUE(a.Get(2));
}

TEST(BitVecTest, EqualityIncludesSize) {
  BitVec a(8);
  BitVec b(9);
  EXPECT_NE(a, b);
  BitVec c(8);
  EXPECT_EQ(a, c);
  c.Set(5, true);
  EXPECT_NE(a, c);
}

TEST(BitVecTest, StringRoundTrip) {
  BitVec bits(17);
  bits.Set(0, true);
  bits.Set(16, true);
  const std::string text = bits.ToString();
  EXPECT_EQ(text.size(), 17u);
  EXPECT_EQ(text.front(), '1');
  EXPECT_EQ(text.back(), '1');
  auto parsed = BitVec::FromString(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), bits);
}

TEST(BitVecTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BitVec::FromString("0102").ok());
  EXPECT_FALSE(BitVec::FromString("01x").ok());
  EXPECT_TRUE(BitVec::FromString("").ok());
}

TEST(BitVecTest, ToHexWholeWords) {
  BitVec bits(64);
  bits.DepositWord(0, 0x1234ABCDu, 32);
  EXPECT_EQ(bits.ToHex(), "0x000000001234abcd");
}

// --- strings -------------------------------------------------------------------

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(ToUpper("MiXeD123"), "MIXED123");
}

TEST(StringsTest, ParseIntDecimalHexNegative) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-17"), -17);
  EXPECT_EQ(ParseInt("0x1F"), 31);
  EXPECT_EQ(ParseInt("-0x10"), -16);
  EXPECT_EQ(ParseInt("  8 "), 8);
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12abc").has_value());
  EXPECT_FALSE(ParseInt("abc").has_value());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("x").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(StringsTest, EscapeRoundTrip) {
  const std::string nasty = "a\tb\\c\nd";
  const std::string escaped = EscapeField(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(UnescapeField(escaped), nasty);
}

TEST(StringsTest, FormatBehavesLikePrintf) {
  EXPECT_EQ(Format("%d-%s-%02x", 7, "x", 11), "7-x-0b");
  EXPECT_EQ(Format("empty"), "empty");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("scan.core", "scan."));
  EXPECT_FALSE(StartsWith("sc", "scan."));
}

// --- crc32 ---------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32Of("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32Of(""), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Crc32 crc;
  crc.Update("hello ");
  crc.Update("world");
  EXPECT_EQ(crc.Value(), Crc32Of("hello world"));
}

TEST(Crc32Test, UpdateWordLittleEndian) {
  Crc32 a;
  a.UpdateWord(0x04030201);
  Crc32 b;
  const unsigned char bytes[] = {1, 2, 3, 4};
  b.Update(bytes, 4);
  EXPECT_EQ(a.Value(), b.Value());
}

TEST(Crc32Test, ResetStartsOver) {
  Crc32 crc;
  crc.Update("junk");
  crc.Reset();
  crc.Update("123456789");
  EXPECT_EQ(crc.Value(), 0xCBF43926u);
}

// --- log -------------------------------------------------------------------------

TEST(LogTest, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> seen;
  Log::SetSink([&seen](LogLevel level, const std::string& message) {
    seen.emplace_back(level, message);
  });
  Log::SetLevel(LogLevel::kWarn);
  Log::Debug("nope");
  Log::Info("nope");
  Log::Warn("yes1");
  Log::Error("yes2");
  Log::SetSink(nullptr);
  Log::SetLevel(LogLevel::kWarn);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, "yes1");
  EXPECT_EQ(seen[1].first, LogLevel::kError);
}

}  // namespace
}  // namespace goofi::util
