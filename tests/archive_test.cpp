// Tests for the campaign archive: packed codecs, binary columnar snapshots,
// WAL replay, crash recovery (torn tails, stale WALs) and the differential
// property the whole design hangs on — a database recovered from snapshot +
// WAL is byte-identical (row order included) to the one that never crashed.
#include "db/archive.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include "core/goofi.hpp"
#include "db/wal.hpp"

namespace goofi::db {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& suffix) {
  return testing::TempDir() + "goofi_archive_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "_" + suffix;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Canonical dump for equality checks: the legacy text format is stable,
/// human-diffable, and independent of the binary encoder under test.
std::string Dump(const Database& db) {
  const std::string path = TempPath("dump.tmp");
  EXPECT_TRUE(db.SaveLegacyText(path).ok());
  std::string bytes = FileBytes(path);
  std::remove(path.c_str());
  return bytes;
}

/// A small two-table schema with a foreign key, shared by several tests.
void MakeParentChild(Database* db) {
  ASSERT_TRUE(db->CreateTable(Schema("parent",
                                     {{"id", ValueType::kInt, true},
                                      {"label", ValueType::kText, false},
                                      {"weight", ValueType::kReal, false}},
                                     {"id"}))
                  .ok());
  ASSERT_TRUE(db->CreateTable(Schema("child",
                                     {{"cid", ValueType::kInt, true},
                                      {"pid", ValueType::kInt, false},
                                      {"note", ValueType::kText, false}},
                                     {"cid"}, {{{"pid"}, "parent", {"id"}}}))
                  .ok());
}

// --- packed codec ------------------------------------------------------------

TEST(PackedCodec, IntegerRoundTrips) {
  std::string buf;
  PackedWriter w(&buf);
  const int64_t ints[] = {0,  1,  -1, 63, 64, -64, -65,
                          std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max()};
  const uint64_t uints[] = {0, 1, 127, 128, 16383, 16384,
                            std::numeric_limits<uint64_t>::max()};
  for (int64_t v : ints) w.SVarint(v);
  for (uint64_t v : uints) w.Varint(v);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);

  PackedReader r(buf);
  for (int64_t v : ints) {
    int64_t got = 0;
    ASSERT_TRUE(r.SVarint(&got));
    EXPECT_EQ(got, v);
  }
  for (uint64_t v : uints) {
    uint64_t got = 0;
    ASSERT_TRUE(r.Varint(&got));
    EXPECT_EQ(got, v);
  }
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(PackedCodec, ValueRoundTripsPreserveTypeAndBits) {
  std::string buf;
  PackedWriter w(&buf);
  const Row row = {Value::Null(),
                   Value::Int(-42),
                   Value::Real(3.25),
                   Value::Real(-0.0),
                   Value::Real(std::numeric_limits<double>::infinity()),
                   Value::Real(std::numeric_limits<double>::denorm_min()),
                   // An INT stored in a REAL column keeps its concrete type.
                   Value::Int(7),
                   Value::Text(std::string("nul\0tab\tend", 11)),
                   Value::Text("")};
  w.RowData(row);

  PackedReader r(buf);
  Row got;
  ASSERT_TRUE(r.RowData(&got));
  ASSERT_EQ(got.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(got[i].type(), row[i].type()) << "value " << i;
    EXPECT_EQ(got[i].Compare(row[i]), 0) << "value " << i;
  }
  EXPECT_EQ(got[7].as_text(), std::string("nul\0tab\tend", 11));
  EXPECT_TRUE(r.AtEnd());
}

TEST(PackedCodec, ReaderRejectsMalformedInput) {
  // Truncated string: declared length exceeds the remaining bytes.
  {
    std::string buf;
    PackedWriter w(&buf);
    w.Varint(100);
    buf += "short";
    PackedReader r(buf);
    std::string s;
    EXPECT_FALSE(r.Str(&s));
    EXPECT_FALSE(r.ok());
  }
  // Varint overflow: ten bytes of continuation with high bits set.
  {
    std::string buf(10, '\xFF');
    PackedReader r(buf);
    uint64_t v = 0;
    EXPECT_FALSE(r.Varint(&v));
    EXPECT_FALSE(r.ok());
  }
  // Unknown value tag.
  {
    std::string buf(1, '\x09');
    PackedReader r(buf);
    Value v;
    EXPECT_FALSE(r.Val(&v));
    EXPECT_FALSE(r.ok());
  }
}

// --- snapshot ----------------------------------------------------------------

class SnapshotTest : public testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }
  std::string path_ = TempPath("snap.db");
};

TEST_F(SnapshotTest, BinaryRoundTripIsExact) {
  Database db;
  MakeParentChild(&db);
  // A table without a primary key must survive too.
  ASSERT_TRUE(db.CreateTable(Schema("log", {{"msg", ValueType::kText, false}}))
                  .ok());
  ASSERT_TRUE(db.Insert("parent", {Value::Int(1),
                                   Value::Text("tab\tnl\nbs\\q\"end"),
                                   Value::Real(2.5)})
                  .ok());
  ASSERT_TRUE(
      db.Insert("parent", {Value::Int(2), Value::Null(), Value::Int(3)}).ok());
  ASSERT_TRUE(
      db.Insert("child", {Value::Int(10), Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db.Insert("log", {Value::Text("free-floating")}).ok());
  ASSERT_TRUE(db.Save(path_).ok());

  Database loaded;
  uint64_t epoch = 99;
  bool legacy = true;
  ASSERT_TRUE(loaded.Load(path_, &epoch, &legacy).ok());
  EXPECT_EQ(epoch, 0u);
  EXPECT_FALSE(legacy);
  EXPECT_EQ(Dump(loaded), Dump(db));
  // The INT-in-REAL-column widening survived with its concrete type.
  const Table* parent = loaded.GetTable("parent");
  ASSERT_NE(parent, nullptr);
  const auto slot = parent->FindByPrimaryKey({Value::Int(2)});
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(parent->slots()[*slot][2].type(), ValueType::kInt);
  // FK metadata survived.
  EXPECT_FALSE(
      loaded.Insert("child", {Value::Int(11), Value::Int(99), Value::Null()})
          .ok());
}

TEST_F(SnapshotTest, IndexDefinitionsPersistAndPlansInvalidate) {
  Database db;
  MakeParentChild(&db);
  ASSERT_TRUE(
      db.CreateIndex("child", "idx_pid", {"pid"}, IndexKind::kHash).ok());
  ASSERT_TRUE(
      db.CreateIndex("parent", "idx_label", {"label"}, IndexKind::kSorted)
          .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Insert("parent", {Value::Int(i),
                                     Value::Text("p" + std::to_string(i % 5)),
                                     Value::Null()})
                    .ok());
    ASSERT_TRUE(db.Insert("child", {Value::Int(100 + i), Value::Int(i),
                                    Value::Null()})
                    .ok());
  }
  ASSERT_TRUE(db.Save(path_).ok());

  Database loaded;
  const uint64_t version_before = loaded.schema_version();
  ASSERT_TRUE(loaded.Load(path_).ok());
  EXPECT_GT(loaded.schema_version(), version_before);
  const Table* child = loaded.GetTable("child");
  const Table* parent = loaded.GetTable("parent");
  ASSERT_NE(child, nullptr);
  ASSERT_NE(parent, nullptr);
  const SecondaryIndex* idx_pid = child->FindIndex("idx_pid");
  const SecondaryIndex* idx_label = parent->FindIndex("idx_label");
  ASSERT_NE(idx_pid, nullptr);
  ASSERT_NE(idx_label, nullptr);
  EXPECT_EQ(idx_pid->kind, IndexKind::kHash);
  EXPECT_EQ(idx_label->kind, IndexKind::kSorted);
  std::string error;
  EXPECT_TRUE(child->ValidateIndexes(&error)) << error;
  EXPECT_TRUE(parent->ValidateIndexes(&error)) << error;
  EXPECT_EQ(child->IndexEqualSlots(*idx_pid, {Value::Int(3)}).size(), 1u);
}

TEST_F(SnapshotTest, EveryFlippedByteIsRejected) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(Schema("t", {{"a", ValueType::kInt, false}})).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(7)}).ok());
  ASSERT_TRUE(db.Save(path_).ok());
  const std::string pristine = FileBytes(path_);
  ASSERT_GT(pristine.size(), 10u);
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string corrupt = pristine;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    WriteBytes(path_, corrupt);
    Database loaded;
    EXPECT_FALSE(loaded.Load(path_).ok()) << "flip at byte " << i;
  }
}

TEST_F(SnapshotTest, LegacyTextStillLoads) {
  Database db;
  MakeParentChild(&db);
  ASSERT_TRUE(db.Insert("parent", {Value::Int(1), Value::Text("legacy"),
                                   Value::Real(1.5)})
                  .ok());
  ASSERT_TRUE(db.SaveLegacyText(path_).ok());

  Database loaded;
  uint64_t epoch = 99;
  bool legacy = false;
  ASSERT_TRUE(loaded.Load(path_, &epoch, &legacy).ok());
  EXPECT_EQ(epoch, 0u);
  EXPECT_TRUE(legacy);
  EXPECT_EQ(Dump(loaded), Dump(db));
}

// --- archive (WAL + recovery) ------------------------------------------------

class ArchiveTest : public testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// Opens the archive at path_ into a fresh database and returns the dump
  /// (closing the archive again), plus the recovery stats via `stats_out`.
  std::string Recover(ArchiveStats* stats_out = nullptr) {
    Database db;
    auto archive = Archive::Open(&db, path_);
    EXPECT_TRUE(archive.ok()) << archive.status().ToString();
    if (!archive.ok()) return {};
    if (stats_out != nullptr) *stats_out = archive.value()->stats();
    std::string dump = Dump(db);
    EXPECT_TRUE(archive.value()->Close().ok());
    return dump;
  }

  std::string path_ = TempPath("arch.db");
};

TEST_F(ArchiveTest, WalReplaysEveryOperationKind) {
  Database db;      // archive-backed
  Database mirror;  // same operations, no archive
  MakeParentChild(&db);
  MakeParentChild(&mirror);

  auto archive = Archive::Open(&db, path_);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();

  auto both = [&](auto&& op) {
    ASSERT_TRUE(op(&db).ok());
    ASSERT_TRUE(op(&mirror).ok());
  };
  both([](Database* d) {
    return d->Insert("parent", {Value::Int(1), Value::Text("a"), Value::Null()});
  });
  both([](Database* d) {
    std::vector<Row> rows;
    for (int i = 0; i < 5; ++i) {
      rows.push_back({Value::Int(10 + i), Value::Int(1),
                      i % 2 == 0 ? Value::Null() : Value::Text("n")});
    }
    return d->InsertBatch("child", std::move(rows));
  });
  both([](Database* d) {
    return d->Delete("child",
                     [](const Row& r) { return r[0].as_int() == 12; });
  });
  both([](Database* d) {
    size_t updated = 0;
    return d->GetTable("child")->UpdateWhere(
        [](const Row& r) { return r[0].as_int() == 13; },
        [](Row& r) { r[2] = Value::Text("updated"); }, &updated);
  });
  both([](Database* d) {
    return d->CreateTable(Schema("extra", {{"x", ValueType::kInt, false}}));
  });
  both([](Database* d) { return d->Insert("extra", {Value::Int(5)}); });
  both([](Database* d) { return d->DropTable("extra"); });
  both([](Database* d) {
    return d->CreateIndex("child", "idx_pid", {"pid"}, IndexKind::kHash);
  });
  both([](Database* d) {
    return d->CreateIndex("child", "idx_note", {"note"}, IndexKind::kSorted);
  });
  both([](Database* d) { return d->DropIndex("child", "idx_note"); });
  ASSERT_TRUE(archive.value()->Close().ok());

  ArchiveStats stats;
  EXPECT_EQ(Recover(&stats), Dump(mirror));
  EXPECT_GT(stats.wal_records_replayed, 0u);
  EXPECT_FALSE(stats.recovered_torn_tail);

  // Recovered index definitions are live, not just present.
  Database again;
  auto reopened = Archive::Open(&again, path_);
  ASSERT_TRUE(reopened.ok());
  const Table* child = again.GetTable("child");
  ASSERT_NE(child, nullptr);
  ASSERT_NE(child->FindIndex("idx_pid"), nullptr);
  EXPECT_EQ(child->FindIndex("idx_note"), nullptr);
  std::string error;
  EXPECT_TRUE(child->ValidateIndexes(&error)) << error;
  EXPECT_TRUE(reopened.value()->Close().ok());
}

TEST_F(ArchiveTest, FailedBatchLeavesNoTrace) {
  Database db;
  Database mirror;
  MakeParentChild(&db);
  MakeParentChild(&mirror);
  auto archive = Archive::Open(&db, path_);
  ASSERT_TRUE(archive.ok());
  for (Database* d : {&db, &mirror}) {
    ASSERT_TRUE(
        d->Insert("parent", {Value::Int(1), Value::Null(), Value::Null()})
            .ok());
  }
  // Second row violates the FK; the whole batch rolls back.
  std::vector<Row> bad;
  bad.push_back({Value::Int(10), Value::Int(1), Value::Null()});
  bad.push_back({Value::Int(11), Value::Int(999), Value::Null()});
  ASSERT_FALSE(db.InsertBatch("child", std::move(bad)).ok());
  ASSERT_TRUE(archive.value()->Close().ok());
  EXPECT_EQ(Recover(), Dump(mirror));
}

TEST_F(ArchiveTest, TornTailTruncatesAtEveryByteOffset) {
  // Build an archive whose WAL holds 4 single-insert commits, remembering
  // the durable WAL size after each commit.
  Database db;
  ASSERT_TRUE(
      db.CreateTable(Schema("t", {{"a", ValueType::kInt, false},
                                  {"b", ValueType::kText, false}}))
          .ok());
  std::vector<uint64_t> size_after;  // WAL bytes after commit i
  std::string dump_after_3;          // state with the last record dropped
  {
    auto archive = Archive::Open(&db, path_);
    ASSERT_TRUE(archive.ok());
    for (int i = 0; i < 4; ++i) {
      if (i == 3) dump_after_3 = Dump(db);
      ASSERT_TRUE(
          db.Insert("t", {Value::Int(i), Value::Text("row" + std::to_string(i))})
              .ok());
      size_after.push_back(archive.value()->stats().wal_bytes);
    }
    ASSERT_TRUE(archive.value()->Close().ok());
  }
  const std::string full_dump = Dump(db);
  const std::string wal_path = path_ + ".wal";
  const std::string snapshot = FileBytes(path_);
  const std::string wal = FileBytes(wal_path);
  ASSERT_EQ(wal.size(), size_after[3]);

  // Truncating anywhere strictly inside the last record must recover exactly
  // the first three commits; truncating at the record boundary loses nothing.
  for (uint64_t len = size_after[2]; len <= size_after[3]; ++len) {
    WriteBytes(path_, snapshot);
    WriteBytes(wal_path, wal.substr(0, len));
    ArchiveStats stats;
    const std::string dump = Recover(&stats);
    if (len == size_after[2] || len == size_after[3]) {
      EXPECT_FALSE(stats.recovered_torn_tail) << "len " << len;
      EXPECT_EQ(dump, len == size_after[3] ? full_dump : dump_after_3)
          << "len " << len;
    } else {
      EXPECT_TRUE(stats.recovered_torn_tail) << "len " << len;
      EXPECT_EQ(stats.wal_bytes_truncated, len - size_after[2]) << "len " << len;
      EXPECT_EQ(dump, dump_after_3) << "len " << len;
    }
  }
}

TEST_F(ArchiveTest, CorruptRecordDropsItAndTheTail) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(Schema("t", {{"a", ValueType::kInt, false}})).ok());
  std::vector<uint64_t> size_after;
  std::string dump_after_1;
  {
    auto archive = Archive::Open(&db, path_);
    ASSERT_TRUE(archive.ok());
    for (int i = 0; i < 3; ++i) {
      if (i == 1) dump_after_1 = Dump(db);
      ASSERT_TRUE(db.Insert("t", {Value::Int(i)}).ok());
      size_after.push_back(archive.value()->stats().wal_bytes);
    }
    ASSERT_TRUE(archive.value()->Close().ok());
  }
  // Flip a byte inside the payload of record 2 (of 3): replay keeps record 1,
  // drops the corrupt record and everything after it.
  const std::string wal_path = path_ + ".wal";
  std::string wal = FileBytes(wal_path);
  const uint64_t target = size_after[0] + 8;  // past the record frame
  ASSERT_LT(target, size_after[1]);
  wal[target] = static_cast<char>(wal[target] ^ 0xFF);
  WriteBytes(wal_path, wal);

  ArchiveStats stats;
  EXPECT_EQ(Recover(&stats), dump_after_1);
  EXPECT_TRUE(stats.recovered_torn_tail);
  EXPECT_EQ(stats.wal_records_replayed, 1u);
  EXPECT_EQ(stats.wal_bytes_truncated, size_after[2] - size_after[0]);
}

TEST_F(ArchiveTest, StaleWalFromCheckpointCrashIsDiscarded) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(Schema("t", {{"a", ValueType::kInt, false}})).ok());
  {
    auto archive = Archive::Open(&db, path_);
    ASSERT_TRUE(archive.ok());
    ASSERT_TRUE(db.Insert("t", {Value::Int(1)}).ok());
    ASSERT_TRUE(archive.value()->Close().ok());
  }
  // Simulate a crash between Checkpoint's snapshot rename and WAL reset: the
  // snapshot advances to epoch 1 (folding the record in), the WAL stays at
  // epoch 0. Its records must not be replayed twice.
  ASSERT_TRUE(WriteSnapshotFile(db, path_, /*epoch=*/1).ok());
  ArchiveStats stats;
  EXPECT_EQ(Recover(&stats), Dump(db));
  EXPECT_TRUE(stats.stale_wal_discarded);
  EXPECT_EQ(stats.wal_records_replayed, 0u);
  EXPECT_EQ(stats.epoch, 1u);
}

TEST_F(ArchiveTest, AutoCheckpointFoldsWalIntoSnapshot) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(Schema("t", {{"a", ValueType::kInt, false},
                                  {"b", ValueType::kText, false}}))
          .ok());
  ArchiveOptions options;
  options.min_fold_bytes = 1;  // fold as soon as the WAL outgrows the snapshot
  auto archive = Archive::Open(&db, path_, options);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db.Insert("t", {Value::Int(i), Value::Text(std::string(64, 'x'))})
            .ok());
  }
  const ArchiveStats stats = archive.value()->stats();
  EXPECT_GT(stats.checkpoints_folded, 0u);
  EXPECT_GT(stats.epoch, 0u);
  ASSERT_TRUE(archive.value()->Close().ok());
  EXPECT_EQ(Recover(), Dump(db));
}

TEST_F(ArchiveTest, ExplicitCheckpointResetsWal) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(Schema("t", {{"a", ValueType::kInt, false}})).ok());
  auto archive = Archive::Open(&db, path_);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i)}).ok());
  }
  const uint64_t wal_before = archive.value()->stats().wal_bytes;
  ASSERT_TRUE(archive.value()->Checkpoint().ok());
  const ArchiveStats stats = archive.value()->stats();
  EXPECT_LT(stats.wal_bytes, wal_before);
  EXPECT_EQ(stats.epoch, 1u);
  // More appends after the fold land in the new epoch's WAL.
  ASSERT_TRUE(db.Insert("t", {Value::Int(100)}).ok());
  ASSERT_TRUE(archive.value()->Close().ok());
  ArchiveStats recovered;
  EXPECT_EQ(Recover(&recovered), Dump(db));
  EXPECT_EQ(recovered.epoch, 1u);
  EXPECT_EQ(recovered.wal_records_replayed, 1u);
}

TEST_F(ArchiveTest, GroupCommitBuffersUntilScopeEnds) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(Schema("t", {{"a", ValueType::kInt, false}})).ok());
  auto archive = Archive::Open(&db, path_);
  ASSERT_TRUE(archive.ok());
  const uint64_t commits_before = archive.value()->stats().wal_commits;
  {
    Archive::GroupCommitScope scope(archive.value().get());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.Insert("t", {Value::Int(i)}).ok());
    }
    // Nothing durable yet: all 50 records sit in the commit buffer.
    EXPECT_EQ(archive.value()->stats().wal_commits, commits_before);
  }
  EXPECT_EQ(archive.value()->stats().wal_commits, commits_before + 1);
  ASSERT_TRUE(archive.value()->Close().ok());
  EXPECT_EQ(Recover(), Dump(db));
}

TEST_F(ArchiveTest, RandomizedDifferentialAgainstMirror) {
  // Fixed-seed fuzz: a random mutation stream applied to an archive-backed
  // database and to a plain mirror, with periodic close/reopen of the
  // archive. After every reopen the recovered database must dump identically
  // to the mirror that never left memory.
  std::mt19937 rng(0x600F1u);
  Database mirror;
  MakeParentChild(&mirror);
  ASSERT_TRUE(
      mirror.Insert("parent", {Value::Int(0), Value::Null(), Value::Null()})
          .ok());

  auto db = std::make_unique<Database>();
  MakeParentChild(db.get());
  ASSERT_TRUE(
      db->Insert("parent", {Value::Int(0), Value::Null(), Value::Null()}).ok());
  ArchiveOptions options;
  options.min_fold_bytes = 4096;  // exercise mid-stream checkpoint folds too
  auto archive = Archive::Open(db.get(), path_, options);
  ASSERT_TRUE(archive.ok());

  int next_parent = 1;
  int next_child = 1000;
  for (int step = 0; step < 300; ++step) {
    const int op = static_cast<int>(rng() % 100);
    auto on_both = [&](auto&& fn) {
      const auto a = fn(db.get());
      const auto b = fn(&mirror);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
    };
    if (op < 30) {
      const int id = next_parent++;
      const bool with_label = rng() % 2 == 0;
      on_both([&](Database* d) {
        return d->Insert("parent",
                         {Value::Int(id),
                          with_label ? Value::Text("p" + std::to_string(id))
                                     : Value::Null(),
                          Value::Real(static_cast<double>(id) / 3.0)});
      });
    } else if (op < 60) {
      const int parent = static_cast<int>(rng() % next_parent);
      std::vector<Row> rows;
      const int n = 1 + static_cast<int>(rng() % 4);
      for (int i = 0; i < n; ++i) {
        rows.push_back({Value::Int(next_child++), Value::Int(parent),
                        rng() % 2 == 0 ? Value::Null() : Value::Text("c")});
      }
      on_both([&](Database* d) { return d->InsertBatch("child", rows); });
    } else if (op < 75) {
      const int victim = 1000 + static_cast<int>(rng() % (next_child - 1000 + 1));
      on_both([&](Database* d) {
        return d->Delete("child", [&](const Row& r) {
          return r[0].as_int() == victim;
        });
      });
    } else if (op < 90) {
      const int victim = 1000 + static_cast<int>(rng() % (next_child - 1000 + 1));
      const std::string note = "u" + std::to_string(step);
      on_both([&](Database* d) {
        size_t updated = 0;
        return d->GetTable("child")->UpdateWhere(
            [&](const Row& r) { return r[0].as_int() == victim; },
            [&](Row& r) { r[2] = Value::Text(note); }, &updated);
      });
    } else {
      // FK-violating insert: must fail identically on both sides.
      on_both([&](Database* d) {
        return d->Insert("child", {Value::Int(next_child + 7777),
                                   Value::Int(999999), Value::Null()});
      });
    }

    if (step % 60 == 59) {
      ASSERT_TRUE(archive.value()->Close().ok());
      archive.value().reset();
      db = std::make_unique<Database>();
      archive = Archive::Open(db.get(), path_, options);
      ASSERT_TRUE(archive.ok()) << "step " << step;
      ASSERT_EQ(Dump(*db), Dump(mirror)) << "reopen at step " << step;
    }
  }
  ASSERT_TRUE(archive.value()->Close().ok());
  EXPECT_EQ(Recover(), Dump(mirror));
}

// --- campaign runner integration ---------------------------------------------

core::CampaignData SmallCampaign(int num_experiments = 8) {
  core::CampaignData campaign;
  campaign.name = "arch_swifi";
  campaign.target_name = core::SwifiSimTarget::kTargetName;
  campaign.technique = core::Technique::kSwifiPreRuntime;
  campaign.num_experiments = num_experiments;
  campaign.workload = "fibonacci";
  campaign.locations = {{"memory.text", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 500;
  campaign.timeout_cycles = 100000;
  return campaign;
}

class ArchiveRunnerTest : public testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_ = TempPath("runner.db");
};

/// Reference: the same campaign run with no archive at all.
std::string ReferenceDump(const core::CampaignData& campaign, int workers) {
  Database db;
  core::CampaignStore store(&db);
  EXPECT_TRUE(store.PutTargetSystem(core::SwifiSimTarget::Describe()).ok());
  EXPECT_TRUE(store.PutCampaign(campaign).ok());
  core::ParallelCampaignRunner runner(&store, core::MakeSwifiSimFactory(&store),
                                      workers);
  EXPECT_TRUE(runner.Run(campaign.name).ok());
  return Dump(db);
}

TEST_F(ArchiveRunnerTest, ParallelRunRecoversByteIdentical) {
  const core::CampaignData campaign = SmallCampaign();
  const std::string reference = ReferenceDump(campaign, 3);

  // The archived run: every runner batch group-commits the WAL.
  {
    Database db;
    core::CampaignStore store(&db);
    ASSERT_TRUE(store.PutTargetSystem(core::SwifiSimTarget::Describe()).ok());
    ASSERT_TRUE(store.PutCampaign(campaign).ok());
    auto archive = Archive::Open(&db, path_);
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    store.AttachArchive(archive.value().get());
    core::ParallelCampaignRunner runner(&store,
                                        core::MakeSwifiSimFactory(&store), 3);
    ASSERT_TRUE(runner.Run(campaign.name).ok());
    EXPECT_EQ(Dump(db), reference);
    EXPECT_GT(archive.value()->stats().wal_commits, 0u);
    store.AttachArchive(nullptr);
    ASSERT_TRUE(archive.value()->Close().ok());
  }

  // Recovery without any rerun: snapshot + WAL alone reproduce the bytes.
  Database recovered;
  auto archive = Archive::Open(&recovered, path_);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  EXPECT_EQ(Dump(recovered), reference);
  ASSERT_TRUE(archive.value()->Close().ok());
}

TEST_F(ArchiveRunnerTest, KilledRunResumesToIdenticalBytes) {
  // More experiments than one 64-row commit batch, so tearing the last WAL
  // record loses only the final batch and the rerun genuinely resumes.
  const core::CampaignData campaign = SmallCampaign(80);
  const std::string reference = ReferenceDump(campaign, 3);

  {
    Database db;
    core::CampaignStore store(&db);
    ASSERT_TRUE(store.PutTargetSystem(core::SwifiSimTarget::Describe()).ok());
    ASSERT_TRUE(store.PutCampaign(campaign).ok());
    auto archive = Archive::Open(&db, path_);
    ASSERT_TRUE(archive.ok());
    store.AttachArchive(archive.value().get());
    core::ParallelCampaignRunner runner(&store,
                                        core::MakeSwifiSimFactory(&store), 3);
    ASSERT_TRUE(runner.Run(campaign.name).ok());
    store.AttachArchive(nullptr);
    ASSERT_TRUE(archive.value()->Close().ok());
  }

  // "Kill" the process mid-append: tear the last WAL record. Recovery drops
  // the final committed batch; rerunning the campaign resumes the completed
  // experiments and re-executes only the lost ones.
  const std::string wal_path = path_ + ".wal";
  const uint64_t wal_size = fs::file_size(wal_path);
  ASSERT_GT(wal_size, 3u);
  fs::resize_file(wal_path, wal_size - 3);

  Database db;
  auto archive = Archive::Open(&db, path_);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  EXPECT_TRUE(archive.value()->stats().recovered_torn_tail);
  core::CampaignStore store(&db);
  store.AttachArchive(archive.value().get());
  core::ParallelCampaignRunner runner(&store, core::MakeSwifiSimFactory(&store),
                                      3);
  ASSERT_TRUE(runner.Run(campaign.name).ok());
  EXPECT_GT(runner.stats().experiments_resumed, 0);
  EXPECT_EQ(Dump(db), reference);
  store.AttachArchive(nullptr);
  ASSERT_TRUE(archive.value()->Close().ok());

  // And the recovered-plus-resumed archive itself reopens byte-identical.
  Database again;
  auto reopened = Archive::Open(&again, path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Dump(again), reference);
  ASSERT_TRUE(reopened.value()->Close().ok());
}

TEST_F(ArchiveRunnerTest, PreparedStatementsSurviveRecovery) {
  const core::CampaignData campaign = SmallCampaign();
  {
    Database db;
    core::CampaignStore store(&db);
    ASSERT_TRUE(store.PutTargetSystem(core::SwifiSimTarget::Describe()).ok());
    ASSERT_TRUE(store.PutCampaign(campaign).ok());
    auto archive = Archive::Open(&db, path_);
    ASSERT_TRUE(archive.ok());
    store.AttachArchive(archive.value().get());
    core::ParallelCampaignRunner runner(&store,
                                        core::MakeSwifiSimFactory(&store), 2);
    ASSERT_TRUE(runner.Run(campaign.name).ok());
    store.AttachArchive(nullptr);
    ASSERT_TRUE(archive.value()->Close().ok());
  }

  Database db;
  core::CampaignStore store(&db);
  // Plan the statement against the pre-recovery (empty-schema) database...
  const std::string sql =
      "SELECT COUNT(*) FROM LoggedSystemState WHERE campaignName = 'arch_swifi'";
  auto before = store.statement_cache().Execute(db, sql);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // ...then let recovery replace every table. The cached plan must replan
  // (schema_version moved on), not dereference dead Table pointers.
  auto archive = Archive::Open(&db, path_);
  ASSERT_TRUE(archive.ok());
  auto after = store.statement_cache().Execute(db, sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after.value().rows.size(), 1u);
  // 8 experiments + the reference run's row.
  EXPECT_EQ(after.value().rows[0][0].as_int(), 9);
  ASSERT_TRUE(archive.value()->Close().ok());
}

}  // namespace
}  // namespace goofi::db
