// Property-based tests of the embedded database: randomized row sets must
// satisfy relational invariants, and persistence must be an identity.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "db/database.hpp"
#include "db/sql_executor.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace goofi::db {
namespace {

/// Builds a table of `n` random rows (unique integer PK, random text/real
/// payload); returns the rows inserted.
std::vector<Row> Populate(Database* db, util::Rng* rng, int n) {
  EXPECT_TRUE(db->CreateTable(Schema("t",
                                     {{"id", ValueType::kInt, true},
                                      {"label", ValueType::kText, false},
                                      {"score", ValueType::kReal, false}},
                                     {"id"}))
                  .ok());
  std::vector<Row> rows;
  std::set<int64_t> used;
  while (static_cast<int>(rows.size()) < n) {
    const int64_t id = static_cast<int64_t>(rng->NextBelow(100000));
    if (!used.insert(id).second) continue;
    // Tag-then-append instead of `"x" + std::to_string(...)`: the rvalue
    // operator+ trips GCC 12's -Wrestrict false positive (PR105329).
    std::string text = "x";
    text += std::to_string(rng->NextBelow(50));
    Row row = {Value::Int(id),
               rng->NextBool(0.1) ? Value::Null()
                                  : Value::Text(std::move(text)),
               rng->NextBool(0.1) ? Value::Null()
                                  : Value::Real(rng->NextDouble() * 100)};
    EXPECT_TRUE(db->Insert("t", row).ok());
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(DbPropertyTest, CountMatchesInsertions) {
  util::Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    Database db;
    const int n = 1 + static_cast<int>(rng.NextBelow(200));
    Populate(&db, &rng, n);
    const auto count = ExecuteSql(db, "SELECT COUNT(*) FROM t").ValueOrDie();
    EXPECT_EQ(count.rows[0][0].as_int(), n);
  }
}

TEST(DbPropertyTest, OrderByProducesSortedOutput) {
  util::Rng rng(202);
  Database db;
  Populate(&db, &rng, 300);
  const auto result =
      ExecuteSql(db, "SELECT id FROM t ORDER BY id").ValueOrDie();
  int64_t prev = INT64_MIN;
  for (const Row& row : result.rows) {
    EXPECT_GE(row[0].as_int(), prev);
    prev = row[0].as_int();
  }
  const auto desc =
      ExecuteSql(db, "SELECT score FROM t WHERE score IS NOT NULL "
                     "ORDER BY score DESC")
          .ValueOrDie();
  double dprev = 1e18;
  for (const Row& row : desc.rows) {
    EXPECT_LE(row[0].as_real(), dprev);
    dprev = row[0].as_real();
  }
}

TEST(DbPropertyTest, WherePartitionsTheTable) {
  util::Rng rng(303);
  Database db;
  Populate(&db, &rng, 250);
  // For any threshold, |id < T| + |id >= T| == |all|.
  for (int64_t threshold : {0LL, 500LL, 50000LL, 99999LL}) {
    const auto below = ExecuteSql(db, util::Format(
        "SELECT COUNT(*) FROM t WHERE id < %lld", (long long)threshold))
                           .ValueOrDie();
    const auto at_or_above = ExecuteSql(db, util::Format(
        "SELECT COUNT(*) FROM t WHERE id >= %lld", (long long)threshold))
                                 .ValueOrDie();
    EXPECT_EQ(below.rows[0][0].as_int() + at_or_above.rows[0][0].as_int(), 250);
  }
}

TEST(DbPropertyTest, AggregatesAgreeWithManualFold) {
  util::Rng rng(404);
  Database db;
  const auto rows = Populate(&db, &rng, 150);
  int64_t sum = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Row& row : rows) {
    sum += row[0].as_int();
    min = std::min(min, row[0].as_int());
    max = std::max(max, row[0].as_int());
  }
  const auto result =
      ExecuteSql(db, "SELECT SUM(id), MIN(id), MAX(id), AVG(id) FROM t")
          .ValueOrDie();
  EXPECT_EQ(result.rows[0][0].as_int(), sum);
  EXPECT_EQ(result.rows[0][1].as_int(), min);
  EXPECT_EQ(result.rows[0][2].as_int(), max);
  EXPECT_NEAR(result.rows[0][3].as_real(), static_cast<double>(sum) / 150, 1e-6);
}

TEST(DbPropertyTest, GroupByCountsSumToTotal) {
  util::Rng rng(505);
  Database db;
  Populate(&db, &rng, 200);
  const auto groups =
      ExecuteSql(db, "SELECT label, COUNT(*) FROM t GROUP BY label")
          .ValueOrDie();
  int64_t total = 0;
  for (const Row& row : groups.rows) total += row[1].as_int();
  EXPECT_EQ(total, 200);
}

TEST(DbPropertyTest, DeleteThenCountIsConsistent) {
  util::Rng rng(606);
  Database db;
  Populate(&db, &rng, 200);
  const auto deleted =
      ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE id % 3 = 0").ValueOrDie();
  const int64_t victims = deleted.rows[0][0].as_int();
  const auto result = ExecuteSql(db, "DELETE FROM t WHERE id % 3 = 0").ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(result.affected), victims);
  const auto remaining = ExecuteSql(db, "SELECT COUNT(*) FROM t").ValueOrDie();
  EXPECT_EQ(remaining.rows[0][0].as_int(), 200 - victims);
  const auto none =
      ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE id % 3 = 0").ValueOrDie();
  EXPECT_EQ(none.rows[0][0].as_int(), 0);
}

TEST(DbPropertyTest, SaveLoadIsIdentityOnRandomDatabases) {
  util::Rng rng(707);
  for (int trial = 0; trial < 5; ++trial) {
    Database db;
    Populate(&db, &rng, 1 + static_cast<int>(rng.NextBelow(120)));
    const std::string path = testing::TempDir() +
                             "db_prop_" + std::to_string(trial) + ".db";
    ASSERT_TRUE(db.Save(path).ok());
    Database loaded;
    ASSERT_TRUE(loaded.Load(path).ok());
    std::remove(path.c_str());

    // Every row from the original appears identically in the copy.
    const Table* before = db.GetTable("t");
    const Table* after = loaded.GetTable("t");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(before->size(), after->size());
    before->ForEach([after](const Row& row) {
      const auto slot = after->FindByPrimaryKey({row[0]});
      ASSERT_TRUE(slot.has_value());
      const Row& copy = after->slots()[*slot];
      for (size_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(copy[i].Compare(row[i]), 0);
      }
    });
  }
}

TEST(DbPropertyTest, UpdateIsIdempotentForConstantAssignments) {
  util::Rng rng(808);
  Database db;
  Populate(&db, &rng, 100);
  ASSERT_TRUE(ExecuteSql(db, "UPDATE t SET label = 'fixed' WHERE id % 2 = 0").ok());
  const auto first =
      ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE label = 'fixed'").ValueOrDie();
  ASSERT_TRUE(ExecuteSql(db, "UPDATE t SET label = 'fixed' WHERE id % 2 = 0").ok());
  const auto second =
      ExecuteSql(db, "SELECT COUNT(*) FROM t WHERE label = 'fixed'").ValueOrDie();
  EXPECT_EQ(first.rows[0][0].as_int(), second.rows[0][0].as_int());
}

}  // namespace
}  // namespace goofi::db
