// Differential tests for the predecoded superblock fast path.
//
// The contract under test: Cpu::RunFastEx produces *bit-identical* state to
// an equivalent reference Step() loop — every register, latch, counter,
// cache line, memory word and EDM event — for arbitrary programs, arbitrary
// fault injections into code and data, and every stop-condition mix. At the
// campaign level, a database produced with the fast path on must be
// byte-for-byte the file produced with it off, across all three injection
// techniques.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/goofi.hpp"
#include "cpu/cpu.hpp"
#include "cpu/decode_cache.hpp"
#include "db/database.hpp"
#include "isa/assembler.hpp"
#include "testcard/testcard.hpp"
#include "util/rng.hpp"

namespace goofi::cpu {
namespace {

// --- decode cache unit tests -------------------------------------------------

uint32_t Word(isa::Opcode op, uint8_t rd = 0, uint8_t rs1 = 0, uint8_t rs2 = 0,
              int32_t imm = 0) {
  isa::Instruction ins;
  ins.op = op;
  ins.rd = rd;
  ins.rs1 = rs1;
  ins.rs2 = rs2;
  ins.imm = imm;
  return isa::Encode(ins);
}

TEST(DecodeCacheTest, EntryFlags) {
  using E = DecodeCache;
  EXPECT_EQ(DecodeCache::MakeEntry(Word(isa::Opcode::kAdd, 3, 1, 2)).flags, 0);
  EXPECT_EQ(DecodeCache::MakeEntry(Word(isa::Opcode::kLdw, 1, 2, 0, 8)).flags,
            E::kMem);
  EXPECT_EQ(DecodeCache::MakeEntry(Word(isa::Opcode::kStw, 1, 2, 0, 8)).flags,
            E::kMem);
  EXPECT_EQ(DecodeCache::MakeEntry(Word(isa::Opcode::kBeq, 1, 2, 0, -4)).flags,
            E::kBranch);
  EXPECT_EQ(DecodeCache::MakeEntry(Word(isa::Opcode::kJal, 0, 0, 0, 16)).flags,
            E::kCall);
  EXPECT_EQ(DecodeCache::MakeEntry(Word(isa::Opcode::kTrap, 0, 0, 0, 0)).flags,
            E::kWatchdogKick);
  // TRAP with a nonzero code is an assertion, not a watchdog kick.
  EXPECT_EQ(DecodeCache::MakeEntry(Word(isa::Opcode::kTrap, 0, 0, 0, 3)).flags,
            0);
  // Writes to sp are flagged; the same ALU op to another register is not.
  EXPECT_EQ(
      DecodeCache::MakeEntry(Word(isa::Opcode::kAddi, isa::kStackPointer, 15, 0, -4))
          .flags,
      E::kWritesSp);
  // Stores never write a register, even with rd == sp (rd is the source).
  EXPECT_EQ(
      DecodeCache::MakeEntry(Word(isa::Opcode::kStw, isa::kStackPointer, 1, 0, 0))
          .flags,
      E::kMem);
  const DecodeCache::Entry illegal = DecodeCache::MakeEntry(0xFFFFFFFFu);
  EXPECT_EQ(illegal.flags, E::kIllegal);
  EXPECT_NE(illegal.fault, isa::PredecodeFault::kNone);
}

TEST(DecodeCacheTest, CountersAndInvalidation) {
  DecodeCache cache;
  cache.Configure(0x100, 0x200);  // counts as the initial flush
  EXPECT_EQ(cache.stats().flushes, 1u);
  const uint32_t add = Word(isa::Opcode::kAdd, 1, 2, 3);

  EXPECT_EQ(cache.Resolve(0x100, add).flags, 0);  // miss installs
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  (void)cache.Resolve(0x100, add);  // hit
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different raw word at the same address (fault into code) must re-decode.
  const uint32_t sub = Word(isa::Opcode::kSub, 1, 2, 3);
  const DecodeCache::Entry& entry = cache.Resolve(0x100, sub);
  EXPECT_EQ(entry.ins.op, isa::Opcode::kSub);
  EXPECT_EQ(cache.stats().misses, 2u);

  cache.InvalidateWord(0x100);
  EXPECT_EQ(cache.stats().flushes, 2u);
  (void)cache.Resolve(0x100, sub);
  EXPECT_EQ(cache.stats().misses, 3u);

  // Out-of-range invalidations don't count a flush.
  cache.InvalidateWord(0x300);
  cache.InvalidateRange(0x400, 0x500);
  EXPECT_EQ(cache.stats().flushes, 2u);

  cache.InvalidateRange(0x0, 0x1000);  // clamps to the text window
  EXPECT_EQ(cache.stats().flushes, 3u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.stats().flushes, 4u);

  // Addresses outside the text window resolve through the scratch entry:
  // counted as misses, never installed.
  const uint64_t misses_before = cache.stats().misses;
  (void)cache.Resolve(0x2000, add);
  (void)cache.Resolve(0x2000, add);
  EXPECT_EQ(cache.stats().misses, misses_before + 2);
}

// --- lockstep differential fuzzer -------------------------------------------

/// Asserts every piece of execution-visible state matches between two CPUs.
void ExpectSameState(Cpu& fast, Cpu& ref, const std::string& context) {
  const CpuSnapshot a = fast.SaveSnapshot();
  const CpuSnapshot b = ref.SaveSnapshot();
  ASSERT_EQ(a.regs, b.regs) << context;
  ASSERT_EQ(a.pc, b.pc) << context;
  ASSERT_EQ(a.ir, b.ir) << context;
  ASSERT_EQ(a.next_pc, b.next_pc) << context;
  ASSERT_EQ(a.latch_operand_a, b.latch_operand_a) << context;
  ASSERT_EQ(a.latch_operand_b, b.latch_operand_b) << context;
  ASSERT_EQ(a.latch_alu_result, b.latch_alu_result) << context;
  ASSERT_EQ(a.latch_mem_addr, b.latch_mem_addr) << context;
  ASSERT_EQ(a.latch_mem_data, b.latch_mem_data) << context;
  ASSERT_EQ(a.watchdog_counter, b.watchdog_counter) << context;
  ASSERT_EQ(a.cycles, b.cycles) << context;
  ASSERT_EQ(a.instret, b.instret) << context;
  ASSERT_EQ(a.halted, b.halted) << context;
  ASSERT_EQ(a.edm_event.type, b.edm_event.type) << context;
  ASSERT_EQ(a.edm_event.cycle, b.edm_event.cycle) << context;
  ASSERT_EQ(a.edm_event.pc, b.edm_event.pc) << context;
  ASSERT_EQ(a.edm_event.code, b.edm_event.code) << context;
  ASSERT_EQ(a.edm_event.detail, b.edm_event.detail) << context;
  ASSERT_EQ(a.text_start, b.text_start) << context;
  ASSERT_EQ(a.text_end, b.text_end) << context;

  auto expect_cache_eq = [&](const ParityCache::Snapshot& x,
                             const ParityCache::Snapshot& y,
                             const char* which) {
    ASSERT_EQ(x.hits, y.hits) << context << " " << which;
    ASSERT_EQ(x.misses, y.misses) << context << " " << which;
    ASSERT_EQ(x.lines.size(), y.lines.size()) << context << " " << which;
    for (size_t i = 0; i < x.lines.size(); ++i) {
      ASSERT_EQ(x.lines[i].valid, y.lines[i].valid) << context << " " << which << i;
      ASSERT_EQ(x.lines[i].tag, y.lines[i].tag) << context << " " << which << i;
      ASSERT_EQ(x.lines[i].data, y.lines[i].data) << context << " " << which << i;
      ASSERT_EQ(x.lines[i].parity, y.lines[i].parity) << context << " " << which << i;
    }
  };
  expect_cache_eq(a.icache, b.icache, "icache line ");
  expect_cache_eq(a.dcache, b.dcache, "dcache line ");

  ASSERT_EQ(a.memory.pages.size(), b.memory.pages.size()) << context;
  for (size_t i = 0; i < a.memory.pages.size(); ++i) {
    ASSERT_EQ(a.memory.pages[i].index, b.memory.pages[i].index) << context;
    ASSERT_EQ(a.memory.pages[i].words, b.memory.pages[i].words)
        << context << " page " << a.memory.pages[i].index;
  }
}

/// A constrained-random instruction word: mostly valid encodings, some pure
/// garbage (illegal opcodes / reserved bits — the EDM-relevant space).
uint32_t RandomWord(util::Rng& rng, uint32_t num_words) {
  if (rng.NextBelow(8) == 0) return static_cast<uint32_t>(rng.Next());
  static constexpr isa::Opcode kOps[] = {
      isa::Opcode::kNop,  isa::Opcode::kAdd,  isa::Opcode::kSub,
      isa::Opcode::kMul,  isa::Opcode::kDiv,  isa::Opcode::kAnd,
      isa::Opcode::kOr,   isa::Opcode::kXor,  isa::Opcode::kSll,
      isa::Opcode::kSrl,  isa::Opcode::kSra,  isa::Opcode::kSlt,
      isa::Opcode::kSltu, isa::Opcode::kAddi, isa::Opcode::kAndi,
      isa::Opcode::kOri,  isa::Opcode::kXori, isa::Opcode::kSlli,
      isa::Opcode::kSrli, isa::Opcode::kLui,  isa::Opcode::kSlti,
      isa::Opcode::kLdw,  isa::Opcode::kStw,  isa::Opcode::kBeq,
      isa::Opcode::kBne,  isa::Opcode::kBlt,  isa::Opcode::kBge,
      isa::Opcode::kBltu, isa::Opcode::kBgeu, isa::Opcode::kJmp,
      isa::Opcode::kJal,  isa::Opcode::kJr,   isa::Opcode::kTrap,
  };
  isa::Instruction ins;
  ins.op = kOps[rng.NextBelow(sizeof(kOps) / sizeof(kOps[0]))];
  ins.rd = static_cast<uint8_t>(rng.NextBelow(isa::kNumRegisters));
  ins.rs1 = static_cast<uint8_t>(rng.NextBelow(isa::kNumRegisters));
  ins.rs2 = static_cast<uint8_t>(rng.NextBelow(isa::kNumRegisters));
  switch (ins.op) {
    case isa::Opcode::kSlli:
    case isa::Opcode::kSrli:
      ins.imm = static_cast<int32_t>(rng.NextBelow(32));
      break;
    case isa::Opcode::kBeq:
    case isa::Opcode::kBne:
    case isa::Opcode::kBlt:
    case isa::Opcode::kBge:
    case isa::Opcode::kBltu:
    case isa::Opcode::kBgeu:
      ins.imm = static_cast<int32_t>(rng.NextBelow(17)) - 8;
      break;
    case isa::Opcode::kJmp:
    case isa::Opcode::kJal:
      ins.imm = static_cast<int32_t>(rng.NextBelow(num_words));
      break;
    case isa::Opcode::kTrap:
      // Mostly watchdog kicks (code 0); assertions end the run immediately.
      ins.imm = rng.NextBelow(16) == 0 ? 1 : 0;
      break;
    default:
      ins.imm = static_cast<int32_t>(rng.NextBelow(201)) - 100;
      break;
  }
  return isa::Encode(ins);
}

CpuConfig RandomConfig(util::Rng& rng) {
  CpuConfig config;
  config.icache_lines = 16;
  config.dcache_lines = 16;
  config.cache_miss_penalty = 1 + static_cast<uint32_t>(rng.NextBelow(6));
  switch (rng.NextBelow(4)) {
    case 0: config.watchdog_limit = 0; break;
    case 1: config.watchdog_limit = 1; break;
    case 2: config.watchdog_limit = 7; break;
    default: config.watchdog_limit = 100; break;
  }
  if (rng.NextBelow(2) == 0) config.stack_limit = 0x80;
  // Randomly ablate detection so the "limit configured, EDM disabled"
  // step-terminates-without-event quirk is exercised too.
  config.edms.watchdog = rng.NextBelow(4) != 0;
  config.edms.stack_overflow = rng.NextBelow(4) != 0;
  config.edms.illegal_opcode = rng.NextBelow(4) != 0;
  config.edms.control_flow = rng.NextBelow(4) != 0;
  config.edms.arithmetic_overflow = rng.NextBelow(4) != 0;
  config.edms.out_of_range_access = rng.NextBelow(4) != 0;
  return config;
}

/// Drives `fast` with RunFastEx bursts and `ref` with the same number of
/// reference Step()s, comparing full state after every superblock.
void RunLockstep(Cpu& fast, Cpu& ref, util::Rng& rng, int max_bursts,
                 const std::string& context) {
  for (int burst = 0; burst < max_bursts; ++burst) {
    RunFastRequest request;
    request.max_steps = 1 + rng.NextBelow(29);
    const RunFastResult result = fast.RunFastEx(request);
    StepOutcome ref_outcome = StepOutcome::kOk;
    for (uint64_t i = 0; i < result.steps; ++i) {
      ref_outcome = ref.Step();
    }
    const std::string where = context + " burst " + std::to_string(burst);
    if (result.steps > 0) {
      ASSERT_EQ(result.outcome, ref_outcome) << where;
    }
    ExpectSameState(fast, ref, where);
    if (result.outcome != StepOutcome::kOk) {
      // Terminal: further fast calls must keep reporting the same outcome
      // without advancing state, exactly like Step().
      ASSERT_EQ(fast.RunFastEx(request).outcome, result.outcome) << where;
      ASSERT_EQ(ref.Step(), ref_outcome) << where;
      ExpectSameState(fast, ref, where + " post-terminal");
      return;
    }
  }
}

TEST(CpuFastPathFuzz, RandomProgramsLockstep) {
  util::Rng rng(0x600F1);
  for (int trial = 0; trial < 40; ++trial) {
    const CpuConfig config = RandomConfig(rng);
    const uint32_t num_words = 32 + static_cast<uint32_t>(rng.NextBelow(64));
    std::vector<uint32_t> words(num_words);
    for (uint32_t& word : words) word = RandomWord(rng, num_words);

    Cpu fast(config);
    Cpu ref(config);
    ASSERT_TRUE(fast.LoadProgram(0, words).ok());
    ASSERT_TRUE(ref.LoadProgram(0, words).ok());
    fast.Reset(0);
    ref.Reset(0);
    // Start sp above the stack limit so sp-decrementing garbage can cross it.
    fast.set_reg(isa::kStackPointer, 0x100);
    ref.set_reg(isa::kStackPointer, 0x100);
    RunLockstep(fast, ref, rng, 60, "trial " + std::to_string(trial));
  }
}

TEST(CpuFastPathFuzz, FaultsIntoCodeAndStateLockstep) {
  util::Rng rng(0xFA57);
  for (int trial = 0; trial < 30; ++trial) {
    const CpuConfig config = RandomConfig(rng);
    const uint32_t num_words = 48;
    std::vector<uint32_t> words(num_words);
    for (uint32_t& word : words) word = RandomWord(rng, num_words);

    Cpu fast(config);
    Cpu ref(config);
    ASSERT_TRUE(fast.LoadProgram(0, words, num_words * 4).ok());
    ASSERT_TRUE(ref.LoadProgram(0, words, num_words * 4).ok());
    fast.Reset(0);
    ref.Reset(0);
    auto fast_registry = fast.BuildStateRegistry();
    auto ref_registry = ref.BuildStateRegistry();
    ASSERT_EQ(fast_registry.size(), ref_registry.size());

    for (int burst = 0; burst < 40; ++burst) {
      // Identical fault in both CPUs: half the time a host write into the
      // image (pre-runtime SWIFI into text exercises invalidation), half the
      // time a scan-style corruption of a random writable state element
      // (flips into ir_ / icache lines exercise the raw-word tag backstop).
      if (rng.NextBelow(2) == 0) {
        const uint32_t address = static_cast<uint32_t>(rng.NextBelow(num_words)) * 4;
        const uint32_t value = static_cast<uint32_t>(rng.Next());
        ASSERT_TRUE(fast.HostWriteWord(address, value).ok());
        ASSERT_TRUE(ref.HostWriteWord(address, value).ok());
      } else {
        const size_t index = rng.NextBelow(fast_registry.size());
        const auto& fast_element = fast_registry.elements()[index];
        const auto& ref_element = ref_registry.elements()[index];
        if (!fast_element.read_only) {
          const uint64_t value = rng.Next();
          fast_element.set(value);
          ref_element.set(value);
        }
      }
      RunFastRequest request;
      request.max_steps = 1 + rng.NextBelow(17);
      const RunFastResult result = fast.RunFastEx(request);
      StepOutcome ref_outcome = StepOutcome::kOk;
      for (uint64_t i = 0; i < result.steps; ++i) ref_outcome = ref.Step();
      const std::string where =
          "trial " + std::to_string(trial) + " burst " + std::to_string(burst);
      if (result.steps > 0) {
        ASSERT_EQ(result.outcome, ref_outcome) << where;
      }
      ExpectSameState(fast, ref, where);
      if (result.outcome != StepOutcome::kOk) break;
    }
  }
}

TEST(CpuFastPathFuzz, SelfModifyingCodeLockstep) {
  // Code placed *outside* the protected text segment rewrites its own
  // upcoming instructions; the fast path must execute the freshly stored
  // words (out-of-text fetches resolve through the uncached scratch entry).
  CpuConfig config;
  config.edms.control_flow = false;     // allow executing past text_end
  config.edms.memory_protection = false;
  const std::string source =
      "_start:\n"
      "  jmp patcher\n"
      "_etext:\n"
      "patcher:\n"
      "  li r1, target\n"
      "  li r2, 0\n"        // encoding of NOP
      "  stw r2, [r1]\n"    // overwrite the ADDI below with NOP
      "target:\n"
      "  addi r3, r0, 99\n" // replaced at runtime
      "  addi r4, r0, 7\n"
      "  halt\n";
  const auto program = isa::Assemble(source).ValueOrDie();
  const uint32_t text_bytes =
      program.symbols.at("_etext") - program.base_address;

  Cpu fast(config);
  Cpu ref(config);
  ASSERT_TRUE(
      fast.LoadProgram(program.base_address, program.words, text_bytes).ok());
  ASSERT_TRUE(
      ref.LoadProgram(program.base_address, program.words, text_bytes).ok());
  fast.Reset(program.entry);
  ref.Reset(program.entry);

  const StepOutcome ref_outcome = ref.Run(0);
  const RunFastResult result = fast.RunFastEx(RunFastRequest{});
  EXPECT_EQ(ref_outcome, StepOutcome::kHalted);
  EXPECT_EQ(result.outcome, StepOutcome::kHalted);
  EXPECT_EQ(fast.reg(3), 0u) << "store into upcoming instruction not observed";
  EXPECT_EQ(fast.reg(4), 7u);
  ExpectSameState(fast, ref, "self-modifying code");
}

TEST(CpuFastPathFuzz, StoreIntoProtectedTextDroppedIdentically) {
  // CPU stores inside the text segment are dropped at the memory layer no
  // matter what the EDM config says; with kMemoryProtection *disabled* the
  // step silently continues (RaiseEdm no-ops, the write never lands). The
  // fast path must reproduce that exactly: the old instruction keeps
  // executing, memory and the decode cache stay coherent.
  CpuConfig config;
  config.edms.memory_protection = false;
  const std::string source =
      "_start:\n"
      "  li r1, target\n"
      "  li r2, 0\n"
      "  stw r2, [r1]\n"
      "target:\n"
      "  addi r3, r0, 99\n"
      "  halt\n";
  const auto program = isa::Assemble(source).ValueOrDie();
  const uint32_t target_addr = program.symbols.at("target");

  Cpu fast(config);
  Cpu ref(config);
  // Whole image is text (text_bytes = 0).
  ASSERT_TRUE(fast.LoadProgram(program.base_address, program.words).ok());
  ASSERT_TRUE(ref.LoadProgram(program.base_address, program.words).ok());
  for (int round = 0; round < 2; ++round) {
    // Round 1 reuses the same CPUs: the decode cache stays warm across
    // Reset, and a host write (which *does* bypass protection) rewrites the
    // target word — the HostWriteWord invalidation hook must land.
    if (round == 1) {
      ASSERT_TRUE(fast.HostWriteWord(target_addr, 0 /* NOP */).ok());
      ASSERT_TRUE(ref.HostWriteWord(target_addr, 0 /* NOP */).ok());
    }
    fast.Reset(program.entry);
    ref.Reset(program.entry);
    const StepOutcome ref_outcome = ref.Run(0);
    const RunFastResult result = fast.RunFastEx(RunFastRequest{});
    EXPECT_EQ(ref_outcome, StepOutcome::kHalted);
    EXPECT_EQ(result.outcome, StepOutcome::kHalted);
    // Round 0: the CPU store is dropped, the old ADDI still runs (r3 = 99).
    // Round 1: the host write landed, the patched NOP runs (r3 stays 0).
    EXPECT_EQ(fast.reg(3), round == 0 ? 99u : 0u) << "round " << round;
    ExpectSameState(fast, ref, "store into text, round=" + std::to_string(round));
  }
}

TEST(CpuFastPathFuzz, WatchdogFiresAtExactReferenceStep) {
  CpuConfig config;
  config.watchdog_limit = 37;
  const std::string source =
      "_start:\n"
      "  trap 0\n"        // kick
      "loop:\n"
      "  addi r1, r1, 1\n"
      "  jmp loop\n";     // no further kicks: the watchdog must fire
  const auto program = isa::Assemble(source).ValueOrDie();

  Cpu fast(config);
  Cpu ref(config);
  ASSERT_TRUE(fast.LoadProgram(program.base_address, program.words).ok());
  ASSERT_TRUE(ref.LoadProgram(program.base_address, program.words).ok());
  fast.Reset(program.entry);
  ref.Reset(program.entry);

  const StepOutcome ref_outcome = ref.Run(0);
  const RunFastResult result = fast.RunFastEx(RunFastRequest{});
  EXPECT_EQ(ref_outcome, StepOutcome::kDetected);
  EXPECT_EQ(result.outcome, StepOutcome::kDetected);
  EXPECT_EQ(fast.edm_event().type, EdmType::kWatchdogTimeout);
  ExpectSameState(fast, ref, "watchdog");
}

// --- Run(max_cycles) overshoot pin (satellite) -------------------------------

TEST(CpuRunBudgetTest, BudgetCheckedOnlyAfterFullStep) {
  // MUL costs several cycles; a budget that lands mid-instruction is only
  // honoured after the instruction completes, so cycles() overshoots the
  // budget rather than stopping at it. This is the semantics every campaign
  // timeout is calibrated against — pin it.
  const std::string source =
      "loop:\n"
      "  mul r1, r2, r3\n"
      "  jmp loop\n";
  const auto program = isa::Assemble(source).ValueOrDie();

  Cpu ref;
  ASSERT_TRUE(ref.LoadProgram(program.base_address, program.words).ok());
  ref.Reset(program.entry);
  ASSERT_EQ(ref.Step(), StepOutcome::kOk);
  const uint64_t one_mul = ref.cycles();
  ASSERT_GT(one_mul, 1u);

  // Budget of one cycle: the first step must still complete in full.
  Cpu cpu;
  ASSERT_TRUE(cpu.LoadProgram(program.base_address, program.words).ok());
  cpu.Reset(program.entry);
  EXPECT_EQ(cpu.Run(1), StepOutcome::kOk);
  EXPECT_EQ(cpu.cycles(), one_mul);
  EXPECT_EQ(cpu.instructions_retired(), 1u);

  // A budget mid-way through step N+1 runs through the end of step N+1.
  Cpu cpu2;
  ASSERT_TRUE(cpu2.LoadProgram(program.base_address, program.words).ok());
  cpu2.Reset(program.entry);
  EXPECT_EQ(cpu2.Run(one_mul + 1), StepOutcome::kOk);
  EXPECT_GT(cpu2.cycles(), one_mul + 1);

  // RunFast has identical overshoot behaviour and identical state.
  for (uint64_t budget : {uint64_t{1}, one_mul, one_mul + 1, uint64_t{200}}) {
    Cpu a;
    Cpu b;
    ASSERT_TRUE(a.LoadProgram(program.base_address, program.words).ok());
    ASSERT_TRUE(b.LoadProgram(program.base_address, program.words).ok());
    a.Reset(program.entry);
    b.Reset(program.entry);
    EXPECT_EQ(a.Run(budget), b.RunFast(budget)) << budget;
    EXPECT_EQ(a.cycles(), b.cycles()) << budget;
    EXPECT_EQ(a.instructions_retired(), b.instructions_retired()) << budget;
    EXPECT_EQ(a.pc(), b.pc()) << budget;
  }
}

}  // namespace
}  // namespace goofi::cpu

// --- campaign-level byte-identical databases ---------------------------------

namespace goofi::core {
namespace {

std::string DbBytes(db::Database& db, const std::string& tag) {
  const std::string path = testing::TempDir() + "goofi_fastpath_" + tag + ".db";
  EXPECT_TRUE(db.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  return buf.str();
}

CampaignData FastSlowCampaign(Technique technique) {
  CampaignData campaign;
  campaign.name = "fastslow";
  campaign.fault_model = FaultModelKind::kTransientBitFlip;
  campaign.num_experiments = 8;
  campaign.technique = technique;
  campaign.inject_min_instr = 1;
  campaign.timeout_cycles = 100000;
  switch (technique) {
    case Technique::kScifi:
      campaign.target_name = ThorRdTarget::kTargetName;
      campaign.workload = "bubblesort";
      campaign.locations = {{"internal_regfile", ""}, {"internal_icache", ""}};
      campaign.inject_max_instr = 800;
      break;
    case Technique::kSwifiPreRuntime:
      campaign.target_name = SwifiSimTarget::kTargetName;
      campaign.workload = "fibonacci";
      campaign.locations = {{"memory.text", ""}};
      campaign.inject_max_instr = 400;
      break;
    case Technique::kSwifiRuntime:
      campaign.target_name = SwifiSimTarget::kTargetName;
      campaign.workload = "checksum";
      campaign.locations = {{"memory.text", ""}, {"memory.data", ""}};
      campaign.inject_max_instr = 600;
      break;
  }
  return campaign;
}

/// Runs `campaign` with the superblock path on or off; returns the saved
/// database file bytes.
std::string RunCampaignDb(const CampaignData& campaign, bool fast) {
  db::Database db;
  CampaignStore store(&db);
  std::string bytes;
  if (campaign.target_name == ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    card.set_use_fast_run(fast);
    EXPECT_TRUE(store
                    .PutTargetSystem(ThorRdTarget::DescribeTarget(
                        card, ThorRdTarget::kTargetName))
                    .ok());
    EXPECT_TRUE(store.PutCampaign(campaign).ok());
    ThorRdTarget target(&store, &card);
    EXPECT_TRUE(target.RunCampaign(campaign.name).ok());
    bytes = DbBytes(db, campaign.name + "_" + campaign.workload +
                            (fast ? "_fast" : "_slow"));
  } else {
    EXPECT_TRUE(store.PutTargetSystem(SwifiSimTarget::Describe()).ok());
    EXPECT_TRUE(store.PutCampaign(campaign).ok());
    SwifiSimTarget target(&store);
    target.set_use_fast_run(fast);
    EXPECT_TRUE(target.RunCampaign(campaign.name).ok());
    bytes = DbBytes(db, campaign.name + "_" + campaign.workload +
                            (fast ? "_fast" : "_slow"));
  }
  return bytes;
}

class FastSlowDbTest : public ::testing::TestWithParam<Technique> {};

TEST_P(FastSlowDbTest, DatabaseBytesIdentical) {
  const CampaignData campaign = FastSlowCampaign(GetParam());
  const std::string fast = RunCampaignDb(campaign, /*fast=*/true);
  const std::string slow = RunCampaignDb(campaign, /*fast=*/false);
  ASSERT_FALSE(fast.empty());
  EXPECT_EQ(fast, slow) << "fast-path campaign DB diverged for technique "
                        << TechniqueName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, FastSlowDbTest,
                         ::testing::Values(Technique::kScifi,
                                           Technique::kSwifiPreRuntime,
                                           Technique::kSwifiRuntime),
                         [](const auto& info) {
                           switch (info.param) {
                             case Technique::kScifi: return std::string("Scifi");
                             case Technique::kSwifiPreRuntime:
                               return std::string("SwifiPreRuntime");
                             case Technique::kSwifiRuntime:
                               return std::string("SwifiRuntime");
                           }
                           return std::string("Unknown");
                         });

}  // namespace
}  // namespace goofi::core
