// Tests for the simulated test card: the host<->target adapter that routes
// all scan access through the TAP controller.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "testcard/testcard.hpp"

namespace goofi::testcard {
namespace {

isa::AssembledProgram Program(const std::string& source) {
  return isa::Assemble(source).ValueOrDie();
}

class TestCardTest : public ::testing::Test {
 protected:
  SimTestCard card_;
};

TEST_F(TestCardTest, InitPowersDownCleanly) {
  ASSERT_TRUE(card_.Init().ok());
  EXPECT_FALSE(card_.cpu().halted());
  EXPECT_EQ(card_.cpu().cycles(), 0u);
}

TEST_F(TestCardTest, LoadWorkloadAndRunToCompletion) {
  ASSERT_TRUE(card_.Init().ok());
  ASSERT_TRUE(card_.LoadWorkload(Program("addi r1, r0, 3\nhalt\n")).ok());
  ASSERT_TRUE(card_.ResetTarget().ok());
  const auto result = card_.Run(0);
  EXPECT_EQ(result.outcome, cpu::StepOutcome::kHalted);
  EXPECT_EQ(card_.cpu().reg(1), 3u);
}

TEST_F(TestCardTest, EtextSplitsTextAndData) {
  ASSERT_TRUE(card_.Init().ok());
  ASSERT_TRUE(card_.LoadWorkload(Program(
                      "_start:\n"
                      "  li r1, buf\n"
                      "  stw r1, [r1]\n"
                      "  halt\n"
                      "_etext:\n"
                      "buf:\n"
                      "  .word 0\n"))
                  .ok());
  ASSERT_TRUE(card_.ResetTarget().ok());
  EXPECT_EQ(card_.Run(0).outcome, cpu::StepOutcome::kHalted)
      << "data segment must be writable";
}

TEST_F(TestCardTest, HostMemoryRoundTrip) {
  ASSERT_TRUE(card_.Init().ok());
  ASSERT_TRUE(card_.WriteMemory(0x1000, {1, 2, 3}).ok());
  const auto words = card_.ReadMemory(0x1000, 3).ValueOrDie();
  EXPECT_EQ(words, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_FALSE(card_.ReadMemory(0xFFFFFFF0, 8).ok());
  EXPECT_FALSE(card_.WriteMemory(3, {1}).ok());
}

TEST_F(TestCardTest, ReadScanChainReturnsCpuState) {
  ASSERT_TRUE(card_.Init().ok());
  card_.mutable_cpu().set_reg(4, 0xDEAD);
  const auto image = card_.ReadScanChain("internal_regfile", true).ValueOrDie();
  EXPECT_EQ(image.ExtractWord(4 * 32, 32), 0xDEADu);
}

TEST_F(TestCardTest, RestoringReadPreservesState) {
  ASSERT_TRUE(card_.Init().ok());
  card_.mutable_cpu().set_reg(9, 0x1234);
  (void)card_.ReadScanChain("internal_regfile", true).ValueOrDie();
  EXPECT_EQ(card_.cpu().reg(9), 0x1234u);
}

TEST_F(TestCardTest, DestructiveReadZeroesWritableCells) {
  ASSERT_TRUE(card_.Init().ok());
  card_.mutable_cpu().set_reg(9, 0x1234);
  (void)card_.ReadScanChain("internal_regfile", false).ValueOrDie();
  // The read pass shifted zeros in; the follow-up WriteScanChain in the
  // SCIFI sequence is what restores state.
  EXPECT_EQ(card_.cpu().reg(9), 0u);
}

TEST_F(TestCardTest, ReadModifyWriteInjectsFault) {
  ASSERT_TRUE(card_.Init().ok());
  card_.mutable_cpu().set_reg(5, 0b1000);
  auto image = card_.ReadScanChain("internal_regfile", false).ValueOrDie();
  image.Flip(5 * 32 + 0);  // flip bit 0 of r5
  ASSERT_TRUE(card_.WriteScanChain("internal_regfile", image).ok());
  EXPECT_EQ(card_.cpu().reg(5), 0b1001u);
}

TEST_F(TestCardTest, UnknownChainErrors) {
  ASSERT_TRUE(card_.Init().ok());
  EXPECT_FALSE(card_.ReadScanChain("bogus", true).ok());
  EXPECT_FALSE(card_.WriteScanChain("bogus", util::BitVec(8)).ok());
}

TEST_F(TestCardTest, WriteScanChainChecksImageSize) {
  ASSERT_TRUE(card_.Init().ok());
  EXPECT_FALSE(card_.WriteScanChain("internal_regfile", util::BitVec(7)).ok());
}

TEST_F(TestCardTest, TriggersRunThroughDebugUnit) {
  ASSERT_TRUE(card_.Init().ok());
  ASSERT_TRUE(card_.LoadWorkload(Program(
                      "loop:\n"
                      "  jmp loop\n"))
                  .ok());
  ASSERT_TRUE(card_.ResetTarget().ok());
  scan::Trigger trigger;
  trigger.kind = scan::TriggerKind::kInstrCount;
  trigger.count = 5;
  const int index = card_.AddTrigger(trigger);
  const auto result = card_.Run(0);
  EXPECT_EQ(result.fired_trigger, index);
  card_.ClearTriggers();
  const auto timeout = card_.Run(200);
  EXPECT_TRUE(timeout.timed_out);
}

TEST_F(TestCardTest, SingleStepExecutesOneInstruction) {
  ASSERT_TRUE(card_.Init().ok());
  ASSERT_TRUE(card_.LoadWorkload(Program("addi r1, r0, 1\nhalt\n")).ok());
  ASSERT_TRUE(card_.ResetTarget().ok());
  EXPECT_EQ(card_.SingleStep(), cpu::StepOutcome::kOk);
  EXPECT_EQ(card_.cpu().instructions_retired(), 1u);
  EXPECT_EQ(card_.SingleStep(), cpu::StepOutcome::kHalted);
}

TEST_F(TestCardTest, LinkTimeGrowsWithScanTraffic) {
  ASSERT_TRUE(card_.Init().ok());
  const double before = card_.link_time_us();
  (void)card_.ReadScanChain("internal_regfile", true).ValueOrDie();
  const double after_small = card_.link_time_us();
  EXPECT_GT(after_small, before);
  (void)card_.ReadScanChain("internal_icache", true).ValueOrDie();
  const double after_large = card_.link_time_us();
  // The icache chain is much longer than the regfile chain.
  EXPECT_GT(after_large - after_small, (after_small - before) * 2);
}

TEST_F(TestCardTest, WorkloadEntryFollowsStartSymbol) {
  ASSERT_TRUE(card_.Init().ok());
  ASSERT_TRUE(card_.LoadWorkload(Program(
                      ".word 0\n"
                      "_start:\n"
                      "  halt\n"))
                  .ok());
  EXPECT_EQ(card_.workload_entry(), 4u);
}

TEST(TestCardNoiseTest, BitErrorsCorruptScanTraffic) {
  LinkConfig link;
  link.bit_error_rate = 0.02;
  SimTestCard card(cpu::CpuConfig(), link);
  ASSERT_TRUE(card.Init().ok());
  for (int r = 1; r < 16; ++r) {
    card.mutable_cpu().set_reg(r, 0xAAAA5555u);
  }
  const auto image = card.ReadScanChain("internal_regfile", false).ValueOrDie();
  // With a 2% BER over 512 bits, corruption is overwhelmingly likely.
  util::BitVec expected(16 * 32);
  for (int r = 1; r < 16; ++r) {
    expected.DepositWord(static_cast<size_t>(r) * 32, 0xAAAA5555u, 32);
  }
  EXPECT_NE(image, expected);
}

TEST(TestCardNoiseTest, CleanLinkIsExact) {
  SimTestCard card;  // default: BER 0
  ASSERT_TRUE(card.Init().ok());
  for (int r = 1; r < 16; ++r) {
    card.mutable_cpu().set_reg(r, 0x0F0F0F0Fu);
  }
  const auto image = card.ReadScanChain("internal_regfile", true).ValueOrDie();
  for (int r = 1; r < 16; ++r) {
    EXPECT_EQ(image.ExtractWord(static_cast<size_t>(r) * 32, 32), 0x0F0F0F0Fu);
  }
}

}  // namespace
}  // namespace goofi::testcard
