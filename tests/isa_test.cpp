// Tests for the TRD32 ISA: encoding, decoding, register names, opcode table.
#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace goofi::isa {
namespace {

TEST(IsaTest, RegisterNamesAndAliases) {
  EXPECT_EQ(RegisterName(0), "r0");
  EXPECT_EQ(RegisterName(13), "r13");
  EXPECT_EQ(RegisterName(kLinkRegister), "lr");
  EXPECT_EQ(RegisterName(kStackPointer), "sp");
  EXPECT_FALSE(RegisterName(16).has_value());
  EXPECT_FALSE(RegisterName(-1).has_value());
}

TEST(IsaTest, ParseRegister) {
  EXPECT_EQ(ParseRegister("r0"), 0);
  EXPECT_EQ(ParseRegister("R7"), 7);
  EXPECT_EQ(ParseRegister("sp"), kStackPointer);
  EXPECT_EQ(ParseRegister("LR"), kLinkRegister);
  EXPECT_FALSE(ParseRegister("r16").has_value());
  EXPECT_FALSE(ParseRegister("x3").has_value());
  EXPECT_FALSE(ParseRegister("").has_value());
}

TEST(IsaTest, OpcodeSpaceIsSparse) {
  int valid = 0;
  for (int op = 0; op < 64; ++op) {
    if (IsValidOpcode(static_cast<uint8_t>(op))) ++valid;
  }
  EXPECT_EQ(valid, 34);
  EXPECT_LT(valid, 64) << "sparse opcodes are needed for illegal-opcode EDM";
}

TEST(IsaTest, MnemonicLookupRoundTrip) {
  for (int op = 0; op < 64; ++op) {
    if (!IsValidOpcode(static_cast<uint8_t>(op))) continue;
    const OpcodeInfo& info = GetOpcodeInfo(static_cast<Opcode>(op));
    const OpcodeInfo* found = FindOpcodeByMnemonic(info.mnemonic);
    ASSERT_NE(found, nullptr) << info.mnemonic;
    EXPECT_EQ(found->op, info.op);
  }
  EXPECT_EQ(FindOpcodeByMnemonic("bogus"), nullptr);
  EXPECT_NE(FindOpcodeByMnemonic("ADD"), nullptr) << "case-insensitive";
}

TEST(IsaTest, DecodeRejectsIllegalOpcode) {
  // Opcode 0x01 is undefined.
  EXPECT_FALSE(Decode(0x01u << 26).ok());
  EXPECT_FALSE(Decode(0x3Fu << 26).ok());
}

TEST(IsaTest, DecodeRejectsReservedBitsInRType) {
  Instruction add{Opcode::kAdd, 1, 2, 3, 0};
  const uint32_t word = Encode(add);
  EXPECT_TRUE(Decode(word).ok());
  EXPECT_FALSE(Decode(word | 1u).ok()) << "nonzero reserved bits";
}

TEST(IsaTest, DecodeRejectsReservedBitsInNop) {
  const uint32_t nop = Encode(Instruction{Opcode::kNop, 0, 0, 0, 0});
  EXPECT_TRUE(Decode(nop).ok());
  EXPECT_FALSE(Decode(nop | 0x100u).ok());
}

TEST(IsaTest, ImmediateSignExtension) {
  Instruction addi{Opcode::kAddi, 1, 2, 0, -5};
  auto decoded = Decode(Encode(addi)).ValueOrDie();
  EXPECT_EQ(decoded.imm, -5);

  Instruction jmp{Opcode::kJmp, 0, 0, 0, -1000};
  auto jback = Decode(Encode(jmp)).ValueOrDie();
  EXPECT_EQ(jback.imm, -1000);
}

TEST(IsaTest, ImmediateLimits) {
  Instruction addi{Opcode::kAddi, 1, 2, 0, kImm18Max};
  EXPECT_EQ(Decode(Encode(addi)).ValueOrDie().imm, kImm18Max);
  addi.imm = kImm18Min;
  EXPECT_EQ(Decode(Encode(addi)).ValueOrDie().imm, kImm18Min);
}

// Property-style parameterized sweep: every valid opcode round-trips through
// Encode/Decode with representative field values.
class EncodeDecodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncodeDecodeRoundTrip, RoundTrips) {
  const uint8_t op_byte = static_cast<uint8_t>(GetParam());
  if (!IsValidOpcode(op_byte)) GTEST_SKIP() << "undefined opcode";
  const Opcode op = static_cast<Opcode>(op_byte);
  const OpcodeInfo& info = GetOpcodeInfo(op);

  Instruction ins;
  ins.op = op;
  switch (info.format) {
    case Format::kR:
      ins.rd = 3;
      ins.rs1 = 7;
      ins.rs2 = 12;
      break;
    case Format::kI:
      ins.rd = 5;
      ins.rs1 = 9;
      ins.imm = -123;
      break;
    case Format::kJ:
      ins.imm = 4567;
      break;
    case Format::kNone:
      break;
  }
  auto decoded = Decode(Encode(ins));
  ASSERT_TRUE(decoded.ok()) << info.mnemonic;
  EXPECT_EQ(decoded.value(), ins) << info.mnemonic;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeDecodeRoundTrip,
                         ::testing::Range(0, 64));

}  // namespace
}  // namespace goofi::isa
