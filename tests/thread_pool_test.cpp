// Unit tests for util::ThreadPool: task completion, result/exception
// propagation through futures, and shutdown semantics.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace goofi::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  int sum = 0;
  for (auto& future : futures) sum += future.get();
  int expected = 0;
  for (int i = 0; i < 32; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return 7; });
  auto boom = pool.Submit(
      []() -> int { throw std::runtime_error("injected failure"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(1);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++counter;
    });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndBlocksNewWork) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([]() {}), std::runtime_error);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.Submit([]() { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::DefaultWorkers(), 1);
}

}  // namespace
}  // namespace goofi::util
