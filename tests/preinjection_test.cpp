// Tests for the pre-injection (liveness) analysis — the paper's §4 extension
// for skipping injections into locations that do not hold live data.
#include <gtest/gtest.h>

#include "core/preinjection.hpp"

namespace goofi::core {
namespace {

env::WorkloadSpec InlineWorkload(const std::string& source) {
  env::WorkloadSpec spec;
  spec.name = "inline";
  spec.source = source;
  spec.result_symbol = "result";
  spec.result_words = 1;
  return spec;
}

TEST(LivenessTest, StraightLineRegisterLifetimes) {
  // r1 written @1, read @3; r2 written @2, read @3; r3 written @3, read @4
  // (store); never again.
  const auto analyzer = LivenessAnalyzer::BuildFromSpec(
                            InlineWorkload("_start:\n"
                                           "  addi r1, r0, 5\n"   // t=1
                                           "  addi r2, r0, 6\n"   // t=2
                                           "  add r3, r1, r2\n"   // t=3
                                           "  li r4, result\n"    // t=4,5
                                           "  stw r3, [r4]\n"     // t=6
                                           "  halt\n"             // t=7
                                           "_etext:\n"
                                           "result:\n"
                                           "  .word 0\n"),
                            cpu::CpuConfig())
                            .ValueOrDie();
  // After t=1 (addi r1 executed), next r1 access is the read at t=3: live.
  EXPECT_TRUE(analyzer->RegisterLive(1, 1));
  EXPECT_TRUE(analyzer->RegisterLive(1, 2));
  // After the read at t=3, r1 is never accessed again: dead.
  EXPECT_FALSE(analyzer->RegisterLive(1, 3));
  // Before r2 is written (t<=1), the next access is the WRITE at t=2: dead.
  EXPECT_FALSE(analyzer->RegisterLive(2, 0));
  EXPECT_TRUE(analyzer->RegisterLive(2, 2));
  // r3 becomes dead after the store reads it at t=6.
  EXPECT_TRUE(analyzer->RegisterLive(3, 4));
  EXPECT_FALSE(analyzer->RegisterLive(3, 6));
  // r9 is never used at all.
  EXPECT_FALSE(analyzer->RegisterLive(9, 0));
  EXPECT_FALSE(analyzer->RegisterLive(16, 0)) << "out of range is dead";
}

TEST(LivenessTest, MemoryWordLifetimes) {
  const auto analyzer = LivenessAnalyzer::BuildFromSpec(
                            InlineWorkload("_start:\n"
                                           "  li r4, scratch\n"   // t=1,2
                                           "  addi r1, r0, 7\n"   // t=3
                                           "  stw r1, [r4]\n"     // t=4 write
                                           "  ldw r2, [r4]\n"     // t=5 read
                                           "  li r5, result\n"
                                           "  stw r2, [r5]\n"
                                           "  halt\n"
                                           "_etext:\n"
                                           "scratch:\n"
                                           "  .word 0\n"
                                           "result:\n"
                                           "  .word 0\n"),
                            cpu::CpuConfig())
                            .ValueOrDie();
  const auto program = isa::Assemble(
      "_start: nop\n_etext:\n");  // just to silence unused warnings pattern
  (void)program;
  // Before the store, the next access to `scratch` is a write: dead.
  // (scratch address: find from a fresh assembly of the same source.)
  const auto assembled = isa::Assemble(
                             "_start:\n"
                             "  li r4, scratch\n"
                             "  addi r1, r0, 7\n"
                             "  stw r1, [r4]\n"
                             "  ldw r2, [r4]\n"
                             "  li r5, result\n"
                             "  stw r2, [r5]\n"
                             "  halt\n"
                             "_etext:\n"
                             "scratch:\n"
                             "  .word 0\n"
                             "result:\n"
                             "  .word 0\n")
                             .ValueOrDie();
  const uint32_t scratch = assembled.symbols.at("scratch");
  const uint32_t result = assembled.symbols.at("result");
  EXPECT_FALSE(analyzer->MemoryWordLive(scratch, 0));
  // Between store (t=4) and load (t=5) it is live.
  EXPECT_TRUE(analyzer->MemoryWordLive(scratch, 4));
  // After the load, dead.
  EXPECT_FALSE(analyzer->MemoryWordLive(scratch, 5));
  // `result` is read by the host at the end: live after its final write.
  EXPECT_TRUE(analyzer->MemoryWordLive(result, 1000));
  // An address never touched is dead.
  EXPECT_FALSE(analyzer->MemoryWordLive(0x8000, 0));
}

TEST(LivenessTest, FilterClassifiesCandidateKinds) {
  const auto analyzer =
      LivenessAnalyzer::Build("bubblesort", cpu::CpuConfig()).ValueOrDie();
  const auto filter = analyzer->MakeFilter();

  FaultCandidate pipeline;
  pipeline.scan = true;
  pipeline.chain = "boundary";
  pipeline.cell_name = "pipeline.alu_result";
  EXPECT_FALSE(filter(pipeline, 10)) << "pipeline latches are always dead";

  FaultCandidate pc;
  pc.scan = true;
  pc.chain = "internal_core";
  pc.cell_name = "core.pc";
  EXPECT_TRUE(filter(pc, 10)) << "pc is conservatively live";

  FaultCandidate cache;
  cache.scan = true;
  cache.chain = "internal_icache";
  cache.cell_name = "icache.line3.tag";
  EXPECT_TRUE(filter(cache, 10));
}

TEST(LivenessTest, TraceLengthMatchesWorkload) {
  const auto analyzer =
      LivenessAnalyzer::Build("fibonacci", cpu::CpuConfig()).ValueOrDie();
  // fib(24): init 4 + li(2) + 24 iterations x 5 + final 4-ish. Just sanity.
  EXPECT_GT(analyzer->trace_length(), 50u);
  EXPECT_LT(analyzer->trace_length(), 1000u);
}

TEST(LivenessTest, ControlWorkloadTraceBoundedByIterations) {
  const auto analyzer = LivenessAnalyzer::Build("pendulum_pd", cpu::CpuConfig(),
                                                /*max_instr=*/1'000'000,
                                                /*max_iterations=*/50)
                            .ValueOrDie();
  EXPECT_GT(analyzer->trace_length(), 50u * 10u);
  EXPECT_LT(analyzer->trace_length(), 50u * 100u);
}

TEST(LivenessTest, UnknownWorkloadFails) {
  EXPECT_FALSE(LivenessAnalyzer::Build("nope", cpu::CpuConfig()).ok());
}

TEST(LivenessTest, LiveRegistersAreAMinorityLateInTheRun) {
  // The paper's motivation: most (location, time) pairs are dead. For the
  // bubblesort workload past its sorting loops, few registers stay live.
  const auto analyzer =
      LivenessAnalyzer::Build("bubblesort", cpu::CpuConfig()).ValueOrDie();
  const uint64_t t = analyzer->trace_length() - 5;
  int live = 0;
  for (int reg = 0; reg < 16; ++reg) {
    if (analyzer->RegisterLive(reg, t)) ++live;
  }
  EXPECT_LT(live, 8);
}

}  // namespace
}  // namespace goofi::core
