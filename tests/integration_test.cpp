// Integration tests: the full GOOFI pipeline across all modules — campaign
// configuration, fault injection through the TAP scan path, database
// persistence between phases, and SQL analysis over the logged results.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "db/sql_executor.hpp"
#include "testcard/testcard.hpp"

namespace goofi {
namespace {

using core::CampaignData;
using core::CampaignStore;
using core::Outcome;
using core::Technique;
using core::ThorRdTarget;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : store_(&db_), target_(&store_, &card_) {
    EXPECT_TRUE(store_
                    .PutTargetSystem(ThorRdTarget::DescribeTarget(
                        card_, ThorRdTarget::kTargetName))
                    .ok());
  }

  CampaignData Campaign(const std::string& name, const std::string& workload) {
    CampaignData campaign;
    campaign.name = name;
    campaign.target_name = ThorRdTarget::kTargetName;
    campaign.workload = workload;
    campaign.locations = {{"internal_regfile", ""}};
    campaign.num_experiments = 30;
    campaign.inject_min_instr = 1;
    campaign.inject_max_instr = 900;
    campaign.timeout_cycles = 150000;
    return campaign;
  }

  db::Database db_;
  CampaignStore store_;
  testcard::SimTestCard card_;
  ThorRdTarget target_;
};

TEST_F(IntegrationTest, FullPipelineWithPersistenceBetweenPhases) {
  // Set-up phase, then save the database before injecting (host crash
  // resilience: configuration survives independently of results).
  ASSERT_TRUE(store_.PutCampaign(Campaign("pipeline", "checksum")).ok());
  const std::string path = testing::TempDir() + "goofi_integration.db";
  ASSERT_TRUE(db_.Save(path).ok());

  // Fault-injection phase.
  ASSERT_TRUE(target_.FaultInjectorScifi("pipeline").ok());
  ASSERT_TRUE(db_.Save(path).ok());

  // Analysis phase on a *reloaded* database (a different host, per the
  // paper's portability story).
  db::Database reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  CampaignStore store2(&reloaded);
  const auto report = core::AnalyzeCampaign(store2, "pipeline").ValueOrDie();
  EXPECT_EQ(report.total, 30);
  EXPECT_EQ(report.Count(Outcome::kDetected) + report.Count(Outcome::kEscaped) +
                report.Count(Outcome::kLatent) + report.Count(Outcome::kOverwritten),
            30);
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, SqlAnalysisOverLoggedSystemState) {
  ASSERT_TRUE(store_.PutCampaign(Campaign("sqlq", "fibonacci")).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("sqlq").ok());

  // Count experiments via SQL exactly like a user analysis script (§3.4).
  const auto count =
      db::ExecuteSql(db_,
                     "SELECT COUNT(*) FROM LoggedSystemState "
                     "WHERE campaignName = 'sqlq' AND parentExperiment IS NULL")
          .ValueOrDie();
  EXPECT_EQ(count.rows[0][0].as_int(), 31);  // 30 + reference

  // Join across the Fig. 4 foreign keys.
  const auto join =
      db::ExecuteSql(db_,
                     "SELECT COUNT(*) FROM LoggedSystemState l "
                     "JOIN CampaignData c ON l.campaignName = c.campaignName "
                     "JOIN TargetSystemData t ON c.targetName = t.targetName")
          .ValueOrDie();
  EXPECT_EQ(join.rows[0][0].as_int(), 31);
}

TEST_F(IntegrationTest, ForeignKeysProtectCampaignIntegrity) {
  ASSERT_TRUE(store_.PutCampaign(Campaign("fk", "fibonacci")).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("fk").ok());
  // Campaign rows cannot be deleted while experiments reference them.
  EXPECT_FALSE(
      db::ExecuteSql(db_, "DELETE FROM CampaignData WHERE campaignName = 'fk'")
          .ok());
  // Target rows cannot be deleted while campaigns reference them.
  EXPECT_FALSE(db::ExecuteSql(db_, "DELETE FROM TargetSystemData").ok());
  // Deleting bottom-up succeeds.
  ASSERT_TRUE(db::ExecuteSql(db_, "DELETE FROM LoggedSystemState").ok());
  EXPECT_TRUE(
      db::ExecuteSql(db_, "DELETE FROM CampaignData WHERE campaignName = 'fk'")
          .ok());
}

TEST_F(IntegrationTest, TargetDescriptionMatchesLiveChains) {
  const auto stored =
      store_.GetTargetSystem(ThorRdTarget::kTargetName).ValueOrDie();
  // Every chain the card exposes appears in the stored configuration data.
  for (const auto& chain : card_.chains().chains()) {
    EXPECT_NE(stored.chain_data.find(chain.name()), std::string::npos)
        << chain.name();
  }
  EXPECT_NE(stored.chain_data.find("regfile.r3"), std::string::npos);
  EXPECT_NE(stored.chain_data.find("icache.line63.parity"), std::string::npos);
}

TEST_F(IntegrationTest, CruiseControlCampaignEndToEnd) {
  CampaignData campaign = Campaign("cruise", "cruise_pi");
  campaign.max_iterations = 150;
  campaign.timeout_cycles = 600000;
  campaign.inject_max_instr = 2000;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("cruise").ok());
  const auto reference = store_.GetExperiment("cruise/ref").ValueOrDie();
  EXPECT_EQ(reference.state.iterations, 150);
  EXPECT_FALSE(reference.state.env_failed) << "PI loop must hold the setpoint";
  const auto report = core::AnalyzeCampaign(store_, "cruise").ValueOrDie();
  EXPECT_EQ(report.total, 30);
}

TEST_F(IntegrationTest, MergedCampaignRuns) {
  ASSERT_TRUE(store_.PutCampaign(Campaign("m1", "bubblesort")).ok());
  CampaignData second = Campaign("m2", "bubblesort");
  second.locations = {{"internal_core", ""}};
  ASSERT_TRUE(store_.PutCampaign(second).ok());
  ASSERT_TRUE(store_.MergeCampaigns({"m1", "m2"}, "merged").ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("merged").ok());
  const auto report = core::AnalyzeCampaign(store_, "merged").ValueOrDie();
  EXPECT_EQ(report.total, 60) << "merged campaign sums experiment counts";
}

TEST_F(IntegrationTest, EdmAblationChangesDetections) {
  // The same campaign against a target with most EDMs disabled must detect
  // fewer errors — detections turn into escapes/latents.
  CampaignData campaign = Campaign("edm_on", "bubblesort");
  campaign.locations = {{"internal_core", ""}};
  campaign.num_experiments = 60;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("edm_on").ok());
  const auto with_edms = core::AnalyzeCampaign(store_, "edm_on").ValueOrDie();

  cpu::CpuConfig weak;
  weak.edms.illegal_opcode = false;
  weak.edms.control_flow = false;
  weak.edms.misaligned_access = false;
  weak.edms.out_of_range_access = false;
  weak.edms.memory_protection = false;
  weak.edms.arithmetic_overflow = false;
  testcard::SimTestCard weak_card(weak);
  ThorRdTarget weak_target(&store_, &weak_card);
  CampaignData ablated = campaign;
  ablated.name = "edm_off";
  ASSERT_TRUE(store_.PutCampaign(ablated).ok());
  ASSERT_TRUE(weak_target.FaultInjectorScifi("edm_off").ok());
  const auto without_edms = core::AnalyzeCampaign(store_, "edm_off").ValueOrDie();

  EXPECT_GT(with_edms.Count(Outcome::kDetected),
            without_edms.Count(Outcome::kDetected));
}

TEST_F(IntegrationTest, DetailRerunTraceShowsPropagation) {
  CampaignData campaign = Campaign("trace", "fibonacci");
  campaign.num_experiments = 10;
  campaign.inject_max_instr = 100;
  ASSERT_TRUE(store_.PutCampaign(campaign).ok());
  ASSERT_TRUE(target_.FaultInjectorScifi("trace").ok());
  ASSERT_TRUE(target_.RerunDetailed("trace/e0003").ok());

  // Detail rows form a per-instruction trace: instret strictly increases.
  auto rows = store_.ExperimentsOf("trace").ValueOrDie();
  uint64_t prev = 0;
  int seen = 0;
  for (const auto& row : rows) {
    if (row.parent_experiment != "trace/e0003/detail") continue;
    EXPECT_GT(row.state.instret, prev);
    prev = row.state.instret;
    ++seen;
  }
  EXPECT_GT(seen, 3);
}

}  // namespace
}  // namespace goofi
