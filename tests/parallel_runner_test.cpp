// Determinism and semantics tests for core::ParallelCampaignRunner.
//
// The headline property: a parallel campaign run leaves the database
// byte-identical to a serial FaultInjectionAlgorithms::RunCampaign of the
// same campaign — same LoggedSystemState rows (names, experimentData,
// stateVector), same insertion order, same Stats — at any worker count.
#include "core/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::core {
namespace {

CampaignData ScifiCampaign() {
  CampaignData campaign;
  campaign.name = "par_scifi";
  campaign.target_name = ThorRdTarget::kTargetName;
  campaign.technique = Technique::kScifi;
  campaign.num_experiments = 12;
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1000;
  campaign.timeout_cycles = 100000;
  return campaign;
}

CampaignData SwifiCampaign() {
  CampaignData campaign;
  campaign.name = "par_swifi";
  campaign.target_name = SwifiSimTarget::kTargetName;
  campaign.technique = Technique::kSwifiPreRuntime;
  campaign.num_experiments = 12;
  campaign.workload = "fibonacci";
  campaign.locations = {{"memory.text", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 500;
  campaign.timeout_cycles = 100000;
  return campaign;
}

/// Everything a run leaves behind that determinism is asserted over.
struct RunResult {
  util::Status status;
  std::vector<CampaignStore::ExperimentRow> rows;  ///< insertion order
  FaultInjectionAlgorithms::Stats stats;
  std::string db_bytes;  ///< the Save() file, CRC trailer and all
};

/// One self-contained session: fresh database + store + registered target.
struct Session {
  db::Database db;
  CampaignStore store;

  explicit Session(const CampaignData& campaign) : store(&db) {
    if (campaign.target_name == ThorRdTarget::kTargetName) {
      testcard::SimTestCard card;
      EXPECT_TRUE(store
                      .PutTargetSystem(ThorRdTarget::DescribeTarget(
                          card, ThorRdTarget::kTargetName))
                      .ok());
    } else {
      EXPECT_TRUE(store.PutTargetSystem(SwifiSimTarget::Describe()).ok());
    }
    EXPECT_TRUE(store.PutCampaign(campaign).ok());
  }

  RunResult Snapshot(util::Status status,
                     const FaultInjectionAlgorithms::Stats& stats,
                     const std::string& campaign_name) {
    RunResult result;
    result.status = std::move(status);
    result.stats = stats;
    auto rows = store.ExperimentsOf(campaign_name);
    if (rows.ok()) result.rows = std::move(rows).value();
    const std::string path =
        testing::TempDir() + "goofi_parallel_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".db";
    EXPECT_TRUE(db.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    result.db_bytes = buf.str();
    std::remove(path.c_str());
    return result;
  }
};

ParallelCampaignRunner::TargetFactory FactoryFor(const CampaignData& campaign,
                                                 CampaignStore* store) {
  return campaign.target_name == ThorRdTarget::kTargetName
             ? MakeSimThorFactory(store)
             : MakeSwifiSimFactory(store);
}

RunResult RunSerial(const CampaignData& campaign,
                    ProgressMonitor* monitor = nullptr) {
  Session session(campaign);
  if (campaign.target_name == ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    ThorRdTarget target(&session.store, &card);
    target.SetProgressMonitor(monitor);
    return session.Snapshot(target.RunCampaign(campaign.name), target.stats(),
                            campaign.name);
  }
  SwifiSimTarget target(&session.store);
  target.SetProgressMonitor(monitor);
  return session.Snapshot(target.RunCampaign(campaign.name), target.stats(),
                          campaign.name);
}

RunResult RunParallel(const CampaignData& campaign, int workers,
                      int batch_rows = 0, ProgressMonitor* monitor = nullptr) {
  Session session(campaign);
  ParallelCampaignRunner runner(&session.store,
                                FactoryFor(campaign, &session.store), workers);
  if (batch_rows > 0) runner.SetCommitBatchRows(batch_rows);
  runner.SetProgressMonitor(monitor);
  return session.Snapshot(runner.Run(campaign.name), runner.stats(),
                          campaign.name);
}

void ExpectIdentical(const RunResult& serial, const RunResult& parallel) {
  ASSERT_TRUE(serial.status.ok()) << serial.status.ToString();
  ASSERT_TRUE(parallel.status.ok()) << parallel.status.ToString();
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].experiment_name, parallel.rows[i].experiment_name)
        << "row " << i << " out of order";
    EXPECT_EQ(serial.rows[i].parent_experiment,
              parallel.rows[i].parent_experiment);
    EXPECT_EQ(serial.rows[i].experiment_data, parallel.rows[i].experiment_data);
    EXPECT_EQ(serial.rows[i].state.Serialize(),
              parallel.rows[i].state.Serialize());
  }
  EXPECT_EQ(serial.stats, parallel.stats);
  EXPECT_EQ(serial.db_bytes, parallel.db_bytes)
      << "database files must be byte-identical";
}

TEST(ParallelRunnerTest, ScifiMatchesSerialAtEveryWorkerCount) {
  const CampaignData campaign = ScifiCampaign();
  const RunResult serial = RunSerial(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectIdentical(serial, RunParallel(campaign, workers));
  }
}

TEST(ParallelRunnerTest, SwifiPreRuntimeMatchesSerialAtEveryWorkerCount) {
  const CampaignData campaign = SwifiCampaign();
  const RunResult serial = RunSerial(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectIdentical(serial, RunParallel(campaign, workers));
  }
}

TEST(ParallelRunnerTest, CommitBatchSizeDoesNotAffectContents) {
  const CampaignData campaign = ScifiCampaign();
  const RunResult serial = RunSerial(campaign);
  ExpectIdentical(serial, RunParallel(campaign, 4, /*batch_rows=*/1));
  ExpectIdentical(serial, RunParallel(campaign, 4, /*batch_rows=*/1000));
}

TEST(ParallelRunnerTest, DetailModeRowsCommitInOrder) {
  CampaignData campaign = ScifiCampaign();
  campaign.name = "par_detail";
  campaign.log_mode = LogMode::kDetail;
  campaign.num_experiments = 3;
  campaign.inject_max_instr = 200;
  const RunResult serial = RunSerial(campaign);
  // Detail rows reference their main row via parentExperiment — the batched
  // insert path must resolve those intra-batch foreign keys.
  ASSERT_GT(serial.rows.size(), 4u) << "expected detail rows";
  ExpectIdentical(serial, RunParallel(campaign, 2));
}

TEST(ParallelRunnerTest, ResumeSkipsLoggedExperimentsAndCompletesCampaign) {
  const CampaignData campaign = ScifiCampaign();

  // A full serial run is the reference picture.
  const RunResult full = RunSerial(campaign);

  // Serially run the first 5 experiments, then let the parallel runner
  // resume the rest in the same session.
  Session session(campaign);
  testcard::SimTestCard card;
  ThorRdTarget target(&session.store, &card);
  CountingMonitor stopper(/*limit=*/5);
  target.SetProgressMonitor(&stopper);
  ASSERT_TRUE(target.RunCampaign(campaign.name).ok());
  ASSERT_EQ(target.stats().experiments_run, 5);

  ParallelCampaignRunner runner(&session.store,
                                MakeSimThorFactory(&session.store), 3);
  const RunResult resumed =
      session.Snapshot(runner.Run(campaign.name), runner.stats(), campaign.name);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_EQ(resumed.stats.experiments_resumed, 5);
  EXPECT_EQ(resumed.stats.experiments_run, campaign.num_experiments - 5);
  EXPECT_EQ(full.db_bytes, resumed.db_bytes);
}

TEST(ParallelRunnerTest, EarlyStopMatchesSeriallyStoppedRun) {
  const CampaignData campaign = ScifiCampaign();
  CountingMonitor serial_stopper(/*limit=*/4);
  const RunResult serial = RunSerial(campaign, &serial_stopper);
  CountingMonitor parallel_stopper(/*limit=*/4);
  const RunResult parallel =
      RunParallel(campaign, 4, /*batch_rows=*/0, &parallel_stopper);
  EXPECT_EQ(parallel_stopper.calls(), 4);
  ExpectIdentical(serial, parallel);
  EXPECT_EQ(parallel.stats.experiments_run, 4);
}

TEST(ParallelRunnerTest, ProgressCallbacksArriveInExperimentOrder) {
  class OrderMonitor final : public ProgressMonitor {
   public:
    bool OnExperiment(int done, int, const LoggedState&) override {
      ordered_ = ordered_ && done == last_ + 1;
      last_ = done;
      return true;
    }
    bool ordered() const { return ordered_; }
    int last() const { return last_; }

   private:
    bool ordered_ = true;
    int last_ = 0;
  };
  OrderMonitor monitor;
  const CampaignData campaign = ScifiCampaign();
  const RunResult result =
      RunParallel(campaign, 8, /*batch_rows=*/0, &monitor);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(monitor.ordered());
  EXPECT_EQ(monitor.last(), campaign.num_experiments);
}

TEST(ParallelRunnerTest, UnknownCampaignFails) {
  CampaignData campaign = ScifiCampaign();
  Session session(campaign);
  ParallelCampaignRunner runner(&session.store,
                                MakeSimThorFactory(&session.store), 2);
  EXPECT_FALSE(runner.Run("ghost").ok());
}

TEST(ParallelRunnerTest, BadLocationSelectorFailsBeforeDispatch) {
  CampaignData campaign = ScifiCampaign();
  campaign.name = "par_bad";
  campaign.locations = {{"no_such_chain", ""}};
  Session session(campaign);
  ParallelCampaignRunner runner(&session.store,
                                MakeSimThorFactory(&session.store), 2);
  EXPECT_FALSE(runner.Run(campaign.name).ok());
}

TEST(ParallelRunnerTest, LivenessFilterStatsMatchSerial) {
  const CampaignData campaign = ScifiCampaign();
  auto analyzer =
      LivenessAnalyzer::Build(campaign.workload, cpu::CpuConfig()).ValueOrDie();

  Session serial_session(campaign);
  testcard::SimTestCard card;
  ThorRdTarget target(&serial_session.store, &card);
  target.SetLivenessFilter(analyzer->MakeFilter());
  const RunResult serial = serial_session.Snapshot(
      target.RunCampaign(campaign.name), target.stats(), campaign.name);

  Session parallel_session(campaign);
  ParallelCampaignRunner runner(
      &parallel_session.store, MakeSimThorFactory(&parallel_session.store), 4);
  runner.SetLivenessFilter(analyzer->MakeFilter());
  const RunResult parallel = parallel_session.Snapshot(
      runner.Run(campaign.name), runner.stats(), campaign.name);

  ASSERT_TRUE(serial.stats.injections_skipped_dead > 0);
  ExpectIdentical(serial, parallel);
}

}  // namespace
}  // namespace goofi::core
