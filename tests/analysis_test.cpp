// Tests for the §3.4 analysis phase: experiment classification and campaign
// aggregation.
#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace goofi::core {
namespace {

LoggedState Reference() {
  LoggedState state;
  state.halted = true;
  state.cycles = 1000;
  state.instret = 800;
  state.outputs = {0x1234};
  state.scan_images["internal_core"] = "0101";
  return state;
}

TEST(ClassifyTest, DetectedWinsOverEverything) {
  LoggedState exp = Reference();
  exp.detected = true;
  exp.edm = "cache_parity_instr";
  exp.outputs = {0xBAD};      // even with wrong outputs...
  exp.env_failed = true;      // ...and a fallen plant
  const auto cls = Classify(Reference(), exp);
  EXPECT_EQ(cls.outcome, Outcome::kDetected);
  EXPECT_EQ(cls.mechanism, "cache_parity_instr");
}

TEST(ClassifyTest, WrongOutputsEscapeAsValueFailure) {
  LoggedState exp = Reference();
  exp.outputs = {0x9999};
  const auto cls = Classify(Reference(), exp);
  EXPECT_EQ(cls.outcome, Outcome::kEscaped);
  EXPECT_TRUE(cls.value_failure);
}

TEST(ClassifyTest, EnvFailureEscapesAsValueFailure) {
  LoggedState exp = Reference();
  exp.env_failed = true;
  const auto cls = Classify(Reference(), exp);
  EXPECT_EQ(cls.outcome, Outcome::kEscaped);
  EXPECT_TRUE(cls.value_failure);
}

TEST(ClassifyTest, TimeoutEscapesAsTimelinessViolation) {
  LoggedState exp = Reference();
  exp.halted = false;
  exp.timed_out = true;
  const auto cls = Classify(Reference(), exp);
  EXPECT_EQ(cls.outcome, Outcome::kEscaped);
  EXPECT_TRUE(cls.timeliness_violation);
}

TEST(ClassifyTest, StateDifferenceIsLatent) {
  LoggedState exp = Reference();
  exp.scan_images["internal_core"] = "0111";
  const auto cls = Classify(Reference(), exp);
  EXPECT_EQ(cls.outcome, Outcome::kLatent);
}

TEST(ClassifyTest, IdenticalStateIsOverwritten) {
  const auto cls = Classify(Reference(), Reference());
  EXPECT_EQ(cls.outcome, Outcome::kOverwritten);
}

TEST(ClassifyTest, CycleCountDifferenceAloneIsNotAnError) {
  // Timing may legitimately differ (cache effects); only the observable
  // state vector and outputs matter.
  LoggedState exp = Reference();
  exp.cycles += 50;
  exp.instret += 10;
  const auto cls = Classify(Reference(), exp);
  EXPECT_EQ(cls.outcome, Outcome::kOverwritten);
}

// --- report aggregation --------------------------------------------------------

TEST(ReportTest, CoverageMath) {
  AnalysisReport report;
  report.total = 10;
  report.by_outcome[Outcome::kDetected] = 3;
  report.by_outcome[Outcome::kEscaped] = 1;
  report.by_outcome[Outcome::kLatent] = 2;
  report.by_outcome[Outcome::kOverwritten] = 4;
  EXPECT_DOUBLE_EQ(report.ErrorCoverage(), 0.75);
  EXPECT_DOUBLE_EQ(report.EffectivenessRatio(), 0.4);
  EXPECT_EQ(report.Count(Outcome::kLatent), 2);
}

TEST(ReportTest, CoverageWithNoEffectiveErrorsIsOne) {
  AnalysisReport report;
  report.total = 5;
  report.by_outcome[Outcome::kOverwritten] = 5;
  EXPECT_DOUBLE_EQ(report.ErrorCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(report.EffectivenessRatio(), 0.0);
}

TEST(ReportTest, ToStringListsMechanisms) {
  AnalysisReport report;
  report.campaign = "camp";
  report.total = 2;
  report.by_outcome[Outcome::kDetected] = 2;
  report.detected_by_mechanism["illegal_opcode"] = 1;
  report.detected_by_mechanism["watchdog_timeout"] = 1;
  const std::string text = report.ToString();
  EXPECT_NE(text.find("illegal_opcode"), std::string::npos);
  EXPECT_NE(text.find("watchdog_timeout"), std::string::npos);
  EXPECT_NE(text.find("camp"), std::string::npos);
}

// --- campaign-level analysis over a store ---------------------------------------

class AnalyzeCampaignTest : public ::testing::Test {
 protected:
  AnalyzeCampaignTest() : store_(&db_) {
    TargetSystemData target;
    target.name = "t";
    EXPECT_TRUE(store_.PutTargetSystem(target).ok());
    CampaignData campaign;
    campaign.name = "c";
    campaign.target_name = "t";
    campaign.workload = "w";
    EXPECT_TRUE(store_.PutCampaign(campaign).ok());
    EXPECT_TRUE(store_
                    .PutExperiment(CampaignStore::ReferenceName("c"), "", "c",
                                   "", Reference())
                    .ok());
  }

  void AddExperiment(const std::string& name, const LoggedState& state,
                     const std::string& data = "", const std::string& parent = "") {
    ASSERT_TRUE(store_.PutExperiment(name, parent, "c", data, state).ok());
  }

  db::Database db_;
  CampaignStore store_;
};

TEST_F(AnalyzeCampaignTest, AggregatesAllOutcomeKinds) {
  LoggedState detected = Reference();
  detected.detected = true;
  detected.edm = "illegal_opcode";
  AddExperiment("c/e0", detected,
                "faults=transient_bitflip,internal_core,3,core.ir,0,0,5,0");

  LoggedState escaped = Reference();
  escaped.outputs = {0xBAD};
  AddExperiment("c/e1", escaped,
                "faults=transient_bitflip,internal_regfile,40,regfile.r1,0,0,5,0");

  LoggedState latent = Reference();
  latent.scan_images["internal_core"] = "1111";
  AddExperiment("c/e2", latent,
                "faults=transient_bitflip,internal_regfile,70,regfile.r2,0,0,5,0");

  AddExperiment("c/e3", Reference(),
                "faults=transient_bitflip,internal_regfile,70,regfile.r2,0,0,9,0");

  const auto report = AnalyzeCampaign(store_, "c").ValueOrDie();
  EXPECT_EQ(report.total, 4);
  EXPECT_EQ(report.Count(Outcome::kDetected), 1);
  EXPECT_EQ(report.Count(Outcome::kEscaped), 1);
  EXPECT_EQ(report.Count(Outcome::kLatent), 1);
  EXPECT_EQ(report.Count(Outcome::kOverwritten), 1);
  EXPECT_EQ(report.detected_by_mechanism.at("illegal_opcode"), 1);
  EXPECT_DOUBLE_EQ(report.ErrorCoverage(), 0.5);
}

TEST_F(AnalyzeCampaignTest, DetailRowsExcluded) {
  AddExperiment("c/e0", Reference(), "f");
  LoggedState step;
  AddExperiment("c/e0/d0", step, "detail_step", "c/e0");
  const auto report = AnalyzeCampaign(store_, "c").ValueOrDie();
  EXPECT_EQ(report.total, 1);
}

TEST_F(AnalyzeCampaignTest, MissingReferenceIsError) {
  EXPECT_FALSE(AnalyzeCampaign(store_, "nope").ok());
}

TEST_F(AnalyzeCampaignTest, ByLocationGroupSplitsOnCellPrefix) {
  LoggedState detected = Reference();
  detected.detected = true;
  detected.edm = "illegal_opcode";
  AddExperiment("c/e0", detected,
                "faults=transient_bitflip,internal_core,3,core.ir,0,0,5,0");
  AddExperiment("c/e1", Reference(),
                "faults=transient_bitflip,internal_regfile,40,regfile.r1,0,0,5,0");
  AddExperiment(
      "c/e2", Reference(),
      "faults=transient_bitflip,,0,memory.text@0x00000010,16,3,0,0");

  const auto by_group = AnalyzeByLocationGroup(store_, "c").ValueOrDie();
  ASSERT_EQ(by_group.size(), 3u);
  EXPECT_EQ(by_group.at("core").Count(Outcome::kDetected), 1);
  EXPECT_EQ(by_group.at("regfile").Count(Outcome::kOverwritten), 1);
  EXPECT_EQ(by_group.at("memory.text").total, 1);
}

}  // namespace
}  // namespace goofi::core
