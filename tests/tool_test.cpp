// Tests for the GOOFI command shell (the GUI-equivalent front end).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"
#include "tool/shell.hpp"

namespace goofi::tool {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  ShellTest()
      : store_(&db_), target_(&store_, &card_), shell_(&db_, &store_) {
    shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_);
    EXPECT_TRUE(
        Run(std::string("target describe ") + core::ThorRdTarget::kTargetName)
            .ok());
  }

  util::Result<std::string> Run(const std::string& line) {
    return shell_.Execute(line);
  }

  std::string MustRun(const std::string& line) {
    auto result = Run(line);
    EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
    return result.ok() ? result.value() : "";
  }

  db::Database db_;
  core::CampaignStore store_;
  testcard::SimTestCard card_;
  core::ThorRdTarget target_;
  Shell shell_;
};

TEST_F(ShellTest, HelpListsCommands) {
  const std::string help = MustRun("help");
  for (const char* cmd :
       {"campaign set", "run", "run-dedup", "analyze", "sql", "propagation"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}

TEST_F(ShellTest, BlankLinesAndCommentsAreNoOps) {
  EXPECT_EQ(MustRun(""), "");
  EXPECT_EQ(MustRun("   "), "");
  EXPECT_EQ(MustRun("# a comment"), "");
}

TEST_F(ShellTest, UnknownCommandErrors) {
  EXPECT_FALSE(Run("frobnicate").ok());
}

TEST_F(ShellTest, ListTargetsWorkloadsChains) {
  EXPECT_NE(MustRun("list targets").find(core::ThorRdTarget::kTargetName),
            std::string::npos);
  EXPECT_NE(MustRun("list workloads").find("bubblesort"), std::string::npos);
  const std::string chains =
      MustRun(std::string("list chains ") + core::ThorRdTarget::kTargetName);
  EXPECT_NE(chains.find("internal_regfile"), std::string::npos);
  EXPECT_NE(chains.find("512 bits"), std::string::npos);
  EXPECT_FALSE(Run("list chains nope").ok());
  EXPECT_FALSE(Run("list nonsense").ok());
}

TEST_F(ShellTest, CampaignSetParsesAllKeys) {
  MustRun(
      "campaign set c1 workload=matmul technique=swifi_runtime "
      "model=permanent_stuckat experiments=42 faults=2 window=5:500 "
      "locations=memory.data,memory.text timeout=9999 iterations=77 seed=3 "
      "logmode=detail observe=boundary burst=5:111");
  const auto campaign = store_.GetCampaign("c1").ValueOrDie();
  EXPECT_EQ(campaign.workload, "matmul");
  EXPECT_EQ(campaign.technique, core::Technique::kSwifiRuntime);
  EXPECT_EQ(campaign.fault_model, core::FaultModelKind::kPermanentStuckAt);
  EXPECT_EQ(campaign.num_experiments, 42);
  EXPECT_EQ(campaign.faults_per_experiment, 2);
  EXPECT_EQ(campaign.inject_min_instr, 5u);
  EXPECT_EQ(campaign.inject_max_instr, 500u);
  EXPECT_EQ(campaign.locations.size(), 2u);
  EXPECT_EQ(campaign.timeout_cycles, 9999u);
  EXPECT_EQ(campaign.max_iterations, 77);
  EXPECT_EQ(campaign.seed, 3u);
  EXPECT_EQ(campaign.log_mode, core::LogMode::kDetail);
  EXPECT_EQ(campaign.observe_chains, std::vector<std::string>{"boundary"});
  EXPECT_EQ(campaign.burst_length, 5u);
  EXPECT_EQ(campaign.burst_spacing, 111u);
  // Default target auto-filled (single registered target).
  EXPECT_EQ(campaign.target_name, core::ThorRdTarget::kTargetName);
}

TEST_F(ShellTest, CampaignSetUpdatesExisting) {
  MustRun("campaign set c1 workload=matmul experiments=10");
  MustRun("campaign set c1 experiments=20");
  const auto campaign = store_.GetCampaign("c1").ValueOrDie();
  EXPECT_EQ(campaign.workload, "matmul") << "earlier keys preserved";
  EXPECT_EQ(campaign.num_experiments, 20);
}

TEST_F(ShellTest, CampaignSetRejectsBadInput) {
  EXPECT_FALSE(Run("campaign set c1 experiments=abc").ok());
  EXPECT_FALSE(Run("campaign set c1 nonsense=1").ok());
  EXPECT_FALSE(Run("campaign set c1 technique=warp").ok());
  EXPECT_FALSE(Run("campaign set c1 window=17").ok());
  EXPECT_FALSE(Run("campaign set c1 noequalsign").ok());
}

TEST_F(ShellTest, CampaignShowRendersStoredData) {
  MustRun("campaign set c1 workload=checksum experiments=5");
  const std::string shown = MustRun("campaign show c1");
  EXPECT_NE(shown.find("checksum"), std::string::npos);
  EXPECT_NE(shown.find("experiments: 5"), std::string::npos);
  EXPECT_FALSE(Run("campaign show ghost").ok());
}

TEST_F(ShellTest, RunAndAnalyzeEndToEnd) {
  MustRun(
      "campaign set mini workload=fibonacci locations=internal_regfile "
      "experiments=15 window=1:80 timeout=50000");
  const std::string run_output = MustRun("run mini");
  EXPECT_NE(run_output.find("15 experiments run"), std::string::npos);
  const std::string analysis = MustRun("analyze mini");
  EXPECT_NE(analysis.find("error coverage"), std::string::npos);
  EXPECT_NE(analysis.find("15 experiments"), std::string::npos);
}

TEST_F(ShellTest, RunWarmForcesCheckpointFastForward) {
  MustRun(
      "campaign set warm workload=fibonacci locations=internal_regfile "
      "experiments=6 window=1:80 timeout=50000");
  // The fixture registers the target without a parallel factory: run-warm
  // must fail with a precise diagnosis, not fall back to a cold run.
  EXPECT_FALSE(Run("run-warm warm").ok());
  shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store_));
  const std::string out = MustRun("run-warm warm 1 16");
  EXPECT_NE(out.find("6 experiments run"), std::string::npos);
  EXPECT_NE(out.find("6 warm starts"), std::string::npos);
  EXPECT_NE(out.find("interval 16"), std::string::npos);
  EXPECT_FALSE(Run("run-warm warm 0").ok());
  EXPECT_FALSE(Run("run-warm warm 1 0").ok());
  EXPECT_FALSE(Run("run-warm").ok());
}

TEST_F(ShellTest, RunPrunedEngagesConvergencePruning) {
  MustRun(
      "campaign set pruned workload=fibonacci locations=internal_core "
      "experiments=6 window=1:80 timeout=50000");
  // Like run-warm, run-pruned needs a parallel target factory.
  EXPECT_FALSE(Run("run-pruned pruned").ok());
  shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store_));
  const std::string out = MustRun("run-pruned pruned 1 16");
  EXPECT_NE(out.find("6 experiments run"), std::string::npos);
  EXPECT_NE(out.find("pruned"), std::string::npos);
  EXPECT_NE(out.find("interval 16"), std::string::npos);
  EXPECT_FALSE(Run("run-pruned pruned 0").ok());
  EXPECT_FALSE(Run("run-pruned pruned 1 0").ok());
  EXPECT_FALSE(Run("run-pruned").ok());
}

TEST_F(ShellTest, RunDedupEngagesEquivalenceClassing) {
  MustRun(
      "campaign set dedup workload=fibonacci locations=internal_regfile "
      "experiments=6 window=1:80 timeout=50000");
  // Like run-warm/run-pruned, run-dedup needs a parallel target factory.
  EXPECT_FALSE(Run("run-dedup dedup").ok());
  shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store_));
  const std::string out = MustRun("run-dedup dedup 1");
  EXPECT_NE(out.find("6 experiments run"), std::string::npos);
  EXPECT_NE(out.find("classes"), std::string::npos);
  EXPECT_NE(out.find("synthesized"), std::string::npos);
  EXPECT_FALSE(Run("run-dedup dedup 0").ok());
  EXPECT_FALSE(Run("run-dedup dedup x").ok());
  EXPECT_FALSE(Run("run-dedup").ok());
  EXPECT_FALSE(Run("run-dedup dedup 1 16").ok())
      << "run-dedup takes no interval argument";
  EXPECT_FALSE(Run("run-dedup ghost 1").ok());
}

TEST_F(ShellTest, RunDedupResultsMatchPlainRun) {
  MustRun(
      "campaign set eqcmp workload=fibonacci locations=internal_regfile "
      "experiments=8 window=1:80 timeout=50000");
  shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store_));
  MustRun("run eqcmp");
  const std::string plain = MustRun("list experiments eqcmp");
  MustRun("sql DELETE FROM LoggedSystemState");
  MustRun("run-dedup eqcmp 2");
  EXPECT_EQ(MustRun("list experiments eqcmp"), plain)
      << "run-dedup must reproduce the plain run's rows exactly";
}

TEST_F(ShellTest, StatsFailsBeforeAnyRun) {
  const auto result = Run("stats");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ShellTest, StatsReportsLastRunCounters) {
  MustRun(
      "campaign set st workload=fibonacci locations=internal_core "
      "experiments=4 window=1:80 timeout=50000");
  shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store_));
  MustRun("run-pruned st 1 16");
  const std::string stats = MustRun("stats");
  EXPECT_NE(stats.find("last run: st (run-pruned)"), std::string::npos);
  EXPECT_NE(stats.find("experiments run:"), std::string::npos);
  // The two early-exit populations must be reported separately.
  EXPECT_NE(stats.find("never injected (dead):"), std::string::npos);
  EXPECT_NE(stats.find("injected but converged:"), std::string::npos);
  EXPECT_NE(stats.find("boundary checks:"), std::string::npos);
  EXPECT_NE(stats.find("collision rejects:"), std::string::npos);
  // Equivalence-classing counters report alongside the prune counters (all
  // zero for a run-pruned command: classing was not engaged).
  EXPECT_NE(stats.find("equivalence classes:      0"), std::string::npos);
  EXPECT_NE(stats.find("experiments synthesized:  0"), std::string::npos);
  EXPECT_NE(stats.find("spot checks:"), std::string::npos);
  // A plain run resets the counters to its own (unpruned) numbers.
  MustRun("run st");
  const std::string plain = MustRun("stats");
  EXPECT_NE(plain.find("last run: st (run)"), std::string::npos);
  EXPECT_NE(plain.find("injected but converged:   0"), std::string::npos);
}

TEST_F(ShellTest, StatsReportsEquivalenceCountersAfterRunDedup) {
  MustRun(
      "campaign set eqst workload=fibonacci locations=internal_regfile "
      "experiments=12 window=1:40 timeout=50000");
  shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store_));
  MustRun("run-dedup eqst 1");
  const std::string stats = MustRun("stats");
  EXPECT_NE(stats.find("last run: eqst (run-dedup)"), std::string::npos);
  EXPECT_NE(stats.find("experiments run:          12"), std::string::npos);
  EXPECT_NE(stats.find("equivalence classes:"), std::string::npos);
  EXPECT_NE(stats.find("experiments synthesized:"), std::string::npos);
  EXPECT_NE(stats.find("spot checks:"), std::string::npos);
}

TEST_F(ShellTest, RunUnknownCampaignOrTargetFails) {
  EXPECT_FALSE(Run("run ghost").ok());
  // A target that exists in the database but is not registered with the
  // shell: defining the campaign works (FK satisfied), running it fails.
  MustRun("sql INSERT INTO TargetSystemData VALUES ('unregistered', '', '')");
  MustRun("campaign set orphan workload=fibonacci target=unregistered");
  EXPECT_FALSE(Run("run orphan").ok());
}

TEST_F(ShellTest, SqlPassesThrough) {
  const std::string result =
      MustRun("sql SELECT COUNT(*) AS n FROM CampaignData");
  EXPECT_NE(result.find("n"), std::string::npos);
  EXPECT_FALSE(Run("sql SELEKT broken").ok());
}

TEST_F(ShellTest, SaveAndLoadRoundTrip) {
  MustRun("campaign set persisted workload=matmul experiments=3");
  const std::string path = testing::TempDir() + "shell_roundtrip.db";
  MustRun("save " + path);
  // New shell over a fresh database, load the file.
  db::Database db2;
  core::CampaignStore store2(&db2);
  Shell shell2(&db2, &store2);
  auto loaded = shell2.Execute("load " + path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(store2.GetCampaign("persisted").ok());
  // Persistence stores rows only; load must have re-created the standard
  // indexes so analysis queries stay on the fast path.
  const db::Table* lss = db2.GetTable("LoggedSystemState");
  ASSERT_NE(lss, nullptr);
  EXPECT_NE(lss->FindIndex("idx_lss_campaign"), nullptr);
  std::remove(path.c_str());
}

TEST_F(ShellTest, ExplainShowsAccessPath) {
  const std::string help = MustRun("help");
  EXPECT_NE(help.find("explain"), std::string::npos);
  const std::string probed = MustRun(
      "explain SELECT * FROM LoggedSystemState WHERE campaignName = 'c'");
  EXPECT_NE(probed.find("idx_lss_campaign"), std::string::npos) << probed;
  const std::string scanned = MustRun("explain SELECT * FROM CampaignData");
  EXPECT_NE(scanned.find("full scan"), std::string::npos) << scanned;
  EXPECT_FALSE(Run("explain SELEKT broken").ok());
}

TEST_F(ShellTest, RerunDetailAndPropagationWorkflow) {
  MustRun(
      "campaign set hunt workload=fibonacci locations=internal_regfile "
      "experiments=8 window=1:60 timeout=50000");
  MustRun("run hunt");
  MustRun("rerun-detail hunt/e0002");
  MustRun("rerun-detail hunt/ref");
  const std::string report = MustRun("propagation hunt/e0002");
  EXPECT_NE(report.find("steps compared"), std::string::npos);
}

TEST_F(ShellTest, PropagationWithoutTracesFailsCleanly) {
  MustRun(
      "campaign set p workload=fibonacci locations=internal_regfile "
      "experiments=2 window=1:60");
  MustRun("run p");
  const auto result = Run("propagation p/e0000");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ShellTest, ListExperimentsShowsLoggedRows) {
  MustRun(
      "campaign set le workload=checksum locations=internal_regfile "
      "experiments=4 window=1:100");
  MustRun("run le");
  const std::string listing = MustRun("list experiments le");
  EXPECT_NE(listing.find("le/e0000"), std::string::npos);
  EXPECT_NE(listing.find("le/ref"), std::string::npos);
  EXPECT_FALSE(Run("list experiments").ok());
}

TEST_F(ShellTest, ReportWritesAnalysisToFile) {
  MustRun(
      "campaign set rep workload=checksum locations=internal_regfile "
      "experiments=4 window=1:100");
  MustRun("run rep");
  const std::string path = testing::TempDir() + "shell_report.txt";
  MustRun("report rep " + path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("error coverage"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(Run("report ghost /tmp/x").ok());
}

TEST_F(ShellTest, EchoForScripts) {
  EXPECT_EQ(MustRun("echo phase one done"), "phase one done\n");
}

TEST_F(ShellTest, ScriptTranscriptAndErrorStop) {
  std::string transcript;
  const util::Status st = shell_.ExecuteScript(
      "# configure\n"
      "campaign set s workload=checksum experiments=2 window=1:50\n"
      "run s\n"
      "bogus command\n"
      "echo never reached\n",
      &transcript);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(transcript.find("goofi> run s"), std::string::npos);
  EXPECT_NE(transcript.find("error:"), std::string::npos);
  EXPECT_EQ(transcript.find("never reached"), std::string::npos);
}

TEST_F(ShellTest, ArchiveOpenStatsAndClose) {
  const std::string help = MustRun("help");
  EXPECT_NE(help.find("archive open"), std::string::npos);
  EXPECT_NE(help.find("archive checkpoint"), std::string::npos);

  // Subcommands other than open require an open archive.
  EXPECT_FALSE(Run("archive status").ok());
  EXPECT_FALSE(Run("archive checkpoint").ok());
  EXPECT_FALSE(Run("archive bogus").ok());

  const std::string path = testing::TempDir() + "shell_archive_basic.db";
  MustRun("archive open " + path);
  // With an archive open, `stats` reports its counters even before any run.
  const std::string stats = MustRun("stats");
  EXPECT_NE(stats.find("archive: " + path), std::string::npos);
  EXPECT_NE(stats.find("wal records replayed"), std::string::npos);
  EXPECT_EQ(MustRun("archive status"), stats);

  MustRun("campaign set arc workload=matmul experiments=3");
  const std::string checkpointed = MustRun("archive checkpoint");
  EXPECT_NE(checkpointed.find("epoch 1"), std::string::npos);
  MustRun("archive close");
  EXPECT_FALSE(Run("archive status").ok()) << "closed archive is detached";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST_F(ShellTest, ArchiveKillAndResumeAcrossSessions) {
  shell_.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store_));
  // More experiments than one 64-row commit batch, so a torn final WAL
  // record loses only the tail of the campaign.
  MustRun(
      "campaign set arc workload=fibonacci locations=internal_regfile "
      "experiments=70 window=1:80 timeout=50000");
  const std::string path = testing::TempDir() + "shell_archive_resume.db";
  MustRun("archive open " + path);
  MustRun("run-parallel arc 2");
  const std::string reference = MustRun("list experiments arc");
  // One more committed record after the run: a fold may have emptied the WAL
  // at the final batch commit, and tearing bytes must hit a real record, not
  // the file header.
  MustRun("campaign set arc seed=7");
  MustRun("archive close");

  // "Kill" the process mid-append: tear the last WAL record on disk.
  const std::string wal = path + ".wal";
  std::filesystem::resize_file(wal, std::filesystem::file_size(wal) - 3);

  // A second session recovers the valid prefix and resumes the campaign.
  db::Database db2;
  core::CampaignStore store2(&db2);
  Shell shell2(&db2, &store2);
  shell2.AddTarget(core::ThorRdTarget::kTargetName, &target_, &card_,
                   core::MakeSimThorFactory(&store2));
  auto opened = shell2.Execute("archive open " + path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_NE(opened.value().find("WAL records replayed"), std::string::npos);
  EXPECT_NE(opened.value().find("truncated torn WAL tail"), std::string::npos);
  auto stats = shell2.Execute("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("torn tail truncated"), std::string::npos);

  auto rerun = shell2.Execute("run-parallel arc 2");
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun.value().find(" 0 resumed"), std::string::npos)
      << "the recovered prefix must be resumed, not re-run: " << rerun.value();
  auto listing = shell2.Execute("list experiments arc");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.value(), reference);
  ASSERT_TRUE(shell2.Execute("archive close").ok());
  std::remove(path.c_str());
  std::remove(wal.c_str());
}

TEST_F(ShellTest, LegacyTextArchivesStillLoad) {
  MustRun("campaign set oldstyle workload=matmul experiments=9");
  const std::string path = testing::TempDir() + "shell_legacy.db";
  ASSERT_TRUE(db_.SaveLegacyText(path).ok());

  db::Database db2;
  core::CampaignStore store2(&db2);
  Shell shell2(&db2, &store2);
  auto loaded = shell2.Execute("load " + path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(store2.GetCampaign("oldstyle").ok());

  // Opening a legacy file as an archive converts it in place.
  db::Database db3;
  core::CampaignStore store3(&db3);
  Shell shell3(&db3, &store3);
  auto opened = shell3.Execute("archive open " + path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_NE(opened.value().find("converted legacy text archive"),
            std::string::npos);
  EXPECT_TRUE(store3.GetCampaign("oldstyle").ok());
  ASSERT_TRUE(shell3.Execute("archive close").ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST_F(ShellTest, LoadClosesOpenArchiveFirst) {
  const std::string plain = testing::TempDir() + "shell_plain.db";
  const std::string arch = testing::TempDir() + "shell_arch.db";
  MustRun("campaign set keepme workload=matmul experiments=2");
  MustRun("save " + plain);
  MustRun("archive open " + arch);
  const std::string out = MustRun("load " + plain);
  EXPECT_NE(out.find("open archive closed"), std::string::npos);
  EXPECT_FALSE(Run("archive status").ok());
  EXPECT_TRUE(store_.GetCampaign("keepme").ok());
  std::remove(plain.c_str());
  std::remove(arch.c_str());
  std::remove((arch + ".wal").c_str());
}

TEST_F(ShellTest, CampaignMergeViaShell) {
  MustRun("campaign set a workload=matmul experiments=5 locations=internal_core");
  MustRun("campaign set b workload=matmul experiments=7 locations=internal_regfile");
  MustRun("campaign merge ab a b");
  const auto merged = store_.GetCampaign("ab").ValueOrDie();
  EXPECT_EQ(merged.num_experiments, 12);
  EXPECT_EQ(merged.locations.size(), 2u);
}

}  // namespace
}  // namespace goofi::tool
