// Tests for the IEEE 1149.1 TAP controller, scan chains and the debug unit.
#include <gtest/gtest.h>

#include "cpu/cpu.hpp"
#include "isa/assembler.hpp"
#include "scan/chain.hpp"
#include "scan/debug.hpp"
#include "scan/tap.hpp"

namespace goofi::scan {
namespace {

// --- TAP FSM -------------------------------------------------------------

/// Minimal DR handler: one 8-bit register.
class FakeDr : public TapController::DrHandler {
 public:
  uint32_t DrLength(TapInstruction) override { return 8; }
  util::BitVec CaptureDr(TapInstruction) override {
    util::BitVec bits(8);
    bits.DepositWord(0, value, 8);
    return bits;
  }
  void UpdateDr(TapInstruction, const util::BitVec& image) override {
    value = static_cast<uint8_t>(image.ExtractWord(0, 8));
    ++updates;
  }
  uint8_t value = 0;
  int updates = 0;
};

TEST(TapTest, FiveTmsOnesAlwaysReachTestLogicReset) {
  FakeDr dr;
  TapController tap(&dr);
  // Wander into a few states first.
  tap.Clock(false, false);
  tap.Clock(true, false);
  tap.Clock(false, false);
  for (int i = 0; i < 5; ++i) tap.Clock(true, false);
  EXPECT_EQ(tap.state(), TapState::kTestLogicReset);
}

TEST(TapTest, ResetLandsInRunTestIdle) {
  FakeDr dr;
  TapController tap(&dr);
  tap.Reset();
  EXPECT_EQ(tap.state(), TapState::kRunTestIdle);
  EXPECT_EQ(tap.instruction(), TapInstruction::kIdcode);
}

TEST(TapTest, CanonicalDrScanPath) {
  FakeDr dr;
  TapController tap(&dr);
  tap.Reset();
  tap.Clock(true, false);
  EXPECT_EQ(tap.state(), TapState::kSelectDrScan);
  tap.Clock(false, false);
  EXPECT_EQ(tap.state(), TapState::kCaptureDr);
  tap.Clock(false, false);
  EXPECT_EQ(tap.state(), TapState::kShiftDr);
  tap.Clock(true, false);
  EXPECT_EQ(tap.state(), TapState::kExit1Dr);
  tap.Clock(false, false);
  EXPECT_EQ(tap.state(), TapState::kPauseDr);
  tap.Clock(true, false);
  EXPECT_EQ(tap.state(), TapState::kExit2Dr);
  tap.Clock(false, false);
  EXPECT_EQ(tap.state(), TapState::kShiftDr);
  tap.Clock(true, false);
  tap.Clock(true, false);
  EXPECT_EQ(tap.state(), TapState::kUpdateDr);
  tap.Clock(false, false);
  EXPECT_EQ(tap.state(), TapState::kRunTestIdle);
}

TEST(TapTest, IrScanPathLoadsInstruction) {
  FakeDr dr;
  TapController tap(&dr);
  tap.Reset();
  tap.LoadInstruction(TapInstruction::kIntest);
  EXPECT_EQ(tap.state(), TapState::kRunTestIdle);
  EXPECT_EQ(tap.instruction(), TapInstruction::kIntest);
  tap.LoadInstruction(TapInstruction::kBypass);
  EXPECT_EQ(tap.instruction(), TapInstruction::kBypass);
}

TEST(TapTest, TestLogicResetRestoresIdcode) {
  FakeDr dr;
  TapController tap(&dr);
  tap.Reset();
  tap.LoadInstruction(TapInstruction::kIntest);
  for (int i = 0; i < 5; ++i) tap.Clock(true, false);
  EXPECT_EQ(tap.instruction(), TapInstruction::kIdcode);
}

TEST(TapTest, ShiftDataExchangesRegisterContents) {
  FakeDr dr;
  dr.value = 0xA5;
  TapController tap(&dr);
  tap.Reset();
  tap.LoadInstruction(TapInstruction::kIntest);
  util::BitVec in(8);
  in.DepositWord(0, 0x3C, 8);
  const util::BitVec captured = tap.ShiftData(in);
  EXPECT_EQ(captured.ExtractWord(0, 8), 0xA5u);
  EXPECT_EQ(dr.value, 0x3C);
  EXPECT_EQ(dr.updates, 1);
}

TEST(TapTest, TckCountGrowsWithTraffic) {
  FakeDr dr;
  TapController tap(&dr);
  tap.Reset();
  const uint64_t before = tap.tck_count();
  tap.LoadInstruction(TapInstruction::kIntest);
  tap.ShiftData(util::BitVec(8));
  EXPECT_GT(tap.tck_count(), before + 8);
}

// --- scan chains over a CPU -----------------------------------------------

class ChainTest : public ::testing::Test {
 protected:
  ChainTest() : registry_(cpu_.BuildStateRegistry()) {
    chains_ = ScanChainSet::BuildDefault(registry_);
  }
  cpu::Cpu cpu_;
  cpu::StateRegistry registry_;
  ScanChainSet chains_;
};

TEST_F(ChainTest, DefaultLayoutHasFiveChains) {
  EXPECT_EQ(chains_.chains().size(), 5u);
  EXPECT_NE(chains_.Find("boundary"), nullptr);
  EXPECT_NE(chains_.Find("internal_core"), nullptr);
  EXPECT_NE(chains_.Find("internal_regfile"), nullptr);
  EXPECT_NE(chains_.Find("internal_icache"), nullptr);
  EXPECT_NE(chains_.Find("internal_dcache"), nullptr);
  EXPECT_EQ(chains_.Find("nope"), nullptr);
  EXPECT_EQ(chains_.IndexOf("boundary"), 0);
  EXPECT_EQ(chains_.IndexOf("nope"), -1);
}

TEST_F(ChainTest, RegfileChainIs512Bits) {
  EXPECT_EQ(chains_.Find("internal_regfile")->length_bits(), 16u * 32u);
}

TEST_F(ChainTest, CaptureReflectsCpuState) {
  cpu_.Reset(0);
  cpu_.set_reg(3, 0xCAFEBABE);
  const ScanChain* chain = chains_.Find("internal_regfile");
  const util::BitVec image = chain->Capture();
  const auto cell = chain->FindCell("regfile.r3").ValueOrDie();
  EXPECT_EQ(image.ExtractWord(cell.offset, cell.bits), 0xCAFEBABEu);
}

TEST_F(ChainTest, UpdateWritesWritableCells) {
  cpu_.Reset(0);
  const ScanChain* chain = chains_.Find("internal_regfile");
  util::BitVec image = chain->Capture();
  const auto cell = chain->FindCell("regfile.r7").ValueOrDie();
  image.DepositWord(cell.offset, 0x12345678u, cell.bits);
  chain->Update(image);
  EXPECT_EQ(cpu_.reg(7), 0x12345678u);
}

TEST_F(ChainTest, ReadOnlyCellsSurviveUpdate) {
  cpu_.Reset(0);
  cpu_.set_reg(1, 0xFF);
  const ScanChain* chain = chains_.Find("internal_regfile");
  util::BitVec image = chain->Capture();
  const auto r0 = chain->FindCell("regfile.r0").ValueOrDie();
  ASSERT_TRUE(r0.read_only);
  image.DepositWord(r0.offset, 0xFFFFFFFFu, r0.bits);
  chain->Update(image);
  EXPECT_EQ(cpu_.reg(0), 0u) << "read-only cell must not be written";
  EXPECT_EQ(cpu_.reg(1), 0xFFu);
}

TEST_F(ChainTest, CaptureUpdateIdentity) {
  cpu_.Reset(0);
  for (int r = 0; r < 16; ++r) cpu_.set_reg(r, 0x1000u + static_cast<uint32_t>(r));
  const ScanChain* chain = chains_.Find("internal_regfile");
  chain->Update(chain->Capture());
  for (int r = 1; r < 16; ++r) {
    EXPECT_EQ(cpu_.reg(r), 0x1000u + static_cast<uint32_t>(r));
  }
}

TEST_F(ChainTest, LocateMapsBitsToCells) {
  const ScanChain* chain = chains_.Find("internal_regfile");
  const auto location = chain->Locate(32 * 5 + 3);
  ASSERT_NE(location.cell, nullptr);
  EXPECT_EQ(location.cell->name, "regfile.r5");
  EXPECT_EQ(location.bit_in_cell, 3u);
}

TEST_F(ChainTest, FindCellMissingIsError) {
  const ScanChain* chain = chains_.Find("internal_regfile");
  EXPECT_FALSE(chain->FindCell("icache.line0.tag").ok());
}

TEST_F(ChainTest, TotalBitsMatchesRegistry) {
  EXPECT_EQ(chains_.TotalBits(), registry_.TotalBits());
}

TEST_F(ChainTest, CacheChainCoversAllLineFields) {
  const ScanChain* chain = chains_.Find("internal_icache");
  // 64 lines x (valid + tag + data + parity).
  EXPECT_EQ(chain->cells().size(), 64u * 4u);
}

// --- debug unit / triggers --------------------------------------------------

class DebugTest : public ::testing::Test {
 protected:
  void Load(const std::string& source) {
    program_ = isa::Assemble(source).ValueOrDie();
    uint32_t text_bytes = 0;
    const auto etext = program_.symbols.find("_etext");
    if (etext != program_.symbols.end()) text_bytes = etext->second;
    ASSERT_TRUE(
        cpu_.LoadProgram(program_.base_address, program_.words, text_bytes).ok());
    cpu_.Reset(program_.entry);
  }
  cpu::Cpu cpu_;
  isa::AssembledProgram program_;
};

TEST_F(DebugTest, PcBreakpointFiresAtAddress) {
  Load(
      "  addi r1, r0, 1\n"
      "mark:\n"
      "  addi r2, r0, 2\n"
      "  halt\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kPcBreakpoint;
  trigger.address = program_.symbols.at("mark");
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
  // The instruction at `mark` has executed when the comparator fires.
  EXPECT_EQ(cpu_.reg(2), 2u);
  EXPECT_FALSE(cpu_.halted());
}

TEST_F(DebugTest, PcBreakpointOccurrenceCountsLoopIterations) {
  Load(
      "  addi r1, r0, 0\n"
      "loop:\n"
      "  addi r1, r1, 1\n"
      "  jmp loop\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kPcBreakpoint;
  trigger.address = program_.symbols.at("loop");
  trigger.occurrence = 5;
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
  EXPECT_EQ(cpu_.reg(1), 5u);
}

TEST_F(DebugTest, InstrCountTrigger) {
  Load(
      "loop:\n"
      "  jmp loop\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kInstrCount;
  trigger.count = 7;
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
  EXPECT_EQ(cpu_.instructions_retired(), 7u);
}

TEST_F(DebugTest, CycleCountTriggerActsAsRealTimeClock) {
  Load(
      "loop:\n"
      "  jmp loop\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kCycleCount;
  trigger.count = 100;
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
  EXPECT_GE(cpu_.cycles(), 100u);
}

TEST_F(DebugTest, DataAccessTriggerSeesLoadsAndStores) {
  Load(
      "_start:\n"
      "  li r1, target\n"
      "  addi r2, r0, 5\n"
      "  stw r2, [r1]\n"
      "  halt\n"
      "_etext:\n"
      "target:\n"
      "  .word 0\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kDataAccess;
  trigger.address = program_.symbols.at("target");
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
  EXPECT_FALSE(cpu_.halted());
}

TEST_F(DebugTest, DataValueTriggerMatchesMovedValue) {
  Load(
      "_start:\n"
      "  li r1, slot\n"
      "  li r2, 0xBEEF\n"
      "  stw r2, [r1]\n"
      "  halt\n"
      "_etext:\n"
      "slot:\n"
      "  .word 0\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kDataValue;
  trigger.value = 0xBEEF;
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
}

TEST_F(DebugTest, BranchTriggerFiresOnFirstBranch) {
  Load(
      "  addi r1, r0, 1\n"
      "  addi r2, r0, 1\n"
      "  beq r1, r2, done\n"
      "done:\n"
      "  halt\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kBranch;
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
  EXPECT_EQ(cpu_.instructions_retired(), 3u);
}

TEST_F(DebugTest, CallTriggerFiresOnJal) {
  Load(
      "_start:\n"
      "  nop\n"
      "  call fn\n"
      "  halt\n"
      "fn:\n"
      "  ret\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kCall;
  debug.AddTrigger(trigger);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
  EXPECT_EQ(cpu_.instructions_retired(), 2u);
}

TEST_F(DebugTest, TerminationWithoutTriggers) {
  Load("halt\n");
  DebugUnit debug(&cpu_);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, -1);
  EXPECT_EQ(result.outcome, cpu::StepOutcome::kHalted);
}

TEST_F(DebugTest, TimeoutReported) {
  Load(
      "loop:\n"
      "  jmp loop\n");
  DebugUnit debug(&cpu_);
  const DebugRunResult result = debug.RunUntilEvent(500);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.outcome, cpu::StepOutcome::kOk);
}

TEST_F(DebugTest, FirstMatchingTriggerWins) {
  Load(
      "loop:\n"
      "  jmp loop\n");
  DebugUnit debug(&cpu_);
  Trigger a;
  a.kind = TriggerKind::kInstrCount;
  a.count = 3;
  Trigger b;
  b.kind = TriggerKind::kInstrCount;
  b.count = 3;
  debug.AddTrigger(a);
  debug.AddTrigger(b);
  const DebugRunResult result = debug.RunUntilEvent(0);
  EXPECT_EQ(result.fired_trigger, 0);
}

TEST_F(DebugTest, ResetCountersClearsOccurrences) {
  Load(
      "loop:\n"
      "  jmp loop\n");
  DebugUnit debug(&cpu_);
  Trigger trigger;
  trigger.kind = TriggerKind::kPcBreakpoint;
  trigger.address = 0;
  trigger.occurrence = 3;
  debug.AddTrigger(trigger);
  (void)debug.RunUntilEvent(0);
  const uint64_t first = cpu_.instructions_retired();
  cpu_.Reset(0);
  debug.ResetCounters();
  (void)debug.RunUntilEvent(0);
  EXPECT_EQ(cpu_.instructions_retired(), first) << "same occurrence semantics";
}

TEST(TriggerTest, DescribeIsHumanReadable) {
  Trigger trigger;
  trigger.kind = TriggerKind::kDataAccess;
  trigger.address = 0xF000;
  EXPECT_NE(trigger.Describe().find("f000"), std::string::npos);
  EXPECT_STREQ(TriggerKindName(TriggerKind::kBranch), "branch");
}

}  // namespace
}  // namespace goofi::scan
