// Unit tests for the embedded database: values, schemas, tables, foreign
// keys and persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "db/database.hpp"

namespace goofi::db {
namespace {

// --- Value -----------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).as_real(), 2.5);
  EXPECT_EQ(Value::Text("hi").as_text(), "hi");
  EXPECT_EQ(Value::Bool(true).as_int(), 1);
}

TEST(ValueTest, IntPromotesToRealAccessor) {
  EXPECT_DOUBLE_EQ(Value::Int(3).as_real(), 3.0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Int(-1).Truthy());
  EXPECT_FALSE(Value::Real(0.0).Truthy());
  EXPECT_TRUE(Value::Real(0.1).Truthy());
  EXPECT_FALSE(Value::Text("").Truthy());
  EXPECT_TRUE(Value::Text("x").Truthy());
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Text("b").Compare(Value::Text("a")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareMixedNumerics) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Real(2.5)), 0);
  EXPECT_GT(Value::Real(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CrossTypeOrderingNullNumericText) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::Text("")), 0);
}

TEST(ValueTest, SerializeRoundTrip) {
  for (const Value& v : {Value::Null(), Value::Int(-42), Value::Real(1.5e-3),
                         Value::Text("with spaces & symbols !")}) {
    auto back = Value::Deserialize(v.Serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().type(), v.type());
    EXPECT_EQ(back.value().Compare(v), 0);
  }
}

TEST(ValueTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Value::Deserialize("").ok());
  EXPECT_FALSE(Value::Deserialize("Zfoo").ok());
  EXPECT_FALSE(Value::Deserialize("Iabc").ok());
  EXPECT_FALSE(Value::Deserialize("R1.2.3").ok());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Text("abc").Hash(), Value::Text("abc").Hash());
}

// --- Schema ---------------------------------------------------------------

Schema MakeUserSchema() {
  return Schema("users",
                {{"id", ValueType::kInt, true},
                 {"name", ValueType::kText, true},
                 {"score", ValueType::kReal, false}},
                {"id"});
}

TEST(SchemaTest, ColumnIndexCaseInsensitive) {
  const Schema schema = MakeUserSchema();
  EXPECT_EQ(schema.ColumnIndex("ID"), 0u);
  EXPECT_EQ(schema.ColumnIndex("Name"), 1u);
  EXPECT_FALSE(schema.ColumnIndex("missing").has_value());
}

TEST(SchemaTest, ValidateCatchesDuplicates) {
  Schema schema("t", {{"a", ValueType::kInt, false}, {"A", ValueType::kText, false}});
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateCatchesUnknownPkColumn) {
  Schema schema("t", {{"a", ValueType::kInt, false}}, {"nope"});
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, CheckRowArityAndTypes) {
  const Schema schema = MakeUserSchema();
  EXPECT_TRUE(schema.CheckRow({Value::Int(1), Value::Text("a"), Value::Real(1.0)}).ok());
  // INT widens into REAL column.
  EXPECT_TRUE(schema.CheckRow({Value::Int(1), Value::Text("a"), Value::Int(3)}).ok());
  // NULL ok for nullable column, rejected for NOT NULL.
  EXPECT_TRUE(schema.CheckRow({Value::Int(1), Value::Text("a"), Value::Null()}).ok());
  EXPECT_FALSE(schema.CheckRow({Value::Null(), Value::Text("a"), Value::Null()}).ok());
  // Wrong arity / wrong type.
  EXPECT_FALSE(schema.CheckRow({Value::Int(1), Value::Text("a")}).ok());
  EXPECT_FALSE(schema.CheckRow({Value::Text("x"), Value::Text("a"), Value::Null()}).ok());
}

// --- Table ------------------------------------------------------------------

TEST(TableTest, InsertAndLookupByPrimaryKey) {
  Table table(MakeUserSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Text("ada"), Value::Real(9.5)}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::Text("bob"), Value::Null()}).ok());
  EXPECT_EQ(table.size(), 2u);
  const auto slot = table.FindByPrimaryKey({Value::Int(2)});
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(table.slots()[*slot][1].as_text(), "bob");
  EXPECT_FALSE(table.FindByPrimaryKey({Value::Int(3)}).has_value());
}

TEST(TableTest, DuplicatePrimaryKeyRejected) {
  Table table(MakeUserSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Text("a"), Value::Null()}).ok());
  const auto st = table.Insert({Value::Int(1), Value::Text("b"), Value::Null()});
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  EXPECT_EQ(table.size(), 1u);
}

TEST(TableTest, NullPrimaryKeyRejected) {
  Table table(MakeUserSchema());
  // id is NOT NULL so CheckRow already rejects; use a schema with nullable pk
  Schema schema("t", {{"k", ValueType::kInt, false}}, {"k"});
  Table t2(schema);
  EXPECT_FALSE(t2.Insert({Value::Null()}).ok());
}

TEST(TableTest, DeleteWhereUpdatesIndexAndCount) {
  Table table(MakeUserSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table.Insert({Value::Int(i), Value::Text("u"), Value::Null()}).ok());
  }
  const size_t deleted =
      table.DeleteWhere([](const Row& row) { return row[0].as_int() % 2 == 0; });
  EXPECT_EQ(deleted, 5u);
  EXPECT_EQ(table.size(), 5u);
  EXPECT_FALSE(table.FindByPrimaryKey({Value::Int(2)}).has_value());
  EXPECT_TRUE(table.FindByPrimaryKey({Value::Int(3)}).has_value());
  // A deleted key can be reinserted.
  EXPECT_TRUE(table.Insert({Value::Int(2), Value::Text("back"), Value::Null()}).ok());
}

TEST(TableTest, UpdateWhereMutatesAndReindexes) {
  Table table(MakeUserSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Text("a"), Value::Null()}).ok());
  size_t updated = 0;
  ASSERT_TRUE(table
                  .UpdateWhere([](const Row& row) { return row[0].as_int() == 1; },
                               [](Row& row) { row[0] = Value::Int(99); }, &updated)
                  .ok());
  EXPECT_EQ(updated, 1u);
  EXPECT_FALSE(table.FindByPrimaryKey({Value::Int(1)}).has_value());
  EXPECT_TRUE(table.FindByPrimaryKey({Value::Int(99)}).has_value());
}

TEST(TableTest, UpdateWhereRejectsPkCollision) {
  Table table(MakeUserSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Text("a"), Value::Null()}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::Text("b"), Value::Null()}).ok());
  size_t updated = 0;
  const auto st =
      table.UpdateWhere([](const Row& row) { return row[0].as_int() == 1; },
                        [](Row& row) { row[0] = Value::Int(2); }, &updated);
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
}

TEST(TableTest, ExistsWhere) {
  Table table(MakeUserSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Text("a"), Value::Real(5)}).ok());
  EXPECT_TRUE(table.ExistsWhere({1}, {Value::Text("a")}));
  EXPECT_FALSE(table.ExistsWhere({1}, {Value::Text("zz")}));
  // PK fast path.
  EXPECT_TRUE(table.ExistsWhere({0}, {Value::Int(1)}));
}

// --- Database & foreign keys ---------------------------------------------------

class DatabaseFkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(Schema("parent",
                                       {{"id", ValueType::kInt, true},
                                        {"label", ValueType::kText, false}},
                                       {"id"}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(Schema("child",
                                       {{"cid", ValueType::kInt, true},
                                        {"pid", ValueType::kInt, false}},
                                       {"cid"},
                                       {{{"pid"}, "parent", {"id"}}}))
                    .ok());
  }
  Database db_;
};

TEST_F(DatabaseFkTest, InsertRequiresReferencedRow) {
  EXPECT_FALSE(db_.Insert("child", {Value::Int(1), Value::Int(7)}).ok());
  ASSERT_TRUE(db_.Insert("parent", {Value::Int(7), Value::Text("p")}).ok());
  EXPECT_TRUE(db_.Insert("child", {Value::Int(1), Value::Int(7)}).ok());
}

TEST_F(DatabaseFkTest, NullForeignKeyIsAllowed) {
  EXPECT_TRUE(db_.Insert("child", {Value::Int(1), Value::Null()}).ok());
}

TEST_F(DatabaseFkTest, DeleteRestrictedWhileReferenced) {
  ASSERT_TRUE(db_.Insert("parent", {Value::Int(7), Value::Text("p")}).ok());
  ASSERT_TRUE(db_.Insert("child", {Value::Int(1), Value::Int(7)}).ok());
  const auto st =
      db_.Delete("parent", [](const Row& row) { return row[0].as_int() == 7; });
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  // After removing the child, the delete goes through.
  ASSERT_TRUE(db_.Delete("child", [](const Row&) { return true; }).ok());
  EXPECT_TRUE(
      db_.Delete("parent", [](const Row& row) { return row[0].as_int() == 7; }).ok());
}

TEST_F(DatabaseFkTest, DropTableRestrictedWhileReferenced) {
  EXPECT_FALSE(db_.DropTable("parent").ok());
  EXPECT_TRUE(db_.DropTable("child").ok());
  EXPECT_TRUE(db_.DropTable("parent").ok());
}

TEST_F(DatabaseFkTest, CreateTableRejectsUnknownFkTarget) {
  EXPECT_FALSE(db_.CreateTable(Schema("bad", {{"x", ValueType::kInt, false}}, {},
                                      {{{"x"}, "nope", {"y"}}}))
                   .ok());
  EXPECT_FALSE(db_.CreateTable(Schema("bad", {{"x", ValueType::kInt, false}}, {},
                                      {{{"x"}, "parent", {"nope"}}}))
                   .ok());
}

TEST_F(DatabaseFkTest, SelfReferencingForeignKey) {
  ASSERT_TRUE(db_.CreateTable(Schema("tree",
                                     {{"id", ValueType::kInt, true},
                                      {"up", ValueType::kInt, false}},
                                     {"id"}, {{{"up"}, "tree", {"id"}}}))
                  .ok());
  EXPECT_TRUE(db_.Insert("tree", {Value::Int(1), Value::Null()}).ok());
  EXPECT_TRUE(db_.Insert("tree", {Value::Int(2), Value::Int(1)}).ok());
  EXPECT_FALSE(db_.Insert("tree", {Value::Int(3), Value::Int(99)}).ok());
}

TEST(DatabaseTest, TableNamesCaseInsensitive) {
  Database db;
  ASSERT_TRUE(db.CreateTable(Schema("MyTable", {{"a", ValueType::kInt, false}})).ok());
  EXPECT_TRUE(db.HasTable("mytable"));
  EXPECT_NE(db.GetTable("MYTABLE"), nullptr);
  EXPECT_FALSE(db.CreateTable(Schema("mytable", {{"a", ValueType::kInt, false}})).ok());
}

// --- persistence ----------------------------------------------------------------

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "goofi_db_test.db";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  Database db;
  ASSERT_TRUE(db.CreateTable(Schema("parent",
                                    {{"id", ValueType::kInt, true},
                                     {"label", ValueType::kText, false}},
                                    {"id"}))
                  .ok());
  ASSERT_TRUE(db.CreateTable(Schema("child",
                                    {{"cid", ValueType::kInt, true},
                                     {"pid", ValueType::kInt, false},
                                     {"note", ValueType::kText, false}},
                                    {"cid"}, {{{"pid"}, "parent", {"id"}}}))
                  .ok());
  ASSERT_TRUE(db.Insert("parent", {Value::Int(1), Value::Text("tab\tnewline\nback\\slash")}).ok());
  ASSERT_TRUE(db.Insert("child", {Value::Int(10), Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db.Save(path_).ok());

  Database loaded;
  ASSERT_TRUE(loaded.Load(path_).ok());
  ASSERT_TRUE(loaded.HasTable("parent"));
  ASSERT_TRUE(loaded.HasTable("child"));
  const Table* parent = loaded.GetTable("parent");
  EXPECT_EQ(parent->size(), 1u);
  const auto slot = parent->FindByPrimaryKey({Value::Int(1)});
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(parent->slots()[*slot][1].as_text(), "tab\tnewline\nback\\slash");
  // FK metadata survived: inserting an orphan child still fails.
  EXPECT_FALSE(loaded.Insert("child", {Value::Int(11), Value::Int(99), Value::Null()}).ok());
}

TEST_F(PersistenceTest, LoadRejectsCorruptFile) {
  Database db;
  ASSERT_TRUE(db.CreateTable(Schema("t", {{"a", ValueType::kInt, false}})).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.Save(path_).ok());

  // Flip a byte in the body; the CRC trailer must catch it.
  std::string content;
  {
    std::ifstream in(path_, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(content.size(), 8u);
  content[content.size() / 2] ^= 0xFF;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }
  Database loaded;
  const auto st = loaded.Load(path_);
  EXPECT_FALSE(st.ok());
}

TEST_F(PersistenceTest, LoadMissingFileFails) {
  Database loaded;
  EXPECT_EQ(loaded.Load("/nonexistent/dir/x.db").code(),
            util::StatusCode::kIoError);
}

}  // namespace
}  // namespace goofi::db
