// Property and semantics tests for golden-trace convergence pruning (PR 4).
//
// The headline property: a pruned campaign — experiments terminated early
// once their state digest rejoins the golden trace (or a memoized faulty
// suffix) at a checkpoint boundary — leaves the database byte-identical to
// an unpruned run of the same campaign, with equal Stats, for every
// technique, fault model, workload class, log mode, interval and worker
// count. Pruning may only ever change *how fast* a result is produced,
// never the result.
#include "core/convergence.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/goofi.hpp"
#include "cpu/memory.hpp"
#include "cpu/state_hash.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::core {
namespace {

CampaignData ThorScifiCampaign(const std::string& name) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = ThorRdTarget::kTargetName;
  campaign.technique = Technique::kScifi;
  campaign.num_experiments = 8;
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1000;
  campaign.timeout_cycles = 100000;
  return campaign;
}

/// Pipeline latches are refreshed every instruction, so most flips there are
/// architecturally masked within a few instructions: the canonical campaign
/// for *guaranteed* convergence traffic.
CampaignData ThorPipelineCampaign(const std::string& name) {
  CampaignData campaign = ThorScifiCampaign(name);
  campaign.locations = {{"boundary", "pipeline"}};
  campaign.inject_max_instr = 500;
  return campaign;
}

CampaignData ThorControlCampaign(const std::string& name) {
  CampaignData campaign = ThorScifiCampaign(name);
  campaign.workload = "pendulum_pd";
  campaign.num_experiments = 6;
  campaign.inject_max_instr = 2000;
  campaign.max_iterations = 40;
  return campaign;
}

CampaignData SwifiRuntimeCampaign(const std::string& name) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = SwifiSimTarget::kTargetName;
  campaign.technique = Technique::kSwifiRuntime;
  campaign.num_experiments = 8;
  campaign.workload = "fibonacci";
  campaign.locations = {{"memory.text", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 500;
  campaign.timeout_cycles = 100000;
  return campaign;
}

CampaignData SwifiPreRuntimeCampaign(const std::string& name) {
  CampaignData campaign = SwifiRuntimeCampaign(name);
  campaign.technique = Technique::kSwifiPreRuntime;
  campaign.workload = "cruise_pi";
  campaign.locations = {{"memory.data", ""}};
  campaign.num_experiments = 6;
  campaign.max_iterations = 40;
  return campaign;
}

/// Everything a run leaves behind that equivalence is asserted over.
struct RunResult {
  util::Status status;
  std::vector<CampaignStore::ExperimentRow> rows;  ///< insertion order
  FaultInjectionAlgorithms::Stats stats;
  ConvergenceStats prune;
  std::string db_bytes;  ///< the Save() file, CRC trailer and all
};

/// One self-contained session: fresh database + store + registered target.
struct Session {
  db::Database db;
  CampaignStore store;

  explicit Session(const CampaignData& campaign) : store(&db) {
    if (campaign.target_name == ThorRdTarget::kTargetName) {
      testcard::SimTestCard card;
      EXPECT_TRUE(store
                      .PutTargetSystem(ThorRdTarget::DescribeTarget(
                          card, ThorRdTarget::kTargetName))
                      .ok());
    } else {
      EXPECT_TRUE(store.PutTargetSystem(SwifiSimTarget::Describe()).ok());
    }
    EXPECT_TRUE(store.PutCampaign(campaign).ok());
  }

  RunResult Snapshot(util::Status status,
                     const FaultInjectionAlgorithms::Stats& stats,
                     const ConvergenceStats& prune,
                     const std::string& campaign_name) {
    RunResult result;
    result.status = std::move(status);
    result.stats = stats;
    result.prune = prune;
    auto rows = store.ExperimentsOf(campaign_name);
    if (rows.ok()) result.rows = std::move(rows).value();
    const std::string path =
        testing::TempDir() + "goofi_convergence_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".db";
    EXPECT_TRUE(db.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    result.db_bytes = buf.str();
    std::remove(path.c_str());
    return result;
  }
};

/// Unpruned serial baseline (no checkpointing either).
RunResult RunCold(const CampaignData& campaign) {
  Session session(campaign);
  auto drive = [&](FaultInjectionAlgorithms& target) {
    util::Status status = target.RunCampaign(campaign.name);
    return session.Snapshot(std::move(status), target.stats(),
                            target.prune_stats(), campaign.name);
  };
  if (campaign.target_name == ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    ThorRdTarget target(&session.store, &card);
    return drive(target);
  }
  SwifiSimTarget target(&session.store);
  return drive(target);
}

/// Serial run with pruning enabled. `force` additionally engages warm-start
/// fast-forward (the run-pruned shell command always forces it); `swifi_fast`
/// lets the superblock fast path be switched off to test the slow-path
/// boundary stops.
RunResult RunPrunedSerial(const CampaignData& campaign, uint64_t interval,
                          bool force = true, bool swifi_fast = true) {
  Session session(campaign);
  auto drive = [&](FaultInjectionAlgorithms& target) {
    target.SetCheckpointInterval(interval);
    target.SetForceWarmStart(force);
    target.SetConvergencePruning(true);
    util::Status status = target.RunCampaign(campaign.name);
    return session.Snapshot(std::move(status), target.stats(),
                            target.prune_stats(), campaign.name);
  };
  if (campaign.target_name == ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    ThorRdTarget target(&session.store, &card);
    return drive(target);
  }
  SwifiSimTarget target(&session.store);
  target.set_use_fast_run(swifi_fast);
  return drive(target);
}

RunResult RunPrunedParallel(const CampaignData& campaign, int workers,
                            uint64_t interval) {
  Session session(campaign);
  const auto factory = campaign.target_name == ThorRdTarget::kTargetName
                           ? MakeSimThorFactory(&session.store)
                           : MakeSwifiSimFactory(&session.store);
  ParallelCampaignRunner runner(&session.store, factory, workers);
  runner.SetCheckpointInterval(interval);
  runner.SetForceWarmStart(true);
  runner.SetConvergencePruning(true);
  util::Status status = runner.Run(campaign.name);
  return session.Snapshot(std::move(status), runner.stats(),
                          runner.prune_stats(), campaign.name);
}

void ExpectIdentical(const RunResult& cold, const RunResult& pruned) {
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ASSERT_TRUE(pruned.status.ok()) << pruned.status.ToString();
  ASSERT_EQ(cold.rows.size(), pruned.rows.size());
  for (size_t i = 0; i < cold.rows.size(); ++i) {
    EXPECT_EQ(cold.rows[i].experiment_name, pruned.rows[i].experiment_name)
        << "row " << i << " out of order";
    EXPECT_EQ(cold.rows[i].experiment_data, pruned.rows[i].experiment_data)
        << "row " << i;
    EXPECT_EQ(cold.rows[i].state.Serialize(), pruned.rows[i].state.Serialize())
        << "row " << i;
  }
  EXPECT_EQ(cold.stats, pruned.stats) << "pruned Stats must equal cold Stats";
  EXPECT_EQ(cold.db_bytes, pruned.db_bytes)
      << "database files must be byte-identical";
}

// ---------------------------------------------------------------------------
// Data-structure semantics.
// ---------------------------------------------------------------------------

TEST(ConvergenceTest, FindBoundaryIsExactMatchOnly) {
  GoldenTrace trace;
  for (uint64_t instret : {0ull, 64ull, 128ull}) {
    GoldenBoundary boundary;
    boundary.instret = instret;
    boundary.hash = instret + 1;
    trace.AddBoundary(std::move(boundary));
  }
  ASSERT_NE(trace.FindBoundary(0), nullptr);
  EXPECT_EQ(trace.FindBoundary(0)->hash, 1u);
  ASSERT_NE(trace.FindBoundary(64), nullptr);
  EXPECT_EQ(trace.FindBoundary(64)->hash, 65u);
  // Strictly exact: a faulty run stopped mid-interval must never be compared
  // against the nearest boundary.
  EXPECT_EQ(trace.FindBoundary(63), nullptr);
  EXPECT_EQ(trace.FindBoundary(65), nullptr);
  EXPECT_EQ(trace.FindBoundary(129), nullptr);
}

TEST(ConvergenceTest, ConvergenceMatchRejectsHashCollisions) {
  GoldenBoundary boundary;
  boundary.instret = 64;
  boundary.hash = 42;
  boundary.blob = {1, 2, 3};
  EXPECT_TRUE(ConvergenceMatch(boundary, 42, {1, 2, 3}));
  // Same 64-bit hash, different full state: the adversarial collision case.
  // The blob compare must turn it into a miss, never a false convergence.
  EXPECT_FALSE(ConvergenceMatch(boundary, 42, {1, 2, 4}));
  EXPECT_FALSE(ConvergenceMatch(boundary, 43, {1, 2, 3}));
  EXPECT_FALSE(ConvergenceMatch(boundary, 42, {}));
}

TEST(ConvergenceTest, MemoLookupVerifiesBlobBeforeHit) {
  ConvergenceMemo memo;
  LoggedState final_state;
  final_state.cycles = 7;
  EXPECT_TRUE(memo.Insert(100, 42, {1, 2}, final_state));
  LoggedState out;
  // Hash collision with a different faulty state: must miss.
  EXPECT_FALSE(memo.Lookup(100, 42, {9, 9}, &out));
  // Same hash at a different instret: distinct key, must miss.
  EXPECT_FALSE(memo.Lookup(200, 42, {1, 2}, &out));
  ASSERT_TRUE(memo.Lookup(100, 42, {1, 2}, &out));
  EXPECT_EQ(out.cycles, 7u);
}

TEST(ConvergenceTest, MemoIsBoundedAndFirstWriterWins) {
  ConvergenceMemo memo;
  LoggedState first;
  first.cycles = 1;
  ASSERT_TRUE(memo.Insert(0, 0, {0}, first));
  LoggedState second;
  second.cycles = 2;
  EXPECT_FALSE(memo.Insert(0, 0, {0}, second)) << "duplicate key";
  LoggedState out;
  ASSERT_TRUE(memo.Lookup(0, 0, {0}, &out));
  EXPECT_EQ(out.cycles, 1u) << "first writer must win";
  for (uint64_t i = 1; i < ConvergenceMemo::kMaxEntries + 16; ++i) {
    memo.Insert(i, i, {static_cast<uint8_t>(i)}, first);
  }
  EXPECT_EQ(memo.size(), ConvergenceMemo::kMaxEntries)
      << "adversarial campaigns must not grow the memo unboundedly";
}

TEST(ConvergenceTest, MemoConcurrentHammerStaysConsistent) {
  // Shared across ParallelCampaignRunner workers: concurrent inserts and
  // lookups on overlapping keys must be race-free (run under TSan by
  // scripts/tier1.sh). Every writer of key k stores cycles == k, so any hit
  // must observe exactly that.
  ConvergenceMemo memo;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&memo, t] {
      for (int i = 0; i < 500; ++i) {
        const uint64_t key = static_cast<uint64_t>((i * 7 + t) % 64);
        const std::vector<uint8_t> blob = {static_cast<uint8_t>(key)};
        LoggedState state;
        state.cycles = key;
        memo.Insert(key, key, blob, state);
        LoggedState out;
        if (memo.Lookup(key, key, blob, &out)) {
          EXPECT_EQ(out.cycles, key);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(memo.size(), 64u);
}

// ---------------------------------------------------------------------------
// Golden trace construction.
// ---------------------------------------------------------------------------

TEST(ConvergenceTest, GoldenTraceBuildIsDeterministic) {
  db::Database db;
  CampaignStore store(&db);
  testcard::SimTestCard card;
  ASSERT_TRUE(store
                  .PutTargetSystem(ThorRdTarget::DescribeTarget(
                      card, ThorRdTarget::kTargetName))
                  .ok());
  const CampaignData campaign = ThorScifiCampaign("cv_trace");
  ASSERT_TRUE(store.PutCampaign(campaign).ok());
  ThorRdTarget target(&store, &card);
  target.SetCheckpointInterval(0);  // build explicitly below
  ASSERT_TRUE(target.PrepareCampaign(campaign).ok());
  GoldenTrace first;
  ASSERT_TRUE(target.BuildGoldenRun(64, nullptr, &first).ok());
  EXPECT_EQ(first.interval(), 64u);
  EXPECT_EQ(first.campaign_name(), campaign.name);
  ASSERT_TRUE(first.has_final_state());
  EXPECT_TRUE(first.final_state().halted);
  ASSERT_GT(first.boundaries().size(), 2u);
  uint64_t previous = 0;
  for (size_t i = 0; i < first.boundaries().size(); ++i) {
    const GoldenBoundary& boundary = first.boundaries()[i];
    EXPECT_EQ(boundary.instret % 64, 0u) << "boundary " << i;
    if (i > 0) {
      EXPECT_GT(boundary.instret, previous) << "boundary " << i;
    }
    previous = boundary.instret;
    EXPECT_FALSE(boundary.blob.empty()) << "collision guard requires the blob";
  }
  EXPECT_EQ(first.boundaries().front().instret, 0u)
      << "capture must start at the experiment program point, instret 0";
  GoldenTrace second;
  ASSERT_TRUE(target.BuildGoldenRun(64, nullptr, &second).ok());
  ASSERT_EQ(first.boundaries().size(), second.boundaries().size());
  for (size_t i = 0; i < first.boundaries().size(); ++i) {
    EXPECT_EQ(first.boundaries()[i].instret, second.boundaries()[i].instret);
    EXPECT_EQ(first.boundaries()[i].hash, second.boundaries()[i].hash);
    EXPECT_EQ(first.boundaries()[i].blob, second.boundaries()[i].blob);
  }
  EXPECT_EQ(first.final_state().Serialize(), second.final_state().Serialize());
}

TEST(ConvergenceTest, BuildGoldenRunRejectsDegenerateArguments) {
  db::Database db;
  CampaignStore store(&db);
  ASSERT_TRUE(store.PutTargetSystem(SwifiSimTarget::Describe()).ok());
  const CampaignData campaign = SwifiRuntimeCampaign("cv_args");
  ASSERT_TRUE(store.PutCampaign(campaign).ok());
  SwifiSimTarget target(&store);
  target.SetCheckpointInterval(0);
  ASSERT_TRUE(target.PrepareCampaign(campaign).ok());
  GoldenTrace trace;
  EXPECT_FALSE(target.BuildGoldenRun(0, nullptr, &trace).ok());
  EXPECT_FALSE(target.BuildGoldenRun(64, nullptr, nullptr).ok());
  EXPECT_TRUE(target.BuildGoldenRun(64, nullptr, &trace).ok());
  EXPECT_TRUE(trace.has_final_state());
}

// ---------------------------------------------------------------------------
// Pruned == unpruned, end to end.
// ---------------------------------------------------------------------------

TEST(ConvergenceTest, ScifiRegfilePrunedMatchesColdAtEveryInterval) {
  const CampaignData campaign = ThorScifiCampaign("cv_scifi");
  const RunResult cold = RunCold(campaign);
  EXPECT_EQ(cold.prune.boundary_checks, 0);
  for (uint64_t interval : {64ull, 4096ull}) {
    SCOPED_TRACE("interval=" + std::to_string(interval));
    ExpectIdentical(cold, RunPrunedSerial(campaign, interval));
  }
}

TEST(ConvergenceTest, ScifiPipelineCampaignActuallyPrunes) {
  // Pipeline latches are overwritten every instruction, so several of the
  // eight transient flips must be masked and converge with golden. This is
  // the test that proves the machinery *fires*, not merely stays inert.
  const CampaignData campaign = ThorPipelineCampaign("cv_pipe");
  const RunResult cold = RunCold(campaign);
  const RunResult pruned = RunPrunedSerial(campaign, 64);
  EXPECT_GT(pruned.prune.boundary_checks, 0);
  EXPECT_GT(pruned.prune.pruned_golden, 0)
      << "masked pipeline flips must converge with the golden trace";
  ExpectIdentical(cold, pruned);
}

TEST(ConvergenceTest, ControlWorkloadPrunedMatchesCold) {
  // Environment-in-the-loop workload: the hash must cover the plant state,
  // the iteration count and the actuator CRC, or a pruned run would miss
  // faults that only perturb the environment.
  const CampaignData campaign = ThorControlCampaign("cv_env");
  const RunResult cold = RunCold(campaign);
  for (uint64_t interval : {64ull, 4096ull}) {
    SCOPED_TRACE("interval=" + std::to_string(interval));
    ExpectIdentical(cold, RunPrunedSerial(campaign, interval));
  }
}

TEST(ConvergenceTest, DetailModePrunedSynthesizesGoldenSuffixRows) {
  // Detail mode logs one row per instruction: a pruned experiment must
  // splice the golden detail suffix after its convergence point so the
  // detail table stays byte-identical to a full run.
  CampaignData campaign = ThorPipelineCampaign("cv_detail");
  campaign.log_mode = LogMode::kDetail;
  campaign.num_experiments = 3;
  campaign.inject_max_instr = 200;
  const RunResult cold = RunCold(campaign);
  ASSERT_GT(cold.rows.size(), 4u) << "expected detail rows";
  const RunResult pruned = RunPrunedSerial(campaign, 64);
  EXPECT_GT(pruned.prune.pruned_golden, 0)
      << "detail-mode convergence must still prune";
  ExpectIdentical(cold, pruned);
}

TEST(ConvergenceTest, DetailModeRegfilePrunedMatchesCold) {
  CampaignData campaign = ThorScifiCampaign("cv_detail_rf");
  campaign.log_mode = LogMode::kDetail;
  campaign.num_experiments = 3;
  campaign.inject_max_instr = 200;
  ExpectIdentical(RunCold(campaign), RunPrunedSerial(campaign, 64));
}

TEST(ConvergenceTest, RuntimeSwifiPrunedMatchesColdAtEveryInterval) {
  const CampaignData campaign = SwifiRuntimeCampaign("cv_swifi");
  const RunResult cold = RunCold(campaign);
  for (uint64_t interval : {64ull, 4096ull}) {
    SCOPED_TRACE("interval=" + std::to_string(interval));
    const RunResult pruned = RunPrunedSerial(campaign, interval);
    if (interval == 64) {
      // The fibonacci suffix is long enough to cross 64-instruction
      // boundaries after injection; at 4096 the run may end first.
      EXPECT_GT(pruned.prune.boundary_checks, 0);
    }
    ExpectIdentical(cold, pruned);
  }
}

TEST(ConvergenceTest, RuntimeSwifiSlowPathPrunedMatchesCold) {
  // Fast path off: boundary stops run through the reference Step() loop.
  const CampaignData campaign = SwifiRuntimeCampaign("cv_swifi_slow");
  ExpectIdentical(RunCold(campaign),
                  RunPrunedSerial(campaign, 64, /*force=*/true,
                                  /*swifi_fast=*/false));
}

TEST(ConvergenceTest, PreRuntimeSwifiPrunedMatchesCold) {
  const CampaignData campaign = SwifiPreRuntimeCampaign("cv_swifi_pre");
  const RunResult cold = RunCold(campaign);
  const RunResult pruned = RunPrunedSerial(campaign, 64);
  EXPECT_GT(pruned.prune.boundary_checks, 0)
      << "pre-runtime faults are injected before instret 0: every boundary "
         "is a comparison opportunity";
  ExpectIdentical(cold, pruned);
}

TEST(ConvergenceTest, PermanentStuckAtPreRuntimeSwifiPrunedMatchesCold) {
  // This target applies each fault exactly once (no reactivation machinery),
  // so permanent stuck-at is prunable here — a stuck-at writing the value
  // already present converges at the first boundary.
  CampaignData campaign = SwifiPreRuntimeCampaign("cv_swifi_perm");
  campaign.fault_model = FaultModelKind::kPermanentStuckAt;
  ExpectIdentical(RunCold(campaign), RunPrunedSerial(campaign, 64));
}

TEST(ConvergenceTest, IntermittentModelReactivationPrunedMatchesCold) {
  // Adversarial case: an intermittent fault re-activates *after* a boundary
  // where the faulty state happened to equal golden. The burst gate must
  // keep such experiments unpruned until the last activation has fired.
  CampaignData campaign = ThorPipelineCampaign("cv_intermittent");
  campaign.fault_model = FaultModelKind::kIntermittentBitFlip;
  const RunResult cold = RunCold(campaign);
  ExpectIdentical(cold, RunPrunedSerial(campaign, 64));
}

TEST(ConvergenceTest, PermanentModelNeverPrunesOnThor) {
  // A permanent stuck-at on the scan-chain target re-applies at every
  // reactivation for the rest of the run: the faulty future is NOT the
  // golden future even when the state momentarily matches. Pruning must
  // stay entirely disabled, and the results still identical.
  CampaignData campaign = ThorScifiCampaign("cv_perm");
  campaign.fault_model = FaultModelKind::kPermanentStuckAt;
  const RunResult cold = RunCold(campaign);
  const RunResult pruned = RunPrunedSerial(campaign, 64);
  EXPECT_EQ(pruned.prune.boundary_checks, 0);
  EXPECT_EQ(pruned.prune.pruned_total(), 0);
  ExpectIdentical(cold, pruned);
}

TEST(ConvergenceTest, ParallelPrunedSharesTraceAndMatchesCold) {
  const CampaignData campaign = ThorPipelineCampaign("cv_par");
  const RunResult cold = RunCold(campaign);
  for (int workers : {2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult pruned = RunPrunedParallel(campaign, workers, 64);
    EXPECT_GT(pruned.prune.pruned_total(), 0);
    ExpectIdentical(cold, pruned);
  }
}

TEST(ConvergenceTest, ParallelPrunedSwifiMatchesCold) {
  const CampaignData campaign = SwifiRuntimeCampaign("cv_par_swifi");
  const RunResult cold = RunCold(campaign);
  const RunResult pruned = RunPrunedParallel(campaign, 8, 64);
  ExpectIdentical(cold, pruned);
}

TEST(ConvergenceTest, PrunedWithoutForcedWarmStartMatchesCold) {
  // Pruning is orthogonal to warm-start: with force off and early
  // injections the cache stays cold, yet the trace still prunes.
  const CampaignData campaign = ThorPipelineCampaign("cv_noforce");
  ExpectIdentical(RunCold(campaign),
                  RunPrunedSerial(campaign, 64, /*force=*/false));
}

// ---------------------------------------------------------------------------
// Fuzz tests (run under ASan by scripts/tier1.sh --gtest_filter=*Fuzz*).
// ---------------------------------------------------------------------------

struct Xorshift {
  uint64_t state;
  explicit Xorshift(uint64_t seed) : state(seed | 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

TEST(ConvergenceFuzzTest, StateHasherFuzzBlobReproducesHash) {
  // The blob must be exactly the digested byte stream: replaying it through
  // a fresh hasher reproduces the hash regardless of how the original
  // stream was chunked into Append calls, and capture mode must not change
  // the digest.
  for (uint64_t seed : {1ull, 0x600F1ull, 0xDEADBEEFull}) {
    Xorshift rng(seed);
    cpu::StateHasher plain(false);
    cpu::StateHasher capturing(true);
    const int ops = 200 + static_cast<int>(rng.Next() % 200);
    for (int i = 0; i < ops; ++i) {
      const uint64_t value = rng.Next();
      switch (rng.Next() % 7) {
        case 0:
          plain.U8(static_cast<uint8_t>(value));
          capturing.U8(static_cast<uint8_t>(value));
          break;
        case 1:
          plain.U32(static_cast<uint32_t>(value));
          capturing.U32(static_cast<uint32_t>(value));
          break;
        case 2:
          plain.U64(value);
          capturing.U64(value);
          break;
        case 3:
          plain.I32(static_cast<int32_t>(value));
          capturing.I32(static_cast<int32_t>(value));
          break;
        case 4:
          plain.Bool(value & 1);
          capturing.Bool(value & 1);
          break;
        case 5: {
          const double d = static_cast<double>(value) * 1e-3;
          plain.Double(d);
          capturing.Double(d);
          break;
        }
        default: {
          const std::string s(value % 32, static_cast<char>('a' + value % 26));
          plain.Str(s);
          capturing.Str(s);
          break;
        }
      }
    }
    EXPECT_EQ(plain.hash(), capturing.hash())
        << "capture mode must not perturb the digest";
    EXPECT_TRUE(plain.blob().empty());
    const std::vector<uint8_t> blob = capturing.blob();
    ASSERT_FALSE(blob.empty());
    cpu::StateHasher replay(false);
    replay.Bytes(blob.data(), blob.size());
    EXPECT_EQ(replay.hash(), capturing.hash())
        << "blob is not the exact digested stream";
    // Perturb one byte: the digest must move (FNV-1a mixes every byte).
    std::vector<uint8_t> corrupted = blob;
    corrupted[rng.Next() % corrupted.size()] ^= 0x40;
    cpu::StateHasher other(false);
    other.Bytes(corrupted.data(), corrupted.size());
    EXPECT_NE(other.hash(), capturing.hash());
  }
}

TEST(ConvergenceFuzzTest, MemoryCanonicalHashFuzzIsContentOnly) {
  // The canonical memory digest must be a function of contents alone:
  // invariant under dirty-bit scrubbing, under checkpoint save/restore, and
  // under writing a word away from and back to its current value.
  for (uint64_t seed : {3ull, 0xBADF00Dull}) {
    Xorshift rng(seed);
    cpu::Memory memory(32 * 1024);
    for (int i = 0; i < 512; ++i) {
      ASSERT_TRUE(memory
                      .HostWrite(static_cast<uint32_t>((rng.Next() % 8192) * 4),
                                 static_cast<uint32_t>(rng.Next()))
                      .ok());
    }
    memory.MarkCleanBaseline();
    for (int i = 0; i < 256; ++i) {
      ASSERT_TRUE(memory
                      .HostWrite(static_cast<uint32_t>((rng.Next() % 8192) * 4),
                                 static_cast<uint32_t>(rng.Next()))
                      .ok());
    }
    cpu::StateHasher reference(true);
    memory.HashCanonicalState(&reference, /*scrub_clean_pages=*/false);

    cpu::StateHasher scrubbing(false);
    memory.HashCanonicalState(&scrubbing, /*scrub_clean_pages=*/true);
    EXPECT_EQ(scrubbing.hash(), reference.hash());
    cpu::StateHasher after_scrub(true);
    memory.HashCanonicalState(&after_scrub, /*scrub_clean_pages=*/false);
    EXPECT_EQ(after_scrub.hash(), reference.hash());
    EXPECT_EQ(after_scrub.blob(), reference.blob());

    // Round-trip through a checkpoint delta.
    const cpu::Memory::Delta delta = memory.CaptureDelta();
    for (int i = 0; i < 128; ++i) {
      ASSERT_TRUE(memory
                      .HostWrite(static_cast<uint32_t>((rng.Next() % 8192) * 4),
                                 static_cast<uint32_t>(rng.Next()))
                      .ok());
    }
    memory.RestoreDelta(delta);
    cpu::StateHasher restored(true);
    memory.HashCanonicalState(&restored, /*scrub_clean_pages=*/false);
    EXPECT_EQ(restored.hash(), reference.hash());
    EXPECT_EQ(restored.blob(), reference.blob());

    // Dirty a word without changing it (write away, write back): the hash
    // must not see the excursion.
    const uint32_t address = static_cast<uint32_t>((rng.Next() % 8192) * 4);
    const uint32_t original = memory.HostRead(address).ValueOrDie();
    ASSERT_TRUE(memory.HostWrite(address, ~original).ok());
    ASSERT_TRUE(memory.HostWrite(address, original).ok());
    cpu::StateHasher excursion(true);
    memory.HashCanonicalState(&excursion, /*scrub_clean_pages=*/false);
    EXPECT_EQ(excursion.hash(), reference.hash());
    EXPECT_EQ(excursion.blob(), reference.blob());
  }
}

}  // namespace
}  // namespace goofi::core
