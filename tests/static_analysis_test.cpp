// Tests for the static workload analyzer (PR 10): CFG construction, the
// generic worklist solver, the lint passes, and the two prune predicates.
//
// Two headline properties:
//   1. Static-dead ⊆ dynamic-dead: every register the analyzer proves
//      never-accessed (and every memory word it proves never-read) must also
//      be never-accessed/never-read in the fault-free *execution* recorded by
//      core/preinjection — asserted differentially over every built-in
//      workload and over randomized synthetic programs.
//   2. run-static == cold: a campaign run with static no-effect equivalence
//      classes (core/equivalence key kinds 5-7) leaves the database
//      byte-identical to a plain run, with equal Stats, across techniques,
//      log modes and worker counts.
#include "core/static_analysis.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/goofi.hpp"
#include "core/preinjection.hpp"
#include "db/database.hpp"
#include "isa/assembler.hpp"
#include "isa/cfg.hpp"
#include "testcard/testcard.hpp"

namespace goofi::core {
namespace {

env::WorkloadSpec Spec(const char* name, const std::string& source) {
  env::WorkloadSpec spec;
  spec.name = name;
  spec.source = source;
  spec.result_symbol = "result";
  spec.result_words = 1;
  return spec;
}

isa::Cfg BuildCfg(const std::string& source) {
  auto program = isa::Assemble(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto cfg = isa::Cfg::Build(program.value());
  EXPECT_TRUE(cfg.ok()) << cfg.status().ToString();
  return std::move(cfg).value();
}

uint32_t SymbolOf(const std::string& source, const std::string& name) {
  auto program = isa::Assemble(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto symbol = program.value().Symbol(name);
  EXPECT_TRUE(symbol.ok()) << symbol.status().ToString();
  return symbol.ok() ? symbol.value() : 0;
}

// ---------------------------------------------------------------------------
// CFG construction.
// ---------------------------------------------------------------------------

const char* const kStraightLine = R"(
_start:
    addi r1, r0, 5
    addi r2, r1, 7
    li   r3, result
    stw  r2, [r3]
    halt
_etext:
result:
    .word 0
)";

TEST(CfgTest, StraightLineIsOneBlock) {
  const isa::Cfg cfg = BuildCfg(kStraightLine);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  const isa::BasicBlock& block = cfg.blocks()[0];
  EXPECT_TRUE(block.reachable);
  EXPECT_FALSE(block.degraded);
  EXPECT_TRUE(block.successors.empty()) << "halt terminates the block";
  EXPECT_TRUE(cfg.has_text_segment());
  EXPECT_FALSE(cfg.unresolved_indirect());
  EXPECT_EQ(cfg.entry_block(), 0u);
}

const char* const kDiamond = R"(
_start:
    addi r1, r0, 3
    beq  r1, r0, else_
    addi r2, r0, 1
    jmp  join
else_:
    addi r2, r0, 2
join:
    li   r3, result
    stw  r2, [r3]
    halt
_etext:
result:
    .word 0
)";

TEST(CfgTest, DiamondHasBranchFallthroughAndJumpEdges) {
  const isa::Cfg cfg = BuildCfg(kDiamond);
  ASSERT_EQ(cfg.blocks().size(), 4u);
  const size_t b_else = cfg.BlockAt(SymbolOf(kDiamond, "else_"));
  const size_t b_join = cfg.BlockAt(SymbolOf(kDiamond, "join"));
  ASSERT_NE(b_else, isa::Cfg::npos);
  ASSERT_NE(b_join, isa::Cfg::npos);

  const isa::BasicBlock& head = cfg.blocks()[cfg.entry_block()];
  ASSERT_EQ(head.successors.size(), 2u);
  bool saw_taken = false, saw_fallthrough = false;
  for (const isa::CfgEdge& edge : head.successors) {
    if (edge.kind == isa::CfgEdgeKind::kBranchTaken) {
      EXPECT_EQ(edge.to, b_else);
      saw_taken = true;
    }
    if (edge.kind == isa::CfgEdgeKind::kFallthrough) saw_fallthrough = true;
  }
  EXPECT_TRUE(saw_taken);
  EXPECT_TRUE(saw_fallthrough);

  // The then-arm ends in `jmp join`; the else-arm falls through into join.
  int join_preds = 0;
  for (const isa::BasicBlock& block : cfg.blocks()) {
    for (const isa::CfgEdge& edge : block.successors) {
      if (edge.to == b_join) {
        ++join_preds;
        EXPECT_TRUE(edge.kind == isa::CfgEdgeKind::kJump ||
                    edge.kind == isa::CfgEdgeKind::kFallthrough);
      }
    }
  }
  EXPECT_EQ(join_preds, 2);
  // Predecessor lists mirror successor edges.
  EXPECT_EQ(cfg.blocks()[b_join].predecessors.size(), 2u);
  for (const isa::BasicBlock& block : cfg.blocks()) {
    EXPECT_TRUE(block.reachable);
    EXPECT_FALSE(block.degraded);
  }
}

const char* const kLoop = R"(
_start:
    addi r1, r0, 0
    addi r2, r0, 10
head:
    bgeu r1, r2, done
    addi r1, r1, 1
    jmp  head
done:
    li   r3, result
    stw  r1, [r3]
    halt
_etext:
result:
    .word 0
)";

TEST(CfgTest, LoopHasBackEdge) {
  const isa::Cfg cfg = BuildCfg(kLoop);
  const size_t b_head = cfg.BlockAt(SymbolOf(kLoop, "head"));
  ASSERT_NE(b_head, isa::Cfg::npos);
  bool back_edge = false;
  for (const isa::BasicBlock& block : cfg.blocks()) {
    for (const isa::CfgEdge& edge : block.successors) {
      if (edge.to == b_head &&
          block.begin_addr >= cfg.blocks()[b_head].begin_addr) {
        back_edge = true;
      }
    }
  }
  EXPECT_TRUE(back_edge);
  for (const isa::BasicBlock& block : cfg.blocks()) {
    EXPECT_TRUE(block.reachable);
  }
  EXPECT_TRUE(cfg.UnreachableBlocks().empty());
}

const char* const kIndirect = R"(
_start:
    li   r3, target
    jr   r3
target:
    halt
_etext:
result:
    .word 0
)";

TEST(CfgTest, UnresolvedIndirectJumpDegradesEveryBlock) {
  const isa::Cfg cfg = BuildCfg(kIndirect);
  EXPECT_TRUE(cfg.unresolved_indirect());
  EXPECT_FALSE(cfg.notes().empty());
  for (const isa::BasicBlock& block : cfg.blocks()) {
    EXPECT_TRUE(block.reachable)
        << "an unresolved graph must mark everything reachable";
    EXPECT_TRUE(block.degraded);
  }
  EXPECT_TRUE(cfg.UnreachableBlocks().empty())
      << "no unreachable-code lint on an unresolved graph";
}

TEST(StaticAnalysisTest, UnresolvedIndirectJumpPrunesNothing) {
  auto analysis = StaticAnalysis::BuildFromSpec(Spec("indirect", kIndirect));
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis.value()->registers_degraded());
  EXPECT_TRUE(analysis.value()->memory_degraded());
  for (int reg = 0; reg < 16; ++reg) {
    EXPECT_FALSE(analysis.value()->RegisterNeverAccessed(reg)) << "r" << reg;
  }
  EXPECT_EQ(analysis.value()->NeverReadWordCount(), 0u);
  EXPECT_FALSE(
      analysis.value()->MemoryWordNeverRead(SymbolOf(kIndirect, "result")));
}

const char* const kCallChain = R"(
_start:
    addi r1, r0, 0
    call func
    call func
    li   r3, result
    stw  r1, [r3]
    halt
func:
    addi r1, r1, 1
    ret
_etext:
result:
    .word 0
)";

TEST(CfgTest, LinkRegisterDisciplineResolvesReturns) {
  const isa::Cfg cfg = BuildCfg(kCallChain);
  EXPECT_FALSE(cfg.unresolved_indirect())
      << "jr lr with JAL-only lr writes must resolve via return sites";
  const size_t b_func = cfg.BlockAt(SymbolOf(kCallChain, "func"));
  ASSERT_NE(b_func, isa::Cfg::npos);
  // The function body ends in `ret` (jr lr): its successors are the return
  // sites of both calls, as kReturn edges.
  size_t returns = 0;
  for (const isa::CfgEdge& edge : cfg.blocks()[b_func].successors) {
    if (edge.kind == isa::CfgEdgeKind::kReturn) ++returns;
  }
  EXPECT_EQ(returns, 2u);
  for (const isa::BasicBlock& block : cfg.blocks()) {
    EXPECT_TRUE(block.reachable);
    EXPECT_FALSE(block.degraded);
  }
}

// No _etext: nothing is write-protected, and the bounded store below lands
// inside the executing range — possible self-modifying code, so the whole
// analysis must degrade.
const char* const kSelfModifying = R"(
_start:
    li   r1, patch
    addi r2, r0, 0
    stw  r2, [r1]
patch:
    addi r3, r0, 1
    halt
result:
    .word 0
)";

TEST(StaticAnalysisTest, PossiblySelfModifyingStoreDegradesEverything) {
  auto analysis =
      StaticAnalysis::BuildFromSpec(Spec("selfmod", kSelfModifying));
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_FALSE(analysis.value()->cfg().has_text_segment());
  EXPECT_TRUE(analysis.value()->registers_degraded());
  EXPECT_TRUE(analysis.value()->memory_degraded());
  EXPECT_EQ(analysis.value()->NeverAccessedRegisterCount(), 0);
  EXPECT_EQ(analysis.value()->NeverReadWordCount(), 0u);
}

const char* const kDeadCode = R"(
_start:
    jmp  over
dead:
    addi r1, r0, 9
over:
    addi r2, r0, 4
    li   r3, result
    stw  r2, [r3]
    halt
_etext:
result:
    .word 0
)";

TEST(StaticAnalysisTest, UnreachableBlockLint) {
  auto analysis = StaticAnalysis::BuildFromSpec(Spec("deadcode", kDeadCode));
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const uint32_t dead_addr = SymbolOf(kDeadCode, "dead");
  bool found = false;
  for (const LintFinding& finding : analysis.value()->lint()) {
    if (finding.kind == LintFinding::Kind::kUnreachableBlock &&
        finding.address == dead_addr) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << analysis.value()->Report();
  EXPECT_FALSE(analysis.value()->cfg().UnreachableBlocks().empty());
}

// ---------------------------------------------------------------------------
// Generic worklist solver.
// ---------------------------------------------------------------------------

/// Toy forward client: "reachable from entry" as a dataflow fact (state is
/// int, not bool — vector<bool> has no addressable elements). Its fixpoint
/// must agree with the CFG's own BFS reachability.
struct ReachClient {
  using State = int;
  bool forward() const { return true; }
  State Bottom() const { return 0; }
  State Initial(size_t) const { return 1; }
  State Transfer(size_t, const State& in) const { return in; }
  bool Join(State* into, const State& from, size_t, int) const {
    if (*into != 0 || from == 0) return false;
    *into = 1;
    return true;
  }
  State EdgeState(size_t, const isa::CfgEdge&, const State& state) const {
    return state;
  }
};

TEST(SolverTest, FixpointMatchesBfsReachability) {
  const isa::Cfg cfg = BuildCfg(kDeadCode);
  const auto result = SolveDataflow(cfg, ReachClient{});
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.steps, 0u);
  ASSERT_EQ(result.in.size(), cfg.blocks().size());
  const size_t b_dead = cfg.BlockAt(SymbolOf(kDeadCode, "dead"));
  for (size_t b = 0; b < cfg.blocks().size(); ++b) {
    if (b == b_dead) {
      EXPECT_FALSE(result.in[b]) << "unreachable block must stay Bottom";
    } else {
      EXPECT_TRUE(result.in[b]) << "block " << b;
    }
  }
}

TEST(SolverTest, StepBudgetExhaustionReportsNonConvergence) {
  const isa::Cfg cfg = BuildCfg(kLoop);
  const auto result = SolveDataflow(cfg, ReachClient{}, /*max_steps=*/1);
  EXPECT_FALSE(result.converged);
}

TEST(SolverTest, LoopLivenessReachesFixpoint) {
  // In kLoop, r1 and r2 are live around the loop (head reads both), and the
  // liveness solver must push that through the back edge.
  auto analysis = StaticAnalysis::BuildFromSpec(Spec("loop", kLoop));
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const StaticAnalysis& sa = *analysis.value();
  const size_t b_head = sa.cfg().BlockAt(SymbolOf(kLoop, "head"));
  ASSERT_NE(b_head, isa::Cfg::npos);
  EXPECT_TRUE(sa.LiveIn(b_head) & (1u << 1)) << "r1 live into the loop head";
  EXPECT_TRUE(sa.LiveIn(b_head) & (1u << 2)) << "r2 live into the loop head";
  EXPECT_GT(sa.solver_steps(), sa.cfg().blocks().size())
      << "the back edge must force revisits";
}

// ---------------------------------------------------------------------------
// sparse_table: the designed-for-pruning workload.
// ---------------------------------------------------------------------------

TEST(StaticAnalysisTest, SparseTableProvesTailAndUpperRegisters) {
  auto built = StaticAnalysis::Build("sparse_table");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const StaticAnalysis& sa = *built.value();
  EXPECT_FALSE(sa.registers_degraded());
  EXPECT_FALSE(sa.memory_degraded()) << sa.Report();

  // Registers: r9..r15 are never touched; everything the program uses
  // (r1..r8) and r0 must stay unprunable.
  EXPECT_EQ(sa.NeverAccessedRegisterCount(), 7);
  for (int reg : {9, 10, 11, 12, 13, 14, 15}) {
    EXPECT_TRUE(sa.RegisterNeverAccessed(reg)) << "r" << reg;
  }
  for (int reg : {0, 1, 2, 3, 4, 5, 6, 7, 8}) {
    EXPECT_FALSE(sa.RegisterNeverAccessed(reg)) << "r" << reg;
  }

  // Memory: the 52-word table tail is never read; the used head, the text
  // and the host-read result word are not prunable.
  const auto spec = env::GetWorkload("sparse_table");
  ASSERT_TRUE(spec.ok());
  const uint32_t table = SymbolOf(spec.value().source, "table");
  const uint32_t result = SymbolOf(spec.value().source, "result");
  EXPECT_EQ(sa.NeverReadWordCount(), 52u);
  for (uint32_t i = 0; i < 12; ++i) {
    EXPECT_FALSE(sa.MemoryWordNeverRead(table + 4 * i)) << "used word " << i;
  }
  for (uint32_t i = 12; i < 64; ++i) {
    EXPECT_TRUE(sa.MemoryWordNeverRead(table + 4 * i)) << "tail word " << i;
  }
  EXPECT_FALSE(sa.MemoryWordNeverRead(result)) << "host reads the result";
  EXPECT_FALSE(sa.MemoryWordNeverRead(0)) << "text is fetched";
  const uint32_t past_image = sa.cfg().text_begin() +
                              4 * static_cast<uint32_t>(sa.ImageWordCount());
  EXPECT_FALSE(sa.MemoryWordNeverRead(past_image))
      << "outside the image must never be prunable";

  // Read-only classification: everything but the result word (the only store
  // target).
  EXPECT_EQ(sa.ReadOnlyWordCount(), sa.ImageWordCount() - 1);
  EXPECT_TRUE(sa.MemoryWordReadOnly(table));
  EXPECT_FALSE(sa.MemoryWordReadOnly(result));

  // The deliberate dead write to r8 must be flagged; the final r8 (consumed
  // by the result store) must not.
  int dead_writes = 0;
  for (const LintFinding& finding : sa.lint()) {
    if (finding.kind == LintFinding::Kind::kWriteNeverRead) {
      ++dead_writes;
      EXPECT_NE(finding.message.find("r8"), std::string::npos)
          << finding.message;
    }
  }
  EXPECT_EQ(dead_writes, 1) << sa.Report();
}

TEST(StaticAnalysisTest, FilterSkipsOnlyProvenDeadLocations) {
  auto built = StaticAnalysis::Build("sparse_table");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto filter = built.value()->MakeFilter();
  const auto spec = env::GetWorkload("sparse_table");
  ASSERT_TRUE(spec.ok());
  const uint32_t table = SymbolOf(spec.value().source, "table");

  FaultCandidate reg_cell;
  reg_cell.scan = true;
  reg_cell.cell_name = "regfile.r12";
  EXPECT_FALSE(filter(reg_cell, 10)) << "never-accessed register is dead";
  reg_cell.cell_name = "regfile.r4";
  EXPECT_TRUE(filter(reg_cell, 10)) << "used register stays live";
  reg_cell.cell_name = "pc";
  EXPECT_TRUE(filter(reg_cell, 10)) << "non-register cells stay live";

  FaultCandidate word;
  word.scan = false;
  word.address = table + 4 * 30;
  EXPECT_FALSE(filter(word, 10)) << "never-read word is dead";
  word.address = table;
  EXPECT_TRUE(filter(word, 10)) << "read word stays live";
}

TEST(StaticAnalysisTest, CacheMemoizesPerWorkload) {
  StaticAnalysisCache cache;
  auto first = cache.Get("sparse_table");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.Get("sparse_table");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  auto other = cache.Get("fibonacci");
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.value().get(), first.value().get());
  EXPECT_FALSE(cache.Get("no_such_workload").ok());
}

// ---------------------------------------------------------------------------
// Differential: static-dead ⊆ dynamic-dead.
// ---------------------------------------------------------------------------

void ExpectStaticSubsetOfDynamic(const StaticAnalysis& sa,
                                 const LivenessAnalyzer& dynamic) {
  for (int reg = 0; reg < 16; ++reg) {
    if (sa.RegisterNeverAccessed(reg)) {
      EXPECT_FALSE(dynamic.RegisterEverAccessed(reg))
          << sa.workload_name() << ": r" << reg
          << " statically never-accessed but dynamically accessed";
    }
  }
  const uint32_t base = sa.cfg().text_begin();
  for (size_t w = 0; w < sa.ImageWordCount(); ++w) {
    const uint32_t address = base + static_cast<uint32_t>(4 * w);
    if (sa.MemoryWordNeverRead(address)) {
      EXPECT_FALSE(dynamic.MemoryWordEverRead(address))
          << sa.workload_name() << ": word 0x" << std::hex << address;
      EXPECT_FALSE(dynamic.MemoryWordEverFetched(address))
          << sa.workload_name() << ": word 0x" << std::hex << address;
    }
  }
}

TEST(StaticDifferentialTest, EveryBuiltinWorkload) {
  for (const std::string& name : env::WorkloadNames()) {
    SCOPED_TRACE(name);
    auto sa = StaticAnalysis::Build(name);
    ASSERT_TRUE(sa.ok()) << sa.status().ToString();
    auto dynamic =
        LivenessAnalyzer::Build(name, cpu::CpuConfig(), 200000, 40);
    ASSERT_TRUE(dynamic.ok()) << dynamic.status().ToString();
    ExpectStaticSubsetOfDynamic(*sa.value(), *dynamic.value());
  }
}

struct Xorshift {
  uint64_t state;
  explicit Xorshift(uint64_t seed) : state(seed | 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Random forward-branching program: blocks L0..Ln of ALU ops, constant-base
/// loads and stores, connected by forward jumps/branches only (guaranteed
/// termination), ending in a result store + halt. Registers r9..r13 are
/// never emitted, so most rounds exercise a nonempty prune set.
std::string GenerateProgram(Xorshift& rng) {
  const char* regs[] = {"r1", "r2", "r3", "r4", "r5", "r6"};
  const auto reg = [&] { return regs[rng.Next() % 6]; };
  const int nblocks = 3 + static_cast<int>(rng.Next() % 4);
  std::ostringstream s;
  s << "_start:\n    li   r7, data\n";
  for (int b = 0; b < nblocks; ++b) {
    s << "L" << b << ":\n";
    const int nops = 1 + static_cast<int>(rng.Next() % 4);
    for (int i = 0; i < nops; ++i) {
      switch (rng.Next() % 7) {
        case 0:
          s << "    addi " << reg() << ", " << reg() << ", "
            << (rng.Next() % 64) << "\n";
          break;
        case 1:
          s << "    add  " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
        case 2:
          s << "    xor  " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
        case 3:
          s << "    slli " << reg() << ", " << reg() << ", "
            << (rng.Next() % 5) << "\n";
          break;
        case 4:
          s << "    ldw  " << reg() << ", [r7+" << 4 * (rng.Next() % 4)
            << "]\n";
          break;
        case 5:
          s << "    stw  " << reg() << ", [r7+" << (16 + 4 * (rng.Next() % 2))
            << "]\n";
          break;
        default:
          s << "    sub  " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
      }
    }
    // Forward-only control transfer (possibly skipping blocks).
    const int target =
        b + 1 + static_cast<int>(rng.Next() % (nblocks - b));
    switch (rng.Next() % 4) {
      case 0:
        s << "    jmp  L" << target << "\n";
        break;
      case 1:
        s << "    beq  " << reg() << ", " << reg() << ", L" << target << "\n";
        break;
      case 2:
        s << "    bltu " << reg() << ", " << reg() << ", L" << target << "\n";
        break;
      default:
        break;  // fall through
    }
  }
  s << "L" << nblocks << ":\n";
  s << "    li   r8, result\n    stw  r1, [r8]\n    halt\n";
  s << "_etext:\ndata:\n    .word 5, 17, 3, 9, 0, 0, 0, 0\n";
  s << "result:\n    .word 0\n";
  return s.str();
}

TEST(StaticDifferentialTest, RandomizedForwardPrograms) {
  Xorshift rng(0x57A71C);
  for (int round = 0; round < 12; ++round) {
    const std::string source = GenerateProgram(rng);
    SCOPED_TRACE("round " + std::to_string(round) + "\n" + source);
    const env::WorkloadSpec spec = Spec("synthetic", source);
    auto sa = StaticAnalysis::BuildFromSpec(spec);
    ASSERT_TRUE(sa.ok()) << sa.status().ToString();
    auto dynamic = LivenessAnalyzer::BuildFromSpec(spec, cpu::CpuConfig());
    ASSERT_TRUE(dynamic.ok()) << dynamic.status().ToString();
    ExpectStaticSubsetOfDynamic(*sa.value(), *dynamic.value());
    // The generator never touches r9..r13: forward-only graphs must resolve
    // completely, so the analyzer has to prove at least those five.
    EXPECT_FALSE(sa.value()->registers_degraded());
    EXPECT_GE(sa.value()->NeverAccessedRegisterCount(), 5);
  }
}

// ---------------------------------------------------------------------------
// run-static == cold, end to end (scaffolding mirrors equivalence_test).
// ---------------------------------------------------------------------------

struct RunResult {
  util::Status status;
  std::vector<CampaignStore::ExperimentRow> rows;
  FaultInjectionAlgorithms::Stats stats;
  EquivalenceStats dedup;
  std::string db_bytes;
};

struct Session {
  db::Database db;
  CampaignStore store;

  explicit Session(const CampaignData& campaign) : store(&db) {
    if (campaign.target_name == ThorRdTarget::kTargetName) {
      testcard::SimTestCard card;
      EXPECT_TRUE(store
                      .PutTargetSystem(ThorRdTarget::DescribeTarget(
                          card, ThorRdTarget::kTargetName))
                      .ok());
    } else {
      EXPECT_TRUE(store.PutTargetSystem(SwifiSimTarget::Describe()).ok());
    }
    EXPECT_TRUE(store.PutCampaign(campaign).ok());
  }

  RunResult Snapshot(util::Status status,
                     const FaultInjectionAlgorithms::Stats& stats,
                     const EquivalenceStats& dedup,
                     const std::string& campaign_name) {
    RunResult result;
    result.status = std::move(status);
    result.stats = stats;
    result.dedup = dedup;
    auto rows = store.ExperimentsOf(campaign_name);
    if (rows.ok()) result.rows = std::move(rows).value();
    const std::string path =
        testing::TempDir() + "goofi_static_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".db";
    EXPECT_TRUE(db.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    result.db_bytes = buf.str();
    std::remove(path.c_str());
    return result;
  }
};

RunResult RunCold(const CampaignData& campaign) {
  Session session(campaign);
  auto drive = [&](FaultInjectionAlgorithms& target) {
    util::Status status = target.RunCampaign(campaign.name);
    return session.Snapshot(std::move(status), target.stats(),
                            EquivalenceStats{}, campaign.name);
  };
  if (campaign.target_name == ThorRdTarget::kTargetName) {
    testcard::SimTestCard card;
    ThorRdTarget target(&session.store, &card);
    return drive(target);
  }
  SwifiSimTarget target(&session.store);
  return drive(target);
}

/// The run-static stack: warm-start + pruning + equivalence classing with
/// ONLY the static analysis installed — no access-timeline pre-run.
RunResult RunStatic(const CampaignData& campaign, int workers,
                    int spot_check_every = 4) {
  Session session(campaign);
  const auto factory = campaign.target_name == ThorRdTarget::kTargetName
                           ? MakeSimThorFactory(&session.store)
                           : MakeSwifiSimFactory(&session.store);
  ParallelCampaignRunner runner(&session.store, factory, workers);
  runner.SetForceWarmStart(true);
  runner.SetConvergencePruning(true);
  runner.SetEquivalenceClassing(true);
  runner.SetSpotCheckEvery(spot_check_every);
  StaticAnalysisCache cache;
  auto analysis = cache.Get(campaign.workload);
  EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
  if (analysis.ok()) runner.SetStaticAnalysis(analysis.value());
  util::Status status = runner.Run(campaign.name);
  return session.Snapshot(std::move(status), runner.stats(),
                          runner.dedup_stats(), campaign.name);
}

void ExpectIdentical(const RunResult& cold, const RunResult& pruned) {
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ASSERT_TRUE(pruned.status.ok()) << pruned.status.ToString();
  ASSERT_EQ(cold.rows.size(), pruned.rows.size());
  for (size_t i = 0; i < cold.rows.size(); ++i) {
    EXPECT_EQ(cold.rows[i].experiment_name, pruned.rows[i].experiment_name)
        << "row " << i << " out of order";
    EXPECT_EQ(cold.rows[i].experiment_data, pruned.rows[i].experiment_data)
        << "row " << i;
    EXPECT_EQ(cold.rows[i].state.Serialize(), pruned.rows[i].state.Serialize())
        << "row " << i;
  }
  EXPECT_EQ(cold.stats, pruned.stats);
  EXPECT_EQ(cold.db_bytes, pruned.db_bytes)
      << "database files must be byte-identical";
  EXPECT_EQ(pruned.dedup.spot_checks_run, pruned.dedup.spot_checks_passed);
}

CampaignData SparseTableScifi(const std::string& name) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = ThorRdTarget::kTargetName;
  campaign.technique = Technique::kScifi;
  campaign.num_experiments = 16;
  campaign.workload = "sparse_table";
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 80;
  campaign.timeout_cycles = 100000;
  return campaign;
}

CampaignData SparseTableSwifi(const std::string& name, Technique technique) {
  CampaignData campaign;
  campaign.name = name;
  campaign.target_name = SwifiSimTarget::kTargetName;
  campaign.technique = technique;
  campaign.num_experiments = 24;
  campaign.workload = "sparse_table";
  campaign.locations = {{"memory.data", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 80;
  campaign.timeout_cycles = 100000;
  return campaign;
}

TEST(RunStaticTest, ScifiNeverAccessedCellCollapsesPerBit) {
  // Every flip lands in a never-accessed register: experiments sharing a
  // chain bit must collapse into one class each, synthesized without any
  // golden-run timeline.
  CampaignData campaign = SparseTableScifi("rs_cell");
  campaign.locations = {{"internal_regfile", "regfile.r12"}};
  campaign.num_experiments = 24;
  const RunResult cold = RunCold(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult pruned = RunStatic(campaign, workers);
    EXPECT_GT(pruned.dedup.classes_formed, 0);
    EXPECT_GT(pruned.dedup.static_synthesized, 0)
        << "flips into r12 must synthesize from static classes";
    EXPECT_EQ(pruned.dedup.experiments_synthesized,
              pruned.dedup.static_synthesized)
        << "without a timeline every synthesis is a static one";
    ExpectIdentical(cold, pruned);
  }
}

TEST(RunStaticTest, ScifiBroadCampaignMatchesCold) {
  const CampaignData campaign = SparseTableScifi("rs_broad");
  ExpectIdentical(RunCold(campaign), RunStatic(campaign, 2));
}

TEST(RunStaticTest, ScifiDetailModeMatchesCold) {
  CampaignData campaign = SparseTableScifi("rs_detail");
  campaign.locations = {{"internal_regfile", "regfile.r12"}};
  campaign.log_mode = LogMode::kDetail;
  campaign.num_experiments = 10;
  const RunResult cold = RunCold(campaign);
  ASSERT_GT(cold.rows.size(), 10u) << "expected detail rows";
  for (int workers : {1, 2}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectIdentical(cold, RunStatic(campaign, workers));
  }
}

TEST(RunStaticTest, SwifiRuntimeTableTailMatchesCold) {
  const CampaignData campaign =
      SparseTableSwifi("rs_swifi", Technique::kSwifiRuntime);
  const RunResult cold = RunCold(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult pruned = RunStatic(campaign, workers, /*spot_check=*/1);
    EXPECT_GT(pruned.dedup.static_synthesized, 0)
        << "most data-section flips land in the never-read tail";
    ExpectIdentical(cold, pruned);
  }
}

TEST(RunStaticTest, SwifiPreRuntimeMatchesCold) {
  const CampaignData campaign =
      SparseTableSwifi("rs_swifi_pre", Technique::kSwifiPreRuntime);
  const RunResult cold = RunCold(campaign);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult pruned = RunStatic(campaign, workers);
    EXPECT_GT(pruned.dedup.static_synthesized, 0);
    ExpectIdentical(cold, pruned);
  }
}

TEST(RunStaticTest, DegradedWorkloadStillMatchesCold) {
  // bubblesort's memory side degrades (computed loop bound) but its register
  // side proves r10..r15: run-static must stay byte-identical while pruning
  // whatever is left.
  CampaignData campaign = SparseTableScifi("rs_degraded");
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", "regfile.r11"}};
  campaign.num_experiments = 12;
  campaign.inject_max_instr = 400;
  const RunResult cold = RunCold(campaign);
  const RunResult pruned = RunStatic(campaign, 2);
  EXPECT_GT(pruned.dedup.static_synthesized, 0);
  ExpectIdentical(cold, pruned);
}

}  // namespace
}  // namespace goofi::core
