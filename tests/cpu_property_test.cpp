// Property-based tests of the TRD32 simulator — the measurement instrument
// of every experiment in this repository. Faults are injected into it, so
// it must be robust against *arbitrary* state corruption: no crash, no
// undefined behaviour, only the documented outcomes.
#include <gtest/gtest.h>

#include "core/preinjection.hpp"
#include "cpu/cpu.hpp"
#include "env/workloads.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace goofi::cpu {
namespace {

/// Boots a CPU with the named built-in workload.
std::unique_ptr<Cpu> BootWorkload(const std::string& name,
                                  const CpuConfig& config = CpuConfig()) {
  const auto spec = env::GetWorkload(name).ValueOrDie();
  const auto program = isa::Assemble(spec.source).ValueOrDie();
  auto cpu = std::make_unique<Cpu>(config);
  const uint32_t etext = program.symbols.at("_etext");
  EXPECT_TRUE(cpu->LoadProgram(program.base_address, program.words,
                               etext - program.base_address)
                  .ok());
  cpu->Reset(program.entry);
  return cpu;
}

// Property: executing *random garbage* as instructions never crashes the
// simulator; every step yields one of the three documented outcomes.
TEST(CpuPropertyTest, RandomInstructionStreamsNeverCrash) {
  util::Rng rng(0xFACE);
  for (int trial = 0; trial < 200; ++trial) {
    Cpu cpu;
    std::vector<uint32_t> garbage(64);
    for (uint32_t& word : garbage) word = static_cast<uint32_t>(rng.Next());
    ASSERT_TRUE(cpu.LoadProgram(0, garbage).ok());
    cpu.Reset(0);
    const StepOutcome outcome = cpu.Run(5000);
    EXPECT_TRUE(outcome == StepOutcome::kOk || outcome == StepOutcome::kHalted ||
                outcome == StepOutcome::kDetected);
    // With garbage and all EDMs on, silence is overwhelmingly unlikely but
    // legal; the invariant under test is simply "no crash, no hang".
  }
}

// Property: arbitrary scan-style corruption of any writable state element,
// at any point of execution, leaves the simulator in a well-defined state.
TEST(CpuPropertyTest, RandomStateCorruptionNeverCrashes) {
  util::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 100; ++trial) {
    auto cpu = BootWorkload("bubblesort");
    auto registry = cpu->BuildStateRegistry();
    // Run a random prefix.
    const uint64_t prefix = rng.NextBelow(2000);
    for (uint64_t i = 0; i < prefix; ++i) {
      if (cpu->Step() != StepOutcome::kOk) break;
    }
    // Corrupt up to 4 random writable elements.
    const int corruptions = 1 + static_cast<int>(rng.NextBelow(4));
    for (int c = 0; c < corruptions; ++c) {
      const auto& element =
          registry.elements()[rng.NextBelow(registry.size())];
      if (element.read_only) continue;
      element.set(rng.Next());
    }
    const StepOutcome outcome = cpu->Run(100000);
    EXPECT_TRUE(outcome == StepOutcome::kOk || outcome == StepOutcome::kHalted ||
                outcome == StepOutcome::kDetected)
        << "trial " << trial;
  }
}

// Property: execution is bit-exact deterministic — two identical CPUs
// stepped in lockstep never diverge in any observable counter or register.
TEST(CpuPropertyTest, LockstepDeterminism) {
  auto a = BootWorkload("matmul");
  auto b = BootWorkload("matmul");
  for (int step = 0; step < 5000; ++step) {
    const StepOutcome oa = a->Step();
    const StepOutcome ob = b->Step();
    ASSERT_EQ(oa, ob) << step;
    ASSERT_EQ(a->pc(), b->pc()) << step;
    ASSERT_EQ(a->cycles(), b->cycles()) << step;
    for (int reg = 0; reg < isa::kNumRegisters; ++reg) {
      ASSERT_EQ(a->reg(reg), b->reg(reg)) << step << " r" << reg;
    }
    if (oa != StepOutcome::kOk) break;
  }
}

// Property: the text segment is immutable under CPU execution — whatever
// the workload (or corrupted workload) does, instruction words never change
// unless the memory-protection EDM is off.
TEST(CpuPropertyTest, TextSegmentImmutableUnderExecution) {
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 40; ++trial) {
    auto cpu = BootWorkload("checksum");
    // Snapshot the text segment.
    std::vector<uint32_t> text;
    for (uint32_t a = cpu->text_start(); a < cpu->text_end(); a += 4) {
      text.push_back(cpu->memory().HostRead(a).ValueOrDie());
    }
    // Corrupt a few registers mid-run, then run to completion.
    for (uint64_t i = rng.NextBelow(100); i > 0; --i) {
      if (cpu->Step() != StepOutcome::kOk) break;
    }
    cpu->set_reg(1 + static_cast<int>(rng.NextBelow(13)),
                 static_cast<uint32_t>(rng.Next()));
    (void)cpu->Run(100000);
    for (size_t i = 0; i < text.size(); ++i) {
      ASSERT_EQ(cpu->memory()
                    .HostRead(cpu->text_start() + static_cast<uint32_t>(i) * 4)
                    .ValueOrDie(),
                text[i])
          << "text word " << i << " mutated in trial " << trial;
    }
  }
}

// Property: counters are monotone and consistent: cycles >= instret
// (every instruction costs at least one cycle).
TEST(CpuPropertyTest, CycleInstretConsistency) {
  auto cpu = BootWorkload("fibonacci");
  uint64_t last_cycles = 0;
  uint64_t last_instret = 0;
  while (cpu->Step() == StepOutcome::kOk) {
    EXPECT_GT(cpu->cycles(), last_cycles);
    EXPECT_EQ(cpu->instructions_retired(), last_instret + 1);
    EXPECT_GE(cpu->cycles(), cpu->instructions_retired());
    last_cycles = cpu->cycles();
    last_instret = cpu->instructions_retired();
  }
}

// Property: r0 reads as zero at every point of every workload, whatever
// happens — the hardwired-zero invariant fault campaigns rely on.
TEST(CpuPropertyTest, R0AlwaysZeroDuringExecution) {
  for (const char* name : {"bubblesort", "matmul", "checksum"}) {
    auto cpu = BootWorkload(name);
    for (int i = 0; i < 3000; ++i) {
      ASSERT_EQ(cpu->reg(0), 0u) << name;
      if (cpu->Step() != StepOutcome::kOk) break;
    }
  }
}

// Cross-validation: the pre-injection liveness analysis against *actual*
// injections. A register the analyzer calls dead at time t must never
// produce an effective error when flipped at t (outputs match and no EDM).
// This is the strongest guarantee the §4 extension needs: the filter must
// only ever skip faults that could not have mattered.
TEST(CpuPropertyTest, DeadRegisterInjectionsAreNeverEffective) {
  const auto spec = env::GetWorkload("bubblesort").ValueOrDie();
  const auto program = isa::Assemble(spec.source).ValueOrDie();
  const uint32_t etext = program.symbols.at("_etext");
  const uint32_t result_addr = program.symbols.at("result");

  // Reference outputs.
  auto RunWithFlip = [&](int reg, uint64_t at,
                         bool* detected) -> std::vector<uint32_t> {
    Cpu cpu;
    EXPECT_TRUE(
        cpu.LoadProgram(program.base_address, program.words, etext).ok());
    cpu.Reset(program.entry);
    while (at > 0 && cpu.Step() == StepOutcome::kOk) --at;
    if (reg >= 0) cpu.set_reg(reg, cpu.reg(reg) ^ (1u << 7));
    const StepOutcome outcome = cpu.Run(1'000'000);
    *detected = outcome == StepOutcome::kDetected;
    std::vector<uint32_t> outputs;
    outputs.push_back(cpu.memory().HostRead(result_addr).ValueOrDie());
    return outputs;
  };

  bool reference_detected = false;
  const auto reference = RunWithFlip(-1, 0, &reference_detected);
  ASSERT_FALSE(reference_detected);

  namespace core = goofi::core;
  auto analyzer =
      core::LivenessAnalyzer::Build("bubblesort", CpuConfig()).ValueOrDie();

  util::Rng rng(0xDEAD);
  int dead_draws = 0;
  for (int trial = 0; trial < 300 && dead_draws < 60; ++trial) {
    const int reg = 1 + static_cast<int>(rng.NextBelow(13));
    const uint64_t t = rng.NextBelow(analyzer->trace_length());
    if (analyzer->RegisterLive(reg, t)) continue;
    ++dead_draws;
    bool detected = false;
    const auto outputs = RunWithFlip(reg, t, &detected);
    EXPECT_FALSE(detected) << "dead r" << reg << " flip at " << t
                           << " raised an EDM";
    EXPECT_EQ(outputs, reference)
        << "dead r" << reg << " flip at " << t << " changed the result";
  }
  EXPECT_GE(dead_draws, 30) << "the sweep must actually exercise dead draws";
}

}  // namespace
}  // namespace goofi::cpu
