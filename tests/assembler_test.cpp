// Tests for the two-pass TRD32 assembler and disassembler.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace goofi::isa {
namespace {

AssembledProgram MustAssemble(const std::string& source) {
  auto program = Assemble(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).ValueOrDie();
}

TEST(AssemblerTest, EmptyProgram) {
  const auto program = MustAssemble("");
  EXPECT_EQ(program.words.size(), 0u);
  EXPECT_EQ(program.base_address, 0u);
}

TEST(AssemblerTest, SingleInstruction) {
  const auto program = MustAssemble("add r1, r2, r3\n");
  ASSERT_EQ(program.words.size(), 1u);
  const auto decoded = Decode(program.words[0]).ValueOrDie();
  EXPECT_EQ(decoded.op, Opcode::kAdd);
  EXPECT_EQ(decoded.rd, 1);
  EXPECT_EQ(decoded.rs1, 2);
  EXPECT_EQ(decoded.rs2, 3);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  const auto program = MustAssemble(
      "; full line comment\n"
      "# hash comment\n"
      "\n"
      "nop // trailing\n"
      "halt ; done\n");
  EXPECT_EQ(program.words.size(), 2u);
}

TEST(AssemblerTest, LabelsResolveForwardAndBackward) {
  const auto program = MustAssemble(
      "start:\n"
      "  jmp end\n"
      "  nop\n"
      "end:\n"
      "  jmp start\n");
  EXPECT_EQ(program.symbols.at("start"), 0u);
  EXPECT_EQ(program.symbols.at("end"), 8u);
  const auto fwd = Decode(program.words[0]).ValueOrDie();
  EXPECT_EQ(static_cast<uint32_t>(fwd.imm) * 4, 8u);
}

TEST(AssemblerTest, BranchOffsetsArePcRelative) {
  const auto program = MustAssemble(
      "  nop\n"
      "loop:\n"
      "  beq r1, r2, loop\n");
  const auto br = Decode(program.words[1]).ValueOrDie();
  // target = pc + 4 + imm*4; pc = 4, target = 4 => imm = -1.
  EXPECT_EQ(br.imm, -1);
}

TEST(AssemblerTest, MemoryOperandSyntaxes) {
  const auto program = MustAssemble(
      "ldw r1, 8(r2)\n"
      "ldw r3, [r4+12]\n"
      "ldw r5, [r6]\n"
      "stw r7, -4(sp)\n");
  auto i0 = Decode(program.words[0]).ValueOrDie();
  EXPECT_EQ(i0.imm, 8);
  EXPECT_EQ(i0.rs1, 2);
  auto i1 = Decode(program.words[1]).ValueOrDie();
  EXPECT_EQ(i1.imm, 12);
  auto i2 = Decode(program.words[2]).ValueOrDie();
  EXPECT_EQ(i2.imm, 0);
  auto i3 = Decode(program.words[3]).ValueOrDie();
  EXPECT_EQ(i3.op, Opcode::kStw);
  EXPECT_EQ(i3.imm, -4);
  EXPECT_EQ(i3.rs1, kStackPointer);
}

TEST(AssemblerTest, DirectivesWordSpaceOrgEqu) {
  const auto program = MustAssemble(
      ".equ BASE, 0x100\n"
      ".org BASE\n"
      "data:\n"
      ".word 1, 2, BASE+8\n"
      ".space 8\n"
      "after:\n"
      ".word 0xdeadbeef\n");
  EXPECT_EQ(program.base_address, 0x100u);
  EXPECT_EQ(program.words[0], 1u);
  EXPECT_EQ(program.words[1], 2u);
  EXPECT_EQ(program.words[2], 0x108u);
  EXPECT_EQ(program.symbols.at("after"), 0x100u + 12 + 8);
  EXPECT_EQ(program.words[5], 0xdeadbeefu);
}

TEST(AssemblerTest, EntryDefaultsToBaseOrStart) {
  EXPECT_EQ(MustAssemble("nop\n").entry, 0u);
  const auto program = MustAssemble(
      "nop\n"
      "_start:\n"
      "halt\n");
  EXPECT_EQ(program.entry, 4u);
}

TEST(AssemblerTest, LiExpandsToTwoWords) {
  for (const uint32_t value :
       {0u, 1u, 0x3FFFu, 0x4000u, 0xF000u, 0x7FFFFFFFu, 0x80000000u,
        0xFFFFFFFFu, 0xDEADBEEFu}) {
    const auto program =
        MustAssemble("li r1, " + std::to_string(static_cast<int64_t>(value)) + "\n");
    ASSERT_EQ(program.words.size(), 2u) << value;
    // Execute the pair by hand: lui then ori.
    const auto lui = Decode(program.words[0]).ValueOrDie();
    const auto ori = Decode(program.words[1]).ValueOrDie();
    ASSERT_EQ(lui.op, Opcode::kLui);
    ASSERT_EQ(ori.op, Opcode::kOri);
    const uint32_t result =
        (static_cast<uint32_t>(lui.imm) << 14) | static_cast<uint32_t>(ori.imm);
    EXPECT_EQ(result, value);
  }
}

TEST(AssemblerTest, NegativeLiteralLi) {
  const auto program = MustAssemble("li r1, -2\n");
  const auto lui = Decode(program.words[0]).ValueOrDie();
  const auto ori = Decode(program.words[1]).ValueOrDie();
  const uint32_t result =
      (static_cast<uint32_t>(lui.imm) << 14) | static_cast<uint32_t>(ori.imm);
  EXPECT_EQ(result, 0xFFFFFFFEu);
}

TEST(AssemblerTest, PseudoMovCallRet) {
  const auto program = MustAssemble(
      "_start:\n"
      "  mov r1, r2\n"
      "  call func\n"
      "  halt\n"
      "func:\n"
      "  ret\n");
  const auto mov = Decode(program.words[0]).ValueOrDie();
  EXPECT_EQ(mov.op, Opcode::kAddi);
  EXPECT_EQ(mov.imm, 0);
  const auto call = Decode(program.words[1]).ValueOrDie();
  EXPECT_EQ(call.op, Opcode::kJal);
  const auto ret = Decode(program.words[3]).ValueOrDie();
  EXPECT_EQ(ret.op, Opcode::kJr);
  EXPECT_EQ(ret.rs1, kLinkRegister);
}

TEST(AssemblerTest, PushPopExpandToTwoWords) {
  const auto program = MustAssemble(
      "push r3\n"
      "pop r3\n");
  ASSERT_EQ(program.words.size(), 4u);
  const auto sub_sp = Decode(program.words[0]).ValueOrDie();
  EXPECT_EQ(sub_sp.op, Opcode::kAddi);
  EXPECT_EQ(sub_sp.imm, -4);
  const auto store = Decode(program.words[1]).ValueOrDie();
  EXPECT_EQ(store.op, Opcode::kStw);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  const auto bad = Assemble("nop\nbogus r1\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(AssemblerTest, DuplicateLabelRejected) {
  EXPECT_FALSE(Assemble("a:\nnop\na:\nnop\n").ok());
}

TEST(AssemblerTest, UndefinedSymbolRejected) {
  EXPECT_FALSE(Assemble("jmp nowhere\n").ok());
}

TEST(AssemblerTest, OperandCountChecked) {
  EXPECT_FALSE(Assemble("add r1, r2\n").ok());
  EXPECT_FALSE(Assemble("halt r1\n").ok());
  EXPECT_FALSE(Assemble("jr\n").ok());
}

TEST(AssemblerTest, ImmediateRangeChecked) {
  EXPECT_FALSE(Assemble("addi r1, r2, 200000\n").ok());
  EXPECT_TRUE(Assemble("addi r1, r2, 131071\n").ok());
  EXPECT_FALSE(Assemble("addi r1, r2, -200000\n").ok());
}

TEST(AssemblerTest, OrgBackwardsRejected) {
  EXPECT_FALSE(Assemble(".org 0x100\nnop\n.org 0x10\nnop\n").ok());
}

TEST(AssemblerTest, MisalignedOrgRejected) {
  EXPECT_FALSE(Assemble(".org 2\n").ok());
}

TEST(AssemblerTest, SymbolLookupHelper) {
  const auto program = MustAssemble(".equ IO, 0xF000\nnop\n");
  EXPECT_EQ(program.Symbol("IO").ValueOrDie(), 0xF000u);
  EXPECT_FALSE(program.Symbol("nope").ok());
}

// --- disassembler ----------------------------------------------------------

TEST(DisassemblerTest, FormatsEveryClass) {
  EXPECT_EQ(Disassemble(Encode(Instruction{Opcode::kAdd, 1, 2, 3, 0})),
            "add r1, r2, r3");
  EXPECT_EQ(Disassemble(Encode(Instruction{Opcode::kAddi, 1, 2, 0, -5})),
            "addi r1, r2, -5");
  EXPECT_EQ(Disassemble(Encode(Instruction{Opcode::kLdw, 1, 15, 0, 8})),
            "ldw r1, 8(sp)");
  EXPECT_EQ(Disassemble(Encode(Instruction{Opcode::kJr, 0, 14, 0, 0})), "jr lr");
  EXPECT_EQ(Disassemble(Encode(Instruction{Opcode::kJmp, 0, 0, 0, 4}))
                .substr(0, 3),
            "jmp");
  EXPECT_EQ(Disassemble(Encode(Instruction{Opcode::kHalt, 0, 0, 0, 0})), "halt");
  EXPECT_EQ(Disassemble(Encode(Instruction{Opcode::kTrap, 0, 0, 0, 7})), "trap 7");
}

TEST(DisassemblerTest, IllegalWordMarked) {
  const std::string text = Disassemble(0x07FFFFFFu);
  EXPECT_NE(text.find("illegal"), std::string::npos);
}

TEST(DisassemblerTest, ProgramListingHasAddresses) {
  const auto program = MustAssemble(".org 0x20\nnop\nhalt\n");
  const std::string listing = DisassembleProgram(program);
  EXPECT_NE(listing.find("00000020"), std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
}

// Round-trip: assemble -> disassemble -> reassemble gives identical words
// for straight-line code.
TEST(DisassemblerTest, ReassemblyRoundTrip) {
  const auto program = MustAssemble(
      "add r1, r2, r3\n"
      "sub r4, r5, r6\n"
      "addi r7, r8, 42\n"
      "ldw r9, 4(r10)\n"
      "stw r9, 8(r10)\n"
      "halt\n");
  std::string re_source;
  for (uint32_t word : program.words) re_source += Disassemble(word) + "\n";
  const auto reprogram = MustAssemble(re_source);
  EXPECT_EQ(program.words, reprogram.words);
}

}  // namespace
}  // namespace goofi::isa
