#include "scan/tap.hpp"

#include <cassert>

namespace goofi::scan {

const char* TapStateName(TapState state) {
  switch (state) {
    case TapState::kTestLogicReset:
      return "Test-Logic-Reset";
    case TapState::kRunTestIdle:
      return "Run-Test/Idle";
    case TapState::kSelectDrScan:
      return "Select-DR-Scan";
    case TapState::kCaptureDr:
      return "Capture-DR";
    case TapState::kShiftDr:
      return "Shift-DR";
    case TapState::kExit1Dr:
      return "Exit1-DR";
    case TapState::kPauseDr:
      return "Pause-DR";
    case TapState::kExit2Dr:
      return "Exit2-DR";
    case TapState::kUpdateDr:
      return "Update-DR";
    case TapState::kSelectIrScan:
      return "Select-IR-Scan";
    case TapState::kCaptureIr:
      return "Capture-IR";
    case TapState::kShiftIr:
      return "Shift-IR";
    case TapState::kExit1Ir:
      return "Exit1-IR";
    case TapState::kPauseIr:
      return "Pause-IR";
    case TapState::kExit2Ir:
      return "Exit2-IR";
    case TapState::kUpdateIr:
      return "Update-IR";
  }
  return "?";
}

namespace {
/// The standard TAP next-state function: kNext[state][tms].
constexpr TapState kNext[16][2] = {
    /*TestLogicReset*/ {TapState::kRunTestIdle, TapState::kTestLogicReset},
    /*RunTestIdle*/ {TapState::kRunTestIdle, TapState::kSelectDrScan},
    /*SelectDrScan*/ {TapState::kCaptureDr, TapState::kSelectIrScan},
    /*CaptureDr*/ {TapState::kShiftDr, TapState::kExit1Dr},
    /*ShiftDr*/ {TapState::kShiftDr, TapState::kExit1Dr},
    /*Exit1Dr*/ {TapState::kPauseDr, TapState::kUpdateDr},
    /*PauseDr*/ {TapState::kPauseDr, TapState::kExit2Dr},
    /*Exit2Dr*/ {TapState::kShiftDr, TapState::kUpdateDr},
    /*UpdateDr*/ {TapState::kRunTestIdle, TapState::kSelectDrScan},
    /*SelectIrScan*/ {TapState::kCaptureIr, TapState::kTestLogicReset},
    /*CaptureIr*/ {TapState::kShiftIr, TapState::kExit1Ir},
    /*ShiftIr*/ {TapState::kShiftIr, TapState::kExit1Ir},
    /*Exit1Ir*/ {TapState::kPauseIr, TapState::kUpdateIr},
    /*PauseIr*/ {TapState::kPauseIr, TapState::kExit2Ir},
    /*Exit2Ir*/ {TapState::kShiftIr, TapState::kUpdateIr},
    /*UpdateIr*/ {TapState::kRunTestIdle, TapState::kSelectDrScan},
};
}  // namespace

void TapController::EnterState(TapState next) {
  switch (next) {
    case TapState::kTestLogicReset:
      instruction_ = TapInstruction::kIdcode;
      break;
    case TapState::kCaptureIr:
      // Standard mandates capturing ...01 into the IR shift stage.
      ir_shift_ = util::BitVec(kIrBits);
      ir_shift_.Set(0, true);
      shift_pos_ = 0;
      break;
    case TapState::kCaptureDr:
      dr_shift_ = handler_->CaptureDr(instruction_);
      shift_pos_ = 0;
      break;
    case TapState::kUpdateIr: {
      instruction_ =
          static_cast<TapInstruction>(ir_shift_.ExtractWord(0, kIrBits));
      break;
    }
    case TapState::kUpdateDr:
      handler_->UpdateDr(instruction_, dr_shift_);
      break;
    default:
      break;
  }
  state_ = next;
}

bool TapController::Clock(bool tms, bool tdi) {
  ++tck_count_;
  bool tdo = false;
  // Shifting happens on the clock while *in* a Shift state; the shift stage
  // here uses a position pointer, which is exactly equivalent to a physical
  // shift register when a register is shifted for its full length (the only
  // access pattern the test card uses).
  if (state_ == TapState::kShiftDr) {
    if (shift_pos_ < dr_shift_.size()) {
      tdo = dr_shift_.Get(shift_pos_);
      dr_shift_.Set(shift_pos_, tdi);
      ++shift_pos_;
    }
  } else if (state_ == TapState::kShiftIr) {
    if (shift_pos_ < ir_shift_.size()) {
      tdo = ir_shift_.Get(shift_pos_);
      ir_shift_.Set(shift_pos_, tdi);
      ++shift_pos_;
    }
  }
  EnterState(kNext[static_cast<int>(state_)][tms ? 1 : 0]);
  return tdo;
}

void TapController::Reset() {
  for (int i = 0; i < 5; ++i) Clock(true, false);
  // Settle in Run-Test/Idle.
  Clock(false, false);
}

void TapController::LoadInstruction(TapInstruction instruction) {
  assert(state_ == TapState::kRunTestIdle || state_ == TapState::kTestLogicReset);
  if (state_ == TapState::kTestLogicReset) Clock(false, false);
  // Run-Test/Idle -> Select-DR -> Select-IR -> Capture-IR -> Shift-IR.
  Clock(true, false);
  Clock(true, false);
  Clock(false, false);
  Clock(false, false);
  const uint8_t bits = static_cast<uint8_t>(instruction);
  for (uint32_t i = 0; i < kIrBits; ++i) {
    // Last bit is shifted on the transition out of Shift-IR (TMS=1).
    const bool tms = (i == kIrBits - 1);
    Clock(tms, (bits >> i) & 1u);
  }
  // Exit1-IR -> Update-IR -> Run-Test/Idle.
  Clock(true, false);
  Clock(false, false);
}

util::BitVec TapController::ShiftData(const util::BitVec& out) {
  util::BitVec captured;
  ShiftDataInto(out, &captured);
  return captured;
}

void TapController::ShiftDataInto(const util::BitVec& out,
                                  util::BitVec* captured) {
  assert(state_ == TapState::kRunTestIdle);
  const uint32_t length = handler_->DrLength(instruction_);
  assert(out.empty() || out.size() == length);
  // Run-Test/Idle -> Select-DR -> Capture-DR -> Shift-DR.
  Clock(true, false);
  Clock(false, false);
  Clock(false, false);
  captured->ResizeZero(length);
  for (uint32_t i = 0; i < length; ++i) {
    const bool tms = (i == length - 1);
    const bool tdi = out.empty() ? false : out.Get(i);
    captured->Set(i, Clock(tms, tdi));
  }
  // Exit1-DR -> Update-DR -> Run-Test/Idle.
  Clock(true, false);
  Clock(false, false);
}

}  // namespace goofi::scan
