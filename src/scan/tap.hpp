// IEEE 1149.1 (JTAG) test-access-port controller.
//
// The Thor RD's "advanced scan-chain logic, i.e. built-in test logic
// primarily intended for testing integrated circuits ... conforming to the
// IEEE standard for boundary scan" (paper §3.1) is modelled here: the
// canonical 16-state TAP FSM driven by TMS on each TCK, an instruction
// register, and a data-register stage selected by the current instruction.
// The test card (src/testcard) drives this controller bit-by-bit exactly the
// way a hardware probe would; higher GOOFI layers never touch TMS/TDI
// directly.
#pragma once

#include <cstdint>
#include <string>

#include "util/bitvec.hpp"

namespace goofi::scan {

/// The 16 standard TAP controller states.
enum class TapState : uint8_t {
  kTestLogicReset = 0,
  kRunTestIdle,
  kSelectDrScan,
  kCaptureDr,
  kShiftDr,
  kExit1Dr,
  kPauseDr,
  kExit2Dr,
  kUpdateDr,
  kSelectIrScan,
  kCaptureIr,
  kShiftIr,
  kExit1Ir,
  kPauseIr,
  kExit2Ir,
  kUpdateIr,
};

const char* TapStateName(TapState state);

/// Standard-ish instruction opcodes (4-bit IR).
enum class TapInstruction : uint8_t {
  kExtest = 0x0,   ///< boundary chain, drive pins
  kIdcode = 0x1,   ///< 32-bit device id
  kSample = 0x2,   ///< boundary chain, observe-only
  kIntest = 0x3,   ///< internal chain access
  kScanN = 0x4,    ///< select which internal chain SHIFT-DR addresses
  kBypass = 0xF,   ///< 1-bit bypass register
};

inline constexpr uint32_t kIrBits = 4;
inline constexpr uint32_t kIdcodeValue = 0x7D0A1D01;  ///< "Thor RD"-ish id

/// The TAP FSM plus instruction decode. The *data registers* themselves
/// (boundary/internal chains) are owned by ScanController, which implements
/// the capture/shift/update callbacks this class invokes.
class TapController {
 public:
  class DrHandler {
   public:
    virtual ~DrHandler() = default;
    /// Returns the length of the currently selected data register.
    virtual uint32_t DrLength(TapInstruction instruction) = 0;
    /// Loads the selected register's current value into the shift stage.
    virtual util::BitVec CaptureDr(TapInstruction instruction) = 0;
    /// Commits the shifted-in value to the selected register.
    virtual void UpdateDr(TapInstruction instruction, const util::BitVec& value) = 0;
  };

  explicit TapController(DrHandler* handler) : handler_(handler) {}

  TapState state() const { return state_; }
  TapInstruction instruction() const { return instruction_; }

  /// One TCK rising edge with the given TMS/TDI. Returns TDO (valid when the
  /// controller was in a Shift state during this clock).
  bool Clock(bool tms, bool tdi);

  /// Convenience: five TMS=1 clocks — guaranteed Test-Logic-Reset.
  void Reset();

  // --- host-side helper sequences (what a JTAG probe library provides) ----

  /// Navigates from Run-Test/Idle through IR scan to load `instruction`.
  void LoadInstruction(TapInstruction instruction);

  /// Navigates through DR scan, shifting `out` in while capturing the
  /// previous register contents; returns the captured (shifted-out) bits.
  /// Length is taken from the current instruction's register.
  util::BitVec ShiftData(const util::BitVec& out);

  /// Like ShiftData but writes the captured bits into `*captured` (resized
  /// to the register length). Lets hot per-instruction capture loops reuse
  /// one buffer instead of allocating a BitVec per shift.
  void ShiftDataInto(const util::BitVec& out, util::BitVec* captured);

  /// Number of TCK cycles issued since construction (scan-time accounting
  /// for the benches: scan cost is proportional to chain length).
  uint64_t tck_count() const { return tck_count_; }

  /// Controller state for checkpointing: FSM state, current instruction,
  /// both shift stages and the TCK counter.
  ///
  /// Deliberately *not* covered by the convergence hash
  /// (SimTestCard::HashTargetState): every scan operation begins with
  /// LoadInstruction, which accepts both legal parked states (kRunTestIdle /
  /// kTestLogicReset) and navigates deterministically from either, so a
  /// never-scanned golden TAP and a post-injection faulty TAP are
  /// operationally equivalent even though their Snapshots differ.
  struct Snapshot {
    TapState state = TapState::kTestLogicReset;
    TapInstruction instruction = TapInstruction::kIdcode;
    util::BitVec ir_shift;
    util::BitVec dr_shift;
    uint32_t shift_pos = 0;
    uint64_t tck_count = 0;
  };

  Snapshot SaveSnapshot() const {
    return {state_, instruction_, ir_shift_, dr_shift_, shift_pos_, tck_count_};
  }
  void RestoreSnapshot(const Snapshot& snapshot) {
    state_ = snapshot.state;
    instruction_ = snapshot.instruction;
    ir_shift_ = snapshot.ir_shift;
    dr_shift_ = snapshot.dr_shift;
    shift_pos_ = snapshot.shift_pos;
    tck_count_ = snapshot.tck_count;
  }

 private:
  void EnterState(TapState next);

  DrHandler* handler_;
  TapState state_ = TapState::kTestLogicReset;
  TapInstruction instruction_ = TapInstruction::kIdcode;

  util::BitVec ir_shift_;
  util::BitVec dr_shift_;
  uint32_t shift_pos_ = 0;
  uint64_t tck_count_ = 0;
};

}  // namespace goofi::scan
