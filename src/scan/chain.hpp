// Scan chains: ordered serializations of CPU state elements.
//
// A chain is what SHIFT-DR addresses: a fixed sequence of cells, each backed
// by one StateElement. Capture() snapshots the elements into a bit image;
// Update() writes a (possibly fault-injected) image back, skipping read-only
// cells — matching "Some locations in the scan-chain are read-only and can
// therefore only be used to observe the state" (paper §3.1).
#pragma once

#include <string>
#include <vector>

#include "cpu/state.hpp"
#include "util/bitvec.hpp"
#include "util/status.hpp"

namespace goofi::scan {

/// One cell of a chain (a contiguous bit field).
struct ScanCell {
  std::string name;       ///< the backing state element's name
  uint32_t bits = 0;
  bool read_only = false;
  uint32_t offset = 0;    ///< first bit position within the chain
  size_t element_index = 0;  ///< index into the registry
};

class ScanChain {
 public:
  ScanChain(std::string name, const cpu::StateRegistry* registry,
            std::vector<size_t> element_indices);

  const std::string& name() const { return name_; }
  const std::vector<ScanCell>& cells() const { return cells_; }
  uint32_t length_bits() const { return length_bits_; }

  /// Snapshot all cells into a chain image.
  util::BitVec Capture() const;

  /// Write an image back into the writable cells. Precondition: image size
  /// equals length_bits().
  void Update(const util::BitVec& image) const;

  /// The cell containing chain bit `bit` plus the bit's offset inside the
  /// cell. Precondition: bit < length_bits().
  struct BitLocation {
    const ScanCell* cell;
    uint32_t bit_in_cell;
  };
  BitLocation Locate(uint32_t bit) const;

  /// Chain-bit range of the cell backed by the element named `name`, or
  /// error if that element is not on this chain.
  util::Result<ScanCell> FindCell(const std::string& name) const;

 private:
  std::string name_;
  const cpu::StateRegistry* registry_;
  std::vector<ScanCell> cells_;
  uint32_t length_bits_ = 0;
};

/// The target's full set of chains, keyed by name. The default layout groups
/// elements the way the Thor RD documentation groups its chains: a boundary
/// chain (bus/pin latches) plus internal chains for the core, the register
/// file, and each cache.
class ScanChainSet {
 public:
  /// Builds the default chain layout over `registry` (which must outlive
  /// this object).
  static ScanChainSet BuildDefault(const cpu::StateRegistry& registry);

  /// An empty set to be populated manually (for custom layouts in tests).
  ScanChainSet() = default;

  void AddChain(ScanChain chain) { chains_.push_back(std::move(chain)); }

  const std::vector<ScanChain>& chains() const { return chains_; }

  const ScanChain* Find(const std::string& name) const;

  /// Chain index by name, or -1.
  int IndexOf(const std::string& name) const;

  /// Total bits across all chains.
  uint32_t TotalBits() const;

 private:
  std::vector<ScanChain> chains_;
};

}  // namespace goofi::scan
