#include "scan/chain.hpp"

#include <cassert>

namespace goofi::scan {

ScanChain::ScanChain(std::string name, const cpu::StateRegistry* registry,
                     std::vector<size_t> element_indices)
    : name_(std::move(name)), registry_(registry) {
  cells_.reserve(element_indices.size());
  for (size_t index : element_indices) {
    const cpu::StateElement& element = registry_->elements()[index];
    ScanCell cell;
    cell.name = element.name;
    cell.bits = element.bits;
    cell.read_only = element.read_only;
    cell.offset = length_bits_;
    cell.element_index = index;
    length_bits_ += element.bits;
    cells_.push_back(std::move(cell));
  }
}

util::BitVec ScanChain::Capture() const {
  util::BitVec image(length_bits_);
  for (const ScanCell& cell : cells_) {
    const cpu::StateElement& element = registry_->elements()[cell.element_index];
    uint64_t value = element.get();
    // Elements wider than 64 bits do not occur; widths up to 64 are split
    // into the cell's bit range directly.
    image.DepositWord(cell.offset, value, cell.bits);
  }
  return image;
}

void ScanChain::Update(const util::BitVec& image) const {
  assert(image.size() == length_bits_);
  for (const ScanCell& cell : cells_) {
    if (cell.read_only) continue;
    const cpu::StateElement& element = registry_->elements()[cell.element_index];
    element.set(image.ExtractWord(cell.offset, cell.bits));
  }
}

ScanChain::BitLocation ScanChain::Locate(uint32_t bit) const {
  assert(bit < length_bits_);
  // Cells are ordered by offset; binary search would work, linear is fine
  // for the cell counts involved.
  for (const ScanCell& cell : cells_) {
    if (bit >= cell.offset && bit < cell.offset + cell.bits) {
      return {&cell, bit - cell.offset};
    }
  }
  return {nullptr, 0};
}

util::Result<ScanCell> ScanChain::FindCell(const std::string& name) const {
  for (const ScanCell& cell : cells_) {
    if (cell.name == name) return cell;
  }
  return util::NotFound("no cell " + name + " on chain " + name_);
}

ScanChainSet ScanChainSet::BuildDefault(const cpu::StateRegistry& registry) {
  ScanChainSet set;
  // Group -> chain mapping. The pipeline latches double as the boundary
  // chain (they hold the values that appear on the external buses).
  struct GroupChain {
    const char* chain_name;
    const char* group;
  };
  static constexpr GroupChain kLayout[] = {
      {"boundary", "pipeline"},
      {"internal_core", "core"},
      {"internal_regfile", "regfile"},
      {"internal_icache", "icache"},
      {"internal_dcache", "dcache"},
  };
  for (const GroupChain& layout : kLayout) {
    std::vector<size_t> indices;
    for (size_t i = 0; i < registry.elements().size(); ++i) {
      if (registry.elements()[i].group == layout.group) indices.push_back(i);
    }
    if (!indices.empty()) {
      set.AddChain(ScanChain(layout.chain_name, &registry, std::move(indices)));
    }
  }
  return set;
}

const ScanChain* ScanChainSet::Find(const std::string& name) const {
  for (const ScanChain& chain : chains_) {
    if (chain.name() == name) return &chain;
  }
  return nullptr;
}

int ScanChainSet::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < chains_.size(); ++i) {
    if (chains_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

uint32_t ScanChainSet::TotalBits() const {
  uint32_t total = 0;
  for (const ScanChain& chain : chains_) total += chain.length_bits();
  return total;
}

}  // namespace goofi::scan
