#include "scan/debug.hpp"

#include "util/strings.hpp"

namespace goofi::scan {

const char* TriggerKindName(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kPcBreakpoint:
      return "pc_breakpoint";
    case TriggerKind::kInstrCount:
      return "instr_count";
    case TriggerKind::kCycleCount:
      return "cycle_count";
    case TriggerKind::kDataAccess:
      return "data_access";
    case TriggerKind::kDataValue:
      return "data_value";
    case TriggerKind::kBranch:
      return "branch";
    case TriggerKind::kCall:
      return "call";
  }
  return "?";
}

std::string Trigger::Describe() const {
  switch (kind) {
    case TriggerKind::kPcBreakpoint:
      return util::Format("pc==0x%08x (occurrence %llu)", address,
                          static_cast<unsigned long long>(occurrence));
    case TriggerKind::kInstrCount:
      return util::Format("instret>=%llu", static_cast<unsigned long long>(count));
    case TriggerKind::kCycleCount:
      return util::Format("cycles>=%llu", static_cast<unsigned long long>(count));
    case TriggerKind::kDataAccess:
      return util::Format("mem access @0x%08x", address);
    case TriggerKind::kDataValue:
      return util::Format("mem data ==0x%08x", value);
    case TriggerKind::kBranch:
      return "any branch";
    case TriggerKind::kCall:
      return "any call";
  }
  return "?";
}

int DebugUnit::AddTrigger(Trigger trigger) {
  triggers_.push_back(trigger);
  hit_counts_.push_back(0);
  return static_cast<int>(triggers_.size()) - 1;
}

void DebugUnit::ClearTriggers() {
  triggers_.clear();
  hit_counts_.clear();
}

void DebugUnit::ResetCounters() {
  for (uint64_t& count : hit_counts_) count = 0;
}

int DebugUnit::StepAndCheck(cpu::StepOutcome* outcome) {
  // Observe the instruction about to execute (the prefetched ir at pc).
  const uint32_t exec_pc = cpu_->pc();
  const uint32_t exec_ir = cpu_->ir();
  *outcome = cpu_->Step();

  auto decoded = isa::Decode(exec_ir);
  const bool is_branch =
      decoded.ok() && decoded.value().op >= isa::Opcode::kBeq &&
      decoded.value().op <= isa::Opcode::kBgeu;
  const bool is_call = decoded.ok() && decoded.value().op == isa::Opcode::kJal;
  const bool is_mem = decoded.ok() && (decoded.value().op == isa::Opcode::kLdw ||
                                       decoded.value().op == isa::Opcode::kStw);
  // The data-path latches hold the executed access's address and data.
  const uint32_t mem_addr = cpu_->latch_mem_addr();
  const uint32_t mem_data = cpu_->latch_mem_data();

  for (size_t i = 0; i < triggers_.size(); ++i) {
    const Trigger& trigger = triggers_[i];
    bool fired = false;
    switch (trigger.kind) {
      case TriggerKind::kPcBreakpoint:
        if (exec_pc == trigger.address) {
          ++hit_counts_[i];
          fired = hit_counts_[i] >= trigger.occurrence;
        }
        break;
      case TriggerKind::kInstrCount:
        fired = cpu_->instructions_retired() >= trigger.count;
        break;
      case TriggerKind::kCycleCount:
        fired = cpu_->cycles() >= trigger.count;
        break;
      case TriggerKind::kDataAccess:
        fired = is_mem && mem_addr == trigger.address;
        break;
      case TriggerKind::kDataValue:
        fired = is_mem && mem_data == trigger.value;
        break;
      case TriggerKind::kBranch:
        fired = is_branch;
        break;
      case TriggerKind::kCall:
        fired = is_call;
        break;
    }
    if (fired) return static_cast<int>(i);
  }
  return -1;
}

DebugRunResult DebugUnit::RunUntilEvent(uint64_t max_cycles) {
  DebugRunResult result;
  for (;;) {
    result.fired_trigger = StepAndCheck(&result.outcome);
    if (result.fired_trigger >= 0) return result;
    if (result.outcome != cpu::StepOutcome::kOk) return result;
    if (max_cycles != 0 && cpu_->cycles() >= max_cycles) {
      result.timed_out = true;
      return result;
    }
  }
}

}  // namespace goofi::scan
