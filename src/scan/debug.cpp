#include "scan/debug.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace goofi::scan {

const char* TriggerKindName(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kPcBreakpoint:
      return "pc_breakpoint";
    case TriggerKind::kInstrCount:
      return "instr_count";
    case TriggerKind::kCycleCount:
      return "cycle_count";
    case TriggerKind::kDataAccess:
      return "data_access";
    case TriggerKind::kDataValue:
      return "data_value";
    case TriggerKind::kBranch:
      return "branch";
    case TriggerKind::kCall:
      return "call";
  }
  return "?";
}

std::string Trigger::Describe() const {
  switch (kind) {
    case TriggerKind::kPcBreakpoint:
      return util::Format("pc==0x%08x (occurrence %llu)", address,
                          static_cast<unsigned long long>(occurrence));
    case TriggerKind::kInstrCount:
      return util::Format("instret>=%llu", static_cast<unsigned long long>(count));
    case TriggerKind::kCycleCount:
      return util::Format("cycles>=%llu", static_cast<unsigned long long>(count));
    case TriggerKind::kDataAccess:
      return util::Format("mem access @0x%08x", address);
    case TriggerKind::kDataValue:
      return util::Format("mem data ==0x%08x", value);
    case TriggerKind::kBranch:
      return "any branch";
    case TriggerKind::kCall:
      return "any call";
  }
  return "?";
}

int DebugUnit::AddTrigger(Trigger trigger) {
  triggers_.push_back(trigger);
  hit_counts_.push_back(0);
  return static_cast<int>(triggers_.size()) - 1;
}

void DebugUnit::ClearTriggers() {
  triggers_.clear();
  hit_counts_.clear();
}

void DebugUnit::ResetCounters() {
  for (uint64_t& count : hit_counts_) count = 0;
}

int DebugUnit::StepAndCheck(cpu::StepOutcome* outcome) {
  // Observe the instruction about to execute (the prefetched ir at pc).
  const uint32_t exec_pc = cpu_->pc();
  const uint32_t exec_ir = cpu_->ir();
  *outcome = cpu_->Step();

  // Predecode is infallible and allocation-free — a per-step isa::Decode
  // would build error strings whenever a fault corrupted the executed word.
  const isa::Predecoded decoded = isa::Predecode(exec_ir);
  const bool valid = decoded.fault == isa::PredecodeFault::kNone;
  const bool is_branch = valid && decoded.ins.op >= isa::Opcode::kBeq &&
                         decoded.ins.op <= isa::Opcode::kBgeu;
  const bool is_call = valid && decoded.ins.op == isa::Opcode::kJal;
  const bool is_mem = valid && (decoded.ins.op == isa::Opcode::kLdw ||
                                decoded.ins.op == isa::Opcode::kStw);
  return EvaluateTriggers(exec_pc, is_mem, is_branch, is_call);
}

int DebugUnit::EvaluateTriggers(uint32_t exec_pc, bool is_mem, bool is_branch,
                                bool is_call) {
  // The data-path latches hold the executed access's address and data.
  const uint32_t mem_addr = cpu_->latch_mem_addr();
  const uint32_t mem_data = cpu_->latch_mem_data();

  for (size_t i = 0; i < triggers_.size(); ++i) {
    const Trigger& trigger = triggers_[i];
    bool fired = false;
    switch (trigger.kind) {
      case TriggerKind::kPcBreakpoint:
        if (exec_pc == trigger.address) {
          ++hit_counts_[i];
          fired = hit_counts_[i] >= trigger.occurrence;
        }
        break;
      case TriggerKind::kInstrCount:
        fired = cpu_->instructions_retired() >= trigger.count;
        break;
      case TriggerKind::kCycleCount:
        fired = cpu_->cycles() >= trigger.count;
        break;
      case TriggerKind::kDataAccess:
        fired = is_mem && mem_addr == trigger.address;
        break;
      case TriggerKind::kDataValue:
        fired = is_mem && mem_data == trigger.value;
        break;
      case TriggerKind::kBranch:
        fired = is_branch;
        break;
      case TriggerKind::kCall:
        fired = is_call;
        break;
    }
    if (fired) return static_cast<int>(i);
  }
  return -1;
}

DebugRunResult DebugUnit::RunUntilEvent(uint64_t max_cycles) {
  DebugRunResult result;
  for (;;) {
    result.fired_trigger = StepAndCheck(&result.outcome);
    if (result.fired_trigger >= 0) return result;
    if (result.outcome != cpu::StepOutcome::kOk) return result;
    if (max_cycles != 0 && cpu_->cycles() >= max_cycles) {
      result.timed_out = true;
      return result;
    }
  }
}

DebugRunResult DebugUnit::RunUntilEventFast(uint64_t max_cycles) {
  // An already-terminated CPU still gets a (stale) trigger evaluation from
  // the reference loop; keep that quirk by delegating.
  if (cpu_->halted()) return RunUntilEvent(max_cycles);

  // Compile the trigger list into watch conditions. Count triggers become
  // absolute budgets (a count of 0 is already-true level semantics: any
  // step satisfies it, so stop after one). Data/branch/call triggers watch
  // the instruction class; the precise address/value/occurrence conditions
  // are re-checked by EvaluateTriggers at each stop, so over-approximating
  // the watch set costs only extra stops, never wrong results.
  cpu::RunFastRequest request;
  request.max_cycles = max_cycles;
  bool have_pc = false;
  for (const Trigger& trigger : triggers_) {
    switch (trigger.kind) {
      case TriggerKind::kPcBreakpoint:
        if (have_pc && request.watch_pc != trigger.address) {
          // Two distinct breakpoint addresses: one hardware comparator
          // cannot watch both, run the reference loop.
          return RunUntilEvent(max_cycles);
        }
        have_pc = true;
        request.watch_pc = trigger.address;
        request.watch_pc_enabled = true;
        break;
      case TriggerKind::kInstrCount: {
        const uint64_t count = trigger.count != 0 ? trigger.count : 1;
        request.max_instret = request.max_instret == 0
                                  ? count
                                  : std::min(request.max_instret, count);
        break;
      }
      case TriggerKind::kCycleCount: {
        const uint64_t count = trigger.count != 0 ? trigger.count : 1;
        request.max_cycles = request.max_cycles == 0
                                 ? count
                                 : std::min(request.max_cycles, count);
        break;
      }
      case TriggerKind::kDataAccess:
      case TriggerKind::kDataValue:
        request.watch_mem = true;
        break;
      case TriggerKind::kBranch:
        request.watch_branch = true;
        break;
      case TriggerKind::kCall:
        request.watch_call = true;
        break;
    }
  }

  DebugRunResult result;
  for (;;) {
    const cpu::RunFastResult fast = cpu_->RunFastEx(request);
    result.outcome = fast.outcome;
    // Same order as the reference loop: triggers first (evaluated even on a
    // halting/detecting step), then outcome, then timeout.
    result.fired_trigger = EvaluateTriggers(fast.exec_pc, fast.exec_mem,
                                            fast.exec_branch, fast.exec_call);
    if (result.fired_trigger >= 0) return result;
    if (result.outcome != cpu::StepOutcome::kOk) return result;
    if (max_cycles != 0 && cpu_->cycles() >= max_cycles) {
      result.timed_out = true;
      return result;
    }
    // Spurious stop (e.g. breakpoint occurrence not yet reached): resume.
  }
}

}  // namespace goofi::scan
