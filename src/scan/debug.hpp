// Debug-event unit: breakpoints and fault triggers evaluated via the scan
// logic.
//
// Paper §3.2: "A fault injection experiment can be terminated by a debug
// event generated via the scan chains i.e., when a time-out value has been
// reached, an error has been detected or the execution of the workload
// ends". §3.3: "The breakpoint is obtained by analysing the workload code
// and is set via the scan-chains." §4 lists additional planned triggers —
// "access of certain data values, execution of branch instructions or
// subprogram calls ... or at specific times determined by a real-time
// clock" — all of which are implemented here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu.hpp"

namespace goofi::scan {

enum class TriggerKind {
  kPcBreakpoint,   ///< executed instruction at a given address
  kInstrCount,     ///< N instructions retired
  kCycleCount,     ///< target cycle counter reached a value (real-time clock)
  kDataAccess,     ///< load/store touching a given address
  kDataValue,      ///< load/store moving a given data value
  kBranch,         ///< any branch instruction executed
  kCall,           ///< any subprogram call (jal) executed
};

const char* TriggerKindName(TriggerKind kind);

struct Trigger {
  TriggerKind kind = TriggerKind::kPcBreakpoint;
  uint32_t address = 0;   ///< kPcBreakpoint / kDataAccess
  uint64_t count = 0;     ///< kInstrCount / kCycleCount
  uint32_t value = 0;     ///< kDataValue
  /// For kPcBreakpoint: fire on the `occurrence`-th execution of the address
  /// (1-based). Lets campaigns break in a chosen loop iteration.
  uint64_t occurrence = 1;

  std::string Describe() const;
};

/// Result of running the target until a debug event.
struct DebugRunResult {
  cpu::StepOutcome outcome = cpu::StepOutcome::kOk;
  int fired_trigger = -1;     ///< index into the trigger list, or -1
  bool timed_out = false;     ///< max_cycles elapsed with no event
};

/// Watches a Cpu while stepping it. The unit observes the *executed*
/// instruction of every step (address, opcode, memory traffic), which is
/// what hardware debug comparators on the scan path see.
class DebugUnit {
 public:
  explicit DebugUnit(cpu::Cpu* cpu) : cpu_(cpu) {}

  int AddTrigger(Trigger trigger);
  void ClearTriggers();
  const std::vector<Trigger>& triggers() const { return triggers_; }

  /// Steps the CPU once and evaluates all triggers against the executed
  /// instruction. Returns the index of the first trigger that fired, or -1.
  int StepAndCheck(cpu::StepOutcome* outcome);

  /// Runs until any trigger fires, the workload halts, an EDM fires, or
  /// `max_cycles` elapse (0 = unbounded — only sensible with triggers).
  DebugRunResult RunUntilEvent(uint64_t max_cycles);

  /// Fast-path equivalent of RunUntilEvent: compiles the trigger list into
  /// Cpu::RunFastEx watch conditions, then re-evaluates the triggers with
  /// the exact StepAndCheck logic at every superblock exit. Produces
  /// bit-identical results (fired index, hit counts, CPU state); trigger
  /// shapes the watch compiler cannot express — more than one distinct
  /// pc-breakpoint address — fall back to the reference loop.
  DebugRunResult RunUntilEventFast(uint64_t max_cycles);

  /// Resets per-run occurrence counters. Call when the target is reset.
  void ResetCounters();

  /// Trigger configuration plus accumulated occurrence counters, for
  /// checkpointing — restored breakpoints behave exactly as if the run had
  /// executed up to the capture point.
  ///
  /// Deliberately *not* covered by the convergence hash
  /// (SimTestCard::HashTargetState): the targets clear and re-arm all
  /// triggers via ArmTriggers before every run phase, so leftover trigger or
  /// hit-count state never survives into comparable execution.
  struct Snapshot {
    std::vector<Trigger> triggers;
    std::vector<uint64_t> hit_counts;
  };

  Snapshot SaveSnapshot() const { return {triggers_, hit_counts_}; }
  void RestoreSnapshot(const Snapshot& snapshot) {
    triggers_ = snapshot.triggers;
    hit_counts_ = snapshot.hit_counts;
  }

 private:
  /// Evaluates all triggers against one executed instruction (address plus
  /// classification); shared verbatim between StepAndCheck and the fast
  /// path so occurrence counting cannot diverge. Returns the first fired
  /// trigger index, or -1.
  int EvaluateTriggers(uint32_t exec_pc, bool is_mem, bool is_branch,
                       bool is_call);

  cpu::Cpu* cpu_;
  std::vector<Trigger> triggers_;
  std::vector<uint64_t> hit_counts_;  ///< per-trigger occurrence counters
};

}  // namespace goofi::scan
