#include "tool/shell.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/analysis.hpp"
#include "core/propagation.hpp"
#include "core/thor_target.hpp"
#include "db/sql_executor.hpp"
#include "env/workloads.hpp"
#include "util/strings.hpp"

namespace goofi::tool {

namespace {

const char* const kHelpText =
    "GOOFI shell commands:\n"
    "  help                                   this text\n"
    "  list targets|campaigns|workloads       enumerate known objects\n"
    "  list experiments <campaign>            logged experiment rows\n"
    "  list chains <target>                   scan-chain layout of a target\n"
    "  target describe <target>               store TargetSystemData (Fig. 5)\n"
    "  campaign set <name> key=value...       create/update a campaign (Fig. 6)\n"
    "    keys: target workload technique model experiments faults\n"
    "          window=min:max locations=a,b timeout iterations seed\n"
    "          logmode=normal|detail observe=a,b burst=len:spacing\n"
    "  campaign show <name>                   print stored campaign data\n"
    "  campaign merge <new> <src>...          merge campaigns (3.2)\n"
    "  run <campaign>                         fault-injection phase (Fig. 2)\n"
    "  run-parallel <campaign> [workers]      sharded run, deterministic replay\n"
    "  run-warm <campaign> [workers] [interval]  checkpoint fast-forward run\n"
    "  run-pruned <campaign> [workers] [interval]  run-warm + convergence pruning\n"
    "  run-dedup <campaign> [workers]         run-pruned + equivalence classing\n"
    "  run-static <campaign> [workers]        run-pruned + static no-effect classes\n"
    "  stats                                  counters of the last run command\n"
    "  analyze <campaign>                     classification report (3.4)\n"
    "  analyze <workload>                     static CFG/liveness/prune report\n"
    "  report <campaign> <path>               write the report to a file\n"
    "  rerun-detail <experiment>              detail-mode re-run (2.3)\n"
    "  propagation <experiment>               error-propagation analysis (3.3)\n"
    "  sql <statement>                        raw SQL against the database\n"
    "  explain <select>                       show the query plan for a SELECT\n"
    "  save <path> | load <path>              database persistence\n"
    "  archive open <path>                    WAL-backed durable persistence\n"
    "  archive checkpoint                     fold the WAL into a snapshot\n"
    "  archive status | close                 recovery counters / detach\n"
    "  echo <text>                            print text (for scripts)\n";

}  // namespace

Shell::Shell(db::Database* db, core::CampaignStore* store)
    : db_(db), store_(store) {}

void Shell::AddTarget(const std::string& name,
                      core::FaultInjectionAlgorithms* algorithms,
                      const testcard::TestCard* card,
                      core::ParallelCampaignRunner::TargetFactory factory,
                      cpu::CpuConfig analyzer_config) {
  targets_[name] = Target{algorithms, card, std::move(factory), analyzer_config};
}

util::Result<std::string> Shell::CmdHelp() const { return std::string(kHelpText); }

util::Result<std::string> Shell::CmdList(
    const std::vector<std::string>& args) const {
  if (args.empty()) return util::InvalidArgument("list what? (see help)");
  std::ostringstream out;
  if (args[0] == "targets") {
    for (const auto& [name, target] : targets_) {
      out << name << (target.card != nullptr ? " (scan-capable)" : "") << "\n";
    }
    return out.str();
  }
  if (args[0] == "campaigns") {
    for (const std::string& name : store_->CampaignNames()) out << name << "\n";
    return out.str();
  }
  if (args[0] == "workloads") {
    for (const std::string& name : env::WorkloadNames()) {
      const auto spec = env::GetWorkload(name);
      out << util::Format("%-22s %s\n", name.c_str(),
                          spec.ok() ? spec.value().description.c_str() : "");
    }
    return out.str();
  }
  if (args[0] == "experiments") {
    if (args.size() < 2) return util::InvalidArgument("list experiments <campaign>");
    auto rows = store_->ExperimentsOf(args[1]);
    if (!rows.ok()) return rows.status();
    int detail = 0;
    for (const auto& row : rows.value()) {
      if (!row.parent_experiment.empty()) {
        ++detail;
        continue;
      }
      out << util::Format("%-24s %s%s%s\n", row.experiment_name.c_str(),
                          row.state.detected ? "detected:" : "",
                          row.state.detected ? row.state.edm.c_str() : "",
                          row.state.halted ? "completed" : "");
    }
    if (detail > 0) out << util::Format("(+ %d detail rows)\n", detail);
    return out.str();
  }
  if (args[0] == "chains") {
    if (args.size() < 2) return util::InvalidArgument("list chains <target>");
    const auto it = targets_.find(args[1]);
    if (it == targets_.end()) return util::NotFound("no target " + args[1]);
    if (it->second.card == nullptr) {
      return util::FailedPrecondition("target " + args[1] + " has no scan logic");
    }
    for (const auto& chain : it->second.card->chains().chains()) {
      out << util::Format("%-18s %5u bits, %3zu cells\n", chain.name().c_str(),
                          chain.length_bits(), chain.cells().size());
    }
    return out.str();
  }
  return util::InvalidArgument("unknown list kind: " + args[0]);
}

util::Result<std::string> Shell::CmdTarget(const std::vector<std::string>& args) {
  if (args.size() != 2 || args[0] != "describe") {
    return util::InvalidArgument("usage: target describe <target>");
  }
  const auto it = targets_.find(args[1]);
  if (it == targets_.end()) return util::NotFound("no target " + args[1]);
  if (it->second.card == nullptr) {
    core::TargetSystemData data;
    data.name = args[1];
    data.description = "target without scan logic";
    GOOFI_RETURN_IF_ERROR(store_->PutTargetSystem(data));
  } else {
    GOOFI_RETURN_IF_ERROR(store_->PutTargetSystem(
        core::ThorRdTarget::DescribeTarget(*it->second.card, args[1])));
  }
  return "stored TargetSystemData for " + args[1] + "\n";
}

util::Status Shell::ApplyCampaignField(core::CampaignData* campaign,
                                       const std::string& key,
                                       const std::string& value) const {
  auto as_int = [&]() -> util::Result<int64_t> {
    const auto v = util::ParseInt(value);
    if (!v) return util::ParseError(key + " expects a number, got " + value);
    return *v;
  };
  if (key == "target") {
    campaign->target_name = value;
  } else if (key == "workload") {
    campaign->workload = value;
  } else if (key == "technique") {
    auto technique = core::TechniqueFromName(value);
    if (!technique.ok()) return technique.status();
    campaign->technique = technique.value();
  } else if (key == "model") {
    auto model = core::FaultModelFromName(value);
    if (!model.ok()) return model.status();
    campaign->fault_model = model.value();
  } else if (key == "experiments") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    campaign->num_experiments = static_cast<int>(v.value());
  } else if (key == "faults") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    campaign->faults_per_experiment = static_cast<int>(v.value());
  } else if (key == "window") {
    const auto parts = util::Split(value, ':');
    const auto lo = util::ParseInt(parts[0]);
    const auto hi = parts.size() > 1 ? util::ParseInt(parts[1]) : lo;
    if (parts.size() != 2 || !lo || !hi) {
      return util::ParseError("window expects min:max");
    }
    campaign->inject_min_instr = static_cast<uint64_t>(*lo);
    campaign->inject_max_instr = static_cast<uint64_t>(*hi);
  } else if (key == "locations") {
    campaign->locations.clear();
    for (const std::string& token : util::Split(value, ',')) {
      auto selector = core::FaultLocationSelector::Parse(token);
      if (!selector.ok()) return selector.status();
      campaign->locations.push_back(std::move(selector).value());
    }
  } else if (key == "timeout") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    campaign->timeout_cycles = static_cast<uint64_t>(v.value());
  } else if (key == "iterations") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    campaign->max_iterations = static_cast<int>(v.value());
  } else if (key == "seed") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    campaign->seed = static_cast<uint64_t>(v.value());
  } else if (key == "logmode") {
    if (value == "normal") {
      campaign->log_mode = core::LogMode::kNormal;
    } else if (value == "detail") {
      campaign->log_mode = core::LogMode::kDetail;
    } else {
      return util::ParseError("logmode expects normal|detail");
    }
  } else if (key == "observe") {
    campaign->observe_chains = util::Split(value, ',');
  } else if (key == "burst") {
    const auto parts = util::Split(value, ':');
    const auto len = util::ParseInt(parts[0]);
    const auto spacing = parts.size() > 1 ? util::ParseInt(parts[1])
                                          : std::optional<int64_t>();
    if (parts.size() != 2 || !len || !spacing) {
      return util::ParseError("burst expects len:spacing");
    }
    campaign->burst_length = static_cast<uint32_t>(*len);
    campaign->burst_spacing = static_cast<uint64_t>(*spacing);
  } else {
    return util::InvalidArgument("unknown campaign key: " + key);
  }
  return util::Status::Ok();
}

util::Result<std::string> Shell::CmdCampaign(
    const std::vector<std::string>& args) {
  if (args.empty()) return util::InvalidArgument("campaign set|show|merge ...");
  if (args[0] == "set") {
    if (args.size() < 2) return util::InvalidArgument("campaign set <name> k=v...");
    const std::string& name = args[1];
    core::CampaignData campaign;
    auto existing = store_->GetCampaign(name);
    if (existing.ok()) {
      campaign = std::move(existing).value();
    } else {
      campaign.name = name;
      if (targets_.size() == 1) campaign.target_name = targets_.begin()->first;
    }
    for (size_t i = 2; i < args.size(); ++i) {
      const size_t eq = args[i].find('=');
      if (eq == std::string::npos) {
        return util::InvalidArgument("expected key=value, got " + args[i]);
      }
      GOOFI_RETURN_IF_ERROR(ApplyCampaignField(&campaign, args[i].substr(0, eq),
                                               args[i].substr(eq + 1)));
    }
    GOOFI_RETURN_IF_ERROR(store_->PutCampaign(campaign));
    return "stored campaign " + name + "\n";
  }
  if (args[0] == "show") {
    if (args.size() != 2) return util::InvalidArgument("campaign show <name>");
    auto campaign = store_->GetCampaign(args[1]);
    if (!campaign.ok()) return campaign.status();
    const core::CampaignData& c = campaign.value();
    std::ostringstream out;
    out << "campaign " << c.name << "\n";
    out << "  target:      " << c.target_name << "\n";
    out << "  technique:   " << core::TechniqueName(c.technique) << "\n";
    out << "  fault model: " << core::FaultModelName(c.fault_model) << " x"
        << c.faults_per_experiment << "\n";
    out << "  workload:    " << c.workload << "\n";
    out << "  experiments: " << c.num_experiments << "\n";
    out << "  window:      [" << c.inject_min_instr << ", " << c.inject_max_instr
        << "] instructions\n";
    out << "  locations:   ";
    for (size_t i = 0; i < c.locations.size(); ++i) {
      if (i > 0) out << ", ";
      out << c.locations[i].ToString();
    }
    out << "\n";
    out << "  timeout:     " << c.timeout_cycles << " cycles, max "
        << c.max_iterations << " iterations\n";
    out << "  log mode:    " << core::LogModeName(c.log_mode) << "\n";
    out << "  seed:        " << c.seed << "\n";
    return out.str();
  }
  if (args[0] == "merge") {
    if (args.size() < 3) {
      return util::InvalidArgument("campaign merge <new> <src>...");
    }
    const std::vector<std::string> sources(args.begin() + 2, args.end());
    GOOFI_RETURN_IF_ERROR(store_->MergeCampaigns(sources, args[1]));
    return "merged " + std::to_string(sources.size()) + " campaigns into " +
           args[1] + "\n";
  }
  return util::InvalidArgument("unknown campaign subcommand: " + args[0]);
}

util::Result<Shell::Target> Shell::FindTargetFor(
    const std::string& campaign_name) const {
  auto campaign = store_->GetCampaign(campaign_name);
  if (!campaign.ok()) return campaign.status();
  const auto it = targets_.find(campaign.value().target_name);
  if (it == targets_.end()) {
    return util::NotFound("campaign references unregistered target " +
                          campaign.value().target_name);
  }
  return it->second;
}

util::Result<std::string> Shell::CmdRun(const std::vector<std::string>& args) {
  if (args.size() != 1) return util::InvalidArgument("run <campaign>");
  auto target = FindTargetFor(args[0]);
  if (!target.ok()) return target.status();
  GOOFI_RETURN_IF_ERROR(target.value().algorithms->RunCampaign(args[0]));
  const auto& stats = target.value().algorithms->stats();
  last_run_ = LastRun{};
  last_run_.valid = true;
  last_run_.campaign = args[0];
  last_run_.mode = "run";
  last_run_.stats = stats;
  last_run_.warm_starts = target.value().algorithms->warm_starts();
  last_run_.prune = target.value().algorithms->prune_stats();
  cpu::MemoryUsageAggregator memory_usage;
  if (const cpu::Memory* memory = target.value().algorithms->TargetMemory()) {
    memory_usage.Add(*memory);
  }
  last_run_.memory = memory_usage.totals();
  return util::Format("campaign %s: %d experiments run, %d resumed\n",
                      args[0].c_str(), stats.experiments_run,
                      stats.experiments_resumed);
}

util::Result<std::string> Shell::CmdRunParallel(
    const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) {
    return util::InvalidArgument("run-parallel <campaign> [workers]");
  }
  int workers = 0;  // 0 = hardware concurrency
  if (args.size() == 2) {
    const auto parsed = util::ParseInt(args[1]);
    if (!parsed || *parsed < 1) {
      return util::InvalidArgument("workers must be a positive number");
    }
    workers = static_cast<int>(*parsed);
  }
  auto target = FindTargetFor(args[0]);
  if (!target.ok()) return target.status();
  if (!target.value().factory) {
    return util::FailedPrecondition(
        "target of campaign " + args[0] +
        " was registered without a parallel target factory");
  }
  core::ParallelCampaignRunner runner(store_, target.value().factory, workers);
  GOOFI_RETURN_IF_ERROR(runner.Run(args[0]));
  const auto& stats = runner.stats();
  last_run_ = LastRun{};
  last_run_.valid = true;
  last_run_.campaign = args[0];
  last_run_.mode = "run-parallel";
  last_run_.stats = stats;
  last_run_.warm_starts = runner.warm_starts();
  last_run_.prune = runner.prune_stats();
  last_run_.memory = runner.memory_usage();
  return util::Format(
      "campaign %s: %d experiments run on %d workers, %d resumed\n",
      args[0].c_str(), stats.experiments_run, runner.workers_used(),
      stats.experiments_resumed);
}

util::Result<std::string> Shell::CmdRunWarm(
    const std::vector<std::string>& args) {
  return RunWarmOrPruned(args, /*pruned=*/false);
}

util::Result<std::string> Shell::CmdRunPruned(
    const std::vector<std::string>& args) {
  return RunWarmOrPruned(args, /*pruned=*/true);
}

util::Result<std::string> Shell::CmdRunDedup(
    const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) {
    return util::InvalidArgument("run-dedup <campaign> [workers]");
  }
  int workers = 1;
  if (args.size() == 2) {
    const auto parsed = util::ParseInt(args[1]);
    if (!parsed || *parsed < 1) {
      return util::InvalidArgument("workers must be a positive number");
    }
    workers = static_cast<int>(*parsed);
  }
  auto target = FindTargetFor(args[0]);
  if (!target.ok()) return target.status();
  if (!target.value().factory) {
    return util::FailedPrecondition(
        "target of campaign " + args[0] +
        " was registered without a parallel target factory");
  }
  auto campaign = store_->GetCampaign(args[0]);
  if (!campaign.ok()) return campaign.status();
  core::ParallelCampaignRunner runner(store_, target.value().factory, workers);
  runner.SetForceWarmStart(true);
  runner.SetConvergencePruning(true);
  runner.SetEquivalenceClassing(true);
  // The access timeline for window-based classes: a fault-free run of the
  // campaign's workload on the target's configuration, memoized across
  // campaigns. Bound by the campaign's own termination conditions so the
  // timeline covers the whole golden run.
  auto timeline = liveness_cache_.Get(
      campaign.value().workload, target.value().config,
      std::max<uint64_t>(200000, campaign.value().timeout_cycles),
      campaign.value().max_iterations);
  if (!timeline.ok()) return timeline.status();
  runner.SetEquivalenceTimeline(timeline.value());
  GOOFI_RETURN_IF_ERROR(runner.Run(args[0]));
  const auto& stats = runner.stats();
  last_run_ = LastRun{};
  last_run_.valid = true;
  last_run_.campaign = args[0];
  last_run_.mode = "run-dedup";
  last_run_.stats = stats;
  last_run_.warm_starts = runner.warm_starts();
  last_run_.prune = runner.prune_stats();
  last_run_.dedup = runner.dedup_stats();
  last_run_.memory = runner.memory_usage();
  return util::Format(
      "campaign %s: %d experiments run on %d workers (%lld classes, "
      "%lld synthesized, %lld pruned), %d resumed\n",
      args[0].c_str(), stats.experiments_run, runner.workers_used(),
      static_cast<long long>(runner.dedup_stats().classes_formed),
      static_cast<long long>(runner.dedup_stats().experiments_synthesized),
      static_cast<long long>(runner.prune_stats().pruned_total()),
      stats.experiments_resumed);
}

util::Result<std::string> Shell::CmdRunStatic(
    const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) {
    return util::InvalidArgument("run-static <campaign> [workers]");
  }
  int workers = 1;
  if (args.size() == 2) {
    const auto parsed = util::ParseInt(args[1]);
    if (!parsed || *parsed < 1) {
      return util::InvalidArgument("workers must be a positive number");
    }
    workers = static_cast<int>(*parsed);
  }
  auto target = FindTargetFor(args[0]);
  if (!target.ok()) return target.status();
  if (!target.value().factory) {
    return util::FailedPrecondition(
        "target of campaign " + args[0] +
        " was registered without a parallel target factory");
  }
  auto campaign = store_->GetCampaign(args[0]);
  if (!campaign.ok()) return campaign.status();
  core::ParallelCampaignRunner runner(store_, target.value().factory, workers);
  runner.SetForceWarmStart(true);
  runner.SetConvergencePruning(true);
  runner.SetEquivalenceClassing(true);
  // Unlike run-dedup, no fault-free pre-run happens here: the only class
  // source beyond the always-available past-end/pre-runtime keys is the
  // static workload analysis, built from the program text alone.
  auto analysis = static_cache_.Get(campaign.value().workload);
  if (!analysis.ok()) return analysis.status();
  runner.SetStaticAnalysis(analysis.value());
  GOOFI_RETURN_IF_ERROR(runner.Run(args[0]));
  const auto& stats = runner.stats();
  last_run_ = LastRun{};
  last_run_.valid = true;
  last_run_.campaign = args[0];
  last_run_.mode = "run-static";
  last_run_.stats = stats;
  last_run_.warm_starts = runner.warm_starts();
  last_run_.prune = runner.prune_stats();
  last_run_.dedup = runner.dedup_stats();
  last_run_.memory = runner.memory_usage();
  return util::Format(
      "campaign %s: %d experiments run on %d workers (%lld classes, "
      "%lld synthesized, %lld static no-effect, %lld pruned), %d resumed\n",
      args[0].c_str(), stats.experiments_run, runner.workers_used(),
      static_cast<long long>(runner.dedup_stats().classes_formed),
      static_cast<long long>(runner.dedup_stats().experiments_synthesized),
      static_cast<long long>(runner.dedup_stats().static_synthesized),
      static_cast<long long>(runner.prune_stats().pruned_total()),
      stats.experiments_resumed);
}

util::Result<std::string> Shell::RunWarmOrPruned(
    const std::vector<std::string>& args, bool pruned) {
  if (args.empty() || args.size() > 3) {
    return util::InvalidArgument(pruned
                                     ? "run-pruned <campaign> [workers] [interval]"
                                     : "run-warm <campaign> [workers] [interval]");
  }
  int workers = 1;
  if (args.size() >= 2) {
    const auto parsed = util::ParseInt(args[1]);
    if (!parsed || *parsed < 1) {
      return util::InvalidArgument("workers must be a positive number");
    }
    workers = static_cast<int>(*parsed);
  }
  uint64_t interval = core::FaultInjectionAlgorithms::kDefaultCheckpointInterval;
  if (args.size() == 3) {
    const auto parsed = util::ParseInt(args[2]);
    if (!parsed || *parsed < 1) {
      return util::InvalidArgument("interval must be a positive number");
    }
    interval = static_cast<uint64_t>(*parsed);
  }
  auto target = FindTargetFor(args[0]);
  if (!target.ok()) return target.status();
  if (!target.value().factory) {
    return util::FailedPrecondition(
        "target of campaign " + args[0] +
        " was registered without a parallel target factory");
  }
  core::ParallelCampaignRunner runner(store_, target.value().factory, workers);
  runner.SetCheckpointInterval(interval);
  runner.SetForceWarmStart(true);
  runner.SetConvergencePruning(pruned);
  GOOFI_RETURN_IF_ERROR(runner.Run(args[0]));
  const auto& stats = runner.stats();
  last_run_ = LastRun{};
  last_run_.valid = true;
  last_run_.campaign = args[0];
  last_run_.mode = pruned ? "run-pruned" : "run-warm";
  last_run_.stats = stats;
  last_run_.warm_starts = runner.warm_starts();
  last_run_.prune = runner.prune_stats();
  last_run_.memory = runner.memory_usage();
  if (pruned) {
    return util::Format(
        "campaign %s: %d experiments run on %d workers (%d warm starts, "
        "%lld pruned, interval %llu), %d resumed\n",
        args[0].c_str(), stats.experiments_run, runner.workers_used(),
        runner.warm_starts(),
        static_cast<long long>(runner.prune_stats().pruned_total()),
        static_cast<unsigned long long>(interval), stats.experiments_resumed);
  }
  return util::Format(
      "campaign %s: %d experiments run on %d workers (%d warm starts, "
      "interval %llu), %d resumed\n",
      args[0].c_str(), stats.experiments_run, runner.workers_used(),
      runner.warm_starts(), static_cast<unsigned long long>(interval),
      stats.experiments_resumed);
}

util::Result<std::string> Shell::CmdStats() const {
  if (!last_run_.valid && archive_ == nullptr) {
    return util::FailedPrecondition("no run command has executed yet");
  }
  std::ostringstream out;
  if (archive_ != nullptr) {
    const db::ArchiveStats s = archive_->stats();
    out << "archive: " << archive_->path() << "\n";
    out << util::Format("  epoch:                    %llu\n",
                        static_cast<unsigned long long>(s.epoch));
    out << util::Format("  wal records replayed:     %llu\n",
                        static_cast<unsigned long long>(s.wal_records_replayed));
    out << util::Format("  wal records appended:     %llu\n",
                        static_cast<unsigned long long>(s.wal_records_appended));
    out << util::Format("  wal group commits:        %llu\n",
                        static_cast<unsigned long long>(s.wal_commits));
    out << util::Format("  wal bytes:                %llu\n",
                        static_cast<unsigned long long>(s.wal_bytes));
    out << util::Format("  checkpoints folded:       %llu\n",
                        static_cast<unsigned long long>(s.checkpoints_folded));
    if (s.recovered_torn_tail) {
      out << util::Format("  torn tail truncated:      %llu bytes\n",
                          static_cast<unsigned long long>(s.wal_bytes_truncated));
    }
    if (s.stale_wal_discarded) out << "  stale wal discarded\n";
    if (s.loaded_legacy_text) out << "  loaded from legacy text format\n";
  }
  if (!last_run_.valid) return out.str();
  out << "last run: " << last_run_.campaign << " (" << last_run_.mode << ")\n";
  out << util::Format("  experiments run:          %d\n",
                      last_run_.stats.experiments_run);
  out << util::Format("  experiments resumed:      %d\n",
                      last_run_.stats.experiments_resumed);
  // The two distinct "experiment finished early" populations: faults the
  // liveness analyzer proved dead (never injected at all) versus faults that
  // were injected but whose state rejoined the golden trajectory.
  out << util::Format("  never injected (dead):    %d\n",
                      last_run_.stats.injections_skipped_dead);
  out << util::Format(
      "  injected but converged:   %lld (golden %lld, memo %lld)\n",
      static_cast<long long>(last_run_.prune.pruned_total()),
      static_cast<long long>(last_run_.prune.pruned_golden),
      static_cast<long long>(last_run_.prune.pruned_memo));
  out << util::Format("  warm starts:              %d\n",
                      last_run_.warm_starts);
  out << util::Format("  boundary checks:          %lld\n",
                      static_cast<long long>(last_run_.prune.boundary_checks));
  out << util::Format(
      "  collision rejects:        %lld\n",
      static_cast<long long>(last_run_.prune.collision_rejects));
  out << util::Format("  memo inserts:             %lld\n",
                      static_cast<long long>(last_run_.prune.memo_inserts));
  out << util::Format("  equivalence classes:      %lld\n",
                      static_cast<long long>(last_run_.dedup.classes_formed));
  out << util::Format(
      "  experiments synthesized:  %lld (%lld static no-effect)\n",
      static_cast<long long>(last_run_.dedup.experiments_synthesized),
      static_cast<long long>(last_run_.dedup.static_synthesized));
  out << util::Format(
      "  spot checks:              %lld run, %lld passed\n",
      static_cast<long long>(last_run_.dedup.spot_checks_run),
      static_cast<long long>(last_run_.dedup.spot_checks_passed));
  // Copy-on-write memory: how the run's targets shared the workload image
  // (golden pages by pointer, one physical image for all workers) and how
  // much was privately materialized by the write barrier.
  const cpu::MemoryUsageAggregator::Totals& memory = last_run_.memory;
  if (memory.targets > 0) {
    out << util::Format("memory (COW paging, %d target%s):\n", memory.targets,
                        memory.targets == 1 ? "" : "s");
    out << util::Format(
        "  shared pages:             %llu golden, %llu zero\n",
        static_cast<unsigned long long>(memory.golden_pages),
        static_cast<unsigned long long>(memory.zero_pages));
    out << util::Format("  private pages:            %llu (+%llu pooled)\n",
                        static_cast<unsigned long long>(memory.private_pages),
                        static_cast<unsigned long long>(memory.pool_pages));
    out << util::Format(
        "  cow page copies:          %llu (%llu golden adoptions)\n",
        static_cast<unsigned long long>(memory.cow_faults),
        static_cast<unsigned long long>(memory.golden_adoptions));
    out << util::Format(
        "  resident bytes/target:    %llu\n",
        static_cast<unsigned long long>(
            memory.resident_bytes /
            static_cast<uint64_t>(memory.targets)));
    out << util::Format(
        "  golden images:            %d shared (%llu bytes total)\n",
        memory.golden_images,
        static_cast<unsigned long long>(memory.golden_image_bytes));
  }
  return out.str();
}

util::Result<std::string> Shell::CmdAnalyze(
    const std::vector<std::string>& args) const {
  if (args.size() != 1) {
    return util::InvalidArgument("analyze <campaign|workload>");
  }
  auto report = core::AnalyzeCampaign(*store_, args[0]);
  if (!report.ok()) {
    // Not a campaign — a workload name gets the static-analysis report
    // (per-block liveness, lint, prune-eligibility counts).
    if (env::GetWorkload(args[0]).ok()) {
      auto analysis = static_cache_.Get(args[0]);
      if (!analysis.ok()) return analysis.status();
      return analysis.value()->Report();
    }
    return report.status();
  }
  std::string out = report.value().ToString();
  auto by_group = core::AnalyzeByLocationGroup(*store_, args[0]);
  if (by_group.ok() && by_group.value().size() > 1) {
    out += "by fault-location group:\n";
    for (const auto& [group, sub] : by_group.value()) {
      out += util::Format(
          "  %-14s detected %3d  escaped %3d  latent %3d  overwritten %3d\n",
          group.c_str(), sub.Count(core::Outcome::kDetected),
          sub.Count(core::Outcome::kEscaped), sub.Count(core::Outcome::kLatent),
          sub.Count(core::Outcome::kOverwritten));
    }
  }
  return out;
}

util::Result<std::string> Shell::CmdReport(
    const std::vector<std::string>& args) const {
  if (args.size() != 2) return util::InvalidArgument("report <campaign> <path>");
  auto text = CmdAnalyze({args[0]});
  if (!text.ok()) return text.status();
  std::FILE* file = std::fopen(args[1].c_str(), "w");
  if (file == nullptr) return util::IoError("cannot open " + args[1]);
  std::fputs(text.value().c_str(), file);
  std::fclose(file);
  return "wrote analysis of " + args[0] + " to " + args[1] + "\n";
}

util::Result<std::string> Shell::CmdRerunDetail(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return util::InvalidArgument("rerun-detail <experiment>");
  auto row = store_->GetExperiment(args[0]);
  if (!row.ok()) return row.status();
  auto target = FindTargetFor(row.value().campaign_name);
  if (!target.ok()) return target.status();
  GOOFI_RETURN_IF_ERROR(target.value().algorithms->RerunDetailed(args[0]));
  return "detail re-run logged as " + args[0] + "/detail\n";
}

util::Result<std::string> Shell::CmdPropagation(
    const std::vector<std::string>& args) const {
  if (args.size() != 1) return util::InvalidArgument("propagation <experiment>");
  auto report = core::AnalyzeErrorPropagation(*store_, args[0]);
  if (!report.ok()) return report.status();
  return report.value().ToString();
}

util::Result<std::string> Shell::CmdSql(const std::string& rest) {
  // Routed through the store's prepared-statement cache: scripted analysis
  // loops repeat the same statements, so they parse and plan only once.
  auto result = store_->statement_cache().Execute(*db_, rest);
  if (!result.ok()) return result.status();
  if (result.value().columns.empty()) {
    return util::Format("ok, %zu rows affected\n", result.value().affected);
  }
  return result.value().ToString();
}

util::Result<std::string> Shell::CmdExplain(const std::string& rest) {
  return db::ExplainSql(*db_, rest);
}

util::Result<std::string> Shell::CmdSave(
    const std::vector<std::string>& args) const {
  if (args.size() != 1) return util::InvalidArgument("save <path>");
  GOOFI_RETURN_IF_ERROR(db_->Save(args[0]));
  return "saved database to " + args[0] + "\n";
}

util::Result<std::string> Shell::CmdLoad(const std::vector<std::string>& args) {
  if (args.size() != 1) return util::InvalidArgument("load <path>");
  std::string note;
  if (archive_ != nullptr) {
    // Load replaces the database wholesale, which would leave the archive
    // observing a database it never snapshotted. Commit and close it first.
    store_->AttachArchive(nullptr);
    GOOFI_RETURN_IF_ERROR(archive_->Close());
    archive_.reset();
    note = " (open archive closed)";
  }
  GOOFI_RETURN_IF_ERROR(db_->Load(args[0]));
  // Legacy text archives store rows only; re-create any missing secondary
  // indexes. Binary snapshots persist index definitions, so this is a no-op
  // for them.
  GOOFI_RETURN_IF_ERROR(store_->EnsureSchema());
  return "loaded database from " + args[0] + note + "\n";
}

util::Result<std::string> Shell::CmdArchive(const std::vector<std::string>& args) {
  if (args.empty()) {
    return util::InvalidArgument("archive open|checkpoint|status|close");
  }
  if (args[0] == "open") {
    if (args.size() != 2) return util::InvalidArgument("archive open <path>");
    if (archive_ != nullptr) {
      store_->AttachArchive(nullptr);
      GOOFI_RETURN_IF_ERROR(archive_->Close());
      archive_.reset();
    }
    auto opened = db::Archive::Open(db_, args[1]);
    if (!opened.ok()) return opened.status();
    archive_ = std::move(opened).value();
    // An existing archive replaced the database contents. Re-create any
    // secondary indexes a legacy or pre-index snapshot lacks — with the
    // archive already observing, the definitions land in the WAL too.
    const auto ensured = store_->EnsureSchema();
    if (!ensured.ok()) {
      store_->AttachArchive(nullptr);
      (void)archive_->Close();
      archive_.reset();
      return ensured;
    }
    store_->AttachArchive(archive_.get());
    const db::ArchiveStats s = archive_->stats();
    std::string out = util::Format(
        "opened archive %s (epoch %llu, %llu WAL records replayed)\n",
        args[1].c_str(), static_cast<unsigned long long>(s.epoch),
        static_cast<unsigned long long>(s.wal_records_replayed));
    if (s.recovered_torn_tail) {
      out += util::Format("truncated torn WAL tail (%llu bytes)\n",
                          static_cast<unsigned long long>(s.wal_bytes_truncated));
    }
    if (s.stale_wal_discarded) out += "discarded stale WAL\n";
    if (s.loaded_legacy_text) out += "converted legacy text archive\n";
    return out;
  }
  if (archive_ == nullptr) {
    return util::FailedPrecondition("no archive open (archive open <path>)");
  }
  if (args[0] == "checkpoint") {
    GOOFI_RETURN_IF_ERROR(archive_->Checkpoint());
    const db::ArchiveStats s = archive_->stats();
    return util::Format(
        "checkpointed archive (epoch %llu, snapshot %llu bytes)\n",
        static_cast<unsigned long long>(s.epoch),
        static_cast<unsigned long long>(s.snapshot_bytes));
  }
  if (args[0] == "status") {
    // `stats` prints the archive block whenever one is open; reuse it.
    return CmdStats();
  }
  if (args[0] == "close") {
    store_->AttachArchive(nullptr);
    GOOFI_RETURN_IF_ERROR(archive_->Close());
    const std::string path = archive_->path();
    archive_.reset();
    return "closed archive " + path + "\n";
  }
  return util::InvalidArgument("unknown archive subcommand: " + args[0]);
}

util::Result<std::string> Shell::Execute(const std::string& line) {
  const std::string_view trimmed = util::Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return std::string();
  const std::vector<std::string> words = util::SplitWhitespace(trimmed);
  const std::string& command = words[0];
  const std::vector<std::string> args(words.begin() + 1, words.end());

  if (command == "help") return CmdHelp();
  if (command == "list") return CmdList(args);
  if (command == "target") return CmdTarget(args);
  if (command == "campaign") return CmdCampaign(args);
  if (command == "run") return CmdRun(args);
  if (command == "run-parallel") return CmdRunParallel(args);
  if (command == "run-warm") return CmdRunWarm(args);
  if (command == "run-pruned") return CmdRunPruned(args);
  if (command == "run-dedup") return CmdRunDedup(args);
  if (command == "run-static") return CmdRunStatic(args);
  if (command == "stats") return CmdStats();
  if (command == "analyze") return CmdAnalyze(args);
  if (command == "report") return CmdReport(args);
  if (command == "rerun-detail") return CmdRerunDetail(args);
  if (command == "propagation") return CmdPropagation(args);
  if (command == "sql") {
    const size_t pos = line.find("sql");
    return CmdSql(line.substr(pos + 3));
  }
  if (command == "explain") {
    const size_t pos = line.find("explain");
    return CmdExplain(line.substr(pos + 7));
  }
  if (command == "save") return CmdSave(args);
  if (command == "load") return CmdLoad(args);
  if (command == "archive") return CmdArchive(args);
  if (command == "echo") {
    return util::Join(args, " ") + "\n";
  }
  return util::InvalidArgument("unknown command: " + command + " (try help)");
}

util::Status Shell::ExecuteScript(const std::string& script,
                                  std::string* transcript) {
  for (const std::string& line : util::Split(script, '\n')) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (transcript != nullptr) {
      *transcript += "goofi> " + std::string(trimmed) + "\n";
    }
    auto result = Execute(line);
    if (!result.ok()) {
      if (transcript != nullptr) {
        *transcript += "error: " + result.status().ToString() + "\n";
      }
      return result.status();
    }
    if (transcript != nullptr) *transcript += result.value();
  }
  return util::Status::Ok();
}

}  // namespace goofi::tool
