// The GOOFI command shell: the tool's user-facing layer.
//
// The original GOOFI drives everything from a Swing GUI (paper Figs. 5-7:
// target configuration, campaign definition, progress window). This module
// is the equivalent front end as a scriptable command interpreter — every
// GUI workflow maps to a command:
//
//   Fig. 5 (configure target)   ->  `target describe`, `list chains`
//   Fig. 6 (define campaign)    ->  `campaign set`, `campaign show/merge`
//   Fig. 7 (progress window)    ->  `run` with periodic progress lines
//   §3.4  (analysis scripts)    ->  `analyze`, `sql`, `propagation`
//
// Commands are line-oriented; see `help` for the full list. The shell is
// deliberately free of I/O: Execute() returns the output text, so the same
// code drives the interactive binary, scripts and the test suite.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/algorithms.hpp"
#include "core/campaign_store.hpp"
#include "core/parallel_runner.hpp"
#include "core/preinjection.hpp"
#include "core/static_analysis.hpp"
#include "db/archive.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

namespace goofi::tool {

class Shell {
 public:
  /// `db` and `store` must outlive the shell.
  Shell(db::Database* db, core::CampaignStore* store);

  /// Registers a target system under `name`. The algorithms object (one per
  /// TargetSystemInterface) must outlive the shell. `card` may be null for
  /// targets without scan-chain access. `factory` (optional) enables
  /// `run-parallel` for campaigns on this target by building worker-owned
  /// target stacks (see core::MakeSimThorFactory). `analyzer_config` is the
  /// CPU configuration `run-dedup` rebuilds fault-free access timelines with;
  /// it must match the configuration the factory's targets simulate.
  void AddTarget(const std::string& name,
                 core::FaultInjectionAlgorithms* algorithms,
                 const testcard::TestCard* card,
                 core::ParallelCampaignRunner::TargetFactory factory = nullptr,
                 cpu::CpuConfig analyzer_config = {});

  /// Executes one command line; returns its printable output.
  util::Result<std::string> Execute(const std::string& line);

  /// Executes a whole script (one command per line; '#' comments and blank
  /// lines skipped). Stops at the first failing command and returns its
  /// error; `transcript` accumulates "goofi> cmd" + output for all commands
  /// run so far.
  util::Status ExecuteScript(const std::string& script, std::string* transcript);

 private:
  struct Target {
    core::FaultInjectionAlgorithms* algorithms = nullptr;
    const testcard::TestCard* card = nullptr;
    core::ParallelCampaignRunner::TargetFactory factory;
    cpu::CpuConfig config;  ///< analyzer configuration for run-dedup
  };

  util::Result<std::string> CmdHelp() const;
  util::Result<std::string> CmdList(const std::vector<std::string>& args) const;
  util::Result<std::string> CmdTarget(const std::vector<std::string>& args);
  util::Result<std::string> CmdCampaign(const std::vector<std::string>& args);
  util::Result<std::string> CmdRun(const std::vector<std::string>& args);
  /// `run-parallel <campaign> [workers]`: the fault-injection phase sharded
  /// across worker-owned target stacks with deterministic, ordered commits.
  util::Result<std::string> CmdRunParallel(const std::vector<std::string>& args);
  /// `run-warm <campaign> [workers] [interval]`: parallel run with checkpoint
  /// fast-forward forced on — one golden run builds the snapshot cache, each
  /// experiment warm-starts from the nearest checkpoint before its injection
  /// time. Byte-identical database to `run`/`run-parallel`.
  util::Result<std::string> CmdRunWarm(const std::vector<std::string>& args);
  /// `run-pruned <campaign> [workers] [interval]`: run-warm plus golden-trace
  /// convergence pruning — experiments whose post-injection state rejoins the
  /// golden trajectory at a checkpoint boundary terminate early, with the
  /// remaining rows synthesized. Byte-identical database to `run`.
  util::Result<std::string> CmdRunPruned(const std::vector<std::string>& args);
  /// `run-dedup <campaign> [workers]`: run-pruned plus fault-list equivalence
  /// classing — experiments whose transient flip provably lands in the same
  /// access window execute once, with class members synthesized from the
  /// representative's rows. Byte-identical database to `run`. Access
  /// timelines are memoized across campaigns in `liveness_cache_`.
  util::Result<std::string> CmdRunDedup(const std::vector<std::string>& args);
  /// `run-static <campaign> [workers]`: run-pruned plus equivalence classing
  /// driven by the *static* workload analysis alone — no fault-free pre-run
  /// is executed. Flips into statically never-accessed registers and
  /// never-read memory words collapse into no-effect classes whose members
  /// are synthesized from one representative. Byte-identical database to
  /// `run`. Analyses are memoized across campaigns in `static_cache_`.
  util::Result<std::string> CmdRunStatic(const std::vector<std::string>& args);
  /// `stats`: counters of the most recent run command, distinguishing
  /// experiments never injected (liveness-dead) from experiments injected but
  /// converged (pruned).
  util::Result<std::string> CmdStats() const;
  /// `analyze <campaign|workload>`: for a campaign, the §3.4 classification
  /// report; for a workload name, the static-analysis report (per-block
  /// liveness, unreachable-code and write-never-read lint, prune-eligibility
  /// counts). Campaigns win name collisions.
  util::Result<std::string> CmdAnalyze(const std::vector<std::string>& args) const;
  /// `report <campaign> <path>`: writes the analyze output to a file — the
  /// paper's "where to store the results" menu (§3.4).
  util::Result<std::string> CmdReport(const std::vector<std::string>& args) const;
  util::Result<std::string> CmdRerunDetail(const std::vector<std::string>& args);
  util::Result<std::string> CmdPropagation(
      const std::vector<std::string>& args) const;
  util::Result<std::string> CmdSql(const std::string& rest);
  /// `explain <select>`: prints the chosen access path per table (index
  /// probes vs scans) without executing the query.
  util::Result<std::string> CmdExplain(const std::string& rest);
  util::Result<std::string> CmdSave(const std::vector<std::string>& args) const;
  util::Result<std::string> CmdLoad(const std::vector<std::string>& args);
  /// `archive open|checkpoint|status|close`: durable write-ahead-logged
  /// persistence. While an archive is open every committed experiment batch
  /// appends a group-committed WAL record, so a killed run resumes from the
  /// last commit instead of the last explicit `save`.
  util::Result<std::string> CmdArchive(const std::vector<std::string>& args);

  /// Applies one key=value assignment to a campaign.
  util::Status ApplyCampaignField(core::CampaignData* campaign,
                                  const std::string& key,
                                  const std::string& value) const;

  util::Result<Target> FindTargetFor(const std::string& campaign_name) const;

  /// Shared body of run-warm / run-pruned (identical grammar, one flag).
  util::Result<std::string> RunWarmOrPruned(const std::vector<std::string>& args,
                                            bool pruned);

  /// Snapshot of the most recent run command, reported by `stats`.
  struct LastRun {
    bool valid = false;
    std::string campaign;
    std::string mode;  ///< the command that produced it
    core::FaultInjectionAlgorithms::Stats stats;
    int warm_starts = 0;
    core::ConvergenceStats prune;
    core::EquivalenceStats dedup;
    /// COW memory residency/counters over the run's targets (serial: the
    /// registered target; parallel: every worker, golden images deduped).
    cpu::MemoryUsageAggregator::Totals memory;
  };

  db::Database* db_;
  core::CampaignStore* store_;
  std::map<std::string, Target> targets_;
  /// Open campaign archive, if any (`archive open`). Owns the WAL attachment;
  /// destroyed (committing pending records) when the shell goes away or the
  /// archive is closed / replaced by `load`.
  std::unique_ptr<db::Archive> archive_;
  LastRun last_run_;
  /// Fault-free access timelines, memoized across PrepareCampaign calls for
  /// the same (workload, configuration) within a shell session.
  core::LivenessCache liveness_cache_;
  /// Static workload analyses, memoized per workload name (`analyze` and
  /// `run-static`). Mutable: `analyze` is logically const but may populate
  /// the cache.
  mutable core::StaticAnalysisCache static_cache_;
};

}  // namespace goofi::tool
