#include "cpu/state.hpp"

#include <algorithm>

namespace goofi::cpu {

uint32_t StateRegistry::TotalBits() const {
  uint32_t total = 0;
  for (const StateElement& element : elements_) total += element.bits;
  return total;
}

int StateRegistry::Find(const std::string& name) const {
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> StateRegistry::Groups() const {
  std::vector<std::string> groups;
  for (const StateElement& element : elements_) {
    if (std::find(groups.begin(), groups.end(), element.group) == groups.end()) {
      groups.push_back(element.group);
    }
  }
  return groups;
}

}  // namespace goofi::cpu
