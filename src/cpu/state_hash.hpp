// Incremental state hashing for golden-trace convergence pruning.
//
// A StateHasher folds execution-visible target state into a 64-bit FNV-1a
// digest. Components append themselves field by field (Cpu, ParityCache,
// Memory, test card, host bookkeeping); two runs whose appended byte streams
// are identical hash identically.
//
// Because a 64-bit hash can collide, the hasher can additionally *capture*
// the exact byte stream it digested (the verify blob). The blob's scope is
// identical to the hash's scope by construction — every Append path feeds
// both — so comparing blobs is a full-state equality check over exactly the
// hashed state. The convergence engine hashes cheaply at every checkpoint
// boundary and verifies the blob before ever acting on a hash match, which
// makes a silent collision impossible rather than merely improbable.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace goofi::cpu {

class StateHasher {
 public:
  /// `capture` additionally records every digested byte into blob().
  explicit StateHasher(bool capture = false) : capture_(capture) {}

  void Bytes(const void* data, size_t size);

  void U8(uint8_t value) { Bytes(&value, sizeof(value)); }
  void U32(uint32_t value) { Bytes(&value, sizeof(value)); }
  void U64(uint64_t value) { Bytes(&value, sizeof(value)); }
  void I32(int32_t value) { Bytes(&value, sizeof(value)); }
  void Bool(bool value) { U8(value ? 1 : 0); }

  /// Doubles are hashed by bit pattern: checkpointed plant state is copied,
  /// never recomputed, so bit-exact equality is the right notion.
  void Double(double value) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    U64(bits);
  }

  /// Length-prefixed, so adjacent strings cannot alias each other.
  void Str(const std::string& value) {
    U64(value.size());
    Bytes(value.data(), value.size());
  }

  /// Bulk word append (dirty-page contents).
  void Words(const uint32_t* data, size_t count) {
    Bytes(data, count * sizeof(uint32_t));
  }

  uint64_t hash() const { return hash_; }

  /// The digested byte stream; empty unless constructed with capture=true.
  const std::vector<uint8_t>& blob() const { return blob_; }
  std::vector<uint8_t> TakeBlob() { return std::move(blob_); }

 private:
  static constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

  uint64_t hash_ = kFnvOffset;
  bool capture_;
  std::vector<uint8_t> blob_;
};

}  // namespace goofi::cpu
