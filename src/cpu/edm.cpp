#include "cpu/edm.hpp"

namespace goofi::cpu {

const char* EdmTypeName(EdmType type) {
  switch (type) {
    case EdmType::kNone:
      return "none";
    case EdmType::kIllegalOpcode:
      return "illegal_opcode";
    case EdmType::kMisalignedAccess:
      return "misaligned_access";
    case EdmType::kOutOfRangeAccess:
      return "out_of_range_access";
    case EdmType::kMemoryProtection:
      return "memory_protection";
    case EdmType::kCacheParityInstr:
      return "cache_parity_instr";
    case EdmType::kCacheParityData:
      return "cache_parity_data";
    case EdmType::kArithmeticOverflow:
      return "arithmetic_overflow";
    case EdmType::kWatchdogTimeout:
      return "watchdog_timeout";
    case EdmType::kControlFlowError:
      return "control_flow_error";
    case EdmType::kStackOverflow:
      return "stack_overflow";
    case EdmType::kSoftwareAssertion:
      return "software_assertion";
  }
  return "?";
}

EdmType EdmTypeFromName(const std::string& name) {
  static constexpr EdmType kAll[] = {
      EdmType::kNone,
      EdmType::kIllegalOpcode,
      EdmType::kMisalignedAccess,
      EdmType::kOutOfRangeAccess,
      EdmType::kMemoryProtection,
      EdmType::kCacheParityInstr,
      EdmType::kCacheParityData,
      EdmType::kArithmeticOverflow,
      EdmType::kWatchdogTimeout,
      EdmType::kControlFlowError,
      EdmType::kStackOverflow,
      EdmType::kSoftwareAssertion,
  };
  for (EdmType type : kAll) {
    if (name == EdmTypeName(type)) return type;
  }
  return EdmType::kNone;
}

bool EdmConfig::Enabled(EdmType type) const {
  switch (type) {
    case EdmType::kNone:
      return false;
    case EdmType::kIllegalOpcode:
      return illegal_opcode;
    case EdmType::kMisalignedAccess:
      return misaligned_access;
    case EdmType::kOutOfRangeAccess:
      return out_of_range_access;
    case EdmType::kMemoryProtection:
      return memory_protection;
    case EdmType::kCacheParityInstr:
    case EdmType::kCacheParityData:
      return cache_parity;
    case EdmType::kArithmeticOverflow:
      return arithmetic_overflow;
    case EdmType::kWatchdogTimeout:
      return watchdog;
    case EdmType::kControlFlowError:
      return control_flow;
    case EdmType::kStackOverflow:
      return stack_overflow;
    case EdmType::kSoftwareAssertion:
      return software_assertion;
  }
  return false;
}

}  // namespace goofi::cpu
