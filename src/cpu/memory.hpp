// Target main memory with protection ranges.
//
// Word-addressable backing store. The text segment is marked read-only once
// the workload is downloaded (pre-runtime SWIFI writes it *before* marking),
// so stray stores caused by injected faults trip the memory-protection EDM.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/edm.hpp"
#include "util/status.hpp"

namespace goofi::cpu {

/// Outcome of a memory access: either success or the EDM that should fire.
struct MemAccess {
  EdmType violation = EdmType::kNone;  ///< kNone == access succeeded
  uint32_t value = 0;                  ///< loaded word (reads)

  bool ok() const { return violation == EdmType::kNone; }
};

class Memory {
 public:
  /// `size_bytes` is rounded up to a whole word count.
  explicit Memory(uint32_t size_bytes);

  uint32_t size_bytes() const { return static_cast<uint32_t>(words_.size()) * 4; }

  /// Checked word read at a byte address (alignment + range).
  MemAccess Read(uint32_t address) const;

  /// Checked word write (alignment + range + protection).
  MemAccess Write(uint32_t address, uint32_t value);

  /// Unchecked accessors for the host side (workload download, test-card
  /// readMemory/writeMemory, pre-runtime SWIFI mutation). These bypass
  /// protection — the host talks to memory through the test logic, not
  /// through the CPU's load/store path. Out-of-range still fails.
  util::Status HostWrite(uint32_t address, uint32_t value);
  util::Result<uint32_t> HostRead(uint32_t address) const;

  /// Marks [start, start+length) read-only for CPU stores.
  void Protect(uint32_t start, uint32_t length);
  void ClearProtection();
  bool IsProtected(uint32_t address) const;

  /// Zeroes all contents, keeps protection ranges cleared.
  void Reset();

 private:
  struct Range {
    uint32_t start;
    uint32_t end;  // exclusive
  };

  std::vector<uint32_t> words_;
  std::vector<Range> protected_ranges_;
};

}  // namespace goofi::cpu
