// Target main memory with protection ranges — copy-on-write paged storage.
//
// Word-addressable backing store. The text segment is marked read-only once
// the workload is downloaded (pre-runtime SWIFI writes it *before* marking),
// so stray stores caused by injected faults trip the memory-protection EDM.
//
// Layout: the memory is a page table of raw word pointers (1 KiB pages).
// Each page is in one of three states:
//
//   zero    — points at the process-wide all-zeros page (post-Reset state);
//   golden  — points into the immutable, refcounted GoldenImage declared by
//             MarkCleanBaseline (the downloaded workload image);
//   private — points at a page owned by this Memory, materialized by the
//             write barrier on the first CPU/host store to the page.
//
// Shared pages are never written: every mutation path funnels through the
// ownership check in Write/HostWrite/HostWriteRange, which copies the page
// before the store. This makes the per-experiment reset cycle O(#dirty
// pages) instead of O(memory size):
//
//   Reset()          — repoint every page at the zero page (no memset);
//   MarkCleanBaseline— intern the contents as a GoldenImage and repoint;
//   RestoreDelta     — repoint non-golden pages at the golden image, then
//                      materialize only the delta's pages;
//   CaptureDelta /   — enumerate privately-owned pages directly; golden
//   HashCanonicalState pages are skipped by pointer identity and zero pages
//                      by the image's memoized per-page zero classification.
//
// A GoldenRegistry (shared through CpuConfig by the parallel runner's
// target factories) interns baseline images by content, so N worker targets
// running the same workload share one physical golden image instead of
// carrying a full copy each. Retired private pages are recycled through a
// per-Memory pool, keeping steady-state experiment loops allocation-free.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cpu/edm.hpp"
#include "util/status.hpp"

namespace goofi::cpu {

class StateHasher;

/// Outcome of a memory access: either success or the EDM that should fire.
struct MemAccess {
  EdmType violation = EdmType::kNone;  ///< kNone == access succeeded
  uint32_t value = 0;                  ///< loaded word (reads)

  bool ok() const { return violation == EdmType::kNone; }
};

/// Immutable snapshot of a full memory image, shared read-only across every
/// Memory whose baseline has the same contents. Built once per workload by
/// MarkCleanBaseline; page pointers handed to the page tables of all sharing
/// Memories. Never mutated after construction.
class GoldenImage {
 public:
  /// `words` must be padded to a whole number of pages (Memory pads).
  explicit GoldenImage(std::vector<uint32_t> words);

  const uint32_t* page(size_t page_index) const;
  /// Memoized per-page classification: true when the page is all zeros —
  /// lets zero-state pages skip content compares against the baseline.
  bool page_zero(size_t page_index) const { return zero_[page_index] != 0; }
  size_t num_pages() const { return zero_.size(); }
  size_t word_count() const { return words_.size(); }
  /// Content digest, for registry interning (memcmp-verified on use).
  uint64_t content_hash() const { return hash_; }
  size_t MemoryBytes() const {
    return words_.capacity() * sizeof(uint32_t) + zero_.capacity();
  }

 private:
  std::vector<uint32_t> words_;
  std::vector<uint8_t> zero_;  ///< per-page all-zeros flag
  uint64_t hash_ = 0;
};

/// Thread-safe intern pool for golden images: baselines with identical
/// contents resolve to one shared GoldenImage. The parallel runner's target
/// factories install one registry per factory (CpuConfig::golden_registry),
/// so all worker targets of a campaign share a single physical workload
/// image. Entries are held weakly — an image dies with its last Memory.
class GoldenRegistry {
 public:
  std::shared_ptr<const GoldenImage> Intern(std::vector<uint32_t> words);

  struct Stats {
    uint64_t images_interned = 0;  ///< distinct images created
    uint64_t shared_hits = 0;      ///< Intern calls resolved to an existing image
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<uint64_t, std::weak_ptr<const GoldenImage>>> images_;
  Stats stats_;
};

class Memory {
 public:
  /// Page granularity: 256 words == 1 KiB per page.
  static constexpr uint32_t kPageWords = 256;
  static constexpr uint32_t kPageShift = 8;  ///< log2(kPageWords)
  static constexpr uint32_t kPageMask = kPageWords - 1;

  /// Memory contents relative to the baseline image: only pages differing
  /// from the baseline are stored, so an idle checkpoint costs a few KiB
  /// instead of a full copy.
  struct Delta {
    struct Page {
      uint32_t index;               ///< page number (word index / kPageWords)
      std::vector<uint32_t> words;  ///< full page contents
    };
    std::vector<Page> pages;

    struct Range {
      uint32_t start;
      uint32_t end;  // exclusive
    };
    std::vector<Range> protected_ranges;

    /// Heap footprint for checkpoint-store accounting: counts the actual
    /// capacity of every heap block reachable from the delta (page vector,
    /// per-page word buffers, range vector), not just the nominal payload.
    size_t MemoryBytes() const {
      size_t bytes = pages.capacity() * sizeof(Page) +
                     protected_ranges.capacity() * sizeof(Range);
      for (const Page& page : pages) {
        bytes += page.words.capacity() * sizeof(uint32_t);
      }
      return bytes;
    }
  };

  /// Cumulative write-barrier / bulk-write activity since construction.
  struct Counters {
    uint64_t cow_faults = 0;       ///< private pages materialized by a store
    uint64_t pages_recycled = 0;   ///< private pages released back to the pool
    uint64_t golden_adoptions = 0; ///< bulk writes repointed at the golden page
    uint64_t bulk_words_skipped = 0; ///< HostWriteRange words already equal
  };

  /// Instantaneous page-table occupancy and footprint.
  struct Residency {
    size_t total_pages = 0;
    size_t golden_pages = 0;   ///< shared with the golden image
    size_t zero_pages = 0;     ///< shared all-zeros page
    size_t private_pages = 0;  ///< privately owned (copied on write)
    size_t pool_pages = 0;     ///< recycled private pages awaiting reuse
    size_t resident_bytes = 0; ///< table + state + private + pooled pages
    size_t golden_image_bytes = 0;  ///< shared image footprint (whole image)
    long golden_image_refs = 0;     ///< Memories sharing the golden image
  };

  /// `size_bytes` is rounded up to a whole word count. `registry`, when
  /// non-null, interns MarkCleanBaseline images for cross-target sharing.
  explicit Memory(uint32_t size_bytes,
                  std::shared_ptr<GoldenRegistry> registry = nullptr);

  uint32_t size_bytes() const { return size_bytes_; }

  /// Checked word read at a byte address (alignment + range).
  MemAccess Read(uint32_t address) const {
    MemAccess out;
    if (address % 4 != 0) {
      out.violation = EdmType::kMisalignedAccess;
      return out;
    }
    if (address >= size_bytes_) {
      out.violation = EdmType::kOutOfRangeAccess;
      return out;
    }
    const uint32_t w = address / 4;
    out.value = pages_[w >> kPageShift][w & kPageMask];
    return out;
  }

  /// Checked word write (alignment + range + protection). The COW barrier is
  /// the single ownership check below — the only cost the CPU store path
  /// pays over a flat array.
  MemAccess Write(uint32_t address, uint32_t value) {
    MemAccess out;
    if (address % 4 != 0) {
      out.violation = EdmType::kMisalignedAccess;
      return out;
    }
    if (address >= size_bytes_) {
      out.violation = EdmType::kOutOfRangeAccess;
      return out;
    }
    if (IsProtected(address)) {
      out.violation = EdmType::kMemoryProtection;
      return out;
    }
    const uint32_t w = address / 4;
    const uint32_t page = w >> kPageShift;
    if (state_[page] != kPrivate) MaterializePage(page);
    pages_[page][w & kPageMask] = value;
    return out;
  }

  /// Unchecked accessors for the host side (workload download, test-card
  /// readMemory/writeMemory, pre-runtime SWIFI mutation). These bypass
  /// protection — the host talks to memory through the test logic, not
  /// through the CPU's load/store path. Out-of-range still fails.
  /// Stores of the already-present value are dropped before the write
  /// barrier, so re-downloads over a shared page keep it shared.
  util::Status HostWrite(uint32_t address, uint32_t value) {
    if (address % 4 != 0) return util::InvalidArgument("misaligned host write");
    if (address >= size_bytes_) {
      return util::OutOfRange("host write out of range");
    }
    const uint32_t w = address / 4;
    const uint32_t page = w >> kPageShift;
    if (pages_[page][w & kPageMask] == value) return util::Status::Ok();
    if (state_[page] != kPrivate) MaterializePage(page);
    pages_[page][w & kPageMask] = value;
    return util::Status::Ok();
  }
  util::Result<uint32_t> HostRead(uint32_t address) const {
    if (address % 4 != 0) return util::InvalidArgument("misaligned host read");
    if (address >= size_bytes_) {
      return util::OutOfRange("host read out of range");
    }
    const uint32_t w = address / 4;
    return pages_[w >> kPageShift][w & kPageMask];
  }

  /// Bulk host write of `count` words starting at byte address `address`
  /// (the workload-download path). Validates alignment and range up front —
  /// on error nothing is written. Writes that leave a page equal to the
  /// golden image adopt its page by repointing (zero copies, zero
  /// allocations — this covers sub-page workload images re-downloaded after
  /// a Reset, not just full-page runs), runs equal to the current contents
  /// are skipped, everything else goes through the ordinary write barrier
  /// one page chunk at a time.
  util::Status HostWriteRange(uint32_t address, const uint32_t* words,
                              size_t count);

  /// Marks [start, start+length) read-only for CPU stores.
  void Protect(uint32_t start, uint32_t length);
  void ClearProtection();
  bool IsProtected(uint32_t address) const {
    for (const Range& range : protected_ranges_) {
      if (address >= range.start && address < range.end) return true;
    }
    return false;
  }

  /// Zeroes all contents, keeps protection ranges cleared. O(#pages) table
  /// repoint at the shared zero page; private pages return to the pool.
  void Reset();

  /// Declares the current contents as the checkpoint baseline (call after
  /// the workload image is downloaded): interns the image (through the
  /// registry when one is installed) and repoints the whole table at it.
  void MarkCleanBaseline();

  /// Pages currently differing from the baseline, plus protection ranges.
  /// Before MarkCleanBaseline() the delta carries protection ranges only.
  Delta CaptureDelta() const;

  /// Restores contents to baseline + `delta`: non-golden pages repoint at
  /// the golden image, then the delta's pages materialize on top. The delta
  /// must have been captured from this memory size and baseline.
  void RestoreDelta(const Delta& delta);

  /// Hashes the canonical memory state: every page that differs from the
  /// baseline (index + full contents, in page order) plus the protection
  /// ranges. "Canonical" means the digest is a function of the *contents*
  /// only — golden pages are skipped by pointer identity, zero pages by the
  /// image's memoized per-page zero flags, and private pages whose words
  /// happen to equal the baseline by content compare — so a cold run and a
  /// checkpoint-restored run hash identically when their memories are equal.
  ///
  /// With `scrub_clean_pages`, private pages verified equal to the baseline
  /// are released back to the golden image (repoint + recycle). This keeps
  /// repeated boundary hashes proportional to the truly-dirty working set
  /// and shrinks residency. Safe because "golden" means exactly "equals
  /// baseline", the invariant CaptureDelta/RestoreDelta rely on. Before
  /// MarkCleanBaseline() only the protection ranges are digested.
  void HashCanonicalState(StateHasher* hasher, bool scrub_clean_pages);

  // --- observability -------------------------------------------------------

  const Counters& counters() const { return counters_; }
  Residency residency() const;
  /// The interned baseline image; null before MarkCleanBaseline.
  const std::shared_ptr<const GoldenImage>& golden() const { return golden_; }

 private:
  // Page states. kPrivate is the only state the write barrier lets through.
  static constexpr uint8_t kZero = 0;
  static constexpr uint8_t kGolden = 1;
  static constexpr uint8_t kPrivate = 2;

  struct Range {
    uint32_t start;
    uint32_t end;  // exclusive
  };

  /// Valid (in-range) words of `page` — only the last page can be partial.
  uint32_t PageWordCount(uint32_t page) const {
    const size_t begin = static_cast<size_t>(page) * kPageWords;
    const size_t remain = word_count_ - begin;
    return remain < kPageWords ? static_cast<uint32_t>(remain) : kPageWords;
  }

  /// COW fault: gives `page` a private copy of its current contents.
  void MaterializePage(uint32_t page);
  /// Releases a private page back to the pool and repoints at `target_ptr`.
  void ReleasePrivate(uint32_t page, const uint32_t* target_ptr,
                      uint8_t target_state);
  /// True when the page's current contents equal the golden page.
  bool PageEqualsGolden(uint32_t page) const;

  uint32_t size_bytes_ = 0;
  size_t word_count_ = 0;
  size_t num_pages_ = 0;
  std::vector<uint32_t*> pages_;  ///< read view; write-safe only when private
  std::vector<uint8_t> state_;    ///< kZero / kGolden / kPrivate per page
  std::vector<std::unique_ptr<uint32_t[]>> private_pages_;  ///< slot per page
  std::vector<std::unique_ptr<uint32_t[]>> pool_;  ///< recycled private pages
  std::shared_ptr<const GoldenImage> golden_;  ///< null until baseline set
  std::shared_ptr<GoldenRegistry> registry_;
  std::vector<Range> protected_ranges_;
  Counters counters_;
};

/// Aggregates per-Memory residency/counter stats across the targets of a
/// run, counting each distinct golden image once (the point of sharing).
class MemoryUsageAggregator {
 public:
  struct Totals {
    int targets = 0;
    uint64_t golden_pages = 0;
    uint64_t zero_pages = 0;
    uint64_t private_pages = 0;
    uint64_t pool_pages = 0;
    uint64_t cow_faults = 0;
    uint64_t golden_adoptions = 0;
    uint64_t pages_recycled = 0;
    uint64_t resident_bytes = 0;      ///< sum of per-target residency
    uint64_t golden_image_bytes = 0;  ///< distinct images, counted once
    int golden_images = 0;            ///< distinct images seen
  };

  void Add(const Memory& memory);
  const Totals& totals() const { return totals_; }

 private:
  Totals totals_;
  std::vector<const GoldenImage*> seen_images_;
};

}  // namespace goofi::cpu
