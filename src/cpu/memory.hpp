// Target main memory with protection ranges.
//
// Word-addressable backing store. The text segment is marked read-only once
// the workload is downloaded (pre-runtime SWIFI writes it *before* marking),
// so stray stores caused by injected faults trip the memory-protection EDM.
//
// Dirty-page tracking: checkpoints must not store full 1 MiB images, so the
// memory keeps a per-page dirty bitmap against a host-declared baseline (the
// downloaded workload image). A snapshot captures only the pages that differ
// from the baseline; restore reverts every page dirtied since to the baseline
// and re-applies the snapshot's deltas.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/edm.hpp"
#include "util/status.hpp"

namespace goofi::cpu {

class StateHasher;

/// Outcome of a memory access: either success or the EDM that should fire.
struct MemAccess {
  EdmType violation = EdmType::kNone;  ///< kNone == access succeeded
  uint32_t value = 0;                  ///< loaded word (reads)

  bool ok() const { return violation == EdmType::kNone; }
};

class Memory {
 public:
  /// Dirty-tracking granularity: 256 words == 1 KiB per page.
  static constexpr uint32_t kPageWords = 256;

  /// Memory contents relative to the baseline image: only dirty pages are
  /// stored, so an idle checkpoint costs a few KiB instead of a full copy.
  struct Delta {
    struct Page {
      uint32_t index;               ///< page number (word index / kPageWords)
      std::vector<uint32_t> words;  ///< full page contents
    };
    std::vector<Page> pages;

    struct Range {
      uint32_t start;
      uint32_t end;  // exclusive
    };
    std::vector<Range> protected_ranges;

    /// Approximate heap footprint, for checkpoint-store accounting.
    size_t MemoryBytes() const {
      size_t bytes = pages.size() * (sizeof(Page) + kPageWords * 4) +
                     protected_ranges.size() * sizeof(Range);
      return bytes;
    }
  };

  /// `size_bytes` is rounded up to a whole word count.
  explicit Memory(uint32_t size_bytes);

  uint32_t size_bytes() const { return static_cast<uint32_t>(words_.size()) * 4; }

  /// Checked word read at a byte address (alignment + range).
  MemAccess Read(uint32_t address) const;

  /// Checked word write (alignment + range + protection).
  MemAccess Write(uint32_t address, uint32_t value);

  /// Unchecked accessors for the host side (workload download, test-card
  /// readMemory/writeMemory, pre-runtime SWIFI mutation). These bypass
  /// protection — the host talks to memory through the test logic, not
  /// through the CPU's load/store path. Out-of-range still fails.
  util::Status HostWrite(uint32_t address, uint32_t value);
  util::Result<uint32_t> HostRead(uint32_t address) const;

  /// Marks [start, start+length) read-only for CPU stores.
  void Protect(uint32_t start, uint32_t length);
  void ClearProtection();
  bool IsProtected(uint32_t address) const;

  /// Zeroes all contents, keeps protection ranges cleared. Marks everything
  /// dirty relative to any previously declared baseline.
  void Reset();

  /// Declares the current contents as the checkpoint baseline (call after
  /// the workload image is downloaded). Clears the dirty bitmap.
  void MarkCleanBaseline();

  /// Pages currently differing from the baseline, plus protection ranges.
  Delta CaptureDelta() const;

  /// Restores contents to baseline + `delta`. Pages dirtied since the
  /// baseline but absent from the delta revert to their baseline words.
  /// Precondition: MarkCleanBaseline() was called and the delta was captured
  /// from this memory size.
  void RestoreDelta(const Delta& delta);

  /// Hashes the canonical memory state: every page that differs from the
  /// baseline (index + full contents, in page order) plus the protection
  /// ranges. "Canonical" means the digest is a function of the *contents*
  /// only — dirty pages whose words happen to equal the baseline are skipped,
  /// so a cold run (all pages dirty after Reset) and a checkpoint-restored
  /// run hash identically when their memories are equal.
  ///
  /// With `scrub_clean_pages`, pages verified equal to the baseline get their
  /// dirty bit cleared. This keeps repeated boundary hashes proportional to
  /// the truly-dirty working set instead of rescanning an all-dirty bitmap
  /// every time. Safe because "clean" means exactly "equals baseline", the
  /// invariant CaptureDelta/RestoreDelta rely on.
  /// Precondition: MarkCleanBaseline() was called.
  void HashCanonicalState(StateHasher* hasher, bool scrub_clean_pages);

 private:
  struct Range {
    uint32_t start;
    uint32_t end;  // exclusive
  };

  void MarkDirty(uint32_t word_index) {
    if (!dirty_.empty()) dirty_[word_index / kPageWords] = 1;
  }

  std::vector<uint32_t> words_;
  std::vector<Range> protected_ranges_;
  std::vector<uint32_t> baseline_;  ///< empty until MarkCleanBaseline
  std::vector<uint8_t> dirty_;      ///< per-page; empty until baseline set
};

}  // namespace goofi::cpu
