#include "cpu/memory.hpp"

#include <algorithm>
#include <cassert>

#include "cpu/state_hash.hpp"

namespace goofi::cpu {

Memory::Memory(uint32_t size_bytes) : words_((size_bytes + 3) / 4, 0) {}

MemAccess Memory::Read(uint32_t address) const {
  MemAccess out;
  if (address % 4 != 0) {
    out.violation = EdmType::kMisalignedAccess;
    return out;
  }
  if (address >= size_bytes()) {
    out.violation = EdmType::kOutOfRangeAccess;
    return out;
  }
  out.value = words_[address / 4];
  return out;
}

MemAccess Memory::Write(uint32_t address, uint32_t value) {
  MemAccess out;
  if (address % 4 != 0) {
    out.violation = EdmType::kMisalignedAccess;
    return out;
  }
  if (address >= size_bytes()) {
    out.violation = EdmType::kOutOfRangeAccess;
    return out;
  }
  if (IsProtected(address)) {
    out.violation = EdmType::kMemoryProtection;
    return out;
  }
  words_[address / 4] = value;
  MarkDirty(address / 4);
  return out;
}

util::Status Memory::HostWrite(uint32_t address, uint32_t value) {
  if (address % 4 != 0) return util::InvalidArgument("misaligned host write");
  if (address >= size_bytes()) return util::OutOfRange("host write out of range");
  words_[address / 4] = value;
  MarkDirty(address / 4);
  return util::Status::Ok();
}

util::Result<uint32_t> Memory::HostRead(uint32_t address) const {
  if (address % 4 != 0) return util::InvalidArgument("misaligned host read");
  if (address >= size_bytes()) return util::OutOfRange("host read out of range");
  return words_[address / 4];
}

void Memory::Protect(uint32_t start, uint32_t length) {
  protected_ranges_.push_back({start, start + length});
}

void Memory::ClearProtection() { protected_ranges_.clear(); }

bool Memory::IsProtected(uint32_t address) const {
  for (const Range& range : protected_ranges_) {
    if (address >= range.start && address < range.end) return true;
  }
  return false;
}

void Memory::Reset() {
  std::fill(words_.begin(), words_.end(), 0u);
  protected_ranges_.clear();
  // Every page now potentially differs from the baseline image.
  std::fill(dirty_.begin(), dirty_.end(), static_cast<uint8_t>(1));
}

void Memory::MarkCleanBaseline() {
  baseline_ = words_;
  dirty_.assign((words_.size() + kPageWords - 1) / kPageWords, 0);
}

Memory::Delta Memory::CaptureDelta() const {
  assert(!baseline_.empty() && "MarkCleanBaseline() must precede CaptureDelta");
  Delta delta;
  for (size_t page = 0; page < dirty_.size(); ++page) {
    if (!dirty_[page]) continue;
    const size_t begin = page * kPageWords;
    const size_t end = std::min(begin + kPageWords, words_.size());
    // Writes that re-stored the baseline value leave the page marked dirty;
    // skip pages that in fact still match so deltas stay tight.
    if (std::equal(words_.begin() + static_cast<ptrdiff_t>(begin),
                   words_.begin() + static_cast<ptrdiff_t>(end),
                   baseline_.begin() + static_cast<ptrdiff_t>(begin))) {
      continue;
    }
    Delta::Page out;
    out.index = static_cast<uint32_t>(page);
    out.words.assign(words_.begin() + static_cast<ptrdiff_t>(begin),
                     words_.begin() + static_cast<ptrdiff_t>(end));
    delta.pages.push_back(std::move(out));
  }
  delta.protected_ranges.reserve(protected_ranges_.size());
  for (const Range& range : protected_ranges_) {
    delta.protected_ranges.push_back({range.start, range.end});
  }
  return delta;
}

void Memory::RestoreDelta(const Delta& delta) {
  assert(!baseline_.empty() && "MarkCleanBaseline() must precede RestoreDelta");
  // Revert everything dirtied since the baseline, then lay the delta's pages
  // on top. Clean pages already equal the baseline by invariant.
  for (size_t page = 0; page < dirty_.size(); ++page) {
    if (!dirty_[page]) continue;
    const size_t begin = page * kPageWords;
    const size_t end = std::min(begin + kPageWords, words_.size());
    std::copy(baseline_.begin() + static_cast<ptrdiff_t>(begin),
              baseline_.begin() + static_cast<ptrdiff_t>(end),
              words_.begin() + static_cast<ptrdiff_t>(begin));
    dirty_[page] = 0;
  }
  for (const Delta::Page& page : delta.pages) {
    const size_t begin = static_cast<size_t>(page.index) * kPageWords;
    std::copy(page.words.begin(), page.words.end(),
              words_.begin() + static_cast<ptrdiff_t>(begin));
    dirty_[page.index] = 1;
  }
  protected_ranges_.clear();
  protected_ranges_.reserve(delta.protected_ranges.size());
  for (const Delta::Range& range : delta.protected_ranges) {
    protected_ranges_.push_back({range.start, range.end});
  }
}

void Memory::HashCanonicalState(StateHasher* hasher, bool scrub_clean_pages) {
  assert(!baseline_.empty() &&
         "MarkCleanBaseline() must precede HashCanonicalState");
  for (size_t page = 0; page < dirty_.size(); ++page) {
    if (!dirty_[page]) continue;
    const size_t begin = page * kPageWords;
    const size_t end = std::min(begin + kPageWords, words_.size());
    if (std::equal(words_.begin() + static_cast<ptrdiff_t>(begin),
                   words_.begin() + static_cast<ptrdiff_t>(end),
                   baseline_.begin() + static_cast<ptrdiff_t>(begin))) {
      if (scrub_clean_pages) dirty_[page] = 0;
      continue;
    }
    hasher->U32(static_cast<uint32_t>(page));
    hasher->Words(words_.data() + begin, end - begin);
  }
  hasher->U64(protected_ranges_.size());
  for (const Range& range : protected_ranges_) {
    hasher->U32(range.start);
    hasher->U32(range.end);
  }
}

}  // namespace goofi::cpu
