#include "cpu/memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "cpu/state_hash.hpp"

namespace goofi::cpu {

namespace {

// The process-wide shared zero page: every page table points here after
// Reset(). Never written — the write barrier materializes a private copy
// before any store lands.
alignas(64) uint32_t kZeroPage[Memory::kPageWords] = {};

uint64_t HashWords(const std::vector<uint32_t>& words) {
  // FNV-1a over the word stream; collisions are harmless (the registry
  // memcmp-verifies every candidate before sharing).
  uint64_t hash = 14695981039346656037ull;
  for (uint32_t word : words) {
    hash = (hash ^ word) * 1099511628211ull;
  }
  return hash;
}

}  // namespace

GoldenImage::GoldenImage(std::vector<uint32_t> words)
    : words_(std::move(words)) {
  assert(words_.size() % Memory::kPageWords == 0 &&
         "golden images are whole pages");
  const size_t pages = words_.size() / Memory::kPageWords;
  zero_.assign(pages, 0);
  for (size_t page = 0; page < pages; ++page) {
    const uint32_t* begin = words_.data() + page * Memory::kPageWords;
    zero_[page] = std::all_of(begin, begin + Memory::kPageWords,
                              [](uint32_t w) { return w == 0; })
                      ? 1
                      : 0;
  }
  hash_ = HashWords(words_);
}

const uint32_t* GoldenImage::page(size_t page_index) const {
  return words_.data() + page_index * Memory::kPageWords;
}

std::shared_ptr<const GoldenImage> GoldenRegistry::Intern(
    std::vector<uint32_t> words) {
  const uint64_t hash = HashWords(words);
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  std::shared_ptr<const GoldenImage> found;
  for (auto& entry : images_) {
    std::shared_ptr<const GoldenImage> image = entry.second.lock();
    if (image == nullptr) continue;  // expired; compacted below
    images_[live++] = {entry.first, entry.second};
    if (found == nullptr && entry.first == hash &&
        image->word_count() == words.size() &&
        std::memcmp(image->page(0), words.data(),
                    words.size() * sizeof(uint32_t)) == 0) {
      found = std::move(image);
    }
  }
  images_.resize(live);
  if (found != nullptr) {
    ++stats_.shared_hits;
    return found;
  }
  auto image = std::make_shared<const GoldenImage>(std::move(words));
  images_.emplace_back(hash, image);
  ++stats_.images_interned;
  return image;
}

GoldenRegistry::Stats GoldenRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Memory::Memory(uint32_t size_bytes, std::shared_ptr<GoldenRegistry> registry)
    : word_count_((size_bytes + 3) / 4), registry_(std::move(registry)) {
  size_bytes_ = static_cast<uint32_t>(word_count_ * 4);
  num_pages_ = (word_count_ + kPageWords - 1) / kPageWords;
  pages_.assign(num_pages_, kZeroPage);
  state_.assign(num_pages_, kZero);
  private_pages_.resize(num_pages_);
}

void Memory::MaterializePage(uint32_t page) {
  std::unique_ptr<uint32_t[]> copy;
  if (!pool_.empty()) {
    copy = std::move(pool_.back());
    pool_.pop_back();
  } else {
    copy = std::make_unique<uint32_t[]>(kPageWords);
  }
  std::memcpy(copy.get(), pages_[page], kPageWords * sizeof(uint32_t));
  pages_[page] = copy.get();
  private_pages_[page] = std::move(copy);
  state_[page] = kPrivate;
  ++counters_.cow_faults;
}

void Memory::ReleasePrivate(uint32_t page, const uint32_t* target_ptr,
                            uint8_t target_state) {
  if (state_[page] == kPrivate) {
    pool_.push_back(std::move(private_pages_[page]));
    ++counters_.pages_recycled;
  }
  // The table is only written through the barrier while a page is private;
  // shared entries are read-only views into immutable storage.
  pages_[page] = const_cast<uint32_t*>(target_ptr);
  state_[page] = target_state;
}

bool Memory::PageEqualsGolden(uint32_t page) const {
  if (state_[page] == kGolden) return true;
  if (state_[page] == kZero) return golden_->page_zero(page);
  return std::memcmp(pages_[page], golden_->page(page),
                     PageWordCount(page) * sizeof(uint32_t)) == 0;
}

util::Status Memory::HostWriteRange(uint32_t address, const uint32_t* words,
                                    size_t count) {
  if (address % 4 != 0) return util::InvalidArgument("misaligned host write");
  if (static_cast<uint64_t>(address) + count * 4 >
      static_cast<uint64_t>(size_bytes_)) {
    return util::OutOfRange("host write range out of range");
  }
  uint32_t w = address / 4;
  size_t done = 0;
  while (done < count) {
    const uint32_t page = w >> kPageShift;
    const uint32_t offset = w & kPageMask;
    const size_t chunk = std::min<size_t>(count - done, kPageWords - offset);
    const uint32_t* src = words + done;
    const size_t chunk_bytes = chunk * sizeof(uint32_t);
    if (std::memcmp(pages_[page] + offset, src, chunk_bytes) == 0) {
      // Already present (typically: re-download over a golden page after a
      // repointing Reset) — the page stays shared.
      counters_.bulk_words_skipped += chunk;
    } else if (golden_ != nullptr &&
               std::memcmp(golden_->page(page) + offset, src, chunk_bytes) ==
                   0 &&
               std::memcmp(pages_[page], golden_->page(page),
                           offset * sizeof(uint32_t)) == 0 &&
               std::memcmp(pages_[page] + offset + chunk,
                           golden_->page(page) + offset + chunk,
                           (PageWordCount(page) - offset - chunk) *
                               sizeof(uint32_t)) == 0) {
      // The write leaves the whole page equal to the baseline image (the
      // written run matches golden and the untouched remainder already did
      // — after a repointing Reset the remainder is zero, like the golden
      // page's padding): adopt the golden page instead of copying. This is
      // what makes the per-experiment re-download of a sub-page workload
      // image copy-free, not just page-aligned full-page images.
      ReleasePrivate(page, golden_->page(page), kGolden);
      ++counters_.golden_adoptions;
    } else {
      if (state_[page] != kPrivate) MaterializePage(page);
      std::memcpy(pages_[page] + offset, src, chunk_bytes);
    }
    done += chunk;
    w += static_cast<uint32_t>(chunk);
  }
  return util::Status::Ok();
}

void Memory::Protect(uint32_t start, uint32_t length) {
  protected_ranges_.push_back({start, start + length});
}

void Memory::ClearProtection() { protected_ranges_.clear(); }

void Memory::Reset() {
  for (uint32_t page = 0; page < num_pages_; ++page) {
    if (state_[page] != kZero) ReleasePrivate(page, kZeroPage, kZero);
  }
  protected_ranges_.clear();
}

void Memory::MarkCleanBaseline() {
  // Build the padded image from the current page table. Private-page tails
  // past word_count_ are always zero (pages are only ever filled from other
  // zero-padded pages), so whole-page copies keep the padding canonical.
  std::vector<uint32_t> words(num_pages_ * kPageWords, 0);
  for (uint32_t page = 0; page < num_pages_; ++page) {
    if (state_[page] == kZero) continue;
    std::memcpy(words.data() + static_cast<size_t>(page) * kPageWords,
                pages_[page], kPageWords * sizeof(uint32_t));
  }
  golden_ = registry_ != nullptr
                ? registry_->Intern(std::move(words))
                : std::make_shared<const GoldenImage>(std::move(words));
  for (uint32_t page = 0; page < num_pages_; ++page) {
    ReleasePrivate(page, golden_->page(page), kGolden);
  }
}

Memory::Delta Memory::CaptureDelta() const {
  Delta delta;
  // Without a declared baseline the delta is protection-ranges only — the
  // historical (flat dirty-bitmap) behavior pre-MarkCleanBaseline, which
  // snapshot users without checkpointing rely on.
  for (uint32_t page = 0; golden_ != nullptr && page < num_pages_; ++page) {
    if (state_[page] == kGolden) continue;
    if (PageEqualsGolden(page)) continue;
    Delta::Page out;
    out.index = page;
    out.words.assign(pages_[page], pages_[page] + PageWordCount(page));
    delta.pages.push_back(std::move(out));
  }
  delta.protected_ranges.reserve(protected_ranges_.size());
  for (const Range& range : protected_ranges_) {
    delta.protected_ranges.push_back({range.start, range.end});
  }
  return delta;
}

void Memory::RestoreDelta(const Delta& delta) {
  // Repoint everything diverged from the baseline back at the golden image,
  // then materialize only the delta's pages on top. Golden pages already
  // equal the baseline by invariant — the loop is a byte scan plus O(#dirty)
  // repoints, never a content copy. Without a baseline there is nothing to
  // revert (pre-baseline deltas carry no pages), matching the historical
  // empty-dirty-bitmap behavior.
  for (uint32_t page = 0; golden_ != nullptr && page < num_pages_; ++page) {
    if (state_[page] == kGolden) continue;
    ReleasePrivate(page, golden_->page(page), kGolden);
  }
  for (const Delta::Page& page : delta.pages) {
    MaterializePage(page.index);
    std::memcpy(pages_[page.index], page.words.data(),
                page.words.size() * sizeof(uint32_t));
  }
  protected_ranges_.clear();
  protected_ranges_.reserve(delta.protected_ranges.size());
  for (const Delta::Range& range : delta.protected_ranges) {
    protected_ranges_.push_back({range.start, range.end});
  }
}

void Memory::HashCanonicalState(StateHasher* hasher, bool scrub_clean_pages) {
  for (uint32_t page = 0; golden_ != nullptr && page < num_pages_; ++page) {
    if (state_[page] == kGolden) continue;
    if (PageEqualsGolden(page)) {
      // Zero pages prove equality through the image's memoized zero flags;
      // private pages by content compare. Scrubbing releases the private
      // copy back to the shared image so the next hash skips it for free.
      if (scrub_clean_pages && state_[page] == kPrivate) {
        ReleasePrivate(page, golden_->page(page), kGolden);
      }
      continue;
    }
    hasher->U32(page);
    hasher->Words(pages_[page], PageWordCount(page));
  }
  hasher->U64(protected_ranges_.size());
  for (const Range& range : protected_ranges_) {
    hasher->U32(range.start);
    hasher->U32(range.end);
  }
}

Memory::Residency Memory::residency() const {
  Residency out;
  out.total_pages = num_pages_;
  for (uint32_t page = 0; page < num_pages_; ++page) {
    switch (state_[page]) {
      case kZero: ++out.zero_pages; break;
      case kGolden: ++out.golden_pages; break;
      default: ++out.private_pages; break;
    }
  }
  out.pool_pages = pool_.size();
  out.resident_bytes = pages_.capacity() * sizeof(uint32_t*) +
                       state_.capacity() +
                       private_pages_.capacity() * sizeof(void*) +
                       pool_.capacity() * sizeof(void*) +
                       (out.private_pages + out.pool_pages) * kPageWords *
                           sizeof(uint32_t) +
                       protected_ranges_.capacity() * sizeof(Range);
  if (golden_ != nullptr) {
    out.golden_image_bytes = golden_->MemoryBytes();
    out.golden_image_refs = golden_.use_count();
  }
  return out;
}

void MemoryUsageAggregator::Add(const Memory& memory) {
  const Memory::Residency residency = memory.residency();
  const Memory::Counters& counters = memory.counters();
  ++totals_.targets;
  totals_.golden_pages += residency.golden_pages;
  totals_.zero_pages += residency.zero_pages;
  totals_.private_pages += residency.private_pages;
  totals_.pool_pages += residency.pool_pages;
  totals_.cow_faults += counters.cow_faults;
  totals_.golden_adoptions += counters.golden_adoptions;
  totals_.pages_recycled += counters.pages_recycled;
  totals_.resident_bytes += residency.resident_bytes;
  const GoldenImage* image = memory.golden().get();
  if (image != nullptr &&
      std::find(seen_images_.begin(), seen_images_.end(), image) ==
          seen_images_.end()) {
    seen_images_.push_back(image);
    ++totals_.golden_images;
    totals_.golden_image_bytes += image->MemoryBytes();
  }
}

}  // namespace goofi::cpu
