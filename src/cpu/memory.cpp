#include "cpu/memory.hpp"

namespace goofi::cpu {

Memory::Memory(uint32_t size_bytes) : words_((size_bytes + 3) / 4, 0) {}

MemAccess Memory::Read(uint32_t address) const {
  MemAccess out;
  if (address % 4 != 0) {
    out.violation = EdmType::kMisalignedAccess;
    return out;
  }
  if (address >= size_bytes()) {
    out.violation = EdmType::kOutOfRangeAccess;
    return out;
  }
  out.value = words_[address / 4];
  return out;
}

MemAccess Memory::Write(uint32_t address, uint32_t value) {
  MemAccess out;
  if (address % 4 != 0) {
    out.violation = EdmType::kMisalignedAccess;
    return out;
  }
  if (address >= size_bytes()) {
    out.violation = EdmType::kOutOfRangeAccess;
    return out;
  }
  if (IsProtected(address)) {
    out.violation = EdmType::kMemoryProtection;
    return out;
  }
  words_[address / 4] = value;
  return out;
}

util::Status Memory::HostWrite(uint32_t address, uint32_t value) {
  if (address % 4 != 0) return util::InvalidArgument("misaligned host write");
  if (address >= size_bytes()) return util::OutOfRange("host write out of range");
  words_[address / 4] = value;
  return util::Status::Ok();
}

util::Result<uint32_t> Memory::HostRead(uint32_t address) const {
  if (address % 4 != 0) return util::InvalidArgument("misaligned host read");
  if (address >= size_bytes()) return util::OutOfRange("host read out of range");
  return words_[address / 4];
}

void Memory::Protect(uint32_t start, uint32_t length) {
  protected_ranges_.push_back({start, start + length});
}

void Memory::ClearProtection() { protected_ranges_.clear(); }

bool Memory::IsProtected(uint32_t address) const {
  for (const Range& range : protected_ranges_) {
    if (address >= range.start && address < range.end) return true;
  }
  return false;
}

void Memory::Reset() {
  std::fill(words_.begin(), words_.end(), 0u);
  protected_ranges_.clear();
}

}  // namespace goofi::cpu
