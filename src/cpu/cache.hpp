// Parity-protected direct-mapped cache.
//
// The Thor RD "featur[es] parity protected instruction and data caches"
// (paper §1) — its headline error-detection upgrade over the original Thor.
// Each line stores a valid bit, tag, one data word and an even-parity bit
// covering all of them. Parity is computed on fill and checked on every hit;
// a scan-chain bit flip in any line bit therefore surfaces as a parity
// detection on the next access to that line. Write policy is write-through /
// no-write-allocate, which keeps main memory authoritative.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/edm.hpp"

namespace goofi::cpu {

class StateHasher;

class ParityCache {
 public:
  /// `num_lines` must be a power of two. `address_bits` bounds the tag width.
  ParityCache(uint32_t num_lines, uint32_t address_bits, EdmType parity_edm);

  uint32_t num_lines() const { return static_cast<uint32_t>(lines_.size()); }
  uint32_t tag_bits() const { return tag_bits_; }
  EdmType parity_edm() const { return parity_edm_; }

  struct LookupResult {
    bool hit = false;
    bool parity_error = false;
    uint32_t value = 0;
  };

  /// Looks up a word address (byte address / 4). On a hit, verifies parity.
  LookupResult Lookup(uint32_t word_address);

  /// Inline clean-hit probe for the superblock fast path: on a valid-line
  /// tag match with correct parity, counts the hit and returns the word.
  /// Everything else (miss, parity mismatch) counts *nothing* and returns
  /// false — the caller falls back to the full Lookup, which then performs
  /// the statistics accounting and error signalling, so the two-step probe
  /// is observationally identical to calling Lookup directly.
  bool FastHit(uint32_t word_address, uint32_t* value) {
    const Line& line = lines_[IndexOf(word_address)];
    if (!line.valid || line.tag != TagOf(word_address)) return false;
    if (ComputeParity(line) != line.parity) return false;
    ++hits_;
    *value = line.data;
    return true;
  }

  /// Installs a word (read miss fill). Recomputes parity.
  void Fill(uint32_t word_address, uint32_t value);

  /// Write-through update: if the line holds this address, update the data
  /// and recompute parity; otherwise no allocation happens.
  void WriteThrough(uint32_t word_address, uint32_t value);

  /// Invalidates all lines.
  void Flush();

  // Scan-chain access to individual line fields. Index < num_lines().
  bool line_valid(uint32_t index) const { return lines_[index].valid; }
  uint32_t line_tag(uint32_t index) const { return lines_[index].tag; }
  uint32_t line_data(uint32_t index) const { return lines_[index].data; }
  bool line_parity(uint32_t index) const { return lines_[index].parity; }
  void set_line_valid(uint32_t index, bool v) { lines_[index].valid = v; }
  void set_line_tag(uint32_t index, uint32_t v) { lines_[index].tag = v & TagMask(); }
  void set_line_data(uint32_t index, uint32_t v) { lines_[index].data = v; }
  void set_line_parity(uint32_t index, bool v) { lines_[index].parity = v; }

  /// Statistics for the cycle model and benches.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

  struct Line {
    bool valid = false;
    uint32_t tag = 0;
    uint32_t data = 0;
    bool parity = false;
  };

  /// Full cache state for checkpointing: every line field (valid, tag, data,
  /// parity) plus hit/miss stats, since the cycle model (and hence timeout
  /// behaviour) depends on hit/miss patterns after restore.
  struct Snapshot {
    std::vector<Line> lines;
    uint64_t hits = 0;
    uint64_t misses = 0;

    size_t MemoryBytes() const { return lines.size() * sizeof(Line); }
  };

  /// Appends the full cache state — every line field plus hit/miss stats —
  /// to a convergence hash. Same coverage as Snapshot, and for the same
  /// reason: the cycle model depends on hit/miss patterns, so two states are
  /// only execution-equivalent if their caches (and stats) match.
  void HashState(StateHasher* hasher) const;

  Snapshot SaveSnapshot() const { return {lines_, hits_, misses_}; }
  void RestoreSnapshot(const Snapshot& snapshot) {
    lines_ = snapshot.lines;
    hits_ = snapshot.hits;
    misses_ = snapshot.misses;
  }

 private:

  uint32_t IndexOf(uint32_t word_address) const {
    return word_address & (num_lines() - 1);
  }
  uint32_t TagOf(uint32_t word_address) const {
    return (word_address >> index_bits_) & TagMask();
  }
  uint32_t TagMask() const { return (tag_bits_ >= 32) ? ~0u : ((1u << tag_bits_) - 1); }

  /// Even parity over valid + tag + data. In the header so FastHit inlines.
  static bool ComputeParity(const Line& line) {
    const uint32_t acc = line.data ^ line.tag ^ (line.valid ? 1u : 0u);
    return (__builtin_popcount(acc) & 1) != 0;
  }

  std::vector<Line> lines_;
  uint32_t index_bits_ = 0;
  uint32_t tag_bits_ = 0;
  EdmType parity_edm_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace goofi::cpu
