#include "cpu/cpu.hpp"

#include <algorithm>

#include "cpu/state_hash.hpp"
#include "util/strings.hpp"

namespace goofi::cpu {

namespace {
constexpr uint32_t kAddressBits = 20;  // matches the 1 MiB default memory

// Upper bound on uninterrupted fast-path steps between superblock exits.
// Bounds how stale the lazily-materialized watchdog counter can get and how
// far budget re-evaluation can drift; large enough that per-exit costs
// amortize to nothing.
constexpr uint64_t kMaxBurst = 1u << 15;
}

Cpu::Cpu(const CpuConfig& config)
    : config_(config),
      memory_(config.memory_bytes, config.golden_registry),
      icache_(config.icache_lines, kAddressBits, EdmType::kCacheParityInstr),
      dcache_(config.dcache_lines, kAddressBits, EdmType::kCacheParityData) {}

util::Status Cpu::LoadProgram(uint32_t base, const std::vector<uint32_t>& words,
                              uint32_t text_bytes) {
  const uint32_t image_bytes = static_cast<uint32_t>(words.size()) * 4;
  if (text_bytes == 0 || text_bytes > image_bytes) text_bytes = image_bytes;
  // Bulk download: one range write instead of a word loop. After the first
  // experiment's baseline is interned, the repeated PowerCycle+LoadProgram
  // prologue adopts the golden image's pages without copying.
  GOOFI_RETURN_IF_ERROR(
      memory_.HostWriteRange(base, words.data(), words.size()));
  memory_.ClearProtection();
  text_start_ = base;
  text_end_ = base + text_bytes;
  memory_.Protect(text_start_, text_bytes);
  decode_cache_.Configure(text_start_, text_end_);
  return util::Status::Ok();
}

void Cpu::Reset(uint32_t entry) {
  regs_.fill(0);
  // Stack starts at the top of memory, empty-descending.
  regs_[isa::kStackPointer] = memory_.size_bytes();
  pc_ = entry;
  ir_ = 0;
  next_pc_ = entry;
  latch_operand_a_ = latch_operand_b_ = latch_alu_result_ = 0;
  latch_mem_addr_ = latch_mem_data_ = 0;
  watchdog_counter_ = 0;
  cycles_ = 0;
  instret_ = 0;
  halted_ = false;
  edm_event_ = EdmEvent{};
  icache_.Flush();
  dcache_.Flush();
  Fetch(entry);
  // The initial prefetch is part of reset, not of the measured execution:
  // cycle/instruction counters start at zero when the first Step() runs.
  cycles_ = 0;
  instret_ = 0;
  icache_.ResetStats();
  dcache_.ResetStats();
}

void Cpu::PowerCycle() {
  memory_.Reset();
  text_start_ = text_end_ = 0;
  decode_cache_.Configure(0, 0);
  Reset(0);
}

util::Status Cpu::HostWriteWord(uint32_t address, uint32_t value) {
  GOOFI_RETURN_IF_ERROR(memory_.HostWrite(address, value));
  dcache_.WriteThrough(address / 4, value);
  icache_.WriteThrough(address / 4, value);
  // Pre-runtime SWIFI code mutations and host-side input downloads funnel
  // through here; a flip inside the text segment must drop the predecode.
  decode_cache_.InvalidateWord(address);
  return util::Status::Ok();
}

CpuSnapshot Cpu::SaveSnapshot() const {
  CpuSnapshot snapshot;
  snapshot.regs = regs_;
  snapshot.pc = pc_;
  snapshot.ir = ir_;
  snapshot.next_pc = next_pc_;
  snapshot.latch_operand_a = latch_operand_a_;
  snapshot.latch_operand_b = latch_operand_b_;
  snapshot.latch_alu_result = latch_alu_result_;
  snapshot.latch_mem_addr = latch_mem_addr_;
  snapshot.latch_mem_data = latch_mem_data_;
  snapshot.watchdog_counter = watchdog_counter_;
  snapshot.cycles = cycles_;
  snapshot.instret = instret_;
  snapshot.halted = halted_;
  snapshot.edm_event = edm_event_;
  snapshot.text_start = text_start_;
  snapshot.text_end = text_end_;
  snapshot.icache = icache_.SaveSnapshot();
  snapshot.dcache = dcache_.SaveSnapshot();
  snapshot.memory = memory_.CaptureDelta();
  return snapshot;
}

void Cpu::RestoreSnapshot(const CpuSnapshot& snapshot) {
  regs_ = snapshot.regs;
  pc_ = snapshot.pc;
  ir_ = snapshot.ir;
  next_pc_ = snapshot.next_pc;
  latch_operand_a_ = snapshot.latch_operand_a;
  latch_operand_b_ = snapshot.latch_operand_b;
  latch_alu_result_ = snapshot.latch_alu_result;
  latch_mem_addr_ = snapshot.latch_mem_addr;
  latch_mem_data_ = snapshot.latch_mem_data;
  watchdog_counter_ = snapshot.watchdog_counter;
  cycles_ = snapshot.cycles;
  instret_ = snapshot.instret;
  halted_ = snapshot.halted;
  edm_event_ = snapshot.edm_event;
  text_start_ = snapshot.text_start;
  text_end_ = snapshot.text_end;
  icache_.RestoreSnapshot(snapshot.icache);
  dcache_.RestoreSnapshot(snapshot.dcache);
  memory_.RestoreDelta(snapshot.memory);
  // The restored image may differ arbitrarily from what was predecoded
  // (checkpoint restore rewinds memory); rebind and flush.
  decode_cache_.Configure(text_start_, text_end_);
}

void Cpu::HashExecutionState(StateHasher* hasher) {
  for (uint32_t reg : regs_) hasher->U32(reg);
  hasher->U32(pc_);
  hasher->U32(ir_);
  hasher->U32(next_pc_);
  hasher->U32(latch_operand_a_);
  hasher->U32(latch_operand_b_);
  hasher->U32(latch_alu_result_);
  hasher->U32(latch_mem_addr_);
  hasher->U32(latch_mem_data_);
  hasher->U32(watchdog_counter_);
  hasher->U64(cycles_);
  hasher->U64(instret_);
  hasher->Bool(halted_);
  hasher->U8(static_cast<uint8_t>(edm_event_.type));
  hasher->U64(edm_event_.cycle);
  hasher->U32(edm_event_.pc);
  hasher->I32(edm_event_.code);
  hasher->Str(edm_event_.detail);
  hasher->U32(text_start_);
  hasher->U32(text_end_);
  icache_.HashState(hasher);
  dcache_.HashState(hasher);
  memory_.HashCanonicalState(hasher, /*scrub_clean_pages=*/true);
}

void Cpu::RaiseEdm(EdmType type, int32_t code, const std::string& detail) {
  if (!config_.edms.Enabled(type)) return;
  if (edm_event_.Detected()) return;  // first detection wins
  edm_event_.type = type;
  edm_event_.cycle = cycles_;
  edm_event_.pc = pc_;
  edm_event_.code = code;
  edm_event_.detail = detail;
  halted_ = true;
}

void Cpu::Fetch(uint32_t address) {
  if (address % 4 != 0) {
    RaiseEdm(EdmType::kMisalignedAccess, 0,
             util::Format("fetch from 0x%08x", address));
    // Even with the EDM disabled a misaligned fetch cannot proceed; force-align.
    address &= ~3u;
  }
  const uint32_t word_address = address / 4;
  ParityCache::LookupResult hit = icache_.Lookup(word_address);
  if (hit.hit) {
    if (hit.parity_error) {
      RaiseEdm(icache_.parity_edm(), 0,
               util::Format("icache parity at 0x%08x", address));
      if (halted_) return;
      // Parity EDM disabled: the corrupted word is consumed as-is.
    }
    ir_ = hit.value;
    return;
  }
  cycles_ += config_.cache_miss_penalty;
  const MemAccess access = memory_.Read(address);
  if (!access.ok()) {
    RaiseEdm(access.violation, 0, util::Format("fetch from 0x%08x", address));
    ir_ = 0;
    return;
  }
  icache_.Fill(word_address, access.value);
  ir_ = access.value;
}

bool Cpu::LoadWord(uint32_t address, uint32_t* value) {
  latch_mem_addr_ = address;
  if (address % 4 != 0) {
    RaiseEdm(EdmType::kMisalignedAccess, 0, util::Format("load 0x%08x", address));
    if (halted_) return false;
    address &= ~3u;
  }
  const uint32_t word_address = address / 4;
  ParityCache::LookupResult hit = dcache_.Lookup(word_address);
  if (hit.hit) {
    if (hit.parity_error) {
      RaiseEdm(dcache_.parity_edm(), 0,
               util::Format("dcache parity at 0x%08x", address));
      if (halted_) return false;
    }
    *value = hit.value;
    latch_mem_data_ = hit.value;
    return true;
  }
  cycles_ += config_.cache_miss_penalty;
  const MemAccess access = memory_.Read(address);
  if (!access.ok()) {
    RaiseEdm(access.violation, 0, util::Format("load 0x%08x", address));
    return false;
  }
  dcache_.Fill(word_address, access.value);
  *value = access.value;
  latch_mem_data_ = access.value;
  return true;
}

bool Cpu::StoreWord(uint32_t address, uint32_t value) {
  latch_mem_addr_ = address;
  latch_mem_data_ = value;
  if (address % 4 != 0) {
    RaiseEdm(EdmType::kMisalignedAccess, 0, util::Format("store 0x%08x", address));
    if (halted_) return false;
    address &= ~3u;
  }
  const MemAccess access = memory_.Write(address, value);
  if (!access.ok()) {
    RaiseEdm(access.violation, 0, util::Format("store 0x%08x", address));
    return false;
  }
  dcache_.WriteThrough(address / 4, value);
  // Text is normally store-protected, so this only triggers when protection
  // is off (code-in-data setups); stale predecodes must still be impossible.
  decode_cache_.InvalidateWord(address);
  return true;
}

bool Cpu::CheckControlFlow(uint32_t target) {
  if (text_end_ == text_start_) return true;  // no text segment registered
  if (target < text_start_ || target >= text_end_ || target % 4 != 0) {
    RaiseEdm(EdmType::kControlFlowError, 0,
             util::Format("control transfer to 0x%08x", target));
    return !halted_;
  }
  return true;
}

StepOutcome Cpu::Step() {
  if (halted_) {
    return edm_event_.Detected() ? StepOutcome::kDetected : StepOutcome::kHalted;
  }
  ExecuteInstruction();
  if (edm_event_.Detected()) return StepOutcome::kDetected;
  if (halted_) return StepOutcome::kHalted;

  // Watchdog: counts steps since the last kick (TRAP 0 below). Saturating
  // add without the clamp branch; the fast path batches this increment into
  // a per-superblock budget (see RunFastEx).
  if (config_.watchdog_limit != 0) {
    watchdog_counter_ += (watchdog_counter_ != UINT32_MAX) ? 1u : 0u;
    if (watchdog_counter_ >= config_.watchdog_limit) {
      RaiseEdm(EdmType::kWatchdogTimeout, 0, "watchdog expired");
      return StepOutcome::kDetected;
    }
  }

  // Stack-limit check (stack grows downwards from the top of memory).
  if (config_.stack_limit != 0 &&
      regs_[isa::kStackPointer] < config_.stack_limit) {
    RaiseEdm(EdmType::kStackOverflow, 0,
             util::Format("sp=0x%08x below limit", regs_[isa::kStackPointer]));
    return StepOutcome::kDetected;
  }

  Fetch(next_pc_);
  if (edm_event_.Detected()) return StepOutcome::kDetected;
  pc_ = next_pc_;
  return StepOutcome::kOk;
}

StepOutcome Cpu::Run(uint64_t max_cycles) {
  for (;;) {
    const StepOutcome outcome = Step();
    if (outcome != StepOutcome::kOk) return outcome;
    if (max_cycles != 0 && cycles_ >= max_cycles) return StepOutcome::kOk;
  }
}

RunFastResult Cpu::RunFastEx(const RunFastRequest& request) {
  RunFastResult result;
  if (halted_) {
    result.outcome =
        edm_event_.Detected() ? StepOutcome::kDetected : StepOutcome::kHalted;
    return result;
  }

  // Like Step(), the watchdog/stack checks are driven by the configured
  // limits alone: with the corresponding EDM disabled they still terminate
  // the step (returning kDetected without recording an event), so the gates
  // here must not consult EdmConfig.
  const uint64_t wd_limit = config_.watchdog_limit;
  const bool wd_active = wd_limit != 0;
  const bool stack_active = config_.stack_limit != 0;

  uint8_t stop_flag_mask = 0;
  if (request.watch_mem) stop_flag_mask |= DecodeCache::kMem;
  if (request.watch_branch) stop_flag_mask |= DecodeCache::kBranch;
  if (request.watch_call) stop_flag_mask |= DecodeCache::kCall;
  const bool watch_pc_on = request.watch_pc_enabled;
  const uint8_t sp_mask = stack_active ? DecodeCache::kWritesSp : 0;

  // Worst-case cycles one step can cost (for the cycle-budget fuel bound):
  // the largest base_cycles plus one instruction- and one data-cache miss.
  const uint64_t max_step_cycles = static_cast<uint64_t>(isa::kMaxBaseCycles) +
                                   2ull * config_.cache_miss_penalty;

  // Satellite of the superblock design: the per-step saturating watchdog
  // increment is batched. `wd_pending` counts steps since the counter was
  // last materialized; fuel never exceeds the steps remaining until the
  // counter could reach the limit, so the precise >= check only needs to run
  // at superblock exits.
  uint64_t wd_pending = 0;
  auto materialize_watchdog = [&] {
    if (wd_pending == 0) return;
    watchdog_counter_ = static_cast<uint32_t>(std::min<uint64_t>(
        static_cast<uint64_t>(watchdog_counter_) + wd_pending, UINT32_MAX));
    wd_pending = 0;
  };

  // Steps that can run before any hoisted check could possibly fire. Always
  // >= 1; requires the watchdog counter to be materialized.
  auto compute_fuel = [&]() -> uint64_t {
    uint64_t fuel = kMaxBurst;
    if (wd_active) {
      fuel = std::min(fuel, wd_limit > watchdog_counter_
                                ? wd_limit - watchdog_counter_
                                : uint64_t{1});
    }
    if (request.max_cycles != 0) {
      fuel = std::min(
          fuel, cycles_ < request.max_cycles
                    ? std::max<uint64_t>(
                          (request.max_cycles - cycles_) / max_step_cycles, 1)
                    : uint64_t{1});
    }
    if (request.max_instret != 0) {
      fuel = std::min(fuel, instret_ < request.max_instret
                                ? request.max_instret - instret_
                                : uint64_t{1});
    }
    if (request.max_steps != 0) {
      fuel = std::min(fuel, request.max_steps > result.steps
                                ? request.max_steps - result.steps
                                : uint64_t{1});
    }
    return fuel;
  };

  // Step() checks the stack limit after every instruction; after the first
  // step here only sp-writing instructions (flagged) can change sp, so the
  // check is hoisted behind the flag with a one-shot check on step one.
  bool stack_check_pending = stack_active;
  uint64_t fuel = compute_fuel();
  uint32_t exec_pc = pc_;
  uint8_t exec_flags = 0;

  for (;;) {
    exec_pc = pc_;
    const uint32_t word = ir_;
    // The raw-word tag check inside Resolve() is the correctness backstop:
    // scan-chain flips into ir_ or icache line data change the executed word
    // without passing any invalidation hook.
    const DecodeCache::Entry& entry = decode_cache_.Resolve(exec_pc, word);
    exec_flags = entry.flags;

    if (exec_flags & DecodeCache::kWatchdogKick) {
      // TRAP 0 zeroes the counter inside execute; flush the pending
      // increments first so they land before the reset, not after.
      materialize_watchdog();
    }
    if (exec_flags & DecodeCache::kIllegal) {
      ExecuteIllegal(word, entry.fault);
    } else {
      ExecuteValid(entry.ins, entry.base_cycles);
    }
    ++result.steps;
    if (edm_event_.Detected()) {
      result.outcome = StepOutcome::kDetected;
      break;
    }
    if (halted_) {
      result.outcome = StepOutcome::kHalted;
      break;
    }
    if (wd_active) ++wd_pending;

    const bool stop_after = (exec_flags & stop_flag_mask) != 0 ||
                            (watch_pc_on && exec_pc == request.watch_pc);
    if (--fuel == 0 || stop_after || (exec_flags & sp_mask) != 0 ||
        stack_check_pending) {
      // Superblock exit: re-establish the hoisted checks in exactly the
      // order Step() performs them — watchdog, stack limit, then fetch.
      materialize_watchdog();
      if (wd_active && watchdog_counter_ >= wd_limit) {
        RaiseEdm(EdmType::kWatchdogTimeout, 0, "watchdog expired");
        result.outcome = StepOutcome::kDetected;
        break;
      }
      stack_check_pending = false;
      if (stack_active && regs_[isa::kStackPointer] < config_.stack_limit) {
        RaiseEdm(
            EdmType::kStackOverflow, 0,
            util::Format("sp=0x%08x below limit", regs_[isa::kStackPointer]));
        result.outcome = StepOutcome::kDetected;
        break;
      }
      Fetch(next_pc_);
      if (edm_event_.Detected()) {
        result.outcome = StepOutcome::kDetected;
        break;
      }
      pc_ = next_pc_;
      if (stop_after) {
        result.stop = RunFastResult::Stop::kWatch;
        break;
      }
      if (request.max_instret != 0 && instret_ >= request.max_instret) {
        result.stop = RunFastResult::Stop::kInstret;
        break;
      }
      if (request.max_cycles != 0 && cycles_ >= request.max_cycles) {
        result.stop = RunFastResult::Stop::kCycles;
        break;
      }
      if (request.max_steps != 0 && result.steps >= request.max_steps) {
        result.stop = RunFastResult::Stop::kSteps;
        break;
      }
      fuel = compute_fuel();
    } else {
      // Hot fetch: an aligned, clean icache hit needs none of Fetch()'s
      // misalignment / miss / parity handling — FastHit performs the same
      // statistics accounting inline and anything unusual falls back to the
      // full path, which re-runs the lookup with identical observable
      // effects.
      const uint32_t fetch_addr = next_pc_;
      uint32_t fetched;
      if ((fetch_addr & 3u) == 0 && icache_.FastHit(fetch_addr / 4, &fetched)) {
        ir_ = fetched;
        pc_ = fetch_addr;
      } else {
        Fetch(fetch_addr);
        if (edm_event_.Detected()) {
          result.outcome = StepOutcome::kDetected;
          break;
        }
        pc_ = next_pc_;
      }
    }
  }

  materialize_watchdog();
  result.exec_pc = exec_pc;
  result.exec_mem = (exec_flags & DecodeCache::kMem) != 0;
  result.exec_branch = (exec_flags & DecodeCache::kBranch) != 0;
  result.exec_call = (exec_flags & DecodeCache::kCall) != 0;
  return result;
}

StepOutcome Cpu::RunFast(uint64_t max_cycles) {
  RunFastRequest request;
  request.max_cycles = max_cycles;
  return RunFastEx(request).outcome;
}

void Cpu::ExecuteInstruction() {
  const isa::Predecoded pre = isa::Predecode(ir_);
  if (pre.fault != isa::PredecodeFault::kNone) {
    ExecuteIllegal(ir_, pre.fault);
    return;
  }
  ExecuteValid(pre.ins, pre.base_cycles);
}

void Cpu::ExecuteIllegal(uint32_t word, isa::PredecodeFault fault) {
  // The Decode() error string is only materialized if an enabled EDM will
  // actually record it — undefined words executing as NOPs (EDM disabled)
  // must not allocate per step.
  if (config_.edms.Enabled(EdmType::kIllegalOpcode) && !edm_event_.Detected()) {
    RaiseEdm(EdmType::kIllegalOpcode, 0, isa::IllegalDecodeMessage(word, fault));
  }
  if (halted_) return;
  // EDM disabled: undefined instructions execute as NOP.
  next_pc_ = pc_ + 4;
  cycles_ += 1;
  ++instret_;
}

void Cpu::ExecuteValid(const isa::Instruction& ins, uint8_t base_cycles) {
  using isa::Opcode;

  cycles_ += static_cast<uint64_t>(base_cycles);
  ++instret_;
  next_pc_ = pc_ + 4;

  const uint32_t a = regs_[ins.rs1];
  const uint32_t b = regs_[ins.rs2];
  latch_operand_a_ = a;
  latch_operand_b_ = b;

  auto set_rd = [&](uint32_t value) {
    latch_alu_result_ = value;
    // r0 is hardwired to zero (writes are discarded); its scan cell is
    // read-only accordingly.
    if (ins.rd != 0) regs_[ins.rd] = value;
  };
  auto signed_overflow_add = [&](int32_t x, int32_t y) {
    int32_t result;
    return __builtin_add_overflow(x, y, &result);
  };
  auto signed_overflow_sub = [&](int32_t x, int32_t y) {
    int32_t result;
    return __builtin_sub_overflow(x, y, &result);
  };

  switch (ins.op) {
    case Opcode::kNop:
      break;
    case Opcode::kAdd:
      if (signed_overflow_add(static_cast<int32_t>(a), static_cast<int32_t>(b))) {
        RaiseEdm(EdmType::kArithmeticOverflow, 0, "add overflow");
        if (halted_) return;
      }
      set_rd(a + b);
      break;
    case Opcode::kSub:
      if (signed_overflow_sub(static_cast<int32_t>(a), static_cast<int32_t>(b))) {
        RaiseEdm(EdmType::kArithmeticOverflow, 0, "sub overflow");
        if (halted_) return;
      }
      set_rd(a - b);
      break;
    case Opcode::kMul: {
      const int64_t wide = static_cast<int64_t>(static_cast<int32_t>(a)) *
                           static_cast<int64_t>(static_cast<int32_t>(b));
      if (wide != static_cast<int64_t>(static_cast<int32_t>(wide))) {
        RaiseEdm(EdmType::kArithmeticOverflow, 0, "mul overflow");
        if (halted_) return;
      }
      set_rd(static_cast<uint32_t>(wide));
      break;
    }
    case Opcode::kDiv:
      if (b == 0) {
        RaiseEdm(EdmType::kArithmeticOverflow, 0, "divide by zero");
        if (halted_) return;
        set_rd(0);
      } else {
        set_rd(static_cast<uint32_t>(static_cast<int32_t>(a) /
                                     static_cast<int32_t>(b)));
      }
      break;
    case Opcode::kAnd:
      set_rd(a & b);
      break;
    case Opcode::kOr:
      set_rd(a | b);
      break;
    case Opcode::kXor:
      set_rd(a ^ b);
      break;
    case Opcode::kSll:
      set_rd(a << (b & 31));
      break;
    case Opcode::kSrl:
      set_rd(a >> (b & 31));
      break;
    case Opcode::kSra:
      set_rd(static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31)));
      break;
    case Opcode::kSlt:
      set_rd(static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0);
      break;
    case Opcode::kSltu:
      set_rd(a < b ? 1 : 0);
      break;

    case Opcode::kAddi: {
      const int32_t imm = ins.imm;
      latch_operand_b_ = static_cast<uint32_t>(imm);
      if (signed_overflow_add(static_cast<int32_t>(a), imm)) {
        RaiseEdm(EdmType::kArithmeticOverflow, 0, "addi overflow");
        if (halted_) return;
      }
      set_rd(a + static_cast<uint32_t>(imm));
      break;
    }
    case Opcode::kAndi:
      set_rd(a & static_cast<uint32_t>(ins.imm));
      break;
    case Opcode::kOri:
      set_rd(a | static_cast<uint32_t>(ins.imm));
      break;
    case Opcode::kXori:
      set_rd(a ^ static_cast<uint32_t>(ins.imm));
      break;
    case Opcode::kSlli:
      set_rd(a << (static_cast<uint32_t>(ins.imm) & 31));
      break;
    case Opcode::kSrli:
      set_rd(a >> (static_cast<uint32_t>(ins.imm) & 31));
      break;
    case Opcode::kLui:
      set_rd(static_cast<uint32_t>(ins.imm) << 14);
      break;
    case Opcode::kSlti:
      set_rd(static_cast<int32_t>(a) < ins.imm ? 1 : 0);
      break;

    case Opcode::kLdw: {
      uint32_t value = 0;
      if (!LoadWord(a + static_cast<uint32_t>(ins.imm), &value)) return;
      set_rd(value);
      break;
    }
    case Opcode::kStw:
      if (!StoreWord(a + static_cast<uint32_t>(ins.imm), regs_[ins.rd])) return;
      break;

    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      const uint32_t lhs = regs_[ins.rd];
      const uint32_t rhs = a;  // rs1
      bool taken = false;
      switch (ins.op) {
        case Opcode::kBeq:
          taken = lhs == rhs;
          break;
        case Opcode::kBne:
          taken = lhs != rhs;
          break;
        case Opcode::kBlt:
          taken = static_cast<int32_t>(lhs) < static_cast<int32_t>(rhs);
          break;
        case Opcode::kBge:
          taken = static_cast<int32_t>(lhs) >= static_cast<int32_t>(rhs);
          break;
        case Opcode::kBltu:
          taken = lhs < rhs;
          break;
        default:
          taken = lhs >= rhs;
          break;
      }
      if (taken) {
        const uint32_t target =
            pc_ + 4 + static_cast<uint32_t>(ins.imm) * 4;
        if (!CheckControlFlow(target)) return;
        next_pc_ = target;
      }
      break;
    }

    case Opcode::kJmp: {
      const uint32_t target = static_cast<uint32_t>(ins.imm) * 4;
      if (!CheckControlFlow(target)) return;
      next_pc_ = target;
      break;
    }
    case Opcode::kJal: {
      const uint32_t target = static_cast<uint32_t>(ins.imm) * 4;
      if (!CheckControlFlow(target)) return;
      regs_[isa::kLinkRegister] = pc_ + 4;
      next_pc_ = target;
      break;
    }
    case Opcode::kJr: {
      const uint32_t target = regs_[ins.rs1];
      if (!CheckControlFlow(target)) return;
      next_pc_ = target;
      break;
    }

    case Opcode::kHalt:
      halted_ = true;
      break;
    case Opcode::kTrap:
      if (ins.imm == 0) {
        // TRAP 0 kicks the watchdog (the workload's "I am alive" signal).
        watchdog_counter_ = 0;
      } else {
        RaiseEdm(EdmType::kSoftwareAssertion, ins.imm,
                 util::Format("assertion %d failed", ins.imm));
        if (halted_) return;
      }
      break;
  }
}

StateRegistry Cpu::BuildStateRegistry() {
  StateRegistry registry;

  auto add_u32 = [&](std::string name, std::string group, uint32_t* storage,
                     bool read_only = false) {
    StateElement element;
    element.name = std::move(name);
    element.group = std::move(group);
    element.bits = 32;
    element.read_only = read_only;
    element.get = [storage]() { return static_cast<uint64_t>(*storage); };
    if (!read_only) {
      element.set = [storage](uint64_t v) { *storage = static_cast<uint32_t>(v); };
    }
    registry.Add(std::move(element));
  };

  for (int r = 0; r < isa::kNumRegisters; ++r) {
    // r0 is hardwired zero: observable on the chain but not injectable.
    add_u32("regfile." + *isa::RegisterName(r), "regfile",
            &regs_[static_cast<size_t>(r)], /*read_only=*/r == 0);
  }
  add_u32("core.pc", "core", &pc_);
  add_u32("core.ir", "core", &ir_);
  add_u32("pipeline.operand_a", "pipeline", &latch_operand_a_);
  add_u32("pipeline.operand_b", "pipeline", &latch_operand_b_);
  add_u32("pipeline.alu_result", "pipeline", &latch_alu_result_);
  add_u32("pipeline.mem_addr", "pipeline", &latch_mem_addr_);
  add_u32("pipeline.mem_data", "pipeline", &latch_mem_data_);
  add_u32("core.watchdog", "core", &watchdog_counter_);

  // Observation-only counters (read-only scan cells, paper §3.1).
  {
    StateElement element;
    element.name = "core.cycles";
    element.group = "core";
    element.bits = 64;
    element.read_only = true;
    element.get = [this]() { return cycles_; };
    registry.Add(std::move(element));
  }
  {
    StateElement element;
    element.name = "core.instret";
    element.group = "core";
    element.bits = 64;
    element.read_only = true;
    element.get = [this]() { return instret_; };
    registry.Add(std::move(element));
  }
  {
    StateElement element;
    element.name = "core.halted";
    element.group = "core";
    element.bits = 1;
    element.read_only = true;
    element.get = [this]() { return halted_ ? 1u : 0u; };
    registry.Add(std::move(element));
  }

  auto add_cache = [&](const char* prefix, ParityCache* cache) {
    for (uint32_t line = 0; line < cache->num_lines(); ++line) {
      const std::string base = util::Format("%s.line%u", prefix, line);
      {
        StateElement element;
        element.name = base + ".valid";
        element.group = prefix;
        element.bits = 1;
        element.get = [cache, line]() {
          return cache->line_valid(line) ? 1u : 0u;
        };
        element.set = [cache, line](uint64_t v) {
          cache->set_line_valid(line, v & 1u);
        };
        registry.Add(std::move(element));
      }
      {
        StateElement element;
        element.name = base + ".tag";
        element.group = prefix;
        element.bits = cache->tag_bits();
        element.get = [cache, line]() {
          return static_cast<uint64_t>(cache->line_tag(line));
        };
        element.set = [cache, line](uint64_t v) {
          cache->set_line_tag(line, static_cast<uint32_t>(v));
        };
        registry.Add(std::move(element));
      }
      {
        StateElement element;
        element.name = base + ".data";
        element.group = prefix;
        element.bits = 32;
        element.get = [cache, line]() {
          return static_cast<uint64_t>(cache->line_data(line));
        };
        element.set = [cache, line](uint64_t v) {
          cache->set_line_data(line, static_cast<uint32_t>(v));
        };
        registry.Add(std::move(element));
      }
      {
        StateElement element;
        element.name = base + ".parity";
        element.group = prefix;
        element.bits = 1;
        element.get = [cache, line]() {
          return cache->line_parity(line) ? 1u : 0u;
        };
        element.set = [cache, line](uint64_t v) {
          cache->set_line_parity(line, v & 1u);
        };
        registry.Add(std::move(element));
      }
    }
  };
  add_cache("icache", &icache_);
  add_cache("dcache", &dcache_);

  return registry;
}

}  // namespace goofi::cpu
