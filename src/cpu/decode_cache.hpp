// Predecoded instruction cache for the TRD32 fast path.
//
// Maps text-segment word addresses to predecoded isa::Instruction entries
// plus a handler/format tag so the superblock executor (Cpu::RunFastEx) can
// dispatch without re-running isa::Decode — and without constructing the
// illegal-encoding error strings — on every retired instruction.
//
// Correctness model (see DESIGN.md "Decode-cache invalidation invariants"):
//   1. Every site that mutates instruction memory must call InvalidateWord /
//      InvalidateRange / InvalidateAll (or Configure, which reflushes).
//   2. Independently of (1), every Resolve() re-checks the cached raw word
//      against the word actually being executed. Scan-chain writes reach the
//      instruction register and the parity-icache line data *behind* the
//      memory hierarchy, so the executed word can legitimately differ from
//      what any invalidation hook observed; the tag check makes stale
//      entries impossible even if a mutation site is missed.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.hpp"

namespace goofi::cpu {

class DecodeCache {
 public:
  /// Cheap per-entry classification bits consumed by the fast path.
  enum Flag : uint8_t {
    kIllegal = 1u << 0,       ///< Predecode fault; executes as NOP unless EDM fires
    kMem = 1u << 1,           ///< LDW / STW
    kBranch = 1u << 2,        ///< BEQ..BGEU
    kCall = 1u << 3,          ///< JAL
    kWritesSp = 1u << 4,      ///< may change r15 (stack-limit check needed)
    kWatchdogKick = 1u << 5,  ///< TRAP 0 (resets the watchdog counter)
  };

  struct Entry {
    uint32_t raw = 0;  ///< word this entry was predecoded from (tag)
    isa::Instruction ins;
    uint8_t base_cycles = 1;
    uint8_t flags = 0;
    isa::PredecodeFault fault = isa::PredecodeFault::kNone;
    bool valid = false;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;   ///< includes uncached (out-of-text) resolves
    uint64_t flushes = 0;  ///< invalidation events (word, range or full)
  };

  /// (Re)binds the cache to a text segment [text_start, text_end) and drops
  /// all entries. Called from LoadProgram / PowerCycle / RestoreSnapshot.
  void Configure(uint32_t text_start, uint32_t text_end);

  bool Covers(uint32_t address) const {
    return address >= text_start_ && address < text_end_;
  }

  /// Returns the predecoded entry for the word `raw` at `address`. Installs
  /// on miss or raw-tag mismatch; addresses outside the text segment resolve
  /// through a scratch entry (counted as misses, never installed).
  const Entry& Resolve(uint32_t address, uint32_t raw) {
    if (Covers(address)) {
      Entry& entry = entries_[(address - text_start_) >> 2];
      if (entry.valid && entry.raw == raw) {
        ++stats_.hits;
        return entry;
      }
      ++stats_.misses;
      entry = MakeEntry(raw);
      return entry;
    }
    ++stats_.misses;
    scratch_ = MakeEntry(raw);
    return scratch_;
  }

  /// Drops the entry covering the word at `address` (no-op outside text).
  void InvalidateWord(uint32_t address);

  /// Drops all entries overlapping the byte range [start, end).
  void InvalidateRange(uint32_t start, uint32_t end);

  /// Drops every entry (scan-chain writes into icache state, etc.).
  void InvalidateAll();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  /// Predecodes one word into an entry (exposed for tests).
  static Entry MakeEntry(uint32_t raw);

 private:
  uint32_t text_start_ = 0;
  uint32_t text_end_ = 0;
  std::vector<Entry> entries_;
  Entry scratch_;
  Stats stats_;
};

}  // namespace goofi::cpu
