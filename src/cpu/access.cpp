#include "cpu/access.hpp"

namespace goofi::cpu {

InstructionAccess ClassifyAccess(const isa::Instruction& ins) {
  using isa::Opcode;
  InstructionAccess out;
  const auto read = [&out](uint8_t reg) { out.reads[out.read_count++] = reg; };
  const auto write = [&out](uint8_t reg) {
    out.writes_reg = true;
    out.write_reg = reg;
  };
  const isa::OpcodeInfo& info = isa::GetOpcodeInfo(ins.op);
  switch (info.format) {
    case isa::Format::kR:
      if (ins.op == Opcode::kJr) {
        read(ins.rs1);
        break;
      }
      read(ins.rs1);
      read(ins.rs2);
      write(ins.rd);
      break;
    case isa::Format::kI:
      if (ins.op == Opcode::kLdw) {
        read(ins.rs1);
        write(ins.rd);
        out.mem_read = true;
      } else if (ins.op == Opcode::kStw) {
        read(ins.rs1);
        read(ins.rd);
        out.mem_write = true;
      } else if (ins.op >= Opcode::kBeq && ins.op <= Opcode::kBgeu) {
        read(ins.rd);
        read(ins.rs1);
      } else if (ins.op == Opcode::kLui) {
        write(ins.rd);
      } else if (ins.op == Opcode::kTrap) {
        // no register traffic
      } else {
        read(ins.rs1);
        write(ins.rd);
      }
      break;
    case isa::Format::kJ:
      if (ins.op == Opcode::kJal) write(isa::kLinkRegister);
      break;
    case isa::Format::kNone:
      break;
  }
  return out;
}

}  // namespace goofi::cpu
