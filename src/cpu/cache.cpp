#include "cpu/cache.hpp"

#include <bit>
#include <cassert>

#include "cpu/state_hash.hpp"

namespace goofi::cpu {

ParityCache::ParityCache(uint32_t num_lines, uint32_t address_bits,
                         EdmType parity_edm)
    : lines_(num_lines), parity_edm_(parity_edm) {
  assert(num_lines > 0 && (num_lines & (num_lines - 1)) == 0);
  index_bits_ = static_cast<uint32_t>(std::countr_zero(num_lines));
  // Word-address space is address_bits-2 bits wide.
  const uint32_t word_bits = address_bits > 2 ? address_bits - 2 : 1;
  tag_bits_ = word_bits > index_bits_ ? word_bits - index_bits_ : 1;
}

ParityCache::LookupResult ParityCache::Lookup(uint32_t word_address) {
  LookupResult out;
  Line& line = lines_[IndexOf(word_address)];
  if (!line.valid || line.tag != TagOf(word_address)) {
    ++misses_;
    return out;
  }
  ++hits_;
  out.hit = true;
  out.value = line.data;
  if (ComputeParity(line) != line.parity) {
    out.parity_error = true;
  }
  return out;
}

void ParityCache::Fill(uint32_t word_address, uint32_t value) {
  Line& line = lines_[IndexOf(word_address)];
  line.valid = true;
  line.tag = TagOf(word_address);
  line.data = value;
  line.parity = ComputeParity(line);
}

void ParityCache::WriteThrough(uint32_t word_address, uint32_t value) {
  Line& line = lines_[IndexOf(word_address)];
  if (line.valid && line.tag == TagOf(word_address)) {
    line.data = value;
    line.parity = ComputeParity(line);
  }
}

void ParityCache::Flush() {
  for (Line& line : lines_) line = Line{};
}

void ParityCache::HashState(StateHasher* hasher) const {
  for (const Line& line : lines_) {
    hasher->Bool(line.valid);
    hasher->U32(line.tag);
    hasher->U32(line.data);
    hasher->Bool(line.parity);
  }
  hasher->U64(hits_);
  hasher->U64(misses_);
}

}  // namespace goofi::cpu
