// Error-detection mechanisms (EDMs) of the simulated target processor.
//
// The paper's analysis phase classifies effective errors into "errors that
// are detected by the error detection mechanisms of the target system ...
// further classified into errors detected by each of the various mechanisms"
// (§3.4). This enum is that classification axis. The Thor RD's headline
// mechanism — parity-protected instruction and data caches — is included
// alongside the usual architectural checks.
#pragma once

#include <cstdint>
#include <string>

namespace goofi::cpu {

enum class EdmType {
  kNone = 0,
  kIllegalOpcode,        ///< undefined opcode or reserved encoding bits set
  kMisalignedAccess,     ///< non-word-aligned load/store/fetch address
  kOutOfRangeAccess,     ///< address outside the mapped memory
  kMemoryProtection,     ///< write to a read-only (text) segment
  kCacheParityInstr,     ///< parity mismatch in the instruction cache
  kCacheParityData,      ///< parity mismatch in the data cache
  kArithmeticOverflow,   ///< signed overflow in add/sub/mul
  kWatchdogTimeout,      ///< the hardware watchdog expired
  kControlFlowError,     ///< branch/jump/return target outside the text segment
  kStackOverflow,        ///< stack pointer crossed the configured limit
  kSoftwareAssertion,    ///< TRAP instruction (executable assertion) fired
};

/// Stable display name ("illegal_opcode", ...). Used as the detection label
/// in LoggedSystemState and in analysis reports.
const char* EdmTypeName(EdmType type);

/// Parses the EdmTypeName form back (for analysis over the database).
EdmType EdmTypeFromName(const std::string& name);

/// A detection event raised by the target.
struct EdmEvent {
  EdmType type = EdmType::kNone;
  uint64_t cycle = 0;      ///< target cycle at detection time
  uint32_t pc = 0;         ///< program counter at detection time
  int32_t code = 0;        ///< TRAP code for kSoftwareAssertion
  std::string detail;

  bool Detected() const { return type != EdmType::kNone; }
};

/// Per-mechanism enable switches; all on by default. Benchmarks ablate these
/// to measure each mechanism's contribution to coverage.
struct EdmConfig {
  bool illegal_opcode = true;
  bool misaligned_access = true;
  bool out_of_range_access = true;
  bool memory_protection = true;
  bool cache_parity = true;
  bool arithmetic_overflow = true;
  bool watchdog = true;
  bool control_flow = true;
  bool stack_overflow = true;
  bool software_assertion = true;

  bool Enabled(EdmType type) const;
};

}  // namespace goofi::cpu
