#include "cpu/state_hash.hpp"

namespace goofi::cpu {

void StateHasher::Bytes(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = hash_;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  hash_ = h;
  if (capture_) blob_.insert(blob_.end(), bytes, bytes + size);
}

}  // namespace goofi::cpu
