#include "cpu/decode_cache.hpp"

#include <algorithm>

namespace goofi::cpu {

namespace {

// Opcodes whose execution writes the destination register `rd`. JAL links
// into the fixed link register (r14), never sp, so it is excluded.
bool WritesRd(isa::Opcode op) {
  switch (op) {
    case isa::Opcode::kAdd:
    case isa::Opcode::kSub:
    case isa::Opcode::kMul:
    case isa::Opcode::kDiv:
    case isa::Opcode::kAnd:
    case isa::Opcode::kOr:
    case isa::Opcode::kXor:
    case isa::Opcode::kSll:
    case isa::Opcode::kSrl:
    case isa::Opcode::kSra:
    case isa::Opcode::kSlt:
    case isa::Opcode::kSltu:
    case isa::Opcode::kAddi:
    case isa::Opcode::kAndi:
    case isa::Opcode::kOri:
    case isa::Opcode::kXori:
    case isa::Opcode::kSlli:
    case isa::Opcode::kSrli:
    case isa::Opcode::kLui:
    case isa::Opcode::kSlti:
    case isa::Opcode::kLdw:
      return true;
    default:
      return false;
  }
}

}  // namespace

DecodeCache::Entry DecodeCache::MakeEntry(uint32_t raw) {
  Entry entry;
  entry.raw = raw;
  entry.valid = true;
  const isa::Predecoded pre = isa::Predecode(raw);
  entry.ins = pre.ins;
  entry.fault = pre.fault;
  entry.base_cycles = pre.base_cycles;
  if (pre.fault != isa::PredecodeFault::kNone) {
    entry.flags = kIllegal;
    return entry;
  }
  uint8_t flags = 0;
  switch (pre.ins.op) {
    case isa::Opcode::kLdw:
    case isa::Opcode::kStw:
      flags |= kMem;
      break;
    case isa::Opcode::kBeq:
    case isa::Opcode::kBne:
    case isa::Opcode::kBlt:
    case isa::Opcode::kBge:
    case isa::Opcode::kBltu:
    case isa::Opcode::kBgeu:
      flags |= kBranch;
      break;
    case isa::Opcode::kJal:
      flags |= kCall;
      break;
    case isa::Opcode::kTrap:
      if (pre.ins.imm == 0) flags |= kWatchdogKick;
      break;
    default:
      break;
  }
  if (pre.ins.rd == isa::kStackPointer && WritesRd(pre.ins.op)) {
    flags |= kWritesSp;
  }
  entry.flags = flags;
  return entry;
}

void DecodeCache::Configure(uint32_t text_start, uint32_t text_end) {
  text_start_ = text_start;
  text_end_ = std::max(text_start, text_end);
  const size_t words = (text_end_ - text_start_) >> 2;
  entries_.assign(words, Entry{});
  ++stats_.flushes;
}

void DecodeCache::InvalidateWord(uint32_t address) {
  if (!Covers(address)) return;
  entries_[(address - text_start_) >> 2].valid = false;
  ++stats_.flushes;
}

void DecodeCache::InvalidateRange(uint32_t start, uint32_t end) {
  if (entries_.empty() || end <= text_start_ || start >= text_end_) return;
  const uint32_t lo = std::max(start, text_start_);
  const uint32_t hi = std::min(end, text_end_);
  for (uint32_t address = lo & ~3u; address < hi; address += 4) {
    entries_[(address - text_start_) >> 2].valid = false;
  }
  ++stats_.flushes;
}

void DecodeCache::InvalidateAll() {
  for (Entry& entry : entries_) entry.valid = false;
  ++stats_.flushes;
}

}  // namespace goofi::cpu
