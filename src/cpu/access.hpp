// Architectural read/write classification of one TRD32 instruction.
//
// Both the dynamic pre-injection analyzer (core/preinjection, which walks a
// fault-free execution) and the static workload analyzer
// (core/static_analysis, which walks the CFG) need to know which registers
// an instruction reads and writes and whether it touches data memory. The
// two must agree exactly — the static-dead ⊆ dynamic-dead invariant is
// checked against this very classification — so it lives here, next to the
// CPU that defines the semantics, instead of being duplicated per analyzer.
//
// The classification is purely architectural: addresses (which need register
// values) are left to the caller. Register lists preserve the operand order
// of the execution path (reads before writes; rs1 before rs2) so dynamic
// access timelines are stable.
#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace goofi::cpu {

struct InstructionAccess {
  /// Registers read, in operand order. Valid entries: [0, read_count).
  uint8_t reads[2] = {0, 0};
  uint8_t read_count = 0;
  /// Register written, when writes_reg is set. r0 writes are architecturally
  /// discarded but still classified as writes (matching the dynamic
  /// analyzer, which records them the same way).
  bool writes_reg = false;
  uint8_t write_reg = 0;
  /// LDW / STW data-memory traffic; the address is regs[rs1] + imm.
  bool mem_read = false;
  bool mem_write = false;
};

/// Classification of a decoded instruction. Words that fail Predecode have
/// no access at all (the CPU raises/ignores the illegal-opcode EDM without
/// executing anything) — callers handle that case before decoding.
InstructionAccess ClassifyAccess(const isa::Instruction& ins);

}  // namespace goofi::cpu
