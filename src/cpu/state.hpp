// State-element registry: the bridge between the CPU core and the scan-chain
// test logic.
//
// "The scan-chain logic ... allows access to almost all of the state elements
// of Thor RD" (paper §3.1). A StateElement is one named, bit-addressable
// storage element (a register, a latch, a cache line field). The scan module
// serializes a list of these into chains; the GUI-equivalent configuration
// layer lets users pick fault locations from this hierarchy by name.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace goofi::cpu {

struct StateElement {
  std::string name;   ///< hierarchical, e.g. "regfile.r3", "icache.line12.tag"
  std::string group;  ///< top-level group, e.g. "regfile", "icache"
  uint32_t bits = 0;  ///< width in bits (<= 64)
  bool read_only = false;  ///< "Some locations in the scan-chain are read-only
                           ///  and can therefore only be used to observe" (§3.1)
  std::function<uint64_t()> get;
  std::function<void(uint64_t)> set;  ///< null when read_only
};

/// A list of state elements with convenience lookups.
class StateRegistry {
 public:
  void Add(StateElement element) { elements_.push_back(std::move(element)); }

  const std::vector<StateElement>& elements() const { return elements_; }
  size_t size() const { return elements_.size(); }

  /// Total bit count across all elements.
  uint32_t TotalBits() const;

  /// Index of element by exact name, or -1.
  int Find(const std::string& name) const;

  /// All distinct groups in declaration order.
  std::vector<std::string> Groups() const;

 private:
  std::vector<StateElement> elements_;
};

}  // namespace goofi::cpu
