// TRD32 microprocessor simulator — the fault-injection target.
//
// The core uses a prefetch model: `ir` always holds the next instruction to
// execute (already fetched through the instruction cache) and `pc` its
// address. Step() executes `ir`, then fetches the following instruction.
// This matters for fault injection: SCIFI stops the target at a breakpoint,
// flips bits via the scan chains, and resumes — a flip in `ir` therefore
// corrupts a real in-flight instruction, exactly like a flip in a hardware
// pipeline register would.
//
// All architectural and micro-architectural state is exported through
// BuildStateRegistry() for the scan-chain logic (src/scan).
#pragma once

#include <array>
#include <cstdint>

#include "cpu/cache.hpp"
#include "cpu/decode_cache.hpp"
#include "cpu/edm.hpp"
#include "cpu/memory.hpp"
#include "cpu/state.hpp"
#include "isa/isa.hpp"

namespace goofi::cpu {

class StateHasher;

struct CpuConfig {
  uint32_t memory_bytes = 1u << 20;  ///< 1 MiB
  uint32_t icache_lines = 64;        ///< power of two
  uint32_t dcache_lines = 64;        ///< power of two
  uint32_t cache_miss_penalty = 4;   ///< extra cycles per miss
  uint64_t watchdog_limit = 0;       ///< cycles between watchdog kicks; 0 = off
  uint32_t stack_limit = 0;          ///< sp below this trips kStackOverflow; 0 = off
  EdmConfig edms;
  /// Golden-image intern pool shared between CPUs (see cpu/memory.hpp):
  /// targets built from the same config instance share one physical baseline
  /// image per workload. Null keeps baselines target-local. Purely a
  /// memory-sharing knob — simulation results are unaffected.
  std::shared_ptr<GoldenRegistry> golden_registry;
};

/// Outcome of one Step().
enum class StepOutcome {
  kOk,        ///< executed one instruction, still running
  kHalted,    ///< executed HALT (normal workload termination)
  kDetected,  ///< an EDM fired; see edm_event()
};

/// Stop conditions for Cpu::RunFastEx. A zero budget means "no limit"; all
/// budgets are absolute counter values (stop once the counter reaches the
/// value after a full step), matching the post-step checks the reference
/// Step() drivers perform.
struct RunFastRequest {
  uint64_t max_cycles = 0;   ///< stop once cycles() >= this
  uint64_t max_instret = 0;  ///< stop once instructions_retired() >= this
  uint64_t max_steps = 0;    ///< stop after this many instructions executed here
  uint32_t watch_pc = 0;     ///< stop after executing the instruction at this pc
  bool watch_pc_enabled = false;
  bool watch_mem = false;     ///< stop after any LDW/STW
  bool watch_branch = false;  ///< stop after any conditional branch
  bool watch_call = false;    ///< stop after any JAL
};

/// Result of Cpu::RunFastEx: why control returned plus the classification of
/// the last executed instruction (what DebugUnit::StepAndCheck derives by
/// re-decoding — the fast path hands it out for free).
struct RunFastResult {
  /// What a reference Step() of the last instruction would have returned.
  StepOutcome outcome = StepOutcome::kOk;
  enum class Stop {
    kOutcome,  ///< halted or detected
    kWatch,    ///< a watch_* condition matched the last executed instruction
    kCycles,   ///< max_cycles reached
    kInstret,  ///< max_instret reached
    kSteps,    ///< max_steps reached
  };
  Stop stop = Stop::kOutcome;
  uint64_t steps = 0;    ///< instructions executed by this call
  uint32_t exec_pc = 0;  ///< pc of the last executed instruction
  bool exec_mem = false;
  bool exec_branch = false;
  bool exec_call = false;
};

/// Complete execution state of a Cpu at one point in time, captured for the
/// checkpoint engine. Memory is stored as a dirty-page delta against the
/// baseline image (Memory::MarkCleanBaseline), not a full copy.
struct CpuSnapshot {
  std::array<uint32_t, isa::kNumRegisters> regs{};
  uint32_t pc = 0;
  uint32_t ir = 0;
  uint32_t next_pc = 0;
  uint32_t latch_operand_a = 0;
  uint32_t latch_operand_b = 0;
  uint32_t latch_alu_result = 0;
  uint32_t latch_mem_addr = 0;
  uint32_t latch_mem_data = 0;
  uint32_t watchdog_counter = 0;
  uint64_t cycles = 0;
  uint64_t instret = 0;
  bool halted = false;
  EdmEvent edm_event;
  uint32_t text_start = 0;
  uint32_t text_end = 0;
  ParityCache::Snapshot icache;
  ParityCache::Snapshot dcache;
  Memory::Delta memory;

  /// Approximate heap footprint, for checkpoint-store accounting.
  size_t MemoryBytes() const {
    return sizeof(CpuSnapshot) + icache.MemoryBytes() + dcache.MemoryBytes() +
           memory.MemoryBytes() + edm_event.detail.size();
  }
};

class Cpu {
 public:
  explicit Cpu(const CpuConfig& config = CpuConfig());

  // Not copyable (state registry closures bind to `this`).
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  const CpuConfig& config() const { return config_; }

  // --- program setup (host side, via test card) ---------------------------

  /// Writes `words` at `base` (byte address). The first `text_bytes` of the
  /// image are the text segment: marked read-only for CPU stores and used as
  /// the legal range for control-flow checking. `text_bytes == 0` treats the
  /// whole image as text (code-only workloads).
  util::Status LoadProgram(uint32_t base, const std::vector<uint32_t>& words,
                           uint32_t text_bytes = 0);

  /// Resets architectural state and prefetches from `entry`. Memory contents
  /// are preserved (workload download happens separately).
  void Reset(uint32_t entry);

  /// Full power-cycle: also zeroes memory, caches and statistics.
  void PowerCycle();

  /// Host-side word write that keeps the caches coherent: the test logic
  /// bypasses the cache hierarchy, so a bare Memory::HostWrite would leave
  /// stale lines behind. All host writes to a live target go through here.
  util::Status HostWriteWord(uint32_t address, uint32_t value);

  // --- execution -----------------------------------------------------------

  /// Executes exactly one instruction. Once halted or detected, further
  /// calls return the same outcome without advancing state.
  StepOutcome Step();

  /// Runs until halt/detection or until `max_cycles` elapse (0 = unbounded).
  /// Returns the final outcome; if the budget expires while running, returns
  /// StepOutcome::kOk (the GOOFI layer treats that as a timeout).
  StepOutcome Run(uint64_t max_cycles);

  /// Superblock fast path: executes through the predecoded DecodeCache with
  /// the watchdog / stack-limit / budget checks hoisted out of the per-step
  /// path (re-established at every superblock exit), producing bit-identical
  /// architectural state, counters and EDM events to an equivalent reference
  /// Step() loop. Returns on halt/detection, on any budget in `request`, or
  /// after a step matching a watch condition.
  RunFastResult RunFastEx(const RunFastRequest& request);

  /// Drop-in fast equivalent of Run(max_cycles) — same overshoot semantics
  /// (the budget is only checked after a full step completes).
  StepOutcome RunFast(uint64_t max_cycles);

  /// Predecoded-instruction cache (fast path). Exposed so mutation sites
  /// outside the core (scan-chain writes) can invalidate, and so tools can
  /// report hit/miss/flush counters next to the icache/dcache stats.
  DecodeCache& decode_cache() { return decode_cache_; }
  const DecodeCache& decode_cache() const { return decode_cache_; }

  bool halted() const { return halted_; }
  bool detected() const { return edm_event_.Detected(); }
  const EdmEvent& edm_event() const { return edm_event_; }

  // --- architectural state -------------------------------------------------

  uint32_t reg(int index) const { return regs_[static_cast<size_t>(index)]; }
  void set_reg(int index, uint32_t value) { regs_[static_cast<size_t>(index)] = value; }
  uint32_t pc() const { return pc_; }
  uint32_t ir() const { return ir_; }
  uint64_t cycles() const { return cycles_; }
  uint64_t instructions_retired() const { return instret_; }

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  ParityCache& icache() { return icache_; }
  ParityCache& dcache() { return dcache_; }

  uint32_t text_start() const { return text_start_; }
  uint32_t text_end() const { return text_end_; }

  /// Data-path latches after the last executed instruction; the debug unit's
  /// data-access/data-value comparators observe these.
  uint32_t latch_mem_addr() const { return latch_mem_addr_; }
  uint32_t latch_mem_data() const { return latch_mem_data_; }

  /// Builds the scan-visible state-element list. The returned registry holds
  /// accessors bound to this Cpu instance and must not outlive it.
  StateRegistry BuildStateRegistry();

  // --- checkpointing -------------------------------------------------------

  /// Declares the current memory contents as the delta baseline. Call once
  /// after the workload image is downloaded, before any SaveSnapshot.
  void MarkMemoryBaseline() { memory_.MarkCleanBaseline(); }

  /// Captures every execution-visible piece of state: registers, pc/ir/
  /// next_pc, data-path latches, counters, EDM/halt state, text bounds, full
  /// cache state and the memory delta.
  CpuSnapshot SaveSnapshot() const;

  /// Restores a SaveSnapshot taken on a Cpu with the same configuration and
  /// memory baseline. Afterwards execution is bit-for-bit identical to the
  /// original run from the capture point.
  void RestoreSnapshot(const CpuSnapshot& snapshot);

  /// Appends every execution-visible piece of state to a convergence hash:
  /// the same coverage as SaveSnapshot (registers, pc/ir/next_pc, latches,
  /// watchdog, cycle/instret counters, halt/EDM state, text bounds, both
  /// parity caches, canonical memory-vs-baseline delta). Two Cpus with equal
  /// digested streams execute bit-identically from here on. The DecodeCache
  /// is deliberately excluded: it is a pure performance structure with a
  /// raw-word tag check, so its contents never affect architectural results.
  /// Non-const: memory hashing scrubs dirty bits of pages that still equal
  /// the baseline (see Memory::HashCanonicalState).
  /// Precondition: MarkMemoryBaseline() was called.
  void HashExecutionState(StateHasher* hasher);

 private:
  /// Fetches the instruction at `address` into ir_ through the icache;
  /// raises EDMs on bad addresses / parity errors.
  void Fetch(uint32_t address);

  /// Raises `type` if enabled; halts the core on detection.
  void RaiseEdm(EdmType type, int32_t code, const std::string& detail);

  /// Data-path load/store through the dcache.
  bool LoadWord(uint32_t address, uint32_t* value);
  bool StoreWord(uint32_t address, uint32_t value);

  /// Control-flow check for a jump/branch/return target.
  bool CheckControlFlow(uint32_t target);

  void ExecuteInstruction();

  /// Execute paths shared between Step() and RunFastEx(): a predecoded valid
  /// instruction, and an illegal word (EDM or NOP; the error string is only
  /// built when an enabled detection consumes it).
  void ExecuteValid(const isa::Instruction& ins, uint8_t base_cycles);
  void ExecuteIllegal(uint32_t word, isa::PredecodeFault fault);

  CpuConfig config_;
  Memory memory_;
  ParityCache icache_;
  ParityCache dcache_;
  DecodeCache decode_cache_;

  std::array<uint32_t, isa::kNumRegisters> regs_{};
  uint32_t pc_ = 0;
  uint32_t ir_ = 0;          ///< prefetched instruction word (scannable)
  uint32_t next_pc_ = 0;     ///< computed during execute

  // Pipeline latches: refreshed every instruction, scannable. Flips in these
  // are usually overwritten before use — deliberately so; scan-chain studies
  // (paper ref [10]) report a large non-effective fraction from such latches.
  uint32_t latch_operand_a_ = 0;
  uint32_t latch_operand_b_ = 0;
  uint32_t latch_alu_result_ = 0;
  uint32_t latch_mem_addr_ = 0;
  uint32_t latch_mem_data_ = 0;

  uint32_t watchdog_counter_ = 0;

  uint64_t cycles_ = 0;
  uint64_t instret_ = 0;
  bool halted_ = false;
  EdmEvent edm_event_;

  uint32_t text_start_ = 0;
  uint32_t text_end_ = 0;
};

}  // namespace goofi::cpu
