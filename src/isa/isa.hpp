// TRD32: the instruction-set architecture of the simulated Thor-RD-like
// target microprocessor.
//
// The real Thor RD is a stack-oriented rad-hard CPU; GOOFI only relies on the
// target having (a) a program the user can assemble and download, (b) state
// elements reachable via scan chains and (c) error-detection mechanisms.
// TRD32 is a compact 32-bit load/store ISA chosen so that workloads are easy
// to write and the fault-injection-relevant properties are preserved:
//   - a sparse opcode space, so instruction-memory bit flips can produce
//     *illegal opcode* detections,
//   - condition-bearing ALU ops with an overflow trap,
//   - word-aligned memory accesses, so address bit flips can produce
//     *misaligned / out-of-range* detections.
//
// Encoding (32 bits):
//   [31:26] opcode
//   R-type:  [25:22] rd   [21:18] rs1  [17:14] rs2   [13:0] must-be-zero
//   I-type:  [25:22] rd   [21:18] rs1  [17:0]  imm18 (sign-extended)
//   J-type:  [25:0] imm26 (sign-extended, word offset or word address)
//
// Registers: r0..r15 (r14 = lr link register, r15 = sp stack pointer); the
// program counter is separate. All registers are 32-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/status.hpp"

namespace goofi::isa {

inline constexpr int kNumRegisters = 16;
inline constexpr int kLinkRegister = 14;
inline constexpr int kStackPointer = 15;

/// Opcode values are deliberately non-contiguous in spots (sparse space) so
/// random bit flips can yield undefined opcodes -> illegal-instruction EDM.
enum class Opcode : uint8_t {
  kNop = 0x00,

  // R-type ALU.
  kAdd = 0x04,
  kSub = 0x05,
  kMul = 0x06,
  kDiv = 0x07,
  kAnd = 0x08,
  kOr = 0x09,
  kXor = 0x0A,
  kSll = 0x0B,
  kSrl = 0x0C,
  kSra = 0x0D,
  kSlt = 0x0E,
  kSltu = 0x0F,

  // I-type ALU.
  kAddi = 0x14,
  kAndi = 0x15,
  kOri = 0x16,
  kXori = 0x17,
  kSlli = 0x18,
  kSrli = 0x19,
  kLui = 0x1A,
  kSlti = 0x1B,

  // Memory (I-type): LDW rd, [rs1+imm] / STW rd, [rs1+imm] (rd is source).
  kLdw = 0x20,
  kStw = 0x21,

  // Branches (I-type, PC-relative word offset in imm; rd/rs1 compared).
  kBeq = 0x28,
  kBne = 0x29,
  kBlt = 0x2A,
  kBge = 0x2B,
  kBltu = 0x2C,
  kBgeu = 0x2D,

  // Jumps.
  kJmp = 0x30,  ///< J-type, absolute word address
  kJal = 0x31,  ///< J-type, absolute word address, link into lr
  kJr = 0x32,   ///< R-type, jump to rs1 (RET == JR lr)

  // System.
  kHalt = 0x3C,
  kTrap = 0x3D,  ///< I-type: software trap with code imm (used by assertions)
};

/// True if `op` is a defined TRD32 opcode.
bool IsValidOpcode(uint8_t op);

enum class Format { kR, kI, kJ, kNone };

/// Static properties of an opcode.
struct OpcodeInfo {
  Opcode op;
  const char* mnemonic;
  Format format;
  int base_cycles;  ///< execution cycles excluding cache-miss penalties
};

/// Info for a valid opcode. Precondition: IsValidOpcode.
const OpcodeInfo& GetOpcodeInfo(Opcode op);

/// Info by mnemonic (case-insensitive), or nullptr.
const OpcodeInfo* FindOpcodeByMnemonic(std::string_view mnemonic);

/// A decoded instruction.
struct Instruction {
  Opcode op = Opcode::kNop;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;

  bool operator==(const Instruction&) const = default;
};

/// Encodes to the 32-bit machine word. Precondition: fields in range
/// (registers < 16, imm fits the format's field).
uint32_t Encode(const Instruction& instruction);

/// Decodes a machine word. Fails on undefined opcodes and on nonzero
/// must-be-zero fields — both are detected as illegal instructions by the
/// CPU's EDM (that is what makes instruction-bit flips observable).
util::Result<Instruction> Decode(uint32_t word);

/// Why Predecode() rejected a word (mirrors the two Decode() error classes).
enum class PredecodeFault : uint8_t {
  kNone = 0,
  kBadOpcode,     ///< undefined opcode value
  kReservedBits,  ///< must-be-zero field is nonzero
};

/// Infallible decode: either a valid instruction or a fault tag. Unlike
/// Decode(), no error string (and no allocation) is ever produced — the
/// CPU's hot loop and the decode cache predecode through this, and turn the
/// tag into the byte-identical EDM message via IllegalDecodeMessage() only
/// when an enabled detection actually consumes it.
struct Predecoded {
  Instruction ins;
  PredecodeFault fault = PredecodeFault::kNone;
  uint8_t base_cycles = 1;  ///< GetOpcodeInfo(op).base_cycles; 1 (NOP) for faults
};

Predecoded Predecode(uint32_t word);

/// The exact Decode() error message for a word Predecode() rejected.
/// Precondition: fault != kNone.
std::string IllegalDecodeMessage(uint32_t word, PredecodeFault fault);

/// Largest base_cycles over all opcodes — the per-instruction cycle upper
/// bound (excluding cache-miss penalties) used for superblock budgeting in
/// the CPU fast path. static_assert'd against the opcode table.
inline constexpr int kMaxBaseCycles = 12;

/// Immediate field limits.
inline constexpr int32_t kImm18Min = -(1 << 17);
inline constexpr int32_t kImm18Max = (1 << 17) - 1;
inline constexpr int32_t kImm26Min = -(1 << 25);
inline constexpr int32_t kImm26Max = (1 << 25) - 1;

/// Register name ("r3", with aliases "lr"/"sp"), or nullopt if out of range.
std::optional<std::string> RegisterName(int reg);

/// Parses "r0".."r15", "lr", "sp" (case-insensitive).
std::optional<int> ParseRegister(std::string_view name);

}  // namespace goofi::isa
