#include "isa/cfg.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.hpp"

namespace goofi::isa {

namespace {

bool IsBranch(Opcode op) { return op >= Opcode::kBeq && op <= Opcode::kBgeu; }

/// Whether `ins` ends a basic block (transfers or may end control flow).
bool EndsBlock(const Predecoded& decoded) {
  if (decoded.fault != PredecodeFault::kNone) return false;  // illegal: NOP-like
  switch (decoded.ins.op) {
    case Opcode::kJmp:
    case Opcode::kJal:
    case Opcode::kJr:
    case Opcode::kHalt:
      return true;
    case Opcode::kTrap:
      // TRAP n (n != 0) raises the software-assertion EDM, but with that EDM
      // disabled execution continues — both a terminator and a fall-through.
      return decoded.ins.imm != 0;
    default:
      return IsBranch(decoded.ins.op);
  }
}

}  // namespace

size_t Cfg::BlockAt(uint32_t addr) const {
  for (size_t b = 0; b < blocks_.size(); ++b) {
    if (addr >= blocks_[b].begin_addr && addr < blocks_[b].end_addr) return b;
  }
  return npos;
}

std::vector<size_t> Cfg::UnreachableBlocks() const {
  std::vector<size_t> out;
  if (unresolved_indirect_) return out;
  for (size_t b = 0; b < blocks_.size(); ++b) {
    if (!blocks_[b].reachable) out.push_back(b);
  }
  return out;
}

util::Result<Cfg> Cfg::Build(const AssembledProgram& program) {
  if (program.words.empty()) {
    return util::InvalidArgument("cfg: empty program image");
  }
  Cfg cfg;
  cfg.text_begin_ = program.base_address;
  cfg.text_end_ = program.base_address + program.size_bytes();
  const auto etext = program.symbols.find("_etext");
  if (etext != program.symbols.end() && etext->second > program.base_address &&
      etext->second <= cfg.text_end_) {
    cfg.text_end_ = etext->second;
    cfg.has_text_segment_ = true;
  } else {
    cfg.notes_.push_back(
        "no _etext symbol: whole image treated as executable text");
  }
  if (program.entry < cfg.text_begin_ || program.entry >= cfg.text_end_ ||
      program.entry % 4 != 0) {
    return util::InvalidArgument("cfg: entry point outside the text segment");
  }

  const auto word_at = [&](uint32_t addr) {
    return program.words[(addr - program.base_address) / 4];
  };
  const auto in_text = [&](uint32_t addr) {
    return addr >= cfg.text_begin_ && addr < cfg.text_end_ && addr % 4 == 0;
  };

  // --- indirect-jump resolution (link-register discipline) -----------------
  //
  // Decode every text word once, recording JAL return sites and whether any
  // non-JAL instruction can write lr. Scanning *all* text words (not just
  // reachable ones) over-approximates both sets, which is the safe
  // direction for resolving JR lr.
  std::vector<Predecoded> decoded;
  decoded.reserve((cfg.text_end_ - cfg.text_begin_) / 4);
  std::vector<uint32_t> return_sites;
  bool lr_only_written_by_jal = true;
  bool undecodable_words = false;
  for (uint32_t addr = cfg.text_begin_; addr < cfg.text_end_; addr += 4) {
    const Predecoded d = Predecode(word_at(addr));
    decoded.push_back(d);
    if (d.fault != PredecodeFault::kNone) {
      undecodable_words = true;
      continue;
    }
    const Opcode op = d.ins.op;
    if (op == Opcode::kJal) return_sites.push_back(addr + 4);
    // Writes to lr by anything but JAL break the return-site discipline.
    const OpcodeInfo& info = GetOpcodeInfo(op);
    const bool writes_rd =
        (info.format == Format::kR && op != Opcode::kJr) ||
        (info.format == Format::kI && !IsBranch(op) && op != Opcode::kStw &&
         op != Opcode::kTrap);
    if (writes_rd && d.ins.rd == kLinkRegister) lr_only_written_by_jal = false;
  }
  if (undecodable_words) {
    cfg.notes_.push_back(
        "text contains words that do not decode (treated as no-access "
        "fall-through)");
  }

  // --- leaders -------------------------------------------------------------
  std::set<uint32_t> leaders;
  leaders.insert(program.entry);
  bool degrade_all = false;
  const auto note_degrade = [&](const std::string& why) {
    if (!degrade_all) cfg.notes_.push_back(why);
    degrade_all = true;
  };
  for (uint32_t addr = cfg.text_begin_; addr < cfg.text_end_; addr += 4) {
    const Predecoded& d = decoded[(addr - cfg.text_begin_) / 4];
    if (d.fault != PredecodeFault::kNone) continue;
    const Opcode op = d.ins.op;
    if (IsBranch(op)) {
      const uint32_t target =
          addr + 4 + static_cast<uint32_t>(d.ins.imm) * 4;
      if (in_text(target)) {
        leaders.insert(target);
      } else {
        note_degrade(util::Format(
            "branch at 0x%x targets 0x%x outside text: unanalyzable edge",
            addr, target));
      }
      leaders.insert(addr + 4);
    } else if (op == Opcode::kJmp || op == Opcode::kJal) {
      const uint32_t target = static_cast<uint32_t>(d.ins.imm) * 4;
      if (in_text(target)) {
        leaders.insert(target);
      } else {
        note_degrade(util::Format(
            "jump at 0x%x targets 0x%x outside text: unanalyzable edge", addr,
            target));
      }
      if (addr + 4 < cfg.text_end_) leaders.insert(addr + 4);
    } else if (op == Opcode::kJr) {
      if (d.ins.rs1 == kLinkRegister && lr_only_written_by_jal) {
        for (uint32_t site : return_sites) {
          if (in_text(site)) leaders.insert(site);
        }
      } else {
        cfg.unresolved_indirect_ = true;
        note_degrade(util::Format(
            "indirect jump at 0x%x (jr r%d) has no static target set", addr,
            d.ins.rs1));
      }
      if (addr + 4 < cfg.text_end_) leaders.insert(addr + 4);
    } else if (op == Opcode::kHalt ||
               (op == Opcode::kTrap && d.ins.imm != 0)) {
      if (addr + 4 < cfg.text_end_) leaders.insert(addr + 4);
    }
  }

  // --- blocks --------------------------------------------------------------
  std::map<uint32_t, size_t> block_of_leader;
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    const uint32_t begin = *it;
    const auto next = std::next(it);
    const uint32_t limit = next != leaders.end() ? *next : cfg.text_end_;
    BasicBlock block;
    block.begin_addr = begin;
    uint32_t addr = begin;
    for (; addr < limit; addr += 4) {
      const Predecoded& d = decoded[(addr - cfg.text_begin_) / 4];
      block.instructions.push_back({addr, word_at(addr), d});
      if (EndsBlock(d)) {
        addr += 4;
        break;
      }
    }
    block.end_addr = addr;
    block_of_leader[begin] = cfg.blocks_.size();
    cfg.blocks_.push_back(std::move(block));
  }
  cfg.entry_block_ = block_of_leader.at(program.entry);

  // --- edges ---------------------------------------------------------------
  const auto add_edge = [&](size_t from, uint32_t to_addr, CfgEdgeKind kind) {
    const auto it = block_of_leader.find(to_addr);
    if (it == block_of_leader.end()) return;  // outside text: noted above
    cfg.blocks_[from].successors.push_back({it->second, kind});
    cfg.blocks_[it->second].predecessors.push_back(from);
  };
  for (size_t b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& block = cfg.blocks_[b];
    if (block.instructions.empty()) continue;
    const CfgInstruction& last = block.instructions.back();
    const Predecoded& d = last.decoded;
    const uint32_t next_addr = last.address + 4;
    if (d.fault != PredecodeFault::kNone) {
      add_edge(b, next_addr, CfgEdgeKind::kFallthrough);
      continue;
    }
    const Opcode op = d.ins.op;
    if (IsBranch(op)) {
      add_edge(b, last.address + 4 + static_cast<uint32_t>(d.ins.imm) * 4,
               CfgEdgeKind::kBranchTaken);
      add_edge(b, next_addr, CfgEdgeKind::kFallthrough);
    } else if (op == Opcode::kJmp) {
      add_edge(b, static_cast<uint32_t>(d.ins.imm) * 4, CfgEdgeKind::kJump);
    } else if (op == Opcode::kJal) {
      add_edge(b, static_cast<uint32_t>(d.ins.imm) * 4, CfgEdgeKind::kCall);
    } else if (op == Opcode::kJr) {
      if (d.ins.rs1 == kLinkRegister && lr_only_written_by_jal) {
        for (uint32_t site : return_sites) {
          add_edge(b, site, CfgEdgeKind::kReturn);
        }
      }
      // Unresolved JR: no edges — degrade_all below marks everything
      // reachable instead.
    } else if (op == Opcode::kHalt ||
               (op == Opcode::kTrap && d.ins.imm != 0)) {
      if (op == Opcode::kTrap) {
        // Assertion EDM may be disabled: conservative fall-through.
        add_edge(b, next_addr, CfgEdgeKind::kFallthrough);
      }
    } else {
      add_edge(b, next_addr, CfgEdgeKind::kFallthrough);
    }
  }

  // --- reachability --------------------------------------------------------
  if (degrade_all) {
    for (BasicBlock& block : cfg.blocks_) {
      block.reachable = true;
      block.degraded = true;
    }
    return cfg;
  }
  std::vector<size_t> worklist = {cfg.entry_block_};
  cfg.blocks_[cfg.entry_block_].reachable = true;
  while (!worklist.empty()) {
    const size_t b = worklist.back();
    worklist.pop_back();
    for (const CfgEdge& edge : cfg.blocks_[b].successors) {
      if (!cfg.blocks_[edge.to].reachable) {
        cfg.blocks_[edge.to].reachable = true;
        worklist.push_back(edge.to);
      }
    }
  }
  return cfg;
}

}  // namespace goofi::isa
