#include "isa/assembler.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace goofi::isa {

namespace {

// One source line reduced to its parts.
struct SourceLine {
  int number = 0;
  std::vector<std::string> labels;
  std::string mnemonic;  // lowercase; empty for label-only / directive lines
  std::vector<std::string> operands;
};

util::Status LineError(int line, const std::string& message) {
  return util::ParseError("line " + std::to_string(line) + ": " + message);
}

std::string StripComment(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == ';' || c == '#') break;
    if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') break;
    out.push_back(c);
  }
  return out;
}

/// Splits an operand list on top-level commas.
std::vector<std::string> SplitOperands(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (char c : text) {
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.emplace_back(util::Trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const auto last = util::Trim(current);
  if (!last.empty() || !out.empty()) out.emplace_back(last);
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

class Assembler {
 public:
  util::Result<AssembledProgram> Run(const std::string& source) {
    GOOFI_RETURN_IF_ERROR(Scan(source));
    GOOFI_RETURN_IF_ERROR(PassOne());
    GOOFI_RETURN_IF_ERROR(PassTwo());
    return std::move(program_);
  }

 private:
  // --- scanning ----------------------------------------------------------

  util::Status Scan(const std::string& source) {
    int number = 0;
    for (const std::string& raw : util::Split(source, '\n')) {
      ++number;
      std::string text = StripComment(raw);
      std::string_view rest = util::Trim(text);
      if (rest.empty()) continue;
      SourceLine line;
      line.number = number;
      // Leading labels: IDENT ':'
      for (;;) {
        const size_t colon = rest.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view head = util::Trim(rest.substr(0, colon));
        if (head.empty() || head.find(' ') != std::string_view::npos ||
            head.find('\t') != std::string_view::npos) {
          break;  // ':' belongs to something else (we have no such syntax, but be safe)
        }
        line.labels.emplace_back(head);
        rest = util::Trim(rest.substr(colon + 1));
      }
      if (!rest.empty()) {
        const size_t space = rest.find_first_of(" \t");
        if (space == std::string_view::npos) {
          line.mnemonic = util::ToLower(rest);
        } else {
          line.mnemonic = util::ToLower(rest.substr(0, space));
          line.operands = SplitOperands(rest.substr(space + 1));
        }
      }
      lines_.push_back(std::move(line));
    }
    return util::Status::Ok();
  }

  // --- expression evaluation ----------------------------------------------
  // Supports: numbers, symbols, unary -, and left-to-right + / -.

  util::Result<int64_t> EvalExpr(std::string_view text, int line) const {
    text = util::Trim(text);
    if (text.empty()) return LineError(line, "empty expression");
    int64_t total = 0;
    int sign = 1;
    size_t i = 0;
    bool expect_term = true;
    while (i < text.size()) {
      const char c = text[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (expect_term && (c == '-' || c == '+')) {
        if (c == '-') sign = -sign;
        ++i;
        continue;
      }
      if (!expect_term && (c == '+' || c == '-')) {
        sign = (c == '-') ? -1 : 1;
        expect_term = true;
        ++i;
        continue;
      }
      if (!expect_term) {
        return LineError(line, "unexpected character in expression: " +
                                   std::string(1, c));
      }
      // A term: number or symbol.
      size_t start = i;
      while (i < text.size() && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                                 text[i] == '_' || text[i] == '.')) {
        ++i;
      }
      if (i == start) {
        return LineError(line, "bad expression term at '" +
                                   std::string(text.substr(i)) + "'");
      }
      const std::string term(text.substr(start, i - start));
      int64_t value = 0;
      if (std::isdigit(static_cast<unsigned char>(term[0]))) {
        const auto parsed = util::ParseInt(term);
        if (!parsed) return LineError(line, "bad number: " + term);
        value = *parsed;
      } else {
        const auto it = symbols_.find(term);
        if (it == symbols_.end()) {
          return LineError(line, "undefined symbol: " + term);
        }
        value = it->second;
      }
      total += sign * value;
      sign = 1;
      expect_term = false;
    }
    if (expect_term) return LineError(line, "dangling operator in expression");
    return total;
  }

  util::Result<int> EvalRegister(const std::string& text, int line) const {
    const auto reg = ParseRegister(util::Trim(text));
    if (!reg) return LineError(line, "bad register: " + text);
    return *reg;
  }

  // Memory operand: "offset(reg)" or "[reg+offset]" or "[reg]".
  struct MemOperand {
    int reg = 0;
    int64_t offset = 0;
  };
  util::Result<MemOperand> EvalMemOperand(const std::string& text, int line) const {
    std::string_view body = util::Trim(text);
    MemOperand out;
    if (!body.empty() && body.front() == '[') {
      if (body.back() != ']') return LineError(line, "unterminated [..]: " + text);
      body = body.substr(1, body.size() - 2);
      // reg or reg+expr or reg-expr
      size_t split = body.find_first_of("+-");
      std::string_view reg_text = split == std::string_view::npos
                                      ? body
                                      : body.substr(0, split);
      auto reg = ParseRegister(util::Trim(reg_text));
      if (!reg) return LineError(line, "bad register in memory operand: " + text);
      out.reg = *reg;
      if (split != std::string_view::npos) {
        auto offset = EvalExpr(body.substr(split), line);
        if (!offset.ok()) return offset.status();
        out.offset = offset.value();
      }
      return out;
    }
    const size_t paren = body.find('(');
    if (paren == std::string_view::npos || body.back() != ')') {
      return LineError(line, "bad memory operand: " + text);
    }
    if (paren > 0) {
      auto offset = EvalExpr(body.substr(0, paren), line);
      if (!offset.ok()) return offset.status();
      out.offset = offset.value();
    }
    auto reg = ParseRegister(util::Trim(body.substr(paren + 1, body.size() - paren - 2)));
    if (!reg) return LineError(line, "bad register in memory operand: " + text);
    out.reg = *reg;
    return out;
  }

  // --- sizing ---------------------------------------------------------------

  /// Number of machine words a statement line emits.
  util::Result<int> StatementWords(const SourceLine& line) const {
    const std::string& m = line.mnemonic;
    if (m == ".word") return static_cast<int>(line.operands.size());
    if (m == ".space") {
      auto n = EvalExpr(line.operands.empty() ? "" : line.operands[0], line.number);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return LineError(line.number, ".space with negative size");
      return static_cast<int>((n.value() + 3) / 4);
    }
    if (m == "li") return 2;
    if (m == "push" || m == "pop") return 2;
    if (m == "mov" || m == "call" || m == "ret") return 1;
    if (FindOpcodeByMnemonic(m) != nullptr) return 1;
    return LineError(line.number, "unknown mnemonic: " + m);
  }

  // --- pass 1: symbol table ---------------------------------------------

  util::Status PassOne() {
    int64_t pc = 0;
    bool org_seen = false;
    for (const SourceLine& line : lines_) {
      for (const std::string& label : line.labels) {
        if (symbols_.contains(label)) {
          return LineError(line.number, "duplicate label: " + label);
        }
        symbols_[label] = pc;
      }
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic == ".equ") {
        if (line.operands.size() != 2) {
          return LineError(line.number, ".equ needs NAME, EXPR");
        }
        auto value = EvalExpr(line.operands[1], line.number);
        if (!value.ok()) return value.status();
        if (symbols_.contains(line.operands[0])) {
          return LineError(line.number, "duplicate symbol: " + line.operands[0]);
        }
        symbols_[line.operands[0]] = value.value();
        continue;
      }
      if (line.mnemonic == ".org") {
        if (line.operands.size() != 1) return LineError(line.number, ".org needs ADDR");
        auto addr = EvalExpr(line.operands[0], line.number);
        if (!addr.ok()) return addr.status();
        if (addr.value() < 0 || addr.value() % 4 != 0) {
          return LineError(line.number, ".org address must be non-negative and word-aligned");
        }
        if (!org_seen && pc == 0) {
          base_ = addr.value();
        } else if (addr.value() < pc) {
          return LineError(line.number, ".org may not move backwards");
        }
        pc = addr.value();
        org_seen = true;
        continue;
      }
      if (!org_seen && pc == 0 && base_ == 0) {
        // First emitted word defines the start of the image at address 0.
      }
      auto words = StatementWords(line);
      if (!words.ok()) return words.status();
      pc += 4 * words.value();
    }
    end_ = pc;
    return util::Status::Ok();
  }

  // --- pass 2: emission ----------------------------------------------------

  void Emit(int64_t pc, uint32_t word) {
    const size_t index = static_cast<size_t>((pc - base_) / 4);
    program_.words[index] = word;
  }

  util::Result<uint8_t> Reg(const std::string& text, int line) const {
    auto r = EvalRegister(text, line);
    if (!r.ok()) return r.status();
    return static_cast<uint8_t>(r.value());
  }

  util::Status CheckOperands(const SourceLine& line, size_t expected) const {
    if (line.operands.size() != expected) {
      return LineError(line.number,
                       line.mnemonic + " expects " + std::to_string(expected) +
                           " operands, got " + std::to_string(line.operands.size()));
    }
    return util::Status::Ok();
  }

  util::Status EmitInstruction(int64_t pc, const SourceLine& line) {
    const std::string& m = line.mnemonic;
    const OpcodeInfo* info = FindOpcodeByMnemonic(m);
    Instruction ins;
    ins.op = info->op;
    switch (info->format) {
      case Format::kNone:
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 0));
        break;
      case Format::kR: {
        if (ins.op == Opcode::kJr) {
          GOOFI_RETURN_IF_ERROR(CheckOperands(line, 1));
          auto rs1 = Reg(line.operands[0], line.number);
          if (!rs1.ok()) return rs1.status();
          ins.rs1 = rs1.value();
          break;
        }
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 3));
        auto rd = Reg(line.operands[0], line.number);
        auto rs1 = Reg(line.operands[1], line.number);
        auto rs2 = Reg(line.operands[2], line.number);
        if (!rd.ok()) return rd.status();
        if (!rs1.ok()) return rs1.status();
        if (!rs2.ok()) return rs2.status();
        ins.rd = rd.value();
        ins.rs1 = rs1.value();
        ins.rs2 = rs2.value();
        break;
      }
      case Format::kI: {
        if (ins.op == Opcode::kLdw || ins.op == Opcode::kStw) {
          GOOFI_RETURN_IF_ERROR(CheckOperands(line, 2));
          auto rd = Reg(line.operands[0], line.number);
          if (!rd.ok()) return rd.status();
          auto mem = EvalMemOperand(line.operands[1], line.number);
          if (!mem.ok()) return mem.status();
          ins.rd = rd.value();
          ins.rs1 = static_cast<uint8_t>(mem.value().reg);
          ins.imm = static_cast<int32_t>(mem.value().offset);
        } else if (ins.op >= Opcode::kBeq && ins.op <= Opcode::kBgeu) {
          GOOFI_RETURN_IF_ERROR(CheckOperands(line, 3));
          auto rd = Reg(line.operands[0], line.number);
          auto rs1 = Reg(line.operands[1], line.number);
          if (!rd.ok()) return rd.status();
          if (!rs1.ok()) return rs1.status();
          auto target = EvalExpr(line.operands[2], line.number);
          if (!target.ok()) return target.status();
          const int64_t offset = target.value() - (pc + 4);
          if (offset % 4 != 0) {
            return LineError(line.number, "branch target not word-aligned");
          }
          ins.rd = rd.value();
          ins.rs1 = rs1.value();
          ins.imm = static_cast<int32_t>(offset / 4);
        } else if (ins.op == Opcode::kTrap) {
          GOOFI_RETURN_IF_ERROR(CheckOperands(line, 1));
          auto code = EvalExpr(line.operands[0], line.number);
          if (!code.ok()) return code.status();
          ins.imm = static_cast<int32_t>(code.value());
        } else if (ins.op == Opcode::kLui) {
          GOOFI_RETURN_IF_ERROR(CheckOperands(line, 2));
          auto rd = Reg(line.operands[0], line.number);
          if (!rd.ok()) return rd.status();
          auto imm = EvalExpr(line.operands[1], line.number);
          if (!imm.ok()) return imm.status();
          ins.rd = rd.value();
          // Mask to the 18-bit field and sign-extend (see `li` expansion).
          ins.imm = (static_cast<int32_t>(imm.value() & 0x3FFFF) ^ 0x20000) -
                    0x20000;
        } else {
          GOOFI_RETURN_IF_ERROR(CheckOperands(line, 3));
          auto rd = Reg(line.operands[0], line.number);
          auto rs1 = Reg(line.operands[1], line.number);
          if (!rd.ok()) return rd.status();
          if (!rs1.ok()) return rs1.status();
          auto imm = EvalExpr(line.operands[2], line.number);
          if (!imm.ok()) return imm.status();
          ins.rd = rd.value();
          ins.rs1 = rs1.value();
          ins.imm = static_cast<int32_t>(imm.value());
        }
        if (ins.imm < kImm18Min || ins.imm > kImm18Max) {
          return LineError(line.number, "immediate out of 18-bit range");
        }
        break;
      }
      case Format::kJ: {
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 1));
        auto target = EvalExpr(line.operands[0], line.number);
        if (!target.ok()) return target.status();
        if (target.value() % 4 != 0) {
          return LineError(line.number, "jump target not word-aligned");
        }
        ins.imm = static_cast<int32_t>(target.value() / 4);
        if (ins.imm < kImm26Min || ins.imm > kImm26Max) {
          return LineError(line.number, "jump target out of range");
        }
        break;
      }
    }
    Emit(pc, Encode(ins));
    return util::Status::Ok();
  }

  util::Status PassTwo() {
    program_.base_address = static_cast<uint32_t>(base_);
    program_.words.assign(static_cast<size_t>((end_ - base_) / 4), 0);

    int64_t pc = base_;
    for (const SourceLine& line : lines_) {
      if (line.mnemonic.empty() || line.mnemonic == ".equ") continue;
      if (line.mnemonic == ".org") {
        pc = EvalExpr(line.operands[0], line.number).value();
        continue;
      }
      const std::string& m = line.mnemonic;
      if (m == ".word") {
        for (const std::string& operand : line.operands) {
          auto value = EvalExpr(operand, line.number);
          if (!value.ok()) return value.status();
          Emit(pc, static_cast<uint32_t>(value.value()));
          pc += 4;
        }
        continue;
      }
      if (m == ".space") {
        auto n = EvalExpr(line.operands[0], line.number);
        pc += 4 * ((n.value() + 3) / 4);
        continue;
      }
      // Pseudo-instructions expand here.
      if (m == "li") {
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 2));
        auto rd = Reg(line.operands[0], line.number);
        if (!rd.ok()) return rd.status();
        auto value = EvalExpr(line.operands[1], line.number);
        if (!value.ok()) return value.status();
        const uint32_t v = static_cast<uint32_t>(value.value());
        // The 18-bit lui field is stored sign-extended; mask and re-extend so
        // values with high bits set round-trip through Encode's range check.
        const int32_t hi =
            (static_cast<int32_t>((v >> 14) & 0x3FFFFu) ^ 0x20000) - 0x20000;
        Instruction lui{Opcode::kLui, rd.value(), 0, 0, hi};
        Instruction ori{Opcode::kOri, rd.value(), rd.value(), 0,
                        static_cast<int32_t>(v & 0x3FFFu)};
        Emit(pc, Encode(lui));
        pc += 4;
        Emit(pc, Encode(ori));
        pc += 4;
        continue;
      }
      if (m == "mov") {
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 2));
        auto rd = Reg(line.operands[0], line.number);
        auto rs = Reg(line.operands[1], line.number);
        if (!rd.ok()) return rd.status();
        if (!rs.ok()) return rs.status();
        Emit(pc, Encode(Instruction{Opcode::kAddi, rd.value(), rs.value(), 0, 0}));
        pc += 4;
        continue;
      }
      if (m == "call") {
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 1));
        auto target = EvalExpr(line.operands[0], line.number);
        if (!target.ok()) return target.status();
        Emit(pc, Encode(Instruction{Opcode::kJal, 0, 0, 0,
                                    static_cast<int32_t>(target.value() / 4)}));
        pc += 4;
        continue;
      }
      if (m == "ret") {
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 0));
        Emit(pc, Encode(Instruction{Opcode::kJr, 0, kLinkRegister, 0, 0}));
        pc += 4;
        continue;
      }
      if (m == "push") {
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 1));
        auto rd = Reg(line.operands[0], line.number);
        if (!rd.ok()) return rd.status();
        Emit(pc, Encode(Instruction{Opcode::kAddi, kStackPointer, kStackPointer, 0, -4}));
        pc += 4;
        Emit(pc, Encode(Instruction{Opcode::kStw, rd.value(), kStackPointer, 0, 0}));
        pc += 4;
        continue;
      }
      if (m == "pop") {
        GOOFI_RETURN_IF_ERROR(CheckOperands(line, 1));
        auto rd = Reg(line.operands[0], line.number);
        if (!rd.ok()) return rd.status();
        Emit(pc, Encode(Instruction{Opcode::kLdw, rd.value(), kStackPointer, 0, 0}));
        pc += 4;
        Emit(pc, Encode(Instruction{Opcode::kAddi, kStackPointer, kStackPointer, 0, 4}));
        pc += 4;
        continue;
      }
      GOOFI_RETURN_IF_ERROR(EmitInstruction(pc, line));
      pc += 4;
    }

    for (const auto& [name, value] : symbols_) {
      program_.symbols[name] = static_cast<uint32_t>(value);
    }
    const auto start = symbols_.find("_start");
    program_.entry = start != symbols_.end()
                         ? static_cast<uint32_t>(start->second)
                         : program_.base_address;
    return util::Status::Ok();
  }

  std::vector<SourceLine> lines_;
  std::map<std::string, int64_t> symbols_;
  int64_t base_ = 0;
  int64_t end_ = 0;
  AssembledProgram program_;
};

}  // namespace

util::Result<uint32_t> AssembledProgram::Symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) return util::NotFound("undefined symbol: " + name);
  return it->second;
}

util::Result<AssembledProgram> Assemble(const std::string& source) {
  Assembler assembler;
  return assembler.Run(source);
}

std::string Disassemble(uint32_t word) {
  auto decoded = Decode(word);
  if (!decoded.ok()) {
    return util::Format(".word 0x%08x ; illegal", word);
  }
  const Instruction& ins = decoded.value();
  const OpcodeInfo& info = GetOpcodeInfo(ins.op);
  auto reg = [](uint8_t r) { return *RegisterName(r); };
  switch (info.format) {
    case Format::kNone:
      return info.mnemonic;
    case Format::kR:
      if (ins.op == Opcode::kJr) {
        return util::Format("jr %s", reg(ins.rs1).c_str());
      }
      return util::Format("%s %s, %s, %s", info.mnemonic, reg(ins.rd).c_str(),
                          reg(ins.rs1).c_str(), reg(ins.rs2).c_str());
    case Format::kI:
      if (ins.op == Opcode::kLdw || ins.op == Opcode::kStw) {
        return util::Format("%s %s, %d(%s)", info.mnemonic, reg(ins.rd).c_str(),
                            ins.imm, reg(ins.rs1).c_str());
      }
      if (ins.op == Opcode::kTrap) {
        return util::Format("trap %d", ins.imm);
      }
      if (ins.op == Opcode::kLui) {
        return util::Format("lui %s, %d", reg(ins.rd).c_str(), ins.imm);
      }
      if (ins.op >= Opcode::kBeq && ins.op <= Opcode::kBgeu) {
        return util::Format("%s %s, %s, pc%+d", info.mnemonic, reg(ins.rd).c_str(),
                            reg(ins.rs1).c_str(), (ins.imm + 1) * 4);
      }
      return util::Format("%s %s, %s, %d", info.mnemonic, reg(ins.rd).c_str(),
                          reg(ins.rs1).c_str(), ins.imm);
    case Format::kJ:
      return util::Format("%s 0x%x", info.mnemonic,
                          static_cast<uint32_t>(ins.imm) * 4);
  }
  return "?";
}

std::string DisassembleProgram(const AssembledProgram& program) {
  std::string out;
  for (size_t i = 0; i < program.words.size(); ++i) {
    const uint32_t address = program.base_address + static_cast<uint32_t>(i) * 4;
    out += util::Format("%08x:  %08x  %s\n", address, program.words[i],
                        Disassemble(program.words[i]).c_str());
  }
  return out;
}

}  // namespace goofi::isa
