// Two-pass assembler for TRD32 workloads.
//
// GOOFI workloads (the programs executed on the target during a campaign)
// are written in TRD32 assembly. The assembler produces the memory image the
// pre-runtime SWIFI technique mutates and the symbol table GOOFI uses to
// place breakpoints "by analysing the workload code" (paper §3.3) and to
// locate the environment-simulator I/O words (§3.2).
//
// Syntax:
//   ; comment (also # and //)
//   .org  ADDR          set the location counter (word-aligned byte address)
//   .word EXPR, ...     emit literal words
//   .space N            reserve N bytes (zero-filled, word-aligned)
//   .equ  NAME, EXPR    define a constant
//   label:              define a label (byte address)
//   mnemonic operands   e.g.  addi r1, r0, 5   /   ldw r2, 8(r1)
//
// Pseudo-instructions:
//   li rd, EXPR         load 32-bit immediate (always lui+ori pair)
//   mov rd, rs          addi rd, rs, 0
//   call LABEL          jal LABEL
//   ret                 jr lr
//   push rd / pop rd    stack ops via sp
//
// Branches take a label (or expression) and are encoded PC-relative; jumps
// take absolute word addresses.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "util/status.hpp"

namespace goofi::isa {

/// The assembled memory image plus metadata.
struct AssembledProgram {
  uint32_t base_address = 0;        ///< byte address of words[0]
  std::vector<uint32_t> words;      ///< contiguous image (gaps zero-filled)
  std::map<std::string, uint32_t> symbols;  ///< label/.equ -> value
  uint32_t entry = 0;               ///< `_start` if defined, else base

  /// Byte size of the image.
  uint32_t size_bytes() const {
    return static_cast<uint32_t>(words.size()) * 4;
  }

  /// Value of a symbol, or error.
  util::Result<uint32_t> Symbol(const std::string& name) const;
};

/// Assembles `source`. Errors carry a line number.
util::Result<AssembledProgram> Assemble(const std::string& source);

/// Disassembles one machine word ("add r1, r2, r3" / ".word 0x… ; illegal").
std::string Disassemble(uint32_t word);

/// Disassembles a whole program with addresses, for execution traces.
std::string DisassembleProgram(const AssembledProgram& program);

}  // namespace goofi::isa
