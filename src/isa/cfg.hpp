// Control-flow graph over an assembled TRD32 workload.
//
// The static workload analyzer (core/static_analysis) needs the program's
// structure *before* any execution: basic blocks, the edges between them and
// a conservative account of everything the decoder cannot pin down. This
// module builds exactly that from an isa::AssembledProgram, reusing the
// Predecode() tables so the CFG sees the same instruction semantics as the
// CPU's decode path.
//
// Conservatism contract (DESIGN.md "Static analysis invariants"):
//   - Direct branches/jumps have exact, assemble-time targets.
//   - JR is indirect. The builder resolves it only under the link-register
//     discipline: when rs1 is lr and no instruction in the text segment
//     other than JAL can write lr, the possible targets are the return
//     sites of every JAL (a superset of the dynamically possible ones).
//     Any other JR leaves the graph `unresolved_indirect`, and every block
//     is conservatively marked reachable and degraded.
//   - A direct control transfer outside the text segment (executing data)
//     also degrades the whole graph: the instruction stream past that edge
//     is unknowable.
//   - Words in the text range that do not predecode (data interleaved with
//     code) execute as an illegal instruction: no register or memory
//     traffic, and — with the illegal-opcode EDM disabled — a fall-through.
//     The CFG models them that way, which is conservative for both cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/isa.hpp"
#include "util/status.hpp"

namespace goofi::isa {

/// Why a successor edge exists.
enum class CfgEdgeKind : uint8_t {
  kFallthrough,  ///< next instruction (incl. branch-not-taken, trap continue)
  kBranchTaken,  ///< conditional branch target
  kJump,         ///< JMP target
  kCall,         ///< JAL target
  kReturn,       ///< JR resolved via the link-register discipline
};

struct CfgEdge {
  size_t to = 0;  ///< index into Cfg::blocks()
  CfgEdgeKind kind = CfgEdgeKind::kFallthrough;
};

/// One decoded instruction of a basic block.
struct CfgInstruction {
  uint32_t address = 0;  ///< byte address
  uint32_t word = 0;     ///< raw machine word
  Predecoded decoded;    ///< Predecode(word); fault != kNone for data words
};

struct BasicBlock {
  uint32_t begin_addr = 0;  ///< byte address of the first instruction
  uint32_t end_addr = 0;    ///< one past the last instruction's address
  std::vector<CfgInstruction> instructions;
  std::vector<CfgEdge> successors;
  std::vector<size_t> predecessors;
  /// Reachable from the entry block (or from an unanalyzable edge — an
  /// unresolved graph marks everything reachable).
  bool reachable = false;
  /// Reachable via an unanalyzable edge: dataflow clients must treat the
  /// block's state as "everything live".
  bool degraded = false;
};

class Cfg {
 public:
  /// Builds the CFG of `program`'s text segment ([base_address, _etext), or
  /// the whole image when no _etext symbol exists). Fails only on malformed
  /// inputs (empty image, text range outside the image).
  static util::Result<Cfg> Build(const AssembledProgram& program);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  size_t entry_block() const { return entry_block_; }

  uint32_t text_begin() const { return text_begin_; }
  uint32_t text_end() const { return text_end_; }
  /// Whether the text segment is distinct from data (an _etext symbol past
  /// the base). Without it the whole image executes and nothing is
  /// write-protected, so self-modifying stores are possible.
  bool has_text_segment() const { return has_text_segment_; }

  /// At least one indirect jump could not be bounded; every block is marked
  /// reachable + degraded.
  bool unresolved_indirect() const { return unresolved_indirect_; }

  /// Human-readable notes on every conservative decision taken (unresolved
  /// JR, control transfer outside text, undecodable words, ...).
  const std::vector<std::string>& notes() const { return notes_; }

  /// Block index containing byte address `addr`, or npos.
  size_t BlockAt(uint32_t addr) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Blocks in the text segment never reached from the entry — the
  /// unreachable-code lint. Empty when the graph is unresolved (everything
  /// is conservatively reachable then).
  std::vector<size_t> UnreachableBlocks() const;

 private:
  std::vector<BasicBlock> blocks_;
  size_t entry_block_ = 0;
  uint32_t text_begin_ = 0;
  uint32_t text_end_ = 0;
  bool has_text_segment_ = false;
  bool unresolved_indirect_ = false;
  std::vector<std::string> notes_;
};

}  // namespace goofi::isa
