#include "isa/isa.hpp"

#include <array>
#include <cassert>

#include "util/strings.hpp"

namespace goofi::isa {

namespace {

constexpr OpcodeInfo kOpcodeTable[] = {
    {Opcode::kNop, "nop", Format::kNone, 1},
    {Opcode::kAdd, "add", Format::kR, 1},
    {Opcode::kSub, "sub", Format::kR, 1},
    {Opcode::kMul, "mul", Format::kR, 3},
    {Opcode::kDiv, "div", Format::kR, 12},
    {Opcode::kAnd, "and", Format::kR, 1},
    {Opcode::kOr, "or", Format::kR, 1},
    {Opcode::kXor, "xor", Format::kR, 1},
    {Opcode::kSll, "sll", Format::kR, 1},
    {Opcode::kSrl, "srl", Format::kR, 1},
    {Opcode::kSra, "sra", Format::kR, 1},
    {Opcode::kSlt, "slt", Format::kR, 1},
    {Opcode::kSltu, "sltu", Format::kR, 1},
    {Opcode::kAddi, "addi", Format::kI, 1},
    {Opcode::kAndi, "andi", Format::kI, 1},
    {Opcode::kOri, "ori", Format::kI, 1},
    {Opcode::kXori, "xori", Format::kI, 1},
    {Opcode::kSlli, "slli", Format::kI, 1},
    {Opcode::kSrli, "srli", Format::kI, 1},
    {Opcode::kLui, "lui", Format::kI, 1},
    {Opcode::kSlti, "slti", Format::kI, 1},
    {Opcode::kLdw, "ldw", Format::kI, 2},
    {Opcode::kStw, "stw", Format::kI, 2},
    {Opcode::kBeq, "beq", Format::kI, 2},
    {Opcode::kBne, "bne", Format::kI, 2},
    {Opcode::kBlt, "blt", Format::kI, 2},
    {Opcode::kBge, "bge", Format::kI, 2},
    {Opcode::kBltu, "bltu", Format::kI, 2},
    {Opcode::kBgeu, "bgeu", Format::kI, 2},
    {Opcode::kJmp, "jmp", Format::kJ, 2},
    {Opcode::kJal, "jal", Format::kJ, 2},
    {Opcode::kJr, "jr", Format::kR, 2},
    {Opcode::kHalt, "halt", Format::kNone, 1},
    {Opcode::kTrap, "trap", Format::kI, 2},
};

// Opcode byte -> table slot, or -1.
constexpr std::array<int, 64> MakeOpcodeIndex() {
  std::array<int, 64> index{};
  index.fill(-1);
  for (size_t i = 0; i < std::size(kOpcodeTable); ++i) {
    index[static_cast<uint8_t>(kOpcodeTable[i].op)] = static_cast<int>(i);
  }
  return index;
}

// Built at compile time so the hot decode path has no static-init guard.
constexpr std::array<int, 64> kOpcodeIndex = MakeOpcodeIndex();

constexpr int MaxBaseCyclesInTable() {
  int max = 0;
  for (const OpcodeInfo& info : kOpcodeTable) {
    if (info.base_cycles > max) max = info.base_cycles;
  }
  return max;
}

// The fast path's superblock cycle budgeting assumes this bound; keep the
// header constant in lockstep with the table.
static_assert(MaxBaseCyclesInTable() == kMaxBaseCycles);

int32_t SignExtend(uint32_t value, int bits) {
  const uint32_t sign = 1u << (bits - 1);
  return static_cast<int32_t>((value ^ sign) - sign);
}

}  // namespace

bool IsValidOpcode(uint8_t op) { return op < 64 && kOpcodeIndex[op] >= 0; }

const OpcodeInfo& GetOpcodeInfo(Opcode op) {
  const int slot = kOpcodeIndex[static_cast<uint8_t>(op)];
  assert(slot >= 0);
  return kOpcodeTable[slot];
}

const OpcodeInfo* FindOpcodeByMnemonic(std::string_view mnemonic) {
  for (const OpcodeInfo& info : kOpcodeTable) {
    if (util::EqualsIgnoreCase(info.mnemonic, mnemonic)) return &info;
  }
  return nullptr;
}

uint32_t Encode(const Instruction& instruction) {
  const OpcodeInfo& info = GetOpcodeInfo(instruction.op);
  uint32_t word = static_cast<uint32_t>(instruction.op) << 26;
  assert(instruction.rd < kNumRegisters);
  assert(instruction.rs1 < kNumRegisters);
  assert(instruction.rs2 < kNumRegisters);
  switch (info.format) {
    case Format::kR:
      word |= static_cast<uint32_t>(instruction.rd) << 22;
      word |= static_cast<uint32_t>(instruction.rs1) << 18;
      word |= static_cast<uint32_t>(instruction.rs2) << 14;
      break;
    case Format::kI:
      assert(instruction.imm >= kImm18Min && instruction.imm <= kImm18Max);
      word |= static_cast<uint32_t>(instruction.rd) << 22;
      word |= static_cast<uint32_t>(instruction.rs1) << 18;
      word |= static_cast<uint32_t>(instruction.imm) & 0x3FFFFu;
      break;
    case Format::kJ:
      assert(instruction.imm >= kImm26Min && instruction.imm <= kImm26Max);
      word |= static_cast<uint32_t>(instruction.imm) & 0x3FFFFFFu;
      break;
    case Format::kNone:
      break;
  }
  return word;
}

Predecoded Predecode(uint32_t word) {
  Predecoded out;
  const uint8_t op = static_cast<uint8_t>(word >> 26);
  if (!IsValidOpcode(op)) {
    out.fault = PredecodeFault::kBadOpcode;
    return out;
  }
  out.ins.op = static_cast<Opcode>(op);
  const OpcodeInfo& info = kOpcodeTable[kOpcodeIndex[op]];
  out.base_cycles = static_cast<uint8_t>(info.base_cycles);
  switch (info.format) {
    case Format::kR:
      out.ins.rd = (word >> 22) & 0xF;
      out.ins.rs1 = (word >> 18) & 0xF;
      out.ins.rs2 = (word >> 14) & 0xF;
      if ((word & 0x3FFF) != 0) {
        out = Predecoded{};
        out.fault = PredecodeFault::kReservedBits;
      }
      break;
    case Format::kI:
      out.ins.rd = (word >> 22) & 0xF;
      out.ins.rs1 = (word >> 18) & 0xF;
      out.ins.imm = SignExtend(word & 0x3FFFFu, 18);
      break;
    case Format::kJ:
      out.ins.imm = SignExtend(word & 0x3FFFFFFu, 26);
      break;
    case Format::kNone:
      if ((word & 0x3FFFFFFu) != 0) {
        out = Predecoded{};
        out.fault = PredecodeFault::kReservedBits;
      }
      break;
  }
  return out;
}

std::string IllegalDecodeMessage(uint32_t word, PredecodeFault fault) {
  assert(fault != PredecodeFault::kNone);
  if (fault == PredecodeFault::kBadOpcode) {
    return util::Format("illegal opcode 0x%02x in word 0x%08x",
                        static_cast<uint8_t>(word >> 26), word);
  }
  return util::Format("illegal encoding (nonzero reserved bits) 0x%08x", word);
}

util::Result<Instruction> Decode(uint32_t word) {
  const Predecoded pre = Predecode(word);
  if (pre.fault != PredecodeFault::kNone) {
    return util::ParseError(IllegalDecodeMessage(word, pre.fault));
  }
  return pre.ins;
}

std::optional<std::string> RegisterName(int reg) {
  if (reg < 0 || reg >= kNumRegisters) return std::nullopt;
  if (reg == kLinkRegister) return "lr";
  if (reg == kStackPointer) return "sp";
  // Tag-then-append: `"r" + std::to_string(reg)` trips GCC 12's -Wrestrict
  // false positive (PR105329) when the rvalue operator+ inlines.
  std::string name = "r";
  name += std::to_string(reg);
  return name;
}

std::optional<int> ParseRegister(std::string_view name) {
  if (util::EqualsIgnoreCase(name, "lr")) return kLinkRegister;
  if (util::EqualsIgnoreCase(name, "sp")) return kStackPointer;
  if (name.size() >= 2 && (name[0] == 'r' || name[0] == 'R')) {
    const auto n = util::ParseInt(name.substr(1));
    if (n && *n >= 0 && *n < kNumRegisters) return static_cast<int>(*n);
  }
  return std::nullopt;
}

}  // namespace goofi::isa
