#include "env/workloads.hpp"

namespace goofi::env {

namespace {

const char* const kBubbleSort = R"(
; Bubble sort of N words ascending, then checksum into `result`.
.equ N, 16
_start:
    li   r1, data
    li   r2, N
outer:
    addi r3, r0, 0          ; i = 0
    addi r9, r0, 0          ; swapped = 0
    addi r4, r2, -1         ; limit = N-1
inner:
    bge  r3, r4, outer_check
    slli r5, r3, 2
    add  r5, r5, r1
    ldw  r6, [r5]
    ldw  r7, [r5+4]
    bge  r7, r6, noswap
    stw  r7, [r5]
    stw  r6, [r5+4]
    addi r9, r0, 1
noswap:
    addi r3, r3, 1
    jmp  inner
outer_check:
    bne  r9, r0, outer
    addi r3, r0, 0          ; checksum pass
    addi r8, r0, 0
sumloop:
    bge  r3, r2, done
    slli r5, r3, 2
    add  r5, r5, r1
    ldw  r6, [r5]
    add  r8, r8, r6
    addi r3, r3, 1
    jmp  sumloop
done:
    li   r5, result
    stw  r8, [r5]
    halt
_etext:
data:
    .word 170, 45, 75, 90, 802, 24, 2, 66, 15, 123, 4, 58, 99, 7, 300, 1
result:
    .word 0
)";

const char* const kMatMul = R"(
; C = A * B for 3x3 integer matrices, then checksum of C into `result`.
.equ DIM, 3
_start:
    li   r1, mat_a
    li   r2, mat_b
    li   r3, mat_c
    addi r4, r0, 0          ; i
iloop:
    addi r5, r0, 0          ; j
jloop:
    addi r6, r0, 0          ; k
    addi r7, r0, 0          ; acc
kloop:
    ; a[i][k]
    li   r8, DIM
    mul  r9, r4, r8
    add  r9, r9, r6
    slli r9, r9, 2
    add  r9, r9, r1
    ldw  r10, [r9]
    ; b[k][j]
    mul  r9, r6, r8
    add  r9, r9, r5
    slli r9, r9, 2
    add  r9, r9, r2
    ldw  r11, [r9]
    mul  r10, r10, r11
    add  r7, r7, r10
    addi r6, r6, 1
    li   r8, DIM
    blt  r6, r8, kloop
    ; c[i][j] = acc
    mul  r9, r4, r8
    add  r9, r9, r5
    slli r9, r9, 2
    add  r9, r9, r3
    stw  r7, [r9]
    addi r5, r5, 1
    blt  r5, r8, jloop
    addi r4, r4, 1
    blt  r4, r8, iloop
    ; checksum of C
    addi r4, r0, 0
    addi r7, r0, 0
csum:
    slli r9, r4, 2
    add  r9, r9, r3
    ldw  r10, [r9]
    add  r7, r7, r10
    addi r4, r4, 1
    addi r8, r0, 9
    blt  r4, r8, csum
    li   r9, result
    stw  r7, [r9]
    halt
_etext:
mat_a:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9
mat_b:
    .word 9, 8, 7, 6, 5, 4, 3, 2, 1
mat_c:
    .word 0, 0, 0, 0, 0, 0, 0, 0, 0
result:
    .word 0
)";

const char* const kFibonacci = R"(
; result = fib(24) computed iteratively (fits comfortably in 32 bits).
.equ STEPS, 24
_start:
    addi r1, r0, 0          ; fib(0)
    addi r2, r0, 1          ; fib(1)
    addi r3, r0, 0          ; counter
    li   r4, STEPS
floop:
    bge  r3, r4, fdone
    add  r5, r1, r2
    mov  r1, r2
    mov  r2, r5
    addi r3, r3, 1
    jmp  floop
fdone:
    li   r5, result
    stw  r1, [r5]
    halt
_etext:
result:
    .word 0
)";

const char* const kChecksum = R"(
; Rotate-xor checksum over a 32-word block into `result`.
.equ N, 32
_start:
    li   r1, block
    li   r2, N
    addi r3, r0, 0          ; index
    addi r4, r0, 0          ; acc
    addi r7, r0, 1
    addi r8, r0, 31
csloop:
    bge  r3, r2, csdone
    slli r5, r3, 2
    add  r5, r5, r1
    ldw  r6, [r5]
    ; acc = rotl(acc, 1) ^ word
    sll  r9, r4, r7
    srl  r10, r4, r8
    or   r4, r9, r10
    xor  r4, r4, r6
    addi r3, r3, 1
    jmp  csloop
csdone:
    li   r5, result
    stw  r4, [r5]
    halt
_etext:
block:
    .word 0x12345678, 0x9abcdef0, 0x0fedcba9, 0x87654321
    .word 0x11111111, 0x22222222, 0x33333333, 0x44444444
    .word 0xdeadbeef, 0xcafebabe, 0x8badf00d, 0xfeedface
    .word 0x55aa55aa, 0xaa55aa55, 0x0000ffff, 0xffff0000
    .word 0x13579bdf, 0x2468ace0, 0xfdb97531, 0x0eca8642
    .word 0x01010101, 0x10101010, 0x0f0f0f0f, 0xf0f0f0f0
    .word 0x7fffffff, 0x80000000, 0x00000001, 0xfffffffe
    .word 0x31415926, 0x27182818, 0x16180339, 0x14142135
result:
    .word 0
)";

const char* const kStrSearch = R"(
; Counts occurrences of a 4-word needle in a 24-word haystack (naive scan);
; result = count * 256 + index of first match (or 0xFF if none).
.equ HLEN, 24
.equ NLEN, 4
_start:
    li   r1, haystack
    li   r2, needle
    addi r3, r0, 0          ; i
    addi r8, r0, 0          ; count
    addi r9, r0, 0xFF       ; first index
    li   r4, HLEN-NLEN
outer_s:
    bge  r3, r4, done_s
    addi r5, r0, 0          ; j
match_s:
    slli r6, r3, 2
    slli r7, r5, 2
    add  r6, r6, r7
    add  r6, r6, r1
    ldw  r10, [r6]          ; haystack[i+j]
    slli r7, r5, 2
    add  r7, r7, r2
    ldw  r11, [r7]          ; needle[j]
    bne  r10, r11, nomatch_s
    addi r5, r5, 1
    addi r12, r0, NLEN
    blt  r5, r12, match_s
    ; full match
    addi r8, r8, 1
    addi r12, r0, 0xFF
    bne  r9, r12, nomatch_s
    mov  r9, r3
nomatch_s:
    addi r3, r3, 1
    jmp  outer_s
done_s:
    slli r8, r8, 8
    or   r8, r8, r9
    li   r5, result
    stw  r8, [r5]
    halt
_etext:
haystack:
    .word 3, 1, 4, 1, 5, 9, 2, 6, 7, 2, 1, 8
    .word 7, 2, 1, 8, 2, 8, 4, 5, 7, 2, 1, 8
needle:
    .word 7, 2, 1, 8
result:
    .word 0
)";

const char* const kQueue = R"(
; Exercises the stack: pushes squares of 1..12 through a recursive-ish call
; chain, pops them back and folds into a checksum. Faults in sp/lr or stack
; memory surface here.
.equ N, 12
_start:
    addi r1, r0, 1          ; i
    li   r2, N
push_loop:
    bge  r1, r2, pop_phase
    mul  r3, r1, r1
    call square_adjust
    push r3
    addi r1, r1, 1
    jmp  push_loop
square_adjust:
    ; r3 += 3 (via a call to exercise lr)
    addi r3, r3, 3
    ret
pop_phase:
    addi r4, r0, 0          ; acc
    addi r1, r0, 1
pop_loop:
    bge  r1, r2, done_q
    pop  r5
    ; acc = rotl(acc, 3) ^ value  (overflow-free mixing)
    addi r6, r0, 3
    sll  r7, r4, r6
    addi r6, r0, 29
    srl  r10, r4, r6
    or   r4, r7, r10
    xor  r4, r4, r5
    addi r1, r1, 1
    jmp  pop_loop
done_q:
    li   r5, result
    stw  r4, [r5]
    halt
_etext:
result:
    .word 0
)";

// Control-application I/O convention: the host writes sensor words at
// `sensors`, reads the actuator word at `actuator`, once per execution of
// `loop_end`. TRAP 0 kicks the hardware watchdog every iteration.
const char* const kPendulumPd = R"(
; PD controller for the linearized inverted pendulum.
; u = -(Kp*theta + Kd*omega), all values Q8.8.
.equ IOBASE, 0xF000
.equ KP, 1024               ; 4.0
.equ KD, 512                ; 2.0
_start:
    li   r10, IOBASE
    addi r12, r0, 8         ; Q8.8 post-multiply shift
loop:
    ldw  r1, [r10]          ; theta
    ldw  r2, [r10+4]        ; omega
    li   r3, KP
    mul  r4, r1, r3
    li   r3, KD
    mul  r5, r2, r3
    add  r4, r4, r5
    sra  r4, r4, r12
    sub  r4, r0, r4
    stw  r4, [r10+8]        ; u
    trap 0
loop_end:
    jmp  loop
_etext:
)";

const char* const kPendulumPdAssert = R"(
; PD pendulum controller with executable assertions + best-effort recovery
; (companion paper, DSN 2001 ref [12]). Recovery takes two forms:
;   - state re-initialization: the I/O base and shift registers are reloaded
;     every iteration, so corruption of controller configuration is flushed
;     within one control period;
;   - output assertion: the actuator command is range-checked against a
;     tight envelope derived from fault-free operation and clamped.
.equ IOBASE, 0xF000
.equ KP, 1024
.equ KD, 512
.equ UMAX, 2048             ; 8.0 in Q8.8 — tight fault-free envelope
_start:
loop:
    li   r10, IOBASE        ; best-effort recovery: re-derive configuration
    addi r12, r0, 8
    ldw  r1, [r10]
    ldw  r2, [r10+4]
    li   r3, KP
    mul  r4, r1, r3
    li   r3, KD
    mul  r5, r2, r3
    add  r4, r4, r5
    sra  r4, r4, r12
    sub  r4, r0, r4
    ; assertion: u <= UMAX, recover by clamping
    li   r6, UMAX
    blt  r4, r6, chk_lo
    mov  r4, r6
chk_lo:
    ; assertion: u >= -UMAX
    sub  r7, r0, r6
    bge  r4, r7, assert_ok
    mov  r4, r7
assert_ok:
    stw  r4, [r10+8]
    trap 0
loop_end:
    jmp  loop
_etext:
)";

const char* const kPendulumPdTrap = R"(
; PD pendulum controller with fail-stop executable assertions: a violated
; range check raises TRAP 7 (software_assertion EDM) instead of recovering.
.equ IOBASE, 0xF000
.equ KP, 1024
.equ KD, 512
.equ UMAX, 16384
_start:
    li   r10, IOBASE
    addi r12, r0, 8
loop:
    ldw  r1, [r10]
    ldw  r2, [r10+4]
    li   r3, KP
    mul  r4, r1, r3
    li   r3, KD
    mul  r5, r2, r3
    add  r4, r4, r5
    sra  r4, r4, r12
    sub  r4, r0, r4
    li   r6, UMAX
    blt  r4, r6, chk_lo
    trap 7
chk_lo:
    sub  r7, r0, r6
    bge  r4, r7, assert_ok
    trap 7
assert_ok:
    stw  r4, [r10+8]
    trap 0
loop_end:
    jmp  loop
_etext:
)";

const char* const kCruisePi = R"(
; PI controller for the cruise-control plant. Sensor word is the speed
; error (setpoint - v); actuator is the drive command, clamped to [0, 100].
.equ IOBASE, 0xF000
.equ KP, 512                ; 2.0
.equ KI, 16                 ; 0.0625
.equ UMAX, 25600            ; 100.0
_start:
    li   r10, IOBASE
    addi r12, r0, 8
    addi r2, r0, 0          ; integral
loop:
    ldw  r1, [r10]          ; error
    add  r2, r2, r1
    li   r3, KP
    mul  r4, r1, r3
    li   r3, KI
    mul  r5, r2, r3
    add  r4, r4, r5
    sra  r4, r4, r12
    bge  r4, r0, upos
    addi r4, r0, 0
upos:
    li   r6, UMAX
    blt  r4, r6, ustore
    mov  r4, r6
ustore:
    stw  r4, [r10+4]
    trap 0
loop_end:
    jmp  loop
_etext:
)";

const char* const kSparseTable = R"(
; Sums the first N entries of an over-provisioned 64-word table, PASSES
; times over, into `result`. The table tail (words N..63) is never read and
; registers r9..r15 are never touched, so the static analyzer
; (core/static_analysis) can prove both — this is the demonstration workload
; for static fault-space pruning, and the pass loop makes each experiment
; expensive enough (~5.5k instructions) that pruning pays in wall-clock, not
; just in counters. Both loop guards are *unsigned* branches on purpose:
; signed-branch interval refinement bails once widening pushes a counter
; past 2^31, but bgeu/bltu refine any interval, keeping the table loads
; bounded. The first `addi r8` is a deliberate dead write exercising the
; write-never-read lint.
.equ N, 12
.equ PASSES, 64
_start:
    li   r1, table
    li   r2, N
    addi r4, r0, 0          ; acc
    addi r7, r0, 0          ; pass counter
    addi r8, r0, 77         ; dead write: overwritten below, never read
    li   r8, PASSES
outer:
    addi r3, r0, 0          ; index
tloop:
    bgeu r3, r2, tnext
    slli r5, r3, 2
    add  r5, r5, r1
    ldw  r6, [r5]
    add  r4, r4, r6
    addi r3, r3, 1
    jmp  tloop
tnext:
    addi r7, r7, 1
    bltu r7, r8, outer
    li   r5, result
    stw  r4, [r5]
    halt
_etext:
table:
    .word 12, 7, 3, 900, 41, 5, 27, 63, 8, 19, 250, 11
    .word 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
    .word 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
    .word 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
    .word 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
result:
    .word 0
)";

WorkloadSpec Batch(const char* name, const char* description, const char* source,
                   uint32_t result_words) {
  WorkloadSpec spec;
  spec.name = name;
  spec.description = description;
  spec.source = source;
  spec.result_symbol = "result";
  spec.result_words = result_words;
  return spec;
}

WorkloadSpec Control(const char* name, const char* description,
                     const char* source, const char* environment,
                     uint32_t input_words, uint32_t output_words) {
  WorkloadSpec spec;
  spec.name = name;
  spec.description = description;
  spec.source = source;
  spec.infinite_loop = true;
  spec.iteration_symbol = "loop_end";
  spec.input_symbol = "IOBASE";
  spec.output_symbol = "IOBASE";  // actuators follow the sensor words
  spec.input_words = input_words;
  spec.output_words = output_words;
  spec.environment = environment;
  return spec;
}

std::vector<WorkloadSpec> BuildAll() {
  std::vector<WorkloadSpec> all;
  all.push_back(Batch("bubblesort", "sort 16 words and checksum", kBubbleSort, 1));
  all.push_back(Batch("matmul", "3x3 integer matrix product", kMatMul, 1));
  all.push_back(Batch("fibonacci", "iterative fib(24)", kFibonacci, 1));
  all.push_back(Batch("checksum", "rotate-xor checksum of 32 words", kChecksum, 1));
  all.push_back(Batch("strsearch", "naive 4-word needle search", kStrSearch, 1));
  all.push_back(Batch("queue", "stack push/pop with call chain", kQueue, 1));
  all.push_back(Batch("sparse_table",
                      "sum 12 of 64 table words (static-prune demo)",
                      kSparseTable, 1));
  all.push_back(Control("pendulum_pd", "PD control of inverted pendulum",
                        kPendulumPd, "inverted_pendulum", 2, 1));
  all.push_back(Control("pendulum_pd_assert",
                        "PD pendulum with clamping assertions (recovery)",
                        kPendulumPdAssert, "inverted_pendulum", 2, 1));
  all.push_back(Control("pendulum_pd_trap",
                        "PD pendulum with fail-stop assertions",
                        kPendulumPdTrap, "inverted_pendulum", 2, 1));
  all.push_back(Control("cruise_pi", "PI cruise control", kCruisePi,
                        "cruise_control", 1, 1));
  return all;
}

const std::vector<WorkloadSpec>& AllWorkloads() {
  static const std::vector<WorkloadSpec> all = BuildAll();
  return all;
}

}  // namespace

std::vector<std::string> WorkloadNames() {
  std::vector<std::string> names;
  names.reserve(AllWorkloads().size());
  for (const WorkloadSpec& spec : AllWorkloads()) names.push_back(spec.name);
  return names;
}

util::Result<WorkloadSpec> GetWorkload(const std::string& name) {
  for (const WorkloadSpec& spec : AllWorkloads()) {
    if (spec.name == name) return spec;
  }
  return util::NotFound("no workload named " + name);
}

}  // namespace goofi::env
