#include "env/environment.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace goofi::env {

InvertedPendulum::InvertedPendulum(const Params& params) : params_(params) {
  Reset();
}

void InvertedPendulum::Reset() {
  theta_ = params_.initial_theta;
  omega_ = 0.0;
}

std::vector<uint32_t> InvertedPendulum::Sense() const {
  std::vector<uint32_t> inputs(num_inputs());
  inputs[0] = static_cast<uint32_t>(ToFixed(theta_));
  inputs[1] = static_cast<uint32_t>(ToFixed(omega_));
  return inputs;
}

std::vector<uint32_t> InvertedPendulum::Exchange(
    const std::vector<uint32_t>& outputs) {
  assert(outputs.size() == num_outputs());
  // Saturate the actuator the way a physical torque source would; an
  // injected fault can make the controller emit huge commands, but the plant
  // only sees the achievable range.
  const double u = std::clamp(FromFixed(WordToFixed(outputs[0])), -64.0, 64.0);
  const double accel = params_.instability * theta_ + params_.gain * u;
  omega_ += accel * params_.dt;
  theta_ += omega_ * params_.dt;
  return Sense();
}

bool InvertedPendulum::Failed() const {
  return std::fabs(theta_) > params_.fail_theta || !std::isfinite(theta_);
}

CruiseControl::CruiseControl(const Params& params) : params_(params) { Reset(); }

void CruiseControl::Reset() {
  speed_ = 0.0;
  steps_ = 0;
}

std::vector<uint32_t> CruiseControl::Sense() const {
  std::vector<uint32_t> inputs(num_inputs());
  inputs[0] = static_cast<uint32_t>(ToFixed(params_.setpoint - speed_));
  return inputs;
}

std::vector<uint32_t> CruiseControl::Exchange(
    const std::vector<uint32_t>& outputs) {
  assert(outputs.size() == num_outputs());
  const double u = std::clamp(FromFixed(WordToFixed(outputs[0])), 0.0, 100.0);
  speed_ += (-params_.drag * speed_ + params_.drive * u) * params_.dt;
  ++steps_;
  return Sense();
}

bool CruiseControl::Failed() const {
  if (steps_ < params_.settle_steps) return !std::isfinite(speed_);
  return std::fabs(speed_ - params_.setpoint) > params_.fail_band ||
         !std::isfinite(speed_);
}

}  // namespace goofi::env
