// Built-in target workloads.
//
// The paper's campaigns run a user-chosen workload on the target: either a
// program "that terminates by itself or is executed as an infinite loop"
// exchanging data with an environment simulator each iteration (§3.2).
// This library provides both kinds as TRD32 assembly sources, together with
// the metadata GOOFI needs: where results live, where the environment I/O
// words are, and which label marks a loop-iteration boundary.
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace goofi::env {

struct WorkloadSpec {
  std::string name;
  std::string description;
  std::string source;  ///< TRD32 assembly

  /// Batch workloads: symbol + word count of the final results compared
  /// against the reference run to detect escaped (value-failure) errors.
  std::string result_symbol;
  uint32_t result_words = 0;

  /// Control workloads: run as an infinite loop.
  bool infinite_loop = false;
  std::string iteration_symbol;  ///< label executed once per loop iteration
  std::string input_symbol;      ///< env sensor words (written by the host)
  std::string output_symbol;     ///< env actuator words (read by the host)
  uint32_t input_words = 0;
  uint32_t output_words = 0;
  std::string environment;       ///< environment simulator name, if any
};

/// Names of all built-in workloads.
std::vector<std::string> WorkloadNames();

/// Looks up a built-in workload by name.
util::Result<WorkloadSpec> GetWorkload(const std::string& name);

// Batch workloads (terminate with HALT):
//   "bubblesort"  - sorts 16 words, stores checksum
//   "matmul"      - 3x3 integer matrix product + checksum
//   "fibonacci"   - 24 iterations, stores fib(24)
//   "checksum"    - rotate-xor checksum over a 32-word block
//   "strsearch"   - naive multi-word substring search
//   "queue"       - stack push/pop through a call chain (sp/lr faults)
//   "sparse_table"- sums 12 of 64 table words; the never-read tail and the
//                   untouched upper registers demonstrate static pruning
// Control workloads (infinite loop + environment):
//   "pendulum_pd"         - PD controller for the inverted pendulum
//   "pendulum_pd_assert"  - same, with executable assertions that clamp the
//                           actuator command (best-effort recovery, ref [12])
//   "pendulum_pd_trap"    - assertions signal via TRAP (fail-stop) instead
//   "cruise_pi"           - PI controller for the cruise-control plant

}  // namespace goofi::env
