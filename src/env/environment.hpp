// Environment simulators: the box labelled "Workload Environment Simulator"
// in the paper's Figure 1.
//
// "During each loop iteration, data may be exchanged with a user provided
// environment simulator emulating the target system environment" (§3.2).
// An EnvironmentSimulator holds plant state on the host; at every workload
// loop-iteration boundary GOOFI reads the workload's actuator words from
// target memory, advances the plant, and writes fresh sensor words back.
//
// Values cross the boundary as Q8.8 signed fixed point (the workload is
// integer-only TRD32 assembly).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace goofi::env {

/// Q8.8 conversion helpers shared by plants and analysis code.
inline int32_t ToFixed(double value) {
  return static_cast<int32_t>(value * 256.0);
}
inline double FromFixed(int32_t fixed) {
  return static_cast<double>(fixed) / 256.0;
}
/// Sign-extends a 32-bit word read from target memory.
inline int32_t WordToFixed(uint32_t word) { return static_cast<int32_t>(word); }

class EnvironmentSimulator {
 public:
  virtual ~EnvironmentSimulator() = default;

  virtual std::string Name() const = 0;

  /// Restores the initial plant state.
  virtual void Reset() = 0;

  /// One exchange at a loop-iteration boundary: consumes the workload's
  /// actuator outputs, advances the plant by one control period, returns the
  /// new sensor inputs. Sizes must match num_outputs()/num_inputs().
  virtual std::vector<uint32_t> Exchange(const std::vector<uint32_t>& outputs) = 0;

  /// Current sensor words without advancing the plant (the "initial input
  /// data" downloaded before the workload starts).
  virtual std::vector<uint32_t> Sense() const = 0;

  virtual size_t num_inputs() const = 0;   ///< sensor words fed to the target
  virtual size_t num_outputs() const = 0;  ///< actuator words read from it

  /// Whether the plant has left its safe operating envelope (used to detect
  /// escaped errors that manifest as physical failures).
  virtual bool Failed() const = 0;

  /// Full plant state as raw doubles, for checkpointing. RestoreState with a
  /// SaveState vector must reproduce the plant bit-for-bit (doubles are
  /// copied, never recomputed), so a warm-started control loop behaves
  /// identically to the original run.
  virtual std::vector<double> SaveState() const = 0;
  virtual void RestoreState(const std::vector<double>& state) = 0;

  /// Allocation-reusing SaveState variant for the convergence-hash hot path
  /// (called at every checkpoint boundary). Same coverage contract as
  /// SaveState; plants with heavy state can override to append in place.
  virtual void SaveStateInto(std::vector<double>* out) const {
    *out = SaveState();
  }
};

/// Linearized inverted pendulum: unstable second-order plant
///   theta'' = kA * theta + kB * u  (per control period dt)
/// Sensors: [theta, omega] in Q8.8. Actuator: [u] in Q8.8.
/// Fails when |theta| exceeds the fall-over threshold.
class InvertedPendulum final : public EnvironmentSimulator {
 public:
  struct Params {
    double initial_theta = 0.10;  ///< rad
    double dt = 0.01;             ///< control period, seconds
    double instability = 2.0;     ///< kA
    double gain = 1.0;            ///< kB
    double fail_theta = 1.0;      ///< |theta| beyond this = fallen
  };

  InvertedPendulum() : InvertedPendulum(Params{}) {}
  explicit InvertedPendulum(const Params& params);

  std::string Name() const override { return "inverted_pendulum"; }
  void Reset() override;
  std::vector<uint32_t> Exchange(const std::vector<uint32_t>& outputs) override;
  std::vector<uint32_t> Sense() const override;
  size_t num_inputs() const override { return 2; }
  size_t num_outputs() const override { return 1; }
  bool Failed() const override;
  std::vector<double> SaveState() const override { return {theta_, omega_}; }
  void RestoreState(const std::vector<double>& state) override {
    theta_ = state.at(0);
    omega_ = state.at(1);
  }

  double theta() const { return theta_; }
  double omega() const { return omega_; }

 private:
  Params params_;
  double theta_ = 0.0;
  double omega_ = 0.0;
};

/// DC-motor cruise control: stable first-order plant tracking a set-point.
///   v' = -kDrag * v + kDrive * u
/// Sensors: [v_error] (set-point minus speed) in Q8.8. Actuator: [u] Q8.8.
/// Fails when |v - setpoint| grows beyond the failure band after the
/// settling time.
class CruiseControl final : public EnvironmentSimulator {
 public:
  struct Params {
    double setpoint = 20.0;   ///< m/s
    double dt = 0.05;
    double drag = 0.2;
    double drive = 1.0;
    double fail_band = 10.0;
    int settle_steps = 100;
  };

  CruiseControl() : CruiseControl(Params{}) {}
  explicit CruiseControl(const Params& params);

  std::string Name() const override { return "cruise_control"; }
  void Reset() override;
  std::vector<uint32_t> Exchange(const std::vector<uint32_t>& outputs) override;
  std::vector<uint32_t> Sense() const override;
  size_t num_inputs() const override { return 1; }
  size_t num_outputs() const override { return 1; }
  bool Failed() const override;
  std::vector<double> SaveState() const override {
    return {speed_, static_cast<double>(steps_)};
  }
  void RestoreState(const std::vector<double>& state) override {
    speed_ = state.at(0);
    steps_ = static_cast<int>(state.at(1));
  }

  double speed() const { return speed_; }

 private:
  Params params_;
  double speed_ = 0.0;
  int steps_ = 0;
};

}  // namespace goofi::env
