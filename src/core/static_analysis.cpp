#include "core/static_analysis.hpp"

#include <algorithm>
#include <array>

#include "cpu/access.hpp"
#include "util/strings.hpp"

namespace goofi::core {

namespace {

using isa::Opcode;

// --- interval domain ---------------------------------------------------------
//
// Each register holds an interval of its *uint32 value* ([0, 2^32)). Any
// operation whose result could wrap, or whose signed reinterpretation could
// differ from the unsigned one, goes straight to Top — precision only has to
// survive the address arithmetic the workloads actually use (lui/li bases,
// addi/add/slli/mul-by-constant indexing, branch-guarded loop counters).

constexpr int64_t kUMax = 0xFFFFFFFF;
constexpr int64_t kSMax = 0x7FFFFFFF;
/// Joins at one block before widening kicks in (then bounds jump to 0/kUMax).
constexpr int kWidenAfter = 8;
/// A bounded load/store window wider than this degrades instead of marking.
constexpr int64_t kMaxAccessSpanBytes = 1 << 16;

struct Interval {
  int64_t lo = 0;
  int64_t hi = kUMax;

  bool IsConst() const { return lo == hi; }
  bool operator==(const Interval&) const = default;
};

constexpr Interval TopI() { return {0, kUMax}; }
constexpr Interval ConstI(int64_t v) { return {v, v}; }

/// Interval from raw bounds; wrap-capable results degrade to Top.
Interval ClampI(int64_t lo, int64_t hi) {
  if (lo < 0 || hi > kUMax || lo > hi) return TopI();
  return {lo, hi};
}

struct IntervalState {
  bool bottom = true;  ///< no path reaches this point
  std::array<Interval, isa::kNumRegisters> regs{};

  bool operator==(const IntervalState&) const = default;
};

Interval RegOf(const IntervalState& state, int reg) {
  if (reg == 0) return ConstI(0);  // hardwired zero
  return state.regs[static_cast<size_t>(reg)];
}

void SetReg(IntervalState* state, int reg, const Interval& value) {
  if (reg == 0) return;  // writes to r0 are discarded
  state->regs[static_cast<size_t>(reg)] = value;
}

/// Abstract transfer of one decoded instruction (address needed for JAL).
void ApplyInstruction(IntervalState* state, const isa::CfgInstruction& ci) {
  if (ci.decoded.fault != isa::PredecodeFault::kNone) return;  // no access
  const isa::Instruction& ins = ci.decoded.ins;
  const Interval a = RegOf(*state, ins.rs1);
  const Interval b = RegOf(*state, ins.rs2);
  const int64_t imm = ins.imm;
  switch (ins.op) {
    case Opcode::kAdd:
      SetReg(state, ins.rd, ClampI(a.lo + b.lo, a.hi + b.hi));
      break;
    case Opcode::kSub:
      SetReg(state, ins.rd, ClampI(a.lo - b.hi, a.hi - b.lo));
      break;
    case Opcode::kMul: {
      // Nonnegative signed operands, product within int32: no wrap, and the
      // extremes are the products of the bounds.
      int64_t lo = 0;
      int64_t hi = 0;
      if (a.hi <= kSMax && b.hi <= kSMax &&
          !__builtin_mul_overflow(a.lo, b.lo, &lo) &&
          !__builtin_mul_overflow(a.hi, b.hi, &hi) && hi <= kSMax) {
        SetReg(state, ins.rd, {lo, hi});
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    }
    case Opcode::kDiv:
      if (b.IsConst() && b.lo > 0 && a.hi <= kSMax) {
        SetReg(state, ins.rd, {a.lo / b.lo, a.hi / b.lo});
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    case Opcode::kAnd:
      if (a.IsConst() && b.IsConst()) {
        SetReg(state, ins.rd, ConstI(a.lo & b.lo));
      } else {
        SetReg(state, ins.rd, {0, std::min(a.hi, b.hi)});
      }
      break;
    case Opcode::kOr:
      if (a.IsConst() && b.IsConst()) {
        SetReg(state, ins.rd, ConstI(a.lo | b.lo));
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    case Opcode::kXor:
      if (a.IsConst() && b.IsConst()) {
        SetReg(state, ins.rd, ConstI(a.lo ^ b.lo));
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
      SetReg(state, ins.rd, TopI());  // register-count shifts: not tracked
      break;
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kSlti:
      SetReg(state, ins.rd, {0, 1});
      break;
    case Opcode::kAddi:
      SetReg(state, ins.rd, ClampI(a.lo + imm, a.hi + imm));
      break;
    case Opcode::kAndi:
      if (a.IsConst()) {
        SetReg(state, ins.rd,
               ConstI(static_cast<uint32_t>(a.lo) & static_cast<uint32_t>(imm)));
      } else if (imm >= 0) {
        SetReg(state, ins.rd, {0, std::min(a.hi, imm)});
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    case Opcode::kOri:
      if (a.IsConst()) {
        SetReg(state, ins.rd,
               ConstI(static_cast<uint32_t>(a.lo) | static_cast<uint32_t>(imm)));
      } else if (imm == 0) {
        SetReg(state, ins.rd, a);
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    case Opcode::kXori:
      if (a.IsConst()) {
        SetReg(state, ins.rd,
               ConstI(static_cast<uint32_t>(a.lo) ^ static_cast<uint32_t>(imm)));
      } else if (imm == 0) {
        SetReg(state, ins.rd, a);
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    case Opcode::kSlli: {
      const int64_t shift = imm & 31;
      if (a.hi <= (kUMax >> shift)) {
        SetReg(state, ins.rd, {a.lo << shift, a.hi << shift});
      } else {
        SetReg(state, ins.rd, TopI());
      }
      break;
    }
    case Opcode::kSrli: {
      const int64_t shift = imm & 31;
      SetReg(state, ins.rd, {a.lo >> shift, a.hi >> shift});
      break;
    }
    case Opcode::kLui:
      SetReg(state, ins.rd, ConstI(static_cast<uint32_t>(ins.imm) << 14));
      break;
    case Opcode::kLdw:
      SetReg(state, ins.rd, TopI());  // loaded values are not tracked
      break;
    case Opcode::kJal:
      SetReg(state, isa::kLinkRegister, ConstI(ci.address + 4));
      break;
    default:
      break;  // stores, branches, jumps, nop, halt, trap: no register write
  }
}

bool IsBranchOp(Opcode op) {
  return op >= Opcode::kBeq && op <= Opcode::kBgeu;
}

/// Narrows `state` along a branch edge. `taken` selects the branch-taken
/// condition; infeasible edges return bottom. Signed compares refine only
/// when both operands provably lie in [0, 2^31), where the signed and
/// unsigned orders agree with the interval model.
IntervalState RefineBranch(const IntervalState& state,
                           const isa::Instruction& ins, bool taken) {
  Interval lhs = RegOf(state, ins.rd);
  Interval rhs = RegOf(state, ins.rs1);
  const bool is_signed = ins.op == Opcode::kBlt || ins.op == Opcode::kBge;
  if (is_signed && (lhs.hi > kSMax || rhs.hi > kSMax)) return state;

  enum class Rel { kEq, kNe, kLt, kGe };
  Rel rel;
  switch (ins.op) {
    case Opcode::kBeq:
      rel = taken ? Rel::kEq : Rel::kNe;
      break;
    case Opcode::kBne:
      rel = taken ? Rel::kNe : Rel::kEq;
      break;
    case Opcode::kBlt:
    case Opcode::kBltu:
      rel = taken ? Rel::kLt : Rel::kGe;
      break;
    default:  // kBge / kBgeu
      rel = taken ? Rel::kGe : Rel::kLt;
      break;
  }

  switch (rel) {
    case Rel::kEq:
      lhs = {std::max(lhs.lo, rhs.lo), std::min(lhs.hi, rhs.hi)};
      rhs = lhs;
      break;
    case Rel::kNe:
      // Only const-vs-boundary exclusion is expressible with intervals.
      if (rhs.IsConst()) {
        if (lhs.IsConst() && lhs.lo == rhs.lo) {
          lhs = {1, 0};  // empty
        } else if (lhs.lo == rhs.lo) {
          ++lhs.lo;
        } else if (lhs.hi == rhs.lo) {
          --lhs.hi;
        }
      } else if (lhs.IsConst()) {
        if (rhs.lo == lhs.lo) {
          ++rhs.lo;
        } else if (rhs.hi == lhs.lo) {
          --rhs.hi;
        }
      }
      break;
    case Rel::kLt:  // lhs < rhs
      lhs.hi = std::min(lhs.hi, rhs.hi - 1);
      rhs.lo = std::max(rhs.lo, lhs.lo + 1);
      break;
    case Rel::kGe:  // lhs >= rhs
      lhs.lo = std::max(lhs.lo, rhs.lo);
      rhs.hi = std::min(rhs.hi, lhs.hi);
      break;
  }
  if (lhs.lo > lhs.hi || rhs.lo > rhs.hi) return IntervalState{};  // bottom
  IntervalState out = state;
  SetReg(&out, ins.rd, lhs);
  SetReg(&out, ins.rs1, rhs);
  return out;
}

class IntervalClient {
 public:
  using State = IntervalState;

  explicit IntervalClient(const isa::Cfg& cfg) : cfg_(cfg) {
    // Widening points: blocks entered by an address-order back edge. Every
    // CFG cycle contains at least one (a cycle must jump backwards in address
    // space somewhere), which is all termination needs — widening at every
    // join would also destroy branch-guard refinements of loop *bodies* (the
    // refined interval re-joins the widened one and gets widened again).
    loop_head_.resize(cfg.blocks().size(), false);
    for (size_t b = 0; b < cfg.blocks().size(); ++b) {
      for (size_t p : cfg.blocks()[b].predecessors) {
        if (cfg.blocks()[p].begin_addr >= cfg.blocks()[b].begin_addr) {
          loop_head_[b] = true;
        }
      }
    }
  }

  bool forward() const { return true; }
  State Bottom() const { return State{}; }

  State Initial(size_t) const {
    // Reset() zeroes r1..r14 and points sp at the top of memory; sp is left
    // at Top so the analysis needs no memory-size parameter (stack traffic
    // then degrades, which sp-free workloads never notice).
    State state;
    state.bottom = false;
    state.regs.fill(ConstI(0));
    state.regs[isa::kStackPointer] = TopI();
    return state;
  }

  State Transfer(size_t block, const State& input) const {
    if (input.bottom) return input;
    State state = input;
    for (const isa::CfgInstruction& ci : cfg_.blocks()[block].instructions) {
      ApplyInstruction(&state, ci);
    }
    return state;
  }

  bool Join(State* into, const State& from, size_t block, int visits) const {
    if (from.bottom) return false;
    if (into->bottom) {
      *into = from;
      return true;
    }
    bool changed = false;
    for (size_t r = 0; r < into->regs.size(); ++r) {
      Interval merged = {std::min(into->regs[r].lo, from.regs[r].lo),
                         std::max(into->regs[r].hi, from.regs[r].hi)};
      if (visits >= kWidenAfter && loop_head_[block]) {
        if (merged.lo < into->regs[r].lo) merged.lo = 0;
        if (merged.hi > into->regs[r].hi) merged.hi = kUMax;
      }
      if (merged != into->regs[r]) {
        into->regs[r] = merged;
        changed = true;
      }
    }
    return changed;
  }

  State EdgeState(size_t from, const isa::CfgEdge& edge,
                  const State& state) const {
    if (state.bottom) return state;
    const isa::BasicBlock& block = cfg_.blocks()[from];
    if (block.instructions.empty()) return state;
    const isa::CfgInstruction& last = block.instructions.back();
    if (last.decoded.fault != isa::PredecodeFault::kNone ||
        !IsBranchOp(last.decoded.ins.op)) {
      return state;
    }
    if (edge.kind == isa::CfgEdgeKind::kBranchTaken) {
      return RefineBranch(state, last.decoded.ins, /*taken=*/true);
    }
    if (edge.kind == isa::CfgEdgeKind::kFallthrough) {
      return RefineBranch(state, last.decoded.ins, /*taken=*/false);
    }
    return state;
  }

 private:
  const isa::Cfg& cfg_;
  std::vector<bool> loop_head_;
};

// --- register liveness (backward) --------------------------------------------

uint16_t ReadMaskOf(const cpu::InstructionAccess& access) {
  uint16_t mask = 0;
  for (uint8_t i = 0; i < access.read_count; ++i) {
    mask |= static_cast<uint16_t>(1u << access.reads[i]);
  }
  return mask;
}

class LivenessClient {
 public:
  using State = uint16_t;

  explicit LivenessClient(const isa::Cfg& cfg) : cfg_(cfg) {}

  bool forward() const { return false; }
  State Bottom() const { return 0; }
  /// Nothing is architecturally live past a terminator. (The final scan
  /// image does observe every register; the prune predicate therefore uses
  /// never-*accessed*, not liveness — this client feeds the report + lint.)
  State Initial(size_t) const { return 0; }

  State Transfer(size_t block, const State& output) const {
    State live = output;
    const std::vector<isa::CfgInstruction>& instructions =
        cfg_.blocks()[block].instructions;
    for (auto it = instructions.rbegin(); it != instructions.rend(); ++it) {
      if (it->decoded.fault != isa::PredecodeFault::kNone) continue;
      const cpu::InstructionAccess access = cpu::ClassifyAccess(it->decoded.ins);
      if (access.writes_reg) {
        live = static_cast<State>(live & ~(1u << access.write_reg));
      }
      live |= ReadMaskOf(access);
    }
    return live;
  }

  bool Join(State* into, const State& from, size_t, int) const {
    const State merged = *into | from;
    if (merged == *into) return false;
    *into = merged;
    return true;
  }

  State EdgeState(size_t, const isa::CfgEdge&, const State& state) const {
    return state;
  }

 private:
  const isa::Cfg& cfg_;
};

// --- reaching definitions (forward) ------------------------------------------

struct DefSite {
  size_t block = 0;
  size_t ins_index = 0;
  int reg = 0;
  uint32_t address = 0;
  bool lint_eligible = true;  ///< JAL's lr write is bookkeeping, not data
};

class ReachingDefsClient {
 public:
  using State = std::vector<uint64_t>;

  ReachingDefsClient(const isa::Cfg& cfg, std::vector<DefSite> defs)
      : cfg_(cfg), defs_(std::move(defs)) {
    words_ = (defs_.size() + 63) / 64;
    reg_masks_.fill(State(words_, 0));
    def_of_.resize(cfg.blocks().size());
    for (size_t d = 0; d < defs_.size(); ++d) {
      reg_masks_[static_cast<size_t>(defs_[d].reg)][d / 64] |= 1ull << (d % 64);
      def_of_[defs_[d].block][defs_[d].ins_index] = d;
    }
  }

  bool forward() const { return true; }
  State Bottom() const { return State(words_, 0); }
  State Initial(size_t) const { return State(words_, 0); }

  State Transfer(size_t block, const State& input) const {
    State state = input;
    const std::vector<isa::CfgInstruction>& instructions =
        cfg_.blocks()[block].instructions;
    for (size_t i = 0; i < instructions.size(); ++i) {
      ApplyDef(block, i, instructions[i], &state);
    }
    return state;
  }

  bool Join(State* into, const State& from, size_t, int) const {
    bool changed = false;
    for (size_t w = 0; w < words_; ++w) {
      const uint64_t merged = (*into)[w] | from[w];
      if (merged != (*into)[w]) {
        (*into)[w] = merged;
        changed = true;
      }
    }
    return changed;
  }

  State EdgeState(size_t, const isa::CfgEdge&, const State& state) const {
    return state;
  }

  /// Kill/gen of one instruction, shared with the post-fixpoint use pass.
  void ApplyDef(size_t block, size_t ins_index, const isa::CfgInstruction& ci,
                State* state) const {
    if (ci.decoded.fault != isa::PredecodeFault::kNone) return;
    const cpu::InstructionAccess access = cpu::ClassifyAccess(ci.decoded.ins);
    if (!access.writes_reg || access.write_reg == 0) return;
    const auto it = def_of_[block].find(ins_index);
    if (it == def_of_[block].end()) return;
    const State& kill = reg_masks_[access.write_reg];
    for (size_t w = 0; w < words_; ++w) (*state)[w] &= ~kill[w];
    (*state)[it->second / 64] |= 1ull << (it->second % 64);
  }

  const std::vector<DefSite>& defs() const { return defs_; }
  const State& reg_mask(int reg) const {
    return reg_masks_[static_cast<size_t>(reg)];
  }
  size_t words() const { return words_; }

 private:
  const isa::Cfg& cfg_;
  std::vector<DefSite> defs_;
  size_t words_ = 0;
  std::array<State, isa::kNumRegisters> reg_masks_;
  std::vector<std::map<size_t, size_t>> def_of_;  ///< per block: ins -> def id
};

}  // namespace

// --- construction ------------------------------------------------------------

util::Result<std::unique_ptr<StaticAnalysis>> StaticAnalysis::Build(
    const std::string& workload_name) {
  auto spec = env::GetWorkload(workload_name);
  if (!spec.ok()) return spec.status();
  return BuildFromSpec(spec.value());
}

util::Result<std::unique_ptr<StaticAnalysis>> StaticAnalysis::BuildFromSpec(
    const env::WorkloadSpec& workload) {
  auto assembled = isa::Assemble(workload.source);
  if (!assembled.ok()) return assembled.status();
  auto cfg = isa::Cfg::Build(assembled.value());
  if (!cfg.ok()) return cfg.status();

  std::unique_ptr<StaticAnalysis> analysis(new StaticAnalysis());
  analysis->workload_name_ = workload.name;
  analysis->program_ = std::move(assembled).value();
  analysis->cfg_ = std::move(cfg).value();
  analysis->notes_ = analysis->cfg_.notes();

  analysis->AnalyzeRegisters();
  analysis->AnalyzeMemory(workload);
  analysis->LintUnreachable();
  analysis->LintDeadWrites();
  return analysis;
}

void StaticAnalysis::AnalyzeRegisters() {
  const std::vector<isa::BasicBlock>& blocks = cfg_.blocks();
  const bool degraded =
      std::any_of(blocks.begin(), blocks.end(),
                  [](const isa::BasicBlock& b) { return b.degraded; });
  if (degraded) {
    registers_degraded_ = true;
    reg_accessed_ = 0xFFFF;
    live_in_.assign(blocks.size(), 0xFFFF);
    live_out_.assign(blocks.size(), 0xFFFF);
    return;
  }

  for (const isa::BasicBlock& block : blocks) {
    if (!block.reachable) continue;
    for (const isa::CfgInstruction& ci : block.instructions) {
      if (ci.decoded.fault != isa::PredecodeFault::kNone) continue;
      const cpu::InstructionAccess access = cpu::ClassifyAccess(ci.decoded.ins);
      reg_accessed_ |= ReadMaskOf(access);
      if (access.writes_reg) {
        reg_accessed_ |= static_cast<uint16_t>(1u << access.write_reg);
      }
    }
  }

  const LivenessClient client(cfg_);
  const auto flow = SolveDataflow(cfg_, client);
  solver_steps_ += flow.steps;
  if (!flow.converged) {
    // Unreachable for a finite lattice, but never risk an unsound report.
    registers_degraded_ = true;
    reg_accessed_ = 0xFFFF;
    live_in_.assign(blocks.size(), 0xFFFF);
    live_out_.assign(blocks.size(), 0xFFFF);
    notes_.push_back("liveness solver did not converge: registers degraded");
    return;
  }
  live_in_ = flow.in;
  live_out_ = flow.out;
}

void StaticAnalysis::AnalyzeMemory(const env::WorkloadSpec& workload) {
  const size_t image_words = program_.words.size();
  word_read_.assign(image_words, false);
  word_written_.assign(image_words, false);

  const auto degrade_everything = [&](const std::string& why) {
    notes_.push_back(why);
    memory_degraded_ = true;
    registers_degraded_ = true;
    reg_accessed_ = 0xFFFF;
    std::fill(live_in_.begin(), live_in_.end(), 0xFFFF);
    std::fill(live_out_.begin(), live_out_.end(), 0xFFFF);
    word_read_.assign(image_words, true);
    word_written_.assign(image_words, true);
  };
  const auto degrade_memory = [&](const std::string& why) {
    notes_.push_back(why);
    memory_degraded_ = true;
    word_read_.assign(image_words, true);
    word_written_.assign(image_words, true);
  };
  // Marks every word a byte in [lo, hi] can belong to, clamped to the image
  // (accesses outside it — e.g. the stack — have no image word to classify).
  const auto mark = [&](std::vector<bool>* set, int64_t lo, int64_t hi) {
    const int64_t base = program_.base_address;
    lo = std::max(lo, base);
    hi = std::min(hi, base + static_cast<int64_t>(image_words) * 4 - 1);
    for (int64_t w = lo >> 2; w <= hi >> 2; ++w) {
      (*set)[static_cast<size_t>(w - (base >> 2))] = true;
    }
  };

  // Host-side traffic first (independent of the CFG): the experiment reads
  // result words at the end, and control campaigns read actuator words and
  // write sensor words every iteration.
  if (!workload.result_symbol.empty()) {
    auto symbol = program_.Symbol(workload.result_symbol);
    if (symbol.ok()) {
      mark(&word_read_, symbol.value(),
           symbol.value() + static_cast<int64_t>(workload.result_words) * 4 - 1);
    }
  }
  if (workload.infinite_loop && !workload.input_symbol.empty()) {
    auto symbol = program_.Symbol(workload.input_symbol);
    if (symbol.ok()) {
      const int64_t input = symbol.value();
      const int64_t output = input + static_cast<int64_t>(workload.input_words) * 4;
      mark(&word_written_, input, output - 1);
      mark(&word_read_, output,
           output + static_cast<int64_t>(workload.output_words) * 4 - 1);
    }
  }

  if (registers_degraded_) {
    degrade_memory("CFG degraded: memory classification unavailable");
    return;
  }

  const IntervalClient client(cfg_);
  const auto flow = SolveDataflow(cfg_, client);
  solver_steps_ += flow.steps;
  if (!flow.converged) {
    degrade_memory("interval solver did not converge: memory degraded");
    return;
  }

  for (size_t b = 0; b < cfg_.blocks().size(); ++b) {
    const isa::BasicBlock& block = cfg_.blocks()[b];
    if (!block.reachable) continue;
    // Every reachable instruction word may be fetched.
    mark(&word_read_, block.begin_addr, static_cast<int64_t>(block.end_addr) - 1);
    IntervalState state = flow.in[b];
    if (state.bottom) continue;  // no feasible path: no loads/stores execute
    for (const isa::CfgInstruction& ci : block.instructions) {
      if (ci.decoded.fault == isa::PredecodeFault::kNone &&
          (ci.decoded.ins.op == Opcode::kLdw ||
           ci.decoded.ins.op == Opcode::kStw)) {
        const isa::Instruction& ins = ci.decoded.ins;
        const Interval base = RegOf(state, ins.rs1);
        const int64_t lo = base.lo + ins.imm;
        const int64_t hi = base.hi + ins.imm;
        const bool unbounded =
            base == TopI() || lo < 0 || hi > kUMax ||
            hi - lo > kMaxAccessSpanBytes;
        if (ins.op == Opcode::kLdw) {
          if (unbounded) {
            degrade_memory(util::Format(
                "load at 0x%x has unbounded address: memory degraded",
                ci.address));
            return;
          }
          mark(&word_read_, lo, hi);
        } else if (cfg_.has_text_segment()) {
          // Text is store-protected: a stray store cannot rewrite code, so
          // an unbounded store only forfeits the read-only lint.
          if (unbounded) {
            notes_.push_back(util::Format(
                "store at 0x%x has unbounded address: read-only lint degraded",
                ci.address));
            word_written_.assign(image_words, true);
          } else {
            mark(&word_written_, lo, hi);
          }
        } else if (unbounded ||
                   (hi >= cfg_.text_begin() && lo < cfg_.text_end())) {
          // No _etext: nothing is write-protected, so this store could
          // rewrite instructions — the program analyzed is not the program
          // executed. Everything degrades.
          degrade_everything(util::Format(
              "store at 0x%x may modify unprotected text: analysis degraded",
              ci.address));
          return;
        } else {
          mark(&word_written_, lo, hi);
        }
      }
      ApplyInstruction(&state, ci);
    }
  }
}

void StaticAnalysis::LintUnreachable() {
  for (const size_t b : cfg_.UnreachableBlocks()) {
    const isa::BasicBlock& block = cfg_.blocks()[b];
    lint_.push_back({LintFinding::Kind::kUnreachableBlock, block.begin_addr,
                     util::Format("block at 0x%04x is unreachable from entry",
                                  block.begin_addr)});
  }
}

void StaticAnalysis::LintDeadWrites() {
  if (registers_degraded_) return;  // no lint on a degraded graph

  std::vector<DefSite> defs;
  for (size_t b = 0; b < cfg_.blocks().size(); ++b) {
    const isa::BasicBlock& block = cfg_.blocks()[b];
    if (!block.reachable) continue;
    for (size_t i = 0; i < block.instructions.size(); ++i) {
      const isa::CfgInstruction& ci = block.instructions[i];
      if (ci.decoded.fault != isa::PredecodeFault::kNone) continue;
      const cpu::InstructionAccess access = cpu::ClassifyAccess(ci.decoded.ins);
      if (!access.writes_reg || access.write_reg == 0) continue;
      defs.push_back({b, i, access.write_reg, ci.address,
                      ci.decoded.ins.op != Opcode::kJal});
    }
  }
  if (defs.empty()) return;

  const ReachingDefsClient client(cfg_, std::move(defs));
  const auto flow = SolveDataflow(cfg_, client);
  solver_steps_ += flow.steps;
  if (!flow.converged) return;  // finite lattice; do not lint if it happens

  std::vector<uint64_t> used(client.words(), 0);
  for (size_t b = 0; b < cfg_.blocks().size(); ++b) {
    const isa::BasicBlock& block = cfg_.blocks()[b];
    if (!block.reachable) continue;
    std::vector<uint64_t> reaching = flow.in[b];
    for (size_t i = 0; i < block.instructions.size(); ++i) {
      const isa::CfgInstruction& ci = block.instructions[i];
      if (ci.decoded.fault == isa::PredecodeFault::kNone) {
        const cpu::InstructionAccess access =
            cpu::ClassifyAccess(ci.decoded.ins);
        for (uint8_t r = 0; r < access.read_count; ++r) {
          if (access.reads[r] == 0) continue;
          const std::vector<uint64_t>& of_reg = client.reg_mask(access.reads[r]);
          for (size_t w = 0; w < used.size(); ++w) {
            used[w] |= reaching[w] & of_reg[w];
          }
        }
      }
      client.ApplyDef(b, i, ci, &reaching);
    }
  }

  for (size_t d = 0; d < client.defs().size(); ++d) {
    const DefSite& def = client.defs()[d];
    if (!def.lint_eligible) continue;
    if ((used[d / 64] >> (d % 64)) & 1) continue;
    lint_.push_back(
        {LintFinding::Kind::kWriteNeverRead, def.address,
         util::Format("write to r%d at 0x%04x is never read", def.reg,
                      def.address)});
  }
  std::sort(lint_.begin(), lint_.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return a.address < b.address;
            });
}

// --- predicates / counts -----------------------------------------------------

bool StaticAnalysis::RegisterNeverAccessed(int reg) const {
  if (reg <= 0 || reg >= isa::kNumRegisters) return false;
  if (registers_degraded_) return false;
  return (reg_accessed_ & (1u << reg)) == 0;
}

bool StaticAnalysis::MemoryWordNeverRead(uint32_t address) const {
  if (memory_degraded_) return false;
  const uint32_t word = address & ~3u;
  if (word < program_.base_address) return false;
  const size_t index = (word - program_.base_address) / 4;
  if (index >= word_read_.size()) return false;
  return !word_read_[index];
}

bool StaticAnalysis::MemoryWordReadOnly(uint32_t address) const {
  if (memory_degraded_) return false;
  const uint32_t word = address & ~3u;
  if (word < program_.base_address) return false;
  const size_t index = (word - program_.base_address) / 4;
  if (index >= word_written_.size()) return false;
  return !word_written_[index];
}

int StaticAnalysis::NeverAccessedRegisterCount() const {
  int count = 0;
  for (int r = 1; r < isa::kNumRegisters; ++r) {
    if (RegisterNeverAccessed(r)) ++count;
  }
  return count;
}

size_t StaticAnalysis::NeverReadWordCount() const {
  if (memory_degraded_) return 0;
  return static_cast<size_t>(
      std::count(word_read_.begin(), word_read_.end(), false));
}

size_t StaticAnalysis::ReadOnlyWordCount() const {
  if (memory_degraded_) return 0;
  return static_cast<size_t>(
      std::count(word_written_.begin(), word_written_.end(), false));
}

// --- report / filter ---------------------------------------------------------

namespace {

std::string RegisterSetString(uint16_t mask) {
  if (mask == 0xFFFF) return "all";
  std::string out;
  for (int r = 0; r < isa::kNumRegisters; ++r) {
    if (!(mask & (1u << r))) continue;
    if (!out.empty()) out += ",";
    out += util::Format("r%d", r);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

std::string StaticAnalysis::Report() const {
  std::string out = util::Format("static analysis: %s\n", workload_name_.c_str());
  out += util::Format(
      "  text [0x%04x,0x%04x)%s  image %zu words  %zu blocks\n",
      cfg_.text_begin(), cfg_.text_end(),
      cfg_.has_text_segment() ? "" : " (no _etext: whole image executable)",
      ImageWordCount(), cfg_.blocks().size());
  out += util::Format("  degraded: registers=%s memory=%s\n",
                      registers_degraded_ ? "yes" : "no",
                      memory_degraded_ ? "yes" : "no");
  for (const std::string& note : notes_) {
    out += util::Format("  note: %s\n", note.c_str());
  }

  out += "per-block liveness:\n";
  for (size_t b = 0; b < cfg_.blocks().size(); ++b) {
    const isa::BasicBlock& block = cfg_.blocks()[b];
    std::string succs;
    for (const isa::CfgEdge& edge : block.successors) {
      if (!succs.empty()) succs += ",";
      succs += util::Format("%zu", edge.to);
    }
    out += util::Format(
        "  block %zu [0x%04x,0x%04x)%s  live-in {%s}  live-out {%s}  -> {%s}\n",
        b, block.begin_addr, block.end_addr,
        block.reachable ? "" : " (unreachable)",
        RegisterSetString(live_in_[b]).c_str(),
        RegisterSetString(live_out_[b]).c_str(),
        succs.empty() ? "-" : succs.c_str());
  }

  out += "lint:\n";
  if (lint_.empty()) out += "  clean\n";
  for (const LintFinding& finding : lint_) {
    out += util::Format("  %s\n", finding.message.c_str());
  }

  std::string never;
  for (int r = 1; r < isa::kNumRegisters; ++r) {
    if (!RegisterNeverAccessed(r)) continue;
    if (!never.empty()) never += ",";
    never += util::Format("r%d", r);
  }
  out += "prune eligibility:\n";
  out += util::Format("  registers never accessed: %d/15%s%s\n",
                      NeverAccessedRegisterCount(), never.empty() ? "" : "  ",
                      never.c_str());
  out += util::Format("  memory words never read:  %zu/%zu\n",
                      NeverReadWordCount(), ImageWordCount());
  out += util::Format("  memory words read-only:   %zu/%zu\n",
                      ReadOnlyWordCount(), ImageWordCount());
  return out;
}

FaultInjectionAlgorithms::LivenessFilter StaticAnalysis::MakeFilter() const {
  return [this](const FaultCandidate& candidate, uint64_t) {
    if (!candidate.scan) {
      return !MemoryWordNeverRead(candidate.address);
    }
    if (util::StartsWith(candidate.cell_name, "regfile.")) {
      const auto reg = isa::ParseRegister(candidate.cell_name.substr(8));
      if (!reg) return true;
      return !RegisterNeverAccessed(*reg);
    }
    return true;  // pc/ir/pipeline/caches/watchdog: conservatively live
  };
}

// --- cache -------------------------------------------------------------------

util::Result<std::shared_ptr<const StaticAnalysis>> StaticAnalysisCache::Get(
    const std::string& workload_name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(workload_name);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  auto built = StaticAnalysis::Build(workload_name);
  if (!built.ok()) return built.status();
  std::shared_ptr<const StaticAnalysis> analysis = std::move(built).value();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = cache_.emplace(workload_name, std::move(analysis));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;  // another thread built it first; the analyses are identical
  }
  return it->second;
}

int StaticAnalysisCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int StaticAnalysisCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace goofi::core
