#include "core/propagation.hpp"

#include <algorithm>
#include <map>

#include "util/strings.hpp"

namespace goofi::core {

std::string PropagationReport::ToString() const {
  std::string out;
  out += util::Format("steps compared:        %d\n", steps_compared);
  if (first_divergence_step == 0) {
    out += "no visible divergence from the reference trace\n";
  } else {
    out += util::Format("first divergence:      step %d (instr %llu)\n",
                        first_divergence_step,
                        static_cast<unsigned long long>(first_divergence_instr));
    out += util::Format("diverged steps:        %d (%.1f%% of trace)\n",
                        diverged_steps,
                        steps_compared == 0
                            ? 0.0
                            : 100.0 * diverged_steps / steps_compared);
  }
  if (detection_step != 0) {
    out += util::Format("detected at:           step %d\n", detection_step);
    out += util::Format("detection latency:     %d steps\n",
                        detection_latency_steps);
  } else {
    out += "not detected within the trace\n";
  }
  if (length_mismatch) {
    out += "traces have different lengths (control-flow divergence)\n";
  }
  return out;
}

namespace {

/// Loads the detail rows logged under `<rerun_name>` keyed by instret.
util::Result<std::map<uint64_t, LoggedState>> LoadTrace(
    const CampaignStore& store, const std::string& rerun_name) {
  // Index probe on parentExperiment: fetches just this rerun's trace instead
  // of deserializing every row of the campaign.
  auto rows = store.DetailRowsOf(rerun_name);
  if (!rows.ok()) return rows.status();
  std::map<uint64_t, LoggedState> trace;
  for (auto& row : rows.value()) {
    trace.emplace(row.state.instret, std::move(row.state));
  }
  if (trace.empty()) {
    return util::FailedPrecondition(
        "no detail trace under " + rerun_name +
        "; run RerunDetailed first (for the experiment and for the campaign "
        "reference)");
  }
  return trace;
}

}  // namespace

util::Result<PropagationReport> AnalyzeErrorPropagation(
    const CampaignStore& store, const std::string& experiment_name) {
  auto experiment = store.GetExperiment(experiment_name);
  if (!experiment.ok()) return experiment.status();
  const std::string campaign = experiment.value().campaign_name;
  const std::string reference_name = CampaignStore::ReferenceName(campaign);

  auto faulty = LoadTrace(store, experiment_name + "/detail");
  if (!faulty.ok()) return faulty.status();
  auto golden = LoadTrace(store, reference_name + "/detail");
  if (!golden.ok()) return golden.status();

  PropagationReport report;
  int step = 0;
  for (const auto& [instret, state] : faulty.value()) {
    const auto ref = golden.value().find(instret);
    if (ref == golden.value().end()) {
      // The faulty run outlived (or fell outside) the reference trace.
      report.length_mismatch = true;
      break;
    }
    ++step;
    ++report.steps_compared;
    if (state.scan_images != ref->second.scan_images) {
      ++report.diverged_steps;
      if (report.first_divergence_step == 0) {
        report.first_divergence_step = step;
        report.first_divergence_instr = instret;
      }
    }
    if (state.detected && report.detection_step == 0) {
      report.detection_step = step;
      if (report.first_divergence_step != 0) {
        report.detection_latency_steps = step - report.first_divergence_step;
      }
    }
  }
  if (faulty.value().size() != golden.value().size()) {
    report.length_mismatch = true;
  }
  return report;
}

}  // namespace goofi::core
