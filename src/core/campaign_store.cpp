#include "core/campaign_store.hpp"

#include "db/archive.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace goofi::core {

namespace {

using db::Column;
using db::ForeignKey;
using db::Row;
using db::Schema;
using db::Value;
using db::ValueType;

Schema TargetSystemSchema() {
  return Schema("TargetSystemData",
                {{"targetName", ValueType::kText, true},
                 {"description", ValueType::kText, false},
                 {"chainData", ValueType::kText, false}},
                {"targetName"});
}

Schema CampaignSchema() {
  return Schema(
      "CampaignData",
      {{"campaignName", ValueType::kText, true},
       {"targetName", ValueType::kText, true},
       {"technique", ValueType::kText, true},
       {"faultModel", ValueType::kText, true},
       {"faultsPerExperiment", ValueType::kInt, true},
       {"numExperiments", ValueType::kInt, true},
       {"injectMinInstr", ValueType::kInt, true},
       {"injectMaxInstr", ValueType::kInt, true},
       {"locations", ValueType::kText, true},
       {"workload", ValueType::kText, true},
       {"timeoutCycles", ValueType::kInt, true},
       {"maxIterations", ValueType::kInt, true},
       {"seed", ValueType::kInt, true},
       {"logMode", ValueType::kText, true},
       {"observeChains", ValueType::kText, true},
       {"burstLength", ValueType::kInt, true},
       {"burstSpacing", ValueType::kInt, true}},
      {"campaignName"},
      {{{"targetName"}, "TargetSystemData", {"targetName"}}});
}

Schema LoggedSystemStateSchema() {
  return Schema("LoggedSystemState",
                {{"experimentName", ValueType::kText, true},
                 {"parentExperiment", ValueType::kText, false},
                 {"campaignName", ValueType::kText, true},
                 {"experimentData", ValueType::kText, false},
                 {"stateVector", ValueType::kText, false}},
                {"experimentName"},
                {{{"campaignName"}, "CampaignData", {"campaignName"}},
                 {{"parentExperiment"}, "LoggedSystemState", {"experimentName"}}});
}

}  // namespace

CampaignStore::CampaignStore(db::Database* database) : database_(database) {
  const util::Status st = EnsureSchema();
  if (!st.ok()) {
    util::Log::Error("CampaignStore: cannot set up schema: " + st.ToString());
  }
}

util::Status CampaignStore::EnsureSchema() {
  for (const Schema& schema :
       {TargetSystemSchema(), CampaignSchema(), LoggedSystemStateSchema()}) {
    if (!database_->HasTable(schema.table_name())) {
      GOOFI_RETURN_IF_ERROR(database_->CreateTable(schema));
    }
  }
  // Secondary indexes backing the analysis queries (§3.4): equality on
  // campaignName (AnalyzeCampaign, the analysis join), equality and IS NULL
  // on parentExperiment (detail traces; top-level experiment filters), and
  // range on experimentName (per-campaign name prefixes sort together).
  struct IndexSpec {
    const char* table;
    const char* name;
    std::vector<std::string> columns;
    db::IndexKind kind;
  };
  const IndexSpec specs[] = {
      {"LoggedSystemState", "idx_lss_campaign", {"campaignName"},
       db::IndexKind::kHash},
      {"LoggedSystemState", "idx_lss_parent", {"parentExperiment"},
       db::IndexKind::kHash},
      {"LoggedSystemState", "idx_lss_name", {"experimentName"},
       db::IndexKind::kSorted},
      {"CampaignData", "idx_campaign_target", {"targetName"},
       db::IndexKind::kHash},
  };
  for (const IndexSpec& spec : specs) {
    const db::Table* table = database_->GetTable(spec.table);
    if (table == nullptr || table->FindIndex(spec.name) != nullptr) continue;
    GOOFI_RETURN_IF_ERROR(
        database_->CreateIndex(spec.table, spec.name, spec.columns, spec.kind));
  }
  return util::Status::Ok();
}

// --- TargetSystemData --------------------------------------------------------

util::Status CampaignStore::PutTargetSystem(const TargetSystemData& target) {
  db::Table* table = database_->GetTable("TargetSystemData");
  // Upsert: replace any existing row (never referenced rows are deleted here;
  // campaigns reference by name so deletion of a referenced target fails).
  const std::string name = target.name;
  const auto existing = table->FindByPrimaryKey({Value::Text(name)});
  if (existing) {
    size_t updated = 0;
    GOOFI_RETURN_IF_ERROR(table->UpdateWhere(
        [&name](const Row& row) { return row[0].as_text() == name; },
        [&target](Row& row) {
          row[1] = Value::Text(target.description);
          row[2] = Value::Text(target.chain_data);
        },
        &updated));
    return util::Status::Ok();
  }
  return database_->Insert("TargetSystemData",
                           {Value::Text(target.name),
                            Value::Text(target.description),
                            Value::Text(target.chain_data)});
}

util::Result<TargetSystemData> CampaignStore::GetTargetSystem(
    const std::string& name) const {
  const db::Table* table = database_->GetTable("TargetSystemData");
  const auto slot = table->FindByPrimaryKey({Value::Text(name)});
  if (!slot) return util::NotFound("no target system " + name);
  const Row& row = table->slots()[*slot];
  TargetSystemData out;
  out.name = row[0].as_text();
  out.description = row[1].is_null() ? "" : row[1].as_text();
  out.chain_data = row[2].is_null() ? "" : row[2].as_text();
  return out;
}

std::vector<std::string> CampaignStore::TargetSystemNames() const {
  std::vector<std::string> names;
  database_->GetTable("TargetSystemData")->ForEach([&names](const Row& row) {
    names.push_back(row[0].as_text());
  });
  return names;
}

// --- CampaignData -------------------------------------------------------------

util::Status CampaignStore::PutCampaign(const CampaignData& c) {
  std::vector<std::string> locations;
  locations.reserve(c.locations.size());
  for (const FaultLocationSelector& sel : c.locations) {
    locations.push_back(sel.ToString());
  }
  Row row = {Value::Text(c.name),
             Value::Text(c.target_name),
             Value::Text(TechniqueName(c.technique)),
             Value::Text(FaultModelName(c.fault_model)),
             Value::Int(c.faults_per_experiment),
             Value::Int(c.num_experiments),
             Value::Int(static_cast<int64_t>(c.inject_min_instr)),
             Value::Int(static_cast<int64_t>(c.inject_max_instr)),
             Value::Text(util::Join(locations, " ")),
             Value::Text(c.workload),
             Value::Int(static_cast<int64_t>(c.timeout_cycles)),
             Value::Int(c.max_iterations),
             Value::Int(static_cast<int64_t>(c.seed)),
             Value::Text(LogModeName(c.log_mode)),
             Value::Text(util::Join(c.observe_chains, " ")),
             Value::Int(c.burst_length),
             Value::Int(static_cast<int64_t>(c.burst_spacing))};
  db::Table* table = database_->GetTable("CampaignData");
  const auto existing = table->FindByPrimaryKey({Value::Text(c.name)});
  if (existing) {
    size_t updated = 0;
    const std::string name = c.name;
    return table->UpdateWhere(
        [&name](const Row& r) { return r[0].as_text() == name; },
        [&row](Row& r) { r = row; }, &updated);
  }
  return database_->Insert("CampaignData", std::move(row));
}

util::Result<CampaignData> CampaignStore::GetCampaign(
    const std::string& name) const {
  const db::Table* table = database_->GetTable("CampaignData");
  const auto slot = table->FindByPrimaryKey({Value::Text(name)});
  if (!slot) return util::NotFound("no campaign " + name);
  const Row& row = table->slots()[*slot];
  CampaignData c;
  c.name = row[0].as_text();
  c.target_name = row[1].as_text();
  auto technique = TechniqueFromName(row[2].as_text());
  if (!technique.ok()) return technique.status();
  c.technique = technique.value();
  auto model = FaultModelFromName(row[3].as_text());
  if (!model.ok()) return model.status();
  c.fault_model = model.value();
  c.faults_per_experiment = static_cast<int>(row[4].as_int());
  c.num_experiments = static_cast<int>(row[5].as_int());
  c.inject_min_instr = static_cast<uint64_t>(row[6].as_int());
  c.inject_max_instr = static_cast<uint64_t>(row[7].as_int());
  c.locations.clear();
  for (const std::string& token : util::SplitWhitespace(row[8].as_text())) {
    auto sel = FaultLocationSelector::Parse(token);
    if (!sel.ok()) return sel.status();
    c.locations.push_back(std::move(sel).value());
  }
  c.workload = row[9].as_text();
  c.timeout_cycles = static_cast<uint64_t>(row[10].as_int());
  c.max_iterations = static_cast<int>(row[11].as_int());
  c.seed = static_cast<uint64_t>(row[12].as_int());
  c.log_mode = row[13].as_text() == "detail" ? LogMode::kDetail : LogMode::kNormal;
  c.observe_chains = util::SplitWhitespace(row[14].as_text());
  c.burst_length = static_cast<uint32_t>(row[15].as_int());
  c.burst_spacing = static_cast<uint64_t>(row[16].as_int());
  return c;
}

std::vector<std::string> CampaignStore::CampaignNames() const {
  std::vector<std::string> names;
  database_->GetTable("CampaignData")->ForEach([&names](const Row& row) {
    names.push_back(row[0].as_text());
  });
  return names;
}

util::Status CampaignStore::MergeCampaigns(
    const std::vector<std::string>& sources, const std::string& merged_name) {
  if (sources.empty()) return util::InvalidArgument("no source campaigns");
  auto first = GetCampaign(sources[0]);
  if (!first.ok()) return first.status();
  CampaignData merged = std::move(first).value();
  merged.name = merged_name;
  for (size_t i = 1; i < sources.size(); ++i) {
    auto next = GetCampaign(sources[i]);
    if (!next.ok()) return next.status();
    const CampaignData& c = next.value();
    if (c.target_name != merged.target_name ||
        c.technique != merged.technique || c.workload != merged.workload) {
      return util::FailedPrecondition(
          "campaign " + sources[i] +
          " differs in target/technique/workload; cannot merge");
    }
    merged.num_experiments += c.num_experiments;
    for (const FaultLocationSelector& sel : c.locations) {
      bool present = false;
      for (const FaultLocationSelector& have : merged.locations) {
        if (have.chain == sel.chain && have.cell_prefix == sel.cell_prefix) {
          present = true;
          break;
        }
      }
      if (!present) merged.locations.push_back(sel);
    }
    merged.inject_min_instr = std::min(merged.inject_min_instr, c.inject_min_instr);
    merged.inject_max_instr = std::max(merged.inject_max_instr, c.inject_max_instr);
  }
  return PutCampaign(merged);
}

// --- LoggedSystemState ---------------------------------------------------------

std::string CampaignStore::ExperimentName(const std::string& campaign_name,
                                          int index) {
  return util::Format("%s/e%04d", campaign_name.c_str(), index);
}

util::Status CampaignStore::PutExperiments(
    const std::vector<ExperimentRow>& rows) {
  std::vector<Row> db_rows;
  db_rows.reserve(rows.size());
  for (const ExperimentRow& row : rows) {
    db_rows.push_back({Value::Text(row.experiment_name),
                       row.parent_experiment.empty()
                           ? Value::Null()
                           : Value::Text(row.parent_experiment),
                       Value::Text(row.campaign_name),
                       Value::Text(row.experiment_data),
                       Value::Text(row.state.Serialize())});
  }
  GOOFI_RETURN_IF_ERROR(
      database_->InsertBatch("LoggedSystemState", std::move(db_rows)));
  // Durability point: the whole batch becomes one WAL group commit. Under
  // the runner's GroupCommitScope this is the only flush; with auto-commit
  // the records are already durable and this is a no-op.
  if (archive_ != nullptr) return archive_->Commit();
  return util::Status::Ok();
}

util::Status CampaignStore::PutExperiment(const std::string& experiment_name,
                                          const std::string& parent_experiment,
                                          const std::string& campaign_name,
                                          const std::string& experiment_data,
                                          const LoggedState& state) {
  // Bound prepared statement: the INSERT is parsed once per store lifetime
  // even though the serial driver calls this once per experiment.
  auto result = cache_.Execute(
      *database_, "INSERT INTO LoggedSystemState VALUES (?, ?, ?, ?, ?)",
      {Value::Text(experiment_name),
       parent_experiment.empty() ? Value::Null() : Value::Text(parent_experiment),
       Value::Text(campaign_name), Value::Text(experiment_data),
       Value::Text(state.Serialize())});
  GOOFI_RETURN_IF_ERROR(result.status());
  if (archive_ != nullptr) return archive_->Commit();
  return util::Status::Ok();
}

util::Result<CampaignStore::ExperimentRow> CampaignStore::GetExperiment(
    const std::string& name) const {
  const db::Table* table = database_->GetTable("LoggedSystemState");
  const auto slot = table->FindByPrimaryKey({Value::Text(name)});
  if (!slot) return util::NotFound("no experiment " + name);
  const Row& row = table->slots()[*slot];
  ExperimentRow out;
  out.experiment_name = row[0].as_text();
  out.parent_experiment = row[1].is_null() ? "" : row[1].as_text();
  out.campaign_name = row[2].as_text();
  out.experiment_data = row[3].is_null() ? "" : row[3].as_text();
  auto state = LoggedState::Deserialize(row[4].is_null() ? "" : row[4].as_text());
  if (!state.ok()) return state.status();
  out.state = std::move(state).value();
  return out;
}

util::Result<std::vector<CampaignStore::ExperimentRow>>
CampaignStore::ExperimentQuery(const std::string& sql,
                               const std::string& param) const {
  auto result = cache_.Execute(*database_, sql, {Value::Text(param)});
  if (!result.ok()) return result.status();
  std::vector<ExperimentRow> rows;
  rows.reserve(result.value().rows.size());
  for (Row& row : result.value().rows) {
    ExperimentRow out;
    out.experiment_name = row[0].as_text();
    out.parent_experiment = row[1].is_null() ? "" : row[1].as_text();
    out.campaign_name = row[2].as_text();
    out.experiment_data = row[3].is_null() ? "" : row[3].as_text();
    auto state =
        LoggedState::Deserialize(row[4].is_null() ? "" : row[4].as_text());
    if (!state.ok()) return state.status();
    out.state = std::move(state).value();
    rows.push_back(std::move(out));
  }
  return rows;
}

util::Result<std::vector<CampaignStore::ExperimentRow>>
CampaignStore::ExperimentsOf(const std::string& campaign_name) const {
  // Routed through the prepared-statement cache: an index equality probe on
  // idx_lss_campaign instead of a scan of the whole log table. Index probes
  // replay rows in insertion order, same as the scan did.
  return ExperimentQuery(
      "SELECT experimentName, parentExperiment, campaignName, experimentData, "
      "stateVector FROM LoggedSystemState WHERE campaignName = ?",
      campaign_name);
}

util::Result<std::vector<CampaignStore::ExperimentRow>>
CampaignStore::DetailRowsOf(const std::string& parent_experiment) const {
  return ExperimentQuery(
      "SELECT experimentName, parentExperiment, campaignName, experimentData, "
      "stateVector FROM LoggedSystemState WHERE parentExperiment = ?",
      parent_experiment);
}

}  // namespace goofi::core
