#include "core/convergence.hpp"

#include <algorithm>
#include <cassert>

namespace goofi::core {

void GoldenTrace::AddBoundary(GoldenBoundary boundary) {
  assert((boundaries_.empty() ||
          boundaries_.back().instret < boundary.instret) &&
         "boundaries must arrive in strictly increasing instret order");
  boundaries_.push_back(std::move(boundary));
}

const GoldenBoundary* GoldenTrace::FindBoundary(uint64_t instret) const {
  auto it = std::lower_bound(
      boundaries_.begin(), boundaries_.end(), instret,
      [](const GoldenBoundary& b, uint64_t value) { return b.instret < value; });
  if (it == boundaries_.end() || it->instret != instret) return nullptr;
  return &*it;
}

size_t GoldenTrace::MemoryBytes() const {
  size_t bytes = sizeof(GoldenTrace);
  for (const GoldenBoundary& boundary : boundaries_) {
    bytes += sizeof(GoldenBoundary) + boundary.blob.size();
  }
  for (const LoggedState& row : detail_rows_) {
    bytes += sizeof(LoggedState);
    bytes += row.outputs.size() * sizeof(uint32_t);
    for (const auto& [chain, image] : row.scan_images) {
      bytes += chain.size() + image.size();
    }
  }
  return bytes;
}

bool ConvergenceMemo::Lookup(uint64_t instret, uint64_t hash,
                             const std::vector<uint8_t>& blob,
                             LoggedState* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find({instret, hash});
  if (it == entries_.end()) return false;
  // Full-state verify: an entry whose digest collides but whose state
  // differs is a miss, not a wrong answer.
  if (it->second.blob != blob) return false;
  *out = it->second.final_state;
  return true;
}

bool ConvergenceMemo::Insert(uint64_t instret, uint64_t hash,
                             std::vector<uint8_t> blob,
                             LoggedState final_state) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kMaxEntries) return false;
  auto [it, inserted] = entries_.try_emplace(
      std::make_pair(instret, hash), Entry{std::move(blob), std::move(final_state)});
  (void)it;
  return inserted;
}

size_t ConvergenceMemo::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace goofi::core
