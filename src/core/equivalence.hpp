// Fault-list equivalence classing (DESIGN.md "Equivalence-classing
// invariants").
//
// For a transient single-bit flip, every injection time inside the window
// between two consecutive accesses of the faulted location is provably
// equivalent: the flipped machines are byte-identical from the later
// injection time onward, so only one representative per class needs to be
// executed — the remaining experiments' database rows are synthesized from
// the representative's by rewriting the injection-time-derived fields
// (experiment name, serialized fault list, detail-row suffix). The classer
// consumes the LivenessAnalyzer access timeline (data + instruction-fetch
// windows) and the planned fault list of every experiment; the
// ParallelCampaignRunner dispatches one work unit per class and synthesizes
// members at commit time, keeping the database byte-identical to an
// undeduplicated run.
#pragma once

#include <optional>
#include <vector>

#include "core/campaign_store.hpp"
#include "core/preinjection.hpp"
#include "core/types.hpp"

namespace goofi::core {

class StaticAnalysis;

/// Dedup observability counters. Deliberately outside
/// FaultInjectionAlgorithms::Stats — deduped and plain runs must compare
/// equal on Stats.
struct EquivalenceStats {
  int64_t classes_formed = 0;          ///< classes with >= 2 members
  int64_t experiments_synthesized = 0; ///< member rows rewritten, not run
  /// Of experiments_synthesized: members of static no-effect classes (key
  /// kinds 5-7), which needed no golden-run timeline at all.
  int64_t static_synthesized = 0;
  int64_t spot_checks_run = 0;
  int64_t spot_checks_passed = 0;

  EquivalenceStats& operator+=(const EquivalenceStats& other) {
    classes_formed += other.classes_formed;
    experiments_synthesized += other.experiments_synthesized;
    static_synthesized += other.static_synthesized;
    spot_checks_run += other.spot_checks_run;
    spot_checks_passed += other.spot_checks_passed;
    return *this;
  }
  bool operator==(const EquivalenceStats&) const = default;
};

class EquivalenceClasser {
 public:
  struct Config {
    Technique technique = Technique::kScifi;
    FaultModelKind fault_model = FaultModelKind::kTransientBitFlip;
    int faults_per_experiment = 1;
    /// Final retired-instruction count of the fault-free (reference) run.
    /// Runtime injection at a time past it provably never happens; without
    /// it no time-window reasoning is possible and runtime-injection
    /// experiments stay singletons.
    bool has_golden_end = false;
    uint64_t golden_end_instret = 0;
    /// Optional static workload analysis (core/static_analysis). Enables the
    /// static no-effect classes — flips into statically never-accessed
    /// registers (kind 5) and never-read memory words (kinds 6/7) — which
    /// need no execution timeline. Must outlive the classer.
    const StaticAnalysis* static_analysis = nullptr;
  };

  struct Class {
    /// Experiment ids in the order they were Add()ed (the runner adds
    /// pending-list positions in commit order).
    std::vector<int> members;
    /// Member with the earliest injection time (ties: first added) — the one
    /// that must execute so every other member's detail suffix is a suffix
    /// of its rows.
    int representative = 0;
    /// Whether member detail rows are the representative's suffix past the
    /// member's injection time (runtime injection) or a verbatim copy
    /// (pre-runtime SWIFI, which ignores injection times entirely).
    bool suffix_filtered = true;
    /// Formed from a static no-effect key (kinds 5-7): the flip is provably
    /// invisible, so members synthesize from a golden-identical
    /// representative. Counted separately in EquivalenceStats.
    bool static_no_effect = false;
  };

  /// `timeline` may be null: only past-end and pre-runtime classes form
  /// then. The analyzer must cover the golden run (trace_length() >=
  /// golden_end_instret) for access-window classes to form; shorter
  /// timelines conservatively degrade to singletons.
  EquivalenceClasser(const LivenessAnalyzer* timeline, Config config);

  /// Adds experiment `id` with its planned fault list. Ids must be unique
  /// and are reported back verbatim in classes().
  void Add(int id, const std::vector<FaultInstance>& faults);

  /// All classes, singletons included, ordered by first Add()ed member.
  const std::vector<Class>& classes() const { return classes_; }

  /// Index into classes() for the n-th Add()ed experiment.
  size_t class_of(size_t add_ordinal) const { return class_of_[add_ordinal]; }

  /// Classes with >= 2 members.
  int64_t multi_member_classes() const { return multi_member_classes_; }

 private:
  struct Key {
    // 1 reg window, 2 mem window, 3 pre-runtime, 4 past-end,
    // 5 static never-accessed register, 6 static never-read word (runtime),
    // 7 static never-read word (pre-runtime)
    int kind = 0;
    uint32_t location = 0;  // register index or byte address
    uint32_t bit = 0;       // chain bit or word bit
    uint64_t window = 0;    // data-access window ordinal
    uint64_t fetch_window = 0;  // instruction-fetch window ordinal
    bool operator<(const Key& o) const {
      if (kind != o.kind) return kind < o.kind;
      if (location != o.location) return location < o.location;
      if (bit != o.bit) return bit < o.bit;
      if (window != o.window) return window < o.window;
      return fetch_window < o.fetch_window;
    }
  };

  /// The class key for a fault list, or nullopt when the experiment must
  /// stay a singleton (eligibility gates: transient single-flip only, known
  /// location semantics, timeline coverage).
  std::optional<Key> Classify(const std::vector<FaultInstance>& faults) const;

  const LivenessAnalyzer* timeline_;
  Config config_;
  std::vector<Class> classes_;
  std::vector<size_t> class_of_;
  std::vector<uint64_t> representative_time_;  // per class
  std::map<Key, size_t> keyed_;
  int64_t multi_member_classes_ = 0;
};

/// Rewrites a representative's result rows into class-member rows: the main
/// row gets the member's experiment name and its own serialized fault list;
/// detail rows become the representative's suffix strictly past the member's
/// injection time (or a verbatim copy when `suffix_filtered` is false),
/// renumbered under the member's name. Everything else is invariant — see
/// DESIGN.md for the proof.
std::vector<CampaignStore::ExperimentRow> SynthesizeMemberRows(
    const std::vector<CampaignStore::ExperimentRow>& representative_rows,
    const CampaignData& campaign, int member_index,
    const std::vector<FaultInstance>& member_faults, bool suffix_filtered);

}  // namespace goofi::core
