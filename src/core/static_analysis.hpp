// Static workload analyzer: CFG + dataflow engine for pre-execution
// fault-space pruning (DESIGN.md "Static analysis invariants").
//
// GOOFI's dynamic pre-injection analysis (core/preinjection) and the
// equivalence classer's access timelines both need a fault-free *execution*
// before a single fault list can be pruned. This module prunes with zero
// golden-run cost: it decodes the workload into a CFG (isa/cfg) and runs a
// generic worklist dataflow solver with three clients —
//
//   1. backward register liveness       (per-block report + dead-store lint)
//   2. forward reaching definitions     (write-never-read lint)
//   3. memory-word classification       (never-read / read-only words, built
//      on a forward interval analysis of load/store addresses)
//
// — yielding two conservative prune predicates consumed by the equivalence
// classer (core/equivalence, key kinds 5-7):
//
//   RegisterNeverAccessed(r): no conservatively-reachable instruction reads
//     or writes r. A transient flip into r's scan cell is then invisible at
//     every injection time before the golden end — execution never consumes
//     or refreshes r, and the final observed value is initial ^ flip
//     regardless of when the flip landed.
//   MemoryWordNeverRead(a): no reachable load can address a, a is never
//     fetched, and the host never reads it (result words, actuator words).
//     Writes are irrelevant: memory content is never part of the logged
//     state, so a flip that is never read is invisible.
//
// Conservatism rules: any unanalyzable CFG edge (unresolved indirect jump,
// control transfer outside text) degrades every block to "everything live";
// an unbounded load address degrades the whole memory classification; a
// store that could reach unprotected text degrades everything (possible
// self-modifying code). With the text segment write-protected (the loader
// protects [base, _etext) whenever _etext exists) stores cannot rewrite
// code, so fetch sets stay valid without a store analysis.
//
// The static predicates must be subsets of the dynamic facts
// (LivenessAnalyzer::RegisterEverAccessed / MemoryWordEverRead /
// MemoryWordEverFetched) — tests/static_analysis_test.cpp asserts that
// differentially, and the parallel runner's spot checks re-verify pruned
// members at runtime via the StateHasher capture-blob comparison.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "env/workloads.hpp"
#include "isa/cfg.hpp"

namespace goofi::core {

// --- generic worklist solver ------------------------------------------------
//
// A Client defines the lattice and the flow:
//   using State;
//   bool forward() const;
//   State Bottom() const;                       // join identity
//   State Initial(size_t block) const;          // boundary contribution
//   State Transfer(size_t block, const State&) const;
//   /// Accumulate `from` into `*into`; `visits` counts prior joins at this
//   /// block (for widening). Returns whether *into changed.
//   bool Join(State* into, const State& from, size_t block, int visits) const;
//   /// Per-edge refinement of the source block's flow-out state (e.g. branch
//   /// condition narrowing). Return `state` unchanged when not applicable.
//   State EdgeState(size_t from, const isa::CfgEdge& edge,
//                   const State& state) const;
//
// Forward: in[entry] ⊒ Initial; in[b] = ⊔ EdgeState(p→b, out[p]);
//          out[b] = Transfer(b, in[b]).
// Backward: out[b] ⊒ Initial for blocks without successors;
//           out[b] = ⊔ in[s]; in[b] = Transfer(b, out[b]).
// Only reachable blocks participate. Monotone clients reach a fixpoint;
// `steps` counts block evaluations and `converged` is false if `max_steps`
// ran out first (callers must then degrade).

template <typename Client>
struct DataflowResult {
  std::vector<typename Client::State> in;
  std::vector<typename Client::State> out;
  size_t steps = 0;
  bool converged = true;
};

template <typename Client>
DataflowResult<Client> SolveDataflow(const isa::Cfg& cfg, const Client& client,
                                     size_t max_steps = 1u << 20) {
  const std::vector<isa::BasicBlock>& blocks = cfg.blocks();
  DataflowResult<Client> result;
  result.in.assign(blocks.size(), client.Bottom());
  result.out.assign(blocks.size(), client.Bottom());
  std::vector<int> visits(blocks.size(), 0);
  std::vector<bool> queued(blocks.size(), false);
  std::vector<size_t> worklist;
  const bool forward = client.forward();

  for (size_t b = 0; b < blocks.size(); ++b) {
    if (!blocks[b].reachable) continue;
    if (forward) {
      if (b == cfg.entry_block()) {
        client.Join(&result.in[b], client.Initial(b), b, 0);
      }
    } else if (blocks[b].successors.empty()) {
      client.Join(&result.out[b], client.Initial(b), b, 0);
    }
    worklist.push_back(b);
    queued[b] = true;
  }
  // Process forward problems in block order and backward problems in
  // reverse: near-topological for the reducible CFGs the assembler emits.
  if (!forward) std::reverse(worklist.begin(), worklist.end());

  while (!worklist.empty()) {
    if (++result.steps > max_steps) {
      result.converged = false;
      break;
    }
    const size_t b = worklist.front();
    worklist.erase(worklist.begin());
    queued[b] = false;
    if (forward) {
      result.out[b] = client.Transfer(b, result.in[b]);
      for (const isa::CfgEdge& edge : blocks[b].successors) {
        const typename Client::State refined =
            client.EdgeState(b, edge, result.out[b]);
        if (client.Join(&result.in[edge.to], refined, edge.to,
                        visits[edge.to]++) &&
            !queued[edge.to]) {
          worklist.push_back(edge.to);
          queued[edge.to] = true;
        }
      }
    } else {
      result.in[b] = client.Transfer(b, result.out[b]);
      for (const size_t p : blocks[b].predecessors) {
        if (client.Join(&result.out[p], result.in[b], p, visits[p]++) &&
            !queued[p]) {
          worklist.push_back(p);
          queued[p] = true;
        }
      }
    }
  }
  return result;
}

// --- analysis results -------------------------------------------------------

struct LintFinding {
  enum class Kind { kUnreachableBlock, kWriteNeverRead };
  Kind kind = Kind::kUnreachableBlock;
  uint32_t address = 0;  ///< block start / writing instruction
  std::string message;

  bool operator==(const LintFinding&) const = default;
};

class StaticAnalysis {
 public:
  /// Analyzes a built-in workload by name.
  static util::Result<std::unique_ptr<StaticAnalysis>> Build(
      const std::string& workload_name);

  /// Analyzes an arbitrary workload spec (assembles its source).
  static util::Result<std::unique_ptr<StaticAnalysis>> BuildFromSpec(
      const env::WorkloadSpec& workload);

  // --- prune predicates (conservative: false unless proven) ----------------

  /// No reachable instruction reads or writes `reg`. Always false for r0
  /// (hardwired zero, not injectable) and on a degraded graph.
  bool RegisterNeverAccessed(int reg) const;

  /// The word at `address` is never loaded, never fetched and never
  /// host-read. False outside the image or on a degraded classification.
  bool MemoryWordNeverRead(uint32_t address) const;

  /// The word at `address` is inside the image, never written by a reachable
  /// store and never host-written (read-only data / code in the lint sense).
  bool MemoryWordReadOnly(uint32_t address) const;

  // --- prune-eligibility counts (the `analyze` report) ---------------------

  /// Injectable registers (r1..r15) proven never-accessed.
  int NeverAccessedRegisterCount() const;
  /// Image words proven never-read.
  size_t NeverReadWordCount() const;
  /// Image words proven read-only.
  size_t ReadOnlyWordCount() const;
  size_t ImageWordCount() const { return word_read_.size(); }

  // --- degradation ---------------------------------------------------------

  bool registers_degraded() const { return registers_degraded_; }
  bool memory_degraded() const { return memory_degraded_; }
  /// Every conservative decision taken (CFG notes + analysis-level ones).
  const std::vector<std::string>& notes() const { return notes_; }

  // --- structure / per-block results ---------------------------------------

  const isa::Cfg& cfg() const { return cfg_; }
  /// Bitmask (bit r = register r) of registers live at block entry/exit.
  uint16_t LiveIn(size_t block) const { return live_in_[block]; }
  uint16_t LiveOut(size_t block) const { return live_out_[block]; }
  const std::vector<LintFinding>& lint() const { return lint_; }

  /// Total block evaluations over all solver runs (fixpoint telemetry).
  size_t solver_steps() const { return solver_steps_; }

  /// The per-block liveness report + lint findings + prune-eligibility
  /// counts, as printed by the shell `analyze <workload>` command.
  std::string Report() const;

  /// Pre-execution fault-space filter for
  /// FaultInjectionAlgorithms::SetLivenessFilter: statically never-accessed
  /// registers and never-read memory words are dead at every injection time.
  /// The analysis must outlive the returned callable.
  FaultInjectionAlgorithms::LivenessFilter MakeFilter() const;

  const std::string& workload_name() const { return workload_name_; }

 private:
  StaticAnalysis() = default;

  void AnalyzeRegisters();
  void AnalyzeMemory(const env::WorkloadSpec& workload);
  void LintUnreachable();
  void LintDeadWrites();

  std::string workload_name_;
  isa::AssembledProgram program_;
  isa::Cfg cfg_;

  uint16_t reg_accessed_ = 0;  ///< bit r set: some reachable instr touches r
  std::vector<bool> word_read_;     ///< per image word (loads+fetch+host)
  std::vector<bool> word_written_;  ///< per image word (stores+host writes)
  bool registers_degraded_ = false;
  bool memory_degraded_ = false;

  std::vector<uint16_t> live_in_;
  std::vector<uint16_t> live_out_;
  std::vector<LintFinding> lint_;
  std::vector<std::string> notes_;
  size_t solver_steps_ = 0;
};

/// Memoizes StaticAnalysis builds per workload name — the analysis depends
/// only on the assembled program and the workload's host I/O metadata, not
/// on any CPU configuration. Thread-safe; returned analyses are immutable
/// and may outlive the cache.
class StaticAnalysisCache {
 public:
  util::Result<std::shared_ptr<const StaticAnalysis>> Get(
      const std::string& workload_name);

  int hits() const;
  int misses() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const StaticAnalysis>> cache_;
  int hits_ = 0;
  int misses_ = 0;
};

}  // namespace goofi::core
