#include "core/swifi_target.hpp"

#include <algorithm>

#include "cpu/state_hash.hpp"
#include "util/strings.hpp"

namespace goofi::core {

namespace {

/// Checkpoint payload for the simulator-only SWIFI target: the CPU snapshot
/// (registers, caches, memory delta) plus the host-side per-experiment state
/// the golden run accumulates. Built and consumed in this translation unit
/// only.
struct SwifiPayload final : CheckpointPayload {
  cpu::CpuSnapshot cpu;
  int iterations = 0;
  uint32_t crc_state = 0;
  std::vector<double> env_state;

  size_t MemoryBytes() const override {
    return sizeof(SwifiPayload) + cpu.MemoryBytes() +
           env_state.size() * sizeof(double);
  }
};

}  // namespace

SwifiSimTarget::SwifiSimTarget(CampaignStore* store,
                               const cpu::CpuConfig& config)
    : FrameworkTarget(store), cpu_(std::make_unique<cpu::Cpu>(config)) {}

TargetSystemData SwifiSimTarget::Describe(const std::string& name) {
  TargetSystemData data;
  data.name = name;
  data.description =
      "TRD32 simulator without scan logic (pre-runtime and runtime SWIFI only)";
  data.chain_data = "memory.text - - -\nmemory.data - - -\n";
  return data;
}

util::Status SwifiSimTarget::EnsureWorkload() {
  if (workload_ready_ && workload_.name == campaign_.workload) {
    return util::Status::Ok();
  }
  auto spec = env::GetWorkload(campaign_.workload);
  if (!spec.ok()) return spec.status();
  workload_ = std::move(spec).value();
  auto program = isa::Assemble(workload_.source);
  if (!program.ok()) return program.status();
  program_ = std::move(program).value();

  environment_.reset();
  input_addr_ = output_addr_ = loop_end_addr_ = result_addr_ = 0;
  if (workload_.infinite_loop) {
    if (workload_.environment == "inverted_pendulum") {
      environment_ = std::make_unique<env::InvertedPendulum>();
    } else if (workload_.environment == "cruise_control") {
      environment_ = std::make_unique<env::CruiseControl>();
    } else if (!workload_.environment.empty()) {
      return util::InvalidArgument("unknown environment " + workload_.environment);
    }
    auto io = program_.Symbol(workload_.input_symbol);
    if (!io.ok()) return io.status();
    input_addr_ = io.value();
    output_addr_ = input_addr_ + workload_.input_words * 4;
    auto boundary = program_.Symbol(workload_.iteration_symbol);
    if (!boundary.ok()) return boundary.status();
    loop_end_addr_ = boundary.value();
  } else if (!workload_.result_symbol.empty()) {
    auto result = program_.Symbol(workload_.result_symbol);
    if (!result.ok()) return result.status();
    result_addr_ = result.value();
  }
  workload_ready_ = true;
  return util::Status::Ok();
}

util::Status SwifiSimTarget::InitTestCard() {
  // No physical card: "init" means power-cycling the simulator instance.
  cpu_->PowerCycle();
  iterations_ = 0;
  timed_out_ = false;
  actuator_crc_.Reset();
  outputs_.clear();
  prune_active_ = false;
  converged_ = false;
  prune_next_check_ = 0;
  memo_pending_ = false;
  memo_blob_.clear();
  return util::Status::Ok();
}

util::Status SwifiSimTarget::LoadWorkload() {
  GOOFI_RETURN_IF_ERROR(EnsureWorkload());
  uint32_t text_bytes = 0;
  const auto etext = program_.symbols.find("_etext");
  if (etext != program_.symbols.end() && etext->second > program_.base_address) {
    text_bytes = etext->second - program_.base_address;
  }
  GOOFI_RETURN_IF_ERROR(
      cpu_->LoadProgram(program_.base_address, program_.words, text_bytes));
  if (environment_) environment_->Reset();
  if (golden_image_workload_ != campaign_.workload) {
    // Declare the pristine downloaded image as the shared golden page set,
    // once per workload (pre-runtime image mutations land as private pages
    // on top). See ThorRdTarget::LoadWorkload for the sharing rationale.
    cpu_->MarkMemoryBaseline();
    golden_image_workload_ = campaign_.workload;
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::WriteMemory() {
  if (environment_ == nullptr) return util::Status::Ok();
  const std::vector<uint32_t> inputs = environment_->Sense();
  for (size_t i = 0; i < inputs.size(); ++i) {
    GOOFI_RETURN_IF_ERROR(
        cpu_->HostWriteWord(input_addr_ + static_cast<uint32_t>(i) * 4, inputs[i]));
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::RunWorkload() {
  cpu_->Reset(program_.entry);
  return util::Status::Ok();
}

bool SwifiSimTarget::Terminated() const {
  return cpu_->halted() || cpu_->detected() || timed_out_ ||
         (environment_ != nullptr && iterations_ >= campaign_.max_iterations);
}

util::Status SwifiSimTarget::ServiceIteration() {
  std::vector<uint32_t> outputs;
  for (uint32_t i = 0; i < workload_.output_words; ++i) {
    auto word = cpu_->memory().HostRead(output_addr_ + i * 4);
    if (!word.ok()) return word.status();
    outputs.push_back(word.value());
    actuator_crc_.UpdateWord(word.value());
  }
  const std::vector<uint32_t> inputs = environment_->Exchange(outputs);
  for (size_t i = 0; i < inputs.size(); ++i) {
    GOOFI_RETURN_IF_ERROR(
        cpu_->HostWriteWord(input_addr_ + static_cast<uint32_t>(i) * 4, inputs[i]));
  }
  ++iterations_;
  return util::Status::Ok();
}

util::Status SwifiSimTarget::RunUntil(uint64_t stop_instr) {
  if (!use_fast_run_) {
    while (!Terminated()) {
      if (stop_instr != 0 && cpu_->instructions_retired() >= stop_instr) {
        return util::Status::Ok();
      }
      // Convergence boundary: checked at the loop top, i.e. after the step
      // that reached the boundary count and its iteration servicing — the
      // same program point the golden trace captured at.
      if (prune_active_ && !converged_ &&
          cpu_->instructions_retired() >= prune_next_check_) {
        GOOFI_RETURN_IF_ERROR(AtBoundary());
        if (converged_) return util::Status::Ok();
      }
      const uint32_t exec_pc = cpu_->pc();
      const cpu::StepOutcome outcome = cpu_->Step();
      if (environment_ != nullptr && exec_pc == loop_end_addr_) {
        GOOFI_RETURN_IF_ERROR(ServiceIteration());
      }
      if (cpu_->cycles() >= campaign_.timeout_cycles) {
        timed_out_ = true;
        return util::Status::Ok();
      }
      if (outcome != cpu::StepOutcome::kOk) return util::Status::Ok();
    }
    return util::Status::Ok();
  }

  // Fast path: same loop, with the per-step interior handled by the
  // superblock primitive. Every condition the reference loop checks per
  // step can only change at a primitive stop: halt/detection end the
  // primitive, the retired-instruction breakpoint is its instret budget,
  // the timeout its cycle budget (the reference compares cycles >= timeout
  // without a zero guard, so 0 means "stop after one step", not "off"),
  // and boundary-iteration servicing is a pc watch.
  cpu::RunFastRequest request;
  request.max_cycles = std::max<uint64_t>(campaign_.timeout_cycles, 1);
  if (environment_ != nullptr) {
    request.watch_pc_enabled = true;
    request.watch_pc = loop_end_addr_;
  }
  while (!Terminated()) {
    if (stop_instr != 0 && cpu_->instructions_retired() >= stop_instr) {
      return util::Status::Ok();
    }
    if (prune_active_ && !converged_ &&
        cpu_->instructions_retired() >= prune_next_check_) {
      GOOFI_RETURN_IF_ERROR(AtBoundary());
      if (converged_) return util::Status::Ok();
    }
    // The instret budget is the nearer of the caller's breakpoint and the
    // next convergence boundary, so the primitive stops exactly where the
    // reference loop would act (0 = unbounded).
    uint64_t budget = stop_instr;
    if (prune_active_ && !converged_) {
      budget = budget == 0 ? prune_next_check_
                           : std::min(budget, prune_next_check_);
    }
    request.max_instret = budget;
    const cpu::RunFastResult fast = cpu_->RunFastEx(request);
    // The boundary iteration is serviced even when the step faulted — the
    // exchange happens before the outcome is inspected, as in the slow loop.
    if (environment_ != nullptr && fast.exec_pc == loop_end_addr_) {
      GOOFI_RETURN_IF_ERROR(ServiceIteration());
    }
    if (cpu_->cycles() >= campaign_.timeout_cycles) {
      timed_out_ = true;
      return util::Status::Ok();
    }
    if (fast.outcome != cpu::StepOutcome::kOk) return util::Status::Ok();
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::EnsureWarmBaseline() {
  if (warm_ready_workload_ == campaign_.workload) return util::Status::Ok();
  // The deterministic cold prologue every experiment shares. Running it once
  // per worker makes each worker's baseline image identical to the one the
  // cache's deltas were captured against.
  GOOFI_RETURN_IF_ERROR(InitTestCard());
  GOOFI_RETURN_IF_ERROR(LoadWorkload());
  GOOFI_RETURN_IF_ERROR(WriteMemory());
  cpu_->MarkMemoryBaseline();
  warm_ready_workload_ = campaign_.workload;
  return util::Status::Ok();
}

util::Status SwifiSimTarget::CaptureCheckpoint(CheckpointCache* cache) {
  auto payload = std::make_shared<SwifiPayload>();
  payload->cpu = cpu_->SaveSnapshot();
  payload->iterations = iterations_;
  payload->crc_state = actuator_crc_.raw_state();
  if (environment_ != nullptr) payload->env_state = environment_->SaveState();
  Checkpoint checkpoint;
  checkpoint.instret = cpu_->instructions_retired();
  checkpoint.payload = std::move(payload);
  cache->Add(std::move(checkpoint));
  return util::Status::Ok();
}

util::Status SwifiSimTarget::BuildGoldenRun(uint64_t interval,
                                            CheckpointCache* cache,
                                            GoldenTrace* trace) {
  if (interval == 0 || (cache == nullptr && trace == nullptr)) {
    return util::InvalidArgument("checkpoint interval must be positive");
  }
  if (cache != nullptr) {
    GOOFI_RETURN_IF_ERROR(BuildCheckpointPass(interval, cache));
  }
  if (trace != nullptr) {
    GOOFI_RETURN_IF_ERROR(BuildTracePass(interval, trace));
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::BuildCheckpointPass(uint64_t interval,
                                                 CheckpointCache* cache) {
  // Golden run: the fault-free workload, stepped with exactly the semantics
  // of RunUntil. Captures happen at the loop top — the same program point a
  // cold WaitForBreakpoint stops at — so the state at instret N here is
  // bit-for-bit the state a cold experiment passes through at instret N.
  faults_.clear();
  warm_ready_workload_.clear();
  GOOFI_RETURN_IF_ERROR(EnsureWarmBaseline());
  cpu_->Reset(program_.entry);  // RunWorkload, minus re-downloading memory
  uint64_t next_capture = 0;
  if (use_fast_run_) {
    // Fast-forward between capture points with the superblock primitive;
    // stops land exactly where the stepped loop below would act (capture
    // crossings, boundary iterations, timeout, halt/detection).
    cpu::RunFastRequest request;
    request.max_cycles = std::max<uint64_t>(campaign_.timeout_cycles, 1);
    if (environment_ != nullptr) {
      request.watch_pc_enabled = true;
      request.watch_pc = loop_end_addr_;
    }
    for (;;) {
      if (Terminated()) break;
      if (cpu_->instructions_retired() >= next_capture) {
        GOOFI_RETURN_IF_ERROR(CaptureCheckpoint(cache));
        next_capture = cpu_->instructions_retired() + interval;
        if (next_capture >= campaign_.inject_max_instr) break;
      }
      request.max_instret = next_capture;
      const cpu::RunFastResult fast = cpu_->RunFastEx(request);
      if (environment_ != nullptr && fast.exec_pc == loop_end_addr_) {
        GOOFI_RETURN_IF_ERROR(ServiceIteration());
      }
      if (cpu_->cycles() >= campaign_.timeout_cycles) {
        timed_out_ = true;
        break;
      }
      if (fast.outcome != cpu::StepOutcome::kOk) break;
    }
    return util::Status::Ok();
  }
  for (;;) {
    if (Terminated()) break;
    if (cpu_->instructions_retired() >= next_capture) {
      GOOFI_RETURN_IF_ERROR(CaptureCheckpoint(cache));
      next_capture = cpu_->instructions_retired() + interval;
      // No experiment can use a checkpoint at or past inject_max_instr
      // (FindBefore is strict), so stop the golden run there.
      if (next_capture >= campaign_.inject_max_instr) break;
    }
    const uint32_t exec_pc = cpu_->pc();
    const cpu::StepOutcome outcome = cpu_->Step();
    // RunUntil services the boundary iteration even when the step faulted —
    // the exchange happens before the outcome is inspected. Mirror that.
    if (environment_ != nullptr && exec_pc == loop_end_addr_) {
      GOOFI_RETURN_IF_ERROR(ServiceIteration());
    }
    if (cpu_->cycles() >= campaign_.timeout_cycles) {
      timed_out_ = true;
      break;  // the golden run hit the campaign timeout; checkpoints end here
    }
    if (outcome != cpu::StepOutcome::kOk) break;
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::BuildTracePass(uint64_t interval,
                                            GoldenTrace* trace) {
  trace->set_interval(interval);
  trace->set_campaign_name(campaign_.name);
  // Drive the fault-free workload through RunUntil with boundary capture
  // active, then run the standard experiment epilogue so the golden final
  // state is row-identical to a full fault-free experiment. This target
  // never logs detail rows, so the trace carries none (and needs none for
  // detail-mode synthesis).
  faults_.clear();
  warm_ready_workload_.clear();
  GOOFI_RETURN_IF_ERROR(EnsureWarmBaseline());
  cpu_->Reset(program_.entry);  // RunWorkload, minus re-downloading memory
  capture_trace_ = trace;
  prune_active_ = true;
  converged_ = false;
  prune_next_check_ = 0;  // first capture at instret 0, then every interval
  const util::Status run = RunUntil(0);
  capture_trace_ = nullptr;
  prune_active_ = false;
  GOOFI_RETURN_IF_ERROR(run);
  GOOFI_RETURN_IF_ERROR(ReadMemory());
  auto state = CollectState();
  if (!state.ok()) return state.status();
  trace->SetFinalState(std::move(state).value());
  return util::Status::Ok();
}

util::Status SwifiSimTarget::HashTargetNow(cpu::StateHasher* hasher) {
  cpu_->HashExecutionState(hasher);
  hasher->U32(actuator_crc_.raw_state());
  hasher->I32(iterations_);
  if (environment_ != nullptr) {
    environment_->SaveStateInto(&env_state_scratch_);
    hasher->U64(env_state_scratch_.size());
    for (double value : env_state_scratch_) hasher->Double(value);
  }
  return util::Status::Ok();
}

bool SwifiSimTarget::CanPruneExperiment() const {
  if (!convergence_pruning_ || golden_trace_ == nullptr) return false;
  const GoldenTrace& trace = *golden_trace_;
  if (trace.interval() == 0 || !trace.has_final_state()) return false;
  if (trace.campaign_name() != campaign_.name) return false;
  if (faults_.empty()) return false;
  // No model restriction: this target applies each fault exactly once (it
  // has no reactivation machinery), so once WaitForTermination starts the
  // rest of the run is a pure function of the hashed state for every model,
  // permanent stuck-at included.
  // Canonical memory hashing digests against the workload's baseline.
  return warm_ready_workload_ == campaign_.workload;
}

util::Status SwifiSimTarget::AtBoundary() {
  const uint64_t instret = cpu_->instructions_retired();
  if (capture_trace_ != nullptr) {
    cpu::StateHasher hasher(/*capture=*/true);
    GOOFI_RETURN_IF_ERROR(HashTargetNow(&hasher));
    GoldenBoundary boundary;
    boundary.instret = instret;
    boundary.hash = hasher.hash();
    boundary.blob = hasher.TakeBlob();
    capture_trace_->AddBoundary(std::move(boundary));
    prune_next_check_ =
        (instret / capture_trace_->interval() + 1) * capture_trace_->interval();
    return util::Status::Ok();
  }
  const uint64_t interval = golden_trace_->interval();
  const uint64_t next = (instret / interval + 1) * interval;
  if (instret != prune_next_check_) {
    // Overshot the boundary (instret budgets stop exactly, so this should
    // not happen); skip rather than compare at a non-boundary point.
    prune_next_check_ = next;
    return util::Status::Ok();
  }
  prune_next_check_ = next;
  const GoldenBoundary* golden = golden_trace_->FindBoundary(instret);
  if (golden == nullptr) {
    prune_active_ = false;  // golden terminated before this point
    return util::Status::Ok();
  }
  ++prune_stats_.boundary_checks;
  cpu::StateHasher hasher(/*capture=*/true);
  GOOFI_RETURN_IF_ERROR(HashTargetNow(&hasher));
  if (hasher.hash() == golden->hash) {
    if (hasher.blob() == golden->blob) {
      synth_state_ = golden_trace_->final_state();
      converged_ = true;
      ++prune_stats_.pruned_golden;
      return util::Status::Ok();
    }
    ++prune_stats_.collision_rejects;
  }
  if (convergence_memo_ != nullptr &&
      convergence_memo_->Lookup(instret, hasher.hash(), hasher.blob(),
                                &synth_state_)) {
    converged_ = true;
    ++prune_stats_.pruned_memo;
    return util::Status::Ok();
  }
  if (!memo_pending_) {
    memo_pending_ = true;
    memo_instret_ = instret;
    memo_hash_ = hasher.hash();
    memo_blob_ = hasher.TakeBlob();
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::RestoreCheckpoint(const Checkpoint& checkpoint) {
  const auto* payload =
      dynamic_cast<const SwifiPayload*>(checkpoint.payload.get());
  if (payload == nullptr) {
    return util::Internal("checkpoint payload is not a SWIFI sim snapshot");
  }
  GOOFI_RETURN_IF_ERROR(EnsureWarmBaseline());
  cpu_->RestoreSnapshot(payload->cpu);
  // Per-experiment bookkeeping exactly as a cold run carries it to this
  // instruction. This target has no debug triggers to re-arm: RunUntil polls
  // the retired-instruction counter directly.
  iterations_ = payload->iterations;
  timed_out_ = false;
  actuator_crc_.set_raw_state(payload->crc_state);
  outputs_.clear();
  prune_active_ = false;
  converged_ = false;
  prune_next_check_ = 0;
  memo_pending_ = false;
  memo_blob_.clear();
  if (environment_ != nullptr) environment_->RestoreState(payload->env_state);
  return util::Status::Ok();
}

util::Status SwifiSimTarget::WaitForBreakpoint() {
  return RunUntil(faults_.empty() ? 0 : faults_.front().inject_instr);
}

util::Status SwifiSimTarget::WaitForTermination() {
  converged_ = false;
  memo_pending_ = false;
  prune_active_ = false;
  if (CanPruneExperiment()) {
    // First boundary strictly after the injection point: a faulty run can
    // only have rejoined the golden trajectory after the fault landed.
    const uint64_t interval = golden_trace_->interval();
    prune_next_check_ =
        (cpu_->instructions_retired() / interval + 1) * interval;
    prune_active_ = true;
  }
  return RunUntil(0);
}

util::Status SwifiSimTarget::ReadMemory() {
  // A converged run takes its outputs from the synthesized state.
  if (converged_) return util::Status::Ok();
  if (environment_ != nullptr) {
    outputs_ = {actuator_crc_.Value()};
    return util::Status::Ok();
  }
  outputs_.clear();
  for (uint32_t i = 0; i < workload_.result_words; ++i) {
    auto word = cpu_->memory().HostRead(result_addr_ + i * 4);
    if (!word.ok()) return word.status();
    outputs_.push_back(word.value());
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::ApplyMemoryFaults() {
  for (const FaultInstance& fault : faults_) {
    if (fault.IsScanFault()) {
      return util::InvalidArgument(
          "target " + std::string(kTargetName) +
          " has no scan chains; use memory.text / memory.data selectors");
    }
    auto word = cpu_->memory().HostRead(fault.address);
    if (!word.ok()) return word.status();
    uint32_t value = word.value();
    if (fault.kind == FaultModelKind::kPermanentStuckAt) {
      if (fault.stuck_value) {
        value |= (1u << fault.bit);
      } else {
        value &= ~(1u << fault.bit);
      }
    } else {
      value ^= (1u << fault.bit);
    }
    GOOFI_RETURN_IF_ERROR(cpu_->HostWriteWord(fault.address, value));
  }
  return util::Status::Ok();
}

util::Status SwifiSimTarget::MutateImage() { return ApplyMemoryFaults(); }

util::Status SwifiSimTarget::InjectMemoryFault() {
  if (Terminated()) return util::Status::Ok();
  return ApplyMemoryFaults();
}

util::Result<std::vector<FaultCandidate>> SwifiSimTarget::EnumerateFaultSpace(
    const FaultLocationSelector& selector) {
  GOOFI_RETURN_IF_ERROR(EnsureWorkload());
  if (selector.chain != "memory.text" && selector.chain != "memory.data") {
    return util::InvalidArgument("target " + std::string(kTargetName) +
                                 " only supports memory.text / memory.data, got " +
                                 selector.chain);
  }
  uint32_t begin = program_.base_address;
  uint32_t end = program_.base_address + program_.size_bytes();
  const auto etext = program_.symbols.find("_etext");
  if (etext != program_.symbols.end()) {
    if (selector.chain == "memory.text") {
      end = etext->second;
    } else {
      begin = etext->second;
    }
  } else if (selector.chain == "memory.data") {
    return util::InvalidArgument("workload has no _etext marker");
  }
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  if (end > begin) ranges.emplace_back(begin, end);
  // Control workloads keep their working data in the environment I/O buffer
  // (see ThorRdTarget::EnumerateFaultSpace).
  if (selector.chain == "memory.data" && workload_.infinite_loop) {
    const uint32_t io_end =
        input_addr_ + (workload_.input_words + workload_.output_words) * 4;
    ranges.emplace_back(input_addr_, io_end);
  }
  if (ranges.empty()) {
    return util::InvalidArgument("selector matches no words: " +
                                 selector.ToString());
  }
  std::vector<FaultCandidate> out;
  for (const auto& [range_begin, range_end] : ranges) {
    for (uint32_t address = range_begin; address < range_end; address += 4) {
      for (uint32_t bit = 0; bit < 32; ++bit) {
        FaultCandidate candidate;
        candidate.scan = false;
        candidate.address = address;
        candidate.bit = bit;
        candidate.cell_name =
            util::Format("%s@0x%08x", selector.chain.c_str(), address);
        out.push_back(std::move(candidate));
      }
    }
  }
  return out;
}

util::Result<LoggedState> SwifiSimTarget::CollectState() {
  LoggedState state;
  if (converged_) {
    state = synth_state_;
  } else {
    state.detected = cpu_->detected();
    state.halted = cpu_->halted() && !cpu_->detected();
    if (state.detected) {
      state.edm = cpu::EdmTypeName(cpu_->edm_event().type);
      state.edm_code = cpu_->edm_event().code;
    }
    state.timed_out = timed_out_;
    state.env_failed = environment_ != nullptr && environment_->Failed();
    state.cycles = cpu_->cycles();
    state.instret = cpu_->instructions_retired();
    state.iterations = iterations_;
    state.outputs = outputs_;
    // The simulator host observes the architectural state directly.
    util::BitVec image;
    image.Reserve((isa::kNumRegisters + 1) * 32);
    for (int reg = 0; reg < isa::kNumRegisters; ++reg) {
      image.AppendWord(cpu_->reg(reg), 32);
    }
    image.AppendWord(cpu_->pc(), 32);
    state.scan_images["sim.regfile"] = image.ToString();
  }
  // Memoize the deterministic outcome of the first divergent boundary state
  // recorded in AtBoundary (whether this run later converged or ran out).
  if (memo_pending_) {
    if (convergence_memo_ != nullptr &&
        convergence_memo_->Insert(memo_instret_, memo_hash_,
                                  std::move(memo_blob_), state)) {
      ++prune_stats_.memo_inserts;
    }
    memo_pending_ = false;
    memo_blob_.clear();
  }
  return state;
}

}  // namespace goofi::core
