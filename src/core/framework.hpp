// The Framework class (paper Fig. 3): the template a programmer copies when
// adapting GOOFI to a new target system.
//
//   "The Framework class is used as a template by the programmer when
//    creating a new TargetSystemInterface class. The TargetSystemInterface
//    class inherits the FaultInjectionAlgorithms class and can therefore use
//    the defined fault injection algorithms directly. Only the abstract
//    methods used by the algorithm need to be implemented." (§2)
//
// Every method body below is a placeholder that fails loudly — exactly the
// paper's "// Write your code here!" convention, made type-safe. Subclass
// FrameworkTarget, override the blocks your chosen technique uses (see the
// sequences in core/algorithms.cpp), and leave the rest as-is; an algorithm
// that calls an unimplemented block reports which one.
#pragma once

#include "core/algorithms.hpp"

namespace goofi::core {

class FrameworkTarget : public FaultInjectionAlgorithms {
 public:
  explicit FrameworkTarget(CampaignStore* store)
      : FaultInjectionAlgorithms(store) {}

 protected:
  util::Status InitTestCard() override { return Unimplemented("InitTestCard"); }
  util::Status LoadWorkload() override { return Unimplemented("LoadWorkload"); }
  util::Status WriteMemory() override { return Unimplemented("WriteMemory"); }
  util::Status RunWorkload() override { return Unimplemented("RunWorkload"); }
  util::Status WaitForBreakpoint() override {
    return Unimplemented("WaitForBreakpoint");
  }
  util::Status ReadScanChain() override { return Unimplemented("ReadScanChain"); }
  util::Status InjectFault() override { return Unimplemented("InjectFault"); }
  util::Status WriteScanChain() override {
    return Unimplemented("WriteScanChain");
  }
  util::Status WaitForTermination() override {
    return Unimplemented("WaitForTermination");
  }
  util::Status ReadMemory() override { return Unimplemented("ReadMemory"); }
  util::Status MutateImage() override { return Unimplemented("MutateImage"); }
  util::Status InjectMemoryFault() override {
    return Unimplemented("InjectMemoryFault");
  }
  util::Result<std::vector<FaultCandidate>> EnumerateFaultSpace(
      const FaultLocationSelector&) override {
    return Unimplemented("EnumerateFaultSpace");
  }
  util::Result<LoggedState> CollectState() override {
    return Unimplemented("CollectState");
  }

 private:
  static util::Status Unimplemented(const char* method) {
    // "// Write your code here!" — Fig. 3.
    return util::FailedPrecondition(
        std::string(method) +
        " is not implemented for this target system (see core/framework.hpp)");
  }
};

}  // namespace goofi::core
