#include "core/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "core/swifi_target.hpp"
#include "core/thor_target.hpp"
#include "cpu/state_hash.hpp"
#include "db/archive.hpp"
#include "testcard/testcard.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace goofi::core {

namespace {

/// One dispatched experiment's outcome, filled by a worker and consumed by
/// the committer in pending order.
struct Slot {
  bool done = false;
  util::Status status;
  std::vector<CampaignStore::ExperimentRow> rows;
  int skipped_dead = 0;  ///< liveness-filter skips charged to this experiment
};

}  // namespace

ParallelCampaignRunner::ParallelCampaignRunner(CampaignStore* store,
                                               TargetFactory factory,
                                               int num_workers)
    : store_(store),
      factory_(std::move(factory)),
      num_workers_(num_workers > 0 ? num_workers
                                   : util::ThreadPool::DefaultWorkers()) {}

void ParallelCampaignRunner::SetCommitBatchRows(int rows) {
  batch_rows_ = std::max(1, rows);
}

util::Status ParallelCampaignRunner::Run(const std::string& campaign_name) {
  stats_ = FaultInjectionAlgorithms::Stats{};
  warm_starts_ = 0;
  prune_stats_ = ConvergenceStats{};
  dedup_stats_ = EquivalenceStats{};
  memory_usage_ = cpu::MemoryUsageAggregator::Totals{};
  auto campaign_or = store_->GetCampaign(campaign_name);
  if (!campaign_or.ok()) return campaign_or.status();
  const CampaignData campaign = std::move(campaign_or).value();

  // With a durable archive attached, align its WAL group commits with our
  // ordered result batches: buffer records across each batch and flush once
  // per PutExperiments instead of once per row.
  std::optional<db::Archive::GroupCommitScope> wal_group;
  if (store_->archive() != nullptr) wal_group.emplace(store_->archive());

  // Resume semantics (Fig. 7 restart): experiments already in the database
  // are skipped before dispatch, exactly like the serial driver.
  const bool need_reference =
      !store_->GetExperiment(CampaignStore::ReferenceName(campaign.name)).ok();
  std::vector<int> pending;
  pending.reserve(static_cast<size_t>(std::max(0, campaign.num_experiments)));
  for (int i = 0; i < campaign.num_experiments; ++i) {
    if (store_->GetExperiment(CampaignStore::ExperimentName(campaign.name, i))
            .ok()) {
      ++stats_.experiments_resumed;
    } else {
      pending.push_back(i);
    }
  }

  const int workers = std::max(
      1, std::min(num_workers_, static_cast<int>(std::max<size_t>(
                                    1, pending.size()))));
  workers_used_ = workers;

  // Build the worker-owned target stacks up front; a factory or fault-space
  // error surfaces here before any thread starts. Dedup adds one extra
  // target for the committer thread (fault-list planning, detail-cap
  // fallback executions, spot checks).
  const int target_count = equivalence_classing_ ? workers + 1 : workers;
  std::vector<std::unique_ptr<FaultInjectionAlgorithms>> targets;
  targets.reserve(static_cast<size_t>(target_count));
  for (int w = 0; w < target_count; ++w) {
    std::unique_ptr<FaultInjectionAlgorithms> target = factory_();
    if (target == nullptr) {
      return util::Internal("parallel runner: target factory returned null");
    }
    if (liveness_filter_) target->SetLivenessFilter(liveness_filter_);
    // Suppress the per-target auto-build: a shared cache (below) replaces N
    // redundant golden runs with one.
    target->SetCheckpointInterval(0);
    GOOFI_RETURN_IF_ERROR(target->PrepareCampaign(campaign));
    targets.push_back(std::move(target));
  }

  // Build the golden run once, on the committer thread, and share its
  // products read-only across all workers. Checkpoint cache: same engagement
  // rule as the serial driver — warm-start only pays off when every fault
  // injects at or after the first snapshot interval (or when forced).
  // Convergence trace: any checkpoint-capable target qualifies (even
  // pre-runtime SWIFI data faults can rejoin the golden trajectory).
  const bool warm_technique = campaign.technique == Technique::kScifi ||
                              campaign.technique == Technique::kSwifiRuntime;
  const bool want_cache =
      checkpoint_interval_ > 0 && warm_technique &&
      targets[0]->SupportsCheckpoints() &&
      (force_warm_start_ || campaign.inject_min_instr >= checkpoint_interval_);
  const bool want_trace = convergence_pruning_ && checkpoint_interval_ > 0 &&
                          targets[0]->SupportsCheckpoints();
  if (want_cache || want_trace) {
    auto cache = want_cache
                     ? std::make_shared<CheckpointCache>(checkpoint_interval_)
                     : nullptr;
    auto trace = want_trace ? std::make_shared<GoldenTrace>() : nullptr;
    GOOFI_RETURN_IF_ERROR(targets[0]->BuildGoldenRun(
        checkpoint_interval_, cache ? cache.get() : nullptr,
        trace ? trace.get() : nullptr));
    if (cache != nullptr) {
      const std::shared_ptr<const CheckpointCache> shared = std::move(cache);
      for (auto& target : targets) target->SetCheckpointCache(shared);
    }
    if (trace != nullptr) {
      const std::shared_ptr<const GoldenTrace> shared_trace = std::move(trace);
      // One memo for the whole run: a suffix outcome memoized by any worker
      // prunes matching experiments on every worker (single-writer inserts
      // under the memo's lock, shared lock-guarded lookups).
      auto memo = std::make_shared<ConvergenceMemo>();
      for (auto& target : targets) {
        target->SetConvergencePruning(true);
        target->SetGoldenTrace(shared_trace);
        target->SetConvergenceMemo(memo);
        // Each worker needs its own memory baseline for canonical hashing.
        GOOFI_RETURN_IF_ERROR(target->PrepareGoldenBaseline());
      }
    }
  }

  // The reference run commits before any experiment row, matching serial
  // insertion order. Its final state doubles as the golden endpoint for the
  // equivalence classer (injection past it provably never happens).
  LoggedState reference_state;
  if (need_reference) {
    auto rows = targets[0]->ExecuteExperiment(-1);
    if (!rows.ok()) return rows.status();
    reference_state = rows.value().front().state;
    GOOFI_RETURN_IF_ERROR(store_->PutExperiments(rows.value()));
  } else if (equivalence_classing_) {
    auto reference =
        store_->GetExperiment(CampaignStore::ReferenceName(campaign.name));
    if (!reference.ok()) return reference.status();
    reference_state = std::move(reference).value().state;
  }
  if (pending.empty()) return util::Status::Ok();

  if (equivalence_classing_) {
    return RunDeduped(campaign, pending, targets, reference_state);
  }

  // Dispatch: workers pull pending positions off a shared cursor; results
  // land in per-position slots the committer drains in order.
  std::vector<Slot> slots(pending.size());
  std::atomic<size_t> cursor{0};
  std::atomic<bool> cancel{false};
  std::mutex mutex;
  std::condition_variable slot_ready;

  auto worker_main = [&](int w) {
    FaultInjectionAlgorithms& target = *targets[static_cast<size_t>(w)];
    for (;;) {
      if (cancel.load(std::memory_order_relaxed)) return;
      const size_t pos = cursor.fetch_add(1, std::memory_order_relaxed);
      if (pos >= pending.size()) return;
      const int dead_before = target.stats().injections_skipped_dead;
      auto rows = target.ExecuteExperiment(pending[pos]);
      Slot slot;
      slot.done = true;
      if (rows.ok()) {
        slot.rows = std::move(rows).value();
      } else {
        slot.status = rows.status();
      }
      slot.skipped_dead =
          target.stats().injections_skipped_dead - dead_before;
      {
        std::lock_guard<std::mutex> lock(mutex);
        slots[pos] = std::move(slot);
      }
      slot_ready.notify_one();
    }
  };

  util::ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&worker_main, w]() { worker_main(w); });
  }

  // Single-writer committer: strictly ordered, batched commits; progress
  // callbacks (and early stop) ride this thread.
  std::vector<CampaignStore::ExperimentRow> batch;
  batch.reserve(static_cast<size_t>(batch_rows_));
  util::Status error = util::Status::Ok();
  auto flush = [&]() {
    if (batch.empty()) return util::Status::Ok();
    util::Status st = store_->PutExperiments(batch);
    batch.clear();
    return st;
  };
  for (size_t pos = 0; pos < pending.size() && error.ok(); ++pos) {
    Slot slot;
    {
      std::unique_lock<std::mutex> lock(mutex);
      slot_ready.wait(lock, [&]() { return slots[pos].done; });
      slot = std::move(slots[pos]);
    }
    if (!slot.status.ok()) {
      error = slot.status;
      break;
    }
    const LoggedState last_state = slot.rows.front().state;
    for (CampaignStore::ExperimentRow& row : slot.rows) {
      batch.push_back(std::move(row));
    }
    ++stats_.experiments_run;
    stats_.injections_skipped_dead += slot.skipped_dead;
    if (static_cast<int>(batch.size()) >= batch_rows_) {
      error = flush();
      if (!error.ok()) break;
    }
    if (monitor_ != nullptr &&
        !monitor_->OnExperiment(pending[pos] + 1, campaign.num_experiments,
                                last_state)) {
      util::Log::Info("campaign " + campaign_name + " ended by user after " +
                      std::to_string(pending[pos] + 1) + " experiments");
      break;  // early stop: later experiments are cancelled and discarded
    }
  }

  cancel.store(true, std::memory_order_relaxed);
  pool.Shutdown();

  cpu::MemoryUsageAggregator memory_usage;
  for (const auto& target : targets) {
    warm_starts_ += target->warm_starts();
    prune_stats_ += target->prune_stats();
    if (const cpu::Memory* memory = target->TargetMemory()) {
      memory_usage.Add(*memory);
    }
  }
  memory_usage_ = memory_usage.totals();

  // Commit what completed in order before reporting any error — the same
  // prefix a serial run that failed at this experiment would have logged.
  const util::Status flush_status = flush();
  if (!error.ok()) return error;
  return flush_status;
}

namespace {

/// Digest of a full result-row set for spot-check comparison: name, parent,
/// campaign, data and serialized state of every row, order-sensitive. The
/// capture blob makes equal hashes mean equal rows.
void HashRows(const std::vector<CampaignStore::ExperimentRow>& rows,
              cpu::StateHasher* hasher) {
  hasher->U64(rows.size());
  for (const CampaignStore::ExperimentRow& row : rows) {
    hasher->Str(row.experiment_name);
    hasher->Str(row.parent_experiment);
    hasher->Str(row.campaign_name);
    hasher->Str(row.experiment_data);
    hasher->Str(row.state.Serialize());
  }
}

bool RowsIdentical(const std::vector<CampaignStore::ExperimentRow>& a,
                   const std::vector<CampaignStore::ExperimentRow>& b) {
  cpu::StateHasher hash_a(/*capture=*/true);
  cpu::StateHasher hash_b(/*capture=*/true);
  HashRows(a, &hash_a);
  HashRows(b, &hash_b);
  return hash_a.hash() == hash_b.hash() && hash_a.blob() == hash_b.blob();
}

}  // namespace

util::Status ParallelCampaignRunner::RunDeduped(
    const CampaignData& campaign, const std::vector<int>& pending,
    std::vector<std::unique_ptr<FaultInjectionAlgorithms>>& targets,
    const LoggedState& reference_state) {
  const int workers = workers_used_;
  FaultInjectionAlgorithms& spare = *targets.back();

  // Plan every pending fault list on the committer's target: the same RNG
  // stream and liveness-filter retries as execution, so the lists are
  // exactly what a plain run would draw. Filter skips are recorded per
  // experiment and charged when it commits, keeping Stats equal to serial.
  std::vector<std::vector<FaultInstance>> plans(pending.size());
  std::vector<int> plan_skips(pending.size(), 0);
  for (size_t pos = 0; pos < pending.size(); ++pos) {
    const int dead_before = spare.stats().injections_skipped_dead;
    auto faults = spare.PlanFaults(pending[pos]);
    if (!faults.ok()) return faults.status();
    plan_skips[pos] = spare.stats().injections_skipped_dead - dead_before;
    plans[pos] = std::move(faults).value();
  }

  EquivalenceClasser::Config config;
  config.technique = campaign.technique;
  config.fault_model = campaign.fault_model;
  config.faults_per_experiment = campaign.faults_per_experiment;
  config.has_golden_end = true;
  config.golden_end_instret = reference_state.instret;
  config.static_analysis = equivalence_static_.get();
  EquivalenceClasser classer(equivalence_timeline_.get(), config);
  for (size_t pos = 0; pos < pending.size(); ++pos) {
    classer.Add(static_cast<int>(pos), plans[pos]);
  }
  const std::vector<EquivalenceClasser::Class>& classes = classer.classes();
  dedup_stats_.classes_formed = classer.multi_member_classes();

  // Dispatch: one slot per class; workers pull class ids off the cursor
  // (classes are ordered by first member, so the committer drains them
  // nearly in order) and execute only the representative.
  std::vector<Slot> slots(classes.size());
  std::atomic<size_t> cursor{0};
  std::atomic<bool> cancel{false};
  std::mutex mutex;
  std::condition_variable slot_ready;

  auto worker_main = [&](int w) {
    FaultInjectionAlgorithms& target = *targets[static_cast<size_t>(w)];
    for (;;) {
      if (cancel.load(std::memory_order_relaxed)) return;
      const size_t cid = cursor.fetch_add(1, std::memory_order_relaxed);
      if (cid >= classes.size()) return;
      const int rep = classes[cid].representative;
      auto rows = target.ExecutePlanned(pending[static_cast<size_t>(rep)],
                                        plans[static_cast<size_t>(rep)]);
      Slot slot;
      slot.done = true;
      if (rows.ok()) {
        slot.rows = std::move(rows).value();
      } else {
        slot.status = rows.status();
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        slots[cid] = std::move(slot);
      }
      slot_ready.notify_one();
    }
  };

  util::ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&worker_main, w]() { worker_main(w); });
  }

  // Single-writer committer, strictly in pending order like the plain path.
  // Representatives commit their own rows (copied — later members still
  // synthesize from them); members commit rewritten rows. A representative
  // whose detail log hit the row cap has no usable suffix, so its members
  // fall back to live execution on the committer's target.
  std::vector<CampaignStore::ExperimentRow> batch;
  batch.reserve(static_cast<size_t>(batch_rows_));
  util::Status error = util::Status::Ok();
  bool early_stop = false;
  auto flush = [&]() {
    if (batch.empty()) return util::Status::Ok();
    util::Status st = store_->PutExperiments(batch);
    batch.clear();
    return st;
  };
  for (size_t pos = 0; pos < pending.size() && error.ok(); ++pos) {
    const size_t cid = classer.class_of(pos);
    {
      std::unique_lock<std::mutex> lock(mutex);
      slot_ready.wait(lock, [&]() { return slots[cid].done; });
    }
    // Past the wait, the worker is done with this slot: reads are safe
    // without the lock, and the rows stay put for later members.
    if (!slots[cid].status.ok()) {
      error = slots[cid].status;
      break;
    }
    const EquivalenceClasser::Class& cls = classes[cid];
    const bool rep_capped =
        cls.suffix_filtered &&
        slots[cid].rows.size() - 1 >= FaultInjectionAlgorithms::kMaxDetailRows;
    std::vector<CampaignStore::ExperimentRow> rows;
    if (static_cast<int>(pos) == cls.representative) {
      if (cls.members.size() == 1) {
        rows = std::move(slots[cid].rows);
      } else {
        rows = slots[cid].rows;
      }
    } else if (rep_capped) {
      auto executed = spare.ExecutePlanned(pending[pos], plans[pos]);
      if (!executed.ok()) {
        error = executed.status();
        break;
      }
      rows = std::move(executed).value();
    } else {
      rows = SynthesizeMemberRows(slots[cid].rows, campaign,
                                  pending[pos], plans[pos],
                                  cls.suffix_filtered);
      ++dedup_stats_.experiments_synthesized;
      if (cls.static_no_effect) ++dedup_stats_.static_synthesized;
    }
    const LoggedState last_state = rows.front().state;
    for (CampaignStore::ExperimentRow& row : rows) {
      batch.push_back(std::move(row));
    }
    ++stats_.experiments_run;
    stats_.injections_skipped_dead += plan_skips[pos];
    if (static_cast<int>(batch.size()) >= batch_rows_) {
      error = flush();
      if (!error.ok()) break;
    }
    if (monitor_ != nullptr &&
        !monitor_->OnExperiment(pending[pos] + 1, campaign.num_experiments,
                                last_state)) {
      util::Log::Info("campaign " + campaign.name + " ended by user after " +
                      std::to_string(pending[pos] + 1) + " experiments");
      early_stop = true;
      break;
    }
  }

  cancel.store(true, std::memory_order_relaxed);
  pool.Shutdown();

  // Spot checks (the collision/logic backstop): re-execute one synthesized
  // member of every n-th multi-member class and require its rows to be
  // byte-identical to the synthesis. Skipped after an error or early stop —
  // the classes past the stop never committed.
  if (error.ok() && !early_stop && spot_check_every_ > 0) {
    int64_t eligible = 0;
    for (size_t cid = 0; cid < classes.size() && error.ok(); ++cid) {
      const EquivalenceClasser::Class& cls = classes[cid];
      if (cls.members.size() < 2) continue;
      const bool rep_capped =
          cls.suffix_filtered &&
          slots[cid].rows.size() - 1 >=
              FaultInjectionAlgorithms::kMaxDetailRows;
      if (rep_capped) continue;  // members ran live; nothing synthesized
      if ((eligible++ % spot_check_every_) != 0) continue;
      int member = -1;
      for (int m : cls.members) {
        if (m != cls.representative) {
          member = m;
          break;
        }
      }
      if (member < 0) continue;
      ++dedup_stats_.spot_checks_run;
      auto actual = spare.ExecutePlanned(pending[static_cast<size_t>(member)],
                                         plans[static_cast<size_t>(member)]);
      if (!actual.ok()) {
        error = actual.status();
        break;
      }
      const std::vector<CampaignStore::ExperimentRow> expected =
          SynthesizeMemberRows(slots[cid].rows, campaign,
                               pending[static_cast<size_t>(member)],
                               plans[static_cast<size_t>(member)],
                               cls.suffix_filtered);
      if (!RowsIdentical(expected, actual.value())) {
        error = util::Internal(
            "equivalence spot check failed: synthesized rows for " +
            CampaignStore::ExperimentName(
                campaign.name, pending[static_cast<size_t>(member)]) +
            " differ from a live re-execution");
        break;
      }
      ++dedup_stats_.spot_checks_passed;
    }
  }

  cpu::MemoryUsageAggregator memory_usage;
  for (const auto& target : targets) {
    warm_starts_ += target->warm_starts();
    prune_stats_ += target->prune_stats();
    if (const cpu::Memory* memory = target->TargetMemory()) {
      memory_usage.Add(*memory);
    }
  }
  memory_usage_ = memory_usage.totals();

  const util::Status flush_status = flush();
  if (!error.ok()) return error;
  return flush_status;
}

ParallelCampaignRunner::TargetFactory MakeSimThorFactory(
    CampaignStore* store, const cpu::CpuConfig& config) {
  // ThorRdTarget takes a non-owning TestCard*; workers need the whole stack
  // to live and die together, so bundle card ownership into the target.
  class OwnedThorStack final : public ThorRdTarget {
   public:
    OwnedThorStack(CampaignStore* store,
                   std::unique_ptr<testcard::SimTestCard> card)
        : ThorRdTarget(store, card.get()), card_(std::move(card)) {}

   private:
    std::unique_ptr<testcard::SimTestCard> card_;
  };
  // One golden-image registry per factory: every worker target built from
  // this factory interns its memory baseline in the same pool, so a
  // campaign's workload image is stored once, not once per worker.
  cpu::CpuConfig shared_config = config;
  if (shared_config.golden_registry == nullptr) {
    shared_config.golden_registry = std::make_shared<cpu::GoldenRegistry>();
  }
  return [store, shared_config]() -> std::unique_ptr<FaultInjectionAlgorithms> {
    return std::make_unique<OwnedThorStack>(
        store, std::make_unique<testcard::SimTestCard>(shared_config));
  };
}

ParallelCampaignRunner::TargetFactory MakeSwifiSimFactory(
    CampaignStore* store, const cpu::CpuConfig& config) {
  // Same golden-image sharing as MakeSimThorFactory.
  cpu::CpuConfig shared_config = config;
  if (shared_config.golden_registry == nullptr) {
    shared_config.golden_registry = std::make_shared<cpu::GoldenRegistry>();
  }
  return [store, shared_config]() -> std::unique_ptr<FaultInjectionAlgorithms> {
    return std::make_unique<SwifiSimTarget>(store, shared_config);
  };
}

}  // namespace goofi::core
