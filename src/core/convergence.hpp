// Golden-trace convergence pruning (PR 4).
//
// Rationale: every post-injection suffix is deterministic. Once a faulty
// target's complete execution-visible state equals the golden (fault-free)
// run's state *at the same retired-instruction count*, the remainder of the
// experiment is bit-for-bit identical to the golden remainder — the fault
// was overwritten or masked, and simulating further cannot produce a
// different outcome. PrepareCampaign therefore records a cheap incremental
// state hash (plus the exact hashed byte stream as a collision guard) at
// every checkpoint boundary of the golden run, together with the golden
// final readouts; experiments compare their own hash at those boundaries and
// terminate early on a verified match, synthesizing the remaining database
// rows from the recorded golden data so the database stays byte-identical to
// a full run.
//
// A cross-experiment memoization table (ConvergenceMemo) layers on top: two
// experiments whose *faulty* states collide at the same instret share one
// simulated suffix, even when neither converges with golden.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace goofi::core {

/// One golden-run observation point: the state digest at an exact
/// retired-instruction count (always a multiple of the trace interval).
/// `blob` is the exact byte stream the hash digested (see cpu::StateHasher):
/// comparing blobs is full-state equality over precisely the hashed scope,
/// so a 64-bit hash collision can never cause a false convergence.
struct GoldenBoundary {
  uint64_t instret = 0;
  uint64_t hash = 0;
  std::vector<uint8_t> blob;
};

/// True iff the candidate state matches the boundary exactly — hash first
/// (cheap reject), then the full-state blob (collision guard).
inline bool ConvergenceMatch(const GoldenBoundary& boundary, uint64_t hash,
                             const std::vector<uint8_t>& blob) {
  return boundary.hash == hash && boundary.blob == blob;
}

/// Everything recorded about the golden run for convergence pruning:
/// per-boundary state digests, the golden final LoggedState (the outcome an
/// experiment converging at any boundary would reach), and — for detail-mode
/// campaigns — the golden per-instruction readout rows. Built once by
/// PrepareCampaign / ParallelCampaignRunner, then shared read-only.
class GoldenTrace {
 public:
  void set_interval(uint64_t interval) { interval_ = interval; }
  uint64_t interval() const { return interval_; }

  /// Campaign this trace was built for; targets refuse to prune with a trace
  /// from another campaign (RerunDetailed re-binds campaigns under the same
  /// target object).
  void set_campaign_name(std::string name) { campaign_name_ = std::move(name); }
  const std::string& campaign_name() const { return campaign_name_; }

  /// Boundaries must be added in strictly increasing instret order.
  void AddBoundary(GoldenBoundary boundary);
  const std::vector<GoldenBoundary>& boundaries() const { return boundaries_; }

  /// Exact-instret lookup (binary search); nullptr when the golden run never
  /// reached a boundary at `instret`.
  const GoldenBoundary* FindBoundary(uint64_t instret) const;

  /// Golden final outcome, captured by running the full experiment epilogue
  /// (ReadMemory + observation ReadScanChain + CollectState) once after the
  /// golden run terminates.
  void SetFinalState(LoggedState state) {
    final_state_ = std::move(state);
    has_final_state_ = true;
  }
  bool has_final_state() const { return has_final_state_; }
  const LoggedState& final_state() const { return final_state_; }

  /// Golden detail-mode rows (one per executed instruction, whole run).
  /// Only recorded for detail-mode campaigns. `detail_complete` is false
  /// when the golden detail log hit the row cap before termination — pruned
  /// synthesis would then diverge from an unpruned run, so targets must not
  /// prune detail experiments against an incomplete trace.
  std::vector<LoggedState>* mutable_detail_rows() { return &detail_rows_; }
  const std::vector<LoggedState>& detail_rows() const { return detail_rows_; }
  void set_detail_complete(bool complete) { detail_complete_ = complete; }
  bool detail_complete() const { return detail_complete_; }

  /// Approximate heap footprint, for accounting next to the checkpoint cache.
  size_t MemoryBytes() const;

 private:
  uint64_t interval_ = 0;
  std::string campaign_name_;
  std::vector<GoldenBoundary> boundaries_;
  LoggedState final_state_;
  bool has_final_state_ = false;
  std::vector<LoggedState> detail_rows_;
  bool detail_complete_ = true;
};

/// Cross-experiment suffix memoization: hash-at-first-divergent-boundary →
/// recorded final outcome. When an experiment fails to converge with golden
/// at a boundary, its (instret, digest) there keys the *faulty* suffix; any
/// later experiment reaching an identical faulty state at the same instret
/// must produce the identical final LoggedState and can stop immediately.
///
/// Thread-safe: shared across ParallelCampaignRunner workers. Inserts are
/// single-writer per entry (first experiment to finish wins); lookups verify
/// the full-state blob, so a hash collision degrades to a miss, never to a
/// wrong outcome.
class ConvergenceMemo {
 public:
  /// Bounds the table so adversarial campaigns cannot grow it unboundedly.
  static constexpr size_t kMaxEntries = 4096;

  /// Returns true and fills `out` on a verified hit.
  bool Lookup(uint64_t instret, uint64_t hash,
              const std::vector<uint8_t>& blob, LoggedState* out) const;

  /// Returns true if the entry was stored (false when full or already
  /// present — both benign).
  bool Insert(uint64_t instret, uint64_t hash, std::vector<uint8_t> blob,
              LoggedState final_state);

  size_t size() const;

 private:
  struct Entry {
    std::vector<uint8_t> blob;
    LoggedState final_state;
  };

  mutable std::mutex mutex_;
  std::map<std::pair<uint64_t, uint64_t>, Entry> entries_;
};

/// Pruning observability, surfaced through the shell `stats` command.
/// Deliberately outside FaultInjectionAlgorithms::Stats (which pruned and
/// unpruned runs must compare equal on), like warm_starts(): how often
/// pruning fired is order- and configuration-dependent, the logged results
/// are not.
struct ConvergenceStats {
  int64_t boundary_checks = 0;    ///< hash comparisons performed
  int64_t pruned_golden = 0;      ///< experiments ended by golden convergence
  int64_t pruned_memo = 0;        ///< experiments ended by a memo hit
  int64_t collision_rejects = 0;  ///< hash matched but full state differed
  int64_t memo_inserts = 0;       ///< suffix outcomes recorded in the memo

  int64_t pruned_total() const { return pruned_golden + pruned_memo; }

  ConvergenceStats& operator+=(const ConvergenceStats& other) {
    boundary_checks += other.boundary_checks;
    pruned_golden += other.pruned_golden;
    pruned_memo += other.pruned_memo;
    collision_rejects += other.collision_rejects;
    memo_inserts += other.memo_inserts;
    return *this;
  }
};

}  // namespace goofi::core
