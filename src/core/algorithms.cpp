#include "core/algorithms.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace goofi::core {

namespace {
std::string ExperimentName(const std::string& campaign, int index) {
  return CampaignStore::ExperimentName(campaign, index);
}
}  // namespace

// ---------------------------------------------------------------------------
// Per-technique experiment bodies: the block sequences of paper Fig. 2.
// ---------------------------------------------------------------------------

util::Status FaultInjectionAlgorithms::ScifiExperiment() {
  GOOFI_RETURN_IF_ERROR(InitTestCard());
  GOOFI_RETURN_IF_ERROR(LoadWorkload());
  GOOFI_RETURN_IF_ERROR(WriteMemory());
  GOOFI_RETURN_IF_ERROR(RunWorkload());
  if (!faults_.empty()) {
    GOOFI_RETURN_IF_ERROR(WaitForBreakpoint());
    GOOFI_RETURN_IF_ERROR(ReadScanChain());
    GOOFI_RETURN_IF_ERROR(InjectFault());
    GOOFI_RETURN_IF_ERROR(WriteScanChain());
  }
  GOOFI_RETURN_IF_ERROR(WaitForTermination());
  GOOFI_RETURN_IF_ERROR(ReadMemory());
  GOOFI_RETURN_IF_ERROR(ReadScanChain());
  return util::Status::Ok();
}

util::Status FaultInjectionAlgorithms::SwifiPreRuntimeExperiment() {
  GOOFI_RETURN_IF_ERROR(InitTestCard());
  GOOFI_RETURN_IF_ERROR(LoadWorkload());
  if (!faults_.empty()) {
    GOOFI_RETURN_IF_ERROR(MutateImage());
  }
  GOOFI_RETURN_IF_ERROR(WriteMemory());
  GOOFI_RETURN_IF_ERROR(RunWorkload());
  GOOFI_RETURN_IF_ERROR(WaitForTermination());
  GOOFI_RETURN_IF_ERROR(ReadMemory());
  GOOFI_RETURN_IF_ERROR(ReadScanChain());
  return util::Status::Ok();
}

util::Status FaultInjectionAlgorithms::SwifiRuntimeExperiment() {
  GOOFI_RETURN_IF_ERROR(InitTestCard());
  GOOFI_RETURN_IF_ERROR(LoadWorkload());
  GOOFI_RETURN_IF_ERROR(WriteMemory());
  GOOFI_RETURN_IF_ERROR(RunWorkload());
  if (!faults_.empty()) {
    GOOFI_RETURN_IF_ERROR(WaitForBreakpoint());
    GOOFI_RETURN_IF_ERROR(InjectMemoryFault());
  }
  GOOFI_RETURN_IF_ERROR(WaitForTermination());
  GOOFI_RETURN_IF_ERROR(ReadMemory());
  GOOFI_RETURN_IF_ERROR(ReadScanChain());
  return util::Status::Ok();
}

// Warm-start bodies: RestoreCheckpoint stands in for the cold prefix
// (InitTestCard/LoadWorkload/WriteMemory/RunWorkload plus the fault-free
// execution up to the checkpoint); every block from the breakpoint on is the
// cold sequence verbatim, so the logged state is bit-for-bit identical.

util::Status FaultInjectionAlgorithms::ScifiExperimentFrom(
    const Checkpoint& checkpoint) {
  GOOFI_RETURN_IF_ERROR(RestoreCheckpoint(checkpoint));
  GOOFI_RETURN_IF_ERROR(WaitForBreakpoint());
  GOOFI_RETURN_IF_ERROR(ReadScanChain());
  GOOFI_RETURN_IF_ERROR(InjectFault());
  GOOFI_RETURN_IF_ERROR(WriteScanChain());
  GOOFI_RETURN_IF_ERROR(WaitForTermination());
  GOOFI_RETURN_IF_ERROR(ReadMemory());
  GOOFI_RETURN_IF_ERROR(ReadScanChain());
  return util::Status::Ok();
}

util::Status FaultInjectionAlgorithms::SwifiRuntimeExperimentFrom(
    const Checkpoint& checkpoint) {
  GOOFI_RETURN_IF_ERROR(RestoreCheckpoint(checkpoint));
  GOOFI_RETURN_IF_ERROR(WaitForBreakpoint());
  GOOFI_RETURN_IF_ERROR(InjectMemoryFault());
  GOOFI_RETURN_IF_ERROR(WaitForTermination());
  GOOFI_RETURN_IF_ERROR(ReadMemory());
  GOOFI_RETURN_IF_ERROR(ReadScanChain());
  return util::Status::Ok();
}

util::Status FaultInjectionAlgorithms::RunBody(ExperimentBody body) {
  // Warm-start applies only to injecting experiments of the stop-inject-
  // resume techniques; the reference run and pre-runtime SWIFI stay cold.
  if (checkpoint_cache_ != nullptr && !faults_.empty() &&
      SupportsCheckpoints() &&
      (campaign_.technique == Technique::kScifi ||
       campaign_.technique == Technique::kSwifiRuntime)) {
    const Checkpoint* checkpoint =
        checkpoint_cache_->FindBefore(faults_.front().inject_instr);
    if (checkpoint != nullptr) {
      ++warm_starts_;
      return campaign_.technique == Technique::kScifi
                 ? ScifiExperimentFrom(*checkpoint)
                 : SwifiRuntimeExperimentFrom(*checkpoint);
    }
  }
  return (this->*body)();
}

bool FaultInjectionAlgorithms::ShouldAutoCheckpoint() const {
  if (checkpoint_interval_ == 0 || !SupportsCheckpoints()) return false;
  if (campaign_.technique != Technique::kScifi &&
      campaign_.technique != Technique::kSwifiRuntime) {
    return false;
  }
  // Default policy: warm-start when every fault injects at or after the
  // first checkpoint interval, so each experiment is guaranteed to skip at
  // least one interval's worth of re-simulation.
  return force_warm_start_ ||
         static_cast<uint64_t>(campaign_.inject_min_instr) >=
             checkpoint_interval_;
}

// ---------------------------------------------------------------------------
// Campaign driver.
// ---------------------------------------------------------------------------

util::Status FaultInjectionAlgorithms::GenerateFaults(
    const std::vector<FaultCandidate>& space, int index) {
  faults_.clear();
  if (space.empty()) {
    return util::FailedPrecondition("campaign has an empty fault space");
  }
  // Derive a per-experiment stream so experiments are independent of each
  // other and reproducible from (campaign seed, index).
  util::Rng rng(campaign_.seed * 0x9E3779B97F4A7C15ULL +
                static_cast<uint64_t>(index));

  const int wanted = std::max(1, campaign_.faults_per_experiment);
  // Retry sampling when the liveness filter rejects a draw; bounded so a
  // filter that rejects everything cannot hang the campaign.
  const int max_attempts = 200 * wanted;
  int attempts = 0;
  while (static_cast<int>(faults_.size()) < wanted && attempts < max_attempts) {
    ++attempts;
    const FaultCandidate& candidate =
        space[rng.NextBelow(space.size())];
    const uint64_t inject_instr = static_cast<uint64_t>(rng.NextInRange(
        static_cast<int64_t>(campaign_.inject_min_instr),
        static_cast<int64_t>(
            std::max(campaign_.inject_min_instr, campaign_.inject_max_instr))));
    if (liveness_filter_ && !liveness_filter_(candidate, inject_instr)) {
      ++stats_.injections_skipped_dead;
      continue;
    }
    // Distinct locations within one experiment.
    bool duplicate = false;
    for (const FaultInstance& have : faults_) {
      if (have.chain == candidate.chain && have.chain_bit == candidate.chain_bit &&
          have.address == candidate.address && have.bit == candidate.bit) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;

    FaultInstance fault;
    fault.kind = campaign_.fault_model;
    fault.chain = candidate.scan ? candidate.chain : "";
    fault.chain_bit = candidate.chain_bit;
    fault.cell_name = candidate.cell_name;
    fault.address = candidate.address;
    fault.bit = candidate.bit;
    fault.inject_instr = inject_instr;
    fault.stuck_value = rng.NextBool();
    faults_.push_back(std::move(fault));
  }
  if (static_cast<int>(faults_.size()) < wanted) {
    return util::FailedPrecondition(
        "liveness filter rejected the entire fault space");
  }
  // All faults of a multi-fault experiment are injected at one breakpoint
  // (the paper's multiple-bit-flip model): align times to the earliest.
  uint64_t t = faults_.front().inject_instr;
  for (const FaultInstance& fault : faults_) t = std::min(t, fault.inject_instr);
  for (FaultInstance& fault : faults_) fault.inject_instr = t;
  return util::Status::Ok();
}

util::Result<std::vector<CampaignStore::ExperimentRow>>
FaultInjectionAlgorithms::BuildRecords(const std::string& experiment_name,
                                       const std::string& parent) {
  auto state = CollectState();
  if (!state.ok()) return state.status();

  const std::string experiment_data =
      ExperimentData(campaign_.technique, faults_);

  std::vector<CampaignStore::ExperimentRow> rows;
  rows.reserve(1 + detail_log_.size());
  rows.push_back({experiment_name, parent, campaign_.name, experiment_data,
                  std::move(state).value()});
  // Detail rows, one per instruction, each pointing at the main experiment.
  for (size_t i = 0; i < detail_log_.size(); ++i) {
    rows.push_back({util::Format("%s/d%06zu", experiment_name.c_str(), i),
                    experiment_name, campaign_.name, "detail_step",
                    detail_log_[i]});
  }
  detail_log_.clear();
  return rows;
}

std::string FaultInjectionAlgorithms::ExperimentData(
    Technique technique, const std::vector<FaultInstance>& faults) {
  std::vector<std::string> fault_texts;
  fault_texts.reserve(faults.size());
  for (const FaultInstance& fault : faults) {
    fault_texts.push_back(fault.Serialize());
  }
  return "technique=" + std::string(TechniqueName(technique)) +
         ";faults=" + util::Join(fault_texts, "|");
}

util::Status FaultInjectionAlgorithms::LogExperiment(
    const std::string& experiment_name, const std::string& parent) {
  auto rows = BuildRecords(experiment_name, parent);
  if (!rows.ok()) return rows.status();
  for (const CampaignStore::ExperimentRow& row : rows.value()) {
    GOOFI_RETURN_IF_ERROR(store_->PutExperiment(row.experiment_name,
                                                row.parent_experiment,
                                                row.campaign_name,
                                                row.experiment_data, row.state));
  }
  return util::Status::Ok();
}

util::Status FaultInjectionAlgorithms::MakeReferenceRun(ExperimentBody body) {
  faults_.clear();
  detail_log_.clear();
  GOOFI_RETURN_IF_ERROR((this->*body)());
  return LogExperiment(CampaignStore::ReferenceName(campaign_.name), "");
}

util::Status FaultInjectionAlgorithms::PrepareCampaign(
    const CampaignData& campaign) {
  campaign_ = campaign;
  stats_ = Stats{};
  checkpoint_cache_.reset();
  warm_starts_ = 0;
  golden_trace_.reset();
  convergence_memo_.reset();
  prune_stats_ = ConvergenceStats{};

  // Enumerate the fault space once per campaign.
  fault_space_.clear();
  for (const FaultLocationSelector& selector : campaign_.locations) {
    auto part = EnumerateFaultSpace(selector);
    if (!part.ok()) return part.status();
    fault_space_.insert(fault_space_.end(), part.value().begin(),
                        part.value().end());
  }

  // Build the golden-run products once per campaign: the checkpoint cache
  // (warm-start) and/or the golden trace (convergence pruning), in a single
  // fault-free pass. A campaign driven by ParallelCampaignRunner suppresses
  // this (interval 0 on the workers) and installs shared products instead.
  const bool want_cache = ShouldAutoCheckpoint();
  const bool want_trace =
      convergence_pruning_ && checkpoint_interval_ > 0 && SupportsCheckpoints();
  if (want_cache || want_trace) {
    std::shared_ptr<CheckpointCache> cache;
    if (want_cache) cache = std::make_shared<CheckpointCache>(checkpoint_interval_);
    std::shared_ptr<GoldenTrace> trace;
    if (want_trace) trace = std::make_shared<GoldenTrace>();
    GOOFI_RETURN_IF_ERROR(
        BuildGoldenRun(checkpoint_interval_, cache.get(), trace.get()));
    checkpoint_cache_ = std::move(cache);
    golden_trace_ = std::move(trace);
  }
  if (golden_trace_ != nullptr && convergence_memo_ == nullptr) {
    convergence_memo_ = std::make_shared<ConvergenceMemo>();
  }
  return util::Status::Ok();
}

util::Result<std::vector<CampaignStore::ExperimentRow>>
FaultInjectionAlgorithms::ExecuteExperiment(int index) {
  const ExperimentBody body = BodyForTechnique(campaign_.technique);
  detail_log_.clear();
  std::string name;
  if (index < 0) {
    faults_.clear();
    name = CampaignStore::ReferenceName(campaign_.name);
  } else {
    GOOFI_RETURN_IF_ERROR(GenerateFaults(fault_space_, index));
    name = ExperimentName(campaign_.name, index);
  }
  GOOFI_RETURN_IF_ERROR(RunBody(body));
  return BuildRecords(name, "");
}

util::Result<std::vector<FaultInstance>> FaultInjectionAlgorithms::PlanFaults(
    int index) {
  if (index < 0) {
    return util::InvalidArgument("reference runs have no fault list to plan");
  }
  GOOFI_RETURN_IF_ERROR(GenerateFaults(fault_space_, index));
  return faults_;
}

util::Result<std::vector<CampaignStore::ExperimentRow>>
FaultInjectionAlgorithms::ExecutePlanned(int index,
                                         std::vector<FaultInstance> faults) {
  if (index < 0) {
    return util::InvalidArgument("ExecutePlanned needs an experiment index");
  }
  const ExperimentBody body = BodyForTechnique(campaign_.technique);
  detail_log_.clear();
  faults_ = std::move(faults);
  GOOFI_RETURN_IF_ERROR(RunBody(body));
  return BuildRecords(ExperimentName(campaign_.name, index), "");
}

FaultInjectionAlgorithms::ExperimentBody
FaultInjectionAlgorithms::BodyForTechnique(Technique technique) {
  switch (technique) {
    case Technique::kScifi:
      return &FaultInjectionAlgorithms::ScifiExperiment;
    case Technique::kSwifiPreRuntime:
      return &FaultInjectionAlgorithms::SwifiPreRuntimeExperiment;
    case Technique::kSwifiRuntime:
      return &FaultInjectionAlgorithms::SwifiRuntimeExperiment;
  }
  return &FaultInjectionAlgorithms::ScifiExperiment;
}

util::Status FaultInjectionAlgorithms::DriveCampaign(
    const std::string& campaign_name, ExperimentBody body) {
  // readCampaignData(campaignNr) — Fig. 2.
  auto campaign = store_->GetCampaign(campaign_name);
  if (!campaign.ok()) return campaign.status();
  GOOFI_RETURN_IF_ERROR(PrepareCampaign(campaign.value()));

  // makeReferenceRun() — Fig. 2. A campaign that was paused or stopped can
  // be restarted (the progress window of Fig. 7 offers exactly that): rows
  // already in LoggedSystemState are kept and their experiments skipped.
  if (!store_->GetExperiment(CampaignStore::ReferenceName(campaign_.name)).ok()) {
    GOOFI_RETURN_IF_ERROR(MakeReferenceRun(body));
  }

  for (int i = 0; i < campaign_.num_experiments; ++i) {
    if (store_->GetExperiment(ExperimentName(campaign_.name, i)).ok()) {
      ++stats_.experiments_resumed;
      continue;
    }
    GOOFI_RETURN_IF_ERROR(GenerateFaults(fault_space_, i));
    detail_log_.clear();
    GOOFI_RETURN_IF_ERROR(RunBody(body));
    GOOFI_RETURN_IF_ERROR(LogExperiment(ExperimentName(campaign_.name, i), ""));
    ++stats_.experiments_run;
    if (monitor_ != nullptr) {
      auto last = store_->GetExperiment(ExperimentName(campaign_.name, i));
      if (!monitor_->OnExperiment(i + 1, campaign_.num_experiments,
                                  last.ok() ? last.value().state : LoggedState{})) {
        util::Log::Info("campaign " + campaign_name + " ended by user after " +
                        std::to_string(i + 1) + " experiments");
        break;
      }
    }
  }
  return util::Status::Ok();
}

util::Status FaultInjectionAlgorithms::FaultInjectorScifi(
    const std::string& campaign_name) {
  return DriveCampaign(campaign_name,
                       &FaultInjectionAlgorithms::ScifiExperiment);
}

util::Status FaultInjectionAlgorithms::FaultInjectorSwifiPreRuntime(
    const std::string& campaign_name) {
  return DriveCampaign(campaign_name,
                       &FaultInjectionAlgorithms::SwifiPreRuntimeExperiment);
}

util::Status FaultInjectionAlgorithms::FaultInjectorSwifiRuntime(
    const std::string& campaign_name) {
  return DriveCampaign(campaign_name,
                       &FaultInjectionAlgorithms::SwifiRuntimeExperiment);
}

util::Status FaultInjectionAlgorithms::RunCampaign(
    const std::string& campaign_name) {
  auto campaign = store_->GetCampaign(campaign_name);
  if (!campaign.ok()) return campaign.status();
  switch (campaign.value().technique) {
    case Technique::kScifi:
      return FaultInjectorScifi(campaign_name);
    case Technique::kSwifiPreRuntime:
      return FaultInjectorSwifiPreRuntime(campaign_name);
    case Technique::kSwifiRuntime:
      return FaultInjectorSwifiRuntime(campaign_name);
  }
  return util::Internal("bad technique");
}

util::Status FaultInjectionAlgorithms::RerunDetailed(
    const std::string& experiment_name) {
  auto row = store_->GetExperiment(experiment_name);
  if (!row.ok()) return row.status();
  auto campaign = store_->GetCampaign(row.value().campaign_name);
  if (!campaign.ok()) return campaign.status();
  campaign_ = std::move(campaign).value();
  campaign_.log_mode = LogMode::kDetail;

  // Reconstruct the experiment's exact faults from experimentData.
  faults_.clear();
  for (const std::string& field : util::Split(row.value().experiment_data, ';')) {
    if (!util::StartsWith(field, "faults=")) continue;
    const std::string list = field.substr(7);
    if (list.empty()) continue;
    for (const std::string& text : util::Split(list, '|')) {
      auto fault = FaultInstance::Parse(text);
      if (!fault.ok()) return fault.status();
      faults_.push_back(std::move(fault).value());
    }
  }

  ExperimentBody body = &FaultInjectionAlgorithms::ScifiExperiment;
  switch (campaign_.technique) {
    case Technique::kScifi:
      break;
    case Technique::kSwifiPreRuntime:
      body = &FaultInjectionAlgorithms::SwifiPreRuntimeExperiment;
      break;
    case Technique::kSwifiRuntime:
      body = &FaultInjectionAlgorithms::SwifiRuntimeExperiment;
      break;
  }
  detail_log_.clear();
  GOOFI_RETURN_IF_ERROR((this->*body)());
  // Log the re-run with parentExperiment = the original experiment (§2.3).
  return LogExperiment(experiment_name + "/detail", experiment_name);
}

}  // namespace goofi::core
