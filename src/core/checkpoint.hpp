// Golden-run checkpoint store for warm-starting experiments.
//
// Cold-starting every experiment re-simulates the same pre-injection prefix
// once per experiment (GOOFI §3.2's stop–inject–resume loop only diverges at
// the breakpoint). The standard fix in simulator-based FI tools — FAIL*'s
// golden-run reuse, MEFISTO's simulator save/restore — is to snapshot the
// fault-free target every K retired instructions during campaign
// preparation and start each experiment from the nearest checkpoint before
// its injection point.
//
// A CheckpointCache is built once (FaultInjectionAlgorithms::PrepareCampaign
// or ParallelCampaignRunner::Run) and is immutable afterwards, so workers
// share it read-only with no synchronization. Payloads are opaque here: each
// target stores whatever it needs (CPU + card + environment + bookkeeping)
// behind CheckpointPayload and downcasts on restore.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace goofi::core {

/// Target-specific snapshot contents. Concrete payload types live in the
/// target's .cpp: the same code that builds a payload restores it.
struct CheckpointPayload {
  virtual ~CheckpointPayload() = default;

  /// Approximate heap footprint, for store accounting (page deltas keep
  /// this far below a full memory image).
  virtual size_t MemoryBytes() const = 0;
};

/// One golden-run snapshot: the fault-free target state after exactly
/// `instret` retired instructions.
struct Checkpoint {
  uint64_t instret = 0;
  std::shared_ptr<const CheckpointPayload> payload;
};

/// Ordered collection of golden-run checkpoints at (roughly) every
/// `interval` retired instructions. Built once, then read-only — safe to
/// share across ParallelCampaignRunner workers.
class CheckpointCache {
 public:
  explicit CheckpointCache(uint64_t interval) : interval_(interval) {}

  uint64_t interval() const { return interval_; }

  /// Appends a checkpoint. Instret values must be non-decreasing (the
  /// builder walks the golden run forward).
  void Add(Checkpoint checkpoint);

  /// The checkpoint with the greatest instret strictly below `inject_instr`,
  /// or nullptr if none qualifies. Strictly below: every run loop arms a
  /// breakpoint *ahead* of the restored position, and the debug unit only
  /// evaluates triggers after stepping — restoring exactly at the injection
  /// instant would fire one instruction late.
  const Checkpoint* FindBefore(uint64_t inject_instr) const;

  bool empty() const { return checkpoints_.empty(); }
  size_t size() const { return checkpoints_.size(); }

  /// Instret of the last (furthest) checkpoint; 0 when empty.
  uint64_t last_instret() const {
    return checkpoints_.empty() ? 0 : checkpoints_.back().instret;
  }

  /// Total payload footprint across all checkpoints.
  size_t MemoryBytes() const;

 private:
  uint64_t interval_;
  std::vector<Checkpoint> checkpoints_;
};

}  // namespace goofi::core
