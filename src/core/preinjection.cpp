#include "core/preinjection.hpp"

#include <algorithm>

#include "cpu/access.hpp"
#include "env/environment.hpp"
#include "util/strings.hpp"

namespace goofi::core {

namespace {

/// Register/memory read-write sets of one instruction.
struct AccessSet {
  std::vector<int> reg_reads;
  std::vector<int> reg_writes;
  bool mem_read = false;
  bool mem_write = false;
  uint32_t mem_address = 0;
};

AccessSet AccessesOf(const isa::Instruction& ins, const cpu::Cpu& cpu) {
  // The architectural classification is shared with the static analyzer
  // (cpu/access.hpp) so the static-dead ⊆ dynamic-dead invariant compares
  // identical semantics; only the address needs live register values.
  const cpu::InstructionAccess access = cpu::ClassifyAccess(ins);
  AccessSet out;
  for (uint8_t i = 0; i < access.read_count; ++i) {
    out.reg_reads.push_back(access.reads[i]);
  }
  if (access.writes_reg) out.reg_writes.push_back(access.write_reg);
  out.mem_read = access.mem_read;
  out.mem_write = access.mem_write;
  if (access.mem_read || access.mem_write) {
    out.mem_address = cpu.reg(ins.rs1) + static_cast<uint32_t>(ins.imm);
  }
  return out;
}

}  // namespace

bool LivenessAnalyzer::LiveAt(const std::vector<Access>& accesses,
                              uint64_t instret) {
  // Accesses are appended in execution order, so they are sorted by instret
  // (reads of an instruction precede its writes).
  const auto it = std::upper_bound(
      accesses.begin(), accesses.end(), instret,
      [](uint64_t t, const Access& access) { return t < access.instret; });
  if (it == accesses.end()) return false;
  return it->is_read;
}

bool LivenessAnalyzer::RegisterLive(int reg, uint64_t instret) const {
  if (reg < 0 || reg >= isa::kNumRegisters) return false;
  return LiveAt(register_accesses_[static_cast<size_t>(reg)], instret);
}

bool LivenessAnalyzer::MemoryWordLive(uint32_t address, uint64_t instret) const {
  const auto it = memory_accesses_.find(address & ~3u);
  if (it == memory_accesses_.end()) return false;
  return LiveAt(it->second, instret);
}

bool LivenessAnalyzer::RegisterEverAccessed(int reg) const {
  if (reg < 0 || reg >= isa::kNumRegisters) return false;
  return !register_accesses_[static_cast<size_t>(reg)].empty();
}

bool LivenessAnalyzer::MemoryWordEverRead(uint32_t address) const {
  const auto it = memory_accesses_.find(address & ~3u);
  if (it == memory_accesses_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [](const Access& access) { return access.is_read; });
}

bool LivenessAnalyzer::MemoryWordEverFetched(uint32_t address) const {
  return fetch_accesses_.count(address & ~3u) > 0;
}

size_t LivenessAnalyzer::WindowOf(const std::vector<Access>& accesses,
                                  uint64_t instret) {
  const auto it = std::upper_bound(
      accesses.begin(), accesses.end(), instret,
      [](uint64_t t, const Access& access) { return t < access.instret; });
  return static_cast<size_t>(it - accesses.begin());
}

size_t LivenessAnalyzer::RegisterAccessWindow(int reg, uint64_t instret) const {
  if (reg < 0 || reg >= isa::kNumRegisters) return 0;
  return WindowOf(register_accesses_[static_cast<size_t>(reg)], instret);
}

size_t LivenessAnalyzer::MemoryAccessWindow(uint32_t address,
                                            uint64_t instret) const {
  const auto it = memory_accesses_.find(address & ~3u);
  if (it == memory_accesses_.end()) return 0;
  return WindowOf(it->second, instret);
}

size_t LivenessAnalyzer::FetchAccessWindow(uint32_t address,
                                           uint64_t instret) const {
  const auto it = fetch_accesses_.find(address & ~3u);
  if (it == fetch_accesses_.end()) return 0;
  const auto pos =
      std::upper_bound(it->second.begin(), it->second.end(), instret);
  return static_cast<size_t>(pos - it->second.begin());
}

util::Result<std::unique_ptr<LivenessAnalyzer>> LivenessAnalyzer::Build(
    const std::string& workload_name, const cpu::CpuConfig& config,
    uint64_t max_instr, int max_iterations) {
  auto spec = env::GetWorkload(workload_name);
  if (!spec.ok()) return spec.status();
  return BuildFromSpec(spec.value(), config, max_instr, max_iterations);
}

util::Result<std::unique_ptr<LivenessAnalyzer>> LivenessAnalyzer::BuildFromSpec(
    const env::WorkloadSpec& workload, const cpu::CpuConfig& config,
    uint64_t max_instr, int max_iterations) {
  auto assembled = isa::Assemble(workload.source);
  if (!assembled.ok()) return assembled.status();
  const isa::AssembledProgram& program = assembled.value();

  std::unique_ptr<env::EnvironmentSimulator> environment;
  uint32_t input_addr = 0;
  uint32_t output_addr = 0;
  uint32_t loop_end = 0;
  if (workload.infinite_loop) {
    if (workload.environment == "inverted_pendulum") {
      environment = std::make_unique<env::InvertedPendulum>();
    } else if (workload.environment == "cruise_control") {
      environment = std::make_unique<env::CruiseControl>();
    }
    auto io = program.Symbol(workload.input_symbol);
    if (!io.ok()) return io.status();
    input_addr = io.value();
    output_addr = input_addr + workload.input_words * 4;
    auto boundary = program.Symbol(workload.iteration_symbol);
    if (!boundary.ok()) return boundary.status();
    loop_end = boundary.value();
  }

  auto analyzer = std::make_unique<LivenessAnalyzer>();
  analyzer->register_accesses_.resize(isa::kNumRegisters);

  cpu::Cpu cpu(config);
  uint32_t text_bytes = 0;
  const auto etext = program.symbols.find("_etext");
  if (etext != program.symbols.end() && etext->second > program.base_address) {
    text_bytes = etext->second - program.base_address;
  }
  GOOFI_RETURN_IF_ERROR(cpu.LoadProgram(program.base_address, program.words,
                                        text_bytes));
  cpu.Reset(program.entry);
  if (environment) {
    const std::vector<uint32_t> inputs = environment->Sense();
    for (size_t i = 0; i < inputs.size(); ++i) {
      GOOFI_RETURN_IF_ERROR(cpu.HostWriteWord(
          input_addr + static_cast<uint32_t>(i) * 4, inputs[i]));
    }
  }

  int iterations = 0;
  while (cpu.instructions_retired() < max_instr) {
    const uint32_t exec_pc = cpu.pc();
    const uint32_t exec_ir = cpu.ir();
    const auto decoded = isa::Decode(exec_ir);
    AccessSet accesses;
    if (decoded.ok()) accesses = AccessesOf(decoded.value(), cpu);

    // The instruction about to retire as number t+1 sits in `ir` already: it
    // was prefetched at the end of the previous step (or at reset), i.e. at
    // the current retirement count. Record the fetch there — a flip injected
    // at this count lands after the prefetch and cannot reach it.
    analyzer->fetch_accesses_[exec_pc & ~3u].push_back(
        cpu.instructions_retired());

    const cpu::StepOutcome outcome = cpu.Step();
    const uint64_t t = cpu.instructions_retired();
    for (int reg : accesses.reg_reads) {
      analyzer->register_accesses_[static_cast<size_t>(reg)].push_back({t, true});
    }
    for (int reg : accesses.reg_writes) {
      analyzer->register_accesses_[static_cast<size_t>(reg)].push_back({t, false});
    }
    if (accesses.mem_read) {
      analyzer->memory_accesses_[accesses.mem_address & ~3u].push_back({t, true});
    }
    if (accesses.mem_write) {
      analyzer->memory_accesses_[accesses.mem_address & ~3u].push_back({t, false});
    }

    if (environment && exec_pc == loop_end) {
      // Host-side exchange: actuator words are read, sensor words written.
      std::vector<uint32_t> outputs;
      for (uint32_t i = 0; i < workload.output_words; ++i) {
        auto word = cpu.memory().HostRead(output_addr + i * 4);
        if (!word.ok()) return word.status();
        outputs.push_back(word.value());
        analyzer->memory_accesses_[(output_addr + i * 4) & ~3u].push_back({t, true});
      }
      const std::vector<uint32_t> inputs = environment->Exchange(outputs);
      for (size_t i = 0; i < inputs.size(); ++i) {
        const uint32_t address = input_addr + static_cast<uint32_t>(i) * 4;
        GOOFI_RETURN_IF_ERROR(cpu.HostWriteWord(address, inputs[i]));
        analyzer->memory_accesses_[address & ~3u].push_back({t, false});
      }
      if (++iterations >= max_iterations) break;
    }
    if (outcome != cpu::StepOutcome::kOk) break;
  }
  analyzer->trace_length_ = cpu.instructions_retired();

  // The workload's result words are read by the host at experiment end:
  // model that as a final read so late writes to them stay live.
  if (!workload.result_symbol.empty()) {
    const auto result = program.Symbol(workload.result_symbol);
    if (result.ok()) {
      for (uint32_t i = 0; i < workload.result_words; ++i) {
        analyzer->memory_accesses_[(result.value() + i * 4) & ~3u].push_back(
            {UINT64_MAX, true});
      }
    }
  }
  return analyzer;
}

util::Result<std::shared_ptr<const LivenessAnalyzer>> LivenessCache::Get(
    const std::string& workload_name, const cpu::CpuConfig& config,
    uint64_t max_instr, int max_iterations) {
  // The access timeline depends only on the architectural execution of the
  // fault-free workload, which these fields fully determine.
  const cpu::EdmConfig& edms = config.edms;
  const std::string key = util::Format(
      "%s|%u|%u|%u|%u|%llu|%u|%d%d%d%d%d%d%d%d%d%d|%llu|%d",
      workload_name.c_str(), config.memory_bytes, config.icache_lines,
      config.dcache_lines, config.cache_miss_penalty,
      static_cast<unsigned long long>(config.watchdog_limit),
      config.stack_limit, edms.illegal_opcode, edms.misaligned_access,
      edms.out_of_range_access, edms.memory_protection, edms.cache_parity,
      edms.arithmetic_overflow, edms.watchdog, edms.control_flow,
      edms.stack_overflow, edms.software_assertion,
      static_cast<unsigned long long>(max_instr), max_iterations);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  auto built = LivenessAnalyzer::Build(workload_name, config, max_instr,
                                       max_iterations);
  if (!built.ok()) return built.status();
  std::shared_ptr<const LivenessAnalyzer> analyzer = std::move(built).value();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = cache_.emplace(key, std::move(analyzer));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;  // another thread built it first; both traces are identical
  }
  return it->second;
}

int LivenessCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int LivenessCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

FaultInjectionAlgorithms::LivenessFilter LivenessAnalyzer::MakeFilter() const {
  return [this](const FaultCandidate& candidate, uint64_t inject_instr) {
    if (!candidate.scan) {
      return MemoryWordLive(candidate.address, inject_instr);
    }
    if (util::StartsWith(candidate.cell_name, "regfile.")) {
      const auto reg = isa::ParseRegister(candidate.cell_name.substr(8));
      if (!reg) return true;
      return RegisterLive(*reg, inject_instr);
    }
    if (util::StartsWith(candidate.cell_name, "pipeline.")) {
      return false;  // refreshed every instruction -> always overwritten
    }
    return true;  // pc/ir/caches/watchdog: conservatively live
  };
}

}  // namespace goofi::core
