#include "core/equivalence.hpp"

#include <algorithm>

#include "core/algorithms.hpp"
#include "core/static_analysis.hpp"
#include "isa/isa.hpp"
#include "util/strings.hpp"

namespace goofi::core {

EquivalenceClasser::EquivalenceClasser(const LivenessAnalyzer* timeline,
                                       Config config)
    : timeline_(timeline), config_(config) {}

std::optional<EquivalenceClasser::Key> EquivalenceClasser::Classify(
    const std::vector<FaultInstance>& faults) const {
  // Eligibility gates (mirroring PR 4's pruning gates): only a transient
  // single-bit flip has the one-shot, self-contained effect the window
  // argument relies on. Intermittent bursts and permanent stuck-ats keep
  // re-applying at times derived from the injection time; multi-flip
  // experiments couple several windows.
  if (config_.fault_model != FaultModelKind::kTransientBitFlip) {
    return std::nullopt;
  }
  if (faults.size() != 1 || config_.faults_per_experiment > 1) {
    return std::nullopt;
  }
  const FaultInstance& fault = faults.front();

  if (config_.technique == Technique::kSwifiPreRuntime) {
    // Pre-runtime SWIFI mutates the image before the workload runs and
    // ignores inject_instr entirely: identical (address, bit) means an
    // identical experiment, no timeline needed. A word the static analysis
    // proves never-read is stronger still: the mutated image executes
    // exactly like the golden one, whatever the address or bit — one class
    // for all of them.
    if (fault.IsScanFault()) return std::nullopt;
    if (config_.static_analysis != nullptr &&
        config_.static_analysis->MemoryWordNeverRead(fault.address)) {
      return Key{7, 0, 0, 0, 0};
    }
    return Key{3, fault.address, fault.bit, 0, 0};
  }

  // Runtime injection (SCIFI breakpoint, runtime SWIFI stop): whether and
  // where the flip lands depends on the injection time, so time-window
  // reasoning needs the golden run's final retirement count.
  if (!config_.has_golden_end) return std::nullopt;
  const uint64_t t = fault.inject_instr;
  const uint64_t end = config_.golden_end_instret;
  if (t == end) {
    // The run terminates on the very step the breakpoint would fire on;
    // which one the debug logic reports first is a target corner we do not
    // model. Conservatively a singleton.
    return std::nullopt;
  }
  if (t > end) {
    // The fault-free prefix terminates before the breakpoint count is
    // reached, so the injection never happens (both targets check
    // termination before the breakpoint stop): the run is the golden run,
    // whatever the location. One class for all of them.
    return Key{4, 0, 0, 0, 0};
  }
  // Static no-effect classes (t < end established above). A flip into a
  // register no reachable instruction touches stays in place untouched: the
  // final scan image is golden ^ flip for every injection time, so one class
  // per (register, chain bit). A flip into a memory word that is never
  // loaded, fetched or host-read is invisible outright — memory is not part
  // of the logged state — so every such (address, bit, time) collapses into
  // a single class. Neither needs the execution timeline.
  if (config_.static_analysis != nullptr) {
    if (config_.technique == Technique::kScifi && fault.IsScanFault() &&
        util::StartsWith(fault.cell_name, "regfile.")) {
      const auto reg = isa::ParseRegister(fault.cell_name.substr(8));
      if (reg && config_.static_analysis->RegisterNeverAccessed(*reg)) {
        return Key{5, static_cast<uint32_t>(*reg), fault.chain_bit, 0, 0};
      }
    }
    if (config_.technique == Technique::kSwifiRuntime && !fault.IsScanFault() &&
        config_.static_analysis->MemoryWordNeverRead(fault.address)) {
      return Key{6, 0, 0, 0, 0};
    }
  }

  if (timeline_ == nullptr || timeline_->trace_length() < end) {
    // No (or truncated) access timeline: no window reasoning.
    return std::nullopt;
  }
  if (config_.technique == Technique::kScifi) {
    // Only register-file cells have exact access semantics in the timeline;
    // pc/ir/pipeline/cache/watchdog cells stay singletons.
    if (!fault.IsScanFault()) return std::nullopt;
    if (!util::StartsWith(fault.cell_name, "regfile.")) return std::nullopt;
    const auto reg = isa::ParseRegister(fault.cell_name.substr(8));
    if (!reg) return std::nullopt;
    return Key{1, static_cast<uint32_t>(*reg), fault.chain_bit,
               static_cast<uint64_t>(timeline_->RegisterAccessWindow(*reg, t)),
               0};
  }
  if (config_.technique == Technique::kSwifiRuntime) {
    if (fault.IsScanFault()) return std::nullopt;
    // A memory word is consumed by data accesses (LDW/STW, host exchange)
    // and by instruction fetches; both windows must match.
    return Key{
        2, fault.address, fault.bit,
        static_cast<uint64_t>(timeline_->MemoryAccessWindow(fault.address, t)),
        static_cast<uint64_t>(timeline_->FetchAccessWindow(fault.address, t))};
  }
  return std::nullopt;
}

void EquivalenceClasser::Add(int id, const std::vector<FaultInstance>& faults) {
  const std::optional<Key> key = Classify(faults);
  const uint64_t time = faults.empty() ? 0 : faults.front().inject_instr;

  if (key) {
    const auto [it, inserted] = keyed_.emplace(*key, classes_.size());
    if (!inserted) {
      const size_t index = it->second;
      Class& cls = classes_[index];
      if (cls.members.size() == 1) ++multi_member_classes_;
      cls.members.push_back(id);
      // The representative is the earliest injection: every later member's
      // detail rows are then a suffix of the representative's.
      if (time < representative_time_[index]) {
        representative_time_[index] = time;
        cls.representative = id;
      }
      class_of_.push_back(index);
      return;
    }
  }
  class_of_.push_back(classes_.size());
  Class cls;
  cls.members = {id};
  cls.representative = id;
  cls.suffix_filtered = !key || (key->kind != 3 && key->kind != 7);
  cls.static_no_effect = key && key->kind >= 5;
  classes_.push_back(std::move(cls));
  representative_time_.push_back(time);
}

std::vector<CampaignStore::ExperimentRow> SynthesizeMemberRows(
    const std::vector<CampaignStore::ExperimentRow>& representative_rows,
    const CampaignData& campaign, int member_index,
    const std::vector<FaultInstance>& member_faults, bool suffix_filtered) {
  const std::string name =
      CampaignStore::ExperimentName(campaign.name, member_index);
  std::vector<CampaignStore::ExperimentRow> rows;
  rows.push_back({name, "", campaign.name,
                  FaultInjectionAlgorithms::ExperimentData(campaign.technique,
                                                           member_faults),
                  representative_rows.front().state});
  // Detail rows: the representative's rows strictly past the member's
  // injection time (the member's machine is byte-identical to the
  // representative's from there on; rows at or before it belong to the
  // member's fault-free prefix and are never logged). Row instret values
  // increase strictly, so the suffix is one upper_bound away.
  auto begin = representative_rows.begin() + 1;
  if (suffix_filtered && begin != representative_rows.end()) {
    const uint64_t t =
        member_faults.empty() ? 0 : member_faults.front().inject_instr;
    begin = std::upper_bound(
        begin, representative_rows.end(), t,
        [](uint64_t value, const CampaignStore::ExperimentRow& row) {
          return value < row.state.instret;
        });
  }
  rows.reserve(1 + static_cast<size_t>(representative_rows.end() - begin));
  size_t i = 0;
  for (auto it = begin; it != representative_rows.end(); ++it, ++i) {
    rows.push_back({util::Format("%s/d%06zu", name.c_str(), i), name,
                    campaign.name, "detail_step", it->state});
  }
  return rows;
}

}  // namespace goofi::core
