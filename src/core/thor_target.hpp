// ThorRdTarget: the TargetSystemInterface for the (simulated) Thor RD
// target system.
//
// In the paper's architecture, each supported target system contributes one
// TargetSystemInterface class that inherits FaultInjectionAlgorithms and
// implements its abstract methods (Fig. 1-3). This class binds them to the
// simulated test card: scan access goes through the IEEE 1149.1 TAP, debug
// events through the scan-logic breakpoint unit, memory access through the
// host port, and loop-iteration boundaries exchange data with the workload's
// environment simulator (Fig. 1).
#pragma once

#include <map>
#include <memory>

#include "core/algorithms.hpp"
#include "env/environment.hpp"
#include "env/workloads.hpp"
#include "isa/assembler.hpp"
#include "testcard/testcard.hpp"
#include "util/crc32.hpp"

namespace goofi::core {

class ThorRdTarget : public FaultInjectionAlgorithms {
 public:
  /// `card` must outlive the target.
  ThorRdTarget(CampaignStore* store, testcard::TestCard* card);

  /// Configuration-phase output (paper Fig. 5): the target description that
  /// is stored in the TargetSystemData table, listing every scan chain cell
  /// with its width and read-only flag.
  static TargetSystemData DescribeTarget(const testcard::TestCard& card,
                                         const std::string& name);

  /// The default name this target registers under.
  static constexpr const char* kTargetName = "thor-rd-sim";

  /// Checkpoint fast-forward support: the golden run snapshots the full
  /// card state (CPU, caches, memory delta, TAP, debug unit) plus the
  /// environment simulator, iteration count and actuator CRC. The same
  /// builder records the convergence-pruning GoldenTrace (per-boundary state
  /// digests + golden final outcome) when asked for one.
  bool SupportsCheckpoints() const override { return true; }
  util::Status BuildGoldenRun(uint64_t interval, CheckpointCache* cache,
                              GoldenTrace* trace) override;
  util::Status PrepareGoldenBaseline() override { return EnsureWarmBaseline(); }

  /// COW memory observability: the simulated CPU's main memory.
  const cpu::Memory* TargetMemory() const override {
    return &card_->cpu().memory();
  }

 protected:
  util::Status RestoreCheckpoint(const Checkpoint& checkpoint) override;

  util::Status InitTestCard() override;
  util::Status LoadWorkload() override;
  util::Status WriteMemory() override;
  util::Status RunWorkload() override;
  util::Status WaitForBreakpoint() override;
  util::Status ReadScanChain() override;
  util::Status InjectFault() override;
  util::Status WriteScanChain() override;
  util::Status WaitForTermination() override;
  util::Status ReadMemory() override;
  util::Status MutateImage() override;
  util::Status InjectMemoryFault() override;
  util::Result<std::vector<FaultCandidate>> EnumerateFaultSpace(
      const FaultLocationSelector& selector) override;
  util::Result<LoggedState> CollectState() override;

 private:
  /// Assembles the campaign's workload if not already cached and resolves
  /// its I/O layout (environment words, loop boundary, result location).
  util::Status EnsureWorkload();

  /// Reads actuator words, advances the environment, writes sensor words.
  util::Status ServiceIteration();

  /// Arms the debug triggers appropriate for the current phase.
  void ArmTriggers(bool with_injection_breakpoint, bool with_reactivation);

  /// Re-applies non-transient faults during WaitForTermination.
  util::Status ReactivateFaults();

  /// Runs the target until an event, servicing iteration boundaries.
  /// Returns when the injection breakpoint fires (`stop_at_breakpoint`) or a
  /// termination condition is reached.
  util::Status RunLoop(bool stop_at_breakpoint);

  /// Detail-mode variant: single-steps, logging state per instruction.
  util::Status RunLoopDetail();

  /// True when a termination condition has been reached.
  bool Terminated() const;

  /// Establishes the memory delta baseline for the prepared workload (the
  /// deterministic cold prologue: InitTestCard/LoadWorkload/WriteMemory +
  /// MarkMemoryBaseline). Each worker runs this once per workload, so a
  /// shared cache's deltas restore against an identical baseline — and so
  /// canonical memory hashing has a baseline to digest against.
  util::Status EnsureWarmBaseline();

  /// Captures the current golden-run state into `cache`.
  util::Status CaptureCheckpoint(CheckpointCache* cache);

  /// Fills the checkpoint cache (the PR2 golden pass, stops at the injection
  /// window) — the `cache` half of BuildGoldenRun.
  util::Status BuildCheckpointPass(uint64_t interval, CheckpointCache* cache);

  /// Records the GoldenTrace by driving the fault-free workload through the
  /// *experiment* run loops (RunLoop/RunLoopDetail) with boundary capture
  /// active — the `trace` half of BuildGoldenRun. Using the experiment loops
  /// guarantees boundary program points and the final outcome match what a
  /// converging faulty run would reach, branch-order corner cases included.
  util::Status BuildTracePass(uint64_t interval, GoldenTrace* trace);

  /// Digests everything that can shape the rest of this experiment: the card
  /// state (CPU + conditional link-noise RNG) plus the host-side per-
  /// experiment accumulators (actuator CRC, iteration count, plant state).
  util::Status HashTargetNow(cpu::StateHasher* hasher);

  /// Whether the experiment that just finished injecting qualifies for
  /// convergence pruning against the installed golden trace.
  bool CanPruneExperiment() const;

  /// Boundary action for the run loops when prune_next_check_ is reached:
  /// capture (golden trace pass) or compare-and-maybe-converge (experiment).
  /// Advances prune_next_check_ to the next interval multiple; may set
  /// converged_ or clear prune_active_. Does not re-arm triggers.
  util::Status AtBoundary();

  testcard::TestCard* card_;

  // Cached workload.
  env::WorkloadSpec workload_;
  isa::AssembledProgram program_;
  bool workload_ready_ = false;

  std::unique_ptr<env::EnvironmentSimulator> environment_;
  uint32_t input_addr_ = 0;
  uint32_t output_addr_ = 0;
  uint32_t loop_end_addr_ = 0;
  uint32_t result_addr_ = 0;

  // Per-experiment bookkeeping.
  int iterations_ = 0;
  bool timed_out_ = false;
  bool injection_done_ = false;
  bool terminated_before_injection_ = false;
  uint32_t activations_done_ = 0;
  uint64_t next_activation_ = 0;
  util::Crc32 actuator_crc_;
  std::vector<uint32_t> outputs_;
  std::map<std::string, util::BitVec> inject_images_;  ///< read-modify-write
  std::map<std::string, std::string> observe_images_;  ///< logged at the end

  int iteration_trigger_ = -1;
  int breakpoint_trigger_ = -1;
  int reactivation_trigger_ = -1;
  int prune_trigger_ = -1;

  // Convergence-pruning state for the current run phase. prune_active_ turns
  // the boundary machinery on; converged_ means the rest of the run is
  // synthesized from synth_state_ (ReadMemory/ReadScanChain/CollectState
  // short-circuit). reactivation_armed_ mirrors the last ArmTriggers
  // reactivation flag so boundary re-arms preserve it.
  bool prune_active_ = false;
  bool converged_ = false;
  uint64_t prune_next_check_ = 0;
  bool reactivation_armed_ = false;
  LoggedState synth_state_;
  GoldenTrace* capture_trace_ = nullptr;  ///< non-null during BuildTracePass

  // First post-injection boundary whose state diverged from golden: the
  // cross-experiment memo candidate, inserted with the experiment's final
  // LoggedState in CollectState.
  bool memo_pending_ = false;
  uint64_t memo_instret_ = 0;
  uint64_t memo_hash_ = 0;
  std::vector<uint8_t> memo_blob_;

  /// Plant-state buffer reused across boundary hashes.
  std::vector<double> env_state_scratch_;

  /// Workload the memory baseline was established for; empty = none yet.
  std::string warm_ready_workload_;

  /// Workload whose downloaded image was declared the shared golden set
  /// (once per workload, at first LoadWorkload); empty = none yet.
  std::string golden_image_workload_;

  /// Capture buffer reused across detail-mode scan-chain reads.
  util::BitVec detail_capture_;
};

}  // namespace goofi::core
