// Umbrella header: the GOOFI public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   db::Database database;
//   core::CampaignStore store(&database);
//   testcard::SimTestCard card;                       // the target system
//   store.PutTargetSystem(core::ThorRdTarget::DescribeTarget(
//       card, core::ThorRdTarget::kTargetName));      // configuration phase
//   core::CampaignData campaign = ...;                // set-up phase
//   store.PutCampaign(campaign);
//   core::ThorRdTarget target(&store, &card);
//   target.RunCampaign(campaign.name);                // fault-injection phase
//   auto report = core::AnalyzeCampaign(store, campaign.name);  // analysis
#pragma once

#include "core/algorithms.hpp"     // IWYU pragma: export
#include "core/analysis.hpp"       // IWYU pragma: export
#include "core/campaign_store.hpp" // IWYU pragma: export
#include "core/checkpoint.hpp"     // IWYU pragma: export
#include "core/framework.hpp"      // IWYU pragma: export
#include "core/parallel_runner.hpp" // IWYU pragma: export
#include "core/preinjection.hpp"   // IWYU pragma: export
#include "core/progress.hpp"       // IWYU pragma: export
#include "core/propagation.hpp"    // IWYU pragma: export
#include "core/swifi_target.hpp"   // IWYU pragma: export
#include "core/thor_target.hpp"    // IWYU pragma: export
#include "core/types.hpp"          // IWYU pragma: export
