// Pre-injection analysis (a §4 planned extension, implemented here).
//
// "The purpose of this analysis is to determine when registers and other
// fault injection locations hold live data. Injecting a fault into a
// location that does not hold live data serves no purpose, since the fault
// will be overwritten."
//
// The analyzer executes the fault-free workload once, recording every
// register and memory-word access with its time (retired-instruction count).
// A location is *live* at time t when its next access after t is a read —
// i.e. the corrupted value would actually be consumed. The resulting filter
// plugs into FaultInjectionAlgorithms::SetLivenessFilter to skip dead
// (location, time) draws during fault-list generation.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/algorithms.hpp"
#include "cpu/cpu.hpp"
#include "env/workloads.hpp"
#include "isa/assembler.hpp"

namespace goofi::core {

class LivenessAnalyzer {
 public:
  /// Runs the workload (fault-free) on a private simulator instance and
  /// builds the access timeline. `max_instr` bounds the trace; control
  /// workloads additionally stop after `max_iterations` loop iterations.
  static util::Result<std::unique_ptr<LivenessAnalyzer>> Build(
      const std::string& workload_name, const cpu::CpuConfig& config,
      uint64_t max_instr = 200000, int max_iterations = 200);

  /// Same, for a workload spec that is not in the built-in registry.
  static util::Result<std::unique_ptr<LivenessAnalyzer>> BuildFromSpec(
      const env::WorkloadSpec& workload, const cpu::CpuConfig& config,
      uint64_t max_instr = 200000, int max_iterations = 200);

  /// Register liveness at injection time `instret` (the injection happens
  /// after `instret` instructions have retired).
  bool RegisterLive(int reg, uint64_t instret) const;

  /// Memory-word liveness at injection time `instret`.
  bool MemoryWordLive(uint32_t address, uint64_t instret) const;

  /// The filter for FaultInjectionAlgorithms::SetLivenessFilter. The
  /// analyzer must outlive the returned callable. Classification:
  ///   regfile.*  -> register liveness
  ///   pipeline.* -> dead (refreshed every instruction)
  ///   memory     -> memory-word liveness
  ///   all else (pc, ir, caches, watchdog) -> conservatively live
  FaultInjectionAlgorithms::LivenessFilter MakeFilter() const;

  /// Total instructions in the recorded trace.
  uint64_t trace_length() const { return trace_length_; }

 private:
  struct Access {
    uint64_t instret;
    bool is_read;
  };
  /// True when the first access in `accesses` strictly after `instret` is a
  /// read. Absent further accesses, the location is dead.
  static bool LiveAt(const std::vector<Access>& accesses, uint64_t instret);

  std::vector<std::vector<Access>> register_accesses_;  // [16]
  std::map<uint32_t, std::vector<Access>> memory_accesses_;
  uint64_t trace_length_ = 0;
};

}  // namespace goofi::core
