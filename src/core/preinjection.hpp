// Pre-injection analysis (a §4 planned extension, implemented here).
//
// "The purpose of this analysis is to determine when registers and other
// fault injection locations hold live data. Injecting a fault into a
// location that does not hold live data serves no purpose, since the fault
// will be overwritten."
//
// The analyzer executes the fault-free workload once, recording every
// register and memory-word access with its time (retired-instruction count).
// A location is *live* at time t when its next access after t is a read —
// i.e. the corrupted value would actually be consumed. The resulting filter
// plugs into FaultInjectionAlgorithms::SetLivenessFilter to skip dead
// (location, time) draws during fault-list generation.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/algorithms.hpp"
#include "cpu/cpu.hpp"
#include "env/workloads.hpp"
#include "isa/assembler.hpp"

namespace goofi::core {

class LivenessAnalyzer {
 public:
  /// Runs the workload (fault-free) on a private simulator instance and
  /// builds the access timeline. `max_instr` bounds the trace; control
  /// workloads additionally stop after `max_iterations` loop iterations.
  static util::Result<std::unique_ptr<LivenessAnalyzer>> Build(
      const std::string& workload_name, const cpu::CpuConfig& config,
      uint64_t max_instr = 200000, int max_iterations = 200);

  /// Same, for a workload spec that is not in the built-in registry.
  static util::Result<std::unique_ptr<LivenessAnalyzer>> BuildFromSpec(
      const env::WorkloadSpec& workload, const cpu::CpuConfig& config,
      uint64_t max_instr = 200000, int max_iterations = 200);

  /// Register liveness at injection time `instret` (the injection happens
  /// after `instret` instructions have retired).
  bool RegisterLive(int reg, uint64_t instret) const;

  /// Memory-word liveness at injection time `instret`.
  bool MemoryWordLive(uint32_t address, uint64_t instret) const;

  // --- access-window ordinals (core/equivalence) ---------------------------
  //
  // Two injection times t1 < t2 into the same location are behaviorally
  // equivalent iff no access of that location falls in (t1, t2] — the window
  // ordinal is the number of recorded accesses at or before t, so equal
  // ordinals mean exactly that. An access recorded at time t is consumed
  // BEFORE an injection at t: both targets stop (and inject) only after the
  // step that retires instruction t, including its iteration servicing and
  // its prefetch of the next instruction.

  /// Ordinal of register `reg`'s access window containing injection time
  /// `instret`.
  size_t RegisterAccessWindow(int reg, uint64_t instret) const;

  /// Ordinal of the data-access (LDW/STW + host-exchange) window of the
  /// word at `address` containing injection time `instret`.
  size_t MemoryAccessWindow(uint32_t address, uint64_t instret) const;

  /// Ordinal of the instruction-fetch window of the word at `address`.
  /// Fetches are modeled at prefetch time: the instruction retiring as
  /// number t was fetched at instret t-1, so a flip injected at t does not
  /// reach it. Text words are dead to the data timeline but very much alive
  /// to this one.
  size_t FetchAccessWindow(uint32_t address, uint64_t instret) const;

  // --- whole-trace access queries (core/static_analysis differential) ------
  //
  // The static analyzer's prune predicates must be subsets of these dynamic
  // facts: a statically never-accessed register was never accessed in the
  // fault-free run, and a statically never-read memory word was never read,
  // fetched or host-read in it.

  /// Whether the fault-free run ever read or wrote register `reg`.
  bool RegisterEverAccessed(int reg) const;

  /// Whether the fault-free run ever read the word at `address` — LDW,
  /// host-side actuator reads, or the final host read of the result words.
  bool MemoryWordEverRead(uint32_t address) const;

  /// Whether the word at `address` was ever fetched as an instruction.
  bool MemoryWordEverFetched(uint32_t address) const;

  /// The filter for FaultInjectionAlgorithms::SetLivenessFilter. The
  /// analyzer must outlive the returned callable. Classification:
  ///   regfile.*  -> register liveness
  ///   pipeline.* -> dead (refreshed every instruction)
  ///   memory     -> memory-word liveness
  ///   all else (pc, ir, caches, watchdog) -> conservatively live
  FaultInjectionAlgorithms::LivenessFilter MakeFilter() const;

  /// Total instructions in the recorded trace.
  uint64_t trace_length() const { return trace_length_; }

 private:
  struct Access {
    uint64_t instret;
    bool is_read;
  };
  /// True when the first access in `accesses` strictly after `instret` is a
  /// read. Absent further accesses, the location is dead.
  static bool LiveAt(const std::vector<Access>& accesses, uint64_t instret);

  /// Number of accesses in `accesses` at or before `instret`.
  static size_t WindowOf(const std::vector<Access>& accesses, uint64_t instret);

  std::vector<std::vector<Access>> register_accesses_;  // [16]
  std::map<uint32_t, std::vector<Access>> memory_accesses_;
  /// Instruction-fetch times per text word, kept apart from
  /// memory_accesses_ so the liveness filter's semantics (fetches do not
  /// make a word "live" for pre-injection skipping) are unchanged.
  std::map<uint32_t, std::vector<uint64_t>> fetch_accesses_;
  uint64_t trace_length_ = 0;
};

/// Memoizes LivenessAnalyzer builds per (workload, CPU config, bounds) so
/// consecutive campaigns over the same workload in one shell session share a
/// single fault-free trace instead of re-running it. Thread-safe; the
/// returned analyzers are immutable and may outlive the cache.
class LivenessCache {
 public:
  util::Result<std::shared_ptr<const LivenessAnalyzer>> Get(
      const std::string& workload_name, const cpu::CpuConfig& config,
      uint64_t max_instr = 200000, int max_iterations = 200);

  int hits() const;
  int misses() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const LivenessAnalyzer>> cache_;
  int hits_ = 0;
  int misses_ = 0;
};

}  // namespace goofi::core
