#include "core/progress.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace goofi::core {

bool ConsoleProgressMonitor::OnExperiment(int done, int total,
                                          const LoggedState& last) {
  if (last.detected) ++detections_seen_;
  if (stride_ > 0 && (done % stride_ == 0 || done == total)) {
    util::Log::Info(util::Format(
        "experiments %d/%d (%.0f%%), detections so far: %d", done, total,
        total == 0 ? 0.0 : 100.0 * done / total, detections_seen_));
  }
  return !stop_requested_;
}

bool CountingMonitor::OnExperiment(int done, int total, const LoggedState&) {
  ++calls_;
  last_done_ = done;
  last_total_ = total;
  return limit_ < 0 || calls_ < limit_;
}

}  // namespace goofi::core
