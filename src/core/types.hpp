// Core data model of GOOFI: campaign configuration, fault descriptions and
// logged experiment state.
//
// These types are what the paper's GUI screens (Fig. 5/6) edit and what the
// database tables (Fig. 4) persist. CampaignStore converts between these
// structs and database rows.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bitvec.hpp"
#include "util/status.hpp"

namespace goofi::core {

/// Fault-injection techniques supported by the tool. SCIFI and pre-runtime
/// SWIFI are the paper's two implemented techniques; runtime SWIFI is the
/// first listed future extension (§4).
enum class Technique {
  kScifi = 0,
  kSwifiPreRuntime,
  kSwifiRuntime,
};
const char* TechniqueName(Technique technique);
util::Result<Technique> TechniqueFromName(const std::string& name);

/// Fault models. The paper's current version supports transient bit flips;
/// intermittent and permanent faults are listed extensions (§4).
enum class FaultModelKind {
  kTransientBitFlip = 0,
  kIntermittentBitFlip,
  kPermanentStuckAt,
};
const char* FaultModelName(FaultModelKind kind);
util::Result<FaultModelKind> FaultModelFromName(const std::string& name);

/// Normal vs detail logging mode (§3.3): normal logs only at termination;
/// detail logs after every machine instruction to produce an execution
/// trace for error-propagation analysis.
enum class LogMode { kNormal = 0, kDetail };
const char* LogModeName(LogMode mode);

/// A user-selected set of candidate fault locations (the hierarchical list
/// of Fig. 6). `chain` names a scan chain for SCIFI ("internal_regfile",
/// "internal_core", ...) or one of the pseudo-spaces "memory.text" /
/// "memory.data" for SWIFI. `cell_prefix` narrows a chain to cells whose
/// name starts with the prefix (e.g. "regfile.r" or "core.pc").
struct FaultLocationSelector {
  std::string chain;
  std::string cell_prefix;

  std::string ToString() const;
  static util::Result<FaultLocationSelector> Parse(const std::string& text);
};

/// Everything the set-up phase (Fig. 6) stores into the CampaignData table.
struct CampaignData {
  std::string name;
  std::string target_name;  ///< FK into TargetSystemData
  Technique technique = Technique::kScifi;
  FaultModelKind fault_model = FaultModelKind::kTransientBitFlip;

  /// Number of simultaneous bit faults per experiment ("single or multiple
  /// transient bit-flip faults", §1).
  int faults_per_experiment = 1;
  int num_experiments = 100;

  /// Injection-time window, in retired instructions: each experiment picks a
  /// uniform random time in [inject_min_instr, inject_max_instr].
  uint64_t inject_min_instr = 1;
  uint64_t inject_max_instr = 1000;

  std::vector<FaultLocationSelector> locations;

  std::string workload;  ///< built-in workload name (src/env/workloads)

  /// Termination conditions (§3.2): timeout, detection, or workload end —
  /// whichever comes first. For infinite-loop workloads, the maximum number
  /// of loop iterations to execute.
  uint64_t timeout_cycles = 2'000'000;
  int max_iterations = 200;

  uint64_t seed = 0x600F1;
  LogMode log_mode = LogMode::kNormal;

  /// Scan chains observed and logged at experiment termination ("the
  /// locations to observe can be selected by the user", §3.3).
  std::vector<std::string> observe_chains = {"internal_core", "internal_regfile"};

  /// Intermittent-fault shape: the fault re-flips `burst_length` times with
  /// `burst_spacing` retired instructions between activations.
  uint32_t burst_length = 3;
  uint64_t burst_spacing = 50;
};

/// One concrete fault resolved for one experiment.
struct FaultInstance {
  FaultModelKind kind = FaultModelKind::kTransientBitFlip;

  // Scan-space location (SCIFI): chain + absolute bit within the chain.
  std::string chain;
  uint32_t chain_bit = 0;
  std::string cell_name;  ///< backing state element, for reports

  // Memory-space location (SWIFI): byte address + bit index.
  uint32_t address = 0;
  uint32_t bit = 0;

  /// Injection time in retired instructions (ignored by pre-runtime SWIFI).
  uint64_t inject_instr = 0;

  /// Permanent faults: the stuck value.
  bool stuck_value = false;

  bool IsScanFault() const { return !chain.empty(); }
  std::string Describe() const;

  /// Machine-readable round-trip form, stored in the experimentData column
  /// so an experiment can be re-run exactly (parentExperiment re-runs, §2.3).
  std::string Serialize() const;
  static util::Result<FaultInstance> Parse(const std::string& text);
};

/// The observed system state logged for one experiment (the stateVector
/// column of LoggedSystemState).
struct LoggedState {
  bool halted = false;        ///< workload ran to completion (HALT)
  bool detected = false;      ///< an EDM fired
  std::string edm;            ///< EdmTypeName of the detection
  int32_t edm_code = 0;       ///< TRAP code for software assertions
  bool timed_out = false;     ///< timeout_cycles elapsed
  bool env_failed = false;    ///< environment left its safe envelope
  uint64_t cycles = 0;
  uint64_t instret = 0;
  int iterations = 0;         ///< completed loop iterations (control workloads)
  std::vector<uint32_t> outputs;  ///< result words / actuator-trace checksum
  std::map<std::string, std::string> scan_images;  ///< chain -> bit string

  /// Compact key=value serialization for the database TEXT column.
  std::string Serialize() const;
  static util::Result<LoggedState> Deserialize(const std::string& text);
};

/// §3.4 classification of an experiment outcome.
enum class Outcome {
  kDetected = 0,   ///< effective, caught by an EDM
  kEscaped,        ///< effective, caused a failure (wrong value / late)
  kLatent,         ///< non-effective but state still differs from reference
  kOverwritten,    ///< non-effective, state identical to reference
};
const char* OutcomeName(Outcome outcome);

}  // namespace goofi::core
