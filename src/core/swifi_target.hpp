// SwifiSimTarget: a second target system, built from the Framework template.
//
// The paper's central genericity claim (§2.2) is that adapting GOOFI to a
// new target system means copying the Framework class and implementing
// "only the abstract methods used by the fault injection algorithms". This
// class demonstrates exactly that: a simulator-only target that supports the
// two SWIFI techniques but has *no scan-chain test logic*. It therefore:
//
//   - inherits FrameworkTarget (paper Fig. 3), not ThorRdTarget;
//   - implements the blocks the SWIFI algorithms use (InitTestCard,
//     LoadWorkload, WriteMemory, RunWorkload, WaitForBreakpoint,
//     WaitForTermination, ReadMemory, MutateImage, InjectMemoryFault,
//     EnumerateFaultSpace, CollectState);
//   - leaves the SCIFI-only injection blocks (InjectFault / WriteScanChain)
//     as Framework placeholders, so running a SCIFI campaign against it
//     fails with a precise "not implemented" diagnosis instead of undefined
//     behaviour.
//
// Because the simulator host can observe everything, the logged state vector
// is the full register file plus pc, serialized under the pseudo-chain name
// "sim.regfile".
#pragma once

#include <memory>

#include "core/framework.hpp"
#include "cpu/cpu.hpp"
#include "env/environment.hpp"
#include "env/workloads.hpp"
#include "isa/assembler.hpp"
#include "util/crc32.hpp"

namespace goofi::core {

class SwifiSimTarget : public FrameworkTarget {
 public:
  SwifiSimTarget(CampaignStore* store,
                 const cpu::CpuConfig& config = cpu::CpuConfig());

  static constexpr const char* kTargetName = "trd32-sim-swifi";

  /// Configuration-phase record: no scan chains, only memory fault spaces.
  static TargetSystemData Describe(const std::string& name = kTargetName);

  const cpu::Cpu& cpu() const { return *cpu_; }

  /// Superblock fast path on/off (on by default). Off runs the reference
  /// Step() loops, for differential byte-identical-DB suites.
  bool use_fast_run() const { return use_fast_run_; }
  void set_use_fast_run(bool enabled) { use_fast_run_ = enabled; }

  /// Checkpoint fast-forward support: the golden run snapshots the CPU
  /// (registers, caches, memory delta) plus the environment simulator,
  /// iteration count and actuator CRC. SCIFI is not offered by this target,
  /// so only runtime SWIFI campaigns warm-start. The same builder records
  /// the convergence-pruning GoldenTrace when asked for one.
  bool SupportsCheckpoints() const override { return true; }
  util::Status BuildGoldenRun(uint64_t interval, CheckpointCache* cache,
                              GoldenTrace* trace) override;
  util::Status PrepareGoldenBaseline() override { return EnsureWarmBaseline(); }

  /// COW memory observability: the simulated CPU's main memory.
  const cpu::Memory* TargetMemory() const override {
    return cpu_ != nullptr ? &cpu_->memory() : nullptr;
  }

 protected:
  util::Status RestoreCheckpoint(const Checkpoint& checkpoint) override;

  util::Status InitTestCard() override;
  util::Status LoadWorkload() override;
  util::Status WriteMemory() override;
  util::Status RunWorkload() override;
  util::Status WaitForBreakpoint() override;
  util::Status WaitForTermination() override;
  util::Status ReadMemory() override;
  /// The SWIFI algorithm bodies end with an observation ReadScanChain; this
  /// target has no chains — the simulator host snapshots state directly in
  /// CollectState — so the observation step is a no-op here.
  util::Status ReadScanChain() override { return util::Status::Ok(); }
  util::Status MutateImage() override;
  util::Status InjectMemoryFault() override;
  util::Result<std::vector<FaultCandidate>> EnumerateFaultSpace(
      const FaultLocationSelector& selector) override;
  util::Result<LoggedState> CollectState() override;

  // Note: InjectFault / WriteScanChain intentionally NOT overridden — this
  // target has no scan logic, so SCIFI campaigns fail at InjectFault with
  // the Framework's diagnostic (see class comment).

 private:
  util::Status EnsureWorkload();
  util::Status ServiceIteration();
  /// Steps until `stop_instr` retired instructions (0 = no breakpoint),
  /// servicing environment exchanges; sets bookkeeping on termination.
  util::Status RunUntil(uint64_t stop_instr);
  bool Terminated() const;
  util::Status ApplyMemoryFaults();
  /// Establishes the memory delta baseline for the prepared workload (the
  /// deterministic cold prologue: InitTestCard/LoadWorkload/WriteMemory +
  /// MarkMemoryBaseline), once per workload per target instance.
  util::Status EnsureWarmBaseline();
  util::Status CaptureCheckpoint(CheckpointCache* cache);
  /// Fills the checkpoint cache (stops at the injection window) — the
  /// `cache` half of BuildGoldenRun.
  util::Status BuildCheckpointPass(uint64_t interval, CheckpointCache* cache);
  /// Records the GoldenTrace by driving the fault-free workload through
  /// RunUntil with boundary capture active — the `trace` half of
  /// BuildGoldenRun.
  util::Status BuildTracePass(uint64_t interval, GoldenTrace* trace);
  /// Digests everything that can shape the rest of this experiment: the
  /// CPU's full execution state plus the host-side per-experiment
  /// accumulators (actuator CRC, iteration count, plant state).
  util::Status HashTargetNow(cpu::StateHasher* hasher);
  /// Whether the experiment entering WaitForTermination qualifies for
  /// convergence pruning against the installed golden trace.
  bool CanPruneExperiment() const;
  /// Boundary action for RunUntil when prune_next_check_ is reached:
  /// capture (golden trace pass) or compare-and-maybe-converge
  /// (experiment). Advances prune_next_check_; may set converged_ or clear
  /// prune_active_.
  util::Status AtBoundary();

  std::unique_ptr<cpu::Cpu> cpu_;

  env::WorkloadSpec workload_;
  isa::AssembledProgram program_;
  bool workload_ready_ = false;
  std::unique_ptr<env::EnvironmentSimulator> environment_;
  uint32_t input_addr_ = 0;
  uint32_t output_addr_ = 0;
  uint32_t loop_end_addr_ = 0;
  uint32_t result_addr_ = 0;

  int iterations_ = 0;
  bool timed_out_ = false;
  util::Crc32 actuator_crc_;
  std::vector<uint32_t> outputs_;
  bool use_fast_run_ = true;

  // Convergence-pruning state for the current run phase (see ThorRdTarget
  // for the full protocol). converged_ means the rest of the run is
  // synthesized from synth_state_.
  bool prune_active_ = false;
  bool converged_ = false;
  uint64_t prune_next_check_ = 0;
  LoggedState synth_state_;
  GoldenTrace* capture_trace_ = nullptr;  ///< non-null during BuildTracePass

  // First post-injection boundary whose state diverged from golden: the
  // cross-experiment memo candidate, inserted in CollectState.
  bool memo_pending_ = false;
  uint64_t memo_instret_ = 0;
  uint64_t memo_hash_ = 0;
  std::vector<uint8_t> memo_blob_;

  /// Plant-state buffer reused across boundary hashes.
  std::vector<double> env_state_scratch_;

  /// Workload the memory baseline was established for; empty = none yet.
  std::string warm_ready_workload_;

  /// Workload whose downloaded image was declared the shared golden set
  /// (once per workload, at first LoadWorkload); empty = none yet.
  std::string golden_image_workload_;
};

}  // namespace goofi::core
