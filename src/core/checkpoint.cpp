#include "core/checkpoint.hpp"

#include <algorithm>
#include <cassert>

namespace goofi::core {

void CheckpointCache::Add(Checkpoint checkpoint) {
  assert(checkpoints_.empty() ||
         checkpoint.instret >= checkpoints_.back().instret);
  checkpoints_.push_back(std::move(checkpoint));
}

const Checkpoint* CheckpointCache::FindBefore(uint64_t inject_instr) const {
  // First checkpoint with instret >= inject_instr; the one before it is the
  // greatest strictly-below match.
  auto it = std::lower_bound(
      checkpoints_.begin(), checkpoints_.end(), inject_instr,
      [](const Checkpoint& cp, uint64_t value) { return cp.instret < value; });
  if (it == checkpoints_.begin()) return nullptr;
  return &*(it - 1);
}

size_t CheckpointCache::MemoryBytes() const {
  size_t bytes = 0;
  for (const Checkpoint& cp : checkpoints_) {
    if (cp.payload != nullptr) bytes += cp.payload->MemoryBytes();
  }
  return bytes;
}

}  // namespace goofi::core
