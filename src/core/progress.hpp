// Progress monitoring (the progress window of paper Fig. 7): observe a
// running campaign, and pause/stop it.
#pragma once

#include <cstdint>

#include "core/algorithms.hpp"

namespace goofi::core {

/// Prints one status line per `stride` experiments through util::Log,
/// "enabling the user to monitor the experiments, e.g. getting information
/// about the number of faults injected" (§3.3).
class ConsoleProgressMonitor final : public ProgressMonitor {
 public:
  explicit ConsoleProgressMonitor(int stride = 10) : stride_(stride) {}

  bool OnExperiment(int done, int total, const LoggedState& last) override;

  /// Request the campaign to end after the current experiment ("end the
  /// campaign", Fig. 7).
  void RequestStop() { stop_requested_ = true; }

 private:
  int stride_;
  bool stop_requested_ = false;
  int detections_seen_ = 0;
};

/// Test helper: stops the campaign after `limit` experiments and records
/// every callback.
class CountingMonitor final : public ProgressMonitor {
 public:
  explicit CountingMonitor(int limit = -1) : limit_(limit) {}

  bool OnExperiment(int done, int total, const LoggedState& last) override;

  int calls() const { return calls_; }
  int last_done() const { return last_done_; }
  int last_total() const { return last_total_; }

 private:
  int limit_;
  int calls_ = 0;
  int last_done_ = 0;
  int last_total_ = 0;
};

}  // namespace goofi::core
