// Database bindings for the GOOFI tables (paper Fig. 4).
//
//   TargetSystemData(targetName PK, description, chainData)
//   CampaignData(campaignName PK, targetName FK -> TargetSystemData, ...)
//   LoggedSystemState(experimentName PK,
//                     parentExperiment FK -> LoggedSystemState,
//                     campaignName FK -> CampaignData,
//                     experimentData, stateVector)
//
// "Through the foreign keys, we prevent inconsistencies in the database"
// (§2.3) — the embedded engine enforces them on insert and delete.
#pragma once

#include <optional>

#include "core/types.hpp"
#include "db/database.hpp"
#include "db/prepared.hpp"

namespace goofi::db {
class Archive;
}

namespace goofi::core {

/// Description of a configured target system (the configuration phase,
/// Fig. 5): the scan-chain layout with per-cell name/width/read-only flags.
struct TargetSystemData {
  std::string name;
  std::string description;
  /// One line per cell: "<chain> <cell> <bits> <ro>".
  std::string chain_data;
};

class CampaignStore {
 public:
  /// Creates the three tables in `database` if missing (via EnsureSchema).
  explicit CampaignStore(db::Database* database);

  db::Database& database() { return *database_; }

  /// Creates missing tables and the secondary indexes the analysis queries
  /// rely on. Idempotent. Must be called again after Database::Load —
  /// persistence stores rows only, so indexes exist in memory only.
  util::Status EnsureSchema();

  /// The store's prepared-statement cache. The shell routes ad-hoc `sql`
  /// commands through it so repeated queries skip parsing and planning.
  db::StatementCache& statement_cache() const { return cache_; }

  /// Attaches (or with nullptr detaches) the durable archive backing the
  /// database. While attached, PutExperiment/PutExperiments group-commit its
  /// WAL after each successful write, so a killed campaign recovers every
  /// committed batch. The caller owns the archive (and its attachment as the
  /// database's observer); this is only the commit-point hook.
  void AttachArchive(db::Archive* archive) { archive_ = archive; }
  db::Archive* archive() const { return archive_; }

  // --- TargetSystemData ----------------------------------------------------
  util::Status PutTargetSystem(const TargetSystemData& target);
  util::Result<TargetSystemData> GetTargetSystem(const std::string& name) const;
  std::vector<std::string> TargetSystemNames() const;

  // --- CampaignData --------------------------------------------------------
  util::Status PutCampaign(const CampaignData& campaign);
  util::Result<CampaignData> GetCampaign(const std::string& name) const;
  std::vector<std::string> CampaignNames() const;

  /// Merges the location selectors and experiment counts of `sources` into a
  /// new campaign named `merged_name` (set-up phase: "merge campaign data
  /// from several fault injection campaigns into a new ... campaign", §3.2).
  /// All sources must share target, technique and workload.
  util::Status MergeCampaigns(const std::vector<std::string>& sources,
                              const std::string& merged_name);

  // --- LoggedSystemState ---------------------------------------------------
  util::Status PutExperiment(const std::string& experiment_name,
                             const std::string& parent_experiment,
                             const std::string& campaign_name,
                             const std::string& experiment_data,
                             const LoggedState& state);

  struct ExperimentRow {
    std::string experiment_name;
    std::string parent_experiment;
    std::string campaign_name;
    std::string experiment_data;
    LoggedState state;
  };

  /// Batched insert into LoggedSystemState: one schema/foreign-key resolution
  /// for the whole batch instead of one per row, and all-or-nothing semantics
  /// (on any failure the rows of this batch already inserted are removed).
  /// Rows may reference earlier rows of the same batch via parentExperiment.
  util::Status PutExperiments(const std::vector<ExperimentRow>& rows);

  util::Result<ExperimentRow> GetExperiment(const std::string& name) const;
  /// All experiments of a campaign, in insertion order.
  util::Result<std::vector<ExperimentRow>> ExperimentsOf(
      const std::string& campaign_name) const;
  /// All rows logged under `parent_experiment` (a detail-mode rerun's
  /// per-instruction trace), in insertion order.
  util::Result<std::vector<ExperimentRow>> DetailRowsOf(
      const std::string& parent_experiment) const;

  /// Name used for a campaign's reference (fault-free) run.
  static std::string ReferenceName(const std::string& campaign_name) {
    return campaign_name + "/ref";
  }

  /// Name of experiment `index` of a campaign ("<campaign>/e0042"). The
  /// serial driver and the parallel runner share this so resume works across
  /// both.
  static std::string ExperimentName(const std::string& campaign_name,
                                    int index);

 private:
  util::Result<std::vector<ExperimentRow>> ExperimentQuery(
      const std::string& sql, const std::string& param) const;

  db::Database* database_;
  mutable db::StatementCache cache_;
  db::Archive* archive_ = nullptr;  ///< not owned
};

}  // namespace goofi::core
