#include "core/types.hpp"

#include "util/strings.hpp"

namespace goofi::core {

const char* TechniqueName(Technique technique) {
  switch (technique) {
    case Technique::kScifi:
      return "scifi";
    case Technique::kSwifiPreRuntime:
      return "swifi_preruntime";
    case Technique::kSwifiRuntime:
      return "swifi_runtime";
  }
  return "?";
}

util::Result<Technique> TechniqueFromName(const std::string& name) {
  for (Technique t : {Technique::kScifi, Technique::kSwifiPreRuntime,
                      Technique::kSwifiRuntime}) {
    if (name == TechniqueName(t)) return t;
  }
  return util::ParseError("unknown technique: " + name);
}

const char* FaultModelName(FaultModelKind kind) {
  switch (kind) {
    case FaultModelKind::kTransientBitFlip:
      return "transient_bitflip";
    case FaultModelKind::kIntermittentBitFlip:
      return "intermittent_bitflip";
    case FaultModelKind::kPermanentStuckAt:
      return "permanent_stuckat";
  }
  return "?";
}

util::Result<FaultModelKind> FaultModelFromName(const std::string& name) {
  for (FaultModelKind k :
       {FaultModelKind::kTransientBitFlip, FaultModelKind::kIntermittentBitFlip,
        FaultModelKind::kPermanentStuckAt}) {
    if (name == FaultModelName(k)) return k;
  }
  return util::ParseError("unknown fault model: " + name);
}

const char* LogModeName(LogMode mode) {
  return mode == LogMode::kNormal ? "normal" : "detail";
}

std::string FaultLocationSelector::ToString() const {
  return cell_prefix.empty() ? chain : chain + ":" + cell_prefix;
}

util::Result<FaultLocationSelector> FaultLocationSelector::Parse(
    const std::string& text) {
  FaultLocationSelector out;
  const size_t colon = text.find(':');
  if (colon == std::string::npos) {
    out.chain = text;
  } else {
    out.chain = text.substr(0, colon);
    out.cell_prefix = text.substr(colon + 1);
  }
  if (out.chain.empty()) return util::ParseError("empty location selector");
  return out;
}

std::string FaultInstance::Describe() const {
  std::string when = util::Format("@instr %llu",
                                  static_cast<unsigned long long>(inject_instr));
  std::string what = FaultModelName(kind);
  if (kind == FaultModelKind::kPermanentStuckAt) {
    what += stuck_value ? "(1)" : "(0)";
  }
  if (IsScanFault()) {
    return util::Format("%s %s[%u] (%s) %s", what.c_str(), chain.c_str(),
                        chain_bit, cell_name.c_str(), when.c_str());
  }
  return util::Format("%s mem[0x%08x].bit%u %s", what.c_str(), address, bit,
                      when.c_str());
}

std::string FaultInstance::Serialize() const {
  return util::Format("%s,%s,%u,%s,%u,%u,%llu,%d", FaultModelName(kind),
                      chain.c_str(), chain_bit, cell_name.c_str(), address, bit,
                      static_cast<unsigned long long>(inject_instr),
                      stuck_value ? 1 : 0);
}

util::Result<FaultInstance> FaultInstance::Parse(const std::string& text) {
  const std::vector<std::string> fields = util::Split(text, ',');
  if (fields.size() != 8) {
    return util::ParseError("bad FaultInstance encoding: " + text);
  }
  FaultInstance out;
  auto kind = FaultModelFromName(fields[0]);
  if (!kind.ok()) return kind.status();
  out.kind = kind.value();
  out.chain = fields[1];
  const auto chain_bit = util::ParseInt(fields[2]);
  const auto address = util::ParseInt(fields[4]);
  const auto bit = util::ParseInt(fields[5]);
  const auto inject = util::ParseInt(fields[6]);
  const auto stuck = util::ParseInt(fields[7]);
  if (!chain_bit || !address || !bit || !inject || !stuck) {
    return util::ParseError("bad FaultInstance numbers: " + text);
  }
  out.chain_bit = static_cast<uint32_t>(*chain_bit);
  out.cell_name = fields[3];
  out.address = static_cast<uint32_t>(*address);
  out.bit = static_cast<uint32_t>(*bit);
  out.inject_instr = static_cast<uint64_t>(*inject);
  out.stuck_value = *stuck != 0;
  return out;
}

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kDetected:
      return "detected";
    case Outcome::kEscaped:
      return "escaped";
    case Outcome::kLatent:
      return "latent";
    case Outcome::kOverwritten:
      return "overwritten";
  }
  return "?";
}

// --- LoggedState serialization ---------------------------------------------
// Format: semicolon-separated key=value pairs; scan images as chain@bits;
// outputs as comma-separated hex words.

std::string LoggedState::Serialize() const {
  std::string out;
  out += util::Format("halted=%d;detected=%d;edm=%s;code=%d;timeout=%d;", halted,
                      detected, edm.empty() ? "none" : edm.c_str(), edm_code,
                      timed_out);
  out += util::Format("envfail=%d;cycles=%llu;instret=%llu;iters=%d;",
                      env_failed, static_cast<unsigned long long>(cycles),
                      static_cast<unsigned long long>(instret), iterations);
  out += "outputs=";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i > 0) out += ",";
    out += util::Format("%08x", outputs[i]);
  }
  out += ";";
  for (const auto& [chain, bits] : scan_images) {
    out += "scan." + chain + "=" + bits + ";";
  }
  return out;
}

util::Result<LoggedState> LoggedState::Deserialize(const std::string& text) {
  LoggedState state;
  for (const std::string& pair : util::Split(text, ';')) {
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return util::ParseError("bad LoggedState field: " + pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    auto as_int = [&]() -> util::Result<int64_t> {
      const auto v = util::ParseInt(value);
      if (!v) return util::ParseError("bad integer in LoggedState: " + pair);
      return *v;
    };
    if (key == "halted" || key == "detected" || key == "timeout" ||
        key == "envfail") {
      auto v = as_int();
      if (!v.ok()) return v.status();
      const bool flag = v.value() != 0;
      if (key == "halted") state.halted = flag;
      if (key == "detected") state.detected = flag;
      if (key == "timeout") state.timed_out = flag;
      if (key == "envfail") state.env_failed = flag;
    } else if (key == "edm") {
      state.edm = value == "none" ? "" : value;
    } else if (key == "code") {
      auto v = as_int();
      if (!v.ok()) return v.status();
      state.edm_code = static_cast<int32_t>(v.value());
    } else if (key == "cycles") {
      auto v = as_int();
      if (!v.ok()) return v.status();
      state.cycles = static_cast<uint64_t>(v.value());
    } else if (key == "instret") {
      auto v = as_int();
      if (!v.ok()) return v.status();
      state.instret = static_cast<uint64_t>(v.value());
    } else if (key == "iters") {
      auto v = as_int();
      if (!v.ok()) return v.status();
      state.iterations = static_cast<int>(v.value());
    } else if (key == "outputs") {
      if (!value.empty()) {
        for (const std::string& hex : util::Split(value, ',')) {
          const auto v = util::ParseInt("0x" + hex);
          if (!v) return util::ParseError("bad output word: " + hex);
          state.outputs.push_back(static_cast<uint32_t>(*v));
        }
      }
    } else if (util::StartsWith(key, "scan.")) {
      state.scan_images[key.substr(5)] = value;
    } else {
      return util::ParseError("unknown LoggedState key: " + key);
    }
  }
  return state;
}

}  // namespace goofi::core
