#include "core/analysis.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace goofi::core {

ExperimentClassification Classify(const LoggedState& reference,
                                  const LoggedState& experiment) {
  ExperimentClassification out;

  // Detected: an EDM of the target fired (§3.4).
  if (experiment.detected) {
    out.outcome = Outcome::kDetected;
    out.mechanism = experiment.edm;
    return out;
  }

  // Escaped: no detection, but the workload failed. Value failures are wrong
  // outputs or a plant that left its safe envelope; timeliness violations
  // are runs that missed the deadline the reference met.
  const bool value_failure =
      experiment.outputs != reference.outputs || experiment.env_failed;
  const bool timeliness = (experiment.timed_out && !reference.timed_out) ||
                          (!experiment.halted && reference.halted &&
                           !experiment.timed_out && experiment.iterations == 0);
  if (value_failure || (experiment.timed_out && !reference.timed_out)) {
    out.outcome = Outcome::kEscaped;
    out.value_failure = value_failure;
    out.timeliness_violation = timeliness || experiment.timed_out;
    return out;
  }

  // Non-effective: compare the observed state vectors against the reference.
  if (experiment.scan_images != reference.scan_images) {
    out.outcome = Outcome::kLatent;
    return out;
  }
  out.outcome = Outcome::kOverwritten;
  return out;
}

int AnalysisReport::Count(Outcome outcome) const {
  const auto it = by_outcome.find(outcome);
  return it == by_outcome.end() ? 0 : it->second;
}

double AnalysisReport::ErrorCoverage() const {
  const int detected = Count(Outcome::kDetected);
  const int escaped = Count(Outcome::kEscaped);
  if (detected + escaped == 0) return 1.0;
  return static_cast<double>(detected) / static_cast<double>(detected + escaped);
}

double AnalysisReport::EffectivenessRatio() const {
  if (total == 0) return 0.0;
  const int effective = Count(Outcome::kDetected) + Count(Outcome::kEscaped);
  return static_cast<double>(effective) / static_cast<double>(total);
}

AnalysisReport::Interval AnalysisReport::CoverageInterval(double z) const {
  const int detected = Count(Outcome::kDetected);
  const int effective = detected + Count(Outcome::kEscaped);
  if (effective == 0) return {0.0, 1.0};
  const double n = static_cast<double>(effective);
  const double p = static_cast<double>(detected) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

std::string AnalysisReport::ToString() const {
  std::string out;
  out += util::Format("campaign %s: %d experiments\n", campaign.c_str(), total);
  auto pct = [this](int n) {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(n) / total;
  };
  out += util::Format("  effective:     %4d (%.1f%%)\n",
                      Count(Outcome::kDetected) + Count(Outcome::kEscaped),
                      pct(Count(Outcome::kDetected) + Count(Outcome::kEscaped)));
  out += util::Format("    detected:    %4d (%.1f%%)\n", Count(Outcome::kDetected),
                      pct(Count(Outcome::kDetected)));
  for (const auto& [mechanism, count] : detected_by_mechanism) {
    out += util::Format("      %-22s %4d\n", mechanism.c_str(), count);
  }
  out += util::Format("    escaped:     %4d (%.1f%%)\n", Count(Outcome::kEscaped),
                      pct(Count(Outcome::kEscaped)));
  out += util::Format("      value failures:       %4d\n", escaped_value);
  out += util::Format("      timeliness violations:%4d\n", escaped_timeliness);
  out += util::Format("  non-effective: %4d (%.1f%%)\n",
                      Count(Outcome::kLatent) + Count(Outcome::kOverwritten),
                      pct(Count(Outcome::kLatent) + Count(Outcome::kOverwritten)));
  out += util::Format("    latent:      %4d (%.1f%%)\n", Count(Outcome::kLatent),
                      pct(Count(Outcome::kLatent)));
  out += util::Format("    overwritten: %4d (%.1f%%)\n",
                      Count(Outcome::kOverwritten), pct(Count(Outcome::kOverwritten)));
  const Interval ci = CoverageInterval();
  out += util::Format("  error coverage: %.3f (95%% CI [%.3f, %.3f])\n",
                      ErrorCoverage(), ci.low, ci.high);
  return out;
}

namespace {

/// Extracts the location group of an experiment's first fault from its
/// experimentData column.
std::string LocationGroupOf(const std::string& experiment_data) {
  for (const std::string& field : util::Split(experiment_data, ';')) {
    if (!util::StartsWith(field, "faults=")) continue;
    const std::string list = field.substr(7);
    if (list.empty()) return "none";
    auto fault = FaultInstance::Parse(util::Split(list, '|')[0]);
    if (!fault.ok()) return "unknown";
    const FaultInstance& f = fault.value();
    if (!f.IsScanFault()) {
      // cell_name holds "memory.text@0x..." / "memory.data@0x...".
      const size_t at = f.cell_name.find('@');
      return at == std::string::npos ? "memory" : f.cell_name.substr(0, at);
    }
    const size_t dot = f.cell_name.find('.');
    return dot == std::string::npos ? f.cell_name : f.cell_name.substr(0, dot);
  }
  return "none";
}

void Accumulate(AnalysisReport* report, const ExperimentClassification& cls) {
  ++report->total;
  ++report->by_outcome[cls.outcome];
  if (cls.outcome == Outcome::kDetected) {
    ++report->detected_by_mechanism[cls.mechanism];
  }
  if (cls.outcome == Outcome::kEscaped) {
    if (cls.value_failure) ++report->escaped_value;
    if (cls.timeliness_violation) ++report->escaped_timeliness;
  }
}

}  // namespace

util::Result<AnalysisReport> AnalyzeCampaign(const CampaignStore& store,
                                             const std::string& campaign_name) {
  auto reference = store.GetExperiment(CampaignStore::ReferenceName(campaign_name));
  if (!reference.ok()) return reference.status();
  auto rows = store.ExperimentsOf(campaign_name);
  if (!rows.ok()) return rows.status();

  AnalysisReport report;
  report.campaign = campaign_name;
  for (const CampaignStore::ExperimentRow& row : rows.value()) {
    if (!row.parent_experiment.empty()) continue;  // detail rows
    if (row.experiment_name == reference.value().experiment_name) continue;
    Accumulate(&report, Classify(reference.value().state, row.state));
  }
  return report;
}

util::Result<std::map<std::string, AnalysisReport>> AnalyzeByLocationGroup(
    const CampaignStore& store, const std::string& campaign_name) {
  auto reference = store.GetExperiment(CampaignStore::ReferenceName(campaign_name));
  if (!reference.ok()) return reference.status();
  auto rows = store.ExperimentsOf(campaign_name);
  if (!rows.ok()) return rows.status();

  std::map<std::string, AnalysisReport> by_group;
  for (const CampaignStore::ExperimentRow& row : rows.value()) {
    if (!row.parent_experiment.empty()) continue;
    if (row.experiment_name == reference.value().experiment_name) continue;
    AnalysisReport& report = by_group[LocationGroupOf(row.experiment_data)];
    if (report.campaign.empty()) report.campaign = campaign_name;
    Accumulate(&report, Classify(reference.value().state, row.state));
  }
  return by_group;
}

}  // namespace goofi::core
