// Error-propagation analysis over detail-mode execution traces.
//
// Paper §3.3: "The detail mode operation is used to produce an execution
// trace, allowing the error propagation to be analysed in detail." This
// module performs that analysis: it aligns the per-instruction detail rows
// of a fault-injected re-run with the reference re-run and reports where the
// corrupted state first became visible, how long it stayed visible, and the
// detection latency.
#pragma once

#include <cstdint>

#include "core/campaign_store.hpp"

namespace goofi::core {

struct PropagationReport {
  /// Steps compared (min of the two trace lengths).
  int steps_compared = 0;
  /// 1-based step index of the first visible state divergence; 0 = never.
  int first_divergence_step = 0;
  /// Retired-instruction count at first divergence (target time).
  uint64_t first_divergence_instr = 0;
  /// Number of compared steps at which the core state differed.
  int diverged_steps = 0;
  /// 1-based step at which an EDM fired in the faulty trace; 0 = none.
  int detection_step = 0;
  /// Steps between first visible divergence and detection (only meaningful
  /// when both fields are set).
  int detection_latency_steps = 0;
  /// The traces ended with different lengths (control-flow divergence).
  bool length_mismatch = false;

  std::string ToString() const;
};

/// Compares the detail traces logged under `experiment/detail` and the
/// campaign's `ref/detail` re-run. Both must have been produced with
/// FaultInjectionAlgorithms::RerunDetailed beforehand; returns
/// kFailedPrecondition otherwise.
util::Result<PropagationReport> AnalyzeErrorPropagation(
    const CampaignStore& store, const std::string& experiment_name);

}  // namespace goofi::core
